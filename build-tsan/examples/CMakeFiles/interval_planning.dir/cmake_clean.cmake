file(REMOVE_RECURSE
  "CMakeFiles/interval_planning.dir/interval_planning.cpp.o"
  "CMakeFiles/interval_planning.dir/interval_planning.cpp.o.d"
  "interval_planning"
  "interval_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
