# Empty dependencies file for interval_planning.
# This may be replaced when dependencies are built.
