file(REMOVE_RECURSE
  "CMakeFiles/motifminer_checkpoint.dir/motifminer_checkpoint.cpp.o"
  "CMakeFiles/motifminer_checkpoint.dir/motifminer_checkpoint.cpp.o.d"
  "motifminer_checkpoint"
  "motifminer_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifminer_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
