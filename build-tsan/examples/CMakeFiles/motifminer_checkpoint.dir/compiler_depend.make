# Empty compiler generated dependencies file for motifminer_checkpoint.
# This may be replaced when dependencies are built.
