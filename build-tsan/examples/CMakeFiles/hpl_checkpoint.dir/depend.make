# Empty dependencies file for hpl_checkpoint.
# This may be replaced when dependencies are built.
