file(REMOVE_RECURSE
  "CMakeFiles/hpl_checkpoint.dir/hpl_checkpoint.cpp.o"
  "CMakeFiles/hpl_checkpoint.dir/hpl_checkpoint.cpp.o.d"
  "hpl_checkpoint"
  "hpl_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
