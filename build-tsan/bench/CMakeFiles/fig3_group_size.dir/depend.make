# Empty dependencies file for fig3_group_size.
# This may be replaced when dependencies are built.
