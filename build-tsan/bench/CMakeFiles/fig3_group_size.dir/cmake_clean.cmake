file(REMOVE_RECURSE
  "CMakeFiles/fig3_group_size.dir/fig3_group_size.cpp.o"
  "CMakeFiles/fig3_group_size.dir/fig3_group_size.cpp.o.d"
  "fig3_group_size"
  "fig3_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
