file(REMOVE_RECURSE
  "CMakeFiles/fig6_hpl_groupsize.dir/fig6_hpl_groupsize.cpp.o"
  "CMakeFiles/fig6_hpl_groupsize.dir/fig6_hpl_groupsize.cpp.o.d"
  "fig6_hpl_groupsize"
  "fig6_hpl_groupsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hpl_groupsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
