# Empty compiler generated dependencies file for fig6_hpl_groupsize.
# This may be replaced when dependencies are built.
