file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffering_vs_logging.dir/ablation_buffering_vs_logging.cpp.o"
  "CMakeFiles/ablation_buffering_vs_logging.dir/ablation_buffering_vs_logging.cpp.o.d"
  "ablation_buffering_vs_logging"
  "ablation_buffering_vs_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffering_vs_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
