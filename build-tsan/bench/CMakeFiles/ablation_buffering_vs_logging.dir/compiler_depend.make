# Empty compiler generated dependencies file for ablation_buffering_vs_logging.
# This may be replaced when dependencies are built.
