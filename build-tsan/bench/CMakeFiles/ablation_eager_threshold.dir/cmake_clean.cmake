file(REMOVE_RECURSE
  "CMakeFiles/ablation_eager_threshold.dir/ablation_eager_threshold.cpp.o"
  "CMakeFiles/ablation_eager_threshold.dir/ablation_eager_threshold.cpp.o.d"
  "ablation_eager_threshold"
  "ablation_eager_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
