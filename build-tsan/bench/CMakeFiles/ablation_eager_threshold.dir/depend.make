# Empty dependencies file for ablation_eager_threshold.
# This may be replaced when dependencies are built.
