# Empty compiler generated dependencies file for ablation_async_progress.
# This may be replaced when dependencies are built.
