file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_progress.dir/ablation_async_progress.cpp.o"
  "CMakeFiles/ablation_async_progress.dir/ablation_async_progress.cpp.o.d"
  "ablation_async_progress"
  "ablation_async_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
