file(REMOVE_RECURSE
  "CMakeFiles/ablation_protocols.dir/ablation_protocols.cpp.o"
  "CMakeFiles/ablation_protocols.dir/ablation_protocols.cpp.o.d"
  "ablation_protocols"
  "ablation_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
