# Empty compiler generated dependencies file for ablation_protocols.
# This may be replaced when dependencies are built.
