# Empty dependencies file for ablation_connection_mgmt.
# This may be replaced when dependencies are built.
