file(REMOVE_RECURSE
  "CMakeFiles/ablation_connection_mgmt.dir/ablation_connection_mgmt.cpp.o"
  "CMakeFiles/ablation_connection_mgmt.dir/ablation_connection_mgmt.cpp.o.d"
  "ablation_connection_mgmt"
  "ablation_connection_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_connection_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
