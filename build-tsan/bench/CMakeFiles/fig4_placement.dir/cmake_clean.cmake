file(REMOVE_RECURSE
  "CMakeFiles/fig4_placement.dir/fig4_placement.cpp.o"
  "CMakeFiles/fig4_placement.dir/fig4_placement.cpp.o.d"
  "fig4_placement"
  "fig4_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
