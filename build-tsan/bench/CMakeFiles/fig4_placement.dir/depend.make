# Empty dependencies file for fig4_placement.
# This may be replaced when dependencies are built.
