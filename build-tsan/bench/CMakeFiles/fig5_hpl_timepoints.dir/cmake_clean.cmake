file(REMOVE_RECURSE
  "CMakeFiles/fig5_hpl_timepoints.dir/fig5_hpl_timepoints.cpp.o"
  "CMakeFiles/fig5_hpl_timepoints.dir/fig5_hpl_timepoints.cpp.o.d"
  "fig5_hpl_timepoints"
  "fig5_hpl_timepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hpl_timepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
