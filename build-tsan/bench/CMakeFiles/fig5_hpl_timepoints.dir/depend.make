# Empty dependencies file for fig5_hpl_timepoints.
# This may be replaced when dependencies are built.
