file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_formation.dir/ablation_group_formation.cpp.o"
  "CMakeFiles/ablation_group_formation.dir/ablation_group_formation.cpp.o.d"
  "ablation_group_formation"
  "ablation_group_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
