# Empty dependencies file for ablation_group_formation.
# This may be replaced when dependencies are built.
