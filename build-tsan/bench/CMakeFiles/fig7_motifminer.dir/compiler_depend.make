# Empty compiler generated dependencies file for fig7_motifminer.
# This may be replaced when dependencies are built.
