file(REMOVE_RECURSE
  "CMakeFiles/fig7_motifminer.dir/fig7_motifminer.cpp.o"
  "CMakeFiles/fig7_motifminer.dir/fig7_motifminer.cpp.o.d"
  "fig7_motifminer"
  "fig7_motifminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_motifminer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
