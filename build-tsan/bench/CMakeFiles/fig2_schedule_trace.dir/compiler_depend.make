# Empty compiler generated dependencies file for fig2_schedule_trace.
# This may be replaced when dependencies are built.
