file(REMOVE_RECURSE
  "CMakeFiles/fig2_schedule_trace.dir/fig2_schedule_trace.cpp.o"
  "CMakeFiles/fig2_schedule_trace.dir/fig2_schedule_trace.cpp.o.d"
  "fig2_schedule_trace"
  "fig2_schedule_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_schedule_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
