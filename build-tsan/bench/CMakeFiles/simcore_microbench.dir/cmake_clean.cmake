file(REMOVE_RECURSE
  "CMakeFiles/simcore_microbench.dir/simcore_microbench.cpp.o"
  "CMakeFiles/simcore_microbench.dir/simcore_microbench.cpp.o.d"
  "simcore_microbench"
  "simcore_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
