# Empty compiler generated dependencies file for simcore_microbench.
# This may be replaced when dependencies are built.
