file(REMOVE_RECURSE
  "libgbc_workloads.a"
)
