file(REMOVE_RECURSE
  "CMakeFiles/gbc_workloads.dir/hpl.cpp.o"
  "CMakeFiles/gbc_workloads.dir/hpl.cpp.o.d"
  "CMakeFiles/gbc_workloads.dir/masterworker.cpp.o"
  "CMakeFiles/gbc_workloads.dir/masterworker.cpp.o.d"
  "CMakeFiles/gbc_workloads.dir/microbench.cpp.o"
  "CMakeFiles/gbc_workloads.dir/microbench.cpp.o.d"
  "CMakeFiles/gbc_workloads.dir/motifminer.cpp.o"
  "CMakeFiles/gbc_workloads.dir/motifminer.cpp.o.d"
  "CMakeFiles/gbc_workloads.dir/stencil.cpp.o"
  "CMakeFiles/gbc_workloads.dir/stencil.cpp.o.d"
  "CMakeFiles/gbc_workloads.dir/workload.cpp.o"
  "CMakeFiles/gbc_workloads.dir/workload.cpp.o.d"
  "libgbc_workloads.a"
  "libgbc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
