# Empty compiler generated dependencies file for gbc_workloads.
# This may be replaced when dependencies are built.
