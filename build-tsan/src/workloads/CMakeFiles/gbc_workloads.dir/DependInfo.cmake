
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/hpl.cpp" "src/workloads/CMakeFiles/gbc_workloads.dir/hpl.cpp.o" "gcc" "src/workloads/CMakeFiles/gbc_workloads.dir/hpl.cpp.o.d"
  "/root/repo/src/workloads/masterworker.cpp" "src/workloads/CMakeFiles/gbc_workloads.dir/masterworker.cpp.o" "gcc" "src/workloads/CMakeFiles/gbc_workloads.dir/masterworker.cpp.o.d"
  "/root/repo/src/workloads/microbench.cpp" "src/workloads/CMakeFiles/gbc_workloads.dir/microbench.cpp.o" "gcc" "src/workloads/CMakeFiles/gbc_workloads.dir/microbench.cpp.o.d"
  "/root/repo/src/workloads/motifminer.cpp" "src/workloads/CMakeFiles/gbc_workloads.dir/motifminer.cpp.o" "gcc" "src/workloads/CMakeFiles/gbc_workloads.dir/motifminer.cpp.o.d"
  "/root/repo/src/workloads/stencil.cpp" "src/workloads/CMakeFiles/gbc_workloads.dir/stencil.cpp.o" "gcc" "src/workloads/CMakeFiles/gbc_workloads.dir/stencil.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/gbc_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/gbc_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mpi/CMakeFiles/gbc_mpi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/gbc_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/gbc_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/gbc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
