# Empty dependencies file for gbc_harness.
# This may be replaced when dependencies are built.
