file(REMOVE_RECURSE
  "CMakeFiles/gbc_harness.dir/cli.cpp.o"
  "CMakeFiles/gbc_harness.dir/cli.cpp.o.d"
  "CMakeFiles/gbc_harness.dir/experiment.cpp.o"
  "CMakeFiles/gbc_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/gbc_harness.dir/gantt.cpp.o"
  "CMakeFiles/gbc_harness.dir/gantt.cpp.o.d"
  "CMakeFiles/gbc_harness.dir/interval.cpp.o"
  "CMakeFiles/gbc_harness.dir/interval.cpp.o.d"
  "CMakeFiles/gbc_harness.dir/recovery.cpp.o"
  "CMakeFiles/gbc_harness.dir/recovery.cpp.o.d"
  "CMakeFiles/gbc_harness.dir/sweep.cpp.o"
  "CMakeFiles/gbc_harness.dir/sweep.cpp.o.d"
  "libgbc_harness.a"
  "libgbc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
