file(REMOVE_RECURSE
  "libgbc_harness.a"
)
