file(REMOVE_RECURSE
  "CMakeFiles/gbc_storage.dir/storage.cpp.o"
  "CMakeFiles/gbc_storage.dir/storage.cpp.o.d"
  "libgbc_storage.a"
  "libgbc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
