# Empty compiler generated dependencies file for gbc_storage.
# This may be replaced when dependencies are built.
