file(REMOVE_RECURSE
  "libgbc_storage.a"
)
