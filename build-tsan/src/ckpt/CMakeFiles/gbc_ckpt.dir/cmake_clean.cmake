file(REMOVE_RECURSE
  "CMakeFiles/gbc_ckpt.dir/checkpoint.cpp.o"
  "CMakeFiles/gbc_ckpt.dir/checkpoint.cpp.o.d"
  "CMakeFiles/gbc_ckpt.dir/consistency.cpp.o"
  "CMakeFiles/gbc_ckpt.dir/consistency.cpp.o.d"
  "CMakeFiles/gbc_ckpt.dir/group_formation.cpp.o"
  "CMakeFiles/gbc_ckpt.dir/group_formation.cpp.o.d"
  "CMakeFiles/gbc_ckpt.dir/store.cpp.o"
  "CMakeFiles/gbc_ckpt.dir/store.cpp.o.d"
  "libgbc_ckpt.a"
  "libgbc_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
