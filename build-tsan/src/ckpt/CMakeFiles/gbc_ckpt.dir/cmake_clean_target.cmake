file(REMOVE_RECURSE
  "libgbc_ckpt.a"
)
