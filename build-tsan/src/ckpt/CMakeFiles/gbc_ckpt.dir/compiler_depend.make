# Empty compiler generated dependencies file for gbc_ckpt.
# This may be replaced when dependencies are built.
