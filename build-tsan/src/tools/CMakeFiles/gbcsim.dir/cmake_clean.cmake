file(REMOVE_RECURSE
  "CMakeFiles/gbcsim.dir/gbcsim_main.cpp.o"
  "CMakeFiles/gbcsim.dir/gbcsim_main.cpp.o.d"
  "gbcsim"
  "gbcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
