# Empty dependencies file for gbcsim.
# This may be replaced when dependencies are built.
