file(REMOVE_RECURSE
  "libgbc_sim.a"
)
