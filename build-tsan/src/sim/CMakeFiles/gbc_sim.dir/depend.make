# Empty dependencies file for gbc_sim.
# This may be replaced when dependencies are built.
