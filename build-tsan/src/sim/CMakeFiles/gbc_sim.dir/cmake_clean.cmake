file(REMOVE_RECURSE
  "CMakeFiles/gbc_sim.dir/condition.cpp.o"
  "CMakeFiles/gbc_sim.dir/condition.cpp.o.d"
  "CMakeFiles/gbc_sim.dir/engine.cpp.o"
  "CMakeFiles/gbc_sim.dir/engine.cpp.o.d"
  "libgbc_sim.a"
  "libgbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
