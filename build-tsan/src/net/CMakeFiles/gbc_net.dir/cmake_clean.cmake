file(REMOVE_RECURSE
  "CMakeFiles/gbc_net.dir/fabric.cpp.o"
  "CMakeFiles/gbc_net.dir/fabric.cpp.o.d"
  "libgbc_net.a"
  "libgbc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
