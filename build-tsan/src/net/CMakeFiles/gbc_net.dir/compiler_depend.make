# Empty compiler generated dependencies file for gbc_net.
# This may be replaced when dependencies are built.
