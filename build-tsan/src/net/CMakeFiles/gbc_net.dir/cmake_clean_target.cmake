file(REMOVE_RECURSE
  "libgbc_net.a"
)
