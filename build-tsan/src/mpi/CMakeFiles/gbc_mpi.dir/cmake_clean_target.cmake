file(REMOVE_RECURSE
  "libgbc_mpi.a"
)
