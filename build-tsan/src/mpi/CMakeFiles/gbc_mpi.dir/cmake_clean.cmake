file(REMOVE_RECURSE
  "CMakeFiles/gbc_mpi.dir/collectives.cpp.o"
  "CMakeFiles/gbc_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/gbc_mpi.dir/minimpi.cpp.o"
  "CMakeFiles/gbc_mpi.dir/minimpi.cpp.o.d"
  "libgbc_mpi.a"
  "libgbc_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbc_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
