# Empty dependencies file for gbc_mpi.
# This may be replaced when dependencies are built.
