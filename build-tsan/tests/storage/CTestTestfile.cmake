# CMake generated Testfile for 
# Source directory: /root/repo/tests/storage
# Build directory: /root/repo/build-tsan/tests/storage
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/storage/storage_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/storage/storage_striped_test[1]_include.cmake")
