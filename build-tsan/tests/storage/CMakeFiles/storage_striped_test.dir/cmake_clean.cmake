file(REMOVE_RECURSE
  "CMakeFiles/storage_striped_test.dir/striped_test.cpp.o"
  "CMakeFiles/storage_striped_test.dir/striped_test.cpp.o.d"
  "storage_striped_test"
  "storage_striped_test.pdb"
  "storage_striped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_striped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
