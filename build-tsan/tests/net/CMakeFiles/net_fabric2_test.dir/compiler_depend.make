# Empty compiler generated dependencies file for net_fabric2_test.
# This may be replaced when dependencies are built.
