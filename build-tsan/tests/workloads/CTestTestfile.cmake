# CMake generated Testfile for 
# Source directory: /root/repo/tests/workloads
# Build directory: /root/repo/build-tsan/tests/workloads
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/workloads/workloads_microbench_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/workloads/workloads_hpl_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/workloads/workloads_motifminer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/workloads/workloads_stencil_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/workloads/workloads_masterworker_test[1]_include.cmake")
