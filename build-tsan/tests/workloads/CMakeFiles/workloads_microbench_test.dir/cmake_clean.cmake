file(REMOVE_RECURSE
  "CMakeFiles/workloads_microbench_test.dir/microbench_test.cpp.o"
  "CMakeFiles/workloads_microbench_test.dir/microbench_test.cpp.o.d"
  "workloads_microbench_test"
  "workloads_microbench_test.pdb"
  "workloads_microbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_microbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
