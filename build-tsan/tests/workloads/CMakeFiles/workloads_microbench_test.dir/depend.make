# Empty dependencies file for workloads_microbench_test.
# This may be replaced when dependencies are built.
