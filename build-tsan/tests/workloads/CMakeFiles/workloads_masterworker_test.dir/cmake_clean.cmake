file(REMOVE_RECURSE
  "CMakeFiles/workloads_masterworker_test.dir/masterworker_test.cpp.o"
  "CMakeFiles/workloads_masterworker_test.dir/masterworker_test.cpp.o.d"
  "workloads_masterworker_test"
  "workloads_masterworker_test.pdb"
  "workloads_masterworker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_masterworker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
