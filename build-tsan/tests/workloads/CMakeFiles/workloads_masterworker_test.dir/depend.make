# Empty dependencies file for workloads_masterworker_test.
# This may be replaced when dependencies are built.
