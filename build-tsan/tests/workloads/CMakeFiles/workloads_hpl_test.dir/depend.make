# Empty dependencies file for workloads_hpl_test.
# This may be replaced when dependencies are built.
