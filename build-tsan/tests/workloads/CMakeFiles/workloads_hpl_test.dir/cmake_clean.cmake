file(REMOVE_RECURSE
  "CMakeFiles/workloads_hpl_test.dir/hpl_test.cpp.o"
  "CMakeFiles/workloads_hpl_test.dir/hpl_test.cpp.o.d"
  "workloads_hpl_test"
  "workloads_hpl_test.pdb"
  "workloads_hpl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_hpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
