file(REMOVE_RECURSE
  "CMakeFiles/workloads_motifminer_test.dir/motifminer_test.cpp.o"
  "CMakeFiles/workloads_motifminer_test.dir/motifminer_test.cpp.o.d"
  "workloads_motifminer_test"
  "workloads_motifminer_test.pdb"
  "workloads_motifminer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_motifminer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
