# CMake generated Testfile for 
# Source directory: /root/repo/tests/harness
# Build directory: /root/repo/build-tsan/tests/harness
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/harness/harness_experiment_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/harness/harness_sweep_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/harness/harness_interval_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/harness/harness_cli_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/harness/harness_gantt_test[1]_include.cmake")
