# Empty dependencies file for harness_sweep_test.
# This may be replaced when dependencies are built.
