file(REMOVE_RECURSE
  "CMakeFiles/harness_sweep_test.dir/sweep_test.cpp.o"
  "CMakeFiles/harness_sweep_test.dir/sweep_test.cpp.o.d"
  "harness_sweep_test"
  "harness_sweep_test.pdb"
  "harness_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
