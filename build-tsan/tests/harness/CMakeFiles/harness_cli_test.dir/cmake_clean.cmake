file(REMOVE_RECURSE
  "CMakeFiles/harness_cli_test.dir/cli_test.cpp.o"
  "CMakeFiles/harness_cli_test.dir/cli_test.cpp.o.d"
  "harness_cli_test"
  "harness_cli_test.pdb"
  "harness_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
