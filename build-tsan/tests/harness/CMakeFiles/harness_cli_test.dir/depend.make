# Empty dependencies file for harness_cli_test.
# This may be replaced when dependencies are built.
