file(REMOVE_RECURSE
  "CMakeFiles/harness_gantt_test.dir/gantt_test.cpp.o"
  "CMakeFiles/harness_gantt_test.dir/gantt_test.cpp.o.d"
  "harness_gantt_test"
  "harness_gantt_test.pdb"
  "harness_gantt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_gantt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
