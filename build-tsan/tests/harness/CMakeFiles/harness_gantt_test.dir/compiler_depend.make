# Empty compiler generated dependencies file for harness_gantt_test.
# This may be replaced when dependencies are built.
