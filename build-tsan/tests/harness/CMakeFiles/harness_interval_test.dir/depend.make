# Empty dependencies file for harness_interval_test.
# This may be replaced when dependencies are built.
