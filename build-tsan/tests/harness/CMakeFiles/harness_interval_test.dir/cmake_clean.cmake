file(REMOVE_RECURSE
  "CMakeFiles/harness_interval_test.dir/interval_test.cpp.o"
  "CMakeFiles/harness_interval_test.dir/interval_test.cpp.o.d"
  "harness_interval_test"
  "harness_interval_test.pdb"
  "harness_interval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
