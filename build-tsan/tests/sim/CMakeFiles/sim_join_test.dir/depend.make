# Empty dependencies file for sim_join_test.
# This may be replaced when dependencies are built.
