file(REMOVE_RECURSE
  "CMakeFiles/sim_join_test.dir/join_test.cpp.o"
  "CMakeFiles/sim_join_test.dir/join_test.cpp.o.d"
  "sim_join_test"
  "sim_join_test.pdb"
  "sim_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
