# Empty dependencies file for sim_pausable_test.
# This may be replaced when dependencies are built.
