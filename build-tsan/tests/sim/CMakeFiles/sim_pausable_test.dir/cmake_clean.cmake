file(REMOVE_RECURSE
  "CMakeFiles/sim_pausable_test.dir/pausable_test.cpp.o"
  "CMakeFiles/sim_pausable_test.dir/pausable_test.cpp.o.d"
  "sim_pausable_test"
  "sim_pausable_test.pdb"
  "sim_pausable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pausable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
