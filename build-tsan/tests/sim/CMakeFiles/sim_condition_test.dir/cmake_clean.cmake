file(REMOVE_RECURSE
  "CMakeFiles/sim_condition_test.dir/condition_test.cpp.o"
  "CMakeFiles/sim_condition_test.dir/condition_test.cpp.o.d"
  "sim_condition_test"
  "sim_condition_test.pdb"
  "sim_condition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
