# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build-tsan/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/sim/sim_engine_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim/sim_condition_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim/sim_pausable_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim/sim_random_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim/sim_join_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim/sim_trace_test[1]_include.cmake")
