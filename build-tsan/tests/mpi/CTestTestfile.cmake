# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpi
# Build directory: /root/repo/build-tsan/tests/mpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/mpi/mpi_p2p_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mpi/mpi_collectives_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mpi/mpi_gate_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mpi/mpi_collectives2_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mpi/mpi_matching_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mpi/mpi_nonblocking_test[1]_include.cmake")
