# Empty dependencies file for mpi_gate_test.
# This may be replaced when dependencies are built.
