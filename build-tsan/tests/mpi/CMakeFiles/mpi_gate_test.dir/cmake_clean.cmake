file(REMOVE_RECURSE
  "CMakeFiles/mpi_gate_test.dir/gate_test.cpp.o"
  "CMakeFiles/mpi_gate_test.dir/gate_test.cpp.o.d"
  "mpi_gate_test"
  "mpi_gate_test.pdb"
  "mpi_gate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
