file(REMOVE_RECURSE
  "CMakeFiles/mpi_matching_test.dir/matching_test.cpp.o"
  "CMakeFiles/mpi_matching_test.dir/matching_test.cpp.o.d"
  "mpi_matching_test"
  "mpi_matching_test.pdb"
  "mpi_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
