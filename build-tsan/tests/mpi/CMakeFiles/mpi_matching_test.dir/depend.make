# Empty dependencies file for mpi_matching_test.
# This may be replaced when dependencies are built.
