# Empty dependencies file for mpi_nonblocking_test.
# This may be replaced when dependencies are built.
