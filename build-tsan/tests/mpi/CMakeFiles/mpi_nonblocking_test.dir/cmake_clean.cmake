file(REMOVE_RECURSE
  "CMakeFiles/mpi_nonblocking_test.dir/nonblocking_test.cpp.o"
  "CMakeFiles/mpi_nonblocking_test.dir/nonblocking_test.cpp.o.d"
  "mpi_nonblocking_test"
  "mpi_nonblocking_test.pdb"
  "mpi_nonblocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_nonblocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
