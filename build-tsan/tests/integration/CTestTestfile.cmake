# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build-tsan/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/integration/integration_recovery_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration/integration_jobpause_test[1]_include.cmake")
