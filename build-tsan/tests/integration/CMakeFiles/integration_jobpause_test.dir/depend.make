# Empty dependencies file for integration_jobpause_test.
# This may be replaced when dependencies are built.
