file(REMOVE_RECURSE
  "CMakeFiles/integration_jobpause_test.dir/jobpause_test.cpp.o"
  "CMakeFiles/integration_jobpause_test.dir/jobpause_test.cpp.o.d"
  "integration_jobpause_test"
  "integration_jobpause_test.pdb"
  "integration_jobpause_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_jobpause_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
