# Empty dependencies file for integration_recovery_test.
# This may be replaced when dependencies are built.
