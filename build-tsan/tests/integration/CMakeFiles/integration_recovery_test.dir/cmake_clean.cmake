file(REMOVE_RECURSE
  "CMakeFiles/integration_recovery_test.dir/recovery_test.cpp.o"
  "CMakeFiles/integration_recovery_test.dir/recovery_test.cpp.o.d"
  "integration_recovery_test"
  "integration_recovery_test.pdb"
  "integration_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
