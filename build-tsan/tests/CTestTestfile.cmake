# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gbcsim_help "/root/repo/build-tsan/src/tools/gbcsim" "help")
set_tests_properties(gbcsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gbcsim_storage_smoke "/root/repo/build-tsan/src/tools/gbcsim" "storage" "--max-clients" "4" "--file-mib" "32")
set_tests_properties(gbcsim_storage_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gbcsim_delay_smoke "/root/repo/build-tsan/src/tools/gbcsim" "delay" "--ranks" "4" "--comm-group" "2" "--group-size" "2" "--footprint-mib" "32" "--issuance" "5")
set_tests_properties(gbcsim_delay_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gbcsim_trace_smoke "/root/repo/build-tsan/src/tools/gbcsim" "trace" "--ranks" "8" "--comm-group" "2" "--group-size" "4" "--footprint-mib" "32")
set_tests_properties(gbcsim_trace_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gbcsim_recover_smoke "/root/repo/build-tsan/src/tools/gbcsim" "recover" "--ranks" "4" "--comm-group" "2" "--group-size" "2" "--footprint-mib" "32" "--ckpt-at" "5" "--fail-at" "30")
set_tests_properties(gbcsim_recover_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gbcsim_bad_flag "/root/repo/build-tsan/src/tools/gbcsim" "delay" "--bogus" "1")
set_tests_properties(gbcsim_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
subdirs("sim")
subdirs("storage")
subdirs("net")
subdirs("mpi")
subdirs("ckpt")
subdirs("workloads")
subdirs("harness")
subdirs("integration")
subdirs("property")
