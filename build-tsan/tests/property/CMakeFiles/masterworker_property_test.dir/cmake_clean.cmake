file(REMOVE_RECURSE
  "CMakeFiles/masterworker_property_test.dir/masterworker_property_test.cpp.o"
  "CMakeFiles/masterworker_property_test.dir/masterworker_property_test.cpp.o.d"
  "masterworker_property_test"
  "masterworker_property_test.pdb"
  "masterworker_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masterworker_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
