# Empty dependencies file for masterworker_property_test.
# This may be replaced when dependencies are built.
