# CMake generated Testfile for 
# Source directory: /root/repo/tests/property
# Build directory: /root/repo/build-tsan/tests/property
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/property/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property/masterworker_property_test[1]_include.cmake")
