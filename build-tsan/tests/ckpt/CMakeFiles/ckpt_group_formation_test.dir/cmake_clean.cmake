file(REMOVE_RECURSE
  "CMakeFiles/ckpt_group_formation_test.dir/group_formation_test.cpp.o"
  "CMakeFiles/ckpt_group_formation_test.dir/group_formation_test.cpp.o.d"
  "ckpt_group_formation_test"
  "ckpt_group_formation_test.pdb"
  "ckpt_group_formation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_group_formation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
