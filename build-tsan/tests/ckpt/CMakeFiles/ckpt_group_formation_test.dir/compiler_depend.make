# Empty compiler generated dependencies file for ckpt_group_formation_test.
# This may be replaced when dependencies are built.
