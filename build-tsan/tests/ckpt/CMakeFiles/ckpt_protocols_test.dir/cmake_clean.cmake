file(REMOVE_RECURSE
  "CMakeFiles/ckpt_protocols_test.dir/protocols_test.cpp.o"
  "CMakeFiles/ckpt_protocols_test.dir/protocols_test.cpp.o.d"
  "ckpt_protocols_test"
  "ckpt_protocols_test.pdb"
  "ckpt_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
