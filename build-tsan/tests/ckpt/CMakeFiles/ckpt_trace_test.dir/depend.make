# Empty dependencies file for ckpt_trace_test.
# This may be replaced when dependencies are built.
