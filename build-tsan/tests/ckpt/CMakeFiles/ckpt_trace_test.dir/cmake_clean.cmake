file(REMOVE_RECURSE
  "CMakeFiles/ckpt_trace_test.dir/trace_test.cpp.o"
  "CMakeFiles/ckpt_trace_test.dir/trace_test.cpp.o.d"
  "ckpt_trace_test"
  "ckpt_trace_test.pdb"
  "ckpt_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
