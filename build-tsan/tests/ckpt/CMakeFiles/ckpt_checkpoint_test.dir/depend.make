# Empty dependencies file for ckpt_checkpoint_test.
# This may be replaced when dependencies are built.
