file(REMOVE_RECURSE
  "CMakeFiles/ckpt_checkpoint_test.dir/checkpoint_test.cpp.o"
  "CMakeFiles/ckpt_checkpoint_test.dir/checkpoint_test.cpp.o.d"
  "ckpt_checkpoint_test"
  "ckpt_checkpoint_test.pdb"
  "ckpt_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
