file(REMOVE_RECURSE
  "CMakeFiles/ckpt_store_test.dir/store_test.cpp.o"
  "CMakeFiles/ckpt_store_test.dir/store_test.cpp.o.d"
  "ckpt_store_test"
  "ckpt_store_test.pdb"
  "ckpt_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
