# Empty compiler generated dependencies file for ckpt_store_test.
# This may be replaced when dependencies are built.
