# Empty dependencies file for ckpt_checkpoint2_test.
# This may be replaced when dependencies are built.
