file(REMOVE_RECURSE
  "CMakeFiles/ckpt_checkpoint2_test.dir/checkpoint2_test.cpp.o"
  "CMakeFiles/ckpt_checkpoint2_test.dir/checkpoint2_test.cpp.o.d"
  "ckpt_checkpoint2_test"
  "ckpt_checkpoint2_test.pdb"
  "ckpt_checkpoint2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_checkpoint2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
