# CMake generated Testfile for 
# Source directory: /root/repo/tests/ckpt
# Build directory: /root/repo/build-tsan/tests/ckpt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/ckpt/ckpt_group_formation_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ckpt/ckpt_checkpoint_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ckpt/ckpt_checkpoint2_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ckpt/ckpt_store_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ckpt/ckpt_protocols_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ckpt/ckpt_trace_test[1]_include.cmake")
