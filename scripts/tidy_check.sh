#!/usr/bin/env bash
# Runs clang-tidy over src/ against the compile database the build exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is on by default). Checks come from the
# compiler defaults plus bugprone-* and performance-*; findings fail the run.
#
# Exits 0 with a warning when clang-tidy is not installed, mirroring
# check_format.sh: advisory on minimal machines, gating where the tool
# exists.
#
# Usage: scripts/tidy_check.sh [build-dir]
#   build-dir  tree containing compile_commands.json (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
TIDY=${TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "warning: $TIDY not found; skipping tidy check" >&2
  exit 0
fi
if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "error: $BUILD/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD -S ." >&2
  exit 1
fi

find src -name '*.cpp' | sort | xargs "$TIDY" -p "$BUILD" \
  --checks='bugprone-*,performance-*,-bugprone-easily-swappable-parameters' \
  --warnings-as-errors='*'
echo "tidy check passed"
