#!/usr/bin/env bash
# Dry-run clang-format over the sources and fail when anything would be
# rewritten. Prints the offending diff so CI logs show exactly what drifted.
#
# Exits 0 with a warning when clang-format is not installed (the container
# used for the figure runs does not ship it); this keeps the check advisory
# on minimal machines while still gating on developer boxes and CI.
#
# Usage: scripts/check_format.sh [clang-format-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

FMT=${1:-clang-format}
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "warning: $FMT not found; skipping format check" >&2
  exit 0
fi

status=0
while IFS= read -r f; do
  if ! diff -u "$f" <("$FMT" --style=file "$f") > /tmp/fmt_diff.$$; then
    echo "== format drift: $f"
    cat /tmp/fmt_diff.$$
    status=1
  fi
done < <(find src tests bench -name '*.cpp' -o -name '*.hpp' | sort)
rm -f /tmp/fmt_diff.$$

if [ "$status" -ne 0 ]; then
  echo "format check failed: run $FMT -i over the files above" >&2
fi
exit "$status"
