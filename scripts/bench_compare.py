#!/usr/bin/env python3
"""Compare BENCH_*.json perf snapshots and flag throughput regressions.

Usage: scripts/bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
           [--threshold PCT] [--write-median OUT.json]

Matches google-benchmark entries by name on `items_per_second` and sweep
records by their identifying fields on `events_per_second`, prints a
side-by-side delta table, and exits non-zero when any matched entry
regressed by more than PCT percent (default 10). Entries present in only
one snapshot are reported but never fail the check — benches come and go
across PRs; only like-for-like slowdowns block.

When more than one CURRENT snapshot is given (bench/run_benchmarks.sh
passes GBC_BENCH_REPS=3 reruns), each entry's current value is the
*median* across the reruns: on a single-CPU box one rerun's numbers swing
with host load, so gating on a lone sample flips the regression flag
between invocations (observed in PR 9). The median of three is stable.
--write-median additionally writes the first snapshot with every matched
metric replaced by its median — the stable file committed as
BENCH_pr<N>.json. Pass "-" as BASELINE to skip the comparison and only
merge (first run of a new repo, no baseline yet).

Invoked from bench/run_benchmarks.sh when a baseline snapshot is present
(GBC_BENCH_BASELINE, or the newest BENCH_pr*.json in the repo root).
"""

import argparse
import json
import statistics
import sys

# Fields that identify a sweep record across snapshots (everything that
# shapes the run; metrics and provenance are excluded).
SWEEP_KEY_FIELDS = (
    "sweep",
    "ranks",
    "shards",
    "threads",
    "points",
    "group_size",
    "topology",
    "mode",
)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def bench_rates(snap):
    out = {}
    for b in snap.get("benchmarks", []):
        ips = b.get("items_per_second")
        if isinstance(ips, (int, float)) and ips > 0:
            out[b["name"]] = float(ips)
    return out


def sweep_rates(snap):
    out = {}
    for s in snap.get("sweeps", []):
        eps = s.get("events_per_second")
        if not isinstance(eps, (int, float)) or eps <= 0:
            continue
        key = tuple(
            (f, s[f]) for f in SWEEP_KEY_FIELDS if f in s
        )
        out["sweep:" + ",".join(f"{k}={v}" for k, v in key)] = float(eps)
    return out


def median_rates(snaps):
    """Per-entry median of each snapshot's rate map (keys missing from some
    reruns use the values that are present)."""
    maps = [{**bench_rates(s), **sweep_rates(s)} for s in snaps]
    out = {}
    for key in {k for m in maps for k in m}:
        out[key] = statistics.median(m[key] for m in maps if key in m)
    return out


def write_median(path, snaps, cur):
    """Writes snaps[0] with every matched metric replaced by the median
    across the reruns, so the committed snapshot is as stable as the gate."""
    merged = snaps[0]
    for b in merged.get("benchmarks", []):
        if b.get("name") in cur and isinstance(
            b.get("items_per_second"), (int, float)
        ):
            b["items_per_second"] = cur[b["name"]]
    for s in merged.get("sweeps", []):
        key = "sweep:" + ",".join(
            f"{f}={s[f]}" for f in SWEEP_KEY_FIELDS if f in s
        )
        if key in cur and isinstance(
            s.get("events_per_second"), (int, float)
        ):
            s["events_per_second"] = cur[key]
    with open(path, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"wrote median snapshot ({len(snaps)} rep(s)) to {path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help='baseline snapshot, or "-" for none')
    ap.add_argument("current", nargs="+",
                    help="current snapshot(s); >1 = median across reruns")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression percentage that fails the check (default: 10)",
    )
    ap.add_argument(
        "--write-median",
        metavar="OUT.json",
        help="write the median-merged current snapshot here",
    )
    args = ap.parse_args()

    cur_snaps = [load(p) for p in args.current]
    cur = median_rates(cur_snaps)
    if args.write_median:
        write_median(args.write_median, cur_snaps, cur)
    if args.baseline == "-":
        print("no baseline: comparison skipped")
        return 0

    base_snap = load(args.baseline)
    base = {**bench_rates(base_snap), **sweep_rates(base_snap)}

    shared = sorted(set(base) & set(cur))
    regressions = []
    width = max((len(n) for n in shared), default=4)
    print(f"baseline: {args.baseline} ({base_snap.get('git_sha', '?')[:12]})")
    reps = len(cur_snaps)
    cur_sha = cur_snaps[0].get("git_sha", "?")[:12]
    print(f"current:  {', '.join(args.current)} "
          f"({cur_sha}{f', median of {reps}' if reps > 1 else ''})")
    print(f"{'name':<{width}}  {'baseline':>14}  {'current':>14}  {'delta':>8}")
    for name in shared:
        b, c = base[name], cur[name]
        delta = (c - b) / b * 100.0
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>14.3e}  {c:>14.3e}  {delta:>+7.1f}%{flag}")

    for name in sorted(set(base) - set(cur)):
        print(f"{name}: only in baseline (skipped)")
    for name in sorted(set(cur) - set(base)):
        print(f"{name}: new in current (no baseline)")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} item(s) regressed more than "
            f"{args.threshold:.0f}%:"
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    if not shared:
        print("warning: no comparable entries between the two snapshots")
    else:
        print(f"\nOK: no regression beyond {args.threshold:.0f}% "
              f"across {len(shared)} matched item(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
