#!/usr/bin/env python3
"""Compare two BENCH_*.json perf snapshots and flag throughput regressions.

Usage: scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Matches google-benchmark entries by name on `items_per_second` and sweep
records by their identifying fields on `events_per_second`, prints a
side-by-side delta table, and exits non-zero when any matched entry
regressed by more than PCT percent (default 10). Entries present in only
one snapshot are reported but never fail the check — benches come and go
across PRs; only like-for-like slowdowns block.

Invoked from bench/run_benchmarks.sh when a baseline snapshot is present
(GBC_BENCH_BASELINE, or the newest BENCH_pr*.json in the repo root).
"""

import argparse
import json
import sys

# Fields that identify a sweep record across snapshots (everything that
# shapes the run; metrics and provenance are excluded).
SWEEP_KEY_FIELDS = (
    "sweep",
    "ranks",
    "shards",
    "threads",
    "points",
    "group_size",
    "topology",
    "mode",
)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def bench_rates(snap):
    out = {}
    for b in snap.get("benchmarks", []):
        ips = b.get("items_per_second")
        if isinstance(ips, (int, float)) and ips > 0:
            out[b["name"]] = float(ips)
    return out


def sweep_rates(snap):
    out = {}
    for s in snap.get("sweeps", []):
        eps = s.get("events_per_second")
        if not isinstance(eps, (int, float)) or eps <= 0:
            continue
        key = tuple(
            (f, s[f]) for f in SWEEP_KEY_FIELDS if f in s
        )
        out["sweep:" + ",".join(f"{k}={v}" for k, v in key)] = float(eps)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression percentage that fails the check (default: 10)",
    )
    args = ap.parse_args()

    base_snap = load(args.baseline)
    cur_snap = load(args.current)
    base = {**bench_rates(base_snap), **sweep_rates(base_snap)}
    cur = {**bench_rates(cur_snap), **sweep_rates(cur_snap)}

    shared = sorted(set(base) & set(cur))
    regressions = []
    width = max((len(n) for n in shared), default=4)
    print(f"baseline: {args.baseline} ({base_snap.get('git_sha', '?')[:12]})")
    print(f"current:  {args.current} ({cur_snap.get('git_sha', '?')[:12]})")
    print(f"{'name':<{width}}  {'baseline':>14}  {'current':>14}  {'delta':>8}")
    for name in shared:
        b, c = base[name], cur[name]
        delta = (c - b) / b * 100.0
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>14.3e}  {c:>14.3e}  {delta:>+7.1f}%{flag}")

    for name in sorted(set(base) - set(cur)):
        print(f"{name}: only in baseline (skipped)")
    for name in sorted(set(cur) - set(base)):
        print(f"{name}: new in current (no baseline)")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} item(s) regressed more than "
            f"{args.threshold:.0f}%:"
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    if not shared:
        print("warning: no comparable entries between the two snapshots")
    else:
        print(f"\nOK: no regression beyond {args.threshold:.0f}% "
              f"across {len(shared)} matched item(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
