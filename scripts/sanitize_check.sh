#!/usr/bin/env bash
# Builds the tree under ASan+UBSan and runs the tier-1 test suite. The sim
# memory pools degrade to plain new/delete in this configuration
# (GBC_POOLS_PASSTHROUGH), so recycling cannot mask use-after-free in the
# message/request/suspension lifetimes the pools serve.
#
# Usage: scripts/sanitize_check.sh [build-dir]
#   build-dir  sanitizer build tree (default: build-asan)
set -euo pipefail

BUILD=${1:-build-asan}

cmake -B "$BUILD" -S . -DGBC_SANITIZE=address,undefined
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "sanitize check passed"
