#!/usr/bin/env bash
# Builds the tree under ASan+UBSan and runs the tier-1 test suite. The sim
# memory pools degrade to plain new/delete in this configuration
# (GBC_POOLS_PASSTHROUGH), so recycling cannot mask use-after-free in the
# message/request/suspension lifetimes the pools serve.
#
# A second stage rebuilds under TSan and runs the tests that actually cross
# threads: the sweep pool (label `sweep`), the staging-tier suites
# (label `storage`, swept 8-wide by the fig8 determinism check), the
# sharded DES (label `shard`: SPSC mailbox stress, window-barrier pool,
# thread budget, scale-model runs), the full protocol stack under relay
# sharding (label `fullshard`: `gbcsim run --shards 4` byte-identity plus
# the multi-threaded SimCluster integration suite), the erasure tier
# (label `erasure`: the GF(256) codec, parity-group recovery, and the fig9
# shard-determinism run), and the federated service LPs (label `svcshard`:
# per-group coordinator dispatch, root-LP recovery of a dead coordinator,
# partitioned-ledger determinism and the same-shard fast-path stress —
# DESIGN.md §15).
#
# Usage: scripts/sanitize_check.sh [build-dir] [tsan-build-dir]
#   build-dir       ASan/UBSan build tree (default: build-asan)
#   tsan-build-dir  TSan build tree       (default: build-tsan)
set -euo pipefail

BUILD=${1:-build-asan}
TSAN_BUILD=${2:-build-tsan}

cmake -B "$BUILD" -S . -DGBC_SANITIZE=address,undefined
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# Explicit ASan pass over the sharded full-stack suite: with the pools in
# passthrough, the per-rank LP hot path (pooled wire flights returned across
# shards, bus inbox functors, per-rank hook swaps) must be clean on its own.
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L fullshard

# Same for the erasure tier: the codec's table-driven GF math and the
# JoinSet-fanned chunk scatter/fetch paths get a dedicated ASan pass.
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L erasure

# And the service-LP federation: coordinator dispatch forks CycleContext
# across shards and the per-node ledger partitions hand pooled images
# between engines — exactly the lifetimes passthrough pools expose.
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L svcshard

echo "== thread sanitizer stage =="
cmake -B "$TSAN_BUILD" -S . -DGBC_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j "$(nproc)"
export TSAN_OPTIONS="halt_on_error=1"
ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$(nproc)" \
      -L "sweep|storage|shard|fullshard|erasure|svcshard"

echo "sanitize check passed"
