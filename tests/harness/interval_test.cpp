#include "harness/interval.hpp"

#include <gtest/gtest.h>

#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

ClusterPreset small_cluster(int n) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  return p;
}

WorkloadFactory factory(std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = 4;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 48.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

TEST(YoungInterval, FollowsSquareRootLaw) {
  EXPECT_NEAR(young_interval_seconds(50.0, 3600.0), 600.0, 1.0);
  // Cheaper checkpoints -> shorter optimal interval, by sqrt.
  EXPECT_NEAR(young_interval_seconds(12.5, 3600.0), 300.0, 1.0);
  EXPECT_GT(young_interval_seconds(50.0, 7200.0),
            young_interval_seconds(50.0, 3600.0));
}

TEST(PoissonFailures, NoFailuresWhenMtbfIsHuge) {
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  FailureModel fm;
  fm.mtbf_seconds = 1e9;
  auto res = run_with_poisson_failures(small_cluster(8), factory(100), cc,
                                       ckpt::Protocol::kGroupBased,
                                       sim::from_seconds(8), fm);
  EXPECT_EQ(res.failures, 0);
  auto clean = run_experiment(small_cluster(8), factory(100), cc);
  // Same run, plus periodic checkpoint overhead.
  EXPECT_GE(res.total_seconds, clean.completion_seconds());
  EXPECT_EQ(res.final_hashes, clean.final_hashes);
}

TEST(PoissonFailures, SurvivesFailuresAndMatchesCleanResult) {
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  FailureModel fm;
  fm.mtbf_seconds = 12.0;  // several failures over a ~15s run
  fm.seed = 7;
  auto res = run_with_poisson_failures(small_cluster(8), factory(120), cc,
                                       ckpt::Protocol::kGroupBased,
                                       sim::from_seconds(4), fm);
  auto clean = run_experiment(small_cluster(8), factory(120), cc);
  EXPECT_GT(res.failures, 0);
  EXPECT_EQ(res.final_hashes, clean.final_hashes);
  EXPECT_GT(res.total_seconds, clean.completion_seconds());
}

TEST(PoissonFailures, DeterministicForAGivenSeed) {
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  FailureModel fm;
  fm.mtbf_seconds = 15.0;
  fm.seed = 11;
  auto a = run_with_poisson_failures(small_cluster(4), factory(80), cc,
                                     ckpt::Protocol::kGroupBased,
                                     sim::from_seconds(4), fm);
  auto b = run_with_poisson_failures(small_cluster(4), factory(80), cc,
                                     ckpt::Protocol::kGroupBased,
                                     sim::from_seconds(4), fm);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.final_hashes, b.final_hashes);
}

TEST(PoissonFailures, CheckpointsReduceLostWorkUnderFrequentFailures) {
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  FailureModel fm;
  fm.mtbf_seconds = 10.0;
  fm.seed = 13;
  auto frequent = run_with_poisson_failures(small_cluster(8), factory(120),
                                            cc, ckpt::Protocol::kGroupBased,
                                            sim::from_seconds(3), fm);
  auto rare = run_with_poisson_failures(small_cluster(8), factory(120), cc,
                                        ckpt::Protocol::kGroupBased,
                                        sim::from_seconds(1000), fm);
  // Guarantee under test: with an interval of 3s (~30 iterations) plus the
  // cycle span, no single failure can lose much more than one interval of
  // work. Without checkpoints every failure loses *all* progress so far.
  ASSERT_GT(frequent.failures, 0);
  EXPECT_LT(frequent.lost_work_iterations /
                static_cast<std::uint64_t>(frequent.failures),
            70u);
  ASSERT_GT(rare.failures, 0);
  EXPECT_GE(rare.lost_work_iterations, 90u);  // some failure struck late
  EXPECT_EQ(frequent.final_hashes, rare.final_hashes);
}

}  // namespace
}  // namespace gbc::harness
