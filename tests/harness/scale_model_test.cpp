#include "harness/scale_model.hpp"

#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "harness/thread_budget.hpp"
#include "net/topology.hpp"

namespace gbc::harness {
namespace {

ScaleConfig small_config() {
  ScaleConfig cfg;
  cfg.nranks = 64;
  cfg.iterations = 4;
  cfg.comm_group = 8;
  cfg.net.topology = *net::parse_topology("fat-tree:8:2");
  cfg.footprint_mib = 4.0;
  cfg.chunk_mib = 2.0;
  cfg.pfs_servers = 4;
  cfg.ckpt_group = 16;
  cfg.issuance = sim::from_milliseconds(200);
  return cfg;
}

// The tentpole's determinism contract: shard count only partitions the
// event set, it never changes the simulation. 7 shards makes the rank
// blocks uneven on purpose.
TEST(ScaleModel, StateInvariantAcrossShardCounts) {
  auto cfg = small_config();
  cfg.shards = 1;
  cfg.threads = 1;
  const auto serial = run_scale_model(cfg);
  ASSERT_GT(serial.events, 0u);
  ASSERT_NE(serial.state_hash, 0u);
  for (int shards : {4, 7}) {
    cfg.shards = shards;
    const auto r = run_scale_model(cfg);
    EXPECT_EQ(r.state_hash, serial.state_hash) << shards << " shards";
    EXPECT_EQ(r.events, serial.events) << shards << " shards";
    EXPECT_DOUBLE_EQ(r.completion_seconds, serial.completion_seconds);
    EXPECT_DOUBLE_EQ(r.total_ckpt_seconds, serial.total_ckpt_seconds);
    EXPECT_EQ(r.shards, shards);
  }
}

TEST(ScaleModel, StateInvariantAcrossThreadCounts) {
  ThreadBudget::shared().set_capacity_for_test(4);
  auto cfg = small_config();
  cfg.shards = 4;
  cfg.threads = 1;
  const auto inline_run = run_scale_model(cfg);
  cfg.threads = 4;
  const auto threaded = run_scale_model(cfg);
  ThreadBudget::shared().set_capacity_for_test(0);

  EXPECT_EQ(threaded.threads_used, 4);
  EXPECT_EQ(inline_run.threads_used, 1);
  EXPECT_EQ(threaded.state_hash, inline_run.state_hash);
  EXPECT_EQ(threaded.events, inline_run.events);
  EXPECT_EQ(threaded.windows, inline_run.windows);
}

TEST(ScaleModel, BaseRunHasNoCheckpointCost) {
  auto cfg = small_config();
  cfg.issuance = -1;
  const auto r = run_scale_model(cfg);
  EXPECT_GT(r.completion_seconds, 0.0);
  EXPECT_EQ(r.total_ckpt_seconds, 0.0);
  EXPECT_EQ(r.individual_max_seconds, 0.0);
}

TEST(ScaleModel, CheckpointExtendsCompletion) {
  auto cfg = small_config();
  cfg.issuance = -1;
  const auto base = run_scale_model(cfg);
  cfg.issuance = sim::from_milliseconds(200);
  const auto ck = run_scale_model(cfg);
  EXPECT_GT(ck.completion_seconds, base.completion_seconds);
  EXPECT_GT(ck.total_ckpt_seconds, 0.0);
  EXPECT_GT(ck.individual_max_seconds, 0.0);
}

// The acceptance bar: a >= 4k-rank run completes (shards > 1, fat-tree) in
// CI time. Sized small in sim-time, full size in rank count.
TEST(ScaleModel, FourThousandRankSmoke) {
  ScaleConfig cfg;
  cfg.nranks = 4096;
  cfg.shards = 4;
  cfg.iterations = 2;
  cfg.comm_group = 16;
  cfg.net.topology = *net::parse_topology("fat-tree:32:2");
  cfg.footprint_mib = 1.0;
  cfg.chunk_mib = 1.0;
  cfg.pfs_servers = 64;
  cfg.ckpt_group = 1024;
  cfg.issuance = sim::from_milliseconds(50);
  const auto r = run_scale_model(cfg);
  EXPECT_GT(r.events, 40000u);
  EXPECT_GT(r.windows, 0u);
  EXPECT_GT(r.completion_seconds, 0.0);
  EXPECT_GT(r.total_ckpt_seconds, 0.0);
  EXPECT_GE(r.window_balance, 1.0);
}

// Sweep x shards composition: sharded runs inside a sweep must share one
// thread budget, so the process never holds more helper threads than the
// capacity allows (here: pinned to 4 -> at most 3 leased at any instant).
TEST(ScaleModel, SweepTimesShardsRespectsThreadBudget) {
  auto& budget = ThreadBudget::shared();
  budget.set_capacity_for_test(4);  // also resets the peak
  SweepRunner runner(4);
  auto cfg = small_config();
  cfg.shards = 4;
  cfg.threads = 0;  // lease from the budget
  const auto hashes = runner.map<std::uint64_t>(
      3, [&cfg](std::size_t) { return run_scale_model(cfg).state_hash; });
  const int peak = budget.peak_leased();
  const int leaked = budget.leased();
  budget.set_capacity_for_test(0);

  EXPECT_EQ(leaked, 0);
  EXPECT_LE(peak, 3);  // capacity - 1: the submitter's thread is free
  ASSERT_EQ(hashes.size(), 3u);
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

}  // namespace
}  // namespace gbc::harness
