#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

using workloads::CommGroupBench;
using workloads::CommGroupBenchConfig;

ClusterPreset small_cluster(int n) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters) {
  CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 32.0;
  return [cfg](int n) { return std::make_unique<CommGroupBench>(n, cfg); };
}

/// A representative mixed sweep: base runs and checkpointed runs over two
/// workload shapes and several group sizes.
std::vector<ExperimentPoint> mixed_sweep() {
  std::vector<ExperimentPoint> pts;
  for (int comm : {2, 4}) {
    ExperimentPoint base;
    base.preset = small_cluster(8);
    base.factory = microbench_factory(comm, 60);
    pts.push_back(base);
    for (int group : {0, 4, 2}) {
      ExperimentPoint p;
      p.preset = small_cluster(8);
      p.factory = microbench_factory(comm, 60);
      p.ckpt_cfg.group_size = group;
      p.requests.push_back(
          CkptRequest{sim::from_seconds(2), ckpt::Protocol::kGroupBased});
      pts.push_back(std::move(p));
    }
  }
  return pts;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.final_hashes, b.final_hashes);
  EXPECT_EQ(a.final_iterations, b.final_iterations);
  EXPECT_EQ(a.storage_peak_concurrency, b.storage_peak_concurrency);
  EXPECT_EQ(a.connection_setups, b.connection_setups);
  EXPECT_EQ(a.connection_teardowns, b.connection_teardowns);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t c = 0; c < a.checkpoints.size(); ++c) {
    EXPECT_EQ(a.checkpoints[c].completed_at, b.checkpoints[c].completed_at);
    EXPECT_EQ(a.checkpoints[c].max_individual_time(),
              b.checkpoints[c].max_individual_time());
    EXPECT_EQ(a.checkpoints[c].total_checkpoint_time(),
              b.checkpoints[c].total_checkpoint_time());
  }
}

TEST(SweepRunner, ParallelSweepIsBitIdenticalToSerial) {
  auto pts = mixed_sweep();
  SweepRunner serial(1);
  SweepRunner wide(8);
  auto a = run_experiments(serial, pts);
  auto b = run_experiments(wide, pts);
  ASSERT_EQ(a.size(), pts.size());
  ASSERT_EQ(b.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_identical(a[i], b[i]);
  }
}

TEST(SweepRunner, ResultsLandInSubmissionOrder) {
  SweepRunner runner(4);
  const std::size_t n = 64;
  auto out = runner.map<std::size_t>(
      n, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, RecordsPerPointStats) {
  auto pts = mixed_sweep();
  SweepStats stats;
  auto runs = run_experiments(SweepRunner::shared(), pts, &stats);
  ASSERT_EQ(stats.points.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_GT(stats.points[i].events_processed, 0u);
    EXPECT_EQ(stats.points[i].events_processed, runs[i].events_processed);
    EXPECT_GE(stats.points[i].wall_seconds, 0.0);
  }
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_EQ(stats.total_events(),
            std::accumulate(runs.begin(), runs.end(), std::uint64_t{0},
                            [](std::uint64_t acc, const RunResult& r) {
                              return acc + r.events_processed;
                            }));
}

TEST(SweepRunner, FirstExceptionPropagatesAfterDrain) {
  SweepRunner runner(4);
  std::atomic<int> completed{0};
  try {
    runner.map<int>(16, [&](std::size_t i) {
      if (i == 3) throw std::runtime_error("point 3 failed");
      if (i == 9) throw std::runtime_error("point 9 failed");
      ++completed;
      return static_cast<int>(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Lowest-index failure wins deterministically.
    EXPECT_STREQ(e.what(), "point 3 failed");
  }
  EXPECT_EQ(completed.load(), 14);
}

TEST(SweepRunner, HonorsThreadCountArgument) {
  EXPECT_EQ(SweepRunner(1).threads(), 1);
  EXPECT_EQ(SweepRunner(3).threads(), 3);
}

TEST(SweepRunner, EnvOverrideControlsDefaultWidth) {
  ASSERT_EQ(setenv("GBC_SWEEP_THREADS", "5", 1), 0);
  EXPECT_EQ(default_sweep_threads(), 5);
  EXPECT_EQ(SweepRunner(0).threads(), 5);
  // Invalid values fall back to hardware concurrency (>= 1).
  ASSERT_EQ(setenv("GBC_SWEEP_THREADS", "bogus", 1), 0);
  EXPECT_GE(default_sweep_threads(), 1);
  ASSERT_EQ(unsetenv("GBC_SWEEP_THREADS"), 0);
  EXPECT_GE(default_sweep_threads(), 1);
}

// Regression: a worker sitting between finishing its last job and its next
// index claim used to be able to claim index 0 of the NEXT batch while still
// holding the previous batch's fn — re-running an old job and starving the
// new batch. Tiny jobs in rapid back-to-back batches maximize that window.
TEST(SweepRunner, BackToBackBatchesNeverLeakAcrossHandoff) {
  SweepRunner runner(8);
  for (int batch = 0; batch < 200; ++batch) {
    const std::size_t n = 1 + static_cast<std::size_t>(batch % 7);
    std::vector<std::atomic<int>> ran(n);
    for (auto& r : ran) r.store(0);
    auto out = runner.map<int>(n, [&](std::size_t i) {
      ran[i].fetch_add(1);
      return batch * 100 + static_cast<int>(i);
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // Every index ran exactly once, with this batch's fn.
      EXPECT_EQ(ran[i].load(), 1) << "batch " << batch << " index " << i;
      EXPECT_EQ(out[i], batch * 100 + static_cast<int>(i));
    }
  }
}

// Regression: concurrent run_indexed calls used to overwrite each other's
// batch state mid-flight. They now serialize on a submit mutex.
TEST(SweepRunner, ConcurrentSubmittersSerializeSafely) {
  SweepRunner runner(4);
  constexpr int kSubmitters = 4;
  constexpr std::size_t kN = 32;
  std::vector<std::vector<std::size_t>> results(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 20; ++round) {
        results[s] = runner.map<std::size_t>(
            kN, [s](std::size_t i) { return static_cast<std::size_t>(s) * 1000 + i; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    ASSERT_EQ(results[s].size(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(results[s][i], static_cast<std::size_t>(s) * 1000 + i);
    }
  }
}

// Regression: a swept job that itself submits a sweep (e.g. via a
// pool-backed harness helper) used to corrupt the in-flight batch. Nested
// submissions now run inline on the calling thread instead of deadlocking
// or clobbering the outer batch.
TEST(SweepRunner, NestedSubmissionRunsInline) {
  SweepRunner runner(4);
  auto outer = runner.map<std::size_t>(8, [&](std::size_t i) {
    auto inner = runner.map<std::size_t>(
        4, [i](std::size_t j) { return i * 10 + j; });
    std::size_t sum = 0;
    for (std::size_t v : inner) sum += v;
    return sum;
  });
  ASSERT_EQ(outer.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    // sum_j (i*10 + j) for j in [0,4) = 40i + 6
    EXPECT_EQ(outer[i], 40 * i + 6);
  }
}

TEST(SweepRunner, EmptySweepIsANoop) {
  SweepRunner runner(4);
  SweepStats stats;
  auto out = run_experiments(runner, {}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(stats.points.empty());
}

TEST(SweepRunner, DelaySweepMatchesSerialMeasurement) {
  const auto preset = small_cluster(8);
  auto factory = microbench_factory(4, 60);
  const double base =
      run_experiment(preset, factory, ckpt::CkptConfig{}).completion_seconds();
  std::vector<DelayPoint> dps;
  for (int group : {0, 4, 2}) {
    DelayPoint dp;
    dp.ckpt_cfg.group_size = group;
    dp.issuance = sim::from_seconds(2);
    dps.push_back(dp);
  }
  auto swept = sweep_effective_delay_with_base(preset, factory, dps, base);
  ASSERT_EQ(swept.size(), dps.size());
  for (std::size_t i = 0; i < dps.size(); ++i) {
    auto serial = measure_effective_delay_with_base(
        preset, factory, dps[i].ckpt_cfg, dps[i].issuance,
        ckpt::Protocol::kGroupBased, base);
    EXPECT_DOUBLE_EQ(swept[i].with_ckpt_seconds, serial.with_ckpt_seconds);
    EXPECT_DOUBLE_EQ(swept[i].effective_delay_seconds(),
                     serial.effective_delay_seconds());
  }
}

TEST(Engine, CountsProcessedEvents) {
  sim::Engine eng;
  int fired = 0;
  for (int i = 0; i < 10; ++i) eng.schedule_at(i, [&fired] { ++fired; });
  EXPECT_EQ(eng.events_processed(), 0u);
  eng.run();
  EXPECT_EQ(fired, 10);
  // Exactly the scheduled callbacks, no hidden bookkeeping events.
  EXPECT_EQ(eng.events_processed(), 10u);
}

}  // namespace
}  // namespace gbc::harness
