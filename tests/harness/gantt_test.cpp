#include "harness/gantt.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace gbc::harness {
namespace {

ckpt::GlobalCheckpoint sample(int ranks) {
  ckpt::GlobalCheckpoint gc;
  gc.protocol = ckpt::Protocol::kGroupBased;
  gc.requested_at = sim::from_seconds(1);
  gc.completed_at = sim::from_seconds(9);
  gc.snapshots.resize(ranks);
  for (int r = 0; r < ranks; ++r) {
    gc.snapshots[r].rank = r;
    gc.snapshots[r].freeze_begin = sim::from_seconds(1 + 2 * r);
    gc.snapshots[r].taken_at = gc.snapshots[r].freeze_begin;
    gc.snapshots[r].resume_at = sim::from_seconds(3 + 2 * r);
  }
  return gc;
}

TEST(Gantt, OneLinePerRankWithFrozenWindow) {
  auto gc = sample(4);
  std::string out = render_gantt(gc, sim::from_seconds(10), 20);
  // 4 rank lines + header.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("group-based"), std::string::npos);
}

TEST(Gantt, StaggeredWindowsShiftRight) {
  auto gc = sample(3);
  std::string out = render_gantt(gc, sim::from_seconds(10), 40);
  // Rank 0's window starts earlier than rank 2's.
  auto line0 = out.substr(out.find("rank  0"));
  line0 = line0.substr(0, line0.find('\n'));
  auto line2 = out.substr(out.find("rank  2"));
  line2 = line2.substr(0, line2.find('\n'));
  EXPECT_LT(line0.find('#'), line2.find('#'));
}

TEST(Gantt, UnfrozenRankRendersNoHash) {
  auto gc = sample(2);
  gc.snapshots[1].freeze_begin = -1;  // never checkpointed
  gc.snapshots[1].resume_at = -1;
  std::string out = render_gantt(gc, sim::from_seconds(10), 20);
  auto line1 = out.substr(out.find("rank  1"));
  line1 = line1.substr(0, line1.find('\n'));
  EXPECT_EQ(line1.find('#'), std::string::npos);
}

TEST(Gantt, ComparisonStacksRunsWithTitles) {
  std::vector<std::pair<std::string, ckpt::GlobalCheckpoint>> runs;
  runs.emplace_back("first", sample(2));
  runs.emplace_back("second", sample(2));
  std::string out = render_gantt_comparison(runs, 20);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("second"), std::string::npos);
}

}  // namespace
}  // namespace gbc::harness
