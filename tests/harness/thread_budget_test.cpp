#include "harness/thread_budget.hpp"

#include <gtest/gtest.h>

namespace gbc::harness {
namespace {

// The budget is process-global; every test pins the capacity and restores
// environment-derived sizing (cap = 0) on the way out.
class ThreadBudgetTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadBudget::shared().set_capacity_for_test(0); }
};

TEST_F(ThreadBudgetTest, GrantNeverExceedsWantOrCapacity) {
  auto& b = ThreadBudget::shared();
  b.set_capacity_for_test(4);
  EXPECT_EQ(b.capacity(), 4);

  const int g = b.acquire(8);
  EXPECT_EQ(g, 4);  // own thread + 3 helpers
  EXPECT_EQ(b.leased(), 3);
  b.release(g);
  EXPECT_EQ(b.leased(), 0);
}

TEST_F(ThreadBudgetTest, CallersOwnThreadIsFree) {
  auto& b = ThreadBudget::shared();
  b.set_capacity_for_test(1);
  // Even a saturated machine grants width 1: run inline, lease nothing.
  const int g = b.acquire(16);
  EXPECT_EQ(g, 1);
  EXPECT_EQ(b.leased(), 0);
  b.release(g);
}

TEST_F(ThreadBudgetTest, ConcurrentAcquirersDegradeTowardInline) {
  auto& b = ThreadBudget::shared();
  b.set_capacity_for_test(4);
  const int sweep = b.acquire(3);   // e.g. a sweep batch
  EXPECT_EQ(sweep, 3);              // leases 2 helpers
  const int shards = b.acquire(4);  // a sharded run inside it
  EXPECT_EQ(shards, 2);             // only 1 helper slot left
  const int late = b.acquire(4);
  EXPECT_EQ(late, 1);               // budget exhausted: inline
  EXPECT_EQ(b.leased(), 3);
  EXPECT_EQ(b.peak_leased(), 3);    // never above capacity - 1
  b.release(late);
  b.release(shards);
  b.release(sweep);
  EXPECT_EQ(b.leased(), 0);
}

TEST_F(ThreadBudgetTest, AcquireOfOneLeasesNothing) {
  auto& b = ThreadBudget::shared();
  b.set_capacity_for_test(4);
  const int g = b.acquire(1);
  EXPECT_EQ(g, 1);
  EXPECT_EQ(b.leased(), 0);
  b.release(g);
}

TEST_F(ThreadBudgetTest, SetCapacityResetsPeak) {
  auto& b = ThreadBudget::shared();
  b.set_capacity_for_test(4);
  const int g = b.acquire(4);
  b.release(g);
  EXPECT_GT(b.peak_leased(), 0);
  b.set_capacity_for_test(2);
  EXPECT_EQ(b.peak_leased(), 0);
  EXPECT_EQ(b.capacity(), 2);
}

}  // namespace
}  // namespace gbc::harness
