#include "harness/cli.hpp"

#include <gtest/gtest.h>

namespace gbc::harness {
namespace {

FlagSet make_flags() {
  FlagSet f("test");
  f.add_string("name", "default", "a string");
  f.add_double("ratio", 1.5, "a double");
  f.add_int("count", 7, "an int");
  f.add_bool("verbose", false, "a bool");
  return f;
}

bool parse(FlagSet& f, std::vector<const char*> args) {
  return f.parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagSet, DefaultsApplyWithoutArguments) {
  FlagSet f = make_flags();
  EXPECT_TRUE(parse(f, {}));
  EXPECT_EQ(f.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 1.5);
  EXPECT_EQ(f.get_int("count"), 7);
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(FlagSet, SpaceSeparatedValues) {
  FlagSet f = make_flags();
  EXPECT_TRUE(parse(f, {"--name", "hpl", "--ratio", "2.25", "--count", "42"}));
  EXPECT_EQ(f.get_string("name"), "hpl");
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 2.25);
  EXPECT_EQ(f.get_int("count"), 42);
}

TEST(FlagSet, EqualsSeparatedValues) {
  FlagSet f = make_flags();
  EXPECT_TRUE(parse(f, {"--name=x", "--ratio=0.5", "--count=-3"}));
  EXPECT_EQ(f.get_string("name"), "x");
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.5);
  EXPECT_EQ(f.get_int("count"), -3);
}

TEST(FlagSet, BareBoolFlagTogglesTrue) {
  FlagSet f = make_flags();
  EXPECT_TRUE(parse(f, {"--verbose"}));
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(FlagSet, ExplicitBoolValues) {
  FlagSet f = make_flags();
  EXPECT_TRUE(parse(f, {"--verbose=false"}));
  EXPECT_FALSE(f.get_bool("verbose"));
  FlagSet g = make_flags();
  EXPECT_TRUE(parse(g, {"--verbose=1"}));
  EXPECT_TRUE(g.get_bool("verbose"));
}

TEST(FlagSet, UnknownFlagIsError) {
  FlagSet f = make_flags();
  EXPECT_FALSE(parse(f, {"--bogus", "1"}));
  EXPECT_NE(f.error().find("unknown flag"), std::string::npos);
}

TEST(FlagSet, MissingValueIsError) {
  FlagSet f = make_flags();
  EXPECT_FALSE(parse(f, {"--name"}));
  EXPECT_NE(f.error().find("needs a value"), std::string::npos);
}

TEST(FlagSet, NonNumericValueIsError) {
  FlagSet f = make_flags();
  EXPECT_FALSE(parse(f, {"--ratio", "abc"}));
  EXPECT_NE(f.error().find("expects a number"), std::string::npos);
  FlagSet g = make_flags();
  EXPECT_FALSE(parse(g, {"--count", "1.5"}));
  EXPECT_NE(g.error().find("expects an integer"), std::string::npos);
}

TEST(FlagSet, HelpShortCircuits) {
  FlagSet f = make_flags();
  EXPECT_FALSE(parse(f, {"--help"}));
  EXPECT_TRUE(f.help_requested());
  EXPECT_TRUE(f.error().empty());
  EXPECT_NE(f.usage().find("--ratio"), std::string::npos);
}

TEST(FlagSet, PositionalArgumentsNeedOptIn) {
  FlagSet f = make_flags();
  f.allow_positional();
  EXPECT_TRUE(parse(f, {"alpha", "--count", "3", "beta"}));
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(FlagSet, UnexpectedPositionalIsError) {
  FlagSet f = make_flags();
  EXPECT_FALSE(parse(f, {"alpha"}));
  EXPECT_NE(f.error().find("unexpected argument 'alpha'"), std::string::npos);
}

TEST(FlagSet, SingleDashFlagIsError) {
  FlagSet f = make_flags();
  EXPECT_FALSE(parse(f, {"-count", "3"}));
  EXPECT_NE(f.error().find("unknown flag -count"), std::string::npos);
  EXPECT_NE(f.error().find("--name"), std::string::npos);
}

}  // namespace
}  // namespace gbc::harness
