#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "harness/table.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

using workloads::CommGroupBench;
using workloads::CommGroupBenchConfig;

ClusterPreset small_cluster(int n) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters,
                                   double footprint_mib = 180.0) {
  CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = footprint_mib;
  return [cfg](int n) { return std::make_unique<CommGroupBench>(n, cfg); };
}

TEST(RunExperiment, BaseRunCompletesWithNoCheckpoints) {
  auto res = run_experiment(small_cluster(8), microbench_factory(4, 100),
                            ckpt::CkptConfig{});
  EXPECT_NEAR(res.completion_seconds(), 10.0, 1.0);
  EXPECT_TRUE(res.checkpoints.empty());
  for (auto it : res.final_iterations) EXPECT_EQ(it, 100u);
}

TEST(RunExperiment, IsDeterministic) {
  auto a = run_experiment(small_cluster(8), microbench_factory(4, 60),
                          ckpt::CkptConfig{});
  auto b = run_experiment(small_cluster(8), microbench_factory(4, 60),
                          ckpt::CkptConfig{});
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.final_hashes, b.final_hashes);
}

TEST(RunExperiment, CheckpointRequestIsHonoured) {
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});
  auto res = run_experiment(small_cluster(8), microbench_factory(4, 100), cc,
                            reqs);
  ASSERT_EQ(res.checkpoints.size(), 1u);
  EXPECT_EQ(res.checkpoints[0].plan.size(), 2);
  EXPECT_GT(res.completion_seconds(), 10.0);  // the checkpoint cost time
}

TEST(EffectiveDelay, GroupBasedBeatsBlockingForGroupedWorkload) {
  ckpt::CkptConfig grouped;
  grouped.group_size = 4;
  auto group_delay = measure_effective_delay(
      small_cluster(16), microbench_factory(4, 250), grouped,
      sim::from_seconds(4), ckpt::Protocol::kGroupBased);
  auto all_delay = measure_effective_delay(
      small_cluster(16), microbench_factory(4, 250), grouped,
      sim::from_seconds(4), ckpt::Protocol::kBlockingCoordinated);
  EXPECT_LT(group_delay.effective_delay_seconds(),
            0.6 * all_delay.effective_delay_seconds());
}

TEST(EffectiveDelay, LiesBetweenIndividualAndTotal) {
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  auto m = measure_effective_delay(small_cluster(16),
                                   microbench_factory(4, 250), cc,
                                   sim::from_seconds(4),
                                   ckpt::Protocol::kGroupBased);
  // Paper Sec. 5 (eq. 3c): Individual <= Effective <= Total, up to the small
  // coordination overheads outside the snapshot window.
  EXPECT_GE(m.effective_delay_seconds(), 0.9 * m.individual_seconds());
  EXPECT_LE(m.effective_delay_seconds(), 1.1 * m.total_seconds());
}

TEST(EffectiveDelay, BaseReuseMatchesFullMeasurement) {
  ckpt::CkptConfig cc;
  cc.group_size = 2;
  auto full = measure_effective_delay(small_cluster(4),
                                      microbench_factory(2, 120), cc,
                                      sim::from_seconds(2),
                                      ckpt::Protocol::kGroupBased);
  auto reused = measure_effective_delay_with_base(
      small_cluster(4), microbench_factory(2, 120), cc, sim::from_seconds(2),
      ckpt::Protocol::kGroupBased, full.base_seconds);
  EXPECT_DOUBLE_EQ(full.with_ckpt_seconds, reused.with_ckpt_seconds);
}

TEST(RunExperiment, HooksArePassedThrough) {
  class CountingHooks : public mpi::MpiHooks {
   public:
    int delivered = 0;
    void on_deliver(int, int, storage::Bytes) override { ++delivered; }
  } hooks;
  auto res = run_experiment(small_cluster(4), microbench_factory(2, 20),
                            ckpt::CkptConfig{}, {}, &hooks);
  EXPECT_GT(hooks.delivered, 0);
  (void)res;
}

TEST(Table, FormatsAndStoresRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({Table::num(3.14159, 2), "x"});
  EXPECT_EQ(t.rows().size(), 2u);
  EXPECT_EQ(t.rows()[1][0], "3.14");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| a"), std::string::npos);
}

}  // namespace
}  // namespace gbc::harness
