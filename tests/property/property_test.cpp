// Property-based tests: randomized (but fully deterministic, seed-driven)
// workloads and checkpoint schedules, validated against the invariants that
// make group-based checkpointing correct:
//
//  P1. Recovery-line consistency: no message crosses any cycle's line in one
//      direction only (no orphans, no lost in-transit messages).
//  P2. Restart equivalence: recovering from any checkpoint reproduces the
//      uninterrupted run's final state bit-for-bit.
//  P3. Buffer conservation: after the run drains, no bytes remain parked.
//  P4. Metric sanity: Individual <= Total per cycle, storage dominates.
//  P5. Group plans are partitions of the ranks for arbitrary traffic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ckpt/consistency.hpp"
#include "ckpt/group_formation.hpp"
#include "harness/recovery.hpp"
#include "harness/sim_cluster.hpp"
#include "sim/random.hpp"
#include "workloads/workload.hpp"

namespace gbc {
namespace {

using harness::CkptRequest;
using harness::ClusterPreset;
using harness::RunResult;

/// Deterministic chaos workload: every iteration each rank computes a random
/// slice, then exchanges a random-size message with an XOR-partner that
/// changes per iteration, and occasionally the whole world allreduces.
/// n must be a power of two so the XOR pairing is a perfect matching.
class ChaosWorkload : public workloads::Workload {
 public:
  ChaosWorkload(int nranks, std::uint64_t seed, std::uint64_t iters)
      : Workload(nranks), seed_(seed), iters_(iters) {
    for (int r = 0; r < nranks; ++r) {
      set_footprint(r, storage::mib(40.0 + (seed % 50)));
    }
  }

  using Workload::run_rank;
  sim::Task<void> run_rank(mpi::RankCtx& r,
                           workloads::WorkloadState from) override {
    const int me = r.world_rank();
    set_state(me, from);
    const mpi::Comm& wc = r.mpi().world();
    const int n = r.nranks();
    for (std::uint64_t it = from.iteration; it < iters_; ++it) {
      sim::Rng iter_rng = sim::Rng(seed_).fork(it);
      sim::Rng rank_rng = sim::Rng(seed_).fork(it * 131071 + me);
      co_await r.compute(
          sim::from_milliseconds(rank_rng.uniform(20.0, 160.0)));
      const std::uint64_t mode = iter_rng.next_u64() % 8;
      if (mode == 0) {
        // Global synchronization.
        (void)co_await r.allreduce(wc, mpi::Op::kSum, mpi::vec(1.0));
      } else {
        const int partner =
            me ^ static_cast<int>(1 + iter_rng.next_u64() % (n - 1));
        // Mix eager and rendezvous sizes.
        const storage::Bytes bytes =
            iter_rng.next_u64() % 2 == 0 ? 2048 : storage::mib(1);
        (void)co_await r.sendrecv(wc, partner, static_cast<mpi::Tag>(it),
                                  bytes, nullptr, partner,
                                  static_cast<mpi::Tag>(it));
      }
      commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
    }
  }

 private:
  std::uint64_t seed_;
  std::uint64_t iters_;
};

ClusterPreset chaos_cluster(int n) {
  ClusterPreset p = harness::icpp07_cluster();
  p.nranks = n;
  p.mpi.record_messages = true;
  return p;
}

harness::WorkloadFactory chaos_factory(std::uint64_t seed,
                                       std::uint64_t iters) {
  return [seed, iters](int n) {
    return std::make_unique<ChaosWorkload>(n, seed, iters);
  };
}

// ---------------------------------------------------------------------------
// P1 + P3 + P4: consistency, buffer conservation, metric sanity across a
// randomized sweep of seeds and group sizes.
// ---------------------------------------------------------------------------

struct SweepCase {
  std::uint64_t seed;
  int group_size;
};

class ConsistencySweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsistencySweep,
    ::testing::Values(SweepCase{1, 1}, SweepCase{2, 2}, SweepCase{3, 4},
                      SweepCase{4, 2}, SweepCase{5, 4}, SweepCase{6, 1},
                      SweepCase{7, 3}, SweepCase{8, 2}, SweepCase{9, 4},
                      SweepCase{10, 3}, SweepCase{11, 8}, SweepCase{12, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_g" +
             std::to_string(info.param.group_size);
    });

TEST_P(ConsistencySweep, RecoveryLinesAreConsistentAndBuffersDrain) {
  const auto param = GetParam();
  auto preset = chaos_cluster(8);
  ckpt::CkptConfig cc;
  cc.group_size = param.group_size;
  // Checkpoint times scattered through the run, derived from the seed.
  sim::Rng rng(param.seed * 7919);
  std::vector<CkptRequest> reqs;
  for (int i = 0; i < 2; ++i) {
    reqs.push_back(CkptRequest{
        sim::from_seconds(1.0 + rng.uniform(0.0, 5.0) + i * 15.0),
        ckpt::Protocol::kGroupBased});
  }
  RunResult res = harness::run_experiment(
      preset, chaos_factory(param.seed, 220), cc, reqs);

  ASSERT_EQ(res.checkpoints.size(), 2u);
  // (P1, the recovery-line check against the message trace, runs in the
  // MessageTraceNeverCrossesALine variant below, which drives the world
  // directly and therefore has access to the per-run message records.)
  // P4: metric sanity.
  for (const auto& gc : res.checkpoints) {
    EXPECT_LE(gc.max_individual_time(), gc.total_checkpoint_time());
    EXPECT_GT(gc.storage_fraction(), 0.5);
    EXPECT_LE(gc.storage_fraction(), 1.0);
    for (const auto& s : gc.snapshots) {
      EXPECT_GE(s.freeze_begin, gc.requested_at);
      EXPECT_GE(s.taken_at, s.freeze_begin);
      EXPECT_GE(s.resume_at, s.taken_at);
      EXPECT_LE(s.resume_at, gc.completed_at);
      EXPECT_GT(s.image_bytes, 0);
    }
  }
  // All ranks completed every iteration.
  for (auto it : res.final_iterations) EXPECT_EQ(it, 220u);
}

// The consistency check needs access to the run's message records, so this
// variant drives the world directly instead of via run_experiment.
TEST_P(ConsistencySweep, MessageTraceNeverCrossesALine) {
  const auto param = GetParam();
  harness::ClusterPreset preset;
  preset.nranks = 8;
  preset.mpi.record_messages = true;
  ckpt::CkptConfig cc;
  cc.group_size = param.group_size;
  harness::SimCluster cluster(preset, cc);
  sim::Engine& eng = cluster.engine();
  mpi::MiniMPI& mpi = cluster.mpi();
  ckpt::CheckpointService& svc = cluster.checkpoints();
  ChaosWorkload wl(8, param.seed, 220);
  wl.attach(svc);
  sim::Rng rng(param.seed * 104729);
  svc.request_at(sim::from_seconds(1.0 + rng.uniform(0.0, 6.0)),
                 ckpt::Protocol::kGroupBased);
  svc.request_at(sim::from_seconds(18.0 + rng.uniform(0.0, 6.0)),
                 ckpt::Protocol::kGroupBased);
  for (int r = 0; r < 8; ++r) eng.spawn(wl.run_rank(mpi.rank(r)));
  eng.run();

  ASSERT_EQ(svc.history().size(), 2u);
  for (const auto& gc : svc.history()) {
    auto report = ckpt::check_recovery_line(mpi.message_records(), gc);
    EXPECT_GT(report.checked, 50);
    EXPECT_EQ(report.violations, 0)
        << "seed=" << param.seed << " g=" << param.group_size << ": "
        << (report.details.empty() ? "" : report.details.front());
  }
  // P3: per-rank message buffers fully drained.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(mpi.rank(r).message_buffer_bytes(), 0) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// P2: restart equivalence across random failure points.
// ---------------------------------------------------------------------------

class RestartSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RestartSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST_P(RestartSweep, RecoveredRunMatchesCleanRunExactly) {
  const std::uint64_t seed = GetParam();
  auto preset = chaos_cluster(8);
  auto factory = chaos_factory(seed, 160);
  ckpt::CkptConfig cc;
  cc.group_size = static_cast<int>(1 + seed % 4);

  RunResult clean = harness::run_experiment(preset, factory, cc);
  sim::Rng rng(seed * 31337);
  const double ckpt_at = 2.0 + rng.uniform(0.0, 4.0);
  const double fail_at =
      clean.completion_seconds() * (0.55 + rng.uniform(0.0, 0.35));
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(ckpt_at),
                             ckpt::Protocol::kGroupBased});
  auto rec = harness::run_with_failure(preset, factory, cc, reqs,
                                       sim::from_seconds(fail_at));
  EXPECT_EQ(rec.final_hashes, clean.final_hashes) << "seed " << seed;
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
}

// ---------------------------------------------------------------------------
// P5: dynamic group plans are partitions for arbitrary traffic matrices.
// ---------------------------------------------------------------------------

class PlanSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PlanSweep,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

TEST_P(PlanSweep, DynamicPlanIsAlwaysAPartition) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  const int n = static_cast<int>(4 + rng.next_u64() % 29);  // 4..32
  std::vector<std::int64_t> traffic(static_cast<std::size_t>(n) * n, 0);
  const int edges = static_cast<int>(rng.next_u64() % (n * 2));
  for (int e = 0; e < edges; ++e) {
    int a = static_cast<int>(rng.next_u64() % n);
    int b = static_cast<int>(rng.next_u64() % n);
    if (a == b) continue;
    auto bytes = static_cast<std::int64_t>(rng.next_u64() % (1 << 22));
    traffic[static_cast<std::size_t>(a) * n + b] += bytes;
    traffic[static_cast<std::size_t>(b) * n + a] += bytes;
  }
  const int max_group = static_cast<int>(1 + rng.next_u64() % 8);
  auto plan = ckpt::dynamic_plan(traffic, n, max_group);
  std::vector<int> seen(n, 0);
  for (const auto& g : plan.groups) {
    EXPECT_FALSE(g.empty());
    if (plan.used_dynamic) {
      EXPECT_LE(static_cast<int>(g.size()), max_group);
    }
    for (int m : g) {
      ASSERT_GE(m, 0);
      ASSERT_LT(m, n);
      ++seen[m];
    }
  }
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(seen[r], 1) << "rank " << r << " seed " << seed;
  }
}

}  // namespace
}  // namespace gbc
