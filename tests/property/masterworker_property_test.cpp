// Property sweep for the master/worker task farm: MPI_ANY_SOURCE service
// loops under group-based checkpointing. The wildcard matching path and the
// master's hub position (connected to everyone, in the first checkpoint
// group) stress the deferral gate differently from the grid workloads.
#include <gtest/gtest.h>

#include <memory>

#include "ckpt/consistency.hpp"
#include "harness/recovery.hpp"
#include "harness/sim_cluster.hpp"
#include "sim/random.hpp"
#include "workloads/masterworker.hpp"

namespace gbc {
namespace {

workloads::MasterWorkerConfig mw_cfg(std::uint64_t seed) {
  workloads::MasterWorkerConfig c;
  c.rounds = 50;
  c.mean_chunk_seconds = 0.3;
  c.seed = seed;
  c.footprint_mib = 64.0;
  return c;
}

class MwSweep : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, MwSweep,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

TEST_P(MwSweep, RecoveryLineConsistentUnderCheckpointing) {
  const std::uint64_t seed = GetParam();
  harness::ClusterPreset preset;
  preset.nranks = 8;
  preset.mpi.record_messages = true;
  ckpt::CkptConfig cc;
  cc.group_size = static_cast<int>(1 + seed % 4);
  harness::SimCluster cluster(preset, cc);
  sim::Engine& eng = cluster.engine();
  mpi::MiniMPI& mpi = cluster.mpi();
  ckpt::CheckpointService& svc = cluster.checkpoints();
  workloads::MasterWorkerSim wl(8, mw_cfg(seed));
  wl.attach(svc);
  sim::Rng rng(seed * 65537);
  svc.request_at(sim::from_seconds(1.0 + rng.uniform(0.0, 4.0)),
                 ckpt::Protocol::kGroupBased);
  for (int r = 0; r < 8; ++r) eng.spawn(wl.run_rank(mpi.rank(r)));
  eng.run();

  ASSERT_EQ(svc.history().size(), 1u);
  auto report =
      ckpt::check_recovery_line(mpi.message_records(), svc.history().front());
  EXPECT_GT(report.checked, 100);
  EXPECT_EQ(report.violations, 0)
      << "seed=" << seed << ": "
      << (report.details.empty() ? "" : report.details.front());
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(wl.state(r).iteration, 50u) << "rank " << r;
  }
}

TEST_P(MwSweep, FailureRecoveryReproducesResult) {
  const std::uint64_t seed = GetParam();
  harness::ClusterPreset preset = harness::icpp07_cluster();
  preset.nranks = 8;
  auto cfg = mw_cfg(seed);
  harness::WorkloadFactory factory = [cfg](int n) {
    return std::make_unique<workloads::MasterWorkerSim>(n, cfg);
  };
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  auto clean = harness::run_experiment(preset, factory, cc);
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(
      harness::CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});
  sim::Rng rng(seed);
  auto rec = harness::run_with_failure(
      preset, factory, cc, reqs,
      sim::from_seconds(clean.completion_seconds() *
                        (0.5 + rng.uniform(0.0, 0.4))));
  EXPECT_EQ(rec.final_hashes, clean.final_hashes) << "seed " << seed;
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
}

}  // namespace
}  // namespace gbc
