#include <gtest/gtest.h>

#include <vector>

#include "mpi_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::mpi {
namespace {

using storage::mib;
using testing::MpiWorld;

TEST(P2P, EagerSendRecvDeliversBytesAndTag) {
  MpiWorld w(2);
  RecvInfo got;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 42, 1024);
    } else {
      got = co_await r.recv(wc, 0, 42);
    }
  });
  EXPECT_EQ(got.source, 0);
  EXPECT_EQ(got.tag, 42);
  EXPECT_EQ(got.bytes, 1024);
}

TEST(P2P, PayloadContentArrivesIntact) {
  MpiWorld w(2);
  std::vector<double> got;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 24, make_payload(1.5, 2.5, 3.5));
    } else {
      auto info = co_await r.recv(wc, 0, 0);
      got = *info.data;
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST(P2P, RendezvousTransfersLargeMessages) {
  MpiWorld w(2);
  RecvInfo got;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 7, mib(4));  // way over eager threshold
    } else {
      got = co_await r.recv(wc, 0, 7);
    }
  });
  EXPECT_EQ(got.bytes, mib(4));
}

TEST(P2P, RendezvousSenderBlocksUntilReceiverArrives) {
  MpiWorld w(2);
  sim::Time send_done = -1, recv_posted_at = sim::from_seconds(2);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, mib(1));
      send_done = w.eng.now();
    } else {
      co_await r.compute(recv_posted_at);
      co_await r.recv(wc, 0, 0);
    }
  });
  EXPECT_GE(send_done, recv_posted_at);
}

TEST(P2P, EagerSendCompletesBeforeReceiverArrives) {
  MpiWorld w(2);
  sim::Time send_done = -1;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 512);  // eager: buffered, returns quickly
      send_done = w.eng.now();
    } else {
      co_await r.compute(sim::from_seconds(1));
      co_await r.recv(wc, 0, 0);
    }
  });
  EXPECT_LT(send_done, sim::from_milliseconds(10));
}

TEST(P2P, UnexpectedMessageMatchesLaterRecv) {
  MpiWorld w(2);
  RecvInfo got;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 5, 100);
    } else {
      co_await r.compute(sim::from_milliseconds(100));  // message sits queued
      got = co_await r.recv(wc, 0, 5);
    }
  });
  EXPECT_EQ(got.bytes, 100);
}

TEST(P2P, AnySourceMatchesFirstArrival) {
  MpiWorld w(3);
  std::vector<int> sources;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        auto info = co_await r.recv(wc, kAnySource, 3);
        sources.push_back(info.source);
      }
    } else {
      co_await r.compute(sim::from_microseconds(r.world_rank() * 100));
      co_await r.send(wc, 0, 3, 64);
    }
  });
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 1);  // rank 1 sent earlier
  EXPECT_EQ(sources[1], 2);
}

TEST(P2P, AnyTagMatchesAnyMessage) {
  MpiWorld w(2);
  Tag got_tag = -99;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 1234, 64);
    } else {
      auto info = co_await r.recv(wc, 0, kAnyTag);
      got_tag = info.tag;
    }
  });
  EXPECT_EQ(got_tag, 1234);
}

TEST(P2P, TagSelectionSkipsNonMatching) {
  MpiWorld w(2);
  std::vector<Tag> order;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 10, 64);
      co_await r.send(wc, 1, 20, 64);
    } else {
      co_await r.compute(sim::from_milliseconds(1));
      auto a = co_await r.recv(wc, 0, 20);  // matches the second message
      auto b = co_await r.recv(wc, 0, 10);
      order = {a.tag, b.tag};
    }
  });
  EXPECT_EQ(order, (std::vector<Tag>{20, 10}));
}

TEST(P2P, SamePairSameTagIsNonOvertaking) {
  MpiWorld w(2);
  std::vector<double> values;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        co_await r.send(wc, 1, 0, 64, make_payload(static_cast<double>(i)));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        auto info = co_await r.recv(wc, 0, 0);
        values.push_back(info.data->at(0));
      }
    }
  });
  EXPECT_EQ(values, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(P2P, MixedEagerAndRendezvousKeepSendOrderPerTag) {
  MpiWorld w(2);
  std::vector<Bytes> sizes;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      Request big = r.isend(wc, 1, 0, mib(1));
      co_await r.send(wc, 1, 0, 64);
      co_await r.wait(big);
    } else {
      auto a = co_await r.recv(wc, 0, 0);
      auto b = co_await r.recv(wc, 0, 0);
      sizes = {a.bytes, b.bytes};
    }
  });
  EXPECT_EQ(sizes, (std::vector<Bytes>{mib(1), 64}));
}

TEST(P2P, IsendIrecvWaitAll) {
  MpiWorld w(2);
  int completed = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < 4; ++i) reqs.push_back(r.isend(wc, 1, i, mib(1)));
      co_await r.wait_all(reqs);
      completed += 4;
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < 4; ++i) reqs.push_back(r.irecv(wc, 0, i));
      co_await r.wait_all(reqs);
      for (auto& rq : reqs) {
        EXPECT_EQ(rq->info.bytes, mib(1));
      }
    }
  });
  EXPECT_EQ(completed, 4);
}

TEST(P2P, TestReflectsCompletionState) {
  MpiWorld w(2);
  bool before = true, after = false;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.compute(sim::from_milliseconds(5));
      co_await r.send(wc, 1, 0, 64);
    } else {
      Request rq = r.irecv(wc, 0, 0);
      before = r.test(rq);
      co_await r.wait(rq);
      after = r.test(rq);
    }
  });
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(P2P, SelfSendCompletesLocally) {
  MpiWorld w(2);
  RecvInfo got;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 0, 9, 256, make_payload(7.0));
      got = co_await r.recv(wc, 0, 9);
    }
    co_return;
  });
  EXPECT_EQ(got.bytes, 256);
  ASSERT_TRUE(got.data);
  EXPECT_EQ(got.data->at(0), 7.0);
}

TEST(P2P, DistinctCommsDoNotCrossMatch) {
  MpiWorld w(2);
  const Comm& sub = w.mpi.create_comm({0, 1});
  std::vector<double> order;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 64, make_payload(1.0));
      co_await r.send(sub, 1, 0, 64, make_payload(2.0));
    } else {
      co_await r.compute(sim::from_milliseconds(1));
      auto s = co_await r.recv(sub, 0, 0);  // must get the sub-comm message
      auto g = co_await r.recv(wc, 0, 0);
      order = {s.data->at(0), g.data->at(0)};
    }
  });
  EXPECT_EQ(order, (std::vector<double>{2.0, 1.0}));
}

TEST(P2P, ManyRanksPairwiseExchange) {
  const int n = 8;
  MpiWorld w(n);
  int oks = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    const int me = r.world_rank();
    const int peer = me ^ 1;
    Request rq = r.irecv(wc, peer, 0);
    co_await r.send(wc, peer, 0, 4096);
    co_await r.wait(rq);
    if (rq->info.bytes == 4096) ++oks;
  });
  EXPECT_EQ(oks, n);
}

TEST(P2P, StatsCountSendsAndRecvs) {
  MpiWorld w(2);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 64);
      co_await r.send(wc, 1, 0, 64);
    } else {
      co_await r.recv(wc, 0, 0);
      co_await r.recv(wc, 0, 0);
    }
  });
  EXPECT_EQ(w.mpi.stats().sends, 2);
  EXPECT_EQ(w.mpi.stats().recvs, 2);
}

TEST(P2P, TrafficMatrixSeesP2PBytes) {
  MpiWorld w(2);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 1000);
    } else {
      co_await r.recv(wc, 0, 0);
    }
  });
  EXPECT_GE(w.fabric.bytes_between(0, 1), 1000);
}

TEST(P2P, MessageRecordsCaptureTransmitAndArrival) {
  MpiConfig mc;
  mc.record_messages = true;
  MpiWorld w(2, mc);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 4096);
      co_await r.send(wc, 1, 0, mib(2));
    } else {
      co_await r.recv(wc, 0, 0);
      co_await r.recv(wc, 0, 0);
    }
  });
  const auto& recs = w.mpi.message_records();
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& m : recs) {
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.dst, 1);
    EXPECT_GE(m.transmit_time, 0);
    EXPECT_GT(m.arrival_time, m.transmit_time);
  }
}

}  // namespace
}  // namespace gbc::mpi
