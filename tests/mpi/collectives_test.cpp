#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi_test_util.hpp"
#include "sim/time.hpp"

namespace gbc::mpi {
namespace {

using testing::MpiWorld;

// Collective correctness is checked across a sweep of communicator sizes,
// including non-powers of two, since the binomial/dissemination algorithms
// have distinct edge paths there.
class CollectiveSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32));

TEST_P(CollectiveSizes, BarrierSynchronizesStaggeredRanks) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<sim::Time> out_times(n);
  sim::Time latest_in = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    // Ranks arrive at very different times.
    co_await r.compute(sim::from_milliseconds(10 * r.world_rank()));
    latest_in = std::max(latest_in, w.eng.now());
    co_await r.barrier(wc);
    out_times[r.world_rank()] = w.eng.now();
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(out_times[i], latest_in) << "rank " << i << " left early";
  }
}

TEST_P(CollectiveSizes, BcastDeliversRootValueEverywhere) {
  const int n = GetParam();
  MpiWorld w(n);
  const int root = n > 2 ? 2 : 0;
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    Payload data = r.world_rank() == root ? make_payload(3.25, 1.0) : nullptr;
    Payload result = co_await r.bcast(wc, root, 16, data);
    got[r.world_rank()] = result ? result->at(0) : -2;
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], 3.25) << "rank " << i;
}

TEST_P(CollectiveSizes, ReduceSumsContributionsAtRoot) {
  const int n = GetParam();
  MpiWorld w(n);
  const int root = 0;
  std::vector<double> result;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    double me = static_cast<double>(r.world_rank());
    auto red = co_await r.reduce(wc, root, Op::kSum, vec(me, 1.0));
    if (r.world_rank() == root) result = red;
  });
  ASSERT_EQ(result.size(), 2u);
  EXPECT_DOUBLE_EQ(result[0], n * (n - 1) / 2.0);
  EXPECT_DOUBLE_EQ(result[1], n);
}

TEST_P(CollectiveSizes, AllreduceMaxAgreesEverywhere) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    double me = static_cast<double>(r.world_rank());
    auto res = co_await r.allreduce(wc, Op::kMax, vec(me));
    got[r.world_rank()] = res.at(0);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], n - 1) << "rank " << i;
}

TEST_P(CollectiveSizes, AllgatherConcatenatesByRank) {
  const int n = GetParam();
  MpiWorld w(n);
  int correct = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    double me = static_cast<double>(r.world_rank());
    auto all = co_await r.allgather(wc, 8, vec(me));
    bool ok = static_cast<int>(all.size()) == n;
    for (int i = 0; ok && i < n; ++i) ok = all[i] == i;
    if (ok) ++correct;
  });
  EXPECT_EQ(correct, n);
}

TEST_P(CollectiveSizes, GatherCollectsAtRoot) {
  const int n = GetParam();
  MpiWorld w(n);
  const int root = n - 1;
  std::vector<double> result;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    double me = static_cast<double>(r.world_rank());
    auto g = co_await r.gather(wc, root, 8, vec(me * 10));
    if (r.world_rank() == root) result = g;
  });
  ASSERT_EQ(result.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(result[i], i * 10);
}

TEST_P(CollectiveSizes, ScatterDistributesRootBlocks) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    std::vector<double> all;
    if (r.world_rank() == 0) {
      for (int i = 0; i < n; ++i) all.push_back(i * 100.0);
    }
    auto mine = co_await r.scatter(wc, 0, 8, std::move(all));
    got[r.world_rank()] = mine.empty() ? -2 : mine[0];
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], i * 100.0) << "rank " << i;
}

TEST_P(CollectiveSizes, AlltoallCompletes) {
  const int n = GetParam();
  MpiWorld w(n);
  int done = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    co_await r.alltoall(w.mpi.world(), 2048);
    ++done;
  });
  EXPECT_EQ(done, n);
}

TEST(Collectives, BackToBackCollectivesDoNotCrossMatch) {
  MpiWorld w(4);
  std::vector<double> sums(4, 0);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    for (int iter = 0; iter < 10; ++iter) {
      auto res = co_await r.allreduce(wc, Op::kSum, vec(1.0));
      sums[r.world_rank()] += res.at(0);
    }
  });
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(sums[i], 40.0);
}

TEST(Collectives, SubCommCollectivesStayInSubComm) {
  MpiWorld w(4);
  const Comm& even = w.mpi.create_comm({0, 2});
  const Comm& odd = w.mpi.create_comm({1, 3});
  std::vector<double> got(4, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const int me = r.world_rank();
    const Comm& c = me % 2 == 0 ? even : odd;
    auto res = co_await r.allreduce(c, Op::kSum, vec(static_cast<double>(me)));
    got[me] = res.at(0);
  });
  EXPECT_EQ(got[0], 2);  // 0+2
  EXPECT_EQ(got[2], 2);
  EXPECT_EQ(got[1], 4);  // 1+3
  EXPECT_EQ(got[3], 4);
}

TEST(Collectives, SplitByColorBuildsRowComms) {
  MpiWorld w(6);
  // colors = row index for a 3x2 grid.
  auto rows = w.mpi.split(w.mpi.world(), {0, 0, 1, 1, 2, 2});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0]->members(), (std::vector<int>{0, 1}));
  EXPECT_EQ(rows[1]->members(), (std::vector<int>{2, 3}));
  EXPECT_EQ(rows[2]->members(), (std::vector<int>{4, 5}));
  std::vector<double> got(6, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const int me = r.world_rank();
    const Comm& mine = *rows[me / 2];
    auto res = co_await r.allreduce(mine, Op::kSum,
                                    vec(static_cast<double>(me)));
    got[me] = res.at(0);
  });
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[3], 5);
  EXPECT_EQ(got[5], 9);
}

TEST(Collectives, LargePayloadBcastUsesRendezvous) {
  MpiWorld w(4);
  std::vector<Bytes> sizes(4, 0);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    Payload data =
        r.world_rank() == 0 ? make_payload(std::vector<double>(64, 1.0))
                            : nullptr;
    auto res = co_await r.bcast(wc, 0, storage::mib(2), data);
    sizes[r.world_rank()] = res ? static_cast<Bytes>(res->size()) : 0;
  });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sizes[i], 64);
}

TEST(Collectives, BarrierOnSingletonCommIsFree) {
  MpiWorld w(2);
  const Comm& solo = w.mpi.create_comm({0});
  sim::Time t = -1;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    if (r.world_rank() == 0) {
      co_await r.barrier(solo);
      t = w.eng.now();
    }
    co_return;
  });
  EXPECT_EQ(t, 0);
}

TEST(Collectives, CommRankTranslationRoundTrips) {
  MpiWorld w(6);
  const Comm& c = w.mpi.create_comm({5, 3, 1});
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.world_rank(0), 5);
  EXPECT_EQ(c.world_rank(2), 1);
  EXPECT_EQ(c.comm_rank(3), 1);
  EXPECT_EQ(c.comm_rank(0), -1);
  EXPECT_TRUE(c.contains(5));
  EXPECT_FALSE(c.contains(2));
}

}  // namespace
}  // namespace gbc::mpi
