#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "mpi_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::mpi {
namespace {

using storage::mib;
using testing::MpiWorld;

/// Test gate: blocks the configured unordered pairs.
class PairGate : public CommGate {
 public:
  explicit PairGate(sim::Engine& eng) : cv_(eng) {}
  bool allowed(int a, int b) const override {
    return blocked_.count(key(a, b)) == 0;
  }
  sim::Condition& changed(int /*src_world*/) override { return cv_; }
  void block(int a, int b) {
    blocked_.insert(key(a, b));
    cv_.notify_all();
  }
  void unblock(int a, int b) {
    blocked_.erase(key(a, b));
    cv_.notify_all();
  }
  void unblock_all() {
    blocked_.clear();
    cv_.notify_all();
  }

 private:
  static std::pair<int, int> key(int a, int b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }
  sim::Condition cv_;
  std::set<std::pair<int, int>> blocked_;
};

TEST(Gate, EagerSendReturnsImmediatelyWhileGated) {
  MpiWorld w(2);
  PairGate gate(w.eng);
  gate.block(0, 1);
  w.mpi.set_gate(&gate);
  sim::Time send_done = -1, recv_done = -1;
  w.eng.schedule_at(sim::from_seconds(1), [&] { gate.unblock_all(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 512);  // message buffering: local completion
      send_done = w.eng.now();
    } else {
      co_await r.recv(wc, 0, 0);
      recv_done = w.eng.now();
    }
  });
  EXPECT_LT(send_done, sim::from_milliseconds(1));
  EXPECT_GE(recv_done, sim::from_seconds(1));  // delivery deferred by gate
}

TEST(Gate, MessageBufferingCountsBytesAndDrains) {
  MpiWorld w(2);
  PairGate gate(w.eng);
  gate.block(0, 1);
  w.mpi.set_gate(&gate);
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    // While gated, the bytes are parked in rank 0's message buffer.
    EXPECT_EQ(w.mpi.rank(0).message_buffer_bytes(), 3 * 512);
    gate.unblock_all();
  });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      for (int i = 0; i < 3; ++i) co_await r.send(wc, 1, i, 512);
    } else {
      for (int i = 0; i < 3; ++i) co_await r.recv(wc, 0, i);
    }
  });
  EXPECT_EQ(w.mpi.stats().messages_buffered, 3);
  EXPECT_EQ(w.mpi.stats().message_buffered_bytes, 3 * 512);
  EXPECT_EQ(w.mpi.stats().peak_message_buffer, 3 * 512);
  EXPECT_EQ(w.mpi.rank(0).message_buffer_bytes(), 0);  // drained after flush
}

TEST(Gate, RendezvousBecomesBufferedRequest) {
  MpiWorld w(2);
  PairGate gate(w.eng);
  gate.block(0, 1);
  w.mpi.set_gate(&gate);
  sim::Time send_done = -1;
  w.eng.schedule_at(sim::from_seconds(1), [&] { gate.unblock_all(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, mib(4));  // request buffering: stays open
      send_done = w.eng.now();
    } else {
      co_await r.recv(wc, 0, 0);
    }
  });
  EXPECT_GE(send_done, sim::from_seconds(1));
  EXPECT_GE(w.mpi.stats().requests_buffered, 1);
  EXPECT_GE(w.mpi.stats().request_buffered_bytes, mib(4));
  // Request buffering holds no payload copy.
  EXPECT_EQ(w.mpi.stats().message_buffered_bytes, 0);
}

TEST(Gate, UnrelatedPairsFlowFreely) {
  MpiWorld w(4);
  PairGate gate(w.eng);
  gate.block(0, 1);
  w.mpi.set_gate(&gate);
  sim::Time pair23_done = -1;
  w.eng.schedule_at(sim::from_seconds(5), [&] { gate.unblock_all(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    switch (r.world_rank()) {
      case 0:
        co_await r.send(wc, 1, 0, mib(1));
        break;
      case 1:
        co_await r.recv(wc, 0, 0);
        break;
      case 2:
        co_await r.send(wc, 3, 0, mib(1));
        break;
      case 3:
        co_await r.recv(wc, 2, 0);
        pair23_done = w.eng.now();
        break;
    }
  });
  EXPECT_LT(pair23_done, sim::from_seconds(1));
}

TEST(Gate, ReopeningFlushesInFifoOrder) {
  MpiWorld w(2);
  PairGate gate(w.eng);
  gate.block(0, 1);
  w.mpi.set_gate(&gate);
  std::vector<double> order;
  w.eng.schedule_at(sim::from_milliseconds(100), [&] { gate.unblock_all(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        co_await r.send(wc, 1, 0, 64, make_payload(static_cast<double>(i)));
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        auto info = co_await r.recv(wc, 0, 0);
        order.push_back(info.data->at(0));
      }
    }
  });
  EXPECT_EQ(order, (std::vector<double>{0, 1, 2, 3}));
}

TEST(Gate, RemovingGateReleasesEverything) {
  MpiWorld w(2);
  PairGate gate(w.eng);
  gate.block(0, 1);
  w.mpi.set_gate(&gate);
  bool done = false;
  w.eng.schedule_at(sim::from_milliseconds(10), [&] {
    w.mpi.set_gate(nullptr);
  });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, mib(1));
    } else {
      co_await r.recv(wc, 0, 0);
      done = true;
    }
  });
  EXPECT_TRUE(done);
}

TEST(Gate, GateClosingMidStreamDefersTail) {
  MpiWorld w(2);
  PairGate gate(w.eng);
  w.mpi.set_gate(&gate);
  std::vector<sim::Time> arrivals;
  // Give the first message time to cross (connection setup is ~1.2ms);
  // anything not yet on the wire when the gate closes must be deferred.
  w.eng.schedule_at(sim::from_milliseconds(5), [&] { gate.block(0, 1); });
  w.eng.schedule_at(sim::from_seconds(2), [&] { gate.unblock_all(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 64);
      co_await r.compute(sim::from_milliseconds(10));
      co_await r.send(wc, 1, 0, 64);  // sent after the gate closed
    } else {
      for (int i = 0; i < 2; ++i) {
        co_await r.recv(wc, 0, 0);
        arrivals.push_back(w.eng.now());
      }
    }
  });
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_LT(arrivals[0], sim::from_milliseconds(5));
  EXPECT_GE(arrivals[1], sim::from_seconds(2));
}

TEST(Gate, FrozenRankDefersDeliveryUntilThaw) {
  MpiWorld w(2);
  sim::Time recv_done = -1;
  // Freeze rank 1 before the message can arrive; connection establishment
  // toward a frozen endpoint stalls, so delivery waits for the thaw.
  w.mpi.rank(1).freeze();
  w.eng.schedule_at(sim::from_seconds(3), [&] { w.mpi.rank(1).thaw(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, mib(1));
    } else {
      co_await r.recv(wc, 0, 0);
      recv_done = w.eng.now();
    }
  });
  EXPECT_GE(recv_done, sim::from_seconds(3));
}

TEST(Gate, FreezeDuringComputePausesRank) {
  MpiWorld w(1);
  sim::Time done_at = -1;
  w.eng.schedule_at(sim::from_seconds(1), [&] { w.mpi.rank(0).freeze(); });
  w.eng.schedule_at(sim::from_seconds(4), [&] { w.mpi.rank(0).thaw(); });
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    co_await r.compute(sim::from_seconds(2));
    done_at = w.eng.now();
  });
  EXPECT_EQ(done_at, sim::from_seconds(5));  // 2s work + 3s frozen
}

}  // namespace
}  // namespace gbc::mpi
