// Non-blocking collectives, wait_any, iprobe.
#include <gtest/gtest.h>

#include "mpi_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::mpi {
namespace {

using testing::MpiWorld;

TEST(Nonblocking, IbarrierOverlapsWithComputation) {
  MpiWorld w(4);
  std::vector<sim::Time> done(4, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    Request barrier = r.ibarrier(wc);
    // Everyone computes a full second while the barrier completes in the
    // background; the barrier must not serialize after the compute.
    co_await r.compute(sim::from_seconds(1));
    co_await r.wait(barrier);
    done[r.world_rank()] = w.eng.now();
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_LT(done[i], sim::from_seconds(1.05)) << "rank " << i;
  }
}

TEST(Nonblocking, IbcastDeliversWhileRootComputes) {
  MpiWorld w(4);
  int finished = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    Request bc = r.ibcast(wc, 0, storage::mib(1));
    co_await r.compute(sim::from_milliseconds(200));
    co_await r.wait(bc);
    ++finished;
  });
  EXPECT_EQ(finished, 4);
}

TEST(Nonblocking, IallgatherMatchesBlockingTiming) {
  sim::Time blocking_t, nonblocking_t;
  {
    MpiWorld w(4);
    w.run_all([&](RankCtx& r) -> sim::Task<void> {
      std::vector<double> none;
      (void)co_await r.allgather(w.mpi.world(), storage::mib(1), none);
    });
    blocking_t = w.eng.now();
  }
  {
    MpiWorld w(4);
    w.run_all([&](RankCtx& r) -> sim::Task<void> {
      Request ag = r.iallgather(w.mpi.world(), storage::mib(1));
      co_await r.wait(ag);
    });
    nonblocking_t = w.eng.now();
  }
  EXPECT_EQ(blocking_t, nonblocking_t);
}

TEST(Nonblocking, WaitAnyReturnsFirstCompletion) {
  MpiWorld w(3);
  std::size_t first = 99;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(r.irecv(wc, 1, 0));  // arrives late
      reqs.push_back(r.irecv(wc, 2, 0));  // arrives early
      first = co_await r.wait_any(reqs);
      co_await r.wait_all(reqs);
    } else if (r.world_rank() == 1) {
      co_await r.compute(sim::from_seconds(2));
      co_await r.send(wc, 0, 0, 64);
    } else {
      co_await r.compute(sim::from_milliseconds(10));
      co_await r.send(wc, 0, 0, 64);
    }
  });
  EXPECT_EQ(first, 1u);  // the rank-2 receive finished first
}

TEST(Nonblocking, WaitAnyOnAlreadyCompleteReturnsImmediately) {
  MpiWorld w(2);
  std::size_t idx = 99;
  sim::Time at = -1;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      Request s = r.isend(wc, 1, 0, 64);  // eager: completes instantly
      std::vector<Request> reqs{s};
      idx = co_await r.wait_any(reqs);
      at = w.eng.now();
    } else {
      co_await r.recv(wc, 0, 0);
    }
  });
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(at, 0);
}

TEST(Nonblocking, IprobeSeesUnexpectedMessage) {
  MpiWorld w(2);
  bool before = true, after = false;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 9, 128);
    } else {
      before = r.iprobe(wc, 0, 9);  // nothing arrived yet
      co_await r.compute(sim::from_milliseconds(100));
      after = r.iprobe(wc, 0, 9);
      EXPECT_TRUE(r.iprobe(wc, kAnySource, kAnyTag));
      EXPECT_FALSE(r.iprobe(wc, 0, 10));  // wrong tag
      co_await r.recv(wc, 0, 9);
      EXPECT_FALSE(r.iprobe(wc, 0, 9));  // consumed
    }
  });
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(Nonblocking, OverlappedCollectivesKeepTagDiscipline) {
  MpiWorld w(4);
  int rounds_ok = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    for (int i = 0; i < 5; ++i) {
      Request a = r.ibarrier(wc);
      Request b = r.ibcast(wc, 0, 4096);
      co_await r.compute(sim::from_milliseconds(20));
      co_await r.wait(a);
      co_await r.wait(b);
    }
    ++rounds_ok;
  });
  EXPECT_EQ(rounds_ok, 4);
}

}  // namespace
}  // namespace gbc::mpi
