// Message-matching semantics under stress: wildcard mixes, backlog order,
// the eager/rendezvous threshold boundary, and request lifecycle.
#include <gtest/gtest.h>

#include <vector>

#include "mpi_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::mpi {
namespace {

using storage::mib;
using testing::MpiWorld;

TEST(Matching, BacklogOfUnexpectedMessagesMatchesInArrivalOrder) {
  MpiWorld w(2);
  std::vector<double> got;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      for (int i = 0; i < 100; ++i) {
        co_await r.send(wc, 1, 0, 64, make_payload(static_cast<double>(i)));
      }
    } else {
      co_await r.compute(sim::from_seconds(1));  // let the backlog pile up
      for (int i = 0; i < 100; ++i) {
        auto info = co_await r.recv(wc, 0, 0);
        got.push_back(info.data->at(0));
      }
    }
  });
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(Matching, WildcardSourceAndTagTakesFirstArrival) {
  MpiWorld w(4);
  std::vector<int> sources;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        auto info = co_await r.recv(wc, kAnySource, kAnyTag);
        sources.push_back(info.source);
      }
    } else {
      co_await r.compute(
          sim::from_milliseconds(10 * r.world_rank()));
      co_await r.send(wc, 0, 100 + r.world_rank(), 64);
    }
  });
  EXPECT_EQ(sources, (std::vector<int>{1, 2, 3}));
}

TEST(Matching, SpecificRecvLeavesOthersForWildcard) {
  MpiWorld w(3);
  std::vector<int> order;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.compute(sim::from_milliseconds(50));
      // Both messages already arrived; take rank 2's first explicitly.
      auto a = co_await r.recv(wc, 2, kAnyTag);
      auto b = co_await r.recv(wc, kAnySource, kAnyTag);
      order.push_back(a.source);
      order.push_back(b.source);
    } else {
      co_await r.send(wc, 0, 0, 64);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Matching, EagerThresholdBoundary) {
  MpiConfig mc;
  mc.eager_threshold = 1024;
  MpiWorld w(2, mc);
  sim::Time small_done = -1, large_done = -1;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      co_await r.send(wc, 1, 0, 1024);  // == threshold: eager, returns now
      small_done = w.eng.now();
      co_await r.send(wc, 1, 1, 1025);  // > threshold: rendezvous, blocks
      large_done = w.eng.now();
    } else {
      co_await r.compute(sim::from_seconds(1));
      co_await r.recv(wc, 0, 0);
      co_await r.recv(wc, 0, 1);
    }
  });
  EXPECT_LT(small_done, sim::from_milliseconds(1));
  EXPECT_GE(large_done, sim::from_seconds(1));
}

TEST(Matching, PostedRecvOrderRespectedForSameEnvelope) {
  MpiWorld w(2);
  std::vector<double> by_request(2, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 1) {
      Request first = r.irecv(wc, 0, 7);
      Request second = r.irecv(wc, 0, 7);
      co_await r.wait(first);
      co_await r.wait(second);
      by_request[0] = first->info.data->at(0);
      by_request[1] = second->info.data->at(0);
    } else {
      co_await r.send(wc, 1, 7, 64, make_payload(1.0));
      co_await r.send(wc, 1, 7, 64, make_payload(2.0));
    }
  });
  // First-posted recv gets the first-sent message.
  EXPECT_EQ(by_request[0], 1.0);
  EXPECT_EQ(by_request[1], 2.0);
}

TEST(Matching, InterleavedCommsKeepIndependentStreams) {
  MpiWorld w(2);
  const Comm& a = w.mpi.create_comm({0, 1});
  const Comm& b = w.mpi.create_comm({1, 0});  // reversed rank order
  std::vector<double> got_a, got_b;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    if (r.world_rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        co_await r.send(a, 1, 0, 64, make_payload(10.0 + i));
        co_await r.send(b, 0, 0, 64, make_payload(20.0 + i));  // b-rank 0 = world 1
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        auto ia = co_await r.recv(a, 0, 0);
        auto ib = co_await r.recv(b, 1, 0);  // b-rank 1 = world 0
        got_a.push_back(ia.data->at(0));
        got_b.push_back(ib.data->at(0));
      }
    }
  });
  EXPECT_EQ(got_a, (std::vector<double>{10, 11, 12, 13, 14}));
  EXPECT_EQ(got_b, (std::vector<double>{20, 21, 22, 23, 24}));
}

TEST(Matching, ManyRendezvousInFlightToOneReceiver) {
  MpiWorld w(5);
  int received = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    if (r.world_rank() == 0) {
      std::vector<Request> reqs;
      for (int src = 1; src < 5; ++src) {
        for (int k = 0; k < 3; ++k) reqs.push_back(r.irecv(wc, src, k));
      }
      co_await r.wait_all(reqs);
      for (auto& rq : reqs) {
        EXPECT_EQ(rq->info.bytes, mib(1));
        ++received;
      }
    } else {
      for (int k = 0; k < 3; ++k) {
        co_await r.send(wc, 0, k, mib(1));
      }
    }
  });
  EXPECT_EQ(received, 12);
}

TEST(Matching, SelfSendViaIrecvAndIsend) {
  MpiWorld w(1);
  bool done = false;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    Request rq = r.irecv(wc, 0, 0);
    Request sq = r.isend(wc, 0, 0, 128, make_payload(5.0));
    co_await r.wait(sq);
    co_await r.wait(rq);
    EXPECT_EQ(rq->info.data->at(0), 5.0);
    done = true;
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace gbc::mpi
