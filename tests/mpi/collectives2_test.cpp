// Tests for the second wave of collectives: sendrecv, scan,
// reduce_scatter_block, ring_bcast.
#include <gtest/gtest.h>

#include <vector>

#include "mpi_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::mpi {
namespace {

using testing::MpiWorld;

class Coll2Sizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, Coll2Sizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32));

TEST_P(Coll2Sizes, SendrecvRingShiftsValues) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    const int me = r.world_rank();
    const int right = (me + 1) % n;
    const int left = (me - 1 + n) % n;
    Payload mine = make_payload(static_cast<double>(me));
    auto info = co_await r.sendrecv(wc, right, 5, 8, std::move(mine), left, 5);
    got[me] = info.data ? info.data->at(0) : -2;
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], (i - 1 + n) % n) << "rank " << i;
  }
}

TEST_P(Coll2Sizes, ScanComputesInclusivePrefixSums) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    const double me = static_cast<double>(r.world_rank());
    auto res = co_await r.scan(wc, Op::kSum, vec(me + 1));
    got[r.world_rank()] = res.at(0);
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i], (i + 1) * (i + 2) / 2.0) << "rank " << i;
  }
}

TEST_P(Coll2Sizes, ScanMaxIsRunningMaximum) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    // Values decrease with rank: the running max is always rank 0's value.
    const double mine = 100.0 - r.world_rank();
    auto res = co_await r.scan(wc, Op::kMax, vec(mine));
    got[r.world_rank()] = res.at(0);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], 100.0) << "rank " << i;
}

TEST_P(Coll2Sizes, ReduceScatterBlockGivesEachRankItsSum) {
  const int n = GetParam();
  MpiWorld w(n);
  std::vector<double> got(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    // contribution[j] = j for every rank -> block r reduces to n * r.
    std::vector<double> contrib(n);
    for (int j = 0; j < n; ++j) contrib[j] = j;
    auto res = co_await r.reduce_scatter_block(wc, Op::kSum,
                                               std::move(contrib));
    got[r.world_rank()] = res.empty() ? -2 : res[0];
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i], static_cast<double>(n) * i) << "rank " << i;
  }
}

TEST_P(Coll2Sizes, RingBcastReachesEveryRank) {
  const int n = GetParam();
  MpiWorld w(n);
  int done = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    co_await r.ring_bcast(w.mpi.world(), n > 2 ? 2 : 0, 4096);
    ++done;
  });
  EXPECT_EQ(done, n);
}

TEST(RingBcast, CompletionIsPipelined) {
  // Rank r (ring position vr) may proceed as soon as its own copy arrives:
  // completion times increase along the ring.
  const int n = 8;
  MpiWorld w(n);
  std::vector<sim::Time> done(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    co_await r.ring_bcast(w.mpi.world(), 0, storage::mib(4));
    done[r.world_rank()] = w.eng.now();
  });
  for (int i = 2; i < n; ++i) {
    EXPECT_GE(done[i], done[i - 1]) << "ring order violated at " << i;
  }
  // The root finishes immediately; the last rank waits ~n transfer times.
  EXPECT_LT(done[0], done[n - 1]);
}

TEST(RingBcast, StalledMemberBlocksOnlyDownstream) {
  const int n = 6;
  MpiWorld w(n);
  // Freeze rank 3 before the broadcast reaches it.
  w.mpi.rank(3).freeze();
  w.eng.schedule_at(sim::from_seconds(5), [&] { w.mpi.rank(3).thaw(); });
  std::vector<sim::Time> done(n, -1);
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    co_await r.ring_bcast(w.mpi.world(), 0, 4096);
    done[r.world_rank()] = w.eng.now();
  });
  // Upstream of the frozen rank: done almost immediately.
  EXPECT_LT(done[1], sim::from_seconds(1));
  EXPECT_LT(done[2], sim::from_seconds(1));
  // The frozen rank and its downstream wait for the thaw.
  EXPECT_GE(done[3], sim::from_seconds(5));
  EXPECT_GE(done[4], sim::from_seconds(5));
  EXPECT_GE(done[5], sim::from_seconds(5));
}

TEST(Sendrecv, FullExchangeIsDeadlockFree) {
  // Every rank sendrecvs with both neighbours using rendezvous-sized
  // messages; a naive send/recv ordering would deadlock.
  const int n = 8;
  MpiWorld w(n);
  int done = 0;
  w.run_all([&](RankCtx& r) -> sim::Task<void> {
    const Comm& wc = w.mpi.world();
    const int me = r.world_rank();
    for (int iter = 0; iter < 5; ++iter) {
      (void)co_await r.sendrecv(wc, (me + 1) % n, iter, storage::mib(1),
                                nullptr, (me - 1 + n) % n, iter);
    }
    ++done;
  });
  EXPECT_EQ(done, n);
}

}  // namespace
}  // namespace gbc::mpi
