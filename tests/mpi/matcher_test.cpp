// Unit tests for the per-rank matching engine extracted from MiniMPI: MPI
// matching rules (communicator, source/tag wildcards), post-order and
// arrival-order preference, and the posted/unexpected queue lifecycles —
// exercised in isolation, with no fabric or progress engine attached.
#include "mpi/matcher.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hpp"

namespace gbc::mpi {
namespace {

constexpr std::uint64_t kComm = 7;

Envelope env(int src, Tag tag, std::uint64_t comm = kComm, Bytes bytes = 64) {
  Envelope e;
  e.comm_id = comm;
  e.src_world = src;
  e.dst_world = 0;
  e.tag = tag;
  e.bytes = bytes;
  return e;
}

struct MatcherTest : ::testing::Test {
  sim::Engine eng;
  Matcher m;

  Request make_recv(int match_src, Tag match_tag,
                    std::uint64_t comm = kComm) {
    auto r = std::make_shared<ReqState>(eng);
    r->is_recv = true;
    r->comm_id = comm;
    r->match_src = match_src;
    r->match_tag = match_tag;
    return r;
  }
};

TEST_F(MatcherTest, ExactMatchRemovesThePostedReceive) {
  Request r = make_recv(3, 11);
  m.post(r);
  EXPECT_EQ(m.posted_count(), 1u);
  EXPECT_EQ(m.match_posted(env(3, 11)), r);
  EXPECT_EQ(m.posted_count(), 0u);
  EXPECT_EQ(m.match_posted(env(3, 11)), nullptr);  // consumed
}

TEST_F(MatcherTest, MismatchedCommSourceOrTagDoesNotMatch) {
  m.post(make_recv(3, 11));
  EXPECT_EQ(m.match_posted(env(3, 11, kComm + 1)), nullptr);  // wrong comm
  EXPECT_EQ(m.match_posted(env(4, 11)), nullptr);             // wrong source
  EXPECT_EQ(m.match_posted(env(3, 12)), nullptr);             // wrong tag
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST_F(MatcherTest, WildcardsMatchAnySourceAndTag) {
  Request any_src = make_recv(kAnySource, 5);
  Request any_tag = make_recv(2, kAnyTag);
  m.post(any_src);
  m.post(any_tag);
  EXPECT_EQ(m.match_posted(env(9, 5)), any_src);
  EXPECT_EQ(m.match_posted(env(2, 99)), any_tag);
}

TEST_F(MatcherTest, OldestPostWinsWhenSeveralMatch) {
  Request first = make_recv(kAnySource, kAnyTag);
  Request second = make_recv(1, 0);
  m.post(first);
  m.post(second);
  // Both match; MPI requires the earlier post.
  EXPECT_EQ(m.match_posted(env(1, 0)), first);
  EXPECT_EQ(m.match_posted(env(1, 0)), second);
}

TEST_F(MatcherTest, UnexpectedQueuePreservesArrivalOrder) {
  m.push_unexpected(env(1, 0, kComm, 100), false);
  m.push_unexpected(env(2, 0, kComm, 200), true);
  m.push_unexpected(env(1, 0, kComm, 300), false);
  EXPECT_EQ(m.unexpected_count(), 3u);

  // Wildcard take drains in arrival order.
  auto a = m.take_unexpected(kComm, kAnySource, kAnyTag);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->env.bytes, 100);
  EXPECT_FALSE(a->rndv);

  // Specific source skips over non-matching earlier arrivals.
  auto b = m.take_unexpected(kComm, 2, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->env.bytes, 200);
  EXPECT_TRUE(b->rndv);  // rendezvous flag rides along

  auto c = m.take_unexpected(kComm, 2, 0);
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(m.unexpected_count(), 1u);
}

TEST_F(MatcherTest, ProbeIsNonDestructive) {
  EXPECT_FALSE(m.probe(kComm, kAnySource, kAnyTag));
  m.push_unexpected(env(4, 9), false);
  EXPECT_TRUE(m.probe(kComm, 4, 9));
  EXPECT_TRUE(m.probe(kComm, kAnySource, kAnyTag));
  EXPECT_FALSE(m.probe(kComm, 5, 9));
  EXPECT_EQ(m.unexpected_count(), 1u);  // probe never removes
}

TEST_F(MatcherTest, PostedAndUnexpectedAreIndependentPerCommunicator) {
  m.post(make_recv(kAnySource, kAnyTag, kComm));
  m.push_unexpected(env(0, 0, kComm + 1), false);
  // The parked message belongs to another communicator: the posted receive
  // must not see it, and vice versa.
  EXPECT_EQ(m.match_posted(env(0, 0, kComm + 1)), nullptr);
  EXPECT_FALSE(m.take_unexpected(kComm, kAnySource, kAnyTag).has_value());
  EXPECT_EQ(m.posted_count(), 1u);
  EXPECT_EQ(m.unexpected_count(), 1u);
}

}  // namespace
}  // namespace gbc::mpi
