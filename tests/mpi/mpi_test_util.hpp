#pragma once

#include <functional>
#include <utility>

#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace gbc::mpi::testing {

/// One simulated job: engine + fabric + MPI library, with a helper to run a
/// per-rank program to completion. Rank programs may capture locals by
/// reference: every coroutine frame completes inside run_all().
struct MpiWorld {
  sim::Engine eng;
  net::Fabric fabric;
  MiniMPI mpi;

  explicit MpiWorld(int n, MpiConfig mc = {}, net::NetConfig nc = {})
      : fabric(eng, nc, n), mpi(eng, fabric, mc) {}

  template <typename F>
  void run_all(F&& per_rank) {
    for (int r = 0; r < mpi.nranks(); ++r) {
      eng.spawn(per_rank(mpi.rank(r)));
    }
    eng.run();
  }
};

}  // namespace gbc::mpi::testing
