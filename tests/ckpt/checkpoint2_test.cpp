// Tests for the second wave of C/R features: serialized concurrent requests,
// periodic checkpointing, incremental checkpointing.
#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "ckpt_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {
namespace {

using storage::mib;
using testing::CkptWorld;

sim::Task<void> worker(mpi::RankCtx* r, sim::Time total) {
  sim::Time left = total;
  while (left > 0) {
    sim::Time step = left < sim::kSecond ? left : sim::kSecond;
    co_await r->compute(step);
    left -= step;
  }
}

TEST(RequestSerialization, OverlappingRequestsRunBackToBack) {
  CkptWorld w(4);
  w.ckpt.set_footprint_provider([](int) { return mib(180); });
  // Second request lands while the first cycle is still writing.
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kGroupBased);
  w.ckpt.request_at(sim::from_seconds(2), Protocol::kGroupBased);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return worker(&r, sim::from_seconds(60));
  });
  ASSERT_EQ(w.ckpt.history().size(), 2u);
  const auto& first = w.ckpt.history()[0];
  const auto& second = w.ckpt.history()[1];
  EXPECT_LE(first.completed_at, second.snapshots[0].freeze_begin);
  EXPECT_GT(second.completed_at, first.completed_at);
}

TEST(PeriodicCheckpoints, FireUntilTheApplicationEnds) {
  CkptConfig cc;
  cc.group_size = 2;
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(32); });
  w.ckpt.request_every(sim::from_seconds(5), sim::from_seconds(15),
                       Protocol::kGroupBased);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return worker(&r, sim::from_seconds(60));
  });
  // ~60s of compute plus checkpoint overhead: requests at 5, 20+, 35+, ...
  EXPECT_GE(w.ckpt.history().size(), 3u);
  for (std::size_t i = 1; i < w.ckpt.history().size(); ++i) {
    EXPECT_GE(w.ckpt.history()[i].requested_at,
              w.ckpt.history()[i - 1].requested_at + sim::from_seconds(14));
  }
}

TEST(Incremental, FirstSnapshotIsFullLaterOnesAreSmaller) {
  CkptConfig cc;
  cc.group_size = 0;
  cc.incremental = true;
  cc.dirty_floor = 0.2;
  cc.dirty_rate_per_second = 0.01;
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(100); });
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kBlockingCoordinated);
  w.ckpt.request_at(sim::from_seconds(20), Protocol::kBlockingCoordinated);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return worker(&r, sim::from_seconds(60));
  });
  ASSERT_EQ(w.ckpt.history().size(), 2u);
  EXPECT_EQ(w.ckpt.history()[0].snapshots[0].image_bytes, mib(100));
  const Bytes second = w.ckpt.history()[1].snapshots[0].image_bytes;
  EXPECT_LT(second, mib(50));
  EXPECT_GT(second, mib(15));  // floor at 20% plus the elapsed dirtying
}

TEST(Incremental, DirtyFractionGrowsWithInterval) {
  auto image_after = [](double gap_seconds) {
    CkptConfig cc;
    cc.incremental = true;
    cc.dirty_floor = 0.1;
    cc.dirty_rate_per_second = 0.02;
    CkptWorld w(2, cc);
    w.ckpt.set_footprint_provider([](int) { return mib(100); });
    w.ckpt.request_at(sim::from_seconds(1), Protocol::kBlockingCoordinated);
    w.ckpt.request_at(sim::from_seconds(1 + gap_seconds),
                      Protocol::kBlockingCoordinated);
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      return worker(&r, sim::from_seconds(120));
    });
    return w.ckpt.history()[1].snapshots[0].image_bytes;
  };
  EXPECT_LT(image_after(10.0), image_after(40.0));
}

TEST(Incremental, CapsAtFullFootprint) {
  CkptConfig cc;
  cc.incremental = true;
  cc.dirty_floor = 0.5;
  cc.dirty_rate_per_second = 1.0;  // everything dirty within a second
  CkptWorld w(2, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(64); });
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kBlockingCoordinated);
  w.ckpt.request_at(sim::from_seconds(30), Protocol::kBlockingCoordinated);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return worker(&r, sim::from_seconds(60));
  });
  EXPECT_EQ(w.ckpt.history()[1].snapshots[0].image_bytes, mib(64));
}

TEST(Incremental, ShrinksGroupBasedDowntimeToo) {
  auto downtime = [](bool incremental) {
    CkptConfig cc;
    cc.group_size = 2;
    cc.incremental = incremental;
    cc.dirty_floor = 0.2;
    cc.dirty_rate_per_second = 0.0;
    CkptWorld w(4, cc);
    w.ckpt.set_footprint_provider([](int) { return mib(100); });
    w.ckpt.request_at(sim::from_seconds(1), Protocol::kGroupBased);
    w.ckpt.request_at(sim::from_seconds(20), Protocol::kGroupBased);
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      return worker(&r, sim::from_seconds(60));
    });
    return w.ckpt.history()[1].mean_individual_time();
  };
  EXPECT_LT(downtime(true), downtime(false) / 2);
}

TEST(Incremental, DisabledMeansEverySnapshotIsFull) {
  CkptConfig cc;  // incremental defaults to false
  CkptWorld w(2, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(80); });
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kBlockingCoordinated);
  w.ckpt.request_at(sim::from_seconds(20), Protocol::kBlockingCoordinated);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return worker(&r, sim::from_seconds(60));
  });
  EXPECT_EQ(w.ckpt.history()[0].snapshots[0].image_bytes, mib(80));
  EXPECT_EQ(w.ckpt.history()[1].snapshots[0].image_bytes, mib(80));
}

}  // namespace
}  // namespace gbc::ckpt
