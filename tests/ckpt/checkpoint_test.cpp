#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ckpt/consistency.hpp"
#include "ckpt/logging_hooks.hpp"
#include "ckpt_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {
namespace {

using storage::mib;
using testing::CkptWorld;

constexpr Bytes kImage = mib(180);  // the paper's micro-benchmark footprint

sim::Task<void> trigger(CheckpointService* svc, Protocol p,
                        GlobalCheckpoint* out) {
  *out = co_await svc->checkpoint(p);
}

/// Long compute so ranks are busy while checkpoints run.
sim::Task<void> computer(mpi::RankCtx* r, sim::Time total) {
  // Chunked compute with regular library entries (a realistic app polls the
  // progress engine regularly; pure 500s compute without any MPI call is
  // what await_service_point models separately).
  const sim::Time chunk = 100 * sim::kMillisecond;
  sim::Time left = total;
  while (left > 0) {
    sim::Time step = left < chunk ? left : chunk;
    co_await r->compute(step);
    left -= step;
  }
}

TEST(BlockingCoordinated, IndividualTimeMatchesStorageArithmetic) {
  CkptWorld w(32);
  w.ckpt.set_footprint_provider([](int) { return kImage; });
  GlobalCheckpoint gc;
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(120));
  });
  // Fresh run with the checkpoint at t=10s.
  CkptWorld w2(32);
  w2.ckpt.set_footprint_provider([](int) { return kImage; });
  GlobalCheckpoint gc2;
  w2.eng.schedule_at(sim::from_seconds(10), [&] {
    w2.eng.spawn(trigger(&w2.ckpt, Protocol::kBlockingCoordinated, &gc2));
  });
  w2.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(120));
  });
  // 32 procs x 180MB over ~140MB/s aggregate ≈ 41s each (paper Sec. 5 eq. 2a)
  const double expected =
      32.0 * 180.0 / w2.fs.config().aggregate_mbps(32);
  EXPECT_NEAR(sim::to_seconds(gc2.max_individual_time()), expected,
              expected * 0.1);
  EXPECT_GT(gc2.storage_fraction(), 0.95);  // paper: storage dominates
  (void)gc;
}

TEST(BlockingCoordinated, TotalTimeEqualsIndividualTime) {
  CkptWorld w(8);
  w.ckpt.set_footprint_provider([](int) { return kImage; });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kBlockingCoordinated, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(60));
  });
  // Everyone snapshots together: total ≈ individual (eq. 2a/2b).
  EXPECT_NEAR(static_cast<double>(gc.total_checkpoint_time()),
              static_cast<double>(gc.max_individual_time()),
              0.05 * static_cast<double>(gc.total_checkpoint_time()));
}

TEST(GroupBased, IndividualTimeShrinksWithGroupSize) {
  double individual[3];
  int idx = 0;
  for (int gsize : {32, 8, 4}) {
    CkptConfig cc;
    cc.group_size = gsize;
    CkptWorld w(32, cc);
    w.ckpt.set_footprint_provider([](int) { return kImage; });
    GlobalCheckpoint gc;
    w.eng.schedule_at(sim::from_seconds(1), [&] {
      w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
    });
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      return computer(&r, sim::from_seconds(400));
    });
    individual[idx++] = sim::to_seconds(gc.mean_individual_time());
  }
  // Paper eq. (3a): individual time scales with processes *in the group*.
  EXPECT_GT(individual[0] / individual[1], 3.0);  // 32 -> 8: ~4x
  EXPECT_GT(individual[1] / individual[2], 1.5);  // 8 -> 4: ~2x
}

TEST(GroupBased, GroupsSnapshotSequentially) {
  CkptConfig cc;
  cc.group_size = 4;
  CkptWorld w(8, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(64); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(60));
  });
  // Group {0..3} must fully finish before group {4..7} starts.
  sim::Time g0_end = 0, g1_begin = sim::from_seconds(1e9);
  for (int m = 0; m < 4; ++m) g0_end = std::max(g0_end, gc.snapshots[m].resume_at);
  for (int m = 4; m < 8; ++m) {
    g1_begin = std::min(g1_begin, gc.snapshots[m].freeze_begin);
  }
  EXPECT_LE(g0_end, g1_begin + sim::kMillisecond);
  // And storage never saw more than one group at a time.
  EXPECT_LE(w.fs.peak_concurrency(), 4);
}

TEST(GroupBased, OtherGroupsKeepComputingDuringSnapshot) {
  CkptConfig cc;
  cc.group_size = 2;
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return kImage; });
  std::vector<sim::Time> finish(4);
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    co_await computer(&r, sim::from_seconds(20));
    finish[r.world_rank()] = r.engine().now();
  });
  // Independent (non-communicating) ranks only lose their own group's
  // snapshot time, not the whole checkpoint.
  for (int m = 0; m < 4; ++m) {
    const double lost =
        sim::to_seconds(finish[m]) - 20.0;
    const double own = sim::to_seconds(gc.individual_time(m));
    EXPECT_NEAR(lost, own, 0.5) << "rank " << m;
  }
}

TEST(GroupBased, CrossGroupTrafficIsDeferredAndConsistent) {
  CkptConfig cc;
  cc.group_size = 2;
  mpi::MpiConfig mc;
  mc.record_messages = true;
  CkptWorld w(4, cc, mc);
  w.ckpt.set_footprint_provider([](int) { return kImage; });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(2), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  // Ranks 0<->2 and 1<->3 chat across the group boundary the whole time.
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int me = r.world_rank();
    const int peer = (me + 2) % 4;
    for (int i = 0; i < 200; ++i) {
      mpi::Request rq = r.irecv(wc, peer, 7);
      co_await r.send(wc, peer, 7, 4096);
      co_await r.wait(rq);
      co_await r.compute(50 * sim::kMillisecond);
    }
  });
  ASSERT_GT(gc.completed_at, 0);
  auto report = check_recovery_line(w.mpi.message_records(), gc);
  EXPECT_GT(report.checked, 100);
  EXPECT_EQ(report.violations, 0)
      << (report.details.empty() ? "" : report.details.front());
  // Deferral actually happened: some traffic was buffered during the cycle.
  EXPECT_GT(w.mpi.stats().messages_buffered + w.mpi.stats().requests_buffered,
            0);
}

TEST(GroupBased, RendezvousTrafficAcrossLineStaysConsistent) {
  CkptConfig cc;
  cc.group_size = 2;
  mpi::MpiConfig mc;
  mc.record_messages = true;
  CkptWorld w(4, cc, mc);
  w.ckpt.set_footprint_provider([](int) { return mib(120); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int me = r.world_rank();
    const int peer = me ^ 2;  // cross-group pairs
    for (int i = 0; i < 30; ++i) {
      mpi::Request rq = r.irecv(wc, peer, 1);
      co_await r.send(wc, peer, 1, mib(2));  // rendezvous path
      co_await r.wait(rq);
      co_await r.compute(100 * sim::kMillisecond);
    }
  });
  ASSERT_GT(gc.completed_at, 0);
  auto report = check_recovery_line(w.mpi.message_records(), gc);
  EXPECT_EQ(report.violations, 0)
      << (report.details.empty() ? "" : report.details.front());
}

TEST(GroupBased, SnapshotCapturesAppState) {
  CkptConfig cc;
  cc.group_size = 2;
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(32); });
  std::vector<std::uint64_t> iteration(4, 0);
  w.ckpt.set_state_capture([&](int r) {
    return std::vector<std::uint64_t>{iteration[r]};
  });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(5), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await r.compute(sim::from_seconds(1));
      ++iteration[r.world_rank()];
    }
  });
  for (int m = 0; m < 4; ++m) {
    // Snapshot at ~5s: each rank had completed ~5 one-second iterations.
    ASSERT_EQ(gc.snapshots[m].app_state.size(), 1u);
    EXPECT_GE(gc.snapshots[m].app_state[0], 4u);
    EXPECT_LE(gc.snapshots[m].app_state[0], 7u);
  }
}

TEST(GroupBased, ConnectionsAreRebuiltAfterCycle) {
  CkptConfig cc;
  cc.group_size = 2;
  cc.eager_rebuild = true;
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(16); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int peer = r.world_rank() ^ 1;
    for (int i = 0; i < 40; ++i) {
      mpi::Request rq = r.irecv(wc, peer, 0);
      co_await r.send(wc, peer, 0, 1024);
      co_await r.wait(rq);
      co_await r.compute(100 * sim::kMillisecond);
    }
  });
  EXPECT_GT(w.fabric.connections().total_teardowns(), 0);
  EXPECT_GT(w.fabric.connections().total_setups(),
            w.fabric.connections().total_teardowns());
  EXPECT_EQ(w.fabric.connections().established_count(), 2);  // 0-1 and 2-3
}

TEST(GroupBased, PerConnectionTeardownOnlyTouchesGroupConnections) {
  CkptConfig cc;
  cc.group_size = 2;
  CkptWorld w(6, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(16); });
  // Establish a ring of connections first, then checkpoint only group {0,1}.
  GlobalCheckpoint gc;
  bool checked = false;
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int me = r.world_rank();
    const int right = (me + 1) % 6;
    const int left = (me + 5) % 6;
    for (int i = 0; i < 60; ++i) {
      mpi::Request rq = r.irecv(wc, left, 0);
      co_await r.send(wc, right, 0, 512);
      co_await r.wait(rq);
      co_await r.compute(100 * sim::kMillisecond);
      if (me == 0 && i == 20 && !checked) {
        checked = true;
        w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
      }
    }
  });
  // Ring of 6 connections; groups of 2 -> each group tears down the (up to)
  // 3 connections its members touch, not all 6 at once.
  EXPECT_GT(w.fabric.connections().total_teardowns(), 6);
  EXPECT_LE(w.fabric.connections().total_teardowns(), 12);
}

TEST(ChandyLamport, AllRanksHitStorageSimultaneously) {
  CkptWorld w(8);
  w.ckpt.set_footprint_provider([](int) { return kImage; });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kChandyLamport, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(60));
  });
  EXPECT_EQ(w.fs.peak_concurrency(), 8);  // no schedule: storage bottleneck
  EXPECT_EQ(gc.protocol, Protocol::kChandyLamport);
}

TEST(ChandyLamport, LogsChannelMessages) {
  CkptWorld w(4);
  w.ckpt.set_footprint_provider([](int) { return mib(64); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kChandyLamport, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int peer = r.world_rank() ^ 1;
    for (int i = 0; i < 2000; ++i) {
      mpi::Request rq = r.irecv(wc, peer, 0);
      co_await r.send(wc, peer, 0, 4096);
      co_await r.wait(rq);
      co_await r.compute(5 * sim::kMillisecond);
    }
  });
  // Messages that arrived at already-snapshotted ranks were logged.
  EXPECT_GE(gc.logged_bytes, 0);
}

TEST(Uncoordinated, SnapshotsAreStaggeredIndependently) {
  CkptConfig cc;
  cc.uncoordinated_stagger = sim::from_seconds(2);
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(64); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kUncoordinatedLogging, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(60));
  });
  for (int m = 1; m < 4; ++m) {
    EXPECT_GE(gc.snapshots[m].freeze_begin,
              gc.snapshots[m - 1].freeze_begin + sim::from_seconds(1));
  }
  EXPECT_LE(w.fs.peak_concurrency(), 2);
}

TEST(SenderLogging, TaxesFailureFreePath) {
  // Identical runs except for the always-on sender-based logger.
  auto run_once = [](mpi::MpiHooks* hooks) {
    CkptWorld w(2);
    if (hooks) w.mpi.set_hooks(hooks);
    sim::Time done = 0;
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      const mpi::Comm& wc = r.mpi().world();
      const int peer = r.world_rank() ^ 1;
      for (int i = 0; i < 50; ++i) {
        mpi::Request rq = r.irecv(wc, peer, 0);
        co_await r.send(wc, peer, 0, mib(4));
        co_await r.wait(rq);
      }
      done = r.engine().now();
    });
    return done;
  };
  SenderLogger logger(2, 1200.0);
  const sim::Time plain = run_once(nullptr);
  const sim::Time logged = run_once(&logger);
  EXPECT_GT(logged, plain + plain / 4);  // meaningful slowdown
  EXPECT_EQ(logger.logged_bytes(), 2 * 50 * mib(4));
  EXPECT_EQ(logger.logged_messages(), 2 * 50);
}

TEST(AsyncProgress, HelperThreadBoundsPassiveCoordinationDelay) {
  // A peer deep in a long compute must participate in a group's connection
  // teardown; with the helper thread it answers within ~100ms, without it
  // the group waits until the peer's compute ends.
  auto run_once = [](bool async) {
    CkptConfig cc;
    cc.group_size = 1;
    cc.async_progress = async;
    CkptWorld w(2, cc);
    w.ckpt.set_footprint_provider([](int) { return mib(16); });
    GlobalCheckpoint gc;
    w.eng.schedule_at(sim::from_seconds(1), [&] {
      w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
    });
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      const mpi::Comm& wc = r.mpi().world();
      const int peer = r.world_rank() ^ 1;
      // Establish the connection, then compute a huge uninterrupted chunk.
      mpi::Request rq = r.irecv(wc, peer, 0);
      co_await r.send(wc, peer, 0, 256);
      co_await r.wait(rq);
      co_await r.compute(sim::from_seconds(30));  // no library entry at all
    });
    return gc;
  };
  GlobalCheckpoint with = run_once(true);
  GlobalCheckpoint without = run_once(false);
  // Rank 0's snapshot needs rank 1 to service the teardown.
  EXPECT_LT(with.individual_time(0), sim::from_seconds(2));
  EXPECT_GT(without.individual_time(0), sim::from_seconds(10));
}

TEST(RequestAt, RecordsIntoHistory) {
  CkptWorld w(4);
  w.ckpt.set_footprint_provider([](int) { return mib(16); });
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kGroupBased);
  w.ckpt.request_at(sim::from_seconds(30), Protocol::kBlockingCoordinated);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return computer(&r, sim::from_seconds(60));
  });
  ASSERT_EQ(w.ckpt.history().size(), 2u);
  EXPECT_EQ(w.ckpt.history()[0].protocol, Protocol::kGroupBased);
  EXPECT_EQ(w.ckpt.history()[1].protocol, Protocol::kBlockingCoordinated);
  EXPECT_LT(w.ckpt.history()[0].completed_at,
            w.ckpt.history()[1].requested_at);
}

TEST(ProtocolNames, AreHumanReadable) {
  EXPECT_STREQ(protocol_name(Protocol::kGroupBased), "group-based");
  EXPECT_STREQ(protocol_name(Protocol::kBlockingCoordinated),
               "blocking-coordinated");
  EXPECT_STREQ(protocol_name(Protocol::kChandyLamport), "chandy-lamport");
  EXPECT_STREQ(protocol_name(Protocol::kUncoordinatedLogging),
               "uncoordinated+logging");
}

}  // namespace
}  // namespace gbc::ckpt
