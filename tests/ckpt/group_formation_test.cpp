#include "ckpt/group_formation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gbc::ckpt {
namespace {

std::vector<std::int64_t> empty_traffic(int n) {
  return std::vector<std::int64_t>(static_cast<std::size_t>(n) * n, 0);
}

void add_edge(std::vector<std::int64_t>& t, int n, int a, int b,
              std::int64_t bytes) {
  t[static_cast<std::size_t>(a) * n + b] += bytes;
  t[static_cast<std::size_t>(b) * n + a] += bytes;
}

TEST(StaticPlan, ZeroSizeMeansOneGlobalGroup) {
  auto plan = static_plan(8, 0);
  ASSERT_EQ(plan.size(), 1);
  EXPECT_EQ(plan.groups[0].size(), 8u);
}

TEST(StaticPlan, OversizeMeansOneGlobalGroup) {
  auto plan = static_plan(8, 32);
  ASSERT_EQ(plan.size(), 1);
}

TEST(StaticPlan, EvenSplitByRankBlocks) {
  auto plan = static_plan(32, 8);
  ASSERT_EQ(plan.size(), 4);
  EXPECT_EQ(plan.groups[0], (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(plan.groups[3].front(), 24);
  EXPECT_EQ(plan.groups[3].back(), 31);
}

TEST(StaticPlan, RemainderGroupIsSmaller) {
  auto plan = static_plan(10, 4);
  ASSERT_EQ(plan.size(), 3);
  EXPECT_EQ(plan.groups[2], (std::vector<int>{8, 9}));
}

TEST(StaticPlan, SizeOneIsIndividualCheckpoints) {
  auto plan = static_plan(4, 1);
  ASSERT_EQ(plan.size(), 4);
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(plan.groups[g], std::vector<int>{g});
  }
}

TEST(StaticPlan, GroupOfLocatesMembers) {
  auto plan = static_plan(32, 8);
  EXPECT_EQ(plan.group_of(0), 0);
  EXPECT_EQ(plan.group_of(7), 0);
  EXPECT_EQ(plan.group_of(8), 1);
  EXPECT_EQ(plan.group_of(31), 3);
  EXPECT_EQ(plan.group_of(99), -1);
}

TEST(DynamicPlan, ClusteredTrafficFormsClusterGroups) {
  const int n = 8;
  auto t = empty_traffic(n);
  // Two chains: 0-1-2-3 and 4-5-6-7 (transitive closure must join chains).
  for (int i = 0; i < 3; ++i) add_edge(t, n, i, i + 1, 1 << 20);
  for (int i = 4; i < 7; ++i) add_edge(t, n, i, i + 1, 1 << 20);
  auto plan = dynamic_plan(t, n, 4);
  EXPECT_TRUE(plan.used_dynamic);
  ASSERT_EQ(plan.size(), 2);
  EXPECT_EQ(plan.groups[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan.groups[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(DynamicPlan, WeakEdgesAreIgnored) {
  const int n = 4;
  auto t = empty_traffic(n);
  add_edge(t, n, 0, 1, 1 << 20);
  add_edge(t, n, 2, 3, 1 << 20);
  add_edge(t, n, 1, 2, 100);  // noise well below 5% of the heavy edges
  auto plan = dynamic_plan(t, n, 4);
  EXPECT_TRUE(plan.used_dynamic);
  ASSERT_EQ(plan.size(), 2);
  EXPECT_EQ(plan.groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.groups[1], (std::vector<int>{2, 3}));
}

TEST(DynamicPlan, GlobalCommunicationFallsBackToStatic) {
  const int n = 8;
  auto t = empty_traffic(n);
  // All-to-all traffic: one giant closure.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) add_edge(t, n, a, b, 1 << 20);
  }
  auto plan = dynamic_plan(t, n, 4);
  EXPECT_FALSE(plan.used_dynamic);
  ASSERT_EQ(plan.size(), 2);  // static blocks of 4
  EXPECT_EQ(plan.groups[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(DynamicPlan, NoTrafficFallsBackToStatic) {
  const int n = 8;
  auto plan = dynamic_plan(empty_traffic(n), n, 2);
  EXPECT_FALSE(plan.used_dynamic);
  EXPECT_EQ(plan.size(), 4);
}

TEST(DynamicPlan, OversizedClosureIsSplit) {
  const int n = 8;
  auto t = empty_traffic(n);
  for (int i = 0; i < 3; ++i) add_edge(t, n, i, i + 1, 1 << 20);  // 0..3 chain
  auto plan = dynamic_plan(t, n, 2);
  EXPECT_TRUE(plan.used_dynamic);
  // Closure {0..3} split into {0,1} and {2,3}; singletons 4..7 packed into
  // groups of <= 2. No group exceeds the cap; every rank is covered.
  int covered = 0;
  for (const auto& g : plan.groups) {
    EXPECT_LE(g.size(), 2u);
    covered += static_cast<int>(g.size());
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(plan.size(), 4);
}

TEST(DynamicPlan, MostlyGlobalClosureTriggersFallback) {
  const int n = 8;
  auto t = empty_traffic(n);
  for (int i = 0; i < 5; ++i) add_edge(t, n, i, i + 1, 1 << 20);  // 0..5 chain
  // A closure spanning 6 of 8 ranks counts as "mainly global communication".
  auto plan = dynamic_plan(t, n, 4);
  EXPECT_FALSE(plan.used_dynamic);
}

TEST(DynamicPlan, SingletonsArePackedTogether) {
  const int n = 6;
  auto t = empty_traffic(n);
  add_edge(t, n, 0, 1, 1 << 20);
  // Ranks 2..5 never communicate: they may share checkpoint groups freely.
  auto plan = dynamic_plan(t, n, 4);
  EXPECT_TRUE(plan.used_dynamic);
  int covered = 0;
  for (const auto& g : plan.groups) covered += static_cast<int>(g.size());
  EXPECT_EQ(covered, n);
  EXPECT_LE(plan.size(), 3);
}

TEST(DynamicPlan, EveryRankAppearsExactlyOnce) {
  const int n = 16;
  auto t = empty_traffic(n);
  for (int i = 0; i + 1 < n; i += 2) add_edge(t, n, i, i + 1, 1 << 18);
  auto plan = dynamic_plan(t, n, 4);
  std::vector<int> seen(n, 0);
  for (const auto& g : plan.groups) {
    for (int m : g) ++seen[m];
  }
  for (int r = 0; r < n; ++r) EXPECT_EQ(seen[r], 1) << "rank " << r;
}

}  // namespace
}  // namespace gbc::ckpt
