// The structured protocol trace: ordering and content of emitted events.
#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "ckpt_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {
namespace {

using storage::mib;
using testing::CkptWorld;

TEST(Trace, CheckpointCycleEmitsOrderedEvents) {
  CkptConfig cc;
  cc.group_size = 2;
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(32); });
  sim::Trace trace;
  trace.enable(true);
  w.ckpt.set_trace(&trace);
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kGroupBased);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    co_await r.compute(sim::from_seconds(20));
  });

  const auto& ev = trace.events();
  ASSERT_FALSE(ev.empty());
  // Begins with a cycle-begin, ends with cycle-complete.
  EXPECT_EQ(ev.front().category, "cycle");
  EXPECT_EQ(ev.front().detail, "begin group-based");
  EXPECT_EQ(ev.back().category, "cycle");
  EXPECT_EQ(ev.back().detail, "complete");
  // Each of the 4 ranks freezes, snapshots and resumes exactly once.
  int freezes = 0, snapshots = 0, resumes = 0;
  for (const auto& e : ev) {
    if (e.category == "freeze") ++freezes;
    if (e.category == "snapshot") ++snapshots;
    if (e.category == "resume") ++resumes;
  }
  EXPECT_EQ(freezes, 4);
  EXPECT_EQ(snapshots, 4);
  EXPECT_EQ(resumes, 4);
  // Timestamps are non-decreasing.
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].t, ev[i].t);
  }
}

TEST(Trace, PerRankOrderingFreezeSnapshotResume) {
  CkptConfig cc;
  cc.group_size = 1;
  CkptWorld w(3, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(16); });
  sim::Trace trace;
  trace.enable(true);
  w.ckpt.set_trace(&trace);
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kGroupBased);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    co_await r.compute(sim::from_seconds(10));
  });
  for (int rank = 0; rank < 3; ++rank) {
    sim::Time freeze = -1, snap = -1, resume = -1;
    for (const auto& e : trace.events()) {
      if (e.actor != rank) continue;
      if (e.category == "freeze") freeze = e.t;
      if (e.category == "snapshot") snap = e.t;
      if (e.category == "resume") resume = e.t;
    }
    EXPECT_LE(freeze, snap) << rank;
    EXPECT_LT(snap, resume) << rank;
  }
}

TEST(Trace, DisabledTraceRecordsNothing) {
  CkptWorld w(2);
  w.ckpt.set_footprint_provider([](int) { return mib(16); });
  sim::Trace trace;  // not enabled
  w.ckpt.set_trace(&trace);
  w.ckpt.request_at(sim::from_seconds(1), Protocol::kBlockingCoordinated);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    co_await r.compute(sim::from_seconds(10));
  });
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace gbc::ckpt
