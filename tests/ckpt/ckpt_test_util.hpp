#pragma once

#include "ckpt/checkpoint.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt::testing {

/// Full simulated job for checkpoint tests: engine + fabric + storage +
/// MiniMPI + C/R service, calibrated like the paper's 32+4-node testbed.
struct CkptWorld {
  sim::Engine eng;
  net::Fabric fabric;
  storage::StorageSystem fs;
  mpi::MiniMPI mpi;
  CheckpointService ckpt;

  explicit CkptWorld(int n, CkptConfig cc = {}, mpi::MpiConfig mc = {},
                     storage::StorageConfig sc = {}, net::NetConfig nc = {})
      : fabric(eng, nc, n), fs(eng, sc), mpi(eng, fabric, mc),
        ckpt(mpi, fs, cc) {}

  template <typename F>
  void run_all(F&& per_rank) {
    for (int r = 0; r < mpi.nranks(); ++r) {
      eng.spawn(per_rank(mpi.rank(r)));
    }
    eng.run();
  }
};

}  // namespace gbc::ckpt::testing
