#pragma once

#include "ckpt/checkpoint.hpp"
#include "harness/sim_cluster.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt::testing {

/// Full simulated job for checkpoint tests, calibrated like the paper's
/// 32+4-node testbed. A thin veneer over the harness composition root
/// (harness::SimCluster) that keeps the historical flat member names the
/// test bodies use.
struct CkptWorld {
  harness::SimCluster cluster;
  sim::Engine& eng;
  net::Fabric& fabric;
  storage::StorageSystem& fs;
  mpi::MiniMPI& mpi;
  CheckpointService& ckpt;

  explicit CkptWorld(int n, CkptConfig cc = {}, mpi::MpiConfig mc = {},
                     storage::StorageConfig sc = {}, net::NetConfig nc = {})
      : cluster(make_preset(n, mc, sc, nc), cc),
        eng(cluster.engine()), fabric(cluster.fabric()),
        fs(cluster.shared_fs()), mpi(cluster.mpi()),
        ckpt(cluster.checkpoints()) {}

  template <typename F>
  void run_all(F&& per_rank) {
    for (int r = 0; r < mpi.nranks(); ++r) {
      eng.spawn(per_rank(mpi.rank(r)));
    }
    eng.run();
  }

 private:
  static harness::ClusterPreset make_preset(int n, mpi::MpiConfig mc,
                                            storage::StorageConfig sc,
                                            net::NetConfig nc) {
    harness::ClusterPreset p;
    p.nranks = n;
    p.mpi = mc;
    p.storage = sc;
    p.net = nc;
    return p;
  }
};

}  // namespace gbc::ckpt::testing
