// Coordinator federation (DESIGN.md §15): the group-based cycle runs as a
// federation of LPs — a thin root on the service LP that only sequences
// groups and commits the ledger, plus one coordinator LP per group (the
// home LP of the group's lowest rank) running that group's phase machine.
// Three properties pin the decomposition down:
//
//  1. the inter-group schedule is identical to the monolithic (--shards 1)
//     run at any shard/thread layout, including non-divisible rank blocks;
//  2. a group whose coordinator's node dies right after the dispatch
//     reaches it is recovered by the root LP running that group itself,
//     and the cycle still completes for every rank;
//  3. the same-shard LpBus fast path (direct settle-bucket push, no
//     cross-shard mailbox hop) preserves canonical (origin, sequence)
//     delivery order under a randomized send/RPC interleaving stress.
#include <gtest/gtest.h>

#include <utility>
#include <vector>
#include <random>

#include "ckpt/checkpoint.hpp"
#include "harness/preset.hpp"
#include "harness/sim_cluster.hpp"
#include "sim/lp_bus.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::ckpt {
namespace {

harness::ClusterPreset sharded_preset(int n, int shards, int threads) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = n;
  p.shards = shards;
  p.threads = threads;
  return p;
}

/// Long chunked compute so ranks are busy (but responsive) while the cycle
/// runs — same shape as checkpoint_test.cpp's computer.
sim::Task<void> computer(mpi::RankCtx* r, sim::Time total) {
  const sim::Time chunk = 100 * sim::kMillisecond;
  for (sim::Time left = total; left > 0;) {
    const sim::Time step = left < chunk ? left : chunk;
    co_await r->compute(step);
    left -= step;
  }
}

/// One group-based cycle over n computing ranks at the given layout.
/// fail_coord >= 0 arms the one-shot coordinator-failure hook for that
/// rank's coordinator LP before the cycle starts.
GlobalCheckpoint run_cycle(int n, int shards, int threads, int group_size,
                           int fail_coord = -1) {
  CkptConfig cc;
  cc.group_size = group_size;
  harness::SimCluster cluster(sharded_preset(n, shards, threads), cc);
  if (fail_coord >= 0) {
    cluster.checkpoints().fail_coordinator_once(fail_coord);
  }
  cluster.checkpoints().request_at(sim::from_seconds(1),
                                   Protocol::kGroupBased);
  cluster.spawn_ranks([&](mpi::RankCtx& r) {
    return computer(&r, sim::from_seconds(120));
  });
  cluster.run();
  const auto& hist = cluster.checkpoints().history();
  EXPECT_EQ(hist.size(), 1u);
  return hist.empty() ? GlobalCheckpoint{} : hist.front();
}

/// Groups must finish strictly one after another, in plan order.
void expect_sequential(const GlobalCheckpoint& gc) {
  sim::Time prev_end = -1;
  for (const auto& group : gc.plan.groups) {
    sim::Time begin = sim::from_seconds(1e12), end = 0;
    for (int m : group) {
      begin = std::min(begin, gc.snapshots[m].freeze_begin);
      end = std::max(end, gc.snapshots[m].resume_at);
    }
    EXPECT_LE(prev_end, begin + sim::kMillisecond);
    prev_end = end;
  }
}

void expect_same_schedule(const GlobalCheckpoint& a,
                          const GlobalCheckpoint& b) {
  ASSERT_EQ(a.plan.groups, b.plan.groups);
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  EXPECT_EQ(a.completed_at, b.completed_at);
  for (std::size_t r = 0; r < a.snapshots.size(); ++r) {
    EXPECT_EQ(a.snapshots[r].freeze_begin, b.snapshots[r].freeze_begin)
        << "rank " << r;
    EXPECT_EQ(a.snapshots[r].taken_at, b.snapshots[r].taken_at)
        << "rank " << r;
    EXPECT_EQ(a.snapshots[r].resume_at, b.snapshots[r].resume_at)
        << "rank " << r;
  }
}

TEST(CoordinatorFederation, InterGroupSequencingMatchesMonolithicOrder) {
  // 16 ranks in 4 groups: coordinators anchor at ranks 0/4/8/12, which land
  // on different shards at S=4 and straddle block boundaries at S=3 (blocks
  // of 6/5/5). The dispatched schedule must be time-identical to the
  // monolithic run, not merely "some valid order".
  const GlobalCheckpoint mono = run_cycle(16, 1, 1, 4);
  const GlobalCheckpoint four = run_cycle(16, 4, 4, 4);
  const GlobalCheckpoint three = run_cycle(16, 3, 3, 4);
  ASSERT_EQ(mono.plan.size(), 4);
  expect_sequential(mono);
  expect_same_schedule(mono, four);
  expect_same_schedule(mono, three);
}

TEST(CoordinatorFederation, DeadCoordinatorIsRecoveredByRootLp) {
  // Rank 4 anchors group {4..7}'s coordinator and lives on shard 1 at
  // S=4 — the hook kills it right after the root's dispatch reaches it,
  // before any member is touched. The root must detect the abandoned
  // dispatch and run the group's phase machine itself; every rank still
  // gets a snapshot and the groups still run strictly in plan order.
  const GlobalCheckpoint clean = run_cycle(16, 4, 2, 4);
  const GlobalCheckpoint failed = run_cycle(16, 4, 2, 4, /*fail_coord=*/4);
  ASSERT_EQ(failed.plan.groups, clean.plan.groups);
  ASSERT_EQ(failed.snapshots.size(), 16u);
  EXPECT_GT(failed.completed_at, failed.requested_at);
  for (int r = 0; r < 16; ++r) {
    EXPECT_GE(failed.snapshots[r].taken_at, 0) << "rank " << r;
    EXPECT_GE(failed.snapshots[r].freeze_begin, 0) << "rank " << r;
    EXPECT_GT(failed.snapshots[r].resume_at,
              failed.snapshots[r].freeze_begin)
        << "rank " << r;
  }
  expect_sequential(failed);
  // Groups before the dead coordinator's are untouched by the recovery:
  // their schedule matches the clean cycle exactly.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(failed.snapshots[r].freeze_begin,
              clean.snapshots[r].freeze_begin)
        << "rank " << r;
    EXPECT_EQ(failed.snapshots[r].resume_at, clean.snapshots[r].resume_at)
        << "rank " << r;
  }
}

// --- same-shard fast-path ordering stress -------------------------------

/// Per-destination delivery log: (origin, origin-local sequence) in the
/// order the bus executed the deliveries at that LP.
using DeliveryLog = std::vector<std::vector<std::pair<int, int>>>;

sim::Task<void> record_rpc(DeliveryLog* log, int dst, int origin, int seq) {
  (*log)[dst].push_back({origin, seq});
  co_return;
}

/// Each rank fires a seeded-random mix of one-way bus sends and bus RPCs at
/// random destinations, biased so half the traffic targets a same-shard
/// partner — forcing fast-path (direct settle-bucket) and cross-shard
/// (mailbox + inbox_push) deliveries to interleave at every receiver —
/// with random compute gaps so bucket boundaries shift between ops.
sim::Task<void> stress_rank(mpi::RankCtx* r, sim::LpBus* bus,
                            DeliveryLog* log, int n) {
  const int me = r->world_rank();
  // Partner under the 4-shard block map (shard = rank*4/n) — chosen from a
  // *fixed* reference layout so every run executes the identical program
  // regardless of its actual shard count. At S=4 the partner is genuinely
  // same-shard (the fast path); at other layouts the same pair may cross
  // shards, and the delivery order must not care.
  int mate = me;
  for (int p = 0; p < n; ++p) {
    if (p != me && p * 4 / n == me * 4 / n) {
      mate = p;
      break;
    }
  }
  std::mt19937 rng(0x9e3779b9u + static_cast<unsigned>(me) * 1000003u);
  std::uniform_int_distribution<int> pick_dst(0, n - 1);
  std::uniform_int_distribution<int> pick_op(0, 3);
  std::uniform_int_distribution<int> pick_gap(0, 400);
  int seq = 0;
  for (int i = 0; i < 200; ++i) {
    const int op = pick_op(rng);
    const int dst = (op == 0 || op == 2) ? mate : pick_dst(rng);
    const int s = seq++;
    if (op < 2) {
      co_await bus->call(me, dst, [log, dst, me, s] {
        return record_rpc(log, dst, me, s);
      });
    } else {
      bus->send(me, dst,
                [log, dst, me, s] { (*log)[dst].push_back({me, s}); });
    }
    if (const int gap = pick_gap(rng); gap > 0) {
      co_await r->compute(gap * sim::kMicrosecond);
    }
  }
}

DeliveryLog run_stress(int n, int shards, int threads) {
  harness::SimCluster cluster(sharded_preset(n, shards, threads));
  DeliveryLog log(static_cast<std::size_t>(n));
  cluster.spawn_ranks([&](mpi::RankCtx& r) {
    return stress_rank(&r, &cluster.bus(), &log, n);
  });
  cluster.run();
  return log;
}

TEST(CoordinatorFederation, SameShardFastPathKeepsCanonicalOrderUnderStress) {
  const int n = 8;
  const DeliveryLog serial = run_stress(n, 1, 1);
  // Every delivery arrived, and per (destination, origin) the origin-local
  // sequence is strictly increasing: the fast path never reorders one
  // sender's stream.
  std::size_t total = 0;
  for (int dst = 0; dst < n; ++dst) {
    total += serial[dst].size();
    std::vector<int> last(n, -1);
    for (const auto& [origin, seq] : serial[dst]) {
      EXPECT_GT(seq, last[origin]) << "dst " << dst << " origin " << origin;
      last[origin] = seq;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n) * 200);

  // And the full interleaving — not just per-origin order — is identical
  // to the serial run at both an even (4x2-rank) and a non-divisible
  // (3-shard) layout, multi-threaded.
  EXPECT_EQ(serial, run_stress(n, 4, 4));
  EXPECT_EQ(serial, run_stress(n, 3, 3));
}

}  // namespace
}  // namespace gbc::ckpt
