// Protocol-specific behaviors: Chandy-Lamport vs blocking equivalence on
// idle apps, uncoordinated independence, dynamic formation end-to-end.
#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "ckpt_test_util.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {
namespace {

using storage::mib;
using testing::CkptWorld;

sim::Task<void> trigger(CheckpointService* svc, Protocol p,
                        GlobalCheckpoint* out) {
  *out = co_await svc->checkpoint(p);
}

sim::Task<void> chatty(mpi::RankCtx* r, int peer, std::uint64_t iters) {
  const mpi::Comm& wc = r->mpi().world();
  for (std::uint64_t i = 0; i < iters; ++i) {
    mpi::Request rq = r->irecv(wc, peer, static_cast<mpi::Tag>(i));
    co_await r->send(wc, peer, static_cast<mpi::Tag>(i), 32 * storage::kKiB);
    co_await r->wait(rq);
    co_await r->compute(50 * sim::kMillisecond);
  }
}

TEST(ChandyLamport, TotalTimeMatchesBlockingOnSameFootprints) {
  // Both protocols snapshot everyone at once on InfiniBand; CL's lack of a
  // schedule means it inherits the same storage bottleneck.
  auto run = [](Protocol p) {
    CkptWorld w(8);
    w.ckpt.set_footprint_provider([](int) { return mib(140); });
    GlobalCheckpoint gc;
    w.eng.schedule_at(sim::from_seconds(1), [&] {
      w.eng.spawn(trigger(&w.ckpt, p, &gc));
    });
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      return chatty(&r, r.world_rank() ^ 1, 200);
    });
    return gc;
  };
  auto cl = run(Protocol::kChandyLamport);
  auto blocking = run(Protocol::kBlockingCoordinated);
  EXPECT_NEAR(static_cast<double>(cl.total_checkpoint_time()),
              static_cast<double>(blocking.total_checkpoint_time()),
              0.15 * static_cast<double>(blocking.total_checkpoint_time()));
}

TEST(ChandyLamport, SnapshotsOverlapInTime) {
  CkptWorld w(8);
  w.ckpt.set_footprint_provider([](int) { return mib(140); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kChandyLamport, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return chatty(&r, r.world_rank() ^ 1, 200);
  });
  // Every rank freezes within a marker fan-out of the request, far before
  // any of them finishes writing.
  sim::Time max_begin = 0, min_resume = sim::from_seconds(1e9);
  for (const auto& s : gc.snapshots) {
    max_begin = std::max(max_begin, s.freeze_begin);
    min_resume = std::min(min_resume, s.resume_at);
  }
  EXPECT_LT(max_begin, min_resume);
}

TEST(Uncoordinated, NoTrafficIsEverDeferred) {
  CkptConfig cc;
  cc.uncoordinated_stagger = sim::from_seconds(1);
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(64); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kUncoordinatedLogging, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return chatty(&r, r.world_rank() ^ 1, 150);
  });
  // Uncoordinated checkpointing never gates communication; consistency
  // would come from the (separately modelled) message log.
  EXPECT_EQ(w.mpi.stats().messages_buffered, 0);
  EXPECT_EQ(w.mpi.stats().requests_buffered, 0);
  EXPECT_EQ(gc.protocol, Protocol::kUncoordinatedLogging);
}

TEST(Uncoordinated, RanksSnapshotAtTheirOwnPace) {
  CkptConfig cc;
  cc.uncoordinated_stagger = sim::from_seconds(3);
  CkptWorld w(4, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(32); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(1), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kUncoordinatedLogging, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return chatty(&r, r.world_rank() ^ 1, 200);
  });
  // Later ranks start well after earlier ranks resumed: no global freeze.
  EXPECT_GT(gc.snapshots[3].freeze_begin, gc.snapshots[0].resume_at);
}

TEST(DynamicFormation, EndToEndRecoversCommunicationClusters) {
  CkptConfig cc;
  cc.group_size = 2;
  cc.dynamic_formation = true;
  CkptWorld w(8, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(64); });
  GlobalCheckpoint gc;
  // Pairs (0,4),(1,5),(2,6),(3,7): static blocks of 2 would split them all.
  w.eng.schedule_at(sim::from_seconds(5), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    return chatty(&r, (r.world_rank() + 4) % 8, 400);
  });
  ASSERT_GT(gc.completed_at, 0);
  EXPECT_TRUE(gc.plan.used_dynamic);
  ASSERT_EQ(gc.plan.size(), 4);
  // Every group is exactly one communicating pair.
  for (const auto& g : gc.plan.groups) {
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ((g[0] + 4) % 8, g[1]);
  }
}

TEST(DynamicFormation, PlanFallsBackForGlobalTraffic) {
  CkptConfig cc;
  cc.group_size = 4;
  cc.dynamic_formation = true;
  CkptWorld w(8, cc);
  w.ckpt.set_footprint_provider([](int) { return mib(32); });
  GlobalCheckpoint gc;
  w.eng.schedule_at(sim::from_seconds(3), [&] {
    w.eng.spawn(trigger(&w.ckpt, Protocol::kGroupBased, &gc));
  });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    for (int i = 0; i < 60; ++i) {
      (void)co_await r.allreduce(wc, mpi::Op::kSum, mpi::vec(1.0));
      co_await r.compute(50 * sim::kMillisecond);
    }
  });
  ASSERT_GT(gc.completed_at, 0);
  EXPECT_FALSE(gc.plan.used_dynamic);  // fell back to static blocks of 4
  EXPECT_EQ(gc.plan.size(), 2);
}

}  // namespace
}  // namespace gbc::ckpt
