#include "ckpt/store.hpp"

#include <gtest/gtest.h>

namespace gbc::ckpt {
namespace {

GlobalCheckpoint make_gc(int ranks, double t, Bytes image) {
  GlobalCheckpoint gc;
  gc.protocol = Protocol::kGroupBased;
  gc.requested_at = sim::from_seconds(t - 1);
  gc.completed_at = sim::from_seconds(t);
  gc.snapshots.resize(ranks);
  for (int r = 0; r < ranks; ++r) {
    gc.snapshots[r].rank = r;
    gc.snapshots[r].image_bytes = image;
    gc.snapshots[r].taken_at = sim::from_seconds(t - 0.5);
    gc.snapshots[r].app_state = {static_cast<std::uint64_t>(t), 0, 0};
  }
  return gc;
}

TEST(CheckpointStore, CommitAndLatest) {
  CheckpointStore store(2);
  store.commit(make_gc(4, 10, storage::mib(100)), false);
  store.commit(make_gc(4, 20, storage::mib(100)), false);
  ASSERT_TRUE(store.latest());
  EXPECT_EQ(store.latest()->taken_at, sim::from_seconds(20));
  // As-of query.
  const auto* at15 = store.latest(sim::from_seconds(15));
  ASSERT_TRUE(at15);
  EXPECT_EQ(at15->taken_at, sim::from_seconds(10));
  EXPECT_EQ(store.latest(sim::from_seconds(5)), nullptr);
}

TEST(CheckpointStore, RetentionGarbageCollectsOldSets) {
  CheckpointStore store(2);
  for (int i = 1; i <= 5; ++i) {
    store.commit(make_gc(2, i * 10.0, storage::mib(50)), false);
  }
  EXPECT_EQ(store.live_sets(), 2);
  EXPECT_EQ(store.sets().size(), 5u);
  // Only the newest two survive.
  EXPECT_TRUE(store.sets()[0].garbage_collected);
  EXPECT_TRUE(store.sets()[2].garbage_collected);
  EXPECT_FALSE(store.sets()[3].garbage_collected);
  EXPECT_FALSE(store.sets()[4].garbage_collected);
}

TEST(CheckpointStore, ResidentBytesTracksLiveSetsOnly) {
  CheckpointStore store(1);
  store.commit(make_gc(4, 10, storage::mib(100)), false);
  EXPECT_EQ(store.resident_bytes(), 4 * storage::mib(100));
  store.commit(make_gc(4, 20, storage::mib(60)), false);
  EXPECT_EQ(store.resident_bytes(), 4 * storage::mib(60));
}

TEST(CheckpointStore, FullImageRestoreCostIsItsOwnSize) {
  CheckpointStore store(2);
  const auto& set = store.commit(make_gc(4, 10, storage::mib(100)), false);
  EXPECT_EQ(store.restore_bytes(set, 0), storage::mib(100));
}

TEST(CheckpointStore, IncrementalChainsAccumulateRestoreCost) {
  CheckpointStore store(3);
  store.commit(make_gc(2, 10, storage::mib(100)), false);     // full
  store.commit(make_gc(2, 20, storage::mib(20)), true);       // inc -> full
  const auto& third = store.commit(make_gc(2, 30, storage::mib(10)), true);
  // Restore = 10 + 20 + 100.
  EXPECT_EQ(store.restore_bytes(third, 1), storage::mib(130));
}

TEST(CheckpointStore, IncrementalChainPinsAncestorsAgainstGc) {
  CheckpointStore store(1);  // keep only 1 set normally
  store.commit(make_gc(2, 10, storage::mib(100)), false);  // full
  store.commit(make_gc(2, 20, storage::mib(20)), true);    // chains to full
  // The full set cannot be collected while the increment needs it.
  EXPECT_EQ(store.live_sets(), 2);
  EXPECT_FALSE(store.sets()[0].garbage_collected);
  // A new full image releases the chain...
  store.commit(make_gc(2, 30, storage::mib(100)), false);
  EXPECT_TRUE(store.sets()[0].garbage_collected);
  EXPECT_TRUE(store.sets()[1].garbage_collected);
  EXPECT_EQ(store.live_sets(), 1);
}

TEST(CheckpointStore, FirstIncrementalWithoutPredecessorIsFull) {
  CheckpointStore store(2);
  const auto& set = store.commit(make_gc(2, 10, storage::mib(80)), true);
  EXPECT_FALSE(set.images[0].incremental);
  EXPECT_EQ(store.restore_bytes(set, 0), storage::mib(80));
}

TEST(CheckpointStore, AppStateBlobsRoundTrip) {
  CheckpointStore store(2);
  auto gc = make_gc(3, 10, storage::mib(10));
  gc.snapshots[2].app_state = {7, 8, 9};
  const auto& set = store.commit(gc, false);
  EXPECT_EQ(set.app_state[2], (std::vector<std::uint64_t>{7, 8, 9}));
}

}  // namespace
}  // namespace gbc::ckpt
