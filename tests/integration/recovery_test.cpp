#include "harness/recovery.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workloads/hpl.hpp"
#include "workloads/microbench.hpp"
#include "workloads/motifminer.hpp"

namespace gbc::harness {
namespace {

ClusterPreset small_cluster(int n) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 64.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

TEST(Recovery, RestartFromGroupCheckpointReproducesExactResult) {
  auto preset = small_cluster(8);
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;

  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_failure(preset, factory, cc, reqs,
                              sim::from_seconds(12));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_GT(rec.rollback_iteration, 0u);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
}

TEST(Recovery, ColdRestartWhenNoCheckpointCompleted) {
  auto preset = small_cluster(4);
  auto factory = microbench_factory(2, 80);
  ckpt::CkptConfig cc;
  cc.group_size = 2;
  RunResult clean = run_experiment(preset, factory, cc);
  // Failure before any checkpoint was even requested.
  auto rec = run_with_failure(preset, factory, cc, {}, sim::from_seconds(3));
  EXPECT_FALSE(rec.used_checkpoint);
  EXPECT_EQ(rec.rollback_iteration, 0u);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

TEST(Recovery, CheckpointShortensTimeToSolution) {
  auto preset = small_cluster(8);
  auto factory = microbench_factory(4, 200);  // ~20s clean runtime
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(4), ckpt::Protocol::kGroupBased});
  auto with_ckpt =
      run_with_failure(preset, factory, cc, reqs, sim::from_seconds(15));
  auto cold = run_with_failure(preset, factory, cc, {}, sim::from_seconds(15));
  EXPECT_TRUE(with_ckpt.used_checkpoint);
  EXPECT_FALSE(cold.used_checkpoint);
  EXPECT_LT(with_ckpt.total_seconds, cold.total_seconds);
  EXPECT_EQ(with_ckpt.final_hashes, cold.final_hashes);
}

TEST(Recovery, RestartPaysStorageReadCost) {
  auto preset = small_cluster(8);
  auto factory = microbench_factory(4, 120);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});
  auto rec = run_with_failure(preset, factory, cc, reqs,
                              sim::from_seconds(10));
  // 8 ranks x 64MB read back from ~140MB/s shared storage: seconds.
  EXPECT_GT(rec.restart_read_seconds, 1.0);
}

TEST(Recovery, BlockingCoordinatedCheckpointAlsoRecovers) {
  auto preset = small_cluster(4);
  auto factory = microbench_factory(2, 100);
  ckpt::CkptConfig cc;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(2), ckpt::Protocol::kBlockingCoordinated});
  auto rec =
      run_with_failure(preset, factory, cc, reqs, sim::from_seconds(9));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

TEST(Recovery, LaterOfTwoCheckpointsIsUsed) {
  auto preset = small_cluster(4);
  auto factory = microbench_factory(2, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 2;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(2), ckpt::Protocol::kGroupBased});
  reqs.push_back(
      CkptRequest{sim::from_seconds(8), ckpt::Protocol::kGroupBased});
  auto rec =
      run_with_failure(preset, factory, cc, reqs, sim::from_seconds(14));
  EXPECT_TRUE(rec.used_checkpoint);
  // Rollback point must come from the 8s checkpoint, not the 2s one.
  EXPECT_GT(rec.rollback_iteration, 40u);
}

TEST(Recovery, HplSurvivesMidFactorizationFailure) {
  auto preset = small_cluster(8);
  workloads::HplConfig hc;
  hc.grid_p = 4;
  hc.grid_q = 2;
  hc.n = 6000;
  hc.nb = 200;
  hc.base_footprint_mib = 32.0;
  WorkloadFactory factory = [hc](int n) {
    return std::make_unique<workloads::HplSim>(n, hc);
  };
  ckpt::CkptConfig cc;
  cc.group_size = 2;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(clean.completion_seconds() * 0.3),
                  ckpt::Protocol::kGroupBased});
  // Leave enough time for the 4-group cycle (~4s of storage writes) to
  // complete before the failure strikes.
  auto rec = run_with_failure(
      preset, factory, cc, reqs,
      sim::from_seconds(clean.completion_seconds() * 0.3 + 6.0));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

TEST(Recovery, MotifMinerSurvivesFailure) {
  auto preset = small_cluster(8);
  workloads::MotifMinerConfig mc;
  mc.iterations = 16;
  mc.mean_compute_seconds = 0.5;
  mc.peak_candidates_mib = 16.0;
  mc.base_footprint_mib = 48.0;
  WorkloadFactory factory = [mc](int n) {
    return std::make_unique<workloads::MotifMinerSim>(n, mc);
  };
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});
  auto rec =
      run_with_failure(preset, factory, cc, reqs, sim::from_seconds(7));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

}  // namespace
}  // namespace gbc::harness
