// Diskless erasure tier end-to-end: the drain is off, so after a node loss
// the *only* way back to the newest checkpoint is decoding the parity
// stripe. A correlated failure of exactly m parity-group members must
// recover with zero PFS reads and the same final state as a fault-free
// run; one more loss pushes the stripe below k survivors and the job
// restarts cold.
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hpp"
#include "harness/recovery.hpp"
#include "sim/engine.hpp"
#include "storage/erasure.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

constexpr int kVictim = 1;

ClusterPreset erasure_cluster(int k, int m) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = 16;
  p.tier.enabled = true;
  p.tier.local_write_mbps = 400.0;
  p.tier.drain_mbps = 0;  // diskless: the PFS never sees an image
  p.tier.erasure.enabled = true;
  p.tier.erasure.k = k;
  p.tier.erasure.m = m;
  return p;
}

WorkloadFactory microbench_factory(std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = 4;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 64.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

/// The victim's chunk holders, recomputed with the real placement policy so
/// the fault plan provably hits nodes that hold stripe chunks.
std::vector<int> victim_group(const ClusterPreset& p) {
  sim::Engine eng;
  storage::ErasureTier tier(eng, p.tier.erasure, p.nranks,
                            p.tier.replica_offset);
  return tier.parity_group(kVictim);
}

/// Kills the victim plus its first `nholders` parity-group members in one
/// correlated event.
FaultPlan group_fault(const ClusterPreset& p, int nholders, sim::Time at) {
  const auto group = victim_group(p);
  FaultPlan plan;
  plan.faults.push_back(FaultEvent{
      at, kVictim, std::vector<int>(group.begin(), group.begin() + nholders)});
  return plan;
}

TEST(ErasureRecovery, DecodesNewestCheckpointAfterMInGroupLosses) {
  const auto preset = erasure_cluster(4, 2);
  const auto factory = microbench_factory(150);
  ckpt::CkptConfig cc;
  cc.group_size = 8;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_faults(preset, factory, cc, reqs,
                             group_fault(preset, /*nholders=*/2,
                                         sim::from_seconds(12)));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.checkpoints_skipped, 0);  // the newest checkpoint survived
  EXPECT_EQ(rec.ranks_restored_pfs, 0);   // no PFS read anywhere
  // The three dead nodes (victim + 2 holders) decode their images from the
  // surviving stripe chunks; everyone else restores in place.
  EXPECT_EQ(rec.ranks_restored_erasure, 3);
  EXPECT_EQ(rec.ranks_restored_local, 13);
  EXPECT_EQ(rec.ranks_restored_replica, 0);
  EXPECT_GT(rec.rollback_iteration, 0u);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
}

TEST(ErasureRecovery, SingleLossIsAPassThroughSystematicRead) {
  // Only the victim dies: its data chunks are all alive, so the decode is
  // a systematic pass-through read — still an erasure restore, still no
  // PFS, and healthy ranks never leave their local tier.
  const auto preset = erasure_cluster(4, 2);
  const auto factory = microbench_factory(150);
  ckpt::CkptConfig cc;
  cc.group_size = 8;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_faults(preset, factory, cc, reqs,
                             group_fault(preset, /*nholders=*/0,
                                         sim::from_seconds(12)));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.checkpoints_skipped, 0);
  EXPECT_EQ(rec.ranks_restored_erasure, 1);
  EXPECT_EQ(rec.ranks_restored_local, 15);
  EXPECT_EQ(rec.ranks_restored_pfs, 0);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

TEST(ErasureRecovery, OverBudgetLossesForceAColdRestart) {
  // m + 1 chunk holders die with the victim: fewer than k chunks survive,
  // nothing is on the PFS (drain off), so there is no checkpoint to
  // restore — the job restarts from iteration 0 and still finishes with
  // the fault-free final state.
  const auto preset = erasure_cluster(4, 2);
  const auto factory = microbench_factory(150);
  ckpt::CkptConfig cc;
  cc.group_size = 8;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_faults(preset, factory, cc, reqs,
                             group_fault(preset, /*nholders=*/3,
                                         sim::from_seconds(12)));
  EXPECT_FALSE(rec.used_checkpoint);
  EXPECT_EQ(rec.ranks_restored_erasure, 0);
  EXPECT_EQ(rec.ranks_restored_pfs, 0);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
}

TEST(ErasureRecovery, ReplicaAndErasureCompose) {
  // Both protections on: recovery prefers the cheaper partner replica and
  // only falls back to decoding when the partner died too.
  auto preset = erasure_cluster(4, 2);
  preset.tier.replicate = true;
  const auto factory = microbench_factory(150);
  ckpt::CkptConfig cc;
  cc.group_size = 8;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  // Victim alone: partner replica wins.
  auto rep = run_with_faults(
      preset, factory, cc, reqs,
      group_fault(preset, /*nholders=*/0, sim::from_seconds(12)));
  EXPECT_EQ(rep.ranks_restored_replica, 1);
  EXPECT_EQ(rep.ranks_restored_erasure, 0);
  EXPECT_EQ(rep.final_hashes, clean.final_hashes);
  // Victim + its partner (the parity group avoids the partner, so the
  // stripe is intact): the replica is gone, the stripe decodes.
  FaultPlan pair;
  const int partner = (kVictim + preset.tier.replica_offset) % preset.nranks;
  pair.faults.push_back(
      FaultEvent{sim::from_seconds(12), kVictim, {partner}});
  auto ec = run_with_faults(preset, factory, cc, reqs, pair);
  EXPECT_TRUE(ec.used_checkpoint);
  EXPECT_EQ(ec.checkpoints_skipped, 0);
  EXPECT_GE(ec.ranks_restored_erasure, 1);
  EXPECT_EQ(ec.ranks_restored_pfs, 0);
  EXPECT_EQ(ec.final_hashes, clean.final_hashes);
}

}  // namespace
}  // namespace gbc::harness
