// Job-pause recovery (the paper's related-work comparison): after a single
// node fails, only that rank reloads its image; the rest roll back in place.
#include <gtest/gtest.h>

#include "harness/recovery.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

ClusterPreset small_cluster(int n) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  return p;
}

WorkloadFactory factory(std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = 4;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 96.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

TEST(JobPause, ProducesSameResultAsFullRestart) {
  auto preset = small_cluster(8);
  auto wf = factory(150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(4), ckpt::Protocol::kGroupBased});
  auto full = run_with_single_failure(preset, wf, cc, reqs,
                                      sim::from_seconds(12), 3,
                                      /*job_pause=*/false);
  auto pause = run_with_single_failure(preset, wf, cc, reqs,
                                       sim::from_seconds(12), 3,
                                       /*job_pause=*/true);
  EXPECT_TRUE(full.used_checkpoint);
  EXPECT_TRUE(pause.used_checkpoint);
  EXPECT_EQ(pause.final_hashes, full.final_hashes);
  EXPECT_EQ(pause.final_iterations, full.final_iterations);
}

TEST(JobPause, ReloadsOnlyTheFailedRanksImage) {
  auto preset = small_cluster(8);
  auto wf = factory(150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(4), ckpt::Protocol::kGroupBased});
  auto full = run_with_single_failure(preset, wf, cc, reqs,
                                      sim::from_seconds(12), 3, false);
  auto pause = run_with_single_failure(preset, wf, cc, reqs,
                                       sim::from_seconds(12), 3, true);
  // Full restart: 8 ranks contend for the storage to read 96MB each.
  // Job pause: one rank reads alone at the full per-client bandwidth.
  EXPECT_GT(full.restart_read_seconds, 4.0);
  EXPECT_LT(pause.restart_read_seconds, 1.5);
  EXPECT_LT(pause.total_seconds, full.total_seconds);
}

TEST(JobPause, ColdCaseDegradesToFullRestart) {
  auto preset = small_cluster(4);
  auto wf = factory(60);
  ckpt::CkptConfig cc;
  auto pause = run_with_single_failure(preset, wf, cc, {},
                                       sim::from_seconds(2), 1, true);
  EXPECT_FALSE(pause.used_checkpoint);
  auto clean = run_experiment(preset, wf, cc);
  EXPECT_EQ(pause.final_hashes, clean.final_hashes);
}

}  // namespace
}  // namespace gbc::harness
