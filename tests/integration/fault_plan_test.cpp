// FaultPlan replay loop: multiple injected failures in one run. Each fault
// interrupts its own attempt, the dead-node set accumulates, and the final
// re-execution must still reproduce the clean run bit-for-bit.
#include "harness/recovery.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

ClusterPreset small_cluster(int n) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 64.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

TEST(FaultPlan, TwoFailuresOnDifferentNodesRecoverToCleanResult) {
  auto preset = small_cluster(8);
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;

  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});

  FaultPlan plan;
  plan.faults.push_back(FaultEvent{sim::from_seconds(12), 1});
  plan.faults.push_back(FaultEvent{sim::from_seconds(4), 5});
  auto rec = run_with_faults(preset, factory, cc, reqs, plan);

  EXPECT_EQ(rec.failures, 2);
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_GT(rec.rollback_iteration, 0u);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
  // Each fault's lost work plus the final rerun: strictly worse than one
  // failure at the same first instant.
  FaultPlan one;
  one.faults.push_back(FaultEvent{sim::from_seconds(12), 1});
  auto single = run_with_faults(preset, factory, cc, reqs, one);
  EXPECT_GT(rec.total_seconds, single.total_seconds);
}

TEST(FaultPlan, SingleFaultPlanMatchesClassicRunWithFailure) {
  auto preset = small_cluster(8);
  auto factory = microbench_factory(4, 120);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});

  FaultPlan plan;
  plan.faults.push_back(FaultEvent{sim::from_seconds(10), 2});
  auto a = run_with_faults(preset, factory, cc, reqs, plan);
  auto b = run_with_failure(preset, factory, cc, reqs, sim::from_seconds(10),
                            2);
  EXPECT_EQ(a.used_checkpoint, b.used_checkpoint);
  EXPECT_EQ(a.rollback_iteration, b.rollback_iteration);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.final_hashes, b.final_hashes);
}

TEST(FaultPlan, NoFaultsDegeneratesToCleanRun) {
  auto preset = small_cluster(4);
  auto factory = microbench_factory(2, 80);
  ckpt::CkptConfig cc;
  cc.group_size = 2;
  RunResult clean = run_experiment(preset, factory, cc);
  auto rec = run_with_faults(preset, factory, cc, {}, FaultPlan{});
  EXPECT_EQ(rec.failures, 0);
  EXPECT_FALSE(rec.used_checkpoint);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_DOUBLE_EQ(rec.total_seconds, clean.completion_seconds());
}

TEST(FaultPlan, SecondFailureWithTierLosesMoreImages) {
  auto preset = small_cluster(8);
  preset.tier.enabled = true;
  preset.tier.replicate = true;
  preset.tier.drain_mbps = 0.0;  // images never reach the PFS
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});

  // Node 1 dies, then — during the restarted attempt — its replica partner
  // dies too. With draining disabled the checkpoint is now unrecoverable
  // for rank 1, so the second recovery must degrade to a cold restart
  // while still reproducing the clean result.
  FaultPlan plan;
  plan.faults.push_back(FaultEvent{sim::from_seconds(12), 1});
  plan.faults.push_back(
      FaultEvent{sim::from_seconds(2), (1 + preset.tier.replica_offset) % 8});
  auto rec = run_with_faults(preset, factory, cc, reqs, plan);
  EXPECT_EQ(rec.failures, 2);
  EXPECT_GE(rec.checkpoints_skipped, 1);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

}  // namespace
}  // namespace gbc::harness
