// Full-stack runs under DES sharding: each MPI rank is a logical process on
// its home shard (matching, send pump, NIC state), with shard 0 hosting only
// the service LP (sim::LpBus, DESIGN.md §13). Every observable — completion
// time,
// per-rank state hashes, checkpoint history — must match the serial run
// exactly, including when checkpoint groups span relay-shard boundaries,
// when rank counts don't divide evenly, and when FaultPlan replays several
// failures mid-run.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/recovery.hpp"
#include "harness/sim_cluster.hpp"
#include "sim/pool.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

ClusterPreset sharded_cluster(int n, int shards, int threads) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  p.shards = shards;
  p.threads = threads;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 64.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.final_hashes, b.final_hashes);
  EXPECT_EQ(a.final_iterations, b.final_iterations);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i].requested_at, b.checkpoints[i].requested_at);
    EXPECT_EQ(a.checkpoints[i].completed_at, b.checkpoints[i].completed_at);
  }
}

TEST(ShardFullStack, GroupsSpanningShardBoundariesMatchSerial) {
  // 16 ranks over 4 shards = blocks of 4; comm groups of 8 and one global
  // checkpoint group both straddle every block boundary.
  auto factory = microbench_factory(8, 80);
  ckpt::CkptConfig cc;
  cc.group_size = 0;  // all ranks in one group
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});

  RunResult serial =
      run_experiment(sharded_cluster(16, 1, 1), factory, cc, reqs);
  RunResult sharded =
      run_experiment(sharded_cluster(16, 4, 2), factory, cc, reqs);
  expect_identical(serial, sharded);
  ASSERT_EQ(sharded.checkpoints.size(), 1u);
  EXPECT_GE(sharded.checkpoints[0].completed_at, 0);
}

TEST(ShardFullStack, NonPowerOfTwoRanksAndShardsMatchSerial) {
  // 13 ranks over 3 shards: uneven relay blocks (5/4/4 by the block map),
  // a comm group that wraps the remainder ranks, grouped checkpoints.
  auto factory = microbench_factory(5, 60);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(2), ckpt::Protocol::kGroupBased});

  RunResult serial =
      run_experiment(sharded_cluster(13, 1, 1), factory, cc, reqs);
  RunResult sharded =
      run_experiment(sharded_cluster(13, 3, 3), factory, cc, reqs);
  expect_identical(serial, sharded);
}

TEST(ShardFullStack, AllProtocolsMatchSerialUnderSharding) {
  auto factory = microbench_factory(4, 50);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  for (auto proto :
       {ckpt::Protocol::kGroupBased, ckpt::Protocol::kBlockingCoordinated,
        ckpt::Protocol::kChandyLamport}) {
    std::vector<CkptRequest> reqs;
    reqs.push_back(CkptRequest{sim::from_seconds(2), proto});
    RunResult serial =
        run_experiment(sharded_cluster(8, 1, 1), factory, cc, reqs);
    RunResult sharded =
        run_experiment(sharded_cluster(8, 8, 2), factory, cc, reqs);
    expect_identical(serial, sharded);
  }
}

TEST(ShardFullStack, FaultPlanMultiFailureReplayMatchesSerial) {
  // Two failures, recovery re-executions and all, under shards=4: the
  // replayed attempts run through the relay router too, so the recovered
  // run must land on the same final state as both the serial fault run and
  // the clean run.
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});

  FaultPlan plan;
  plan.faults.push_back(FaultEvent{sim::from_seconds(12), 1});
  plan.faults.push_back(FaultEvent{sim::from_seconds(4), 5});

  auto serial = run_with_faults(sharded_cluster(8, 1, 1), factory, cc, reqs,
                                plan);
  auto sharded = run_with_faults(sharded_cluster(8, 4, 2), factory, cc, reqs,
                                 plan);
  EXPECT_EQ(sharded.failures, 2);
  EXPECT_EQ(sharded.failures, serial.failures);
  EXPECT_EQ(sharded.used_checkpoint, serial.used_checkpoint);
  EXPECT_EQ(sharded.rollback_iteration, serial.rollback_iteration);
  EXPECT_DOUBLE_EQ(sharded.total_seconds, serial.total_seconds);
  EXPECT_EQ(sharded.final_hashes, serial.final_hashes);

  RunResult clean = run_experiment(sharded_cluster(8, 1, 1), factory, cc);
  EXPECT_EQ(sharded.final_hashes, clean.final_hashes);
}

// Runs `program(rank_ctx)` on every rank of an n-rank/S-shard cluster and
// returns each rank's completion time (per-rank slots, max-folded by the
// caller as needed).
template <typename Program>
std::vector<sim::Time> run_program(int n, int shards, int threads,
                                   Program program) {
  ClusterPreset p = sharded_cluster(n, shards, threads);
  SimCluster cluster(p);
  std::vector<sim::Time> done(n, -1);
  cluster.spawn_ranks([&](mpi::RankCtx& rank) {
    return [](Program* prog, mpi::RankCtx* rk,
              sim::Time* slot) -> sim::Task<void> {
      co_await (*prog)(*rk);
      *slot = rk->engine().now();
    }(&program, &rank, &done[rank.world_rank()]);
  });
  cluster.run();
  return done;
}

TEST(ShardFullStack, CrossShardWildcardRecvMatchesSerial) {
  // 8 ranks over 4 shards: rank 0 posts kAnySource/kAnyTag receives while
  // the senders live on three other shards. The wildcard match order is
  // arrival order at rank 0's LP, which the bus delivers canonically — so
  // the matched sources and the completion times must be shard-invariant.
  auto program = [](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int n = wc.size();
    if (r.world_rank() == 0) {
      std::vector<int> sources;
      for (int i = 0; i < n - 1; ++i) {
        mpi::RecvInfo info =
            co_await r.recv(wc, mpi::kAnySource, mpi::kAnyTag);
        sources.push_back(info.source);
      }
      EXPECT_EQ(static_cast<int>(sources.size()), n - 1);
    } else {
      // Stagger sends so arrival order is a pure function of the model.
      co_await r.compute(r.world_rank() * sim::kMillisecond);
      co_await r.send(wc, 0, /*tag=*/r.world_rank(), 4 * storage::kKiB);
    }
  };
  std::vector<sim::Time> serial = run_program(8, 1, 1, program);
  std::vector<sim::Time> sharded = run_program(8, 4, 2, program);
  EXPECT_EQ(serial, sharded);
}

TEST(ShardFullStack, CrossShardRendezvousParkedRtsMatchesSerial) {
  // Rendezvous across a shard boundary with the RTS arriving *before* the
  // receive is posted: the RTS parks in the destination matcher (on the
  // destination rank's shard) until the late recv posts there, then the
  // CTS/RDMA/FIN exchange crosses shards again. Completion times must be
  // byte-identical to the serial run.
  const storage::Bytes big = 256 * storage::kKiB;  // >> eager_threshold
  auto program = [big](mpi::RankCtx& r) -> sim::Task<void> {
    const mpi::Comm& wc = r.mpi().world();
    const int n = wc.size();
    const int peer = r.world_rank() < n / 2 ? r.world_rank() + n / 2
                                            : r.world_rank() - n / 2;
    if (r.world_rank() < n / 2) {
      co_await r.send(wc, peer, 7, big);  // RTS leaves immediately
    } else {
      // Post the receive long after the RTS has been parked cross-shard.
      co_await r.compute(50 * sim::kMillisecond);
      mpi::RecvInfo info = co_await r.recv(wc, peer, 7);
      EXPECT_EQ(info.bytes, big);
      EXPECT_EQ(info.source, peer);
    }
  };
  std::vector<sim::Time> serial = run_program(8, 1, 1, program);
  std::vector<sim::Time> sharded = run_program(8, 4, 4, program);
  EXPECT_EQ(serial, sharded);

  // Non-divisible split of the same exchange: 6 ranks over 4 shards.
  std::vector<sim::Time> serial6 = run_program(6, 1, 1, program);
  std::vector<sim::Time> sharded6 = run_program(6, 4, 2, program);
  EXPECT_EQ(serial6, sharded6);
}

TEST(ShardFullStack, PooledFlightPathRecyclesUnderSharding) {
  // The sharded wire path must stay zero-allocation in steady state:
  // in-flight packets ride pooled FlightRecs, and records freed on the
  // destination's shard return home via the per-shard return stacks. With
  // the pools live (not in ASan passthrough) a traffic-heavy sharded run
  // must serve the bulk of its flights from recycled storage.
  ClusterPreset p = sharded_cluster(8, 4, 2);
  SimCluster cluster(p);
  std::unique_ptr<workloads::Workload> wl =
      microbench_factory(4, 120)(p.nranks);
  wl->setup(cluster.mpi());
  cluster.spawn_ranks([&](mpi::RankCtx& rank) {
    return wl->run_rank(rank, {});
  });
  cluster.run();

  const std::int64_t packets = cluster.fabric().packets_sent();
  EXPECT_GT(packets, 1000);
#if !GBC_POOLS_PASSTHROUGH
  // Far more packets than pool capacity flowed: recycling must dominate.
  EXPECT_GT(cluster.fabric().flight_recs_reused(),
            static_cast<std::uint64_t>(packets) / 2);
#endif
  // ~SimCluster/~Fabric sweep the return stacks; the pool destructors
  // assert no record leaked.
}

TEST(ShardFullStack, ShardCountOutsideRankRangeIsRejected) {
  auto factory = microbench_factory(2, 10);
  ckpt::CkptConfig cc;
  EXPECT_THROW(run_experiment(sharded_cluster(4, 5, 1), factory, cc),
               std::invalid_argument);
  EXPECT_THROW(run_experiment(sharded_cluster(4, 0, 1), factory, cc),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbc::harness
