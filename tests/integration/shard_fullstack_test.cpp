// Full-stack runs under DES sharding: the MiniMPI / Fabric / checkpoint
// stack executes on shard 0 while wire flights detour through per-rank-block
// relay shards (net::ShardRouter). Every observable — completion time,
// per-rank state hashes, checkpoint history — must match the serial run
// exactly, including when checkpoint groups span relay-shard boundaries,
// when rank counts don't divide evenly, and when FaultPlan replays several
// failures mid-run.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/recovery.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

ClusterPreset sharded_cluster(int n, int shards, int threads) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  p.shards = shards;
  p.threads = threads;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 64.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.final_hashes, b.final_hashes);
  EXPECT_EQ(a.final_iterations, b.final_iterations);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i].requested_at, b.checkpoints[i].requested_at);
    EXPECT_EQ(a.checkpoints[i].completed_at, b.checkpoints[i].completed_at);
  }
}

TEST(ShardFullStack, GroupsSpanningShardBoundariesMatchSerial) {
  // 16 ranks over 4 shards = blocks of 4; comm groups of 8 and one global
  // checkpoint group both straddle every block boundary.
  auto factory = microbench_factory(8, 80);
  ckpt::CkptConfig cc;
  cc.group_size = 0;  // all ranks in one group
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(3), ckpt::Protocol::kGroupBased});

  RunResult serial =
      run_experiment(sharded_cluster(16, 1, 1), factory, cc, reqs);
  RunResult sharded =
      run_experiment(sharded_cluster(16, 4, 2), factory, cc, reqs);
  expect_identical(serial, sharded);
  ASSERT_EQ(sharded.checkpoints.size(), 1u);
  EXPECT_GE(sharded.checkpoints[0].completed_at, 0);
}

TEST(ShardFullStack, NonPowerOfTwoRanksAndShardsMatchSerial) {
  // 13 ranks over 3 shards: uneven relay blocks (5/4/4 by the block map),
  // a comm group that wraps the remainder ranks, grouped checkpoints.
  auto factory = microbench_factory(5, 60);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(2), ckpt::Protocol::kGroupBased});

  RunResult serial =
      run_experiment(sharded_cluster(13, 1, 1), factory, cc, reqs);
  RunResult sharded =
      run_experiment(sharded_cluster(13, 3, 3), factory, cc, reqs);
  expect_identical(serial, sharded);
}

TEST(ShardFullStack, AllProtocolsMatchSerialUnderSharding) {
  auto factory = microbench_factory(4, 50);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  for (auto proto :
       {ckpt::Protocol::kGroupBased, ckpt::Protocol::kBlockingCoordinated,
        ckpt::Protocol::kChandyLamport}) {
    std::vector<CkptRequest> reqs;
    reqs.push_back(CkptRequest{sim::from_seconds(2), proto});
    RunResult serial =
        run_experiment(sharded_cluster(8, 1, 1), factory, cc, reqs);
    RunResult sharded =
        run_experiment(sharded_cluster(8, 8, 2), factory, cc, reqs);
    expect_identical(serial, sharded);
  }
}

TEST(ShardFullStack, FaultPlanMultiFailureReplayMatchesSerial) {
  // Two failures, recovery re-executions and all, under shards=4: the
  // replayed attempts run through the relay router too, so the recovered
  // run must land on the same final state as both the serial fault run and
  // the clean run.
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});

  FaultPlan plan;
  plan.faults.push_back(FaultEvent{sim::from_seconds(12), 1});
  plan.faults.push_back(FaultEvent{sim::from_seconds(4), 5});

  auto serial = run_with_faults(sharded_cluster(8, 1, 1), factory, cc, reqs,
                                plan);
  auto sharded = run_with_faults(sharded_cluster(8, 4, 2), factory, cc, reqs,
                                 plan);
  EXPECT_EQ(sharded.failures, 2);
  EXPECT_EQ(sharded.failures, serial.failures);
  EXPECT_EQ(sharded.used_checkpoint, serial.used_checkpoint);
  EXPECT_EQ(sharded.rollback_iteration, serial.rollback_iteration);
  EXPECT_DOUBLE_EQ(sharded.total_seconds, serial.total_seconds);
  EXPECT_EQ(sharded.final_hashes, serial.final_hashes);

  RunResult clean = run_experiment(sharded_cluster(8, 1, 1), factory, cc);
  EXPECT_EQ(sharded.final_hashes, clean.final_hashes);
}

TEST(ShardFullStack, ShardCountOutsideRankRangeIsRejected) {
  auto factory = microbench_factory(2, 10);
  ckpt::CkptConfig cc;
  EXPECT_THROW(run_experiment(sharded_cluster(4, 5, 1), factory, cc),
               std::invalid_argument);
  EXPECT_THROW(run_experiment(sharded_cluster(4, 0, 1), factory, cc),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbc::harness
