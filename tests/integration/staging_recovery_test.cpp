// Tier-aware failure recovery: a node crash destroys the failed node's
// local staging tier, so where each checkpoint image can still be read
// from — partner replica, drained PFS copy, or nowhere — decides which
// checkpoint the job rolls back to.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/recovery.hpp"
#include "workloads/microbench.hpp"

namespace gbc::harness {
namespace {

ClusterPreset tier_cluster(int n, double drain_mbps, bool replicate) {
  ClusterPreset p = icpp07_cluster();
  p.nranks = n;
  p.tier.enabled = true;
  p.tier.local_write_mbps = 400.0;
  p.tier.local_read_mbps = 600.0;
  p.tier.drain_mbps = drain_mbps;
  p.tier.replicate = replicate;
  return p;
}

WorkloadFactory microbench_factory(int comm_group, std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iters;
  cfg.footprint_mib = 64.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

TEST(StagingRecovery, FailedRankRestoresFromPartnerReplica) {
  // Draining disabled: the only surviving copy of the failed node's image
  // is the partner replica.
  auto preset = tier_cluster(8, /*drain_mbps=*/0, /*replicate=*/true);
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_failure(preset, factory, cc, reqs,
                              sim::from_seconds(12), /*failed_rank=*/0);
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.checkpoints_skipped, 0);
  EXPECT_EQ(rec.ranks_restored_replica, 1);  // the failed rank
  EXPECT_EQ(rec.ranks_restored_local, 7);    // everyone else, in place
  EXPECT_EQ(rec.ranks_restored_pfs, 0);
  EXPECT_GT(rec.rollback_iteration, 0u);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);
}

TEST(StagingRecovery, FailedRankRestoresFromDrainedPfsCopy) {
  // No replication, fast drain: by the failure every image reached the
  // PFS, so the failed rank reads the drained copy while healthy ranks
  // use their surviving local images.
  auto preset = tier_cluster(8, /*drain_mbps=*/100, /*replicate=*/false);
  auto factory = microbench_factory(4, 220);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_failure(preset, factory, cc, reqs,
                              sim::from_seconds(20), /*failed_rank=*/3);
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.checkpoints_skipped, 0);
  EXPECT_EQ(rec.ranks_restored_pfs, 1);  // the failed rank
  EXPECT_EQ(rec.ranks_restored_local, 7);
  EXPECT_EQ(rec.ranks_restored_replica, 0);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
}

TEST(StagingRecovery, UndrainedNewestCheckpointForcesOlderRollback) {
  // Slow drain (64 MiB at 10 MB/s = ~6.4 s/image) and no replica. The
  // first checkpoint (t=2) is fully drained long before the failure; the
  // second (t=12) is still local-only on the dead node at t=14 — so
  // recovery must skip it and roll back to the older checkpoint.
  auto preset = tier_cluster(8, /*drain_mbps=*/10, /*replicate=*/false);
  auto factory = microbench_factory(4, 220);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(2), ckpt::Protocol::kGroupBased});
  reqs.push_back(
      CkptRequest{sim::from_seconds(12), ckpt::Protocol::kGroupBased});

  auto rec = run_with_failure(preset, factory, cc, reqs,
                              sim::from_seconds(14), /*failed_rank=*/0);
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.checkpoints_skipped, 1);
  // The rollback point is the t=2 checkpoint (~iteration 15), not the
  // t=12 one (~iteration 100).
  EXPECT_GT(rec.rollback_iteration, 0u);
  EXPECT_LT(rec.rollback_iteration, 60u);
  EXPECT_EQ(rec.final_hashes, clean.final_hashes);
  EXPECT_EQ(rec.final_iterations, clean.final_iterations);

  // Control: fail after the second checkpoint finished draining and the
  // newest checkpoint is recoverable again.
  auto late = run_with_failure(preset, factory, cc, reqs,
                               sim::from_seconds(20), /*failed_rank=*/0);
  EXPECT_EQ(late.checkpoints_skipped, 0);
  EXPECT_GT(late.rollback_iteration, 80u);
  EXPECT_GT(late.rollback_iteration, rec.rollback_iteration);
  EXPECT_EQ(late.final_hashes, clean.final_hashes);
}

TEST(StagingRecovery, JobPauseReloadsOnlyFailedRankFromReplica) {
  auto preset = tier_cluster(8, /*drain_mbps=*/0, /*replicate=*/true);
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  RunResult clean = run_experiment(preset, factory, cc);
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto pause = run_with_single_failure(preset, factory, cc, reqs,
                                       sim::from_seconds(12),
                                       /*failed_rank=*/2, /*job_pause=*/true);
  EXPECT_TRUE(pause.used_checkpoint);
  EXPECT_EQ(pause.checkpoints_skipped, 0);
  EXPECT_EQ(pause.ranks_restored_replica, 1);
  EXPECT_EQ(pause.ranks_restored_local, 0);  // healthy ranks stay in memory
  EXPECT_EQ(pause.ranks_restored_pfs, 0);
  EXPECT_EQ(pause.final_hashes, clean.final_hashes);
}

TEST(StagingRecovery, TierDisabledMatchesLegacyRecoveryExactly) {
  // With the tier off, the tier-aware path must be byte-for-byte the old
  // single-tier recovery (same sources, same timings).
  auto preset = icpp07_cluster();
  preset.nranks = 8;
  ASSERT_FALSE(preset.tier.enabled);
  auto factory = microbench_factory(4, 150);
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<CkptRequest> reqs;
  reqs.push_back(
      CkptRequest{sim::from_seconds(5), ckpt::Protocol::kGroupBased});
  auto rec = run_with_failure(preset, factory, cc, reqs,
                              sim::from_seconds(12));
  EXPECT_TRUE(rec.used_checkpoint);
  EXPECT_EQ(rec.checkpoints_skipped, 0);
  EXPECT_EQ(rec.ranks_restored_pfs, 8);
  EXPECT_EQ(rec.ranks_restored_local, 0);
  EXPECT_EQ(rec.ranks_restored_replica, 0);
}

}  // namespace
}  // namespace gbc::harness
