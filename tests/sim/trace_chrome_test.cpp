#include "sim/trace_chrome.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace gbc::sim {
namespace {

TEST(TraceChrome, EmptyTraceIsValidDocument) {
  Trace t;
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.find("\"ph\""), std::string::npos);  // no events
}

TEST(TraceChrome, FreezeResumePairsToBeginEndSpan) {
  Trace t;
  t.enable(true);
  t.add(2 * kSecond, 3, "freeze", "");
  t.add(3 * kSecond, 3, "resume", "");
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"name\":\"frozen\",\"cat\":\"freeze\",\"ph\":\"B\","
                      "\"ts\":2000000.000,\"pid\":0,\"tid\":4"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"frozen\",\"cat\":\"resume\",\"ph\":\"E\","
                      "\"ts\":3000000.000,\"pid\":0,\"tid\":4"),
            std::string::npos);
}

TEST(TraceChrome, BeginEndDetailsPairAndGlobalActorMapsToTidZero) {
  Trace t;
  t.enable(true);
  t.add(0, -1, "cycle", "begin group-based");
  t.add(kSecond, 0, "drain", "begin img=1");
  t.add(2 * kSecond, 0, "drain", "end img=1");
  t.add(5 * kSecond, -1, "cycle", "complete");
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"name\":\"cycle\",\"cat\":\"cycle\",\"ph\":\"B\","
                      "\"ts\":0.000,\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"drain\",\"cat\":\"drain\",\"ph\":\"B\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"drain\",\"cat\":\"drain\",\"ph\":\"E\""),
            std::string::npos);
  // "complete" closes the cycle span.
  EXPECT_NE(json.find("\"name\":\"cycle\",\"cat\":\"cycle\",\"ph\":\"E\""),
            std::string::npos);
  // Thread-name metadata rows for both actors.
  EXPECT_NE(json.find("\"name\":\"global\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
}

TEST(TraceChrome, OtherEventsBecomeInstants) {
  Trace t;
  t.enable(true);
  t.add(100, 1, "snapshot", "recovery line");
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"recovery line\""), std::string::npos);
}

TEST(TraceChrome, EscapesQuotesAndControlCharacters) {
  Trace t;
  t.enable(true);
  t.add(0, 0, "cat", "say \"hi\"\nnew\tline");
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("say \\\"hi\\\"\\nnew\\tline"), std::string::npos);
}

TEST(TraceChrome, SubMicrosecondTimestampsKeepPrecision) {
  Trace t;
  t.enable(true);
  t.add(1234, 0, "cat", "");  // 1234 ns = 1.234 us
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"ts\":1.234"), std::string::npos);
}

}  // namespace
}  // namespace gbc::sim
