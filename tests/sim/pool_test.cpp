#include "sim/pool.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gbc::sim {
namespace {

struct Tracked {
  explicit Tracked(int* counter, int value = 0)
      : counter(counter), value(value) {
    ++*counter;
  }
  ~Tracked() { --*counter; }
  int* counter;
  int value;
};

#if !GBC_POOLS_PASSTHROUGH
TEST(Pool, RecyclesFreedStorage) {
  Pool<Tracked> pool;
  int live = 0;
  Tracked* a = pool.acquire(&live, 1);
  void* addr = a;
  EXPECT_EQ(live, 1);
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.release(a);
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.outstanding(), 0u);
  // The very next acquire must come off the free list, reusing the node.
  Tracked* b = pool.acquire(&live, 2);
  EXPECT_EQ(static_cast<void*>(b), addr);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(b->value, 2);
  pool.release(b);
}
#endif

TEST(Pool, GrowsAcrossSlabs) {
  Pool<Tracked> pool(8);  // small slabs so growth happens quickly
  int live = 0;
  std::vector<Tracked*> objs;
  std::set<void*> addrs;
  for (int i = 0; i < 100; ++i) {
    objs.push_back(pool.acquire(&live, i));
    addrs.insert(objs.back());
  }
  EXPECT_EQ(live, 100);
  EXPECT_EQ(addrs.size(), 100u);  // all distinct while live
  EXPECT_EQ(pool.outstanding(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(objs[i]->value, i);
  for (Tracked* p : objs) pool.release(p);
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(Arena, SharedPtrKeepsCoreAliveAfterOwnerDrops) {
  auto core = std::make_shared<ArenaCore>();
  std::weak_ptr<ArenaCore> watch = core;
  auto obj =
      std::allocate_shared<std::string>(ArenaAlloc<std::string>(core), "hi");
  // The control block copied the allocator, so dropping our handle must not
  // destroy the arena while the object (and its storage) are alive.
  core.reset();
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(*obj, "hi");
  {
    std::weak_ptr<std::string> weak_obj = obj;
    obj.reset();
    EXPECT_TRUE(weak_obj.expired());
    // weak_obj still pins the control block, and with it the arena.
    EXPECT_FALSE(watch.expired());
  }
  // Last weak reference gone -> control block freed -> arena torn down.
  EXPECT_TRUE(watch.expired());
}

#if !GBC_POOLS_PASSTHROUGH
TEST(Arena, RecyclesSameSizeClass) {
  auto core = std::make_shared<ArenaCore>();
  auto a = std::allocate_shared<std::uint64_t>(
      ArenaAlloc<std::uint64_t>(core), 7);
  a.reset();
  auto b = std::allocate_shared<std::uint64_t>(
      ArenaAlloc<std::uint64_t>(core), 9);
  EXPECT_EQ(core->reused(), 1u);
  EXPECT_EQ(*b, 9u);
}
#endif

TEST(MsgBufTest, CopyAndMoveTrackReferences) {
  MsgPool<Tracked> pool;
  int live = 0;
  MsgBuf a = pool.make(&live, 5);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(a.use_count(), 1u);
  MsgBuf b = a;  // copy bumps the refcount
  EXPECT_EQ(a.use_count(), 2u);
  MsgBuf c = std::move(a);  // move transfers it
  EXPECT_EQ(c.use_count(), 2u);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting moved-from
  b.reset();
  EXPECT_EQ(c.use_count(), 1u);
  EXPECT_EQ(c.get<Tracked>()->value, 5);
  c.reset();
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.outstanding(), 0u);
}

#if !GBC_POOLS_PASSTHROUGH
TEST(MsgPoolTest, RecyclesReleasedNodes) {
  MsgPool<Tracked> pool;
  int live = 0;
  MsgBuf a = pool.make(&live, 1);
  const Tracked* addr = a.get<Tracked>();
  a.reset();
  EXPECT_EQ(live, 0);
  MsgBuf b = pool.make(&live, 2);
  EXPECT_EQ(b.get<Tracked>(), addr);  // same node came back
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(b.get<Tracked>()->value, 2);
}
#endif

TEST(MsgPoolTest, BuffersSurviveThePool) {
  int live = 0;
  MsgBuf survivor;
  {
    MsgPool<Tracked> pool;
    survivor = pool.make(&live, 42);
    // Pool dies here with one buffer still in flight — the packet-queued-in-
    // engine-events scenario when MiniMPI is destroyed before its Engine.
  }
  EXPECT_EQ(live, 1);
  ASSERT_NE(survivor.get<Tracked>(), nullptr);
  EXPECT_EQ(survivor.get<Tracked>()->value, 42);
  survivor.reset();  // last release tears down the orphaned backing storage
  EXPECT_EQ(live, 0);
}

#if !GBC_POOLS_PASSTHROUGH
TEST(FramePoolTest, RecyclesSameSizeClass) {
  void* a = FramePool::allocate(200);
  FramePool::deallocate(a, 200);
  // Same size class (200 and 250 both round up to 256 bytes): the freed
  // block must come straight back off this thread's free list.
  void* b = FramePool::allocate(250);
  EXPECT_EQ(b, a);
  FramePool::deallocate(b, 250);
}
#endif

}  // namespace
}  // namespace gbc::sim
