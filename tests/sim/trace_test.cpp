#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace gbc::sim {
namespace {

TEST(Trace, DisabledByDefaultAndCheap) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.add(10, 0, "cat", "detail");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t;
  t.enable(true);
  t.add(10, 3, "freeze", "");
  t.add(20, -1, "cycle", "complete");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].t, 10);
  EXPECT_EQ(t.events()[0].actor, 3);
  EXPECT_EQ(t.events()[0].category, "freeze");
  EXPECT_EQ(t.events()[1].detail, "complete");
}

TEST(Trace, ClearEmptiesTheLog) {
  Trace t;
  t.enable(true);
  t.add(1, 0, "x", "");
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, ReenableAfterDisableKeepsOldEvents) {
  Trace t;
  t.enable(true);
  t.add(1, 0, "a", "");
  t.enable(false);
  t.add(2, 0, "b", "");  // dropped
  t.enable(true);
  t.add(3, 0, "c", "");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[1].category, "c");
}

}  // namespace
}  // namespace gbc::sim
