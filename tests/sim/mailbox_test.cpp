#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace gbc::sim {
namespace {

TEST(SpscQueue, PopOnEmptyReturnsFalse) {
  SpscQueue<int> q;
  int v = 0;
  EXPECT_FALSE(q.pop(v));
}

TEST(SpscQueue, FifoAcrossSegmentBoundaries) {
  // A 4-entry segment forces several segment allocations and retirements.
  SpscQueue<int, 4> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  int v = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
}

TEST(SpscQueue, InterleavedPushPop) {
  SpscQueue<int, 8> q;
  int next_out = 0;
  for (int i = 0; i < 200; ++i) {
    q.push(i);
    if (i % 3 == 0) {
      int v = 0;
      ASSERT_TRUE(q.pop(v));
      EXPECT_EQ(v, next_out++);
    }
  }
  int v = 0;
  while (q.pop(v)) EXPECT_EQ(v, next_out++);
  EXPECT_EQ(next_out, 200);
}

TEST(SpscQueue, CarriesCrossEventsWithCallables) {
  SpscQueue<CrossEvent, 4> q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    CrossEvent ev;
    ev.t = 100 + i;
    ev.seq = static_cast<std::uint64_t>(i);
    ev.fn = [&fired] { ++fired; };
    q.push(std::move(ev));
  }
  CrossEvent out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.t, 100 + i);
    EXPECT_EQ(out.seq, static_cast<std::uint64_t>(i));
    out.fn();
  }
  EXPECT_EQ(fired, 10);
}

// Concurrent producer/consumer stress. In the sharded engine the consumer
// only runs at window barriers (producer parked), but the queue claims full
// SPSC correctness; this is the test TSan validates that claim under
// (`ctest -L shard` in a -DGBC_SANITIZE=thread build).
TEST(SpscQueue, ConcurrentProducerConsumerPreservesOrder) {
  constexpr int kItems = 200000;
  SpscQueue<int, 64> q;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.push(i);
  });
  int expected = 0;
  while (expected < kItems) {
    int v = 0;
    if (q.pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  int v = 0;
  EXPECT_FALSE(q.pop(v));
}

}  // namespace
}  // namespace gbc::sim
