#include "sim/shard_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace gbc::sim {
namespace {

// A single-shard ShardedEngine is exactly the serial engine: same events,
// same order.
TEST(ShardedEngine, SingleShardMatchesSerialEngine) {
  auto script = [](Engine& eng, std::vector<int>& log) {
    eng.schedule_at(5, [&] { log.push_back(1); });
    eng.schedule_at(5, [&] { log.push_back(2); });  // FIFO at equal t
    eng.schedule_at(2, [&eng, &log] {
      log.push_back(0);
      eng.schedule_at(7, [&log] { log.push_back(3); });
    });
  };

  Engine serial;
  std::vector<int> serial_log;
  script(serial, serial_log);
  serial.run();

  ShardedEngine::Options opts;
  opts.shards = 1;
  ShardedEngine se(opts);
  std::vector<int> sharded_log;
  script(se.shard(0), sharded_log);
  se.run();

  EXPECT_EQ(serial_log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sharded_log, serial_log);
}

// Messages from one source shard must arrive at the destination in send
// (sequence) order even when they carry the same timestamp, and same-time
// messages from different sources must merge in src-shard order — the
// (t, src, seq) contract.
TEST(ShardedEngine, SameTimeCrossPostsMergeBySrcThenSeq) {
  ShardedEngine::Options opts;
  opts.shards = 3;
  opts.lookahead = 10;
  opts.threads = 1;
  ShardedEngine se(opts);
  std::vector<std::string> dst_log;  // only shard 2 appends

  // Both posts from shard 1 are issued before shard 0's (shard 1's seed
  // event fires first), yet shard 0's message must still deliver first.
  se.shard(1).schedule_at(0, [&] {
    se.post(1, 2, 10, [&dst_log] { dst_log.push_back("s1:a"); });
    se.post(1, 2, 10, [&dst_log] { dst_log.push_back("s1:b"); });
  });
  se.shard(0).schedule_at(1, [&] {
    se.post(0, 2, 10, [&dst_log] { dst_log.push_back("s0:a"); });
  });
  se.run();

  EXPECT_EQ(dst_log, (std::vector<std::string>{"s0:a", "s1:a", "s1:b"}));
}

// post() with src == dst degrades to a plain schedule_at, so model code can
// route every send through post() without special-casing locality (and
// without the lookahead restriction for same-shard traffic).
TEST(ShardedEngine, SameShardPostIgnoresLookahead) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 100;
  ShardedEngine se(opts);
  std::vector<Time> fired;
  se.shard(0).schedule_at(0, [&] {
    se.post(0, 0, 3, [&] { fired.push_back(se.shard(0).now()); });
  });
  se.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3);
}

// Ring of cross-shard hops. The per-shard delivery logs — and the window
// count — must be identical whether the shards run inline on one thread or
// on one thread each. (Each log is appended only by its own shard, so the
// logs are race-free even in the threaded run.)
struct ChainCtx {
  ShardedEngine* se = nullptr;
  std::vector<std::vector<int>> logs;
  Time lookahead = 0;
};

void hop(ChainCtx* c, int s, int n) {
  c->logs[static_cast<std::size_t>(s)].push_back(n);
  if (n == 0) return;
  const int dst = (s + 1) % c->se->shards();
  const Time t = c->se->shard(s).now() + c->lookahead;
  c->se->post(s, dst, t, [c, dst, n] { hop(c, dst, n - 1); });
}

ChainCtx run_ring(int threads) {
  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.lookahead = 7;
  opts.threads = threads;
  ShardedEngine se(opts);
  ChainCtx ctx;
  ctx.se = &se;
  ctx.logs.resize(4);
  ctx.lookahead = opts.lookahead;
  for (int s = 0; s < 4; ++s) {
    se.shard(s).schedule_at(s, [&ctx, s] { hop(&ctx, s, 40); });
  }
  se.run();
  ctx.se = nullptr;
  return ctx;
}

TEST(ShardedEngine, RingDeliveryIndependentOfThreadCount) {
  const ChainCtx serial = run_ring(1);
  const ChainCtx threaded = run_ring(4);
  EXPECT_EQ(serial.logs, threaded.logs);
  // 4 chains x 41 hops, distributed round-robin over the ring.
  std::size_t total = 0;
  for (const auto& l : serial.logs) total += l.size();
  EXPECT_EQ(total, 4u * 41u);
}

TEST(ShardedEngine, WindowsAdvanceAndStatsAccount) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 5;
  ShardedEngine se(opts);
  int delivered = 0;
  se.shard(0).schedule_at(0, [&] {
    se.post(0, 1, 5, [&] {
      ++delivered;
      se.post(1, 0, 10, [&] { ++delivered; });
    });
  });
  se.run();
  EXPECT_EQ(delivered, 2);
  // Three events at t = 0, 5, 10 with a lookahead of 5: at least 3 windows.
  EXPECT_GE(se.windows(), 3u);
  EXPECT_EQ(se.total_events(),
            se.stats(0).events + se.stats(1).events);
  EXPECT_EQ(se.stats(0).cross_sent, 1u);
  EXPECT_EQ(se.stats(1).cross_sent, 1u);
  EXPECT_GE(se.window_balance(), 1.0);
}

}  // namespace
}  // namespace gbc::sim
