#include "sim/shard_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace gbc::sim {
namespace {

// A single-shard ShardedEngine is exactly the serial engine: same events,
// same order.
TEST(ShardedEngine, SingleShardMatchesSerialEngine) {
  auto script = [](Engine& eng, std::vector<int>& log) {
    eng.schedule_at(5, [&] { log.push_back(1); });
    eng.schedule_at(5, [&] { log.push_back(2); });  // FIFO at equal t
    eng.schedule_at(2, [&eng, &log] {
      log.push_back(0);
      eng.schedule_at(7, [&log] { log.push_back(3); });
    });
  };

  Engine serial;
  std::vector<int> serial_log;
  script(serial, serial_log);
  serial.run();

  ShardedEngine::Options opts;
  opts.shards = 1;
  ShardedEngine se(opts);
  std::vector<int> sharded_log;
  script(se.shard(0), sharded_log);
  se.run();

  EXPECT_EQ(serial_log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sharded_log, serial_log);
}

// Messages from one source shard must arrive at the destination in send
// (sequence) order even when they carry the same timestamp, and same-time
// messages from different sources must merge in src-shard order — the
// (t, src, seq) contract.
TEST(ShardedEngine, SameTimeCrossPostsMergeBySrcThenSeq) {
  ShardedEngine::Options opts;
  opts.shards = 3;
  opts.lookahead = 10;
  opts.threads = 1;
  ShardedEngine se(opts);
  std::vector<std::string> dst_log;  // only shard 2 appends

  // Both posts from shard 1 are issued before shard 0's (shard 1's seed
  // event fires first), yet shard 0's message must still deliver first.
  se.shard(1).schedule_at(0, [&] {
    se.post(1, 2, 10, [&dst_log] { dst_log.push_back("s1:a"); });
    se.post(1, 2, 10, [&dst_log] { dst_log.push_back("s1:b"); });
  });
  se.shard(0).schedule_at(1, [&] {
    se.post(0, 2, 10, [&dst_log] { dst_log.push_back("s0:a"); });
  });
  se.run();

  EXPECT_EQ(dst_log, (std::vector<std::string>{"s0:a", "s1:a", "s1:b"}));
}

// post() with src == dst degrades to a plain schedule_at, so model code can
// route every send through post() without special-casing locality (and
// without the lookahead restriction for same-shard traffic).
TEST(ShardedEngine, SameShardPostIgnoresLookahead) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 100;
  ShardedEngine se(opts);
  std::vector<Time> fired;
  se.shard(0).schedule_at(0, [&] {
    se.post(0, 0, 3, [&] { fired.push_back(se.shard(0).now()); });
  });
  se.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3);
}

// Ring of cross-shard hops. The per-shard delivery logs — and the window
// count — must be identical whether the shards run inline on one thread or
// on one thread each. (Each log is appended only by its own shard, so the
// logs are race-free even in the threaded run.)
struct ChainCtx {
  ShardedEngine* se = nullptr;
  std::vector<std::vector<int>> logs;
  Time lookahead = 0;
};

void hop(ChainCtx* c, int s, int n) {
  c->logs[static_cast<std::size_t>(s)].push_back(n);
  if (n == 0) return;
  const int dst = (s + 1) % c->se->shards();
  const Time t = c->se->shard(s).now() + c->lookahead;
  c->se->post(s, dst, t, [c, dst, n] { hop(c, dst, n - 1); });
}

ChainCtx run_ring(int threads) {
  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.lookahead = 7;
  opts.threads = threads;
  ShardedEngine se(opts);
  ChainCtx ctx;
  ctx.se = &se;
  ctx.logs.resize(4);
  ctx.lookahead = opts.lookahead;
  for (int s = 0; s < 4; ++s) {
    se.shard(s).schedule_at(s, [&ctx, s] { hop(&ctx, s, 40); });
  }
  se.run();
  ctx.se = nullptr;
  return ctx;
}

TEST(ShardedEngine, RingDeliveryIndependentOfThreadCount) {
  const ChainCtx serial = run_ring(1);
  const ChainCtx threaded = run_ring(4);
  EXPECT_EQ(serial.logs, threaded.logs);
  // 4 chains x 41 hops, distributed round-robin over the ring.
  std::size_t total = 0;
  for (const auto& l : serial.logs) total += l.size();
  EXPECT_EQ(total, 4u * 41u);
}

TEST(ShardedEngine, WindowsCountMergesOnlyAndStatsAccount) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 5;
  ShardedEngine se(opts);
  int delivered = 0;
  se.shard(0).schedule_at(0, [&] {
    se.post(0, 1, 5, [&] {
      ++delivered;
      se.post(1, 0, 10, [&] { ++delivered; });
    });
  });
  se.run();
  EXPECT_EQ(delivered, 2);
  // Exactly two cross-shard messages were merged, so exactly two windows —
  // rounds without traffic fuse and are never counted as windows.
  EXPECT_EQ(se.windows(), 2u);
  EXPECT_GE(se.rounds(), se.windows());
  EXPECT_EQ(se.cross_events(), 2u);
  EXPECT_EQ(se.total_events(),
            se.stats(0).events + se.stats(1).events);
  EXPECT_EQ(se.stats(0).cross_sent, 1u);
  EXPECT_EQ(se.stats(1).cross_sent, 1u);
  EXPECT_GE(se.window_balance(), 1.0);
}

// Shard-local workloads never merge: a run with zero cross-shard posts is
// zero windows no matter how many events or how far apart they sit.
TEST(ShardedEngine, LocalOnlyWorkloadFusesToZeroWindows) {
  ShardedEngine::Options opts;
  opts.shards = 3;
  opts.lookahead = 2;
  ShardedEngine se(opts);
  int fired = 0;
  for (int s = 0; s < 3; ++s) {
    for (Time t : {Time{0}, Time{1000}, Time{50000}}) {
      se.shard(s).schedule_at(t, [&] { ++fired; });
    }
  }
  se.run();
  EXPECT_EQ(fired, 9);
  EXPECT_EQ(se.windows(), 0u);
  EXPECT_EQ(se.cross_events(), 0u);
  EXPECT_GE(se.rounds(), 1u);
}

// The per-pair matrix widens horizons beyond the uniform minimum: a pair
// declared kNoLink never constrains, and an asymmetric pair constrains only
// in its stated direction. Deliveries still land exactly where posted.
TEST(ShardedEngine, LookaheadMatrixRoutesAsymmetricPairs) {
  ShardedEngine::Options opts;
  opts.shards = 3;
  // 0 -> 1 tight (3), 1 -> 0 loose (50), 2 exchanges with nobody.
  opts.lookahead_matrix = {
      ShardedEngine::kNoLink, 3,  ShardedEngine::kNoLink,
      50, ShardedEngine::kNoLink, ShardedEngine::kNoLink,
      ShardedEngine::kNoLink, ShardedEngine::kNoLink, ShardedEngine::kNoLink,
  };
  ShardedEngine se(opts);
  std::vector<std::pair<int, Time>> log;
  int local2 = 0;
  se.shard(2).schedule_at(1, [&] { ++local2; });  // isolated shard just runs
  se.shard(0).schedule_at(0, [&] {
    se.post(0, 1, 3, [&] {
      log.emplace_back(1, se.shard(1).now());
      se.post(1, 0, 53, [&] { log.emplace_back(0, se.shard(0).now()); });
    });
  });
  se.run();
  EXPECT_EQ(local2, 1);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, Time>{1, 3}));
  EXPECT_EQ(log[1], (std::pair<int, Time>{0, 53}));
  EXPECT_EQ(se.lookahead(), 3);
}

// Reserved sequence numbers replay the destination's serial FIFO order: the
// relay reserves its slot on shard 0 *before* shard 0 issues later local
// events, so the delivery fires ahead of a same-time local event that was
// scheduled after the reservation — exactly as a serial run would order them.
TEST(ShardedEngine, ReservedSeqReplaysSerialOrderAtEqualTime) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 5;
  ShardedEngine se(opts);
  std::vector<std::string> log;  // appended only by shard 0
  se.shard(0).schedule_at(0, [&] {
    // Serial intent: "delivery" was scheduled first, "local-later" second.
    const std::uint64_t seq = se.shard(0).reserve_seq();
    se.post_reserved(1, 0, 10, seq, [&] { log.push_back("delivery"); });
    se.shard(0).schedule_at(10, [&] { log.push_back("local-later"); });
  });
  se.run();
  EXPECT_EQ(log,
            (std::vector<std::string>{"delivery", "local-later"}));
}

// run_until stops at the cap, leaves later work pending, advances every
// shard clock to the cap, and a follow-up run() finishes the job. abort_all
// after run_until discards in-flight cross traffic without delivering it.
TEST(ShardedEngine, RunUntilCapsAndResumesAcrossShards) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 4;
  ShardedEngine se(opts);
  std::vector<Time> fired;
  se.shard(0).schedule_at(2, [&] {
    fired.push_back(se.shard(0).now());
    se.post(0, 1, 100, [&] { fired.push_back(se.shard(1).now()); });
  });
  se.run_until(50);
  EXPECT_EQ(fired, (std::vector<Time>{2}));
  EXPECT_EQ(se.shard(0).now(), 50);
  EXPECT_EQ(se.shard(1).now(), 50);
  se.run();
  EXPECT_EQ(fired, (std::vector<Time>{2, 100}));
}

TEST(ShardedEngine, AbortAllDiscardsInFlightCrossTraffic) {
  ShardedEngine::Options opts;
  opts.shards = 2;
  opts.lookahead = 4;
  ShardedEngine se(opts);
  int delivered = 0;
  se.shard(0).schedule_at(0, [&] {
    se.post(0, 1, 500, [&] { ++delivered; });
  });
  se.run_until(10);
  se.abort_all();
  se.run();  // nothing left anywhere
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(se.shard(1).queue_empty());
}

// Non-power-of-two shard and thread counts partition and merge correctly,
// and results are independent of the thread count.
TEST(ShardedEngine, NonPowerOfTwoShardAndThreadCounts) {
  auto run_all_pairs = [](int shards, int threads) {
    ShardedEngine::Options opts;
    opts.shards = shards;
    opts.lookahead = 3;
    opts.threads = threads;
    ShardedEngine se(opts);
    std::vector<std::vector<int>> logs(
        static_cast<std::size_t>(shards));  // each shard appends only its own
    for (int s = 0; s < shards; ++s) {
      se.shard(s).schedule_at(s, [&se, &logs, s, shards] {
        for (int d = 0; d < shards; ++d) {
          if (d == s) continue;
          se.post(s, d, se.shard(s).now() + 3,
                  [&logs, d, s] { logs[static_cast<std::size_t>(d)]
                                      .push_back(s); });
        }
      });
    }
    se.run();
    return logs;
  };
  const auto serial = run_all_pairs(5, 1);
  const auto threaded = run_all_pairs(5, 3);
  EXPECT_EQ(serial, threaded);
  for (const auto& l : serial) {
    EXPECT_EQ(l.size(), 4u);
  }
}

}  // namespace
}  // namespace gbc::sim
