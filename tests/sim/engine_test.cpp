#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
}

TEST(Engine, ScheduledCallbacksFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, SameTimeCallbacksFireInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  eng.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  Time fired = -1;
  eng.schedule_at(100, [&] {
    eng.schedule_after(50, [&] { fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired, 150);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] { ++fired; });
  eng.schedule_at(30, [&] { ++fired; });
  eng.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 20);
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockEvenWithNoEvents) {
  Engine eng;
  eng.run_until(12345);
  EXPECT_EQ(eng.now(), 12345);
}

TEST(Engine, SpawnRunsBodyEagerlyUntilFirstSuspension) {
  Engine eng;
  bool entered = false;
  bool finished = false;
  eng.spawn([](Engine& e, bool& en, bool& fin) -> Task<void> {
    en = true;
    co_await e.delay(5);
    fin = true;
  }(eng, entered, finished));
  EXPECT_TRUE(entered);
  EXPECT_FALSE(finished);
  eng.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(eng.now(), 5);
}

TEST(Engine, LiveProcessCountTracksCompletion) {
  Engine eng;
  auto sleeper = [](Engine& e, Time d) -> Task<void> { co_await e.delay(d); };
  eng.spawn(sleeper(eng, 10));
  eng.spawn(sleeper(eng, 20));
  EXPECT_EQ(eng.live_processes(), 2);
  eng.run_until(10);
  EXPECT_EQ(eng.live_processes(), 1);
  eng.run();
  EXPECT_EQ(eng.live_processes(), 0);
}

TEST(Engine, DelayZeroCompletesWithoutSuspension) {
  Engine eng;
  int steps = 0;
  eng.spawn([](Engine& e, int& s) -> Task<void> {
    co_await e.delay(0);
    ++s;
    co_await e.delay(-5);  // negative clamps to "no wait"
    ++s;
  }(eng, steps));
  EXPECT_EQ(steps, 2);
  eng.run();
}

TEST(Engine, NestedTasksPropagateResults) {
  Engine eng;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.delay(7);
    co_return 42;
  };
  int got = 0;
  eng.spawn([](Engine& e, auto inner_fn, int& out) -> Task<void> {
    out = co_await inner_fn(e);
  }(eng, inner, got));
  eng.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(eng.now(), 7);
}

TEST(Engine, ExceptionsInProcessesSurfaceFromRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(3);
    throw std::logic_error("boom");
  }(eng));
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, ExceptionsPropagateThroughNestedTasks) {
  Engine eng;
  auto inner = [](Engine& e) -> Task<int> {
    co_await e.delay(1);
    throw std::runtime_error("inner");
    co_return 0;
  };
  bool caught = false;
  eng.spawn([](Engine& e, auto inner_fn, bool& c) -> Task<void> {
    try {
      (void)co_await inner_fn(e);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(eng, inner, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, AbortAllUnwindsSuspendedProcesses) {
  Engine eng;
  bool cleaned_up = false;
  struct Cleanup {
    bool* flag;
    ~Cleanup() { *flag = true; }
  };
  eng.spawn([](Engine& e, bool& flag) -> Task<void> {
    Cleanup c{&flag};
    co_await e.delay(1000 * kSecond);
  }(eng, cleaned_up));
  eng.run_until(10);
  EXPECT_FALSE(cleaned_up);
  eng.abort_all();
  EXPECT_TRUE(cleaned_up);
  EXPECT_EQ(eng.live_processes(), 0);
}

TEST(Engine, AbortAllUnwindsDeepTaskChains) {
  Engine eng;
  int destroyed = 0;
  struct Probe {
    int* n;
    ~Probe() { ++*n; }
  };
  auto leaf = [](Engine& e, int& n) -> Task<void> {
    Probe p{&n};
    co_await e.delay(1000 * kSecond);
  };
  auto mid = [](Engine& e, int& n, auto leaf_fn) -> Task<void> {
    Probe p{&n};
    co_await leaf_fn(e, n);
  };
  eng.spawn([](Engine& e, int& n, auto mid_fn, auto leaf_fn) -> Task<void> {
    Probe p{&n};
    co_await mid_fn(e, n, leaf_fn);
  }(eng, destroyed, mid, leaf));
  eng.run_until(1);
  eng.abort_all();
  EXPECT_EQ(destroyed, 3);
}

TEST(Engine, ManyInterleavedProcessesKeepDeterministicClock) {
  Engine eng;
  std::vector<std::pair<int, Time>> wakes;
  for (int i = 0; i < 50; ++i) {
    eng.spawn([](Engine& e, int id, std::vector<std::pair<int, Time>>& w)
                  -> Task<void> {
      for (int k = 0; k < 4; ++k) {
        co_await e.delay(10 + id % 7);
        w.emplace_back(id, e.now());
      }
    }(eng, i, wakes));
  }
  eng.run();
  ASSERT_EQ(wakes.size(), 200u);
  // Timestamps must be non-decreasing (events fire in time order).
  for (std::size_t i = 1; i < wakes.size(); ++i) {
    EXPECT_LE(wakes[i - 1].second, wakes[i].second);
  }
}

}  // namespace
}  // namespace gbc::sim
