#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gbc::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(3.0, 8.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinRange) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(Rng, UniformIntZeroIsZero) {
  Rng r(1);
  EXPECT_EQ(r.uniform_int(0), 0u);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMeanAndSpreadConverge) {
  Rng r(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalMeanMatchesParameterization) {
  Rng r(23);
  double sum = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += r.lognormal_mean_cv(8.0, 0.3);
  EXPECT_NEAR(sum / n, 8.0, 0.15);
}

TEST(Rng, LognormalAlwaysPositive) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(r.lognormal_mean_cv(2.0, 1.0), 0.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1b = Rng(99).fork(1);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  Rng g1 = Rng(99).fork(1);
  Rng g2 = Rng(99).fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (g1.next_u64() == g2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
  (void)f2;
}

}  // namespace
}  // namespace gbc::sim
