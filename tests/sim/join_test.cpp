#include "sim/join.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {
namespace {

Task<void> sleeper(Engine& eng, Time d, int* done) {
  co_await eng.delay(d);
  ++*done;
}

TEST(JoinSet, JoinWaitsForAllLaunchedTasks) {
  Engine eng;
  JoinSet js(eng);
  int done = 0;
  Time joined_at = -1;
  eng.spawn([](Engine& e, JoinSet& j, int& d, Time& at) -> Task<void> {
    j.launch(sleeper(e, 10, &d));
    j.launch(sleeper(e, 30, &d));
    j.launch(sleeper(e, 20, &d));
    co_await j.join();
    at = e.now();
  }(eng, js, done, joined_at));
  eng.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(joined_at, 30);
}

TEST(JoinSet, JoinWithNoTasksReturnsImmediately) {
  Engine eng;
  JoinSet js(eng);
  bool passed = false;
  eng.spawn([](JoinSet& j, bool& p) -> Task<void> {
    co_await j.join();
    p = true;
  }(js, passed));
  EXPECT_TRUE(passed);
  eng.run();
}

TEST(JoinSet, TasksRunConcurrentlyNotSequentially) {
  Engine eng;
  JoinSet js(eng);
  int done = 0;
  Time joined_at = -1;
  eng.spawn([](Engine& e, JoinSet& j, int& d, Time& at) -> Task<void> {
    for (int i = 0; i < 10; ++i) j.launch(sleeper(e, 100, &d));
    co_await j.join();
    at = e.now();
  }(eng, js, done, joined_at));
  eng.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(joined_at, 100);  // parallel: 100, not 1000
}

TEST(JoinSet, PendingCountDrops) {
  Engine eng;
  JoinSet js(eng);
  int done = 0;
  js.launch(sleeper(eng, 10, &done));
  js.launch(sleeper(eng, 20, &done));
  EXPECT_EQ(js.pending(), 2);
  eng.run_until(15);
  EXPECT_EQ(js.pending(), 1);
  eng.run();
  EXPECT_EQ(js.pending(), 0);
}

TEST(JoinSet, ReusableAfterJoin) {
  Engine eng;
  JoinSet js(eng);
  int done = 0;
  Time second_join = -1;
  eng.spawn([](Engine& e, JoinSet& j, int& d, Time& at) -> Task<void> {
    j.launch(sleeper(e, 5, &d));
    co_await j.join();
    j.launch(sleeper(e, 5, &d));
    co_await j.join();
    at = e.now();
  }(eng, js, done, second_join));
  eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(second_join, 10);
}

}  // namespace
}  // namespace gbc::sim
