#include "sim/condition.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace gbc::sim {
namespace {

TEST(Condition, NotifyAllWakesEveryWaiter) {
  Engine eng;
  Condition cv(eng);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](Condition& c, int& n) -> Task<void> {
      co_await c.wait();
      ++n;
    }(cv, woke));
  }
  eng.schedule_at(10, [&] { cv.notify_all(); });
  eng.run();
  EXPECT_EQ(woke, 5);
  EXPECT_EQ(eng.now(), 10);
}

TEST(Condition, NotifyOneWakesExactlyOne) {
  Engine eng;
  Condition cv(eng);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Condition& c, int& n) -> Task<void> {
      co_await c.wait();
      ++n;
    }(cv, woke));
  }
  eng.schedule_at(5, [&] { cv.notify_one(); });
  eng.run_until(6);
  EXPECT_EQ(woke, 1);
  eng.schedule_now([&] { cv.notify_all(); });
  eng.run();
  EXPECT_EQ(woke, 3);
}

TEST(Condition, NotifyWithNoWaitersIsHarmless) {
  Engine eng;
  Condition cv(eng);
  cv.notify_all();
  cv.notify_one();
  eng.run();
  SUCCEED();
}

TEST(Condition, WaitersWakeInFifoOrder) {
  Engine eng;
  Condition cv(eng);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Condition& c, std::vector<int>& ord, int id) -> Task<void> {
      co_await c.wait();
      ord.push_back(id);
    }(cv, order, i));
  }
  eng.schedule_at(1, [&] { cv.notify_all(); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Condition, WaitUntilChecksPredicateBeforeWaiting) {
  Engine eng;
  Condition cv(eng);
  bool flag = true;
  bool done = false;
  eng.spawn([](Condition& c, bool& f, bool& d) -> Task<void> {
    co_await c.wait_until([&f] { return f; });
    d = true;
  }(cv, flag, done));
  EXPECT_TRUE(done);  // never suspended
  eng.run();
}

TEST(Condition, WaitUntilLoopsAcrossSpuriousNotifies) {
  Engine eng;
  Condition cv(eng);
  int value = 0;
  Time done_at = -1;
  eng.spawn([](Engine& e, Condition& c, int& v, Time& d) -> Task<void> {
    co_await c.wait_until([&v] { return v >= 3; });
    d = e.now();
  }(eng, cv, value, done_at));
  for (Time t = 10; t <= 40; t += 10) {
    eng.schedule_at(t, [&] {
      ++value;
      cv.notify_all();
    });
  }
  eng.run();
  EXPECT_EQ(done_at, 30);
}

TEST(Condition, WaitForReturnsTrueWhenNotifiedFirst) {
  Engine eng;
  Condition cv(eng);
  bool notified = false;
  eng.spawn([](Condition& c, bool& out) -> Task<void> {
    out = co_await c.wait_for(100);
  }(cv, notified));
  eng.schedule_at(50, [&] { cv.notify_all(); });
  eng.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(eng.now(), 100);  // the stale timer still drains
}

TEST(Condition, WaitForReturnsFalseOnTimeout) {
  Engine eng;
  Condition cv(eng);
  bool notified = true;
  Time woke_at = -1;
  eng.spawn([](Engine& e, Condition& c, bool& out, Time& at) -> Task<void> {
    out = co_await c.wait_for(100);
    at = e.now();
  }(eng, cv, notified, woke_at));
  eng.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(woke_at, 100);
}

TEST(Condition, WaitForTimedOutWaiterIgnoresLaterNotify) {
  Engine eng;
  Condition cv(eng);
  int wakes = 0;
  eng.spawn([](Condition& c, int& n) -> Task<void> {
    (void)co_await c.wait_for(10);
    ++n;
  }(cv, wakes));
  eng.schedule_at(50, [&] { cv.notify_all(); });
  eng.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Gate, OpenGatePassesImmediately) {
  Engine eng;
  Gate gate(eng, /*open=*/true);
  bool passed = false;
  eng.spawn([](Gate& g, bool& p) -> Task<void> {
    co_await g.pass();
    p = true;
  }(gate, passed));
  EXPECT_TRUE(passed);
  eng.run();
}

TEST(Gate, ClosedGateBlocksUntilOpened) {
  Engine eng;
  Gate gate(eng, /*open=*/false);
  Time passed_at = -1;
  eng.spawn([](Engine& e, Gate& g, Time& at) -> Task<void> {
    co_await g.pass();
    at = e.now();
  }(eng, gate, passed_at));
  eng.schedule_at(77, [&] { gate.open(); });
  eng.run();
  EXPECT_EQ(passed_at, 77);
}

TEST(Gate, ReclosedGateBlocksNewArrivals) {
  Engine eng;
  Gate gate(eng, /*open=*/true);
  gate.close();
  bool passed = false;
  eng.spawn([](Gate& g, bool& p) -> Task<void> {
    co_await g.pass();
    p = true;
  }(gate, passed));
  eng.run();
  EXPECT_FALSE(passed);
  gate.open();
  eng.run();
  EXPECT_TRUE(passed);
}

TEST(Mailbox, DeliversInFifoOrder) {
  Engine eng;
  Mailbox<int> box(eng);
  std::vector<int> got;
  eng.spawn([](Mailbox<int>& b, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out.push_back(co_await b.recv());
  }(box, got));
  box.send(1);
  box.send(2);
  box.send(3);
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, RecvBlocksUntilSend) {
  Engine eng;
  Mailbox<std::string> box(eng);
  Time got_at = -1;
  eng.spawn([](Engine& e, Mailbox<std::string>& b, Time& at) -> Task<void> {
    auto s = co_await b.recv();
    EXPECT_EQ(s, "hello");
    at = e.now();
  }(eng, box, got_at));
  eng.schedule_at(42, [&] { box.send("hello"); });
  eng.run();
  EXPECT_EQ(got_at, 42);
}

TEST(Mailbox, MultipleConsumersEachGetOneItem) {
  Engine eng;
  Mailbox<int> box(eng);
  int sum = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Mailbox<int>& b, int& s) -> Task<void> {
      s += co_await b.recv();
    }(box, sum));
  }
  eng.schedule_at(1, [&] {
    box.send(100);
    box.send(10);
    box.send(1);
  });
  eng.run();
  EXPECT_EQ(sum, 111);
  EXPECT_TRUE(box.empty());
}

}  // namespace
}  // namespace gbc::sim
