#include "sim/pausable.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {
namespace {

TEST(Pausable, ComputeTakesExactlyItsDurationUnpaused) {
  Engine eng;
  Pausable exec(eng);
  Time done_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.compute(100 * kMillisecond);
    at = e.now();
  }(eng, exec, done_at));
  eng.run();
  EXPECT_EQ(done_at, 100 * kMillisecond);
}

TEST(Pausable, ZeroComputeCompletesImmediately) {
  Engine eng;
  Pausable exec(eng);
  bool done = false;
  eng.spawn([](Pausable& x, bool& d) -> Task<void> {
    co_await x.compute(0);
    d = true;
  }(exec, done));
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.now(), 0);
}

TEST(Pausable, PauseMidComputeExtendsCompletionByPauseLength) {
  Engine eng;
  Pausable exec(eng);
  Time done_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.compute(100);
    at = e.now();
  }(eng, exec, done_at));
  eng.schedule_at(30, [&] { exec.pause(); });
  eng.schedule_at(80, [&] { exec.resume(); });
  eng.run();
  EXPECT_EQ(done_at, 150);  // 100 of work + 50 paused
  EXPECT_EQ(exec.total_paused(), 50);
}

TEST(Pausable, MultiplePausesAllExtendCompute) {
  Engine eng;
  Pausable exec(eng);
  Time done_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.compute(1000);
    at = e.now();
  }(eng, exec, done_at));
  eng.schedule_at(100, [&] { exec.pause(); });
  eng.schedule_at(150, [&] { exec.resume(); });
  eng.schedule_at(700, [&] { exec.pause(); });
  eng.schedule_at(900, [&] { exec.resume(); });
  eng.run();
  EXPECT_EQ(done_at, 1250);
  EXPECT_EQ(exec.total_paused(), 250);
}

TEST(Pausable, NestedPausesOnlyCountOnce) {
  Engine eng;
  Pausable exec(eng);
  Time done_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.compute(100);
    at = e.now();
  }(eng, exec, done_at));
  eng.schedule_at(10, [&] { exec.pause(); });
  eng.schedule_at(20, [&] { exec.pause(); });   // nested
  eng.schedule_at(30, [&] { exec.resume(); });  // still paused
  eng.schedule_at(60, [&] { exec.resume(); });  // now running again
  eng.run();
  EXPECT_EQ(done_at, 150);
  EXPECT_EQ(exec.total_paused(), 50);
}

TEST(Pausable, PauseBeforeComputeStartDelaysIt) {
  Engine eng;
  Pausable exec(eng);
  exec.pause();
  Time done_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.compute(40);
    at = e.now();
  }(eng, exec, done_at));
  eng.schedule_at(60, [&] { exec.resume(); });
  eng.run();
  EXPECT_EQ(done_at, 100);
}

TEST(Pausable, BackToBackComputesAccumulate) {
  Engine eng;
  Pausable exec(eng);
  Time done_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await x.compute(10);
    at = e.now();
  }(eng, exec, done_at));
  eng.run();
  EXPECT_EQ(done_at, 100);
}

TEST(Pausable, InComputeFlagTracksExecution) {
  Engine eng;
  Pausable exec(eng);
  eng.spawn([](Pausable& x) -> Task<void> {
    co_await x.compute(100);
  }(exec));
  EXPECT_TRUE(exec.in_compute());
  eng.run_until(50);
  EXPECT_TRUE(exec.in_compute());
  eng.run();
  EXPECT_FALSE(exec.in_compute());
}

TEST(Pausable, FreezePointPassesWhenNotPaused) {
  Engine eng;
  Pausable exec(eng);
  bool passed = false;
  eng.spawn([](Pausable& x, bool& p) -> Task<void> {
    co_await x.freeze_point();
    p = true;
  }(exec, passed));
  EXPECT_TRUE(passed);
  eng.run();
}

TEST(Pausable, FreezePointBlocksWhilePaused) {
  Engine eng;
  Pausable exec(eng);
  exec.pause();
  Time passed_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.freeze_point();
    at = e.now();
  }(eng, exec, passed_at));
  eng.schedule_at(25, [&] { exec.resume(); });
  eng.run();
  EXPECT_EQ(passed_at, 25);
}

TEST(Pausable, ServicePointImmediateWhenNotComputing) {
  Engine eng;
  Pausable exec(eng);
  Time serviced_at = -1;
  eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
    co_await x.await_service_point(false, 100 * kMillisecond);
    at = e.now();
  }(eng, exec, serviced_at));
  eng.run();
  EXPECT_EQ(serviced_at, 0);
}

TEST(Pausable, ServicePointWithoutHelperWaitsForComputeEnd) {
  Engine eng;
  Pausable exec(eng);
  eng.spawn([](Pausable& x) -> Task<void> {
    co_await x.compute(from_seconds(1.0));
  }(exec));
  Time serviced_at = -1;
  eng.schedule_at(from_milliseconds(10), [&] {
    eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
      co_await x.await_service_point(false, 100 * kMillisecond);
      at = e.now();
    }(eng, exec, serviced_at));
  });
  eng.run();
  EXPECT_EQ(serviced_at, from_seconds(1.0));
}

TEST(Pausable, ServicePointWithHelperBoundedByTick) {
  Engine eng;
  Pausable exec(eng);
  eng.spawn([](Pausable& x) -> Task<void> {
    co_await x.compute(from_seconds(1.0));
  }(exec));
  Time serviced_at = -1;
  eng.schedule_at(from_milliseconds(10), [&] {
    eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
      co_await x.await_service_point(true, 100 * kMillisecond);
      at = e.now();
    }(eng, exec, serviced_at));
  });
  eng.run();
  // Helper tick fires 100ms after compute start (= last progress at t=0).
  EXPECT_EQ(serviced_at, from_milliseconds(100));
}

TEST(Pausable, ServicePointHelperUsesComputeEndWhenSooner) {
  Engine eng;
  Pausable exec(eng);
  eng.spawn([](Pausable& x) -> Task<void> {
    co_await x.compute(from_milliseconds(30));
  }(exec));
  Time serviced_at = -1;
  eng.schedule_at(from_milliseconds(10), [&] {
    eng.spawn([](Engine& e, Pausable& x, Time& at) -> Task<void> {
      co_await x.await_service_point(true, 100 * kMillisecond);
      at = e.now();
    }(eng, exec, serviced_at));
  });
  eng.run();
  EXPECT_EQ(serviced_at, from_milliseconds(30));
}

TEST(Pausable, TotalPausedCountsOngoingPause) {
  Engine eng;
  Pausable exec(eng);
  eng.schedule_at(10, [&] { exec.pause(); });
  eng.run_until(35);
  EXPECT_EQ(exec.total_paused(), 25);
  exec.resume();
  EXPECT_EQ(exec.total_paused(), 25);
}

}  // namespace
}  // namespace gbc::sim
