#include "sim/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace gbc::sim {
namespace {

// Pops everything at or below `limit`, returning (t, seq) pairs in delivery
// order.
std::vector<std::pair<Time, std::uint64_t>> drain(TimingWheel& w, Time limit) {
  std::vector<std::pair<Time, std::uint64_t>> out;
  WheelEvent ev;
  while (w.pop(limit, ev)) out.emplace_back(ev.t, ev.seq);
  return out;
}

TEST(TimingWheel, PopsInTimeOrder) {
  TimingWheel w;
  std::uint64_t seq = 0;
  for (Time t : {30, 10, 20, 25, 5}) w.push(WheelEvent{t, seq++, 0});
  const auto got = drain(w, std::numeric_limits<Time>::max());
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {5, 4}, {10, 1}, {20, 2}, {25, 3}, {30, 0}};
  EXPECT_EQ(got, want);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, EqualTimestampsPopInSeqOrder) {
  TimingWheel w;
  for (std::uint64_t s = 0; s < 32; ++s) w.push(WheelEvent{7, s, 0});
  const auto got = drain(w, 7);
  ASSERT_EQ(got.size(), 32u);
  for (std::uint64_t s = 0; s < 32; ++s) {
    EXPECT_EQ(got[s].first, 7);
    EXPECT_EQ(got[s].second, s);
  }
}

// Equal-timestamp FIFO must hold even when some of the events reach the leaf
// bucket by cascading down from a coarse level while others are inserted
// into it directly (after the clock has advanced near the shared timestamp).
TEST(TimingWheel, EqualTimestampFifoAcrossCascadeAndDirectInsert) {
  TimingWheel w;
  w.push(WheelEvent{100, 1, 0});  // parks in the min-register
  w.push(WheelEvent{70, 2, 0});   // displaces it: seq 1 goes to a coarse slot
  w.push(WheelEvent{100, 3, 0});  // coarse slot too (clock still at 0)
  WheelEvent ev;
  ASSERT_TRUE(w.pop(70, ev));  // advances toward t=70
  EXPECT_EQ(ev.t, 70);
  EXPECT_EQ(ev.seq, 2u);
  // Appended to the same coarse slot as seq 1/3; all three cascade together
  // into one leaf bucket when the clock crosses t=64.
  w.push(WheelEvent{100, 4, 0});
  const auto got = drain(w, 100);
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {100, 1}, {100, 3}, {100, 4}};
  EXPECT_EQ(got, want);
}

// A displaced min-register event re-enters the wheel *after* later-scheduled
// events with the same timestamp already sit in its bucket; the drain-time
// seq sort must restore schedule order.
TEST(TimingWheel, DisplacedRegisterKeepsEqualTimestampFifo) {
  TimingWheel w;
  w.push(WheelEvent{100, 1, 0});  // register
  w.push(WheelEvent{100, 2, 0});  // wheel bucket: [seq 2]
  w.push(WheelEvent{50, 3, 0});   // displaces seq 1 -> bucket: [seq 2, seq 1]
  const auto got = drain(w, std::numeric_limits<Time>::max());
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {50, 3}, {100, 1}, {100, 2}};
  EXPECT_EQ(got, want);
}

TEST(TimingWheel, PopRespectsLimitAndKeepsEventQueued) {
  TimingWheel w;
  w.push(WheelEvent{50, 0, 0});
  WheelEvent ev;
  EXPECT_FALSE(w.pop(49, ev));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_LE(w.current(), 49);  // never advanced past the limit
  ASSERT_TRUE(w.pop(50, ev));
  EXPECT_EQ(ev.t, 50);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, FarFutureEventsMigrateFromOverflow) {
  TimingWheel w;
  // Beyond the 2^48 ns wheel horizon: held in the overflow heap.
  const Time far = TimingWheel::kHorizon + 5;
  const Time farther = 2 * TimingWheel::kHorizon + 11;
  w.push(WheelEvent{far, 0, 0});
  w.push(WheelEvent{far, 1, 0});
  w.push(WheelEvent{farther, 2, 0});
  w.push(WheelEvent{10, 3, 0});
  EXPECT_EQ(w.size(), 4u);
  const auto got = drain(w, std::numeric_limits<Time>::max());
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {10, 3}, {far, 0}, {far, 1}, {farther, 2}};
  EXPECT_EQ(got, want);
}

TEST(TimingWheel, OverflowRespectsPopLimit) {
  TimingWheel w;
  const Time far = TimingWheel::kHorizon + 123;
  w.push(WheelEvent{far, 0, 0});
  WheelEvent ev;
  EXPECT_FALSE(w.pop(far - 1, ev));
  EXPECT_EQ(w.size(), 1u);
  ASSERT_TRUE(w.pop(far, ev));
  EXPECT_EQ(ev.t, far);
}

TEST(TimingWheel, ClearDropsEverything) {
  TimingWheel w;
  for (Time t : {Time{1}, Time{100}, Time{10000}, TimingWheel::kHorizon + 1}) {
    w.push(WheelEvent{t, static_cast<std::uint64_t>(t), 0});
  }
  w.clear();
  EXPECT_TRUE(w.empty());
  WheelEvent ev;
  EXPECT_FALSE(w.pop(std::numeric_limits<Time>::max(), ev));
  // Reusable after a clear.
  w.push(WheelEvent{5, 0, 0});
  ASSERT_TRUE(w.pop(5, ev));
  EXPECT_EQ(ev.t, 5);
}

// Randomized push/pop interleavings against a sort-by-(t, seq) reference:
// the wheel must deliver the exact (t, seq) order the engine's determinism
// contract requires, across leaf inserts, cascades and epoch overflow.
TEST(TimingWheel, RandomScheduleMatchesReferenceOrder) {
  std::mt19937 rng(20070814);
  TimingWheel w;
  std::vector<std::pair<Time, std::uint64_t>> pending;
  std::vector<std::pair<Time, std::uint64_t>> delivered;
  std::uint64_t seq = 0;
  Time now = 0;
  for (int round = 0; round < 400; ++round) {
    const int pushes = static_cast<int>(rng() % 8);
    for (int i = 0; i < pushes; ++i) {
      // Mix of near, slot-boundary, far, and beyond-horizon offsets.
      Time dt = 0;
      switch (rng() % 5) {
        case 0: dt = static_cast<Time>(rng() % 4); break;
        case 1: dt = static_cast<Time>(rng() % 256); break;
        case 2: dt = static_cast<Time>(rng() % (1 << 20)); break;
        case 3: dt = static_cast<Time>(rng() % (1ull << 40)); break;
        default: dt = TimingWheel::kHorizon + static_cast<Time>(rng() % 100);
      }
      const Time t = now + dt;
      w.push(WheelEvent{t, seq, 0});
      pending.emplace_back(t, seq);
      ++seq;
    }
    const int pops = static_cast<int>(rng() % 8);
    for (int i = 0; i < pops && !pending.empty(); ++i) {
      WheelEvent ev;
      ASSERT_TRUE(w.pop(std::numeric_limits<Time>::max(), ev));
      delivered.emplace_back(ev.t, ev.seq);
      now = ev.t;
      pending.erase(std::find(pending.begin(), pending.end(),
                              std::make_pair(ev.t, ev.seq)));
    }
  }
  WheelEvent ev;
  while (w.pop(std::numeric_limits<Time>::max(), ev)) {
    delivered.emplace_back(ev.t, ev.seq);
  }
  auto want = delivered;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(delivered, want) << "wheel delivery deviated from (t, seq) order";
  EXPECT_TRUE(w.empty());
}

// ---------------------------------------------------------------------------
// Engine-level semantics that ride on the wheel
// ---------------------------------------------------------------------------

TEST(EngineWheel, RunUntilBoundaryThenScheduleJustAfter) {
  Engine eng;
  std::vector<Time> fired;
  eng.schedule_at(10, [&] { fired.push_back(eng.now()); });
  eng.schedule_at(30, [&] { fired.push_back(eng.now()); });
  eng.run_until(20);
  EXPECT_EQ(eng.now(), 20);
  // The clock parked at the boundary must accept events between the boundary
  // and the still-queued t=30 event.
  eng.schedule_at(21, [&] { fired.push_back(eng.now()); });
  eng.run();
  EXPECT_EQ(fired, (std::vector<Time>{10, 21, 30}));
}

TEST(EngineWheel, DelayChainAcrossWheelLevels) {
  Engine eng;
  std::vector<Time> waypoints;
  eng.spawn([](Engine& e, std::vector<Time>& wp) -> Task<void> {
    for (Time d : {Time{1}, Time{63}, Time{64}, Time{4096}, Time{1} << 30,
                   TimingWheel::kHorizon + 7}) {
      co_await e.delay(d);
      wp.push_back(e.now());
    }
  }(eng, waypoints));
  eng.run();
  ASSERT_EQ(waypoints.size(), 6u);
  Time expect = 0;
  std::size_t i = 0;
  for (Time d : {Time{1}, Time{63}, Time{64}, Time{4096}, Time{1} << 30,
                 TimingWheel::kHorizon + 7}) {
    expect += d;
    EXPECT_EQ(waypoints[i++], expect);
  }
}

#if !GBC_POOLS_PASSTHROUGH
// Suspension records (delay/condition waits) must recycle through the
// engine's arena instead of hitting the heap per wake. Storage is only
// reclaimed when the engine's lazy weak_ptr prune (every >=256
// registrations) releases the dead control blocks, so run well past one
// prune interval.
TEST(EngineWheel, SuspendStateRecordsRecycle) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    for (int i = 0; i < 1000; ++i) co_await e.delay(1);
  }(eng));
  eng.run();
  EXPECT_GT(eng.suspend_arena()->reused(), 0u);
}
#endif

}  // namespace
}  // namespace gbc::sim
