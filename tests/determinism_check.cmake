# Determinism regression check: a figure sweep must produce byte-identical
# CSVs whether the experiment points run serially or spread across the sweep
# pool. Guards the engine's (t, seq) delivery contract — a scheduler or pool
# change that perturbs event order shows up here as a CSV diff.
#
# Usage: cmake -DBIN=<figure binary> -DCSV=<csv basename, no extension>
#              -DWORK=<scratch dir> -P determinism_check.cmake
if(NOT BIN OR NOT CSV OR NOT WORK)
  message(FATAL_ERROR
          "pass -DBIN=<binary>, -DCSV=<csv basename> and -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

foreach(threads IN ITEMS 1 8)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env
            "GBC_SWEEP_THREADS=${threads}"
            "GBC_BENCH_OUT=${WORK}/threads${threads}"
            "${BIN}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${CSV} sweep with GBC_SWEEP_THREADS=${threads} "
                        "failed (exit ${rc})")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK}/threads1/${CSV}.csv"
          "${WORK}/threads8/${CSV}.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "${CSV}.csv differs between serial and "
                      "8-thread sweeps: determinism broken")
endif()
message(STATUS "${CSV} CSVs byte-identical across thread counts")
