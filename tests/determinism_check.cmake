# Determinism regression check: a figure sweep must produce byte-identical
# CSVs whether the experiment points run serially or spread across the sweep
# pool. Guards the engine's (t, seq) delivery contract — a scheduler or pool
# change that perturbs event order shows up here as a CSV diff.
#
# Usage: cmake -DBIN=<figure binary> -DCSV=<csv basename, no extension>
#              -DWORK=<scratch dir> [-DMODE=shards] [-DEXTRA=<args;list>]
#              -P determinism_check.cmake
#
# Default mode varies GBC_SWEEP_THREADS (1 vs 8). MODE=shards instead varies
# the DES shard count (--shards 1 vs --shards 4 on the binary's command
# line, with EXTRA prepended) — the sharded-engine equivalent of the same
# contract: partitioning the event set must not change the simulation.
if(NOT BIN OR NOT CSV OR NOT WORK)
  message(FATAL_ERROR
          "pass -DBIN=<binary>, -DCSV=<csv basename> and -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

if(MODE STREQUAL "shards")
  set(variants 1 4)
else()
  set(variants 1 8)
endif()

foreach(v IN LISTS variants)
  if(MODE STREQUAL "shards")
    set(cmd "${BIN}" ${EXTRA} --shards ${v})
    set(env_args "GBC_BENCH_OUT=${WORK}/variant${v}")
    set(what "--shards ${v}")
  else()
    set(cmd "${BIN}")
    set(env_args "GBC_SWEEP_THREADS=${v}" "GBC_BENCH_OUT=${WORK}/variant${v}")
    set(what "GBC_SWEEP_THREADS=${v}")
  endif()
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env ${env_args} ${cmd}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${CSV} run with ${what} failed (exit ${rc})")
  endif()
endforeach()

list(GET variants 0 v0)
list(GET variants 1 v1)
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK}/variant${v0}/${CSV}.csv"
          "${WORK}/variant${v1}/${CSV}.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  if(MODE STREQUAL "shards")
    message(FATAL_ERROR "${CSV}.csv differs between 1-shard and 4-shard "
                        "runs: sharded-DES determinism broken")
  endif()
  message(FATAL_ERROR "${CSV}.csv differs between serial and "
                      "8-thread sweeps: determinism broken")
endif()
message(STATUS "${CSV} CSVs byte-identical across variants ${variants}")
