# Determinism regression check: a figure sweep must produce byte-identical
# CSVs whether the experiment points run serially or spread across the sweep
# pool. Guards the engine's (t, seq) delivery contract — a scheduler or pool
# change that perturbs event order shows up here as a CSV diff.
#
# Usage: cmake -DBIN=<figure binary> -DCSV=<csv basename, no extension>
#              -DWORK=<scratch dir> [-DMODE=shards] [-DEXTRA=<args;list>]
#              [-DVARIANTS=<list>] -P determinism_check.cmake
#
# Default mode varies GBC_SWEEP_THREADS (1 vs 8). MODE=shards instead varies
# the DES shard count (--shards 1 vs --shards 4 on the binary's command
# line, with EXTRA prepended) — the sharded-engine equivalent of the same
# contract: partitioning the event set must not change the simulation. In
# MODE=shards, VARIANTS overrides the shard counts; an entry of the form
# "S/T" additionally pins the worker count (--shards S --threads T), e.g.
# -DVARIANTS=1;4/1;4/4 checks serial vs 4 shards at both 1 and 4 workers.
# Every variant's CSV is compared against the first.
if(NOT BIN OR NOT CSV OR NOT WORK)
  message(FATAL_ERROR
          "pass -DBIN=<binary>, -DCSV=<csv basename> and -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

if(MODE STREQUAL "shards")
  if(VARIANTS)
    set(variants ${VARIANTS})
  else()
    set(variants 1 4)
  endif()
else()
  set(variants 1 8)
endif()

set(tags)
foreach(v IN LISTS variants)
  if(MODE STREQUAL "shards")
    string(REPLACE "/" ";" shard_threads "${v}")
    list(GET shard_threads 0 nshards)
    list(LENGTH shard_threads stlen)
    set(cmd "${BIN}" ${EXTRA} --shards ${nshards})
    set(what "--shards ${nshards}")
    if(stlen GREATER 1)
      list(GET shard_threads 1 nthreads)
      list(APPEND cmd --threads ${nthreads})
      set(what "${what} --threads ${nthreads}")
    endif()
    string(REPLACE "/" "t" tag "${v}")
    set(env_args "GBC_BENCH_OUT=${WORK}/variant${tag}")
  else()
    set(cmd "${BIN}")
    set(tag "${v}")
    set(env_args "GBC_SWEEP_THREADS=${v}" "GBC_BENCH_OUT=${WORK}/variant${tag}")
    set(what "GBC_SWEEP_THREADS=${v}")
  endif()
  list(APPEND tags "${tag}")
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env ${env_args} ${cmd}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${CSV} run with ${what} failed (exit ${rc})")
  endif()
endforeach()

list(GET tags 0 tag0)
list(REMOVE_AT tags 0)
foreach(tag IN LISTS tags)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK}/variant${tag0}/${CSV}.csv"
            "${WORK}/variant${tag}/${CSV}.csv"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    if(MODE STREQUAL "shards")
      message(FATAL_ERROR "${CSV}.csv differs between variant ${tag0} and "
                          "variant ${tag}: sharded-DES determinism broken")
    endif()
    message(FATAL_ERROR "${CSV}.csv differs between serial and "
                        "8-thread sweeps: determinism broken")
  endif()
endforeach()
message(STATUS "${CSV} CSVs byte-identical across variants ${variants}")
