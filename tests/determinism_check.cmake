# Determinism regression check: a figure sweep must produce byte-identical
# CSVs whether the experiment points run serially or spread across the sweep
# pool. Guards the engine's (t, seq) delivery contract — a scheduler or pool
# change that perturbs event order shows up here as a CSV diff.
#
# Usage: cmake -DFIG3=<fig3_group_size binary> -DWORK=<scratch dir>
#              -P determinism_check.cmake
if(NOT FIG3 OR NOT WORK)
  message(FATAL_ERROR "pass -DFIG3=<binary> and -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

foreach(threads IN ITEMS 1 8)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env
            "GBC_SWEEP_THREADS=${threads}"
            "GBC_BENCH_OUT=${WORK}/threads${threads}"
            "${FIG3}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig3 sweep with GBC_SWEEP_THREADS=${threads} "
                        "failed (exit ${rc})")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK}/threads1/fig3_group_size.csv"
          "${WORK}/threads8/fig3_group_size.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "fig3_group_size.csv differs between serial and "
                      "8-thread sweeps: determinism broken")
endif()
message(STATUS "fig3 CSVs byte-identical across thread counts")
