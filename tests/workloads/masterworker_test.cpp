#include "workloads/masterworker.hpp"

#include <gtest/gtest.h>

#include "../mpi/mpi_test_util.hpp"
#include "sim/time.hpp"

namespace gbc::workloads {
namespace {

using mpi::testing::MpiWorld;

MasterWorkerConfig tiny_mw() {
  MasterWorkerConfig c;
  c.rounds = 20;
  c.mean_chunk_seconds = 0.1;
  return c;
}

TEST(MasterWorker, AllRanksCompleteAllRounds) {
  MpiWorld w(5);
  MasterWorkerSim wl(5, tiny_mw());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int r = 0; r < 5; ++r) EXPECT_EQ(wl.state(r).iteration, 20u);
}

TEST(MasterWorker, OnlyMasterTalksToWorkers) {
  MpiWorld w(5);
  MasterWorkerSim wl(5, tiny_mw());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int a = 1; a < 5; ++a) {
    EXPECT_GT(w.fabric.bytes_between(0, a), 0);
    for (int b = a + 1; b < 5; ++b) {
      EXPECT_EQ(w.fabric.bytes_between(a, b), 0) << a << "-" << b;
    }
  }
}

TEST(MasterWorker, DeterministicAcrossRuns) {
  std::uint64_t first = 0;
  sim::Time first_t = 0;
  for (int run = 0; run < 2; ++run) {
    MpiWorld w(5);
    MasterWorkerSim wl(5, tiny_mw());
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    if (run == 0) {
      first = wl.state(3).hash;
      first_t = w.eng.now();
    } else {
      EXPECT_EQ(wl.state(3).hash, first);
      EXPECT_EQ(w.eng.now(), first_t);
    }
  }
}

TEST(MasterWorker, ResumeFromCommonRoundReproducesHashes) {
  std::vector<std::uint64_t> full(5);
  std::vector<std::vector<std::uint64_t>> blobs(5);
  {
    MpiWorld w(5);
    MasterWorkerSim wl(5, tiny_mw());
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    for (int r = 0; r < 5; ++r) {
      full[r] = wl.state(r).hash;
      blobs[r] = wl.resume_blob(r);
    }
  }
  {
    MpiWorld w(5);
    MasterWorkerSim wl(5, tiny_mw());
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      auto from = Workload::state_for_iteration(blobs[r.world_rank()], 8);
      return wl.run_rank(r, from);
    });
    for (int r = 0; r < 5; ++r) EXPECT_EQ(wl.state(r).hash, full[r]);
  }
}

}  // namespace
}  // namespace gbc::workloads
