#include "workloads/stencil.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../mpi/mpi_test_util.hpp"
#include "sim/time.hpp"

namespace gbc::workloads {
namespace {

using mpi::testing::MpiWorld;

StencilConfig tiny_stencil() {
  StencilConfig c;
  c.px = 4;
  c.py = 2;
  c.nx = 2048;
  c.ny = 2048;
  c.iterations = 25;
  return c;
}

TEST(StencilSim, NeighbourTopologyIsCorrect) {
  StencilSim wl(8, tiny_stencil());
  // Grid 4x2: rank = y*4 + x.
  EXPECT_EQ(wl.neighbours(0), (std::vector<int>{-1, 4, -1, 1}));
  EXPECT_EQ(wl.neighbours(5), (std::vector<int>{1, -1, 4, 6}));
  EXPECT_EQ(wl.neighbours(3), (std::vector<int>{-1, 7, 2, -1}));
}

TEST(StencilSim, AllRanksFinishAllIterations) {
  MpiWorld w(8);
  StencilSim wl(8, tiny_stencil());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(wl.state(r).iteration, 25u);
}

TEST(StencilSim, RuntimeNearEstimate) {
  MpiWorld w(8);
  StencilSim wl(8, tiny_stencil());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  const double est = wl.estimated_runtime_seconds();
  EXPECT_NEAR(sim::to_seconds(w.eng.now()), est, est * 0.3);
}

TEST(StencilSim, OnlyNeighbourPairsCommunicate) {
  MpiWorld w(8);
  StencilSim wl(8, tiny_stencil());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int a = 0; a < 8; ++a) {
    auto nbrs = wl.neighbours(a);
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      const bool is_nbr =
          std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
      if (is_nbr) {
        EXPECT_GT(w.fabric.bytes_between(a, b), 0) << a << "-" << b;
      } else {
        EXPECT_EQ(w.fabric.bytes_between(a, b), 0) << a << "-" << b;
      }
    }
  }
}

TEST(StencilSim, ResumeReproducesFinalHash) {
  std::vector<std::uint64_t> full(8);
  std::vector<std::vector<std::uint64_t>> blobs(8);
  auto cfg = tiny_stencil();
  {
    MpiWorld w(8);
    StencilSim wl(8, cfg);
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    for (int r = 0; r < 8; ++r) {
      full[r] = wl.state(r).hash;
      blobs[r] = wl.resume_blob(r);
    }
  }
  {
    MpiWorld w(8);
    StencilSim wl(8, cfg);
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      auto from = Workload::state_for_iteration(blobs[r.world_rank()], 11);
      return wl.run_rank(r, from);
    });
    for (int r = 0; r < 8; ++r) EXPECT_EQ(wl.state(r).hash, full[r]);
  }
}

TEST(StencilSim, BoundaryRanksSendFewerHalos) {
  MpiWorld w(8);
  StencilSim wl(8, tiny_stencil());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  // Corner rank 0 has 2 neighbours; interior-ish rank 1 has 3 (4x2 grid has
  // no 4-neighbour rank). Messages counted by the fabric per pair.
  std::int64_t corner = 0, edge = 0;
  for (int b = 0; b < 8; ++b) {
    corner += w.fabric.messages_between(0, b);
    edge += w.fabric.messages_between(1, b);
  }
  EXPECT_LT(corner, edge);
}

}  // namespace
}  // namespace gbc::workloads
