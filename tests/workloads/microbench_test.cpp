#include "workloads/microbench.hpp"

#include <gtest/gtest.h>

#include "../mpi/mpi_test_util.hpp"
#include "sim/time.hpp"

namespace gbc::workloads {
namespace {

using mpi::testing::MpiWorld;

CommGroupBenchConfig small_cfg(int comm_group, std::uint64_t iters = 50) {
  CommGroupBenchConfig c;
  c.comm_group_size = comm_group;
  c.compute_per_iter = 10 * sim::kMillisecond;
  c.iterations = iters;
  return c;
}

TEST(CommGroupBench, EmbarrassinglyParallelFinishesAtComputeTime) {
  MpiWorld w(4);
  CommGroupBench wl(4, small_cfg(1, 100));
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  EXPECT_EQ(w.eng.now(), 100 * 10 * sim::kMillisecond);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(wl.state(r).iteration, 100u);
}

TEST(CommGroupBench, GroupsSynchronizeInternally) {
  MpiWorld w(8);
  CommGroupBench wl(8, small_cfg(4, 30));
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(wl.state(r).iteration, 30u);
  // Intra-group ring traffic only: no bytes between groups {0..3} and {4..7}.
  for (int a = 0; a < 4; ++a) {
    for (int b = 4; b < 8; ++b) {
      EXPECT_EQ(w.fabric.bytes_between(a, b), 0) << a << "-" << b;
    }
  }
  EXPECT_GT(w.fabric.bytes_between(0, 1), 0);
}

TEST(CommGroupBench, HashesAreDeterministicAcrossRuns) {
  std::vector<std::uint64_t> first;
  for (int run = 0; run < 2; ++run) {
    MpiWorld w(4);
    CommGroupBench wl(4, small_cfg(2, 40));
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    if (run == 0) {
      for (int r = 0; r < 4; ++r) first.push_back(wl.state(r).hash);
    } else {
      for (int r = 0; r < 4; ++r) EXPECT_EQ(wl.state(r).hash, first[r]);
    }
  }
}

TEST(CommGroupBench, DistinctRanksProduceDistinctHashes) {
  MpiWorld w(4);
  CommGroupBench wl(4, small_cfg(2, 40));
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  EXPECT_NE(wl.state(0).hash, wl.state(1).hash);
  EXPECT_NE(wl.state(1).hash, wl.state(2).hash);
}

TEST(CommGroupBench, ResumeFromMidpointMatchesUninterruptedHash) {
  std::vector<std::uint64_t> full_hash(4);
  std::vector<std::vector<std::uint64_t>> blob_at_20(4);
  {
    MpiWorld w(4);
    CommGroupBench wl(4, small_cfg(2, 40));
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    for (int r = 0; r < 4; ++r) {
      full_hash[r] = wl.state(r).hash;
      blob_at_20[r] = wl.resume_blob(r);
    }
  }
  {
    MpiWorld w(4);
    CommGroupBench wl(4, small_cfg(2, 40));
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      // Resume every rank from committed iteration 20 of the previous run.
      auto from = Workload::state_for_iteration(blob_at_20[r.world_rank()], 20);
      return wl.run_rank(r, from);
    });
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(wl.state(r).iteration, 40u);
      EXPECT_EQ(wl.state(r).hash, full_hash[r]) << "rank " << r;
    }
  }
}

TEST(CommGroupBench, FootprintMatchesConfig) {
  MpiWorld w(2);
  auto cfg = small_cfg(1, 1);
  cfg.footprint_mib = 180.0;
  CommGroupBench wl(2, cfg);
  EXPECT_EQ(wl.footprint(0), storage::mib(180));
}

TEST(Workload, ResumeBlobRoundTrips) {
  MpiWorld w(2);
  CommGroupBench wl(2, small_cfg(1, 10));
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  auto blob = wl.resume_blob(0);
  EXPECT_EQ(Workload::committed_iterations(blob), 10u);
  auto end = Workload::state_for_iteration(blob, 10);
  EXPECT_EQ(end.iteration, 10u);
  EXPECT_EQ(end.hash, wl.state(0).hash);
  auto start = Workload::state_for_iteration(blob, 0);
  EXPECT_EQ(start.hash, 0u);
}

TEST(BarrierBench, BarriersAlignRanksPeriodically) {
  MpiWorld w(4);
  BarrierBenchConfig cfg;
  cfg.comm_group_size = 2;
  cfg.compute_per_iter = 10 * sim::kMillisecond;
  cfg.barrier_period = 100 * sim::kMillisecond;  // every 10 iterations
  cfg.iterations = 40;
  BarrierBench wl(4, cfg);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(wl.state(r).iteration, 40u);
  // World-spanning barrier traffic exists across group boundaries.
  std::int64_t cross = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 2; b < 4; ++b) cross += w.fabric.bytes_between(a, b);
  }
  EXPECT_GT(cross, 0);
}

TEST(BarrierBench, ResumeReproducesFinalHash) {
  std::vector<std::uint64_t> full_hash(4);
  BarrierBenchConfig cfg;
  cfg.comm_group_size = 2;
  cfg.compute_per_iter = 10 * sim::kMillisecond;
  cfg.barrier_period = 100 * sim::kMillisecond;
  cfg.iterations = 30;
  std::vector<std::vector<std::uint64_t>> blobs(4);
  {
    MpiWorld w(4);
    BarrierBench wl(4, cfg);
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    for (int r = 0; r < 4; ++r) {
      full_hash[r] = wl.state(r).hash;
      blobs[r] = wl.resume_blob(r);
    }
  }
  {
    MpiWorld w(4);
    BarrierBench wl(4, cfg);
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      auto from = Workload::state_for_iteration(blobs[r.world_rank()], 15);
      return wl.run_rank(r, from);
    });
    for (int r = 0; r < 4; ++r) EXPECT_EQ(wl.state(r).hash, full_hash[r]);
  }
}

}  // namespace
}  // namespace gbc::workloads
