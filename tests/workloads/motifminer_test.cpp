#include "workloads/motifminer.hpp"

#include <gtest/gtest.h>

#include "../mpi/mpi_test_util.hpp"
#include "sim/time.hpp"

namespace gbc::workloads {
namespace {

using mpi::testing::MpiWorld;

MotifMinerConfig tiny_mm() {
  MotifMinerConfig c;
  c.iterations = 12;
  c.mean_compute_seconds = 0.4;
  c.peak_candidates_mib = 20.0;
  return c;
}

TEST(MotifMinerSim, AllRanksCompleteAllIterations) {
  MpiWorld w(8);
  MotifMinerSim wl(8, tiny_mm());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(wl.state(r).iteration, 12u);
}

TEST(MotifMinerSim, RuntimeNearEstimate) {
  MpiWorld w(8);
  MotifMinerSim wl(8, tiny_mm());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  const double est = wl.estimated_runtime_seconds();
  EXPECT_NEAR(sim::to_seconds(w.eng.now()), est, est * 0.35);
}

TEST(MotifMinerSim, GlobalCommunicationTouchesEveryNeighbourPair) {
  MpiWorld w(4);
  MotifMinerSim wl(4, tiny_mm());
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  // Ring allgather: every adjacent pair in the ring carries traffic.
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(w.fabric.bytes_between(r, (r + 1) % 4), 0) << r;
  }
}

TEST(MotifMinerSim, ComputeChunksAreImbalancedButDeterministic) {
  MotifMinerSim a(4, tiny_mm());
  MotifMinerSim b(4, tiny_mm());
  // Same config: identical runs. Imbalance: chunks differ across ranks.
  MpiWorld wa(4), wb(4);
  wa.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return a.run_rank(r); });
  wb.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return b.run_rank(r); });
  EXPECT_EQ(wa.eng.now(), wb.eng.now());
  EXPECT_EQ(a.state(2).hash, b.state(2).hash);
}

TEST(MotifMinerSim, FootprintPeaksMidRun) {
  MotifMinerSim wl(4, tiny_mm());
  const storage::Bytes at_start = wl.footprint(0);
  MpiWorld w(4);
  bool peeked = false;
  storage::Bytes mid = 0;
  // Peek mid-run (estimated makespan is ~5.5s for the tiny config).
  w.eng.schedule_at(sim::from_seconds(wl.estimated_runtime_seconds() / 2),
                    [&] {
                      mid = wl.footprint(0);
                      peeked = true;
                    });
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  ASSERT_TRUE(peeked);
  EXPECT_GT(mid, at_start);
}

TEST(MotifMinerSim, ResumeReproducesFinalHash) {
  std::vector<std::uint64_t> full(4);
  std::vector<std::vector<std::uint64_t>> blobs(4);
  {
    MpiWorld w(4);
    MotifMinerSim wl(4, tiny_mm());
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    for (int r = 0; r < 4; ++r) {
      full[r] = wl.state(r).hash;
      blobs[r] = wl.resume_blob(r);
    }
  }
  {
    MpiWorld w(4);
    MotifMinerSim wl(4, tiny_mm());
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      auto from = Workload::state_for_iteration(blobs[r.world_rank()], 5);
      return wl.run_rank(r, from);
    });
    for (int r = 0; r < 4; ++r) EXPECT_EQ(wl.state(r).hash, full[r]);
  }
}

}  // namespace
}  // namespace gbc::workloads
