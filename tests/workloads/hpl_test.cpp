#include "workloads/hpl.hpp"

#include <gtest/gtest.h>

#include "../mpi/mpi_test_util.hpp"
#include "sim/time.hpp"

namespace gbc::workloads {
namespace {

using mpi::testing::MpiWorld;

HplConfig tiny_hpl() {
  HplConfig c;
  c.grid_p = 4;
  c.grid_q = 2;
  c.n = 4000;
  c.nb = 200;
  c.proc_gflops = 4.0;
  return c;
}

TEST(HplSim, IterationCountIsCeilNdivNB) {
  HplSim wl(8, tiny_hpl());
  EXPECT_EQ(wl.total_iterations(), 20u);
}

TEST(HplSim, SimulatedRuntimeTracksFlopEstimate) {
  MpiWorld w(8);
  HplSim wl(8, tiny_hpl());
  wl.setup(w.mpi);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  const double est = wl.estimated_runtime_seconds();
  const double got = sim::to_seconds(w.eng.now());
  EXPECT_NEAR(got, est, est * 0.25);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(wl.state(r).iteration, wl.total_iterations());
  }
}

TEST(HplSim, RowCommunicationDominates) {
  MpiWorld w(8);
  HplSim wl(8, tiny_hpl());
  wl.setup(w.mpi);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  // rank = row*Q + col with Q=2: row pairs are (0,1),(2,3),...; column pairs
  // are (0,2),(1,3),... Panel bcast along rows must dominate.
  std::int64_t row_bytes = 0, col_bytes = 0;
  for (int row = 0; row < 4; ++row) {
    row_bytes += w.fabric.bytes_between(row * 2, row * 2 + 1);
  }
  for (int col = 0; col < 2; ++col) {
    for (int ra = 0; ra < 4; ++ra) {
      for (int rb = ra + 1; rb < 4; ++rb) {
        col_bytes += w.fabric.bytes_between(ra * 2 + col, rb * 2 + col);
      }
    }
  }
  EXPECT_GT(row_bytes, 2 * col_bytes);
}

TEST(HplSim, FootprintGrowsOverExecution) {
  MpiWorld w(8);
  HplSim wl(8, tiny_hpl());
  wl.setup(w.mpi);
  const storage::Bytes at_start = wl.footprint(0);
  w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
  const storage::Bytes at_end = wl.footprint(0);
  EXPECT_GT(at_end, at_start);
  // Matrix share: 4000^2*8/8 = 16 MB; plus 60 MB base.
  EXPECT_GT(at_start, storage::mib(60));
  EXPECT_LT(at_end, storage::mib(60) + storage::mib(17));
}

TEST(HplSim, DeterministicHashAcrossRuns) {
  std::uint64_t first = 0;
  for (int run = 0; run < 2; ++run) {
    MpiWorld w(8);
    HplSim wl(8, tiny_hpl());
    wl.setup(w.mpi);
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    if (run == 0) {
      first = wl.state(3).hash;
    } else {
      EXPECT_EQ(wl.state(3).hash, first);
    }
  }
}

TEST(HplSim, ResumeMidFactorizationReproducesHash) {
  std::vector<std::uint64_t> full(8);
  std::vector<std::vector<std::uint64_t>> blobs(8);
  {
    MpiWorld w(8);
    HplSim wl(8, tiny_hpl());
    wl.setup(w.mpi);
    w.run_all(
        [&](mpi::RankCtx& r) -> sim::Task<void> { return wl.run_rank(r); });
    for (int r = 0; r < 8; ++r) {
      full[r] = wl.state(r).hash;
      blobs[r] = wl.resume_blob(r);
    }
  }
  {
    MpiWorld w(8);
    HplSim wl(8, tiny_hpl());
    wl.setup(w.mpi);
    w.run_all([&](mpi::RankCtx& r) -> sim::Task<void> {
      auto from = Workload::state_for_iteration(blobs[r.world_rank()], 9);
      return wl.run_rank(r, from);
    });
    for (int r = 0; r < 8; ++r) EXPECT_EQ(wl.state(r).hash, full[r]);
  }
}

TEST(HplSim, PaperScaleConfigEstimatesHundredsOfSeconds) {
  HplConfig c;  // defaults: 8x4 grid, N=44000, NB=440
  HplSim wl(32, c);
  EXPECT_GT(wl.estimated_runtime_seconds(), 400.0);
  EXPECT_LT(wl.estimated_runtime_seconds(), 500.0);
  EXPECT_EQ(wl.total_iterations(), 200u);
}

}  // namespace
}  // namespace gbc::workloads
