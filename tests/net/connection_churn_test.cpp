// Connection-manager churn: the checkpoint protocols continuously tear
// down and rebuild specific connections while application traffic keeps
// flowing, so the state machine has to survive disconnects racing half-open
// establishments, duplicate establishment attempts, and repeated churn.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace gbc::net {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

struct World {
  Engine eng;
  NetConfig cfg;
  Fabric fabric;
  explicit World(int n, NetConfig c = {}) : cfg(c), fabric(eng, cfg, n) {}
  ConnectionManager& cm() { return fabric.connections(); }
};

TEST(ConnectionChurn, DisconnectWaitsOutInFlightEstablishment) {
  World w(2);
  Time connected_at = -1;
  Time disconnected_at = -1;
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await w.cm().ensure_connected(0, 1);
    at = w.eng.now();
  }(w, connected_at));
  // Fired at t=0 too: observes kConnecting and must neither cancel the
  // establishment nor return early — it waits for kConnected, then drains
  // and tears down.
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await w.cm().disconnect(0, 1);
    at = w.eng.now();
  }(w, disconnected_at));
  w.eng.run();
  const Time setup = w.cfg.oob_exchange + w.cfg.qp_transition;
  EXPECT_EQ(connected_at, setup);
  // The teardown is preceded by the pre-teardown drain: one RPC round trip
  // per endpoint (4 bus floors).
  EXPECT_EQ(disconnected_at,
            setup + 4 * w.fabric.floor_hop() + w.cfg.teardown_cost);
  EXPECT_EQ(w.cm().state(0, 1), ConnState::kDisconnected);
  EXPECT_EQ(w.cm().total_setups(), 1);
  EXPECT_EQ(w.cm().total_teardowns(), 1);
}

TEST(ConnectionChurn, SimultaneousEstablishmentsPerformOneSetup) {
  World w(2);
  std::vector<Time> done;
  // Both endpoints race ensure_connected on the same pair (client/server
  // crossing): exactly one pays for the establishment, the other joins it.
  for (int i = 0; i < 2; ++i) {
    w.eng.spawn([](World& w, std::vector<Time>& done) -> Task<void> {
      co_await w.cm().ensure_connected(0, 1);
      done.push_back(w.eng.now());
    }(w, done));
  }
  w.eng.run();
  const Time setup = w.cfg.oob_exchange + w.cfg.qp_transition;
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], setup);
  EXPECT_EQ(done[1], setup);
  EXPECT_EQ(w.cm().total_setups(), 1);
  EXPECT_TRUE(w.cm().connected(0, 1));
}

TEST(ConnectionChurn, EstablishmentDuringTeardownReconnects) {
  World w(2);
  bool reconnected = false;
  w.eng.spawn([](World& w, bool& re) -> Task<void> {
    co_await w.cm().ensure_connected(0, 1);
    // Start the teardown, then immediately ask for the connection again:
    // the request must wait out kDraining and re-establish from scratch.
    sim::Task<void> disc = w.cm().disconnect(0, 1);
    w.eng.spawn(std::move(disc));
    co_await w.cm().ensure_connected(0, 1);
    re = true;
  }(w, reconnected));
  w.eng.run();
  EXPECT_TRUE(reconnected);
  EXPECT_TRUE(w.cm().connected(0, 1));
  EXPECT_EQ(w.cm().total_setups(), 2);
  EXPECT_EQ(w.cm().total_teardowns(), 1);
}

TEST(ConnectionChurn, ConnectedPeersTrackChurn) {
  World w(4);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await w.cm().ensure_connected(0, 1);
    co_await w.cm().ensure_connected(0, 2);
    co_await w.cm().ensure_connected(3, 0);  // order of endpoints irrelevant
    EXPECT_EQ(w.cm().connected_peers(0), (std::vector<int>{1, 2, 3}));
    co_await w.cm().disconnect(0, 2);
    EXPECT_EQ(w.cm().connected_peers(0), (std::vector<int>{1, 3}));
    co_await w.cm().ensure_connected(0, 2);  // rebuild after teardown
    co_await w.cm().disconnect(0, 3);
    EXPECT_EQ(w.cm().connected_peers(0), (std::vector<int>{1, 2}));
    EXPECT_EQ(w.cm().connected_peers(3), (std::vector<int>{}));
  }(w));
  w.eng.run();
  EXPECT_EQ(w.cm().established_count(), 2);
  EXPECT_EQ(w.cm().total_setups(), 4);
  EXPECT_EQ(w.cm().total_teardowns(), 2);
}

}  // namespace
}  // namespace gbc::net
