// Second wave of fabric tests: timing details, lock interactions, drains
// under cross traffic, accounting.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/storage.hpp"

namespace gbc::net {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

struct World {
  Engine eng;
  NetConfig cfg;
  Fabric fabric;
  explicit World(int n, NetConfig c = {}) : cfg(c), fabric(eng, cfg, n) {}
};

Task<void> connect(Fabric& f, int a, int b) {
  return f.connections().ensure_connected(a, b);
}

TEST(Fabric2, TransferTimeScalesLinearlyWithSize) {
  World w(2);
  std::vector<Time> arrivals;
  w.fabric.set_receiver(1, [&](Packet) { arrivals.push_back(w.eng.now()); });
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    const Time t0 = w.eng.now();
    w.fabric.transmit(Packet{0, 1, storage::mib(1), PacketKind::kRdmaData, 0,
                             nullptr});
    (void)t0;
  }(w));
  w.eng.run();
  ASSERT_EQ(arrivals.size(), 1u);
  const Time setup = w.cfg.oob_exchange + w.cfg.qp_transition;
  const double xfer_s = 1.0 / 1250.0;  // 1MiB at 1250 MB/s
  const Time expect = setup + w.cfg.per_message_overhead +
                      sim::from_seconds(xfer_s) + w.cfg.wire_latency;
  EXPECT_NEAR(static_cast<double>(arrivals[0]), static_cast<double>(expect),
              1e4);
}

TEST(Fabric2, LockDoesNotDisturbEstablishedConnections) {
  World w(2);
  bool got = false;
  w.fabric.set_receiver(1, [&](Packet) { got = true; });
  w.eng.spawn([](World& w, bool& g) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    // Locking an endpoint blocks *new establishment*, not existing traffic.
    w.fabric.connections().lock_endpoint(1);
    w.fabric.transmit(Packet{0, 1, 512, PacketKind::kEager, 0, nullptr});
    co_await w.fabric.connections().drain(0, 1);
    EXPECT_TRUE(g);
    w.fabric.connections().unlock_endpoint(1);
  }(w, got));
  w.eng.run();
  EXPECT_TRUE(got);
}

TEST(Fabric2, DrainOnIdleConnectionReturnsImmediately) {
  World w(2);
  Time drained_at = -1;
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    co_await w.fabric.connections().drain(0, 1);
    at = w.eng.now();
  }(w, drained_at));
  w.eng.run();
  // Idle drain still costs the two endpoint round trips (one RPC per side,
  // request + reply legs each): 4 bus floors on top of the setup.
  EXPECT_EQ(drained_at, w.cfg.oob_exchange + w.cfg.qp_transition +
                            4 * w.fabric.floor_hop());
}

TEST(Fabric2, ConcurrentDisconnectsResolveOnce) {
  World w(2);
  w.fabric.set_receiver(1, [](Packet) {});
  int done = 0;
  w.eng.spawn([](World& w, int& d) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    w.eng.spawn([](World& w2, int& d2) -> Task<void> {
      co_await w2.fabric.connections().disconnect(0, 1);
      ++d2;
    }(w, d));
    co_await w.fabric.connections().disconnect(0, 1);
    ++d;
  }(w, done));
  w.eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.fabric.connections().total_teardowns(), 1);
  EXPECT_EQ(w.fabric.connections().state(0, 1), ConnState::kDisconnected);
}

TEST(Fabric2, ReconnectRaceAfterDisconnectSettlesConnected) {
  World w(2);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    // Start a disconnect and immediately request reconnection.
    w.eng.spawn([](World& w2) -> Task<void> {
      co_await w2.fabric.connections().disconnect(0, 1);
    }(w));
    co_await w.fabric.connections().ensure_connected(0, 1);
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.connections().state(0, 1), ConnState::kConnected);
  EXPECT_EQ(w.fabric.connections().total_setups(), 2);
}

TEST(Fabric2, PacketCountAndByteAccounting) {
  World w(3);
  w.fabric.set_receiver(1, [](Packet) {});
  w.fabric.set_receiver(2, [](Packet) {});
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    co_await connect(w.fabric, 0, 2);
    w.fabric.transmit(Packet{0, 1, 100, PacketKind::kEager, 0, nullptr});
    w.fabric.transmit(Packet{0, 2, 200, PacketKind::kEager, 1, nullptr});
    w.fabric.transmit_control(Packet{0, 1, 50, PacketKind::kControl, 2,
                              nullptr});
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.packets_sent(), 3);
  EXPECT_EQ(w.fabric.bytes_sent(), 350);
  EXPECT_EQ(w.fabric.messages_between(0, 1), 1);  // control not counted
}

TEST(Fabric2, ManyPairsEstablishIndependently) {
  const int n = 16;
  World w(n);
  int established = 0;
  for (int r = 0; r < n; r += 2) {
    w.eng.spawn([](World& w, int a, int& c) -> Task<void> {
      co_await connect(w.fabric, a, a + 1);
      ++c;
    }(w, r, established));
  }
  w.eng.run();
  EXPECT_EQ(established, n / 2);
  EXPECT_EQ(w.fabric.connections().established_count(), n / 2);
  // All establishments overlap: total time = one setup, not n/2. The final
  // event is the endpoint-mirror update, one bus floor after the setup.
  EXPECT_EQ(w.eng.now(), w.cfg.oob_exchange + w.cfg.qp_transition +
                             w.fabric.floor_hop());
}

}  // namespace
}  // namespace gbc::net
