#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gbc::net {
namespace {

TEST(ParseTopology, AcceptsFlat) {
  const auto t = parse_topology("flat");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->flat());
  EXPECT_EQ(t->min_hops(), 0);
  EXPECT_EQ(topology_to_string(*t), "flat");
}

TEST(ParseTopology, AcceptsFatTree) {
  const auto t = parse_topology("fat-tree:32:2");
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->flat());
  EXPECT_EQ(t->radix, 32);
  EXPECT_DOUBLE_EQ(t->oversub, 2.0);
  EXPECT_EQ(t->min_hops(), 2);
  EXPECT_EQ(topology_to_string(*t), "fat-tree:32:2");
}

TEST(ParseTopology, AcceptsFractionalOversub) {
  const auto t = parse_topology("fat-tree:16:1.5");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->oversub, 1.5);
}

TEST(ParseTopology, RejectsMalformedInput) {
  EXPECT_FALSE(parse_topology("").has_value());
  EXPECT_FALSE(parse_topology("bogus").has_value());
  EXPECT_FALSE(parse_topology("fat-tree").has_value());
  EXPECT_FALSE(parse_topology("fat-tree:32").has_value());
  EXPECT_FALSE(parse_topology("fat-tree:32:2:9").has_value());
  EXPECT_FALSE(parse_topology("fat-tree:abc:2").has_value());
  EXPECT_FALSE(parse_topology("fat-tree:32:xyz").has_value());
  EXPECT_FALSE(parse_topology("fat-tree:1:2").has_value());     // radix < 2
  EXPECT_FALSE(parse_topology("fat-tree:32:0.5").has_value());  // oversub < 1
  EXPECT_FALSE(parse_topology("fat-tree:-8:2").has_value());
}

TEST(FatTree, LeafMembershipAndHops) {
  const auto spec = parse_topology("fat-tree:4:1");
  ASSERT_TRUE(spec.has_value());
  FatTree tree(*spec, 16);
  EXPECT_EQ(tree.nleaf(), 4);
  EXPECT_EQ(tree.nspine(), 4);  // radix / oversub
  EXPECT_EQ(tree.leaf_of(0), 0);
  EXPECT_EQ(tree.leaf_of(3), 0);
  EXPECT_EQ(tree.leaf_of(4), 1);
  EXPECT_TRUE(tree.same_leaf(0, 3));
  EXPECT_FALSE(tree.same_leaf(3, 4));
  EXPECT_EQ(tree.hops(0, 3), 2);   // within a leaf
  EXPECT_EQ(tree.hops(0, 15), 4);  // across leaves
}

TEST(FatTree, OversubShrinksSpine) {
  const auto spec = parse_topology("fat-tree:8:2");
  ASSERT_TRUE(spec.has_value());
  FatTree tree(*spec, 64);
  EXPECT_EQ(tree.nspine(), 4);
}

TEST(FatTree, EcmpIsDeterministicAndInRange) {
  const auto spec = parse_topology("fat-tree:8:1");
  ASSERT_TRUE(spec.has_value());
  FatTree tree(*spec, 64);
  std::set<int> used;
  for (int src = 0; src < 64; src += 7) {
    for (int dst = 0; dst < 64; dst += 5) {
      const int s = tree.spine_for(src, dst);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, tree.nspine());
      EXPECT_EQ(s, tree.spine_for(src, dst));  // stable per flow
      used.insert(s);
    }
  }
  // The hash should actually spread flows, not collapse onto one spine.
  EXPECT_GT(used.size(), 1u);
}

}  // namespace
}  // namespace gbc::net
