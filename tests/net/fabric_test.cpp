#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace gbc::net {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

struct World {
  Engine eng;
  NetConfig cfg;
  Fabric fabric;
  explicit World(int n, NetConfig c = {}) : cfg(c), fabric(eng, cfg, n) {}
};

Task<void> connect(Fabric& f, int a, int b) {
  return f.connections().ensure_connected(a, b);
}

TEST(ConnectionManager, EstablishTakesOobPlusQpTime) {
  World w(4);
  Time done_at = -1;
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    at = w.eng.now();
  }(w, done_at));
  w.eng.run();
  EXPECT_EQ(done_at, w.cfg.oob_exchange + w.cfg.qp_transition);
  EXPECT_EQ(w.fabric.connections().state(0, 1), ConnState::kConnected);
  EXPECT_EQ(w.fabric.connections().total_setups(), 1);
}

TEST(ConnectionManager, EnsureConnectedIsIdempotent) {
  World w(4);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    Time t = w.eng.now();
    co_await connect(w.fabric, 0, 1);
    EXPECT_EQ(w.eng.now(), t);  // second call is free
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.connections().total_setups(), 1);
}

TEST(ConnectionManager, ConcurrentEstablishersShareOneSetup) {
  World w(4);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    w.eng.spawn([](World& w, int& n) -> Task<void> {
      co_await connect(w.fabric, 2, 3);
      ++n;
    }(w, completed));
  }
  w.eng.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(w.fabric.connections().total_setups(), 1);
}

TEST(ConnectionManager, SymmetricKeyMeansEitherSideSeesSameConnection) {
  World w(4);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 1, 0);
  }(w));
  w.eng.run();
  EXPECT_TRUE(w.fabric.connections().connected(0, 1));
  EXPECT_TRUE(w.fabric.connections().connected(1, 0));
}

TEST(ConnectionManager, DisconnectTearsDownAndCounts) {
  World w(4);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    co_await w.fabric.connections().disconnect(0, 1);
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.connections().state(0, 1), ConnState::kDisconnected);
  EXPECT_EQ(w.fabric.connections().total_teardowns(), 1);
}

TEST(ConnectionManager, DisconnectOnDisconnectedIsNoop) {
  World w(4);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await w.fabric.connections().disconnect(0, 1);
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.connections().total_teardowns(), 0);
}

TEST(ConnectionManager, ReconnectAfterDisconnectWorks) {
  World w(4);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    co_await w.fabric.connections().disconnect(0, 1);
    co_await connect(w.fabric, 0, 1);
  }(w));
  w.eng.run();
  EXPECT_TRUE(w.fabric.connections().connected(0, 1));
  EXPECT_EQ(w.fabric.connections().total_setups(), 2);
}

TEST(ConnectionManager, LockedEndpointBlocksEstablishment) {
  World w(4);
  w.fabric.connections().lock_endpoint(1);
  Time done_at = -1;
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    at = w.eng.now();
  }(w, done_at));
  w.eng.schedule_at(sim::from_milliseconds(50),
                    [&] { w.fabric.connections().unlock_endpoint(1); });
  w.eng.run();
  EXPECT_EQ(done_at, sim::from_milliseconds(50) + w.cfg.oob_exchange +
                         w.cfg.qp_transition);
}

TEST(ConnectionManager, ConnectedPeersListsEstablishedNeighbours) {
  World w(5);
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 2, 0);
    co_await connect(w.fabric, 2, 4);
    co_await connect(w.fabric, 1, 3);
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.connections().connected_peers(2),
            (std::vector<int>{0, 4}));
  EXPECT_EQ(w.fabric.connections().established_count(), 3);
}

TEST(Fabric, EagerPacketArrivesAfterOverheadTransferAndLatency) {
  World w(2);
  Time arrived_at = -1;
  Bytes got = 0;
  w.fabric.set_receiver(1, [&](Packet p) {
    arrived_at = w.eng.now();
    got = p.bytes;
  });
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    w.fabric.transmit(
        Packet{0, 1, 1024, PacketKind::kEager, 7, nullptr});
  }(w));
  w.eng.run();
  const double bps = w.cfg.link_bandwidth_mbps * 1024.0 * 1024.0;
  const Time expect =
      w.cfg.oob_exchange + w.cfg.qp_transition + w.cfg.per_message_overhead +
      static_cast<Time>(1024.0 / bps * 1e9) + w.cfg.wire_latency;
  EXPECT_NEAR(static_cast<double>(arrived_at), static_cast<double>(expect), 2);
  EXPECT_EQ(got, 1024);
}

TEST(Fabric, NicSerializesBackToBackTransfers) {
  World w(2);
  std::vector<Time> arrivals;
  w.fabric.set_receiver(1, [&](Packet) { arrivals.push_back(w.eng.now()); });
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    for (int i = 0; i < 3; ++i) {
      w.fabric.transmit(Packet{0, 1, storage::mib(1), PacketKind::kRdmaData,
                               static_cast<std::uint64_t>(i), nullptr});
    }
  }(w));
  w.eng.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 1MiB transfer at 1250 MB/s takes 800us on the NIC; arrivals are
  // spaced by at least that.
  const Time gap = arrivals[1] - arrivals[0];
  EXPECT_NEAR(static_cast<double>(gap),
              1.0 / 1250.0 * 1e9 + static_cast<double>(w.cfg.per_message_overhead),
              1000.0);
  EXPECT_NEAR(static_cast<double>(arrivals[2] - arrivals[1]),
              static_cast<double>(gap), 1000.0);
}

TEST(Fabric, IndependentSendersDoNotSerializeWithEachOther) {
  World w(3);
  std::vector<Time> arrivals;
  w.fabric.set_receiver(2, [&](Packet) { arrivals.push_back(w.eng.now()); });
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 2);
    co_await connect(w.fabric, 1, 2);
    w.fabric.transmit(Packet{0, 2, storage::mib(8), PacketKind::kRdmaData, 0,
                             nullptr});
    w.fabric.transmit(Packet{1, 2, storage::mib(8), PacketKind::kRdmaData, 1,
                             nullptr});
  }(w));
  w.eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Different source NICs: both arrive ~simultaneously.
  EXPECT_LT(arrivals[1] - arrivals[0], sim::from_microseconds(10));
}

TEST(Fabric, DrainWaitsForInFlightPackets) {
  World w(2);
  w.fabric.set_receiver(1, [](Packet) {});
  Time drained_at = -1;
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    w.fabric.transmit(Packet{0, 1, storage::mib(4), PacketKind::kRdmaData, 0,
                             nullptr});
    Time sent = w.eng.now();
    co_await w.fabric.connections().drain(0, 1);
    at = w.eng.now();
    EXPECT_GT(at, sent);
  }(w, drained_at));
  w.eng.run();
  EXPECT_GT(drained_at, 0);
}

TEST(Fabric, DisconnectDrainsBeforeTeardown) {
  World w(2);
  Time delivered_at = -1;
  w.fabric.set_receiver(1, [&](Packet) { delivered_at = w.eng.now(); });
  Time disconnected_at = -1;
  w.eng.spawn([](World& w, Time& at) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    w.fabric.transmit(Packet{0, 1, storage::mib(16), PacketKind::kRdmaData, 0,
                             nullptr});
    co_await w.fabric.connections().disconnect(0, 1);
    at = w.eng.now();
  }(w, disconnected_at));
  w.eng.run();
  EXPECT_GT(delivered_at, 0);
  EXPECT_GE(disconnected_at, delivered_at + w.cfg.teardown_cost);
}

TEST(Fabric, ControlPlaneNeedsNoConnection) {
  World w(2);
  bool got = false;
  w.fabric.set_receiver(1, [&](Packet p) {
    got = p.kind == PacketKind::kControl;
  });
  w.fabric.transmit_control(Packet{0, 1, 64, PacketKind::kControl, 0, nullptr});
  w.eng.run();
  EXPECT_TRUE(got);
}

TEST(Fabric, TrafficMatrixIsSymmetricAndCountsDataPlaneOnly) {
  World w(3);
  w.fabric.set_receiver(1, [](Packet) {});
  w.fabric.set_receiver(2, [](Packet) {});
  w.eng.spawn([](World& w) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    w.fabric.transmit(Packet{0, 1, 1000, PacketKind::kEager, 0, nullptr});
    w.fabric.transmit(Packet{0, 1, 500, PacketKind::kEager, 1, nullptr});
    w.fabric.transmit_control(Packet{0, 2, 64, PacketKind::kControl, 2,
                              nullptr});
  }(w));
  w.eng.run();
  EXPECT_EQ(w.fabric.bytes_between(0, 1), 1500);
  EXPECT_EQ(w.fabric.bytes_between(1, 0), 1500);
  EXPECT_EQ(w.fabric.messages_between(0, 1), 2);
  EXPECT_EQ(w.fabric.bytes_between(0, 2), 0);  // control not counted
}

TEST(Fabric, PayloadBodyTravelsIntact) {
  World w(2);
  WireBody received;
  w.fabric.set_receiver(1, [&](Packet p) { received = std::move(p.body); });
  WireBody body = WireBody::make<std::vector<int>>(std::vector<int>{1, 2, 3});
  w.eng.spawn([](World& w, WireBody b) -> Task<void> {
    co_await connect(w.fabric, 0, 1);
    w.fabric.transmit(Packet{0, 1, 12, PacketKind::kEager, 0, std::move(b)});
  }(w, std::move(body)));
  w.eng.run();
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.get<std::vector<int>>(), (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace gbc::net
