#include "storage/tiers.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::storage {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

TierConfig tier_config() {
  TierConfig tc;
  tc.enabled = true;
  tc.local_write_mbps = 400.0;
  tc.local_read_mbps = 600.0;
  tc.drain_mbps = 50.0;
  tc.drain_chunk_mib = 16.0;
  return tc;
}

struct Fixture {
  Engine eng;
  StorageSystem pfs;
  TieredStore tier;
  Fixture(TierConfig tc, int nnodes)
      : pfs(eng, StorageConfig{}), tier(eng, pfs, tc, nnodes) {}
};

/// Runs `tier.snapshot(node, bytes)` to completion and returns (id, seconds).
std::pair<std::uint64_t, double> timed_snapshot(Fixture& f, int node,
                                                Bytes bytes) {
  std::uint64_t id = 0;
  Time done_at = -1;
  f.eng.spawn([](TieredStore& t, int n, Bytes b, Engine& e, std::uint64_t& out,
                 Time& at) -> Task<void> {
    out = co_await t.snapshot(n, b);
    at = e.now();
  }(f.tier, node, bytes, f.eng, id, done_at));
  f.eng.run();
  return {id, sim::to_seconds(done_at)};
}

TEST(TieredStore, LocalWriteTakesLocalBandwidthTime) {
  auto tc = tier_config();
  tc.drain_mbps = 0;  // isolate the foreground write
  Fixture f(tc, 4);
  auto [id, secs] = timed_snapshot(f, 0, mib(400));
  // 400 MiB at 400 MB/s = 1 s, far below any PFS write time.
  EXPECT_NEAR(secs, 1.0, 1e-6);
  const auto* img = f.tier.find(id);
  ASSERT_NE(img, nullptr);
  EXPECT_TRUE(TieredStore::local_available(*img));
  EXPECT_FALSE(TieredStore::pfs_durable(*img));
  EXPECT_EQ(f.tier.local_used(0), mib(400));
}

TEST(TieredStore, ConcurrentNodesDoNotContend) {
  auto tc = tier_config();
  tc.drain_mbps = 0;
  Fixture f(tc, 4);
  std::vector<Time> done(4, -1);
  for (int n = 0; n < 4; ++n) {
    f.eng.spawn([](TieredStore& t, int node, Engine& e,
                   Time& at) -> Task<void> {
      co_await t.snapshot(node, mib(400));
      at = e.now();
    }(f.tier, n, f.eng, done[n]));
  }
  f.eng.run();
  // Each node has its own disk: all four finish at the 1-client time.
  for (int n = 0; n < 4; ++n) {
    EXPECT_NEAR(sim::to_seconds(done[n]), 1.0, 1e-6) << "node " << n;
  }
}

TEST(TieredStore, SameNodeWritesSerializeOnTheLocalDisk) {
  auto tc = tier_config();
  tc.drain_mbps = 0;
  Fixture f(tc, 2);
  Time done = -1;
  for (int i = 0; i < 2; ++i) {
    f.eng.spawn([](TieredStore& t, Engine& e, Time& at) -> Task<void> {
      co_await t.snapshot(0, mib(400));
      at = e.now();
    }(f.tier, f.eng, done));
  }
  f.eng.run();
  EXPECT_NEAR(sim::to_seconds(done), 2.0, 1e-6);
}

TEST(TieredStore, DrainPacedByDrainRateWhenPfsIsFaster) {
  auto tc = tier_config();
  tc.drain_mbps = 16.0;  // well under the 108 MB/s single-client PFS share
  Fixture f(tc, 2);
  auto [id, write_secs] = timed_snapshot(f, 0, mib(64));
  (void)write_secs;
  Time drained_at = -1;
  f.eng.spawn([](TieredStore& t, Engine& e, Time& at) -> Task<void> {
    co_await t.quiesce();
    at = e.now();
  }(f.tier, f.eng, drained_at));
  f.eng.run();
  ASSERT_EQ(f.tier.images_drained(), 1);
  // 64 MiB at 16 MB/s = 4 s of draining after the 0.16 s local write.
  EXPECT_NEAR(sim::to_seconds(drained_at), 0.16 + 4.0, 0.05);
  EXPECT_TRUE(TieredStore::pfs_durable(*f.tier.find(id)));
}

TEST(TieredStore, DrainLimitedByPfsFairShareWhenRateIsHigher) {
  auto tc = tier_config();
  tc.drain_mbps = 10000.0;  // ask for more than the PFS can give
  Fixture f(tc, 2);
  timed_snapshot(f, 0, mib(108));
  Time drained_at = -1;
  f.eng.spawn([](TieredStore& t, Engine& e, Time& at) -> Task<void> {
    co_await t.quiesce();
    at = e.now();
  }(f.tier, f.eng, drained_at));
  f.eng.run();
  // 108 MiB through the PFS at the 108 MB/s single-client cap: ~1 s after
  // the local write, no faster no matter what drain rate was requested.
  EXPECT_NEAR(sim::to_seconds(drained_at), 0.27 + 1.0, 0.05);
}

TEST(TieredStore, CapacityEvictsOnlyDrainedImages) {
  auto tc = tier_config();
  tc.local_capacity_mib = 100.0;
  tc.drain_mbps = 50.0;
  Fixture f(tc, 2);
  auto [id1, s1] = timed_snapshot(f, 0, mib(64));
  // Let the first image finish draining (64 MiB / 50 MBps = 1.28 s).
  f.eng.spawn([](TieredStore& t) -> Task<void> { co_await t.quiesce(); }(
      f.tier));
  f.eng.run();
  ASSERT_TRUE(TieredStore::pfs_durable(*f.tier.find(id1)));
  // The second image needs the space: the drained one is evicted.
  auto [id2, s2] = timed_snapshot(f, 0, mib(64));
  EXPECT_TRUE(f.tier.find(id1)->evicted);
  EXPECT_FALSE(TieredStore::local_available(*f.tier.find(id1)));
  EXPECT_TRUE(TieredStore::local_available(*f.tier.find(id2)));
  EXPECT_EQ(f.tier.images_evicted(), 1);
  EXPECT_EQ(f.tier.local_used(0), mib(64));
}

TEST(TieredStore, FullOfUndrainedImagesWritesThroughToPfs) {
  auto tc = tier_config();
  tc.local_capacity_mib = 100.0;
  tc.drain_mbps = 0;  // nothing ever becomes evictable
  Fixture f(tc, 2);
  timed_snapshot(f, 0, mib(64));
  auto [id2, s2] = timed_snapshot(f, 0, mib(64));
  const auto* img2 = f.tier.find(id2);
  EXPECT_FALSE(img2->local);
  EXPECT_TRUE(TieredStore::pfs_durable(*img2));  // it went straight to PFS
  EXPECT_EQ(f.tier.write_throughs(), 1);
  // PFS write of 64 MiB at 108 MB/s is much slower than the local 0.16 s.
  EXPECT_GT(s2, 0.5);
}

TEST(TieredStore, ReplicationUsesInstalledTransport) {
  auto tc = tier_config();
  tc.drain_mbps = 0;
  tc.replicate = true;
  tc.replica_offset = 1;
  Fixture f(tc, 4);
  int calls = 0, got_src = -1, got_dst = -1;
  Bytes got_bytes = 0;
  f.tier.set_replica_transport(
      [&](int src, int dst, Bytes b) -> Task<void> {
        ++calls;
        got_src = src;
        got_dst = dst;
        got_bytes = b;
        co_await f.eng.delay(2 * sim::kSecond);
      });
  auto [id, secs] = timed_snapshot(f, 1, mib(64));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(got_src, 1);
  EXPECT_EQ(got_dst, 2);
  EXPECT_EQ(got_bytes, mib(64));
  const auto* img = f.tier.find(id);
  EXPECT_EQ(img->partner, 2);
  EXPECT_TRUE(TieredStore::replica_available(*img, /*failed_node=*/1));
  EXPECT_FALSE(TieredStore::replica_available(*img, /*failed_node=*/2));
  EXPECT_EQ(f.tier.replicas_made(), 1);
  // Snapshot completion waits for the replica: 0.16 s write + 2 s copy.
  EXPECT_NEAR(secs, 2.16, 0.01);
}

TEST(TieredStore, PauseStallsDrainUntilResume) {
  auto tc = tier_config();
  tc.drain_mbps = 64.0;
  tc.drain_chunk_mib = 64.0;  // single chunk: pause acts at the start
  Fixture f(tc, 2);
  f.tier.pause_drain(0);
  timed_snapshot(f, 0, mib(64));
  EXPECT_EQ(f.tier.images_drained(), 0);
  EXPECT_EQ(f.tier.drain_backlog(), 1);
  Time drained_at = -1;
  f.eng.spawn([](TieredStore& t, Engine& e, Time& at) -> Task<void> {
    co_await e.delay(10 * sim::kSecond);
    t.resume_drain(0);
    co_await t.quiesce();
    at = e.now();
  }(f.tier, f.eng, drained_at));
  f.eng.run();
  EXPECT_EQ(f.tier.images_drained(), 1);
  // Resume fires 10 s after the 0.16 s local write; drain then takes 1 s.
  EXPECT_NEAR(sim::to_seconds(drained_at), 11.16, 0.05);
}

TEST(TieredStore, QuiesceDrainsAllNodes) {
  auto tc = tier_config();
  tc.drain_mbps = 50.0;
  Fixture f(tc, 4);
  for (int n = 0; n < 4; ++n) timed_snapshot(f, n, mib(32));
  bool done = false;
  f.eng.spawn([](TieredStore& t, bool& d) -> Task<void> {
    co_await t.quiesce();
    d = true;
  }(f.tier, done));
  f.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.tier.images_drained(), 4);
  EXPECT_EQ(f.tier.drain_backlog(), 0);
  EXPECT_EQ(f.tier.drain_tasks_running(), 0);
}

}  // namespace
}  // namespace gbc::storage
