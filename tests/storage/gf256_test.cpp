// The GF(256) Reed-Solomon codec under the erasure tier is a real codec:
// these tests push actual bytes through encode/decode rather than trusting
// the cost model. The Cauchy construction promises any-m-erasure recovery,
// so the combinatorial tests enumerate every erasure pattern up to m.
#include "storage/gf256.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace gbc::storage::gf256 {
namespace {

/// Deterministic non-trivial payload (hits every byte value).
Chunk pattern_data(std::size_t n) {
  Chunk d(n);
  std::uint32_t x = 0x9e3779b9u;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    d[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return d;
}

/// Bitwise carry-less reference multiply mod 0x11d.
std::uint8_t slow_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0, aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1 << bit)) acc ^= aa << bit;
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1 << bit)) acc ^= 0x11d << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

TEST(Gf256Field, TableMulMatchesCarrylessReference) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                slow_mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256Field, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto u = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(u, inv(u)), 1) << a;
    EXPECT_EQ(div(u, u), 1) << a;
    EXPECT_EQ(mul(u, 1), u);
    EXPECT_EQ(mul(u, 0), 0);
  }
}

TEST(Gf256Matrix, InvertReturnsTheActualInverse) {
  // A 3x3 Cauchy-ish matrix (nonsingular by construction).
  std::vector<std::uint8_t> a;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      a.push_back(inv(static_cast<std::uint8_t>((3 + i) ^ j)));
    }
  }
  const auto orig = a;
  ASSERT_TRUE(invert_matrix(a, 3));
  // orig * a == identity.
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      std::uint8_t acc = 0;
      for (int t = 0; t < 3; ++t) {
        acc ^= mul(orig[static_cast<std::size_t>(r) * 3 + t],
                   a[static_cast<std::size_t>(t) * 3 + c]);
      }
      EXPECT_EQ(acc, r == c ? 1 : 0) << r << "," << c;
    }
  }
}

TEST(Gf256Matrix, SingularMatrixIsRejected) {
  // Row 2 = row 0 ^ row 1: rank 2.
  std::vector<std::uint8_t> a{1, 2, 3, 4, 5, 6, 1 ^ 4, 2 ^ 5, 3 ^ 6};
  EXPECT_FALSE(invert_matrix(a, 3));
  std::vector<std::uint8_t> zero(9, 0);
  EXPECT_FALSE(invert_matrix(zero, 3));
}

TEST(Gf256Codec, SplitJoinRoundTripsWithTailPadding) {
  const Chunk data = pattern_data(1003);  // not divisible by k
  const auto chunks = split(data, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), 251u);  // ceil(1003/4)
  EXPECT_EQ(join(chunks, data.size()), data);
}

TEST(Gf256Codec, SystematicEncodePassesDataThrough) {
  const auto c = make_codec(4, 2);
  const auto data = split(pattern_data(512), 4);
  const auto stripe = encode(c, data);
  ASSERT_EQ(stripe.size(), 6u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(stripe[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)])
        << "data chunk " << i;
  }
}

TEST(Gf256Codec, DecodesEveryErasurePatternUpToM) {
  const int k = 4, m = 2;
  const auto c = make_codec(k, m);
  const Chunk original = pattern_data(777);
  const auto stripe = encode(c, split(original, k));
  // Every subset of <= m chunks erased (all singles and all pairs).
  for (int i = 0; i < k + m; ++i) {
    for (int j = i; j < k + m; ++j) {
      auto damaged = stripe;
      damaged[static_cast<std::size_t>(i)].clear();
      damaged[static_cast<std::size_t>(j)].clear();  // j == i: single erasure
      std::vector<Chunk> out;
      ASSERT_TRUE(decode(c, damaged, &out)) << "erased " << i << "," << j;
      EXPECT_EQ(join(out, original.size()), original)
          << "erased " << i << "," << j;
    }
  }
}

TEST(Gf256Codec, WideGeometryDecodesTripleErasures) {
  const int k = 8, m = 3;
  const auto c = make_codec(k, m);
  const Chunk original = pattern_data(4096);
  const auto stripe = encode(c, split(original, k));
  for (int i = 0; i < k + m; ++i) {
    for (int j = i + 1; j < k + m; ++j) {
      for (int l = j + 1; l < k + m; ++l) {
        auto damaged = stripe;
        damaged[static_cast<std::size_t>(i)].clear();
        damaged[static_cast<std::size_t>(j)].clear();
        damaged[static_cast<std::size_t>(l)].clear();
        std::vector<Chunk> out;
        ASSERT_TRUE(decode(c, damaged, &out))
            << "erased " << i << "," << j << "," << l;
        ASSERT_EQ(join(out, original.size()), original)
            << "erased " << i << "," << j << "," << l;
      }
    }
  }
}

TEST(Gf256Codec, MorePlusOneErasuresAreUnrecoverable) {
  const auto c = make_codec(4, 2);
  auto stripe = encode(c, split(pattern_data(256), 4));
  stripe[0].clear();
  stripe[2].clear();
  stripe[5].clear();  // 3 erasures > m = 2
  std::vector<Chunk> out;
  EXPECT_FALSE(decode(c, stripe, &out));
}

TEST(Gf256Codec, DegenerateGeneratorSubmatrixIsRejected) {
  // Hand-built broken codec: the parity row duplicates data row 0, so the
  // survivor set {row 0, row 2} after erasing chunk 1 is singular. decode()
  // must report failure, not fabricate data.
  Codec broken;
  broken.k = 2;
  broken.m = 1;
  broken.rows = {1, 0, 0, 1, 1, 0};  // [I2; duplicate of row 0]
  auto stripe = encode(broken, split(pattern_data(64), 2));
  stripe[1].clear();
  std::vector<Chunk> out;
  EXPECT_FALSE(decode(broken, stripe, &out));
}

}  // namespace
}  // namespace gbc::storage::gf256
