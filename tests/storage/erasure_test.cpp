// Erasure tier unit tests: config validation, parity-group placement
// policy, the encode/decode cost model, the protect() scatter, and the
// decodability predicate the recovery path queries through the ledger.
#include "storage/erasure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"
#include "storage/tiers.hpp"

namespace gbc::storage {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

ErasureConfig rs42() {
  ErasureConfig cfg;
  cfg.enabled = true;
  cfg.k = 4;
  cfg.m = 2;
  return cfg;
}

TEST(ErasureValidate, RejectsUnusableConfigs) {
  Engine eng;
  auto bad_k = rs42();
  bad_k.k = 0;
  EXPECT_THROW(ErasureTier(eng, bad_k, 16, 1), std::invalid_argument);
  auto bad_m = rs42();
  bad_m.m = -1;
  EXPECT_THROW(ErasureTier(eng, bad_m, 16, 1), std::invalid_argument);
  auto bad_stride = rs42();
  bad_stride.group_stride = 0;
  EXPECT_THROW(ErasureTier(eng, bad_stride, 16, 1), std::invalid_argument);
  auto bad_xor = rs42();
  bad_xor.codec = ErasureCodec::kXor;  // m == 2: xor cannot cover it
  EXPECT_THROW(ErasureTier(eng, bad_xor, 16, 1), std::invalid_argument);
  auto too_wide = rs42();
  too_wide.k = 200;
  too_wide.m = 100;  // k+m > 256 GF symbols
  EXPECT_THROW(ErasureTier(eng, too_wide, 512, 1), std::invalid_argument);
  // k+m = 6 needs 7 nodes (home node excluded): 6 nodes must be rejected,
  // 7 accepted.
  EXPECT_THROW(ErasureTier(eng, rs42(), 6, 1), std::invalid_argument);
  EXPECT_NO_THROW(ErasureTier(eng, rs42(), 7, 1));
}

TEST(ErasurePlacement, GroupExcludesHomeNodeAndReplicaPartner) {
  Engine eng;
  ErasureTier tier(eng, rs42(), 16, /*replica_offset=*/1);
  for (int node = 0; node < 16; ++node) {
    const auto group = tier.parity_group(node);
    ASSERT_EQ(group.size(), 6u) << "node " << node;
    const std::set<int> uniq(group.begin(), group.end());
    EXPECT_EQ(uniq.size(), group.size()) << "node " << node;
    EXPECT_EQ(uniq.count(node), 0u) << "home node in its own group";
    EXPECT_EQ(uniq.count((node + 1) % 16), 0u)
        << "replica partner holds a chunk for node " << node;
    for (int holder : group) {
      EXPECT_GE(holder, 0);
      EXPECT_LT(holder, 16);
    }
  }
}

TEST(ErasurePlacement, PartnerAdmittedOnlyWhenClusterTooSmall) {
  Engine eng;
  // 7 nodes, k+m = 6: the group needs every node but the home one, so the
  // partner must be admitted (second pass).
  ErasureTier tight(eng, rs42(), 7, 1);
  const auto group = tight.parity_group(0);
  ASSERT_EQ(group.size(), 6u);
  EXPECT_NE(std::find(group.begin(), group.end(), 1), group.end());
  // 8 nodes: one node of slack — the partner is skipped again.
  ErasureTier loose(eng, rs42(), 8, 1);
  const auto group8 = loose.parity_group(0);
  ASSERT_EQ(group8.size(), 6u);
  EXPECT_EQ(std::find(group8.begin(), group8.end(), 1), group8.end());
}

TEST(ErasurePlacement, NonCoprimeStrideStillFillsTheGroup) {
  Engine eng;
  auto cfg = rs42();
  cfg.group_stride = 4;  // gcd(4, 16) = 4: the stride ring alone only
                         // reaches 3 other nodes; the linear sweep must
                         // supply the rest.
  ErasureTier tier(eng, cfg, 16, 1);
  const auto group = tier.parity_group(0);
  ASSERT_EQ(group.size(), 6u);
  const std::set<int> uniq(group.begin(), group.end());
  EXPECT_EQ(uniq.size(), 6u);
  EXPECT_EQ(uniq.count(0), 0u);
  // The stride ring members come first (failure-domain spreading).
  EXPECT_EQ(group[0], 4);
  EXPECT_EQ(group[1], 8);
  EXPECT_EQ(group[2], 12);
}

TEST(ErasureCost, EncodeTimeFollowsTheCodecModel) {
  auto cfg = rs42();
  // RS: one full-image pass per parity chunk. 64 MiB * 2 / 2400 MB/s.
  EXPECT_NEAR(sim::to_seconds(ErasureTier::encode_time(cfg, mib(64))),
              128.0 / 2400.0, 1e-6);
  cfg.m = 1;
  cfg.codec = ErasureCodec::kXor;
  // XOR: one pass at xor_mbps regardless of image split.
  EXPECT_NEAR(sim::to_seconds(ErasureTier::encode_time(cfg, mib(64))),
              64.0 / 4000.0, 1e-6);
}

TEST(ErasureCost, DecodeFreeWithoutDataErasuresPricedDegraded) {
  const auto cfg = rs42();
  EXPECT_EQ(ErasureTier::decode_time(cfg, mib(64), 0), 0);
  EXPECT_EQ(ErasureTier::decode_time(cfg, mib(64), -3), 0);
  // Degraded read: rebuilt bytes = chunk * erasures * k, plus the ~k^3
  // GF-op inversion. chunk = 16 MiB, 2 erasures -> 128 MiB at 1600 MB/s.
  const double invert_s = 4.0 * 4.0 * 4.0 * cfg.invert_ns_per_gf_op * 1e-9;
  EXPECT_NEAR(sim::to_seconds(ErasureTier::decode_time(cfg, mib(64), 2)),
              128.0 / 1600.0 + invert_s, 1e-6);
  // Strictly monotonic in the number of erased data chunks.
  EXPECT_LT(ErasureTier::decode_time(cfg, mib(64), 1),
            ErasureTier::decode_time(cfg, mib(64), 2));
}

TEST(ErasureProtect, ScattersOneChunkToEachGroupMember) {
  Engine eng;
  ErasureTier tier(eng, rs42(), 16, 1);
  ErasureChunks ec;
  std::vector<std::pair<int, int>> sends;  // (src, dst)
  Bytes sent_bytes = 0;
  const ErasureTier::Transport transport = [&](int src, int dst,
                                               Bytes b) -> Task<void> {
    sends.emplace_back(src, dst);
    sent_bytes += b;
    co_await eng.delay(sim::kSecond);
  };
  eng.spawn([](Engine& e, ErasureTier& t, ErasureChunks& out,
               const ErasureTier::Transport& tr) -> Task<void> {
    co_await t.protect(e, 5, mib(64), 1, &out, tr, 1250.0);
  }(eng, tier, ec, transport));
  eng.run();

  ASSERT_TRUE(ec.active());
  EXPECT_EQ(ec.k, 4);
  EXPECT_EQ(ec.m, 2);
  EXPECT_EQ(ec.chunk_bytes, mib(16));
  EXPECT_EQ(ec.nodes, tier.parity_group(5));
  ASSERT_EQ(sends.size(), 6u);
  for (std::size_t c = 0; c < sends.size(); ++c) {
    EXPECT_EQ(sends[c].first, 5);
    EXPECT_EQ(sends[c].second, ec.nodes[c]);
    EXPECT_GE(ec.done_at[c], 0);
  }
  EXPECT_EQ(sent_bytes, 6 * mib(16));
  // Encode happens first, then the 1 s scatters run in parallel.
  const auto encode = tier.encode_time(mib(64));
  EXPECT_EQ(ec.encoded_at, encode + sim::kSecond);
  EXPECT_EQ(tier.images_encoded(), 1);
  EXPECT_EQ(tier.chunks_placed(), 6);
  EXPECT_EQ(tier.chunk_bytes_sent(), 6 * mib(16));
}

TEST(ErasureLedger, DecodableWhileAtLeastKChunksSurvive) {
  Engine eng;
  StorageSystem pfs(eng, StorageConfig{});
  TierConfig tc;
  tc.enabled = true;
  tc.drain_mbps = 0;
  tc.erasure = rs42();
  TieredStore store(eng, pfs, tc, 16);
  ASSERT_NE(store.erasure(), nullptr);
  std::uint64_t id = 0;
  eng.spawn([](TieredStore& t, std::uint64_t& out) -> Task<void> {
    out = co_await t.snapshot(1, mib(64));
  }(store, id));
  eng.run();
  const auto* img = store.find(id);
  ASSERT_NE(img, nullptr);
  ASSERT_TRUE(img->ec.active());
  EXPECT_GE(img->ec.encoded_at, 0);

  std::vector<char> failed(16, 0);
  EXPECT_TRUE(TieredStore::erasure_decodable(*img, failed));
  // Losing any m = 2 chunk holders still leaves k = 4 survivors...
  failed[static_cast<std::size_t>(img->ec.nodes[0])] = 1;
  failed[static_cast<std::size_t>(img->ec.nodes[3])] = 1;
  EXPECT_TRUE(TieredStore::erasure_decodable(*img, failed));
  // ...the home node dying changes nothing (it holds no chunk)...
  failed[1] = 1;
  EXPECT_TRUE(TieredStore::erasure_decodable(*img, failed));
  // ...but a third chunk loss drops the stripe below k.
  failed[static_cast<std::size_t>(img->ec.nodes[5])] = 1;
  EXPECT_FALSE(TieredStore::erasure_decodable(*img, failed));

  // Replica predicate stays consistent across both overloads.
  EXPECT_FALSE(TieredStore::replica_available(*img, failed));
  EXPECT_FALSE(TieredStore::replica_available(*img, /*failed_node=*/2));
}

TEST(ErasureLedger, DisabledErasureLeavesImagesUnprotected) {
  Engine eng;
  StorageSystem pfs(eng, StorageConfig{});
  TierConfig tc;
  tc.enabled = true;
  tc.drain_mbps = 0;
  TieredStore store(eng, pfs, tc, 16);
  EXPECT_EQ(store.erasure(), nullptr);
  std::uint64_t id = 0;
  eng.spawn([](TieredStore& t, std::uint64_t& out) -> Task<void> {
    out = co_await t.snapshot(0, mib(64));
  }(store, id));
  eng.run();
  const auto* img = store.find(id);
  ASSERT_NE(img, nullptr);
  EXPECT_FALSE(img->ec.active());
  EXPECT_FALSE(TieredStore::erasure_decodable(*img, std::vector<char>(16, 0)));
  EXPECT_EQ(store.images_encoded(), 0);
  EXPECT_EQ(store.ec_chunks_placed(), 0);
}

}  // namespace
}  // namespace gbc::storage
