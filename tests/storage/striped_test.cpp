// Tests of the striped (per-server, max-min fair) storage model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/storage.hpp"

namespace gbc::storage {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

// An idealized config for exact arithmetic: 2 servers x 70 MB/s, no client
// cap interference, no congestion.
StorageConfig two_server_cfg(int stripe) {
  StorageConfig c;
  c.num_servers = 2;
  c.aggregate_cap_mbps = 140.0;
  c.per_client_cap_mbps = 1000.0;  // effectively unlimited client side
  c.congestion_alpha = 0.0;
  c.read_factor = 1.0;
  c.stripe_count = stripe;
  return c;
}

Time run_writers(StorageConfig cfg, const std::vector<Bytes>& sizes,
                 std::vector<Time>* done_at = nullptr) {
  Engine eng;
  StorageSystem fs(eng, cfg);
  std::vector<Time> done(sizes.size(), -1);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    eng.spawn([](StorageSystem& s, Bytes b, Engine& e,
                 Time& at) -> Task<void> {
      co_await s.write(b);
      at = e.now();
    }(fs, sizes[i], eng, done[i]));
  }
  eng.run();
  if (done_at) *done_at = done;
  return eng.now();
}

TEST(StripedStorage, SingleFlowLimitedToItsStripeServers) {
  // stripe_count=1: one file sits on one 70 MB/s server.
  std::vector<Time> done;
  run_writers(two_server_cfg(1), {mib(70)}, &done);
  EXPECT_NEAR(sim::to_seconds(done[0]), 1.0, 1e-3);
}

TEST(StripedStorage, PooledModelWouldUseEverything) {
  // stripe_count=0 (pooled): the same single flow sees the client cap or
  // the aggregate, whichever is lower.
  StorageConfig cfg = two_server_cfg(0);
  cfg.per_client_cap_mbps = 140.0;
  std::vector<Time> done;
  run_writers(cfg, {mib(70)}, &done);
  EXPECT_NEAR(sim::to_seconds(done[0]), 0.5, 1e-3);
}

TEST(StripedStorage, RoundRobinPlacementBalancesTwoFlows) {
  // Two single-stripe files land on different servers: no contention.
  std::vector<Time> done;
  run_writers(two_server_cfg(1), {mib(70), mib(70)}, &done);
  EXPECT_NEAR(sim::to_seconds(done[0]), 1.0, 1e-3);
  EXPECT_NEAR(sim::to_seconds(done[1]), 1.0, 1e-3);
}

TEST(StripedStorage, HotspotFormsWhenThreeFlowsHitTwoServers) {
  // Flows 0 and 2 share server 0 (round-robin), flow 1 has server 1 alone.
  std::vector<Time> done;
  run_writers(two_server_cfg(1), {mib(35), mib(35), mib(35)}, &done);
  EXPECT_NEAR(sim::to_seconds(done[1]), 0.5, 1e-2);   // alone at 70 MB/s
  EXPECT_NEAR(sim::to_seconds(done[0]), 1.0, 1e-2);   // shares server 0
  EXPECT_NEAR(sim::to_seconds(done[2]), 1.0, 1e-2);
}

TEST(StripedStorage, MaxMinAllocationMatchesWaterfilling) {
  // Flow A stripes over {s0} (35 MB), flow B over {s0, s1} (70 MB).
  // Progressive filling: both rise together; server 0 saturates when
  // rA + rB/2 = 70 => rA = rB = 46.67 MB/s. A finishes 35MB at t=0.75s;
  // then B alone: remaining = 70 - 46.67*0.75 = 35 MB at min(2*70, cap)...
  // B's stripe rate after A leaves: limited by s0+s1 = 70+... B gets
  // 70 (s0 free: B/2 <= 70 per server => rB = 140, client cap 1000) so
  // B finishes at 0.75 + 35/140 = 1.0s.
  StorageConfig cfg = two_server_cfg(2);
  cfg.stripe_count = 1;  // flow A: server 0
  Engine eng;
  StorageSystem fs(eng, cfg);
  Time a_done = -1, b_done = -1;
  // Manually control stripe sets via ordering: first write gets {s0},
  // second would get {s1} by round robin — so instead use stripe_count=1
  // for A and simulate B's two-server stripe with cfg.stripe_count... the
  // public API assigns stripes round-robin, so craft it with three flows:
  // A={s0}, B={s1}, C={s0}: server 0 shared by A and C, B alone.
  std::vector<Time> done;
  run_writers(cfg, {mib(70), mib(35), mib(70)}, &done);
  a_done = done[0];
  b_done = done[1];
  // B (server 1, alone): 35MB at 70MB/s = 0.5s.
  EXPECT_NEAR(sim::to_seconds(b_done), 0.5, 1e-2);
  // A and C share server 0 at 35 each until done: 70MB at 35 = 2.0s.
  EXPECT_NEAR(sim::to_seconds(a_done), 2.0, 1e-2);
  EXPECT_NEAR(sim::to_seconds(done[2]), 2.0, 1e-2);
}

TEST(StripedStorage, ClientCapStillBindsStripedFlows) {
  StorageConfig cfg = two_server_cfg(2);
  cfg.stripe_count = 2;   // full striping
  cfg.per_client_cap_mbps = 20.0;  // client side is the bottleneck
  std::vector<Time> done;
  run_writers(cfg, {mib(20)}, &done);
  // stripe_count == num_servers falls back to the pooled model, where the
  // client cap binds: 20MB at 20MB/s = 1s.
  EXPECT_NEAR(sim::to_seconds(done[0]), 1.0, 1e-2);
}

TEST(StripedStorage, StripedAndPooledAgreeUnderSymmetricLoad) {
  // Many equal flows striped 1-each over 4 servers round-robin behave like
  // the pooled model when the load divides evenly.
  StorageConfig pooled;          // defaults: 4 servers, pooled
  pooled.per_client_cap_mbps = 1000.0;
  pooled.congestion_alpha = 0.0;
  StorageConfig striped = pooled;
  striped.stripe_count = 1;
  std::vector<Bytes> sizes(8, mib(35));
  const Time a = run_writers(pooled, sizes);
  const Time b = run_writers(striped, sizes);
  EXPECT_NEAR(sim::to_seconds(a), sim::to_seconds(b), 0.05);
}

TEST(StripedStorage, LateArrivalTriggersReallocation) {
  StorageConfig cfg = two_server_cfg(1);
  Engine eng;
  StorageSystem fs(eng, cfg);
  Time first_done = -1;
  eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
    co_await s.write(mib(140));  // alone on server 0 at 70: 2s
    at = e.now();
  }(fs, eng, first_done));
  // At t=1s a second flow lands on server 1 (round robin): no impact.
  eng.schedule_at(sim::from_seconds(1), [&] {
    eng.spawn([](StorageSystem& s) -> Task<void> {
      co_await s.write(mib(35));
    }(fs));
  });
  eng.run();
  EXPECT_NEAR(sim::to_seconds(first_done), 2.0, 1e-2);
}

}  // namespace
}  // namespace gbc::storage
