#include "storage/storage.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::storage {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

StorageConfig icpp07_config() { return StorageConfig{}; }

double seconds_to_write(Engine& eng, StorageSystem& fs, Bytes size) {
  Time done_at = -1;
  eng.spawn([](StorageSystem& s, Bytes sz, Engine& e, Time& at) -> Task<void> {
    co_await s.write(sz);
    at = e.now();
  }(fs, size, eng, done_at));
  eng.run();
  return sim::to_seconds(done_at);
}

TEST(StorageConfig, SingleClientLimitedByClientCap) {
  auto cfg = icpp07_config();
  EXPECT_DOUBLE_EQ(cfg.aggregate_mbps(1), 108.0);
  EXPECT_DOUBLE_EQ(cfg.per_client_mbps(1), 108.0);
}

TEST(StorageConfig, AggregateSaturatesAtServerCap) {
  auto cfg = icpp07_config();
  EXPECT_DOUBLE_EQ(cfg.aggregate_mbps(2), 140.0);
  EXPECT_DOUBLE_EQ(cfg.aggregate_mbps(4), 140.0);
}

TEST(StorageConfig, PerClientShareFallsHyperbolically) {
  auto cfg = icpp07_config();
  double prev = cfg.per_client_mbps(1);
  for (int n = 2; n <= 32; n *= 2) {
    double cur = cfg.per_client_mbps(n);
    EXPECT_LT(cur, prev) << "n=" << n;
    prev = cur;
  }
  // 32 clients on ~140 MB/s: each gets only a few MB/s (paper: ~4.38).
  EXPECT_NEAR(cfg.per_client_mbps(32), 4.14, 0.3);
}

TEST(StorageConfig, CongestionDroopsAggregateBeyondKnee) {
  auto cfg = icpp07_config();
  EXPECT_GT(cfg.aggregate_mbps(4), cfg.aggregate_mbps(32));
  EXPECT_GT(cfg.aggregate_mbps(32), 0.9 * cfg.aggregate_cap_mbps);
}

TEST(StorageConfig, ZeroClientsZeroThroughput) {
  auto cfg = icpp07_config();
  EXPECT_DOUBLE_EQ(cfg.aggregate_mbps(0), 0.0);
  EXPECT_DOUBLE_EQ(cfg.per_client_mbps(0), 0.0);
}

TEST(StorageSystem, SingleWriteTakesSizeOverClientCap) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  // 108 MB at 108 MB/s = 1 second.
  EXPECT_NEAR(seconds_to_write(eng, fs, mib(108)), 1.0, 1e-6);
}

TEST(StorageSystem, ZeroByteWriteIsInstant) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  EXPECT_NEAR(seconds_to_write(eng, fs, 0), 0.0, 1e-12);
}

TEST(StorageSystem, TwoConcurrentWritersShareAggregate) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  std::vector<Time> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
      co_await s.write(mib(140));
      at = e.now();
    }(fs, eng, done[i]));
  }
  eng.run();
  // Two writers share 140 MB/s -> 70 each -> 140MB takes 2s.
  EXPECT_NEAR(sim::to_seconds(done[0]), 2.0, 1e-6);
  EXPECT_NEAR(sim::to_seconds(done[1]), 2.0, 1e-6);
}

TEST(StorageSystem, NWritersObserveNearLinearSlowdown) {
  for (int n : {4, 8, 16}) {
    Engine eng;
    StorageSystem fs(eng, icpp07_config());
    std::vector<Time> done(n, -1);
    for (int i = 0; i < n; ++i) {
      eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
        co_await s.write(mib(35));
        at = e.now();
      }(fs, eng, done[i]));
    }
    eng.run();
    const double expect =
        35.0 * n / icpp07_config().aggregate_mbps(n);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(sim::to_seconds(done[i]), expect, 0.01) << "n=" << n;
    }
  }
}

TEST(StorageSystem, LateArrivalSlowsExistingFlow) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  Time first_done = -1, second_done = -1;
  eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
    co_await s.write(mib(108));  // alone: 1s
    at = e.now();
  }(fs, eng, first_done));
  eng.schedule_at(sim::from_seconds(0.5), [&] {
    eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
      co_await s.write(mib(70));
      at = e.now();
    }(fs, eng, second_done));
  });
  eng.run();
  // First: 54MB alone in 0.5s, then 54MB at 70MB/s -> 0.5 + 0.7714...
  EXPECT_NEAR(sim::to_seconds(first_done), 0.5 + 54.0 / 70.0, 1e-4);
  // Second: 70MB total; shares 70MB/s until first leaves, then alone.
  EXPECT_GT(second_done, first_done);
}

TEST(StorageSystem, DepartureSpeedsUpRemainingFlow) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  Time small_done = -1, big_done = -1;
  eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
    co_await s.write(mib(70));
    at = e.now();
  }(fs, eng, small_done));
  eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
    co_await s.write(mib(140));
    at = e.now();
  }(fs, eng, big_done));
  eng.run();
  // Phase 1: both at 70 MB/s; small finishes at 1s. Phase 2: big alone at
  // 108 MB/s with 70MB left -> 1 + 70/108.
  EXPECT_NEAR(sim::to_seconds(small_done), 1.0, 1e-4);
  EXPECT_NEAR(sim::to_seconds(big_done), 1.0 + 70.0 / 108.0, 1e-4);
}

TEST(StorageSystem, ReadsBenefitFromReadFactor) {
  Engine eng;
  auto cfg = icpp07_config();
  StorageSystem fs(eng, cfg);
  Time done_at = -1;
  eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
    co_await s.read(mib(108));
    at = e.now();
  }(fs, eng, done_at));
  eng.run();
  EXPECT_NEAR(sim::to_seconds(done_at), 1.0 / cfg.read_factor, 1e-4);
}

TEST(StorageSystem, StatsTrackConcurrencyAndVolume) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](StorageSystem& s) -> Task<void> {
      co_await s.write(mib(10));
    }(fs));
  }
  eng.run();
  EXPECT_EQ(fs.peak_concurrency(), 3);
  EXPECT_EQ(fs.completed_flows(), 3);
  EXPECT_EQ(fs.bytes_transferred(), 3 * mib(10));
  EXPECT_EQ(fs.active_flows(), 0);
}

TEST(StorageSystem, BusyTimeExcludesIdleGaps) {
  Engine eng;
  StorageSystem fs(eng, icpp07_config());
  eng.spawn([](StorageSystem& s) -> Task<void> {
    co_await s.write(mib(108));  // 1s busy
  }(fs));
  eng.schedule_at(sim::from_seconds(5), [&] {
    eng.spawn([](StorageSystem& s) -> Task<void> {
      co_await s.write(mib(108));  // another 1s busy
    }(fs));
  });
  eng.run();
  EXPECT_NEAR(sim::to_seconds(fs.busy_time()), 2.0, 1e-3);
  EXPECT_NEAR(sim::to_seconds(eng.now()), 6.0, 1e-3);
}

TEST(StorageSystem, StaggeredGroupsBeatSimultaneousWrites) {
  // The core storage-bottleneck arithmetic behind the paper: 32 writers of
  // 180MB at once each wait ~32*180/agg; in 8 groups of 4 each writer waits
  // only ~4*180/agg (groups run back-to-back).
  auto cfg = icpp07_config();
  double all_at_once, grouped_individual;
  {
    Engine eng;
    StorageSystem fs(eng, cfg);
    std::vector<Time> done(32, -1);
    for (int i = 0; i < 32; ++i) {
      eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
        co_await s.write(mib(180));
        at = e.now();
      }(fs, eng, done[i]));
    }
    eng.run();
    all_at_once = sim::to_seconds(done[0]);
  }
  {
    Engine eng;
    StorageSystem fs(eng, cfg);
    Time individual = -1;
    eng.spawn([](StorageSystem& s, Engine& e, Time& at) -> Task<void> {
      // 8 sequential waves of 4 writers each.
      for (int wave = 0; wave < 8; ++wave) {
        Time start = e.now();
        int remaining = 4;
        sim::Condition cv(e);
        for (int i = 0; i < 4; ++i) {
          e.spawn([](StorageSystem& ss, int& rem,
                     sim::Condition& c) -> Task<void> {
            co_await ss.write(mib(180));
            if (--rem == 0) c.notify_all();
          }(s, remaining, cv));
        }
        co_await cv.wait_until([&remaining] { return remaining == 0; });
        if (wave == 0) at = e.now() - start;
      }
    }(fs, eng, individual));
    eng.run();
    grouped_individual = sim::to_seconds(individual);
  }
  EXPECT_GT(all_at_once, 40.0);           // ~32*180/140 = 41.1s
  EXPECT_LT(grouped_individual, 6.0);     // ~4*180/140 = 5.1s
  EXPECT_GT(all_at_once / grouped_individual, 6.0);
}

}  // namespace
}  // namespace gbc::storage
