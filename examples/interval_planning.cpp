// Interval planning: how often should this job checkpoint? Compares Young's
// analytic estimate with end-to-end simulated time-to-solution under
// deterministic Poisson failures, for both the regular and the group-based
// protocol — showing how cheaper checkpoints shift the optimum.
//
// Run: ./build/examples/interval_planning [mtbf_seconds]
#include <cstdio>
#include <cstdlib>

#include "harness/interval.hpp"
#include "workloads/microbench.hpp"

using namespace gbc;

int main(int argc, char** argv) {
  const double mtbf = argc > 1 ? std::atof(argv[1]) : 150.0;
  harness::ClusterPreset cluster = harness::icpp07_cluster();
  workloads::CommGroupBenchConfig app;
  app.comm_group_size = 4;
  app.iterations = 4000;  // ~7 minutes of work
  harness::WorkloadFactory factory = [app](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, app);
  };
  harness::FailureModel fm;
  fm.mtbf_seconds = mtbf;
  fm.seed = 3;

  std::printf("MTBF = %.0f s. Young's optimal interval ~ sqrt(2*C*MTBF):\n",
              mtbf);
  std::printf("  blocking    (C ~ 43 s): %6.0f s\n",
              harness::young_interval_seconds(43.0, mtbf));
  std::printf("  group-based (C ~ 10 s): %6.0f s\n\n",
              harness::young_interval_seconds(10.0, mtbf));

  std::printf("%-16s %10s %14s %10s\n", "protocol", "interval", "tts (s)",
              "failures");
  for (auto protocol : {ckpt::Protocol::kBlockingCoordinated,
                        ckpt::Protocol::kGroupBased}) {
    for (double interval : {45.0, 90.0, 180.0}) {
      ckpt::CkptConfig cc;
      cc.group_size = 4;
      auto res = harness::run_with_poisson_failures(
          cluster, factory, cc, protocol, sim::from_seconds(interval), fm);
      std::printf("%-16s %9.0fs %14.1f %10d\n",
                  protocol == ckpt::Protocol::kGroupBased ? "group-based(4)"
                                                          : "blocking(32)",
                  interval, res.total_seconds, res.failures);
    }
  }
  std::printf(
      "\nGroup-based checkpointing's cheaper cycles buy shorter intervals\n"
      "and a better time-to-solution at every setting.\n");
  return 0;
}
