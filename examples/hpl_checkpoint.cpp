// HPL scenario: checkpoint a Linpack-style dense solver (8x4 process grid,
// the paper's Sec. 6.2 configuration) with every protocol and compare.
//
// Run: ./build/examples/hpl_checkpoint [issuance_seconds]
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "workloads/hpl.hpp"

using namespace gbc;

int main(int argc, char** argv) {
  const double issuance = argc > 1 ? std::atof(argv[1]) : 150.0;

  harness::ClusterPreset cluster = harness::icpp07_cluster();
  workloads::HplConfig hpl;  // defaults: 8x4 grid, N=44000
  harness::WorkloadFactory factory = [hpl](int n) {
    return std::make_unique<workloads::HplSim>(n, hpl);
  };

  std::printf("HPL %dx%d grid, N=%lld, NB=%d — checkpoint at t=%.0fs\n\n",
              hpl.grid_p, hpl.grid_q, static_cast<long long>(hpl.n), hpl.nb,
              issuance);

  const double base =
      harness::run_experiment(cluster, factory, ckpt::CkptConfig{})
          .completion_seconds();
  std::printf("failure-free makespan: %.1f s\n\n", base);
  std::printf("%-28s %12s %12s %12s\n", "checkpoint strategy",
              "effective(s)", "downtime(s)", "total(s)");

  struct Row {
    const char* name;
    ckpt::Protocol protocol;
    int group_size;
  };
  const Row rows[] = {
      {"regular (all 32 at once)", ckpt::Protocol::kBlockingCoordinated, 0},
      {"group-based, groups of 16", ckpt::Protocol::kGroupBased, 16},
      {"group-based, groups of 8", ckpt::Protocol::kGroupBased, 8},
      {"group-based, groups of 4", ckpt::Protocol::kGroupBased, 4},
      {"group-based, dynamic", ckpt::Protocol::kGroupBased, -1},
      {"Chandy-Lamport", ckpt::Protocol::kChandyLamport, 0},
  };
  for (const Row& row : rows) {
    ckpt::CkptConfig cc;
    if (row.group_size >= 0) {
      cc.group_size = row.group_size;
    } else {
      cc.group_size = 4;
      cc.dynamic_formation = true;  // learn groups from observed traffic
    }
    auto m = harness::measure_effective_delay_with_base(
        cluster, factory, cc, sim::from_seconds(issuance), row.protocol,
        base);
    std::printf("%-28s %12.2f %12.2f %12.2f\n", row.name,
                m.effective_delay_seconds(),
                sim::to_seconds(m.checkpoint.mean_individual_time()),
                m.total_seconds());
  }
  std::printf(
      "\nThe 8x4 grid communicates mostly inside rows of 4, so checkpoint\n"
      "groups of 4 line up with the communication groups and give the\n"
      "largest reduction — the paper's headline HPL result.\n");
  return 0;
}
