// Failure and recovery end-to-end: run HPL with periodic group-based
// checkpoints, kill the job mid-run, restore from the last completed global
// checkpoint, and verify the recomputed result is bit-identical to a
// failure-free run.
//
// Run: ./build/examples/failure_recovery
#include <cstdio>

#include "harness/recovery.hpp"
#include "workloads/hpl.hpp"

using namespace gbc;

int main() {
  harness::ClusterPreset cluster = harness::icpp07_cluster();
  workloads::HplConfig hpl;
  hpl.n = 20000;  // a shorter run (~42 s) so the demo is quick
  hpl.nb = 200;
  hpl.base_footprint_mib = 30.0;
  harness::WorkloadFactory factory = [hpl](int n) {
    return std::make_unique<workloads::HplSim>(n, hpl);
  };
  ckpt::CkptConfig cc;
  cc.group_size = 8;

  auto clean = harness::run_experiment(cluster, factory, cc);
  std::printf("failure-free run completes at %.1f s\n",
              clean.completion_seconds());

  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(harness::CkptRequest{
      sim::from_seconds(clean.completion_seconds() * 0.2),
      ckpt::Protocol::kGroupBased});
  const sim::Time failure =
      sim::from_seconds(clean.completion_seconds() * 0.9);

  auto rec = harness::run_with_failure(cluster, factory, cc, reqs, failure);
  std::printf("\nfailure injected at %.1f s\n", sim::to_seconds(failure));
  if (rec.used_checkpoint) {
    std::printf("restored from checkpoint: every rank rolled back to "
                "iteration %llu\n",
                static_cast<unsigned long long>(rec.rollback_iteration));
  } else {
    std::printf("no completed checkpoint: cold restart from iteration 0\n");
  }
  std::printf("restart image reads took %.1f s (shared storage)\n",
              rec.restart_read_seconds);
  std::printf("time to solution with failure: %.1f s (vs %.1f clean)\n",
              rec.total_seconds, clean.completion_seconds());

  auto cold = harness::run_with_failure(cluster, factory, cc, {}, failure);
  std::printf("same failure without any checkpoint: %.1f s "
              "(full recomputation)\n",
              cold.total_seconds);

  const bool identical = rec.final_hashes == clean.final_hashes &&
                         rec.final_iterations == clean.final_iterations &&
                         cold.final_hashes == clean.final_hashes;
  std::printf("\nresult identical to failure-free run: %s\n",
              identical ? "YES" : "NO");
  return identical ? 0 : 1;
}
