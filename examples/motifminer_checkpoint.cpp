// MotifMiner scenario (paper Sec. 6.3): a data-mining workload with global
// allgather communication and large per-iteration compute chunks. Shows that
// group-based checkpointing helps even without a group-structured
// communication pattern, and sweeps the checkpoint group size.
//
// Run: ./build/examples/motifminer_checkpoint
#include <cstdio>

#include "harness/experiment.hpp"
#include "workloads/motifminer.hpp"

using namespace gbc;

int main() {
  harness::ClusterPreset cluster = harness::icpp07_cluster();
  workloads::MotifMinerConfig mm;  // defaults: 14 iterations, ~12 s chunks
  harness::WorkloadFactory factory = [mm](int n) {
    return std::make_unique<workloads::MotifMinerSim>(n, mm);
  };

  const double base =
      harness::run_experiment(cluster, factory, ckpt::CkptConfig{})
          .completion_seconds();
  std::printf("MotifMiner: %llu iterations, ~%.0fs compute chunks, "
              "failure-free makespan %.1f s\n\n",
              static_cast<unsigned long long>(mm.iterations),
              mm.mean_compute_seconds, base);

  std::printf("%-18s %14s %16s\n", "checkpoint group", "effective(s)",
              "vs regular");
  double regular = 0;
  for (int size : {0, 16, 8, 4, 2, 1}) {
    ckpt::CkptConfig cc;
    cc.group_size = size;
    auto m = harness::measure_effective_delay_with_base(
        cluster, factory, cc, sim::from_seconds(60),
        ckpt::Protocol::kGroupBased, base);
    const double d = m.effective_delay_seconds();
    if (size == 0) regular = d;
    std::printf("%-18s %14.2f %15.1f%%\n",
                size == 0 ? "All(32)" : ("Group(" + std::to_string(size) + ")")
                                            .c_str(),
                d, (1.0 - d / regular) * 100.0);
  }
  std::printf(
      "\nEven with purely global communication, groups that finish their\n"
      "snapshot early run their next mining chunk while later groups write\n"
      "— the overlap the paper reports for MotifMiner (Sec. 6.3).\n");
  return 0;
}
