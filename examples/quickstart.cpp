// Quickstart: simulate a small MPI job on the paper's cluster, take one
// group-based checkpoint mid-run, and print the three delay metrics.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "ckpt/checkpoint.hpp"
#include "harness/experiment.hpp"
#include "workloads/microbench.hpp"

using namespace gbc;

int main() {
  // 1. A cluster like the paper's testbed: 32 compute nodes, 4 PVFS2
  //    storage servers (~140 MB/s aggregate), InfiniBand-like fabric.
  harness::ClusterPreset cluster = harness::icpp07_cluster();

  // 2. An application: 32 ranks computing and exchanging messages in
  //    communication groups of 8, with a 180 MB memory footprint each.
  workloads::CommGroupBenchConfig app;
  app.comm_group_size = 8;
  app.iterations = 900;  // ~90 s of work
  harness::WorkloadFactory factory = [app](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, app);
  };

  // 3. Checkpoint configuration: groups of 8 ranks snapshot one after
  //    another; traffic that would cross the recovery line is deferred.
  ckpt::CkptConfig ckpt_cfg;
  ckpt_cfg.group_size = 8;

  // 4. Measure the Effective Checkpoint Delay exactly as the paper defines
  //    it: the same deterministic run with and without the checkpoint.
  auto m = harness::measure_effective_delay(
      cluster, factory, ckpt_cfg, sim::from_seconds(10),
      ckpt::Protocol::kGroupBased);

  std::printf("run without checkpoint : %7.2f s\n", m.base_seconds);
  std::printf("run with checkpoint    : %7.2f s\n", m.with_ckpt_seconds);
  std::printf("\nEffective Checkpoint Delay : %6.2f s\n",
              m.effective_delay_seconds());
  std::printf("Individual Checkpoint Time : %6.2f s (per-process downtime)\n",
              m.individual_seconds());
  std::printf("Total Checkpoint Time      : %6.2f s (request -> all done)\n",
              m.total_seconds());

  // 5. Compare with the regular (all-at-once) coordinated checkpoint.
  auto all = harness::measure_effective_delay_with_base(
      cluster, factory, ckpt_cfg, sim::from_seconds(10),
      ckpt::Protocol::kBlockingCoordinated, m.base_seconds);
  std::printf("\nregular coordinated delay  : %6.2f s\n",
              all.effective_delay_seconds());
  std::printf("group-based saves %.0f%% of the checkpoint delay.\n",
              (1.0 - m.effective_delay_seconds() /
                         all.effective_delay_seconds()) *
                  100.0);
  return 0;
}
