// google-benchmark micro-benchmarks of the simulator substrate itself:
// event-queue throughput, coroutine task chaining, storage processor-sharing
// re-rating, MPI p2p and collective message handling, and full checkpoint
// cycles. These guard the simulator's performance so the figure sweeps
// (hundreds of simulated runs) stay fast.
#include <benchmark/benchmark.h>

#include "ckpt/checkpoint.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "storage/storage.hpp"

namespace {

using namespace gbc;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i, [&fired] { ++fired; });
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDispatch);

sim::Task<void> chained_sleeper(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.delay(1);
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(chained_sleeper(eng, 1000));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_StorageRebalance(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    storage::StorageSystem fs(eng, storage::StorageConfig{});
    for (int i = 0; i < writers; ++i) {
      // Staggered arrivals force a re-rate per arrival and per completion.
      eng.schedule_at(i * sim::kMillisecond, [&fs, &eng, i] {
        eng.spawn([](storage::StorageSystem& s,
                     storage::Bytes b) -> sim::Task<void> {
          co_await s.write(b);
        }(fs, storage::mib(1) + i));
      });
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * writers);
}
BENCHMARK(BM_StorageRebalance)->Arg(8)->Arg(64);

void BM_MpiPingPong(benchmark::State& state) {
  const int msgs = 200;
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {}, 2);
    mpi::MiniMPI mpi(eng, fabric, {});
    for (int r = 0; r < 2; ++r) {
      eng.spawn([](mpi::MiniMPI& m, int me, int n) -> sim::Task<void> {
        auto& rk = m.rank(me);
        const mpi::Comm& wc = m.world();
        for (int i = 0; i < n; ++i) {
          if (me == 0) {
            co_await rk.send(wc, 1, 0, 4096);
            co_await rk.recv(wc, 1, 1);
          } else {
            co_await rk.recv(wc, 0, 0);
            co_await rk.send(wc, 0, 1, 4096);
          }
        }
      }(mpi, r, msgs));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * msgs * 2);
}
BENCHMARK(BM_MpiPingPong);

void BM_Allreduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {}, n);
    mpi::MiniMPI mpi(eng, fabric, {});
    for (int r = 0; r < n; ++r) {
      eng.spawn([](mpi::MiniMPI& m, int me) -> sim::Task<void> {
        auto& rk = m.rank(me);
        for (int i = 0; i < 10; ++i) {
          (void)co_await rk.allreduce(m.world(), mpi::Op::kSum,
                                      mpi::vec(1.0));
        }
      }(mpi, r));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_Allreduce)->Arg(8)->Arg(32);

void BM_GroupCheckpointCycle(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {}, 32);
    storage::StorageSystem fs(eng, storage::StorageConfig{});
    mpi::MiniMPI mpi(eng, fabric, {});
    ckpt::CkptConfig cc;
    cc.group_size = group;
    ckpt::CheckpointService svc(mpi, fs, cc);
    svc.set_footprint_provider([](int) { return storage::mib(16); });
    svc.request_at(0, ckpt::Protocol::kGroupBased);
    eng.run();
    benchmark::DoNotOptimize(svc.history().size());
  }
}
BENCHMARK(BM_GroupCheckpointCycle)->Arg(0)->Arg(8)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
