// google-benchmark micro-benchmarks of the simulator substrate itself:
// event-queue throughput, coroutine task chaining, storage processor-sharing
// re-rating, MPI p2p and collective message handling, and full checkpoint
// cycles. These guard the simulator's performance so the figure sweeps
// (hundreds of simulated runs) stay fast.
#include <benchmark/benchmark.h>

#include <memory>

#include "ckpt/checkpoint.hpp"
#include "harness/preset.hpp"
#include "harness/sweep.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "storage/storage.hpp"
#include "workloads/microbench.hpp"

namespace {

using namespace gbc;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i, [&fired] { ++fired; });
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDispatch);

// Far-future scheduling: delays spanning every timing-wheel level (1 ns up
// to beyond the 2^48 ns epoch horizon, which lands in the overflow heap),
// stressing coarse placement, cascades and epoch migration rather than the
// leaf-level fast path the other benchmarks exercise.
void BM_ScheduleFar(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int fired = 0;
    sim::Time t = 1;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(t, [&fired] { ++fired; });
      t = t * 2 > t + 1 ? t * 2 : t + 1;
      if (t > (sim::Time{1} << 52)) t = 1 + fired;
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleFar);

sim::Task<void> chained_sleeper(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.delay(1);
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(chained_sleeper(eng, 1000));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

// Events/sec through the dispatch loop with the wake-shaped callback (a
// captured shared_ptr): the exact allocation pattern the InlineFn
// small-buffer optimization targets. Tracked via events_processed().
void BM_EventThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine eng;
    auto token = std::make_shared<std::uint64_t>(0);
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i, [token] { ++*token; });
    }
    eng.run();
    benchmark::DoNotOptimize(*token);
    events += eng.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["sim_events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventThroughput);

void BM_StorageRebalance(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    storage::StorageSystem fs(eng, storage::StorageConfig{});
    for (int i = 0; i < writers; ++i) {
      // Staggered arrivals force a re-rate per arrival and per completion.
      eng.schedule_at(i * sim::kMillisecond, [&fs, &eng, i] {
        eng.spawn([](storage::StorageSystem& s,
                     storage::Bytes b) -> sim::Task<void> {
          co_await s.write(b);
        }(fs, storage::mib(1) + i));
      });
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * writers);
}
BENCHMARK(BM_StorageRebalance)->Arg(8)->Arg(64);

void BM_MpiPingPong(benchmark::State& state) {
  const int msgs = 200;
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {}, 2);
    mpi::MiniMPI mpi(eng, fabric, {});
    for (int r = 0; r < 2; ++r) {
      eng.spawn([](mpi::MiniMPI& m, int me, int n) -> sim::Task<void> {
        auto& rk = m.rank(me);
        const mpi::Comm& wc = m.world();
        for (int i = 0; i < n; ++i) {
          if (me == 0) {
            co_await rk.send(wc, 1, 0, 4096);
            co_await rk.recv(wc, 1, 1);
          } else {
            co_await rk.recv(wc, 0, 0);
            co_await rk.send(wc, 0, 1, 4096);
          }
        }
      }(mpi, r, msgs));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * msgs * 2);
}
BENCHMARK(BM_MpiPingPong);

// Message-path allocation churn in isolation: one pooled envelope body plus
// one arena-allocated request record per message, the per-message allocation
// pattern of the MPI layer (to_packet + make_request). Steady state must be
// allocation-free — the pool stats assert recycling actually happens.
void BM_MsgAlloc(benchmark::State& state) {
  sim::Engine eng;
  sim::MsgPool<mpi::Envelope> pool;
  auto arena = std::make_shared<sim::ArenaCore>();
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim::MsgBuf body =
          pool.make(mpi::Envelope{0, 0, 1, 0, 4096, nullptr, 0});
      auto req = std::allocate_shared<mpi::ReqState>(
          sim::ArenaAlloc<mpi::ReqState>(arena), eng);
      benchmark::DoNotOptimize(body.get<mpi::Envelope>());
      benchmark::DoNotOptimize(req->done);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["pool_reuse"] = static_cast<double>(pool.reused());
  state.counters["arena_reuse"] = static_cast<double>(arena->reused());
}
BENCHMARK(BM_MsgAlloc);

void BM_Allreduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {}, n);
    mpi::MiniMPI mpi(eng, fabric, {});
    for (int r = 0; r < n; ++r) {
      eng.spawn([](mpi::MiniMPI& m, int me) -> sim::Task<void> {
        auto& rk = m.rank(me);
        for (int i = 0; i < 10; ++i) {
          (void)co_await rk.allreduce(m.world(), mpi::Op::kSum,
                                      mpi::vec(1.0));
        }
      }(mpi, r));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_Allreduce)->Arg(8)->Arg(32);

void BM_GroupCheckpointCycle(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {}, 32);
    storage::StorageSystem fs(eng, storage::StorageConfig{});
    mpi::MiniMPI mpi(eng, fabric, {});
    ckpt::CkptConfig cc;
    cc.group_size = group;
    ckpt::CheckpointService svc(mpi, fs, cc);
    svc.set_footprint_provider([](int) { return storage::mib(16); });
    svc.request_at(0, ckpt::Protocol::kGroupBased);
    eng.run();
    benchmark::DoNotOptimize(svc.history().size());
  }
}
BENCHMARK(BM_GroupCheckpointCycle)->Arg(0)->Arg(8)->Arg(1);

// Wall-clock scaling of a sweep of independent simulations across the
// SweepRunner pool; Arg = thread count. The per-thread work is fixed-shape
// (16 identical micro-runs), so ideal scaling halves the time per doubling.
// Registered last on purpose: spawning the pool's worker threads permanently
// switches glibc malloc off its single-threaded fast path for the rest of
// the process, which would depress every allocation-heavy single-threaded
// benchmark running after it.
void BM_SweepRunnerScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  harness::SweepRunner runner(threads);
  harness::ClusterPreset preset = harness::icpp07_cluster();
  preset.nranks = 8;
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = 4;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = 40;
  cfg.footprint_mib = 32.0;
  harness::WorkloadFactory factory = [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
  std::vector<harness::ExperimentPoint> pts(16);
  for (auto& p : pts) {
    p.preset = preset;
    p.factory = factory;
  }
  std::uint64_t events = 0;
  for (auto _ : state) {
    harness::SweepStats stats;
    auto runs = harness::run_experiments(runner, pts, &stats);
    benchmark::DoNotOptimize(runs.front().completion);
    events += stats.total_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
  state.counters["sim_events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRunnerScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
