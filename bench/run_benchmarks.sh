#!/usr/bin/env bash
# Runs the simulator microbenchmarks plus representative sweeps (fig3
# micro-benchmark sweep, fig6 HPL group-size sweep, the sharded-DES scaling
# benches) and assembles a machine-readable perf snapshot. This is the file
# committed as BENCH_pr<N>.json to track the events/s trajectory across PRs.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output.json]
#   build-dir   cmake build tree containing bench/ binaries   (default: build)
#   output.json snapshot destination                          (default: BENCH_pr10.json)
# Env: GBC_BENCH_MIN_TIME  seconds per microbenchmark case    (default: 2)
#      GBC_BENCH_REPS      full reruns; gate + snapshot use the per-entry
#                          median across them                 (default: 3)
#
# The whole suite runs GBC_BENCH_REPS times and both the committed snapshot
# and the regression gate use the per-entry *median* across the reruns: on a
# single-CPU box one sample swings with host load, and gating on it made the
# regression flag differ between otherwise-identical invocations (PR 9).
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-BENCH_pr10.json}
MIN_TIME=${GBC_BENCH_MIN_TIME:-2}
REPS=${GBC_BENCH_REPS:-3}

for bin in simcore_microbench fig3_group_size fig6_hpl_groupsize shard_scaling scale_groupsize fig9_erasure ablation_erasure; do
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    echo "error: $BUILD/bench/$bin missing; build first: cmake --build $BUILD -j" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Provenance: every JSONL sweep record embeds the commit it was measured at
# (bench_util.hpp reads GBC_GIT_SHA), and the snapshot header repeats it.
GBC_GIT_SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
export GBC_GIT_SHA

# One full pass of the suite: microbench JSON to $1, sweep JSONL to $2.
run_suite() {
  local micro_json=$1 sweeps_jsonl=$2

  echo "== microbenchmarks (--benchmark_min_time=$MIN_TIME) =="
  "$BUILD/bench/simcore_microbench" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json >"$micro_json"

  echo "== figure sweeps =="
  export GBC_BENCH_JSON="$sweeps_jsonl"
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig3_group_size"
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig6_hpl_groupsize"
  if [[ -x "$BUILD/bench/fig8_staging" ]]; then
    GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig8_staging"
  fi

  echo "== erasure tier =="
  # Clean-run phases carry the gated events/s records; the recovery phases
  # report TTS only (their SweepStats have no engine events). ablation_erasure
  # exits non-zero if its RS(4,2) acceptance row regresses.
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig9_erasure"
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/ablation_erasure"

  echo "== sharded-DES scaling =="
  # Throughput at 1/2/4/8 shards on a fixed 1k-rank fat-tree config; one JSONL
  # record per shard count (events/s, window count, balance).
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/shard_scaling"
  # Full protocol stack under per-rank LP sharding: per-LP delivery split,
  # shard-0 event share, and the root service LP's delivery share
  # (service_shard0_share) at 1/2/4 shards (DESIGN.md §13/§15).
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/shard_scaling" --fullstack
  # Group-size curve at 1k/4k ranks (the 16k point is left to manual runs so
  # the snapshot stays quick to regenerate).
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/scale_groupsize" --ranks 1024
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/scale_groupsize" --ranks 4096
}

# Assemble one snapshot: per-benchmark name/time/throughput from the
# google-benchmark JSON, plus the one-record-per-sweep JSONL the drivers
# appended via bench_util.hpp's report_sweep().
assemble() {
  local micro_json=$1 sweeps_jsonl=$2 out_json=$3
  awk -v sweeps="$sweeps_jsonl" -v sha="$GBC_GIT_SHA" '
    function num(l) { sub(/.*: */, "", l); sub(/,[ \t\r]*$/, "", l); return l }
    function str(l) { sub(/.*": *"/, "", l); sub(/".*/, "", l); return l }
    function flush_rec() {
      if (name == "") return
      printf "%s    {\"name\":\"%s\",\"real_time\":%s,\"time_unit\":\"%s\",\"items_per_second\":%s}", \
             (first ? "" : ",\n"), name, rt, tu, (ips == "" ? "null" : ips)
      first = 0; name = ""; rt = ""; tu = ""; ips = ""
    }
    BEGIN {
      in_bm = 0; first = 1
      print "{"
      printf "  \"git_sha\": \"%s\",\n", sha
      print "  \"benchmarks\": ["
    }
    /"benchmarks": \[/    { in_bm = 1; next }
    !in_bm                { next }
    /"name":/             { flush_rec(); name = str($0) }
    /"real_time":/        { rt = num($0) }
    /"time_unit":/        { tu = str($0) }
    /"items_per_second":/ { ips = num($0) }
    END {
      flush_rec()
      print ""
      print "  ],"
      print "  \"sweeps\": ["
      sfirst = 1
      while ((getline line < sweeps) > 0) {
        if (line == "") continue
        printf "%s    %s", (sfirst ? "" : ",\n"), line
        sfirst = 0
      }
      print ""
      print "  ]"
      print "}"
    }
  ' "$micro_json" >"$out_json"
}

snaps=()
for rep in $(seq 1 "$REPS"); do
  echo "==== bench rep $rep/$REPS ===="
  run_suite "$tmp/micro_$rep.json" "$tmp/sweeps_$rep.jsonl"
  assemble "$tmp/micro_$rep.json" "$tmp/sweeps_$rep.jsonl" "$tmp/snap_$rep.json"
  snaps+=("$tmp/snap_$rep.json")
done

# Regression gate: when a baseline snapshot exists (GBC_BENCH_BASELINE, or
# the newest committed BENCH_pr*.json other than $OUT), any matched entry
# whose *median* is more than 10% slower fails the run. The median snapshot
# is written to $OUT either way.
BASELINE=${GBC_BENCH_BASELINE:-}
if [[ -z "$BASELINE" ]]; then
  for f in $(ls -t BENCH_pr*.json 2>/dev/null); do
    if [[ "$f" != "$OUT" ]]; then BASELINE=$f; break; fi
  done
fi
if [[ -n "$BASELINE" && -f "$BASELINE" ]]; then
  echo "== regression check vs $BASELINE (median of $REPS rep(s)) =="
  python3 "$(dirname "$0")/../scripts/bench_compare.py" \
    "$BASELINE" "${snaps[@]}" --write-median "$OUT"
else
  echo "no baseline snapshot found; skipping regression check"
  python3 "$(dirname "$0")/../scripts/bench_compare.py" \
    - "${snaps[@]}" --write-median "$OUT"
fi
echo "wrote $OUT"
