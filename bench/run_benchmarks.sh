#!/usr/bin/env bash
# Runs the simulator microbenchmarks plus representative sweeps (fig3
# micro-benchmark sweep, fig6 HPL group-size sweep, the sharded-DES scaling
# benches) and assembles a machine-readable perf snapshot. This is the file
# committed as BENCH_pr<N>.json to track the events/s trajectory across PRs.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output.json]
#   build-dir   cmake build tree containing bench/ binaries   (default: build)
#   output.json snapshot destination                          (default: BENCH_pr9.json)
# Env: GBC_BENCH_MIN_TIME  seconds per microbenchmark case    (default: 2)
#
# Run on an otherwise-idle machine: the microbench numbers are the ones the
# acceptance thresholds compare against.
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-BENCH_pr9.json}
MIN_TIME=${GBC_BENCH_MIN_TIME:-2}

for bin in simcore_microbench fig3_group_size fig6_hpl_groupsize shard_scaling scale_groupsize fig9_erasure ablation_erasure; do
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    echo "error: $BUILD/bench/$bin missing; build first: cmake --build $BUILD -j" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Provenance: every JSONL sweep record embeds the commit it was measured at
# (bench_util.hpp reads GBC_GIT_SHA), and the snapshot header repeats it.
GBC_GIT_SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
export GBC_GIT_SHA

echo "== microbenchmarks (--benchmark_min_time=$MIN_TIME) =="
"$BUILD/bench/simcore_microbench" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$tmp/micro.json"

echo "== figure sweeps =="
export GBC_BENCH_JSON="$tmp/sweeps.jsonl"
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig3_group_size"
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig6_hpl_groupsize"
if [[ -x "$BUILD/bench/fig8_staging" ]]; then
  GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig8_staging"
fi

echo "== erasure tier =="
# Clean-run phases carry the gated events/s records; the recovery phases
# report TTS only (their SweepStats have no engine events). ablation_erasure
# exits non-zero if its RS(4,2) acceptance row regresses.
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/fig9_erasure"
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/ablation_erasure"

echo "== sharded-DES scaling =="
# Throughput at 1/2/4/8 shards on a fixed 1k-rank fat-tree config; one JSONL
# record per shard count (events/s, window count, balance).
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/shard_scaling"
# Full protocol stack under per-rank LP sharding: per-shard event split and
# shard-0 share at 1/2/4 shards (DESIGN.md §13).
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/shard_scaling" --fullstack
# Group-size curve at 1k/4k ranks (the 16k point is left to manual runs so
# the snapshot stays quick to regenerate).
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/scale_groupsize" --ranks 1024
GBC_BENCH_OUT="$tmp/csv" "$BUILD/bench/scale_groupsize" --ranks 4096

# Assemble the snapshot: per-benchmark name/time/throughput from the
# google-benchmark JSON, plus the one-record-per-sweep JSONL the drivers
# appended via bench_util.hpp's report_sweep().
awk -v sweeps="$tmp/sweeps.jsonl" -v sha="$GBC_GIT_SHA" '
  function num(l) { sub(/.*: */, "", l); sub(/,[ \t\r]*$/, "", l); return l }
  function str(l) { sub(/.*": *"/, "", l); sub(/".*/, "", l); return l }
  function flush_rec() {
    if (name == "") return
    printf "%s    {\"name\":\"%s\",\"real_time\":%s,\"time_unit\":\"%s\",\"items_per_second\":%s}", \
           (first ? "" : ",\n"), name, rt, tu, (ips == "" ? "null" : ips)
    first = 0; name = ""; rt = ""; tu = ""; ips = ""
  }
  BEGIN {
    in_bm = 0; first = 1
    print "{"
    printf "  \"git_sha\": \"%s\",\n", sha
    print "  \"benchmarks\": ["
  }
  /"benchmarks": \[/    { in_bm = 1; next }
  !in_bm                { next }
  /"name":/             { flush_rec(); name = str($0) }
  /"real_time":/        { rt = num($0) }
  /"time_unit":/        { tu = str($0) }
  /"items_per_second":/ { ips = num($0) }
  END {
    flush_rec()
    print ""
    print "  ],"
    print "  \"sweeps\": ["
    sfirst = 1
    while ((getline line < sweeps) > 0) {
      if (line == "") continue
      printf "%s    %s", (sfirst ? "" : ",\n"), line
      sfirst = 0
    }
    print ""
    print "  ]"
    print "}"
  }
' "$tmp/micro.json" >"$OUT"

echo "wrote $OUT"

# Regression gate: when a baseline snapshot exists (GBC_BENCH_BASELINE, or
# the newest committed BENCH_pr*.json other than $OUT), any matched entry
# more than 10% slower fails the run.
BASELINE=${GBC_BENCH_BASELINE:-}
if [[ -z "$BASELINE" ]]; then
  for f in $(ls -t BENCH_pr*.json 2>/dev/null); do
    if [[ "$f" != "$OUT" ]]; then BASELINE=$f; break; fi
  done
fi
if [[ -n "$BASELINE" && -f "$BASELINE" ]]; then
  echo "== regression check vs $BASELINE =="
  python3 "$(dirname "$0")/../scripts/bench_compare.py" "$BASELINE" "$OUT"
else
  echo "no baseline snapshot found; skipping regression check"
fi
