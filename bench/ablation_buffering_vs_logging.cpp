// Ablation A1 (paper Sec. 4.3): message/request *buffering* vs message
// *logging*. Buffering holds traffic back only for the duration of the
// deferral window and copies only already-buffered eager payloads; logging
// must capture every payload on the failure-free critical path and forbids
// zero-copy rendezvous. The bench separates the two costs: (a) failure-free
// runtime overhead with no checkpoint at all, (b) data volume held/recorded.
#include "bench_util.hpp"
#include "ckpt/logging_hooks.hpp"

namespace {

using namespace gbc;

/// Communication-heavy neighbour exchange: 4 MB rendezvous messages with
/// modest compute, the regime where logging hurts most (paper Secs. 1, 2.1).
harness::WorkloadFactory heavy_factory(std::uint64_t iters) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = 16;  // rings span two checkpoint groups of 8
  cfg.compute_per_iter = 10 * sim::kMillisecond;
  cfg.message_bytes = storage::mib(4);
  cfg.iterations = iters;
  cfg.footprint_mib = 180.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

}  // namespace

int main() {
  bench::banner("Buffering vs logging: volume and failure-free overhead",
                "Sec. 4.3 (design comparison)");
  const auto preset = harness::icpp07_cluster();
  auto factory = heavy_factory(2000);
  ckpt::CkptConfig cc;
  cc.group_size = 8;

  // Failure-free runtimes: plain vs always-on sender-based logging.
  const double plain =
      harness::run_experiment(preset, factory, cc).completion_seconds();
  ckpt::SenderLogger logger(preset.nranks, 1200.0);
  const double logged_rt =
      harness::run_experiment(preset, factory, cc, {}, &logger)
          .completion_seconds();

  // One group-based checkpoint: what does buffering hold, and what does the
  // checkpoint cost?
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(
      harness::CkptRequest{sim::from_seconds(15), ckpt::Protocol::kGroupBased});
  auto buffered = harness::run_experiment(preset, factory, cc, reqs);

  // One Chandy-Lamport checkpoint for the channel-logging volume.
  std::vector<harness::CkptRequest> cl_reqs;
  cl_reqs.push_back(harness::CkptRequest{sim::from_seconds(15),
                                         ckpt::Protocol::kChandyLamport});
  auto cl = harness::run_experiment(preset, factory, cc, cl_reqs);

  const double mib = static_cast<double>(storage::kMiB);
  harness::Table t({"approach", "failure_free_overhead_pct",
                    "volume_MB", "payload_copies_MB", "ckpt_delay_s"});
  t.add_row({"group-based buffering", "0.0",
             harness::Table::num(
                 static_cast<double>(buffered.mpi_stats.request_buffered_bytes +
                                     buffered.mpi_stats.message_buffered_bytes) /
                 mib, 2),
             harness::Table::num(
                 static_cast<double>(buffered.mpi_stats.peak_message_buffer) /
                 mib, 3),
             harness::Table::num(buffered.completion_seconds() - plain)});
  t.add_row({"sender-based logging (always on)",
             harness::Table::num((logged_rt / plain - 1.0) * 100.0, 1),
             harness::Table::num(static_cast<double>(logger.logged_bytes()) /
                                 mib, 2),
             harness::Table::num(static_cast<double>(logger.logged_bytes()) /
                                 mib, 2),
             "-"});
  const storage::Bytes cl_logged =
      cl.checkpoints.empty() ? 0 : cl.checkpoints.front().logged_bytes;
  t.add_row({"Chandy-Lamport channel log",
             "0.0",
             harness::Table::num(static_cast<double>(cl_logged) / mib, 2),
             harness::Table::num(static_cast<double>(cl_logged) / mib, 2),
             harness::Table::num(cl.completion_seconds() - plain)});
  t.print();
  t.write_csv(bench::csv_path("ablation_buffering_vs_logging"));
  std::printf(
      "\nExpected: buffering adds zero failure-free overhead and holds only\n"
      "deferral-window traffic (request buffering: no payload copies at\n"
      "all). Always-on logging records every byte the app ever sends and\n"
      "slows the failure-free run measurably because rendezvous can no\n"
      "longer be zero-copy. The Chandy-Lamport channel log is nearly empty\n"
      "here only because InfiniBand forces connections to be flushed and\n"
      "torn down before a snapshot anyway — exactly the paper's argument\n"
      "(Sec. 2.2) that non-blocking protocols lose their advantage on IB,\n"
      "while still snapshotting all ranks at once (storage bottleneck).\n");
  return 0;
}
