// Figure 4: "Checkpoint Placement" — Effective Checkpoint Delay vs the
// issuance time of the checkpoint request, with the Individual Checkpoint
// Time and Total Checkpoint Time reference lines. Checkpoint group size =
// communication group size = 8; a global MPI_Barrier every 60 s.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("Effective Checkpoint Delay vs issuance time", "Figure 4");
  const auto preset = harness::icpp07_cluster();
  // 1800 x 100ms = 180s of compute; barriers at ~60s and ~120s.
  auto factory =
      bench::barrier_factory(8, 60 * sim::kSecond, 1800);
  ckpt::CkptConfig cc;
  cc.group_size = 8;

  const double base =
      harness::run_experiment(preset, factory, cc).completion_seconds();

  harness::Table t({"issuance_s", "effective_delay_s", "individual_ckpt_s",
                    "total_ckpt_s"});
  for (int issuance = 15; issuance <= 115; issuance += 10) {
    auto m = harness::measure_effective_delay_with_base(
        preset, factory, cc, sim::from_seconds(issuance),
        ckpt::Protocol::kGroupBased, base);
    t.add_row({std::to_string(issuance),
               harness::Table::num(m.effective_delay_seconds()),
               harness::Table::num(m.individual_seconds()),
               harness::Table::num(m.total_seconds())});
    std::fflush(stdout);
  }
  t.print();
  t.write_csv(bench::csv_path("fig4_placement"));
  std::printf(
      "\nExpected shape (paper): the effective delay always lies between the\n"
      "Individual and Total checkpoint times, and grows toward Total as the\n"
      "issuance time approaches the next global barrier (at 60s/120s) —\n"
      "groups that finish early cannot cross the barrier without the rest.\n");
  return 0;
}
