// Figure 4: "Checkpoint Placement" — Effective Checkpoint Delay vs the
// issuance time of the checkpoint request, with the Individual Checkpoint
// Time and Total Checkpoint Time reference lines. Checkpoint group size =
// communication group size = 8; a global MPI_Barrier every 60 s.
//
// The base run and the eleven issuance points all run through the
// SweepRunner concurrently.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("Effective Checkpoint Delay vs issuance time", "Figure 4");
  const auto preset = harness::icpp07_cluster();
  // 1800 x 100ms = 180s of compute; barriers at ~60s and ~120s.
  auto factory =
      bench::barrier_factory(8, 60 * sim::kSecond, 1800);
  ckpt::CkptConfig cc;
  cc.group_size = 8;

  std::vector<harness::ExperimentPoint> pts;
  {
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = factory;
    base.ckpt_cfg = cc;
    pts.push_back(std::move(base));
  }
  std::vector<int> issuances;
  for (int issuance = 15; issuance <= 115; issuance += 10) {
    issuances.push_back(issuance);
    harness::ExperimentPoint p;
    p.preset = preset;
    p.factory = factory;
    p.ckpt_cfg = cc;
    p.requests.push_back(harness::CkptRequest{sim::from_seconds(issuance),
                                              ckpt::Protocol::kGroupBased});
    pts.push_back(std::move(p));
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);
  const double base = runs[0].completion_seconds();

  harness::Table t({"issuance_s", "effective_delay_s", "individual_ckpt_s",
                    "total_ckpt_s"});
  for (std::size_t i = 0; i < issuances.size(); ++i) {
    auto m = harness::to_delay_measurement(runs[i + 1], base);
    t.add_row({std::to_string(issuances[i]),
               harness::Table::num(m.effective_delay_seconds()),
               harness::Table::num(m.individual_seconds()),
               harness::Table::num(m.total_seconds())});
  }
  t.print();
  t.write_csv(bench::csv_path("fig4_placement"));
  bench::report_sweep("fig4_placement", stats, &preset);
  std::printf(
      "\nExpected shape (paper): the effective delay always lies between the\n"
      "Individual and Total checkpoint times, and grows toward Total as the\n"
      "issuance time approaches the next global barrier (at 60s/120s) —\n"
      "groups that finish early cannot cross the barrier without the rest.\n");
  return 0;
}
