// Figure 6: "Effective Checkpoint Delay with Different Checkpoint Group
// Sizes for HPL" — average over the 8 issuance points with min/max bars,
// plus the average reduction vs. regular coordinated checkpointing
// (paper: ~37/46/46/35% for sizes 2/4/8/16; best at 4 and 8).
//
// One base run plus the 6x8 grid of checkpointed runs, all through the
// SweepRunner (this is the sweep the PR's scaling target is measured on).
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("HPL: delay vs checkpoint group size (avg/min/max)",
                "Figure 6");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::hpl_factory();
  const std::vector<int> sizes{0, 16, 8, 4, 2, 1};

  std::vector<harness::ExperimentPoint> pts;
  {
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = factory;
    pts.push_back(std::move(base));
  }
  for (int size : sizes) {
    for (int issuance = 50; issuance <= 400; issuance += 50) {
      harness::ExperimentPoint p;
      p.preset = preset;
      p.factory = factory;
      p.ckpt_cfg.group_size = size;
      p.requests.push_back(harness::CkptRequest{sim::from_seconds(issuance),
                                                ckpt::Protocol::kGroupBased});
      pts.push_back(std::move(p));
    }
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);
  const double base = runs[0].completion_seconds();

  harness::Table t({"ckpt_group", "avg_delay_s", "min_delay_s", "max_delay_s",
                    "avg_reduction_vs_all_pct"});
  double all32_avg = 0;
  std::size_t at = 1;
  for (int size : sizes) {
    double sum = 0, lo = 1e18, hi = 0;
    for (int issuance = 50; issuance <= 400; issuance += 50) {
      (void)issuance;
      auto m = harness::to_delay_measurement(runs[at++], base);
      const double d = m.effective_delay_seconds();
      sum += d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    const double avg = sum / 8.0;
    if (size == 0) all32_avg = avg;
    const double reduction =
        all32_avg > 0 ? (1.0 - avg / all32_avg) * 100.0 : 0.0;
    t.add_row({bench::group_label(preset.nranks, size),
               harness::Table::num(avg), harness::Table::num(lo),
               harness::Table::num(hi), harness::Table::num(reduction, 1)});
  }
  t.print();
  t.write_csv(bench::csv_path("fig6_hpl_groupsize"));
  bench::report_sweep("fig6_hpl_groupsize", stats, &preset);
  std::printf(
      "\nExpected shape (paper): sizes 4 and 8 give the best performance\n"
      "(matching the 8x4 process grid), with average reductions around\n"
      "35-46%% for sizes 2..16 and little or no benefit at size 1.\n");
  return 0;
}
