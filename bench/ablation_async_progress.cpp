// Ablation A2 (paper Sec. 4.4): asynchronous progress. Inter-group
// coordination (passive connection teardown/rebuild) needs the *other*
// groups' processes to enter their progress engines. The helper thread
// bounds that to ~one helper interval; without it, a group checkpointing
// next to peers that are deep in computation stalls until those peers'
// next library call.
#include "bench_util.hpp"

namespace {

using namespace gbc;

/// Establishes a world-spanning ring of connections, then computes in long
/// uninterrupted chunks with no library entry at all — the worst case for
/// passive coordination without a helper thread.
class ConnectThenCompute : public workloads::Workload {
 public:
  ConnectThenCompute(int nranks, sim::Time chunk, int chunks)
      : Workload(nranks), chunk_(chunk), chunks_(chunks) {
    for (int r = 0; r < nranks; ++r) set_footprint(r, storage::mib(180));
  }
  sim::Task<void> run_rank(mpi::RankCtx& r, workloads::WorkloadState from)
      override {
    set_state(r.world_rank(), from);
    const mpi::Comm& wc = r.mpi().world();
    const int me = r.world_rank();
    const int n = r.nranks();
    if (from.iteration == 0) {
      // Ring handshake: every adjacent pair ends up connected.
      mpi::Request rq = r.irecv(wc, (me - 1 + n) % n, 0);
      co_await r.send(wc, (me + 1) % n, 0, 1024);
      co_await r.wait(rq);
      commit_iteration(me, me);
    }
    for (std::uint64_t it = std::max<std::uint64_t>(from.iteration, 1);
         it <= static_cast<std::uint64_t>(chunks_); ++it) {
      co_await r.compute(chunk_);
      // One MPI_Test-style library entry per chunk: without the helper
      // thread, this is the only point where passive coordination requests
      // get serviced.
      co_await r.progress();
      commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
    }
  }

 private:
  sim::Time chunk_;
  int chunks_;
};

}  // namespace

int main() {
  bench::banner("Asynchronous progress: helper thread on/off",
                "Sec. 4.4 (design ablation)");
  const auto preset = harness::icpp07_cluster();
  harness::Table t({"compute_chunk_s", "helper", "mean_individual_s",
                    "total_ckpt_s", "effective_delay_s"});
  for (double chunk : {1.0, 10.0, 60.0}) {
    const int chunks = static_cast<int>(240.0 / chunk);
    harness::WorkloadFactory factory = [chunk, chunks](int n) {
      return std::make_unique<ConnectThenCompute>(
          n, sim::from_seconds(chunk), chunks);
    };
    const double base =
        harness::run_experiment(preset, factory, ckpt::CkptConfig{})
            .completion_seconds();
    for (bool helper : {true, false}) {
      ckpt::CkptConfig cc;
      cc.group_size = 8;
      cc.async_progress = helper;
      auto m = harness::measure_effective_delay_with_base(
          preset, factory, cc, sim::from_seconds(20),
          ckpt::Protocol::kGroupBased, base);
      t.add_row({harness::Table::num(chunk, 0), helper ? "on" : "off",
                 harness::Table::num(
                     sim::to_seconds(m.checkpoint.mean_individual_time())),
                 harness::Table::num(m.total_seconds()),
                 harness::Table::num(m.effective_delay_seconds())});
      std::fflush(stdout);
    }
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_async_progress"));
  std::printf(
      "\nExpected: with the helper thread, per-process downtime and total\n"
      "checkpoint time are independent of the peers' compute chunk length\n"
      "(passive requests are serviced within ~100 ms). Without it, the\n"
      "checkpointing group stalls until its peers re-enter the library, so\n"
      "downtime grows with the chunk — by a minute for minute-long chunks.\n");
  return 0;
}
