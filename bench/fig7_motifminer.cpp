// Figure 7: "Effective Checkpoint Delay with Different Checkpoint Group
// Sizes for MotifMiner" — 32 processes, global (allgather) communication
// only, 4 issuance points across the run. Group-based checkpointing still
// helps because each process has a large compute chunk per iteration
// (paper: up to 70% reduction; avg ~28/32/27/14% for sizes 16/8/4/2).
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("MotifMiner: Effective Checkpoint Delay", "Figure 7");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::motifminer_factory();
  const double base =
      harness::run_experiment(preset, factory, ckpt::CkptConfig{})
          .completion_seconds();
  std::printf("MotifMiner failure-free makespan: %.1f s\n\n", base);

  harness::Table t({"issuance_s", "All(32)", "Group(16)", "Group(8)",
                    "Group(4)", "Group(2)", "Individual(1)"});
  double all_sum = 0;
  std::vector<double> group_sums(6, 0.0);
  const std::vector<int> sizes{0, 16, 8, 4, 2, 1};
  for (int issuance : {30, 60, 90, 120}) {
    std::vector<std::string> row{std::to_string(issuance)};
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      ckpt::CkptConfig cc;
      cc.group_size = sizes[si];
      auto m = harness::measure_effective_delay_with_base(
          preset, factory, cc, sim::from_seconds(issuance),
          ckpt::Protocol::kGroupBased, base);
      const double d = m.effective_delay_seconds();
      group_sums[si] += d;
      if (si == 0) all_sum += d;
      row.push_back(harness::Table::num(d));
      std::fflush(stdout);
    }
    t.add_row(std::move(row));
  }
  t.print();
  t.write_csv(bench::csv_path("fig7_motifminer"));

  std::printf("\nAverage reduction vs All(32):");
  for (std::size_t si = 1; si < sizes.size(); ++si) {
    std::printf("  %s: %.1f%%", bench::group_label(32, sizes[si]).c_str(),
                (1.0 - group_sums[si] / all_sum) * 100.0);
  }
  std::printf(
      "\n\nExpected shape (paper): noticeable reductions despite the global\n"
      "communication pattern — groups that finish early continue their\n"
      "compute chunk before the next allgather; moderate sizes (4-8) win.\n");
  return 0;
}
