// Figure 7: "Effective Checkpoint Delay with Different Checkpoint Group
// Sizes for MotifMiner" — 32 processes, global (allgather) communication
// only, 4 issuance points across the run. Group-based checkpointing still
// helps because each process has a large compute chunk per iteration
// (paper: up to 70% reduction; avg ~28/32/27/14% for sizes 16/8/4/2).
//
// One base run plus the 4x6 grid of checkpointed runs, all through the
// SweepRunner.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("MotifMiner: Effective Checkpoint Delay", "Figure 7");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::motifminer_factory();
  const std::vector<int> sizes{0, 16, 8, 4, 2, 1};
  const std::vector<int> issuances{30, 60, 90, 120};

  std::vector<harness::ExperimentPoint> pts;
  {
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = factory;
    pts.push_back(std::move(base));
  }
  for (int issuance : issuances) {
    for (int size : sizes) {
      harness::ExperimentPoint p;
      p.preset = preset;
      p.factory = factory;
      p.ckpt_cfg.group_size = size;
      p.requests.push_back(harness::CkptRequest{sim::from_seconds(issuance),
                                                ckpt::Protocol::kGroupBased});
      pts.push_back(std::move(p));
    }
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);
  const double base = runs[0].completion_seconds();
  std::printf("MotifMiner failure-free makespan: %.1f s\n\n", base);

  harness::Table t({"issuance_s", "All(32)", "Group(16)", "Group(8)",
                    "Group(4)", "Group(2)", "Individual(1)"});
  double all_sum = 0;
  std::vector<double> group_sums(6, 0.0);
  std::size_t at = 1;
  for (int issuance : issuances) {
    std::vector<std::string> row{std::to_string(issuance)};
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      auto m = harness::to_delay_measurement(runs[at++], base);
      const double d = m.effective_delay_seconds();
      group_sums[si] += d;
      if (si == 0) all_sum += d;
      row.push_back(harness::Table::num(d));
    }
    t.add_row(std::move(row));
  }
  t.print();
  t.write_csv(bench::csv_path("fig7_motifminer"));
  bench::report_sweep("fig7_motifminer", stats, &preset);

  std::printf("\nAverage reduction vs All(32):");
  for (std::size_t si = 1; si < sizes.size(); ++si) {
    std::printf("  %s: %.1f%%", bench::group_label(32, sizes[si]).c_str(),
                (1.0 - group_sums[si] / all_sum) * 100.0);
  }
  std::printf(
      "\n\nExpected shape (paper): noticeable reductions despite the global\n"
      "communication pattern — groups that finish early continue their\n"
      "compute chunk before the next allgather; moderate sizes (4-8) win.\n");
  return 0;
}
