// Ablation A4 (paper Sec. 4.2): per-connection management. Group-based
// checkpointing must tear down and rebuild only the connections touching the
// checkpointing group (with either side able to initiate); a global
// teardown/rebuild — what the regular protocol does — touches every
// connection on every cycle and scales with the job, not with the group.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("Connection management cost per checkpoint",
                "Sec. 4.2 (design ablation)");
  const auto preset = harness::icpp07_cluster();
  // Neighbour-ring workload: 32 established connections.
  auto factory = bench::comm_group_factory(32, 1200);
  const auto base = harness::run_experiment(preset, factory,
                                            ckpt::CkptConfig{});

  harness::Table t({"ckpt_group", "teardowns_per_cycle", "setups_per_cycle",
                    "oob_time_ms_per_cycle"});
  for (int size : {0, 16, 8, 4, 2, 1}) {
    ckpt::CkptConfig cc;
    cc.group_size = size;
    std::vector<harness::CkptRequest> reqs;
    reqs.push_back(harness::CkptRequest{sim::from_seconds(20),
                                        ckpt::Protocol::kGroupBased});
    auto res = harness::run_experiment(preset, factory, cc, reqs);
    const auto teardowns =
        res.connection_teardowns - base.connection_teardowns;
    const auto setups = res.connection_setups - base.connection_setups;
    const double oob_ms =
        static_cast<double>(setups) *
        sim::to_milliseconds(preset.net.oob_exchange + preset.net.qp_transition) +
        static_cast<double>(teardowns) *
            sim::to_milliseconds(preset.net.teardown_cost);
    t.add_row({bench::group_label(preset.nranks, size),
               std::to_string(teardowns), std::to_string(setups),
               harness::Table::num(oob_ms, 1)});
    std::fflush(stdout);
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_connection_mgmt"));
  std::printf(
      "\nExpected: every group size tears down each of the job's connections\n"
      "exactly once per global checkpoint (a connection is torn down when\n"
      "either endpoint snapshots), so the per-cycle count is flat — but the\n"
      "per-*group* count shrinks with the group, which is what allows the\n"
      "non-members to keep computing. Total out-of-band time stays small\n"
      "(milliseconds) next to the storage time (tens of seconds), matching\n"
      "the paper's >95%% storage-dominance measurement.\n");
  return 0;
}
