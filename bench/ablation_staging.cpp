// Ablation: what each staging level buys. Same workload, same checkpoint
// schedule, same node failure — with no tier (every image on the shared
// PFS), with a local tier draining in the background, and with the tier
// plus partner replication. The tier removes the shared-storage bottleneck
// from the foreground write; replication keeps the newest checkpoint
// recoverable even when the failed node's image had not drained yet.
#include "bench_util.hpp"
#include "harness/recovery.hpp"

namespace {

using namespace gbc;

harness::ClusterPreset staging_preset(bool tier, bool replicate) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = 16;
  p.tier.enabled = tier;
  p.tier.local_write_mbps = 400.0;
  p.tier.local_capacity_mib = 96.0;
  p.tier.drain_mbps = 8.0;  // 64 MiB image drains in ~8 s
  p.tier.drain_chunk_mib = 16.0;
  p.tier.replicate = replicate;
  return p;
}

}  // namespace

int main() {
  using namespace gbc;
  bench::banner("Staging-tier ablation: no tier / drain only / drain+replica",
                "extension (multi-level staging)");

  workloads::CommGroupBenchConfig wcfg;
  wcfg.comm_group_size = 4;
  wcfg.compute_per_iter = 100 * sim::kMillisecond;
  wcfg.iterations = 600;
  wcfg.footprint_mib = 64.0;
  const harness::WorkloadFactory factory = [wcfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, wcfg);
  };

  ckpt::CkptConfig cc;
  cc.group_size = 8;
  std::vector<harness::CkptRequest> reqs;
  for (double at : {10.0, 22.0, 34.0}) {
    reqs.push_back(harness::CkptRequest{sim::from_seconds(at),
                                        ckpt::Protocol::kGroupBased});
  }
  // The third checkpoint (t=34) has not finished draining at the failure
  // (34 + ~8 s drain > 40), so only the replica can save it.
  const sim::Time failure_at = sim::from_seconds(40);

  struct Row {
    const char* name;
    bool tier;
    bool replicate;
  };
  const std::vector<Row> rows{
      {"no tier (PFS only)", false, false},
      {"local tier + drain", true, false},
      {"tier + drain + replica", true, true},
  };

  // Base + three checkpointed runs through the sweep pool.
  std::vector<harness::ExperimentPoint> pts;
  harness::ExperimentPoint base;
  base.preset = staging_preset(false, false);
  base.factory = factory;
  pts.push_back(base);
  for (const Row& r : rows) {
    harness::ExperimentPoint p;
    p.preset = staging_preset(r.tier, r.replicate);
    p.factory = factory;
    p.ckpt_cfg = cc;
    p.requests = reqs;
    pts.push_back(std::move(p));
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);
  const double base_s = runs[0].completion_seconds();

  harness::Table t({"config", "effective_delay_s", "ckpts_skipped",
                    "rollback_iter", "restart_read_s", "tts_s",
                    "restored_local/rep/pfs"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto rec = harness::run_with_failure(
        staging_preset(rows[i].tier, rows[i].replicate), factory, cc, reqs,
        failure_at, /*failed_rank=*/0);
    t.add_row({rows[i].name,
               harness::Table::num(runs[i + 1].completion_seconds() - base_s),
               std::to_string(rec.checkpoints_skipped),
               std::to_string(rec.rollback_iteration),
               harness::Table::num(rec.restart_read_seconds),
               harness::Table::num(rec.total_seconds, 1),
               std::to_string(rec.ranks_restored_local) + "/" +
                   std::to_string(rec.ranks_restored_replica) + "/" +
                   std::to_string(rec.ranks_restored_pfs)});
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_staging"));
  const auto tier_preset = staging_preset(true, true);
  bench::report_sweep("ablation_staging", stats, &tier_preset);
  std::printf(
      "\nExpected: the tier cuts the effective delay by an order of\n"
      "magnitude (local write vs shared PFS). Without replication the\n"
      "failure skips the undrained newest checkpoint (older rollback, more\n"
      "recomputation); with replication the newest checkpoint survives and\n"
      "restart reads come from the local tier and the partner instead of\n"
      "the contended PFS.\n");
  return 0;
}
