// Extension experiment: checkpoint interval under failures. Group-based
// checkpointing lowers the effective cost C of a checkpoint; by Young's
// rule (interval ~ sqrt(2*C*MTBF)) that makes more frequent checkpoints
// affordable, which shortens the expected time-to-solution when failures
// are common. This bench measures it end-to-end with simulated Poisson
// failures (deterministic seed).
#include "bench_util.hpp"
#include "harness/interval.hpp"

int main() {
  using namespace gbc;
  bench::banner("Checkpoint interval under Poisson failures",
                "extension (Young's rule meets group-based checkpointing)");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::comm_group_factory(4, 6000);  // ~10 min of work
  harness::FailureModel fm;
  fm.mtbf_seconds = 150.0;
  fm.seed = 9;

  // Each (protocol, interval) cell is an independent failure-injection run
  // (own Engine per restart attempt, RNG seeded from the cell's FailureModel),
  // so the grid goes through the generic SweepRunner::map.
  struct Cell {
    ckpt::Protocol protocol;
    double interval;
  };
  std::vector<Cell> cells;
  for (auto protocol : {ckpt::Protocol::kBlockingCoordinated,
                        ckpt::Protocol::kGroupBased}) {
    for (double interval : {30.0, 60.0, 120.0, 1e6}) {
      cells.push_back({protocol, interval});
    }
  }
  harness::SweepStats stats;
  auto results = harness::SweepRunner::shared().map<harness::MtbfRunResult>(
      cells.size(),
      [&](std::size_t i) {
        ckpt::CkptConfig cc;
        cc.group_size = 4;
        return harness::run_with_poisson_failures(
            preset, factory, cc, cells[i].protocol,
            sim::from_seconds(cells[i].interval), fm);
      },
      &stats);
  for (std::size_t i = 0; i < results.size(); ++i) {
    stats.points[i].events_processed = results[i].events_processed;
  }

  harness::Table t({"protocol", "interval_s", "time_to_solution_s",
                    "failures", "ckpts_completed"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& res = results[i];
    t.add_row({cells[i].protocol == ckpt::Protocol::kGroupBased
                   ? "group-based(4)"
                   : "blocking(32)",
               cells[i].interval > 1e5
                   ? "none"
                   : harness::Table::num(cells[i].interval, 0),
               harness::Table::num(res.total_seconds, 1),
               std::to_string(res.failures),
               std::to_string(res.checkpoints_completed)});
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_interval"));
  bench::report_sweep("ablation_interval", stats, &preset);

  std::printf("\nYoung-optimal intervals for MTBF=%.0fs: blocking C~43s -> "
              "%.0fs; group-based C~10s -> %.0fs\n",
              fm.mtbf_seconds,
              harness::young_interval_seconds(43.0, fm.mtbf_seconds),
              harness::young_interval_seconds(10.0, fm.mtbf_seconds));
  std::printf(
      "Expected: a U-shape in the interval. Too-frequent checkpoints thrash\n"
      "(cycles and restart reads crowd out computation), no checkpoints\n"
      "restart from scratch on every failure, and the sweet spot lands near\n"
      "Young's estimate. Group-based checkpointing beats blocking at every\n"
      "interval because each cycle costs the application ~4x less.\n");
  return 0;
}
