// Figure 5: "Effective Checkpoint Delay at 8 Time Points for HPL" — the 8x4
// HPL run (dominant communication group of four along grid rows), checkpoint
// group sizes All(32), 16, 8, 4, 2, 1, issuance times 50..400 s.
//
// One base run plus the 8x6 grid of checkpointed runs, all through the
// SweepRunner.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("HPL: Effective Checkpoint Delay at 8 time points",
                "Figure 5");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::hpl_factory();
  const std::vector<int> sizes{0, 16, 8, 4, 2, 1};

  std::vector<harness::ExperimentPoint> pts;
  {
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = factory;
    pts.push_back(std::move(base));
  }
  std::vector<int> issuances;
  for (int issuance = 50; issuance <= 400; issuance += 50) {
    issuances.push_back(issuance);
    for (int size : sizes) {
      harness::ExperimentPoint p;
      p.preset = preset;
      p.factory = factory;
      p.ckpt_cfg.group_size = size;
      p.requests.push_back(harness::CkptRequest{sim::from_seconds(issuance),
                                                ckpt::Protocol::kGroupBased});
      pts.push_back(std::move(p));
    }
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);
  const double base = runs[0].completion_seconds();
  std::printf("HPL failure-free makespan: %.1f s\n\n", base);

  harness::Table t({"issuance_s", "All(32)", "Group(16)", "Group(8)",
                    "Group(4)", "Group(2)", "Individual(1)"});
  std::size_t at = 1;
  for (int issuance : issuances) {
    std::vector<std::string> row{std::to_string(issuance)};
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      auto m = harness::to_delay_measurement(runs[at++], base);
      row.push_back(harness::Table::num(m.effective_delay_seconds()));
    }
    t.add_row(std::move(row));
  }
  t.print();
  t.write_csv(bench::csv_path("fig5_hpl_timepoints"));
  bench::report_sweep("fig5_hpl_timepoints", stats, &preset);
  std::printf(
      "\nExpected shape (paper): group sizes 2..16 beat All(32) at every\n"
      "point (up to ~78%% reduction, best near sizes 4/8 matching the 8x4\n"
      "grid's communication groups); size 1 helps little or hurts; the\n"
      "regular delay itself varies across points because the HPL footprint\n"
      "is not constant over the run.\n");
  return 0;
}
