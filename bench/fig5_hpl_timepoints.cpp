// Figure 5: "Effective Checkpoint Delay at 8 Time Points for HPL" — the 8x4
// HPL run (dominant communication group of four along grid rows), checkpoint
// group sizes All(32), 16, 8, 4, 2, 1, issuance times 50..400 s.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("HPL: Effective Checkpoint Delay at 8 time points",
                "Figure 5");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::hpl_factory();
  const double base =
      harness::run_experiment(preset, factory, ckpt::CkptConfig{})
          .completion_seconds();
  std::printf("HPL failure-free makespan: %.1f s\n\n", base);

  harness::Table t({"issuance_s", "All(32)", "Group(16)", "Group(8)",
                    "Group(4)", "Group(2)", "Individual(1)"});
  for (int issuance = 50; issuance <= 400; issuance += 50) {
    std::vector<std::string> row{std::to_string(issuance)};
    for (int size : {0, 16, 8, 4, 2, 1}) {
      ckpt::CkptConfig cc;
      cc.group_size = size;
      auto m = harness::measure_effective_delay_with_base(
          preset, factory, cc, sim::from_seconds(issuance),
          ckpt::Protocol::kGroupBased, base);
      row.push_back(harness::Table::num(m.effective_delay_seconds()));
      std::fflush(stdout);
    }
    t.add_row(std::move(row));
  }
  t.print();
  t.write_csv(bench::csv_path("fig5_hpl_timepoints"));
  std::printf(
      "\nExpected shape (paper): group sizes 2..16 beat All(32) at every\n"
      "point (up to ~78%% reduction, best near sizes 4/8 matching the 8x4\n"
      "grid's communication groups); size 1 helps little or hurts; the\n"
      "regular delay itself varies across points because the HPL footprint\n"
      "is not constant over the run.\n");
  return 0;
}
