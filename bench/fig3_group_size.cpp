// Figure 3: "Checkpoint Group Size" — Effective Checkpoint Delay of the
// communication-group micro-benchmark (32 procs, 180 MB each) for checkpoint
// group sizes All(32), 16, 8, 4, 2, 1 across communication group sizes 16,
// 8, 4, 2 and the embarrassingly-parallel case.
//
// All 35 runs (5 bases + 5x6 checkpointed) are independent deterministic
// simulations, so the whole grid goes through the SweepRunner at once.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("Effective Checkpoint Delay vs checkpoint group size",
                "Figure 3");
  const auto preset = harness::icpp07_cluster();
  const std::uint64_t iters = 1200;  // ~120s run, outlasting any checkpoint
  const sim::Time issuance = sim::from_seconds(5);
  const std::vector<int> comms{16, 8, 4, 2, 1};
  const std::vector<int> ckpt_sizes{0, 16, 8, 4, 2, 1};

  // Point layout: for each comm size, one base run then the six
  // checkpointed runs.
  std::vector<harness::ExperimentPoint> pts;
  for (int comm : comms) {
    auto factory = bench::comm_group_factory(comm, iters);
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = factory;
    pts.push_back(base);
    for (int ckpt_size : ckpt_sizes) {
      harness::ExperimentPoint p;
      p.preset = preset;
      p.factory = factory;
      p.ckpt_cfg.group_size = ckpt_size;
      p.requests.push_back(
          harness::CkptRequest{issuance, ckpt::Protocol::kGroupBased});
      pts.push_back(std::move(p));
    }
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);

  harness::Table t({"comm_group", "ckpt_group", "effective_delay_s"});
  std::size_t at = 0;
  for (int comm : comms) {
    const double base = runs[at++].completion_seconds();
    for (int ckpt_size : ckpt_sizes) {
      auto m = harness::to_delay_measurement(runs[at++], base);
      t.add_row({comm == 1 ? "EP(1)" : std::to_string(comm),
                 bench::group_label(preset.nranks, ckpt_size),
                 harness::Table::num(m.effective_delay_seconds())});
    }
  }
  t.print();
  t.write_csv(bench::csv_path("fig3_group_size"));
  bench::report_sweep("fig3_group_size", stats, &preset);
  std::printf(
      "\nExpected shape (paper): while the checkpoint group covers >= one\n"
      "communication group, halving the checkpoint group roughly halves the\n"
      "delay; below the communication group size the delay flattens or\n"
      "worsens, and size 1 under-utilizes the parallel file system.\n");
  return 0;
}
