// Figure 3: "Checkpoint Group Size" — Effective Checkpoint Delay of the
// communication-group micro-benchmark (32 procs, 180 MB each) for checkpoint
// group sizes All(32), 16, 8, 4, 2, 1 across communication group sizes 16,
// 8, 4, 2 and the embarrassingly-parallel case.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("Effective Checkpoint Delay vs checkpoint group size",
                "Figure 3");
  const auto preset = harness::icpp07_cluster();
  const std::uint64_t iters = 1200;  // ~120s run, outlasting any checkpoint
  const sim::Time issuance = sim::from_seconds(5);

  harness::Table t({"comm_group", "ckpt_group", "effective_delay_s"});
  for (int comm : {16, 8, 4, 2, 1}) {
    auto factory = bench::comm_group_factory(comm, iters);
    const double base =
        harness::run_experiment(preset, factory, ckpt::CkptConfig{})
            .completion_seconds();
    for (int ckpt_size : {0, 16, 8, 4, 2, 1}) {
      ckpt::CkptConfig cc;
      cc.group_size = ckpt_size;
      auto m = harness::measure_effective_delay_with_base(
          preset, factory, cc, issuance, ckpt::Protocol::kGroupBased, base);
      t.add_row({comm == 1 ? "EP(1)" : std::to_string(comm),
                 bench::group_label(preset.nranks, ckpt_size),
                 harness::Table::num(m.effective_delay_seconds())});
      std::fflush(stdout);
    }
  }
  t.print();
  t.write_csv(bench::csv_path("fig3_group_size"));
  std::printf(
      "\nExpected shape (paper): while the checkpoint group covers >= one\n"
      "communication group, halving the checkpoint group roughly halves the\n"
      "delay; below the communication group size the delay flattens or\n"
      "worsens, and size 1 under-utilizes the parallel file system.\n");
  return 0;
}
