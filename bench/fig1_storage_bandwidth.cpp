// Figure 1: "Bandwidth per Client to Storage with Different Number of
// Clients" — concurrent writers of checkpoint files against the 4-server
// PVFS2 system (~140 MB/s aggregate over IPoIB).
#include "bench_util.hpp"
#include "sim/engine.hpp"
#include "storage/storage.hpp"

namespace {

using namespace gbc;

struct Point {
  int clients;
  double per_client_mbps;
  double aggregate_mbps;
};

Point measure(int clients) {
  sim::Engine eng;
  storage::StorageSystem fs(eng, storage::StorageConfig{});
  const storage::Bytes file = storage::mib(256);
  sim::Time slowest = 0;
  for (int c = 0; c < clients; ++c) {
    eng.spawn([](storage::StorageSystem& s, storage::Bytes b, sim::Engine& e,
                 sim::Time& out) -> sim::Task<void> {
      co_await s.write(b);
      if (e.now() > out) out = e.now();
    }(fs, file, eng, slowest));
  }
  eng.run();
  const double secs = sim::to_seconds(slowest);
  const double total_mb =
      static_cast<double>(file) * clients / static_cast<double>(storage::kMiB);
  return Point{clients, total_mb / clients / secs, total_mb / secs};
}

}  // namespace

int main() {
  bench::banner("Storage bandwidth vs. number of clients", "Figure 1");
  harness::Table t({"clients", "bandwidth_per_client_MBps",
                    "aggregated_throughput_MBps"});
  for (int clients : {1, 2, 4, 8, 16, 32}) {
    Point p = measure(clients);
    t.add_row({std::to_string(p.clients),
               harness::Table::num(p.per_client_mbps),
               harness::Table::num(p.aggregate_mbps)});
  }
  t.print();
  t.write_csv(bench::csv_path("fig1_storage_bandwidth"));
  std::printf("\nExpected shape: per-client bandwidth falls ~hyperbolically; "
              "aggregate saturates near 140 MB/s and droops slightly under "
              "heavy client counts.\n");
  return 0;
}
