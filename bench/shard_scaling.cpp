// Shard-scaling microbenchmark: one fixed scale-model configuration run at
// 1, 2, 4 and 8 shards. Reports host events/s per shard count plus the
// events-per-window balance — on a many-core host the wall time drops with
// shards; on a constrained CI box (where the thread budget degrades every
// run to one worker) the balance statistics still validate that the
// partition would parallelize. State hashes are printed so a scaling run
// doubles as a determinism check: every row must agree.
//
// --fullstack switches to the real protocol stack (the `gbcsim run`
// configuration: MiniMPI + Fabric + a group-based checkpoint): each row
// additionally reports the per-shard processed-event split and shard 0's
// share — the number the per-rank LP partition (DESIGN.md §13) is supposed
// to drive from ~100% down to the service traffic.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/scale_model.hpp"
#include "harness/sim_cluster.hpp"
#include "net/topology.hpp"
#include "workloads/microbench.hpp"

namespace {

using namespace gbc;

void append_record(const std::string& name, int ranks, int shards,
                   int threads, double wall,
                   const gbc::harness::ScaleResult& r) {
  const char* json = std::getenv("GBC_BENCH_JSON");
  if (!json || !*json) return;
  std::FILE* f = std::fopen(json, "a");
  if (!f) return;
  const char* sha = std::getenv("GBC_GIT_SHA");
  const double ev = static_cast<double>(r.events);
  std::fprintf(f,
               "{\"sweep\":\"%s\",\"git_sha\":\"%s\",\"ranks\":%d,"
               "\"shards\":%d,\"threads\":%d,\"points\":1,"
               "\"wall_seconds\":%.6f,\"events\":%lld,"
               "\"events_per_second\":%.0f,\"windows\":%lld,"
               "\"rounds\":%lld,\"windows_per_event\":%.6f,"
               "\"cross_events\":%lld,\"cross_ratio\":%.6f,"
               "\"window_balance\":%.4f}\n",
               name.c_str(), sha && *sha ? sha : "unknown", ranks, shards,
               threads, wall, static_cast<long long>(r.events),
               wall > 0 ? ev / wall : 0.0, static_cast<long long>(r.windows),
               static_cast<long long>(r.rounds),
               ev > 0 ? static_cast<double>(r.windows) / ev : 0.0,
               static_cast<long long>(r.cross_events),
               ev > 0 ? static_cast<double>(r.cross_events) / ev : 0.0,
               r.window_balance);
  std::fclose(f);
}

// One full-stack run at a given shard/thread split. Mirrors
// harness::run_experiment but keeps the cluster in scope so the per-shard
// event counters survive the run.
struct FullstackRow {
  int threads_used = 1;
  double wall = 0;
  sim::Time completion = 0;
  std::uint64_t events = 0;
  std::vector<std::uint64_t> shard_events;
  double shard0_share = 0;
  // Per-LP delivery split from the bus (rank LPs 0..n-1, then the root
  // service LP): the decomposition metric. service_shard0_share is the
  // root LP's fraction of all bus deliveries — what remains of the old
  // monolithic service LP after coordinators and storage servers moved out.
  std::vector<std::uint64_t> lp_delivered;
  double service_shard0_share = 0;
  std::uint64_t hash = 0;
};

FullstackRow run_fullstack(int nranks, int shards, int threads,
                           std::uint64_t iterations) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = nranks;
  p.shards = shards;
  p.threads = threads;

  ckpt::CkptConfig cc;
  cc.group_size = std::max(1, nranks / 4);

  workloads::CommGroupBenchConfig wcfg;
  wcfg.comm_group_size = std::max(2, nranks / 4);
  wcfg.compute_per_iter = 50 * sim::kMillisecond;
  wcfg.iterations = iterations;
  wcfg.footprint_mib = 64.0;

  const auto start = std::chrono::steady_clock::now();
  harness::SimCluster cluster(p, cc);
  auto wl = std::make_unique<workloads::CommGroupBench>(nranks, wcfg);
  wl->setup(cluster.mpi());
  wl->attach(cluster.checkpoints());
  // Two checkpoint cycles landing mid-run, whatever the iteration count, so
  // the service LP carries realistic coordination + storage traffic.
  const sim::Time span =
      static_cast<sim::Time>(iterations) * wcfg.compute_per_iter;
  cluster.checkpoints().request_at(span / 3, ckpt::Protocol::kGroupBased);
  cluster.checkpoints().request_at(2 * span / 3, ckpt::Protocol::kGroupBased);

  std::vector<sim::Time> done(nranks, 0);
  cluster.spawn_ranks([&](mpi::RankCtx& rank) {
    return [](workloads::Workload* w, mpi::RankCtx* rk,
              sim::Time* slot) -> sim::Task<void> {
      co_await w->run_rank(*rk, {});
      *slot = rk->engine().now();
    }(wl.get(), &rank, &done[rank.world_rank()]);
  });
  cluster.run();

  FullstackRow row;
  row.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  row.threads_used = cluster.sharded().threads();
  row.completion = *std::max_element(done.begin(), done.end());
  row.events = cluster.sharded().total_events();
  for (int s = 0; s < shards; ++s) {
    row.shard_events.push_back(cluster.sharded().stats(s).events);
  }
  row.shard0_share =
      row.events > 0
          ? static_cast<double>(row.shard_events[0]) / row.events
          : 0.0;
  const sim::LpBus& bus = cluster.bus();
  std::uint64_t delivered_total = 0;
  for (int lp = 0; lp <= nranks; ++lp) {
    row.lp_delivered.push_back(bus.delivered(lp));
    delivered_total += bus.delivered(lp);
  }
  row.service_shard0_share =
      delivered_total > 0
          ? static_cast<double>(row.lp_delivered.back()) / delivered_total
          : 0.0;
  // Fold completion + per-rank state into one comparable digest.
  std::uint64_t h = static_cast<std::uint64_t>(row.completion);
  for (int r = 0; r < nranks; ++r) {
    h = h * 1000003 + wl->state(r).hash;
  }
  row.hash = h;
  return row;
}

void append_fullstack_record(int ranks, int shards, const FullstackRow& r) {
  const char* json = std::getenv("GBC_BENCH_JSON");
  if (!json || !*json) return;
  std::FILE* f = std::fopen(json, "a");
  if (!f) return;
  const char* sha = std::getenv("GBC_GIT_SHA");
  const double ev = static_cast<double>(r.events);
  std::fprintf(f,
               "{\"sweep\":\"shard_scaling_fullstack/%d\",\"git_sha\":\"%s\","
               "\"mode\":\"fullstack\",\"ranks\":%d,\"shards\":%d,"
               "\"threads\":%d,\"points\":1,\"wall_seconds\":%.6f,"
               "\"events\":%llu,\"events_per_second\":%.0f,"
               "\"shard0_events\":%llu,\"shard0_share\":%.4f,"
               "\"service_shard0_share\":%.4f,"
               "\"shard_events\":[",
               shards, sha && *sha ? sha : "unknown", ranks, shards,
               r.threads_used, r.wall, static_cast<unsigned long long>(r.events),
               r.wall > 0 ? ev / r.wall : 0.0,
               static_cast<unsigned long long>(r.shard_events[0]),
               r.shard0_share, r.service_shard0_share);
  for (std::size_t s = 0; s < r.shard_events.size(); ++s) {
    std::fprintf(f, "%s%llu", s ? "," : "",
                 static_cast<unsigned long long>(r.shard_events[s]));
  }
  // The full per-LP delivery split (rank LPs 0..n-1, then the service LP):
  // which *logical process* the traffic lands on, independent of how LPs are
  // packed onto shards.
  std::fprintf(f, "],\"lp_delivered\":[");
  for (std::size_t lp = 0; lp < r.lp_delivered.size(); ++lp) {
    std::fprintf(f, "%s%llu", lp ? "," : "",
                 static_cast<unsigned long long>(r.lp_delivered[lp]));
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

int run_fullstack_sweep(int ranks, std::uint64_t iterations) {
  bench::banner("shard scaling, full protocol stack (events/s vs DES shards)",
                "per-rank LP sharding, DESIGN.md 13");
  harness::Table t({"shards", "threads", "wall_s", "completion_s", "events",
                    "kev_per_s", "shard0_share", "svc_share", "hash"});
  std::FILE* csv =
      std::fopen(bench::csv_path("shard_scaling_fullstack").c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "shards,threads,wall_seconds,completion_seconds,events,"
                 "events_per_second,shard0_events,shard0_share,"
                 "service_shard0_share,hash\n");
  }
  std::uint64_t first_hash = 0;
  bool hashes_agree = true;
  for (int shards : {1, 2, 4}) {
    if (shards > ranks) continue;
    const FullstackRow r = run_fullstack(ranks, shards, /*threads=*/0,
                                         iterations);
    if (shards == 1) first_hash = r.hash;
    hashes_agree = hashes_agree && r.hash == first_hash;
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(r.hash));
    t.add_row({std::to_string(shards), std::to_string(r.threads_used),
               harness::Table::num(r.wall),
               harness::Table::num(sim::to_seconds(r.completion)),
               std::to_string(r.events),
               harness::Table::num(static_cast<double>(r.events) / r.wall /
                                   1e3),
               harness::Table::num(r.shard0_share),
               harness::Table::num(r.service_shard0_share), hash});
    if (csv) {
      std::fprintf(csv, "%d,%d,%.6f,%.6f,%llu,%.0f,%llu,%.4f,%.4f,%016llx\n",
                   shards, r.threads_used, r.wall,
                   sim::to_seconds(r.completion),
                   static_cast<unsigned long long>(r.events),
                   r.wall > 0 ? static_cast<double>(r.events) / r.wall : 0.0,
                   static_cast<unsigned long long>(r.shard_events[0]),
                   r.shard0_share, r.service_shard0_share,
                   static_cast<unsigned long long>(r.hash));
    }
    append_fullstack_record(ranks, shards, r);
  }
  if (csv) std::fclose(csv);
  t.print();
  std::printf("\nstate hashes %s across shard counts\n",
              hashes_agree ? "IDENTICAL" : "DIVERGED");
  return hashes_agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  harness::FlagSet flags("shard_scaling");
  flags.add_int("ranks", 0,
                "simulated MPI processes (0 = 1024 scale model, 32 fullstack)");
  flags.add_int("iterations", 0,
                "compute iterations per rank (0 = 30 scale model, "
                "240 fullstack)");
  flags.add_string("topology", "fat-tree:32:2",
                   "flat | fat-tree:<radix>:<oversub>");
  flags.add_bool("fullstack", false,
                 "run the real protocol stack (gbcsim run config) instead of "
                 "the scale model; reports the per-shard event split");
  if (!flags.parse(argc - 1, argv + 1)) {
    if (flags.help_requested()) {
      std::fputs(flags.usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  const auto topo = net::parse_topology(flags.get_string("topology"));
  if (!topo) {
    std::fprintf(stderr, "invalid --topology '%s'\n",
                 flags.get_string("topology").c_str());
    return 2;
  }

  if (flags.get_bool("fullstack")) {
    // The real stack simulates far fewer ranks than the scale model.
    const int ranks = flags.get_int("ranks") > 0 ? flags.get_int("ranks") : 32;
    const int iters =
        flags.get_int("iterations") > 0 ? flags.get_int("iterations") : 240;
    return run_fullstack_sweep(ranks, static_cast<std::uint64_t>(iters));
  }

  bench::banner("shard scaling (events/s vs DES shards)",
                "the scaling methodology of Sec. 5");

  harness::ScaleConfig cfg;
  cfg.nranks = flags.get_int("ranks") > 0 ? flags.get_int("ranks") : 1024;
  cfg.iterations =
      flags.get_int("iterations") > 0 ? flags.get_int("iterations") : 30;
  cfg.net.topology = *topo;
  cfg.footprint_mib = 8.0;
  cfg.chunk_mib = 4.0;
  cfg.ckpt_group = cfg.nranks / 4;
  cfg.pfs_servers = std::max(4, cfg.nranks / 64);
  cfg.issuance = sim::from_milliseconds(300);

  harness::Table t({"shards", "threads", "wall_s", "events", "Mev_per_s",
                    "windows", "rounds", "cross", "balance", "state_hash"});
  std::FILE* csv = std::fopen(bench::csv_path("shard_scaling").c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "shards,threads,wall_seconds,events,events_per_second,"
                 "windows,rounds,cross_events,window_balance,state_hash\n");
  }
  std::uint64_t first_hash = 0;
  bool hashes_agree = true;
  for (int shards : {1, 2, 4, 8}) {
    cfg.shards = shards;
    cfg.threads = 0;  // lease from the shared budget
    const auto start = std::chrono::steady_clock::now();
    const auto r = harness::run_scale_model(cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (shards == 1) first_hash = r.state_hash;
    hashes_agree = hashes_agree && r.state_hash == first_hash;
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(r.state_hash));
    t.add_row({std::to_string(shards), std::to_string(r.threads_used),
               harness::Table::num(wall), std::to_string(r.events),
               harness::Table::num(static_cast<double>(r.events) / wall / 1e6),
               std::to_string(r.windows), std::to_string(r.rounds),
               std::to_string(r.cross_events),
               harness::Table::num(r.window_balance), hash});
    if (csv) {
      std::fprintf(csv, "%d,%d,%.6f,%llu,%.0f,%llu,%llu,%llu,%.4f,%016llx\n",
                   shards, r.threads_used, wall,
                   static_cast<unsigned long long>(r.events),
                   wall > 0 ? static_cast<double>(r.events) / wall : 0.0,
                   static_cast<unsigned long long>(r.windows),
                   static_cast<unsigned long long>(r.rounds),
                   static_cast<unsigned long long>(r.cross_events),
                   r.window_balance,
                   static_cast<unsigned long long>(r.state_hash));
    }
    append_record("shard_scaling/" + std::to_string(shards), cfg.nranks,
                  shards, r.threads_used, wall, r);
  }
  if (csv) std::fclose(csv);
  t.print();
  std::printf("\nstate hashes %s across shard counts\n",
              hashes_agree ? "IDENTICAL" : "DIVERGED");
  return hashes_agree ? 0 : 1;
}
