// Shard-scaling microbenchmark: one fixed scale-model configuration run at
// 1, 2, 4 and 8 shards. Reports host events/s per shard count plus the
// events-per-window balance — on a many-core host the wall time drops with
// shards; on a constrained CI box (where the thread budget degrades every
// run to one worker) the balance statistics still validate that the
// partition would parallelize. State hashes are printed so a scaling run
// doubles as a determinism check: every row must agree.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "harness/cli.hpp"
#include "harness/scale_model.hpp"
#include "net/topology.hpp"

namespace {

using namespace gbc;

void append_record(const std::string& name, int ranks, int shards,
                   int threads, double wall,
                   const gbc::harness::ScaleResult& r) {
  const char* json = std::getenv("GBC_BENCH_JSON");
  if (!json || !*json) return;
  std::FILE* f = std::fopen(json, "a");
  if (!f) return;
  const char* sha = std::getenv("GBC_GIT_SHA");
  const double ev = static_cast<double>(r.events);
  std::fprintf(f,
               "{\"sweep\":\"%s\",\"git_sha\":\"%s\",\"ranks\":%d,"
               "\"shards\":%d,\"threads\":%d,\"points\":1,"
               "\"wall_seconds\":%.6f,\"events\":%lld,"
               "\"events_per_second\":%.0f,\"windows\":%lld,"
               "\"rounds\":%lld,\"windows_per_event\":%.6f,"
               "\"cross_events\":%lld,\"cross_ratio\":%.6f,"
               "\"window_balance\":%.4f}\n",
               name.c_str(), sha && *sha ? sha : "unknown", ranks, shards,
               threads, wall, static_cast<long long>(r.events),
               wall > 0 ? ev / wall : 0.0, static_cast<long long>(r.windows),
               static_cast<long long>(r.rounds),
               ev > 0 ? static_cast<double>(r.windows) / ev : 0.0,
               static_cast<long long>(r.cross_events),
               ev > 0 ? static_cast<double>(r.cross_events) / ev : 0.0,
               r.window_balance);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  harness::FlagSet flags("shard_scaling");
  flags.add_int("ranks", 1024, "simulated MPI processes");
  flags.add_int("iterations", 30, "compute iterations per rank");
  flags.add_string("topology", "fat-tree:32:2",
                   "flat | fat-tree:<radix>:<oversub>");
  if (!flags.parse(argc - 1, argv + 1)) {
    if (flags.help_requested()) {
      std::fputs(flags.usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  const auto topo = net::parse_topology(flags.get_string("topology"));
  if (!topo) {
    std::fprintf(stderr, "invalid --topology '%s'\n",
                 flags.get_string("topology").c_str());
    return 2;
  }

  bench::banner("shard scaling (events/s vs DES shards)",
                "the scaling methodology of Sec. 5");

  harness::ScaleConfig cfg;
  cfg.nranks = flags.get_int("ranks");
  cfg.iterations = flags.get_int("iterations");
  cfg.net.topology = *topo;
  cfg.footprint_mib = 8.0;
  cfg.chunk_mib = 4.0;
  cfg.ckpt_group = cfg.nranks / 4;
  cfg.pfs_servers = std::max(4, cfg.nranks / 64);
  cfg.issuance = sim::from_milliseconds(300);

  harness::Table t({"shards", "threads", "wall_s", "events", "Mev_per_s",
                    "windows", "rounds", "cross", "balance", "state_hash"});
  std::FILE* csv = std::fopen(bench::csv_path("shard_scaling").c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "shards,threads,wall_seconds,events,events_per_second,"
                 "windows,rounds,cross_events,window_balance,state_hash\n");
  }
  std::uint64_t first_hash = 0;
  bool hashes_agree = true;
  for (int shards : {1, 2, 4, 8}) {
    cfg.shards = shards;
    cfg.threads = 0;  // lease from the shared budget
    const auto start = std::chrono::steady_clock::now();
    const auto r = harness::run_scale_model(cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (shards == 1) first_hash = r.state_hash;
    hashes_agree = hashes_agree && r.state_hash == first_hash;
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(r.state_hash));
    t.add_row({std::to_string(shards), std::to_string(r.threads_used),
               harness::Table::num(wall), std::to_string(r.events),
               harness::Table::num(static_cast<double>(r.events) / wall / 1e6),
               std::to_string(r.windows), std::to_string(r.rounds),
               std::to_string(r.cross_events),
               harness::Table::num(r.window_balance), hash});
    if (csv) {
      std::fprintf(csv, "%d,%d,%.6f,%llu,%.0f,%llu,%llu,%llu,%.4f,%016llx\n",
                   shards, r.threads_used, wall,
                   static_cast<unsigned long long>(r.events),
                   wall > 0 ? static_cast<double>(r.events) / wall : 0.0,
                   static_cast<unsigned long long>(r.windows),
                   static_cast<unsigned long long>(r.rounds),
                   static_cast<unsigned long long>(r.cross_events),
                   r.window_balance,
                   static_cast<unsigned long long>(r.state_hash));
    }
    append_record("shard_scaling/" + std::to_string(shards), cfg.nranks,
                  shards, r.threads_used, wall, r);
  }
  if (csv) std::fclose(csv);
  t.print();
  std::printf("\nstate hashes %s across shard counts\n",
              hashes_agree ? "IDENTICAL" : "DIVERGED");
  return hashes_agree ? 0 : 1;
}
