#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "harness/experiment.hpp"
#include "harness/preset.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "workloads/hpl.hpp"
#include "workloads/microbench.hpp"
#include "workloads/motifminer.hpp"

namespace gbc::bench {

/// Where figure CSVs land: $GBC_BENCH_OUT when set, else bench_results/
/// under the current directory.
inline std::string csv_path(const std::string& name) {
  const char* env = std::getenv("GBC_BENCH_OUT");
  const std::string dir = env && *env ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir + "/" + name + ".csv";
}

/// One-line sweep telemetry printed by the converted figure drivers. When
/// $GBC_BENCH_JSON names a file, also appends one JSON record per sweep
/// (JSONL) so scripts/run_benchmarks.sh can assemble a machine-readable
/// summary without parsing stdout. Records carry the provenance needed to
/// compare runs across commits: the git SHA ($GBC_GIT_SHA, exported by
/// run_benchmarks.sh) and, when `preset` is given, the active storage and
/// staging-tier configuration.
inline void report_sweep(const std::string& name, const harness::SweepStats& s,
                         const harness::ClusterPreset* preset = nullptr) {
  std::printf("[sweep] %zu points on %d thread%s: %.2fs wall, %.2fM "
              "simulated events (%.1fM events/s)\n",
              s.points.size(), s.threads, s.threads == 1 ? "" : "s",
              s.wall_seconds, static_cast<double>(s.total_events()) / 1e6,
              s.events_per_second() / 1e6);
  const char* json = std::getenv("GBC_BENCH_JSON");
  if (!json || !*json) return;
  std::FILE* f = std::fopen(json, "a");
  if (!f) return;
  const char* sha = std::getenv("GBC_GIT_SHA");
  std::fprintf(f,
               "{\"sweep\":\"%s\",\"git_sha\":\"%s\",\"threads\":%d,"
               "\"points\":%zu,\"wall_seconds\":%.6f,\"events\":%lld,"
               "\"events_per_second\":%.0f",
               name.c_str(), sha && *sha ? sha : "unknown", s.threads,
               s.points.size(), s.wall_seconds,
               static_cast<long long>(s.total_events()),
               s.events_per_second());
  if (preset) {
    const auto& st = preset->storage;
    std::fprintf(f,
                 ",\"storage\":{\"num_servers\":%d,"
                 "\"per_client_cap_mbps\":%g,\"aggregate_cap_mbps\":%g,"
                 "\"stripe_count\":%d}",
                 st.num_servers, st.per_client_cap_mbps, st.aggregate_cap_mbps,
                 st.stripe_count);
    const auto& tc = preset->tier;
    std::fprintf(f,
                 ",\"tier\":{\"enabled\":%s,\"local_write_mbps\":%g,"
                 "\"local_read_mbps\":%g,\"local_capacity_mib\":%g,"
                 "\"drain_mbps\":%g,\"drain_chunk_mib\":%g,"
                 "\"replicate\":%s,\"replica_offset\":%d}",
                 tc.enabled ? "true" : "false", tc.local_write_mbps,
                 tc.local_read_mbps, tc.local_capacity_mib, tc.drain_mbps,
                 tc.drain_chunk_mib, tc.replicate ? "true" : "false",
                 tc.replica_offset);
    const auto& ec = tc.erasure;
    std::fprintf(f,
                 ",\"erasure\":{\"enabled\":%s,\"k\":%d,\"m\":%d,"
                 "\"codec\":\"%s\"}",
                 ec.enabled ? "true" : "false", ec.k, ec.m,
                 storage::erasure_codec_name(ec.codec));
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s of Gao et al., \"Group-based "
              "Coordinated Checkpointing for MPI\", ICPP 2007)\n\n",
              title.c_str(), paper_ref.c_str());
}

/// Figure 3/4 micro-benchmark factory (180 MB/process, 32 ranks).
inline harness::WorkloadFactory comm_group_factory(int comm_group_size,
                                                   std::uint64_t iterations) {
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = comm_group_size;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.iterations = iterations;
  cfg.footprint_mib = 180.0;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

inline harness::WorkloadFactory barrier_factory(int comm_group_size,
                                                sim::Time barrier_period,
                                                std::uint64_t iterations) {
  workloads::BarrierBenchConfig cfg;
  cfg.comm_group_size = comm_group_size;
  cfg.compute_per_iter = 100 * sim::kMillisecond;
  cfg.barrier_period = barrier_period;
  cfg.iterations = iterations;
  cfg.footprint_mib = 180.0;
  return [cfg](int n) {
    return std::make_unique<workloads::BarrierBench>(n, cfg);
  };
}

/// The paper's HPL configuration: 8x4 grid, runtime in the 400+ second range.
inline harness::WorkloadFactory hpl_factory() {
  workloads::HplConfig cfg;  // defaults are the paper-scale 8x4 / N=44000
  return [cfg](int n) { return std::make_unique<workloads::HplSim>(n, cfg); };
}

inline harness::WorkloadFactory motifminer_factory() {
  workloads::MotifMinerConfig cfg;  // ~150s run, 32 ranks
  return [cfg](int n) {
    return std::make_unique<workloads::MotifMinerSim>(n, cfg);
  };
}

/// Checkpoint-group-size labels used across figures: All(32) down to 1.
inline std::string group_label(int nranks, int size) {
  if (size <= 0 || size >= nranks) return "All(" + std::to_string(nranks) + ")";
  if (size == 1) return "Individual(1)";
  return "Group(" + std::to_string(size) + ")";
}

}  // namespace gbc::bench
