// Figure 8 (extension): multi-level checkpoint staging. Effective delay and
// recoverable work vs the background drain bandwidth, with and without the
// node-local tier, for blocking-coordinated and group-based checkpoints.
//
// The workload takes three periodic checkpoints. The local tier holds one
// image per node, so a checkpoint whose predecessor has not finished
// draining to the PFS falls through to a direct (contended) PFS write: as
// the drain rate rises the delay collapses from the shared-storage cost to
// the node-local write time. The recoverable-work column injects a node
// failure after the last checkpoint — the dead node's local images are
// lost, so slow drains also force rollback to an older checkpoint.
#include "bench_util.hpp"
#include "harness/recovery.hpp"

namespace {

using namespace gbc;

struct Config {
  const char* name;
  bool tier;
  int ckpt_group;  // 0 = all at once (blocking-style full group)
  ckpt::Protocol protocol;
};

harness::ClusterPreset staging_preset(const Config& c, double drain_mbps) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = 16;
  p.tier.enabled = c.tier;
  p.tier.local_write_mbps = 400.0;
  p.tier.local_capacity_mib = 96.0;  // one 64 MiB image, never two
  p.tier.drain_mbps = drain_mbps;
  p.tier.drain_chunk_mib = 16.0;
  p.tier.replicate = false;
  return p;
}

}  // namespace

int main() {
  using namespace gbc;
  bench::banner("Checkpoint staging: delay & recoverable work vs drain rate",
                "extension Figure 8 (multi-level staging)");

  workloads::CommGroupBenchConfig wcfg;
  wcfg.comm_group_size = 4;
  wcfg.compute_per_iter = 100 * sim::kMillisecond;
  wcfg.iterations = 600;  // ~60+ s run
  wcfg.footprint_mib = 64.0;
  const harness::WorkloadFactory factory = [wcfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, wcfg);
  };

  const std::vector<double> drains{1, 2, 4, 8, 16, 32};
  const std::vector<Config> configs{
      {"blocking", false, 0, ckpt::Protocol::kBlockingCoordinated},
      {"group-8", false, 8, ckpt::Protocol::kGroupBased},
      {"blocking+tier", true, 0, ckpt::Protocol::kBlockingCoordinated},
      {"group-8+tier", true, 8, ckpt::Protocol::kGroupBased},
  };
  std::vector<harness::CkptRequest> reqs;
  for (double at : {10.0, 22.0, 34.0}) {
    reqs.push_back(harness::CkptRequest{sim::from_seconds(at),
                                        ckpt::Protocol::kGroupBased});
  }
  const sim::Time failure_at = sim::from_seconds(44);

  // Phase 1 (sweep pool): one base run, then a checkpointed run per
  // (drain rate, config) cell. The no-tier cells repeat across the drain
  // axis — they are the flat reference lines.
  std::vector<harness::ExperimentPoint> pts;
  harness::ExperimentPoint base;
  base.preset = staging_preset(configs[0], drains[0]);
  base.factory = factory;
  pts.push_back(base);
  for (double drain : drains) {
    for (const Config& c : configs) {
      harness::ExperimentPoint p;
      p.preset = staging_preset(c, drain);
      p.factory = factory;
      p.ckpt_cfg.group_size = c.ckpt_group;
      for (auto r : reqs) {
        r.protocol = c.protocol;
        p.requests.push_back(r);
      }
      pts.push_back(std::move(p));
    }
  }
  harness::SweepStats delay_stats;
  auto runs = harness::run_experiments(pts, &delay_stats);
  const double base_s = runs[0].completion_seconds();

  // Phase 2 (sweep pool): the same grid with a node failure injected after
  // the third checkpoint.
  harness::SweepStats rec_stats;
  auto recs = harness::SweepRunner::shared().map<harness::RecoveryResult>(
      drains.size() * configs.size(),
      [&](std::size_t i) {
        const double drain = drains[i / configs.size()];
        const Config& c = configs[i % configs.size()];
        ckpt::CkptConfig cc;
        cc.group_size = c.ckpt_group;
        std::vector<harness::CkptRequest> rr = reqs;
        for (auto& r : rr) r.protocol = c.protocol;
        return harness::run_with_failure(staging_preset(c, drain), factory,
                                         cc, rr, failure_at,
                                         /*failed_rank=*/0);
      },
      &rec_stats);

  harness::Table t({"drain_MBps", "config", "effective_delay_s",
                    "write_throughs", "rollback_iter", "ckpts_skipped"});
  std::size_t at = 1;
  for (std::size_t di = 0; di < drains.size(); ++di) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const auto& run = runs[at++];
      const auto& rec = recs[di * configs.size() + ci];
      t.add_row({harness::Table::num(drains[di], 0), configs[ci].name,
                 harness::Table::num(run.completion_seconds() - base_s),
                 std::to_string(run.tier_write_throughs),
                 std::to_string(rec.rollback_iteration),
                 std::to_string(rec.checkpoints_skipped)});
    }
  }
  t.print();
  t.write_csv(bench::csv_path("fig8_staging"));
  const auto tier_preset = staging_preset(configs[3], drains.back());
  bench::report_sweep("fig8_staging", delay_stats, &tier_preset);
  bench::report_sweep("fig8_staging_recovery", rec_stats, &tier_preset);
  std::printf(
      "\nExpected shape: without the tier the delay is the shared-PFS cost\n"
      "and is flat in the drain rate. With the tier, slow drains leave the\n"
      "local disk full so later checkpoints fall through to the PFS\n"
      "(write_throughs > 0) and the dead node's images are not yet durable\n"
      "(ckpts_skipped > 0, older rollback); fast drains push the delay down\n"
      "to the node-local write time and keep the newest checkpoint\n"
      "recoverable.\n");
  return 0;
}
