// Ablation A3 (paper Sec. 4.1): static vs dynamic group formation. Dynamic
// formation learns the communication clusters from the observed traffic
// matrix (transitive closure over frequent edges) and falls back to static
// blocks when the application communicates globally.
#include "bench_util.hpp"
#include "ckpt/group_formation.hpp"

namespace {

using namespace gbc;

/// A workload whose communication clusters deliberately do NOT line up with
/// world-rank blocks: rank pairs (i, i + n/2) chat. Static blocks split
/// every cluster; dynamic formation recovers them.
class StridedPairs : public workloads::Workload {
 public:
  StridedPairs(int nranks, std::uint64_t iters)
      : Workload(nranks), iters_(iters) {
    for (int r = 0; r < nranks; ++r) {
      set_footprint(r, storage::mib(180));
    }
  }
  sim::Task<void> run_rank(mpi::RankCtx& r, workloads::WorkloadState from)
      override {
    set_state(r.world_rank(), from);
    const mpi::Comm& wc = r.mpi().world();
    const int me = r.world_rank();
    const int peer = (me + r.nranks() / 2) % r.nranks();
    for (std::uint64_t it = from.iteration; it < iters_; ++it) {
      co_await r.compute(100 * sim::kMillisecond);
      mpi::Request rq = r.irecv(wc, peer, static_cast<mpi::Tag>(it));
      co_await r.send(wc, peer, static_cast<mpi::Tag>(it),
                      64 * storage::kKiB);
      co_await r.wait(rq);
      commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
    }
  }

 private:
  std::uint64_t iters_;
};

}  // namespace

int main() {
  bench::banner("Static vs dynamic checkpoint group formation",
                "Sec. 4.1 (design ablation)");
  const auto preset = harness::icpp07_cluster();
  harness::Table t({"workload", "formation", "plan", "effective_delay_s"});

  struct Case {
    const char* name;
    harness::WorkloadFactory factory;
  };
  std::vector<Case> cases;
  cases.push_back({"strided-pairs (clusters != rank blocks)",
                   [](int n) {
                     return std::make_unique<StridedPairs>(n, 1200);
                   }});
  cases.push_back({"block-groups of 4 (clusters == rank blocks)",
                   bench::comm_group_factory(4, 1200)});

  // Point layout per case: base run, then the static and dynamic
  // checkpointed runs — all six simulations go through the SweepRunner.
  std::vector<harness::ExperimentPoint> pts;
  for (const auto& c : cases) {
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = c.factory;
    pts.push_back(std::move(base));
    for (bool dynamic : {false, true}) {
      harness::ExperimentPoint p;
      p.preset = preset;
      p.factory = c.factory;
      p.ckpt_cfg.group_size = 2;  // pairs
      p.ckpt_cfg.dynamic_formation = dynamic;
      p.requests.push_back(harness::CkptRequest{
          sim::from_seconds(20), ckpt::Protocol::kGroupBased});
      pts.push_back(std::move(p));
    }
  }
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);

  std::size_t at = 0;
  for (const auto& c : cases) {
    const double base = runs[at++].completion_seconds();
    for (bool dynamic : {false, true}) {
      auto m = harness::to_delay_measurement(runs[at++], base);
      std::string plan = std::to_string(m.checkpoint.plan.size()) +
                         " groups" +
                         (m.checkpoint.plan.used_dynamic ? " (dynamic)"
                                                         : " (static)");
      t.add_row({c.name, dynamic ? "dynamic" : "static", plan,
                 harness::Table::num(m.effective_delay_seconds())});
    }
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_group_formation"));
  bench::report_sweep("ablation_group_formation", stats, &preset);
  std::printf(
      "\nExpected: when communication clusters cross rank-block boundaries,\n"
      "static formation splits partners into different checkpoint groups and\n"
      "the delay grows toward the total checkpoint time; dynamic formation\n"
      "recovers the clusters and restores the group-based benefit. When the\n"
      "blocks already match, both perform the same.\n");
  return 0;
}
