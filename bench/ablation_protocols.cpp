// Ablation A5: protocol comparison on the HPL workload — the paper's
// group-based design vs regular blocking coordination (ICPP'06), vs
// non-blocking Chandy-Lamport with channel logging, vs uncoordinated
// checkpointing with always-on sender-based logging.
#include "bench_util.hpp"
#include "ckpt/logging_hooks.hpp"

int main() {
  using namespace gbc;
  bench::banner("Protocol comparison on HPL", "Secs. 2.1/7 (baselines)");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::hpl_factory();
  const sim::Time issuance = sim::from_seconds(100);

  harness::Table t({"protocol", "effective_delay_s", "mean_individual_s",
                    "total_ckpt_s", "peak_storage_writers",
                    "logged_MB"});

  auto add_row = [&](const char* label, const harness::RunResult& res,
                     double base_here, storage::Bytes extra_logged) {
    const auto& gc = res.checkpoints.front();
    const double logged_mb =
        static_cast<double>(gc.logged_bytes + extra_logged) /
        static_cast<double>(storage::kMiB);
    t.add_row({label,
               harness::Table::num(res.completion_seconds() - base_here),
               harness::Table::num(
                   sim::to_seconds(gc.mean_individual_time())),
               harness::Table::num(
                   sim::to_seconds(gc.total_checkpoint_time())),
               std::to_string(res.storage_peak_concurrency),
               harness::Table::num(logged_mb, 1)});
  };

  // The base run and the three hook-free protocol runs are independent;
  // sweep them concurrently. The sender-based-logging pair shares a mutable
  // SenderLogger (its volume accumulates across both runs), so those two
  // stay serial below.
  auto with_ckpt_point = [&](ckpt::Protocol p) {
    harness::ExperimentPoint pt;
    pt.preset = preset;
    pt.factory = factory;
    pt.ckpt_cfg.group_size = 4;
    pt.requests.push_back(harness::CkptRequest{issuance, p});
    return pt;
  };
  std::vector<harness::ExperimentPoint> pts;
  {
    harness::ExperimentPoint base;
    base.preset = preset;
    base.factory = factory;
    pts.push_back(std::move(base));
  }
  pts.push_back(with_ckpt_point(ckpt::Protocol::kBlockingCoordinated));
  pts.push_back(with_ckpt_point(ckpt::Protocol::kGroupBased));
  pts.push_back(with_ckpt_point(ckpt::Protocol::kChandyLamport));
  harness::SweepStats stats;
  auto runs = harness::run_experiments(pts, &stats);
  const double base = runs[0].completion_seconds();

  add_row("blocking coordinated (ICPP'06)", runs[1], base, 0);
  add_row("group-based (this paper), groups of 4", runs[2], base, 0);
  add_row("Chandy-Lamport (channel logging)", runs[3], base, 0);
  {
    ckpt::SenderLogger logger(preset.nranks, 1200.0);
    // As in the original driver, the extra-logged column snapshot is taken
    // before the logger has seen any traffic.
    const storage::Bytes extra_logged = logger.logged_bytes();
    ckpt::CkptConfig cc;
    cc.group_size = 4;
    // Logging changes the failure-free runtime; measure delay against the
    // logged baseline so we charge only the checkpoint itself.
    const double logged_base =
        harness::run_experiment(preset, factory, cc, {}, &logger)
            .completion_seconds();
    std::vector<harness::CkptRequest> reqs;
    reqs.push_back(
        harness::CkptRequest{issuance, ckpt::Protocol::kUncoordinatedLogging});
    auto res = harness::run_experiment(preset, factory, cc, reqs, &logger);
    add_row("uncoordinated (sender-based logging)", res, logged_base,
            extra_logged);
    std::printf("\nsender-based logging failure-free volume: %.1f MB over "
                "the run; zero-copy rendezvous disabled.\n",
                static_cast<double>(logger.logged_bytes()) /
                    static_cast<double>(storage::kMiB));
  }

  t.print();
  t.write_csv(bench::csv_path("ablation_protocols"));
  bench::report_sweep("ablation_protocols", stats, &preset);
  std::printf(
      "\nExpected: group-based has the smallest effective delay and per-rank\n"
      "downtime; blocking and Chandy-Lamport both saturate the storage with\n"
      "32 concurrent writers (Chandy-Lamport additionally logs channel\n"
      "traffic); uncoordinated avoids the coordination but pays for logging\n"
      "on every message of the failure-free run.\n");
  return 0;
}
