// Ablation A5: protocol comparison on the HPL workload — the paper's
// group-based design vs regular blocking coordination (ICPP'06), vs
// non-blocking Chandy-Lamport with channel logging, vs uncoordinated
// checkpointing with always-on sender-based logging.
#include "bench_util.hpp"
#include "ckpt/logging_hooks.hpp"

int main() {
  using namespace gbc;
  bench::banner("Protocol comparison on HPL", "Secs. 2.1/7 (baselines)");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::hpl_factory();
  const double base =
      harness::run_experiment(preset, factory, ckpt::CkptConfig{})
          .completion_seconds();
  const sim::Time issuance = sim::from_seconds(100);

  harness::Table t({"protocol", "effective_delay_s", "mean_individual_s",
                    "total_ckpt_s", "peak_storage_writers",
                    "logged_MB"});

  auto add = [&](ckpt::Protocol p, const char* label, mpi::MpiHooks* hooks,
                 storage::Bytes extra_logged) {
    ckpt::CkptConfig cc;
    cc.group_size = 4;
    std::vector<harness::CkptRequest> reqs;
    reqs.push_back(harness::CkptRequest{issuance, p});
    double base_here = base;
    if (hooks) {
      // Logging changes the failure-free runtime; measure delay against the
      // logged baseline so we charge only the checkpoint itself.
      base_here = harness::run_experiment(preset, factory, cc, {}, hooks)
                      .completion_seconds();
    }
    auto res = harness::run_experiment(preset, factory, cc, reqs, hooks);
    const auto& gc = res.checkpoints.front();
    const double logged_mb =
        static_cast<double>(gc.logged_bytes + extra_logged) /
        static_cast<double>(storage::kMiB);
    t.add_row({label,
               harness::Table::num(res.completion_seconds() - base_here),
               harness::Table::num(
                   sim::to_seconds(gc.mean_individual_time())),
               harness::Table::num(
                   sim::to_seconds(gc.total_checkpoint_time())),
               std::to_string(res.storage_peak_concurrency),
               harness::Table::num(logged_mb, 1)});
    std::fflush(stdout);
  };

  add(ckpt::Protocol::kBlockingCoordinated, "blocking coordinated (ICPP'06)",
      nullptr, 0);
  add(ckpt::Protocol::kGroupBased, "group-based (this paper), groups of 4",
      nullptr, 0);
  add(ckpt::Protocol::kChandyLamport, "Chandy-Lamport (channel logging)",
      nullptr, 0);
  {
    ckpt::SenderLogger logger(1200.0);
    add(ckpt::Protocol::kUncoordinatedLogging,
        "uncoordinated (sender-based logging)", &logger,
        logger.logged_bytes());
    std::printf("\nsender-based logging failure-free volume: %.1f MB over "
                "the run; zero-copy rendezvous disabled.\n",
                static_cast<double>(logger.logged_bytes()) /
                    static_cast<double>(storage::kMiB));
  }

  t.print();
  t.write_csv(bench::csv_path("ablation_protocols"));
  std::printf(
      "\nExpected: group-based has the smallest effective delay and per-rank\n"
      "downtime; blocking and Chandy-Lamport both saturate the storage with\n"
      "32 concurrent writers (Chandy-Lamport additionally logs channel\n"
      "traffic); uncoordinated avoids the coordination but pays for logging\n"
      "on every message of the failure-free run.\n");
  return 0;
}
