// Figure 9 (extension): diskless erasure-coded checkpoint tier. Time to
// solution vs the number of concurrent node losses for three protection
// schemes: PFS-only (the paper's model), partner replication (PR 3), and
// RS(4,2) erasure coding across a 6-node parity group. One node loss is
// covered by all three; a correlated double loss (a node plus its replica
// partner, e.g. a shared PSU) defeats the partner copy — the replica line
// falls back to an older PFS-durable checkpoint while the erasure line
// decodes the newest one from the surviving chunks.
//
// Accepts --shards N [--threads T]: every simulation (clean runs and every
// fault/restart attempt) runs on the sharded DES, and the CSV is required
// byte-identical to the serial run (tests/ fig9_erasure_determinism) —
// encode and chunk placement live on the service LP, so partitioning the
// rank LPs must not reorder them.
#include "bench_util.hpp"
#include "harness/cli.hpp"
#include "harness/recovery.hpp"

namespace {

using namespace gbc;

struct Config {
  const char* name;
  bool tier;
  bool replicate;
  bool erasure;
};

harness::ClusterPreset erasure_preset(const Config& c, int shards,
                                      int threads) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = 16;
  p.shards = shards;
  p.threads = threads;
  p.tier.enabled = c.tier;
  p.tier.local_write_mbps = 400.0;
  p.tier.drain_mbps = 4.0;  // slow drain: newest images not yet PFS-durable
  p.tier.drain_chunk_mib = 16.0;
  p.tier.replicate = c.replicate;
  if (c.erasure) {
    p.tier.erasure.enabled = true;
    p.tier.erasure.k = 4;
    p.tier.erasure.m = 2;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  harness::FlagSet flags("fig9_erasure");
  flags.add_int("shards", 1, "DES shards for every simulation");
  flags.add_int("threads", 1, "worker threads for the shards");
  if (!flags.parse(argc - 1, argv + 1)) {
    if (flags.help_requested()) {
      std::fputs(flags.usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  const int shards = flags.get_int("shards");
  const int threads = std::max(1, flags.get_int("threads"));
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }

  bench::banner("erasure tier: time to solution vs concurrent node losses",
                "extension Figure 9 (diskless erasure coding)");

  workloads::CommGroupBenchConfig wcfg;
  wcfg.comm_group_size = 4;
  wcfg.compute_per_iter = 100 * sim::kMillisecond;
  wcfg.iterations = 600;
  wcfg.footprint_mib = 64.0;
  const harness::WorkloadFactory factory = [wcfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, wcfg);
  };

  const std::vector<Config> configs{
      {"pfs-only", false, false, false},
      {"replica", true, true, false},
      {"rs42", true, false, true},
  };
  std::vector<harness::CkptRequest> reqs;
  for (double at : {10.0, 22.0, 34.0}) {
    reqs.push_back(harness::CkptRequest{sim::from_seconds(at),
                                        ckpt::Protocol::kGroupBased});
  }
  ckpt::CkptConfig cc;
  cc.group_size = 8;
  const sim::Time failure_at = sim::from_seconds(44);
  // Loss scenarios: rank 1 alone, then rank 1 plus its replica partner
  // (rank 2) at the same instant — the correlated pair that defeats
  // partner replication but not the parity stripe (which avoids node 2).
  const std::vector<std::vector<int>> losses{{}, {1}, {1, 2}};

  // Phase 1 (sweep pool): the checkpointed no-fault run per config — the
  // failures=0 column and the events/s record BENCH snapshots gate.
  std::vector<harness::ExperimentPoint> pts;
  for (const Config& c : configs) {
    harness::ExperimentPoint p;
    p.preset = erasure_preset(c, shards, threads);
    p.factory = factory;
    p.ckpt_cfg = cc;
    p.requests = reqs;
    pts.push_back(std::move(p));
  }
  harness::SweepStats clean_stats;
  auto cleans = harness::run_experiments(pts, &clean_stats);

  // Phase 2 (sweep pool): every (loss scenario, config) fault/restart run.
  const std::size_t nfail = losses.size() - 1;  // skip the empty scenario
  harness::SweepStats rec_stats;
  auto recs = harness::SweepRunner::shared().map<harness::RecoveryResult>(
      nfail * configs.size(),
      [&](std::size_t i) {
        const auto& dead = losses[1 + i / configs.size()];
        const Config& c = configs[i % configs.size()];
        harness::FaultPlan plan;
        plan.faults.push_back(harness::FaultEvent{
            failure_at, dead.front(),
            std::vector<int>(dead.begin() + 1, dead.end())});
        return harness::run_with_faults(erasure_preset(c, shards, threads),
                                        factory, cc, reqs, plan);
      },
      &rec_stats);

  harness::Table t({"config", "node_losses", "tts_s", "restart_read_s",
                    "ckpts_skipped", "local", "replica", "erasure", "pfs",
                    "rollback_iter"});
  for (std::size_t li = 0; li < losses.size(); ++li) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      double tts, read_s;
      int skipped, loc, rep, ec, pfs;
      std::uint64_t rollback;
      if (li == 0) {
        const auto& run = cleans[ci];
        tts = run.completion_seconds();
        read_s = 0;
        skipped = loc = rep = ec = pfs = 0;
        rollback = run.final_iterations.empty() ? 0
                                                : run.final_iterations[0];
      } else {
        const auto& rec = recs[(li - 1) * configs.size() + ci];
        tts = rec.total_seconds;
        read_s = rec.restart_read_seconds;
        skipped = rec.checkpoints_skipped;
        loc = rec.ranks_restored_local;
        rep = rec.ranks_restored_replica;
        ec = rec.ranks_restored_erasure;
        pfs = rec.ranks_restored_pfs;
        rollback = rec.rollback_iteration;
      }
      t.add_row({configs[ci].name, std::to_string(losses[li].size()),
                 harness::Table::num(tts), harness::Table::num(read_s),
                 std::to_string(skipped), std::to_string(loc),
                 std::to_string(rep), std::to_string(ec),
                 std::to_string(pfs), std::to_string(rollback)});
    }
  }
  t.print();
  t.write_csv(bench::csv_path("fig9_erasure"));
  const auto rs_preset = erasure_preset(configs[2], shards, threads);
  bench::report_sweep("fig9_erasure", clean_stats, &rs_preset);
  bench::report_sweep("fig9_erasure_recovery", rec_stats, &rs_preset);
  std::printf(
      "\nExpected shape: with one node lost all three schemes recover the\n"
      "newest checkpoint, but PFS-only pays the contended restart read.\n"
      "Losing the node together with its replica partner defeats the\n"
      "partner copy (ckpts_skipped > 0, older rollback); the RS(4,2)\n"
      "stripe avoids the partner node by construction, so the erasure\n"
      "line still decodes the newest checkpoint with zero PFS reads.\n");
  return 0;
}
