// Figure-3-shaped experiment pushed past the paper's 32 ranks: effective
// checkpoint delay vs checkpoint-group size at 1k/4k/16k ranks on a
// fat-tree, run on the sharded DES. Each rank-count point does one base
// (checkpoint-free) run plus one run per group size {All, n/4, n/16, n/64};
// points run sequentially so the sharded engine gets the whole thread
// budget. The per-rank footprint is scaled down from the paper's 180 MiB so
// a 16k-rank point stays a CI-sized job — the group-size *curve*, not the
// absolute seconds, is the object of study.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/cli.hpp"
#include "harness/scale_model.hpp"
#include "net/topology.hpp"

namespace {

using namespace gbc;

harness::ScaleConfig base_config(int nranks, const net::TopologySpec& topo,
                                 int shards, int iterations,
                                 double footprint_mib) {
  harness::ScaleConfig cfg;
  cfg.nranks = nranks;
  cfg.shards = shards;
  cfg.threads = 0;  // lease from the shared budget
  cfg.net.topology = topo;
  cfg.iterations = iterations;
  cfg.footprint_mib = footprint_mib;
  cfg.chunk_mib = std::min(8.0, footprint_mib);
  cfg.pfs_servers = std::max(4, nranks / 64);
  cfg.issuance = -1;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  harness::FlagSet flags("scale_groupsize");
  flags.add_int("ranks", 0, "rank count; 0 sweeps 1024, 4096, 16384");
  flags.add_int("shards", 4, "DES shards");
  flags.add_string("topology", "fat-tree:32:2",
                   "flat | fat-tree:<radix>:<oversub>");
  flags.add_int("iterations", 12, "compute iterations per rank");
  flags.add_double("footprint-mib", 16.0, "checkpoint image per rank (MiB)");
  flags.add_double("issuance", 0.4, "checkpoint issuance time (s)");
  if (!flags.parse(argc - 1, argv + 1)) {
    if (flags.help_requested()) {
      std::fputs(flags.usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  const auto topo = net::parse_topology(flags.get_string("topology"));
  if (!topo) {
    std::fprintf(stderr, "invalid --topology '%s'\n",
                 flags.get_string("topology").c_str());
    return 2;
  }
  if (flags.get_int("shards") < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }

  std::vector<int> rank_points;
  if (flags.get_int("ranks") > 0) {
    rank_points.push_back(flags.get_int("ranks"));
  } else {
    rank_points = {1024, 4096, 16384};
  }

  bench::banner("group size at scale (1k-16k ranks, sharded DES)",
                "the group-size study of Fig. 3 beyond paper scale");

  harness::Table t({"ranks", "group", "base_s", "eff_delay_s", "indiv_s",
                    "total_s", "events", "balance"});
  std::FILE* csv = std::fopen(bench::csv_path("scale_groupsize").c_str(), "w");
  // The CSV carries only simulation-derived values (no window counts or
  // host-side stats), so the shards-mode determinism check can require it
  // byte-identical between --shards 1 and --shards 4.
  if (csv) {
    std::fprintf(csv,
                 "ranks,ckpt_group,base_seconds,effective_delay_seconds,"
                 "individual_seconds,total_seconds,events\n");
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t total_events = 0;
  std::size_t points = 0;
  int threads_used = 1;
  for (int nranks : rank_points) {
    auto cfg = base_config(nranks, *topo, flags.get_int("shards"),
                           flags.get_int("iterations"),
                           flags.get_double("footprint-mib"));
    const auto base = harness::run_scale_model(cfg);
    total_events += base.events;
    ++points;
    threads_used = std::max(threads_used, base.threads_used);
    for (int group : {0, nranks / 4, nranks / 16, nranks / 64}) {
      cfg.ckpt_group = group;
      cfg.issuance = sim::from_seconds(flags.get_double("issuance"));
      const auto r = harness::run_scale_model(cfg);
      total_events += r.events;
      ++points;
      const double delay = r.completion_seconds - base.completion_seconds;
      t.add_row({std::to_string(nranks), bench::group_label(nranks, group),
                 harness::Table::num(base.completion_seconds),
                 harness::Table::num(delay),
                 harness::Table::num(r.individual_max_seconds),
                 harness::Table::num(r.total_ckpt_seconds),
                 std::to_string(r.events),
                 harness::Table::num(r.window_balance)});
      if (csv) {
        std::fprintf(csv, "%d,%d,%.6f,%.6f,%.6f,%.6f,%llu\n", nranks, group,
                     base.completion_seconds, delay, r.individual_max_seconds,
                     r.total_ckpt_seconds,
                     static_cast<unsigned long long>(r.events));
      }
    }
  }
  if (csv) std::fclose(csv);
  t.print();

  harness::SweepStats stats;
  stats.threads = threads_used;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  stats.points.resize(points);
  if (points) stats.points[0].events_processed = total_events;
  const std::string sweep_name =
      flags.get_int("ranks") > 0
          ? "scale_groupsize/" + std::to_string(flags.get_int("ranks"))
          : "scale_groupsize/sweep";
  bench::report_sweep(sweep_name, stats);
  return 0;
}
