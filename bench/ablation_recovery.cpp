// Extension experiment: recovery styles. Full-job restart re-reads every
// image through the shared-storage bottleneck; the job-pause style (Wang et
// al., IPDPS'07, discussed in the paper's related work) reloads only the
// failed rank's image onto a spare node while healthy ranks roll back in
// place. Incremental snapshots change the trade-off again: images are
// smaller to write but chain on restore (CheckpointStore::restore_bytes).
#include "bench_util.hpp"
#include "ckpt/store.hpp"
#include "harness/recovery.hpp"

int main() {
  using namespace gbc;
  bench::banner("Recovery styles after a failure",
                "extension (related work [23] comparison)");
  const auto preset = harness::icpp07_cluster();
  auto factory = bench::comm_group_factory(4, 2400);  // ~4 min of work
  ckpt::CkptConfig cc;
  cc.group_size = 4;
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(
      harness::CkptRequest{sim::from_seconds(30), ckpt::Protocol::kGroupBased});
  const sim::Time failure = sim::from_seconds(120);

  harness::Table t({"recovery_style", "image_reads_s", "time_to_solution_s"});
  auto full = harness::run_with_single_failure(preset, factory, cc, reqs,
                                               failure, 5, false);
  auto pause = harness::run_with_single_failure(preset, factory, cc, reqs,
                                                failure, 5, true);
  t.add_row({"full restart (all 32 images)",
             harness::Table::num(full.restart_read_seconds),
             harness::Table::num(full.total_seconds, 1)});
  t.add_row({"job pause (1 image, rest in place)",
             harness::Table::num(pause.restart_read_seconds),
             harness::Table::num(pause.total_seconds, 1)});
  t.print();
  const bool same = full.final_hashes == pause.final_hashes;
  std::printf("\nresults identical: %s\n", same ? "YES" : "NO");

  // Checkpoint-store arithmetic: full vs incremental restore volume.
  ckpt::CheckpointStore store(4);
  ckpt::GlobalCheckpoint base_gc;
  base_gc.completed_at = sim::from_seconds(30);
  base_gc.snapshots.resize(preset.nranks);
  for (int r = 0; r < preset.nranks; ++r) {
    base_gc.snapshots[r].rank = r;
    base_gc.snapshots[r].image_bytes = storage::mib(180);
    base_gc.snapshots[r].taken_at = base_gc.completed_at;
  }
  store.commit(base_gc, false);
  ckpt::GlobalCheckpoint inc = base_gc;
  inc.completed_at = sim::from_seconds(90);
  for (auto& s : inc.snapshots) s.image_bytes = storage::mib(40);
  const auto& inc_set = store.commit(inc, true);
  std::printf(
      "\nincremental store: second checkpoint writes %.0f MB/rank instead of "
      "180, restore needs %.0f MB/rank (chain), %d live sets, %.0f MB "
      "resident\n",
      40.0,
      static_cast<double>(store.restore_bytes(inc_set, 0)) /
          static_cast<double>(storage::kMiB),
      store.live_sets(),
      static_cast<double>(store.resident_bytes()) /
          static_cast<double>(storage::kMiB));
  std::printf(
      "\nExpected: job pause cuts the image-read phase from the full-job\n"
      "storage-bottleneck read down to a single client's read, with an\n"
      "identical recomputed result.\n");
  return same ? 0 : 1;
}
