// Ablation: durability vs memory overhead across erasure-code geometries.
// Each (k,m) row pays (k+m)/k memory for its stripe and survives exactly m
// concurrent chunk losses. The within-budget column kills rank 1 together
// with m holders of its parity group — its newest image must come back as
// a genuinely degraded read (m erased data chunks, matrix-inversion decode
// cost, zero PFS reads, nothing skipped). The over-budget column kills one
// more holder: the stripe drops below k survivors, and with the drain
// disabled nothing is PFS-durable, so the job restarts cold. Partner
// replication is the m=1-shaped baseline at 2x memory (its over-budget
// kill is the victim+partner pair); PFS-only is the paper's model. Exits
// non-zero if the RS(4,2) acceptance row breaks (a PFS read, a skipped
// checkpoint, or a time-to-solution not strictly better than PFS-only
// under the same dead-node set).
#include "bench_util.hpp"
#include "harness/recovery.hpp"
#include "storage/erasure.hpp"

namespace {

using namespace gbc;

constexpr int kRanks = 16;
constexpr int kVictim = 1;  // rank whose parity group the faults target

struct Geometry {
  const char* name;
  bool tier;
  bool replicate;
  int k = 0;  // 0 = no erasure
  int m = 0;
};

harness::ClusterPreset geometry_preset(const Geometry& g) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = kRanks;
  p.tier.enabled = g.tier;
  p.tier.local_write_mbps = 400.0;
  p.tier.drain_mbps = 0.0;  // diskless: nothing ever reaches the PFS
  p.tier.replicate = g.replicate;
  if (g.k > 0) {
    p.tier.erasure.enabled = true;
    p.tier.erasure.k = g.k;
    p.tier.erasure.m = g.m;
    p.tier.erasure.codec =
        g.m == 1 ? storage::ErasureCodec::kXor : storage::ErasureCodec::kRs;
  }
  return p;
}

/// The nodes an erasure geometry scatters rank kVictim's chunks to —
/// recomputed with the placement policy itself so the fault plan always
/// hits real chunk holders.
std::vector<int> victim_group(const harness::ClusterPreset& p) {
  sim::Engine eng;
  storage::ErasureTier tier(eng, p.tier.erasure, p.nranks,
                            p.tier.replica_offset);
  return tier.parity_group(kVictim);
}

/// One correlated fault: the victim dies together with holders of its
/// redundancy. Within budget (over=false) the erasure rows lose m chunks
/// (the stripe still decodes, fully degraded); over budget they lose m+1
/// (stripe gone). The replica row's over-budget kill is the partner pair;
/// PFS-only just loses a second unrelated node.
harness::FaultPlan geometry_faults(const harness::ClusterPreset& p, bool over,
                                   sim::Time at) {
  std::vector<int> also;
  if (p.tier.erasure.enabled) {
    const auto group = victim_group(p);
    const int n = p.tier.erasure.m + (over ? 1 : 0);
    also.assign(group.begin(), group.begin() + n);
  } else if (p.tier.replicate) {
    const int partner = (kVictim + p.tier.replica_offset) % p.nranks;
    also.push_back(over ? partner : (partner + 1) % p.nranks);
  } else {
    also.push_back(kVictim + 2);
  }
  harness::FaultPlan plan;
  plan.faults.push_back(harness::FaultEvent{at, kVictim, std::move(also)});
  return plan;
}

}  // namespace

int main() {
  bench::banner("erasure geometry: durability vs memory overhead",
                "extension Figure 9 ablation (erasure-coded tier)");

  workloads::CommGroupBenchConfig wcfg;
  wcfg.comm_group_size = 4;
  wcfg.compute_per_iter = 100 * sim::kMillisecond;
  wcfg.iterations = 600;
  wcfg.footprint_mib = 64.0;
  const harness::WorkloadFactory factory = [wcfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, wcfg);
  };

  const std::vector<Geometry> geoms{
      {"pfs-only", false, false},
      {"replica", true, true},
      {"xor(2,1)", true, false, 2, 1},
      {"xor(4,1)", true, false, 4, 1},
      {"rs(4,2)", true, false, 4, 2},
      {"rs(8,2)", true, false, 8, 2},
      {"rs(4,3)", true, false, 4, 3},
  };
  std::vector<harness::CkptRequest> reqs;
  for (double at : {10.0, 22.0, 34.0}) {
    reqs.push_back(harness::CkptRequest{sim::from_seconds(at),
                                        ckpt::Protocol::kGroupBased});
  }
  ckpt::CkptConfig cc;
  cc.group_size = 8;
  const sim::Time failure_at = sim::from_seconds(44);

  // Phase 1 (sweep pool): no-fault checkpointed runs — the events/s record
  // the BENCH snapshot gates, plus each geometry's checkpoint overhead.
  std::vector<harness::ExperimentPoint> pts;
  for (const Geometry& g : geoms) {
    harness::ExperimentPoint p;
    p.preset = geometry_preset(g);
    p.factory = factory;
    p.ckpt_cfg = cc;
    p.requests = reqs;
    pts.push_back(std::move(p));
  }
  harness::SweepStats clean_stats;
  auto cleans = harness::run_experiments(pts, &clean_stats);

  // Phase 2 (sweep pool): per geometry, kill m nodes of the victim's
  // parity group (within the budget), then m+1 (past it). The baselines
  // use m=1-shaped budgets: replica survives one loss iff it misses the
  // partner, PFS-only survives anything.
  harness::SweepStats rec_stats;
  auto recs = harness::SweepRunner::shared().map<harness::RecoveryResult>(
      geoms.size() * 2,
      [&](std::size_t i) {
        const Geometry& g = geoms[i / 2];
        const auto preset = geometry_preset(g);
        return harness::run_with_faults(
            preset, factory, cc, reqs,
            geometry_faults(preset, /*over=*/i % 2 != 0, failure_at));
      },
      &rec_stats);

  harness::Table t({"geometry", "overhead_x", "dead", "tts_s",
                    "ckpts_skipped", "erasure", "pfs", "cold_restart"});
  bool rs42_ok = true;
  double pfs_only_tts_m2 = 0;
  double rs42_tts = 0;
  for (std::size_t gi = 0; gi < geoms.size(); ++gi) {
    const Geometry& g = geoms[gi];
    const double overhead =
        g.k > 0 ? geometry_preset(g).tier.erasure.overhead()
                : (g.replicate ? 2.0 : 1.0);
    for (int over = 0; over < 2; ++over) {
      const auto& rec = recs[gi * 2 + over];
      const int dead =
          1 + (g.k > 0 ? g.m + over : 1);  // victim + redundancy holders
      t.add_row({g.name, harness::Table::num(overhead),
                 std::to_string(dead),
                 harness::Table::num(rec.total_seconds),
                 std::to_string(rec.checkpoints_skipped),
                 std::to_string(rec.ranks_restored_erasure),
                 std::to_string(rec.ranks_restored_pfs),
                 rec.used_checkpoint ? "no" : "yes"});
    }
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_erasure"));
  const auto rs_preset = geometry_preset(geoms[4]);
  bench::report_sweep("ablation_erasure", clean_stats, &rs_preset);
  bench::report_sweep("ablation_erasure_recovery", rec_stats, &rs_preset);

  // Acceptance gate: RS(4,2) with m=2 concurrent in-group node losses must
  // decode the newest checkpoint (nothing skipped, zero PFS reads) and
  // beat a PFS-only restart after the *same* two losses.
  {
    const auto pfs_preset = geometry_preset(geoms[0]);
    const auto rs = recs[4 * 2];  // rs(4,2), within budget
    // PFS-only under the exact same dead-node set (victim + 2 group nodes).
    const auto pfs2 = harness::run_with_faults(
        pfs_preset, factory, cc, reqs,
        geometry_faults(rs_preset, /*over=*/false, failure_at));
    pfs_only_tts_m2 = pfs2.total_seconds;
    rs42_tts = rs.total_seconds;
    rs42_ok = rs.used_checkpoint && rs.checkpoints_skipped == 0 &&
              rs.ranks_restored_pfs == 0 && rs.ranks_restored_erasure > 0 &&
              rs.total_seconds < pfs2.total_seconds;
    std::printf(
        "\nRS(4,2), 2 concurrent in-group losses: tts %.2fs vs %.2fs "
        "PFS-only, %d erasure decodes, %d PFS reads, %d skipped -> %s\n",
        rs42_tts, pfs_only_tts_m2, rs.ranks_restored_erasure,
        rs.ranks_restored_pfs, rs.checkpoints_skipped,
        rs42_ok ? "PASS" : "FAIL");
  }
  std::printf(
      "\nExpected shape: each geometry recovers the newest checkpoint while\n"
      "losses stay within its parity budget m (zero PFS traffic — the\n"
      "drain is disabled, the tier is diskless) and restarts cold one loss\n"
      "past it. Overhead (k+m)/k buys that budget: xor(4,1) protects at\n"
      "1.25x where replication pays 2x, rs(4,2) survives double faults at\n"
      "1.5x.\n");
  return rs42_ok ? 0 : 1;
}
