// Ablation: the eager/rendezvous threshold decides which buffering technique
// (paper Sec. 4.3) a deferred message uses. Below the threshold, payloads
// are already in communication buffers → *message buffering* (holds copies);
// above it, transfers stay incomplete → *request buffering* (no copies).
// This sweep shows the split and that the storage held by deferral stays
// bounded either way — unlike logging, which grows with everything sent.
#include "bench_util.hpp"

int main() {
  using namespace gbc;
  bench::banner("Eager threshold vs buffering technique",
                "Sec. 4.3 (message vs request buffering)");
  const auto preset0 = harness::icpp07_cluster();

  harness::Table t({"eager_threshold_KiB", "msgs_buffered",
                    "msg_buffer_peak_KiB", "requests_buffered",
                    "req_buffered_MB", "effective_delay_s"});
  for (storage::Bytes threshold :
       {storage::Bytes{2} * storage::kKiB, storage::Bytes{8} * storage::kKiB,
        storage::Bytes{64} * storage::kKiB,
        storage::Bytes{512} * storage::kKiB}) {
    harness::ClusterPreset preset = preset0;
    preset.mpi.eager_threshold = threshold;
    // 16-rank rings with 32 KiB messages crossing checkpoint groups of 8.
    workloads::CommGroupBenchConfig cfg;
    cfg.comm_group_size = 16;
    cfg.compute_per_iter = 50 * sim::kMillisecond;
    cfg.message_bytes = 32 * storage::kKiB;
    cfg.iterations = 1200;
    cfg.footprint_mib = 180.0;
    harness::WorkloadFactory factory = [cfg](int n) {
      return std::make_unique<workloads::CommGroupBench>(n, cfg);
    };
    ckpt::CkptConfig cc;
    cc.group_size = 8;
    const double base =
        harness::run_experiment(preset, factory, cc).completion_seconds();
    std::vector<harness::CkptRequest> reqs;
    reqs.push_back(harness::CkptRequest{sim::from_seconds(10),
                                        ckpt::Protocol::kGroupBased});
    auto res = harness::run_experiment(preset, factory, cc, reqs);
    t.add_row({std::to_string(threshold / storage::kKiB),
               std::to_string(res.mpi_stats.messages_buffered),
               harness::Table::num(
                   static_cast<double>(res.mpi_stats.peak_message_buffer) /
                   1024.0, 1),
               std::to_string(res.mpi_stats.requests_buffered),
               harness::Table::num(
                   static_cast<double>(res.mpi_stats.request_buffered_bytes) /
                   static_cast<double>(storage::kMiB), 2),
               harness::Table::num(res.completion_seconds() - base)});
    std::fflush(stdout);
  }
  t.print();
  t.write_csv(bench::csv_path("ablation_eager_threshold"));
  std::printf(
      "\nExpected: with the threshold below the 32 KiB message size, deferred\n"
      "traffic is request-buffered (zero payload copies); above it, the same\n"
      "messages are message-buffered (copies held, bounded by the deferral\n"
      "window). The effective delay is unaffected — buffering technique is\n"
      "a memory trade-off, not a timing one.\n");
  return 0;
}
