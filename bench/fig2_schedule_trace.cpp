// Figure 2: "(a) Regular Coordinated Checkpointing and (b) Group-based
// Checkpointing" — the paper's schematic, regenerated as an ASCII Gantt
// chart from an actual simulated checkpoint cycle (8 ranks for legibility):
// '#' = frozen writing its snapshot, '.' = computing.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "harness/gantt.hpp"

namespace {

using namespace gbc;

ckpt::GlobalCheckpoint run_one(int group_size) {
  harness::ClusterPreset preset = harness::icpp07_cluster();
  preset.nranks = 8;
  ckpt::CkptConfig cc;
  cc.group_size = group_size;
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(harness::CkptRequest{sim::from_seconds(2),
                                      ckpt::Protocol::kGroupBased});
  auto res = harness::run_experiment(
      preset, bench::comm_group_factory(2, 500), cc, reqs);
  return res.checkpoints.front();
}

}  // namespace

int main() {
  bench::banner("Checkpoint schedule trace", "Figure 2");
  std::vector<std::pair<std::string, ckpt::GlobalCheckpoint>> runs;
  runs.emplace_back("(a) Regular coordinated checkpointing — everyone at once",
                    run_one(0));
  runs.emplace_back(
      "(b) Group-based checkpointing — groups of 2, one after another",
      run_one(2));
  std::fputs(harness::render_gantt_comparison(runs).c_str(), stdout);
  std::printf(
      "Regular: every rank is down for the full storage-bound window.\n"
      "Group-based: each rank is down only for its own group's (much\n"
      "shorter) window.\n");
  return 0;
}
