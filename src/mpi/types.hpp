#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/condition.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::mpi {

using Bytes = storage::Bytes;
using Tag = std::int64_t;

inline constexpr int kAnySource = -1;
inline constexpr Tag kAnyTag = -1;
/// Tags at or above this value are reserved for collective implementations.
inline constexpr Tag kCollectiveTagBase = Tag{1} << 32;

/// Optional semantic content of a message. Most simulated traffic carries
/// only a byte count, but collectives and correctness tests move real values.
using Payload = std::shared_ptr<const std::vector<double>>;

inline Payload make_payload(std::vector<double> v) {
  return std::make_shared<const std::vector<double>>(std::move(v));
}

/// Variadic convenience: make_payload(1.0, 2.0). Building the vector inside
/// the callee also sidesteps a GCC 12 bug where a braced initializer-list
/// temporary inside a co_await expression fails to be placed in the frame
/// ("array used as initializer").
template <typename... Ds>
Payload make_payload(double first, Ds... rest) {
  std::vector<double> v{first, static_cast<double>(rest)...};
  return std::make_shared<const std::vector<double>>(std::move(v));
}

/// Same workaround for APIs taking std::vector<double> by value: use
/// vec(1.0, 2.0) instead of {1.0, 2.0} at call sites inside coroutines.
template <typename... Ds>
std::vector<double> vec(Ds... ds) {
  return std::vector<double>{static_cast<double>(ds)...};
}

/// Completion information of a receive.
struct RecvInfo {
  int source = kAnySource;  ///< comm rank of the sender
  Tag tag = kAnyTag;
  Bytes bytes = 0;
  Payload data;
};

/// Message envelope as it travels through the library (world-rank addressed).
struct Envelope {
  std::uint64_t comm_id = 0;
  int src_world = -1;
  int dst_world = -1;
  Tag tag = 0;
  Bytes bytes = 0;
  Payload data;
  std::uint64_t id = 0;  ///< unique per message/transfer
};

/// Request state shared between the app coroutine and the progress engine.
/// Requests are created at message rate, so the condition variable is a
/// direct member (one allocation instead of two) and the whole record is
/// placed by allocate_shared into the library's request arena.
struct ReqState {
  explicit ReqState(sim::Engine& eng) : cv(eng) {}
  bool done = false;
  bool is_recv = false;
  // Matching criteria for posted receives (world-rank source or kAnySource).
  std::uint64_t comm_id = 0;
  int match_src = kAnySource;
  Tag match_tag = kAnyTag;
  RecvInfo info;
  sim::Condition cv;
};

using Request = std::shared_ptr<ReqState>;

/// Reduction operators for reduce/allreduce.
enum class Op : std::uint8_t { kSum, kMax, kMin, kProd };

inline double apply_op(Op op, double a, double b) {
  switch (op) {
    case Op::kSum: return a + b;
    case Op::kMax: return a > b ? a : b;
    case Op::kMin: return a < b ? a : b;
    case Op::kProd: return a * b;
  }
  return a;
}

/// Record of one data-plane message used by consistency checking: a recovery
/// line is consistent iff for every message, "transmitted after the sender's
/// snapshot" equals "arrived after the receiver's snapshot" (see DESIGN.md).
struct MessageRecord {
  int src = -1;
  int dst = -1;
  Bytes bytes = 0;
  sim::Time transmit_time = -1;  ///< left the sender's library buffer
  sim::Time arrival_time = -1;   ///< entered the receiver's library
};

}  // namespace gbc::mpi
