#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "mpi/types.hpp"

namespace gbc::mpi {

/// Per-endpoint MPI matching engine: the posted-receive list and the
/// unexpected-message queue, with the MPI matching rules (communicator,
/// source wildcard, tag wildcard) applied in post/arrival order.
///
/// A Matcher is owned by exactly one rank LP and only ever touched from that
/// rank's shard — it is the piece of MiniMPI state the per-rank sharding
/// discipline (DESIGN.md §13) moves off shard 0. It holds no engine or
/// fabric references, so it is unit-testable in isolation.
class Matcher {
 public:
  struct Unexpected {
    Envelope env;
    bool rndv = false;  // true: an RTS awaiting a matching recv
  };

  static bool envelope_matches(const Envelope& env, std::uint64_t comm_id,
                               int match_src, Tag match_tag) {
    return env.comm_id == comm_id &&
           (match_src == kAnySource || match_src == env.src_world) &&
           (match_tag == kAnyTag || match_tag == env.tag);
  }

  /// Registers a posted receive. Call only after take_unexpected() found no
  /// already-arrived match (the MPI library ordering rule).
  void post(Request req) { posted_.push_back(std::move(req)); }

  /// Matches an arrived envelope against posted receives, oldest post first;
  /// removes and returns the match, or nullptr.
  Request match_posted(const Envelope& env) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      const Request& req = *it;
      if (envelope_matches(env, req->comm_id, req->match_src,
                           req->match_tag)) {
        Request r = req;
        posted_.erase(it);
        return r;
      }
    }
    return nullptr;
  }

  /// Takes the first unexpected message matching (comm, src, tag) in
  /// arrival order, or nullopt.
  std::optional<Unexpected> take_unexpected(std::uint64_t comm_id,
                                            int match_src, Tag match_tag) {
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (envelope_matches(it->env, comm_id, match_src, match_tag)) {
        Unexpected um = std::move(*it);
        unexpected_.erase(it);
        return um;
      }
    }
    return std::nullopt;
  }

  /// Non-destructive unexpected-queue check (MPI_Iprobe).
  bool probe(std::uint64_t comm_id, int match_src, Tag match_tag) const {
    for (const auto& um : unexpected_) {
      if (envelope_matches(um.env, comm_id, match_src, match_tag)) {
        return true;
      }
    }
    return false;
  }

  /// Parks an arrived envelope no posted receive matched.
  void push_unexpected(Envelope env, bool rndv) {
    unexpected_.push_back(Unexpected{std::move(env), rndv});
  }

  std::size_t posted_count() const noexcept { return posted_.size(); }
  std::size_t unexpected_count() const noexcept { return unexpected_.size(); }

 private:
  std::vector<Request> posted_;
  std::deque<Unexpected> unexpected_;
};

}  // namespace gbc::mpi
