#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gbc::mpi {

/// A communicator: an ordered set of world ranks. Comm rank i is
/// `members()[i]`. Communicators are created centrally (see
/// MiniMPI::create_comm) which mirrors the collective nature of
/// MPI_Comm_split while keeping the simulation simple.
class Comm {
 public:
  Comm(std::uint64_t id, std::vector<int> members)
      : id_(id), members_(std::move(members)) {
    for (int i = 0; i < static_cast<int>(members_.size()); ++i) {
      world_to_comm_[members_[i]] = i;
    }
  }

  std::uint64_t id() const noexcept { return id_; }
  int size() const noexcept { return static_cast<int>(members_.size()); }
  const std::vector<int>& members() const noexcept { return members_; }

  /// World rank of the given comm rank.
  int world_rank(int comm_rank) const {
    assert(comm_rank >= 0 && comm_rank < size());
    return members_[comm_rank];
  }

  /// Comm rank of the given world rank, or -1 if not a member.
  int comm_rank(int world_rank) const {
    auto it = world_to_comm_.find(world_rank);
    return it == world_to_comm_.end() ? -1 : it->second;
  }

  bool contains(int world_rank) const {
    return world_to_comm_.count(world_rank) != 0;
  }

 private:
  std::uint64_t id_;
  std::vector<int> members_;
  std::unordered_map<int, int> world_to_comm_;
};

}  // namespace gbc::mpi
