#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/matcher.hpp"
#include "mpi/types.hpp"
#include "net/fabric.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/pausable.hpp"
#include "sim/pool.hpp"
#include "sim/task.hpp"

namespace gbc::mpi {

class MiniMPI;

/// Deferral policy installed by the checkpoint layer (paper Sec. 3.2/4.3):
/// while a global checkpoint is in progress, data-plane traffic between a
/// group that has taken its snapshot and one that has not must be held back.
/// Small already-copied messages wait in the sender's message buffer; large
/// transfers stay as incomplete requests (request buffering).
///
/// Both methods are invoked from the *sender's* shard, so an implementation
/// shared across shards must keep per-shard state (the checkpoint service's
/// gate mirrors its decision data per shard) and hand back a condition that
/// lives on the querying rank's engine.
class CommGate {
 public:
  virtual ~CommGate() = default;
  /// May data flow between these two world ranks right now? Called on
  /// src_world's shard.
  virtual bool allowed(int src_world, int dst_world) const = 0;
  /// Notified whenever the answer to allowed() may have changed; must
  /// return a condition on src_world's engine.
  virtual sim::Condition& changed(int src_world) = 0;
};

/// Interposition hooks below the send/receive paths, used by the logging
/// baselines (pessimistic sender-based logging; Chandy-Lamport channel
/// logging) to charge costs and account volumes. send_tax runs on the
/// sender's shard, on_deliver on the receiver's — implementations keep
/// per-rank slots (see logging_hooks.hpp).
class MpiHooks {
 public:
  virtual ~MpiHooks() = default;
  /// Extra sender-side delay charged before a payload transmit (e.g. the
  /// staging copy + log write of sender-based logging). Also the point where
  /// a logger accounts the bytes.
  virtual sim::Time send_tax(int /*src*/, int /*dst*/, Bytes /*b*/) {
    return 0;
  }
  /// Does this configuration forbid zero-copy rendezvous? (Message logging
  /// must see the payload, so large sends are staged through copies.)
  virtual bool disable_zero_copy() const { return false; }
  /// Called when a payload message enters the receiver's library.
  virtual void on_deliver(int /*src*/, int /*dst*/, Bytes /*b*/) {}
};

struct MpiConfig {
  Bytes eager_threshold = 8 * storage::kKiB;
  /// Host memory copy bandwidth (MB/s) for staging copies when zero-copy is
  /// disabled by a logging hook. 2007-era DDR2 node.
  double mem_copy_mbps = 1800.0;
  /// Record MessageRecords for consistency analysis (tests; small runs).
  bool record_messages = false;
};

/// Job-wide communication statistics. Counters accumulate per rank (each on
/// its own shard) and are merged at read time — see MiniMPI::stats().
struct MpiStats {
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  Bytes message_buffered_bytes = 0;  ///< eager payloads held by the gate
  Bytes request_buffered_bytes = 0;  ///< large transfers held by the gate
  std::int64_t messages_buffered = 0;
  std::int64_t requests_buffered = 0;
  Bytes peak_message_buffer = 0;  ///< max bytes parked at once on any rank
};

/// Per-process view of the library: the object a rank's program uses for all
/// communication, plus the control surface the checkpoint layer drives
/// (freeze/thaw, buffered-state queries).
///
/// Every mutable member lives on the rank's home shard (the engine the
/// cluster's LpBus assigns to this world rank); all methods below must run
/// there. The checkpoint service reaches this state only by bus message.
class RankCtx {
 public:
  RankCtx(MiniMPI& mpi, int world_rank);
  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  int world_rank() const noexcept { return rank_; }
  int nranks() const noexcept;
  /// This rank's home engine (its shard's engine in a sharded run).
  sim::Engine& engine() noexcept { return eng_; }
  sim::Pausable& exec() noexcept { return *exec_; }
  MiniMPI& mpi() noexcept { return mpi_; }

  /// Burns CPU time; pausable by a checkpoint freeze.
  sim::Task<void> compute(sim::Time d) { return exec_->compute(d); }

  /// A bare library entry (MPI_Test/MPI_Iprobe with no outstanding request):
  /// lets the progress engine service passive coordination requests.
  sim::Task<void> progress() {
    co_await exec_->freeze_point();
    exec_->mark_progress();
  }

  // --- point-to-point ---
  sim::Task<void> send(const Comm& c, int dst, Tag tag, Bytes bytes,
                       Payload data = nullptr);
  sim::Task<RecvInfo> recv(const Comm& c, int src, Tag tag);
  Request isend(const Comm& c, int dst, Tag tag, Bytes bytes,
                Payload data = nullptr);
  Request irecv(const Comm& c, int src, Tag tag);
  sim::Task<void> wait(Request req);
  sim::Task<void> wait_all(std::vector<Request> reqs);
  /// Completes when any request in the set does; returns its index
  /// (MPI_Waitany).
  sim::Task<std::size_t> wait_any(std::vector<Request> reqs);
  bool test(const Request& req) const { return req->done; }
  /// Non-destructively checks for a matching unexpected message
  /// (MPI_Iprobe). Counts as a library entry for passive coordination.
  bool iprobe(const Comm& c, int src, Tag tag);

  // --- collectives (implemented over p2p; see collectives.cpp) ---
  sim::Task<void> barrier(const Comm& c);
  sim::Task<Payload> bcast(const Comm& c, int root, Bytes bytes, Payload data);
  /// Pipelined ring broadcast (HPL's "increasing-ring" variant, bytes only):
  /// each rank returns as soon as its own copy arrives and forwards
  /// asynchronously, so a stalled member blocks only the ranks downstream of
  /// it — the slack that lets other process rows run ahead of a
  /// checkpointing group.
  sim::Task<void> ring_bcast(const Comm& c, int root, Bytes bytes);
  sim::Task<std::vector<double>> reduce(const Comm& c, int root, Op op,
                                        std::vector<double> contrib);
  sim::Task<std::vector<double>> allreduce(const Comm& c, Op op,
                                           std::vector<double> contrib);
  /// Gathers each rank's block; result is the concatenation by comm rank.
  /// `block_bytes` is the wire size of one block.
  sim::Task<std::vector<double>> allgather(const Comm& c, Bytes block_bytes,
                                           std::vector<double> block);
  sim::Task<std::vector<double>> gather(const Comm& c, int root,
                                        Bytes block_bytes,
                                        std::vector<double> block);
  sim::Task<std::vector<double>> scatter(const Comm& c, int root,
                                         Bytes block_bytes,
                                         std::vector<double> all_blocks);
  sim::Task<void> alltoall(const Comm& c, Bytes block_bytes);
  /// Combined send+receive with a single partner pair (MPI_Sendrecv):
  /// deadlock-free even when every rank calls it simultaneously.
  sim::Task<RecvInfo> sendrecv(const Comm& c, int dst, Tag send_tag,
                               Bytes send_bytes, Payload send_data, int src,
                               Tag recv_tag);
  /// Inclusive prefix reduction (MPI_Scan): rank r receives op applied over
  /// the contributions of comm ranks 0..r.
  sim::Task<std::vector<double>> scan(const Comm& c, Op op,
                                      std::vector<double> contrib);
  /// Reduce + scatter of equal blocks (MPI_Reduce_scatter_block): every rank
  /// gets its own block of the element-wise reduction of all contributions,
  /// where contribution i's block r belongs to comm rank r.
  sim::Task<std::vector<double>> reduce_scatter_block(
      const Comm& c, Op op, std::vector<double> contrib);

  // --- non-blocking collectives ---
  // The returned request completes when this rank's participation in the
  // collective finishes; overlap it with computation and wait() on it.
  // All member ranks must start their non-blocking collectives in the same
  // order (the MPI rule), which keeps the internal tags aligned.
  Request ibarrier(const Comm& c);
  Request ibcast(const Comm& c, int root, Bytes bytes);
  Request iallgather(const Comm& c, Bytes block_bytes);

  // --- checkpoint control surface ---
  /// Freezes this process for a snapshot: pauses compute, blocks library
  /// entries, and (by message) locks the endpoint against connection
  /// establishment. Call on this rank's shard.
  void freeze();
  void thaw();
  bool frozen() const { return exec_->paused(); }
  /// Bytes currently parked in the eager message buffer by the gate.
  Bytes message_buffer_bytes() const noexcept { return msg_buffer_cur_; }
  /// World ranks toward which data-plane items are queued or pending.
  std::vector<int> pending_destinations() const;
  /// Waits until nothing this rank sent is still on the wire toward `peer`.
  sim::Task<void> flush_channel_to(int peer);

  // --- internal: called by the fabric's delivery path (on this shard) ---
  void on_packet(net::Packet p);

  /// Handler for control-plane packets (installed by the C/R framework).
  void set_control_handler(std::function<void(net::Packet)> h) {
    control_handler_ = std::move(h);
  }

  /// Marks a request complete and wakes its waiters (used by the
  /// non-blocking collective drivers).
  void finish_request(const Request& req) { complete(req); }

  /// Rank-unique message/transfer id (the rank id is folded into the high
  /// bits so id spaces never collide across shards).
  std::uint64_t next_id() {
    return (static_cast<std::uint64_t>(rank_ + 1) << 40) | ++id_counter_;
  }

 private:
  friend class MiniMPI;

  struct OutItem {
    enum class Kind : std::uint8_t { kEager, kRts, kCts, kRdma, kFin };
    Kind kind;
    Envelope env;
    bool gated = false;   // subject to the checkpoint deferral gate
    bool counted = false; // buffering stats recorded already
    bool taxed = false;   // sender-side tax (logging/staging) already paid
  };
  struct Outbound {
    std::deque<OutItem> q;
    bool pump_running = false;
  };

  void push_out(int dst, OutItem item);
  void account_buffered(OutItem& item);
  sim::Task<void> pump(int dst);
  net::Packet to_packet(const OutItem& item) const;
  Request make_request(bool is_recv);
  void complete(const Request& req);
  void deliver_eager(const Envelope& env);
  void deliver_rts(const Envelope& env);
  void start_rndv_receive(const Envelope& env, const Request& req);
  RecvInfo fill_info(const Envelope& env) const;
  /// Allocates the tag base for one collective operation on `c`; all member
  /// ranks call collectives in the same order, so bases agree.
  Tag begin_collective(const Comm& c);
  void record_transmit(std::uint64_t id, int dst, Bytes b);
  void record_arrival(std::uint64_t id);
  MpiHooks* hooks() const noexcept;

  MiniMPI& mpi_;
  int rank_;
  sim::Engine& eng_;  // this rank's home engine
  std::unique_ptr<sim::Pausable> exec_;
  Matcher matcher_;
  std::map<int, Outbound> outbound_;
  std::unordered_map<std::uint64_t, Request> pending_send_;  // by transfer id
  std::unordered_map<std::uint64_t, Request> rndv_recv_;     // by transfer id
  std::unordered_map<std::uint64_t, std::uint64_t> coll_seq_;  // per comm
  std::function<void(net::Packet)> control_handler_;
  sim::Condition any_complete_;  // wakes wait_any
  Bytes msg_buffer_cur_ = 0;
  std::uint64_t id_counter_ = 0;
  /// Request records come from a per-rank arena (single-threaded by design,
  /// so it cannot be shared across shards).
  std::shared_ptr<sim::ArenaCore> req_arena_ =
      std::make_shared<sim::ArenaCore>();
  MpiStats stats_;
  // Consistency-analysis records: transmits this rank originated (with the
  // transfer id), arrivals keyed by id. Merged job-wide at read time.
  std::vector<std::pair<std::uint64_t, MessageRecord>> records_;
  std::unordered_map<std::uint64_t, sim::Time> arrivals_;
};

/// Whole-job library instance: owns the per-rank contexts, the communicator
/// registry, deferral gate and hooks, and merged statistics. The per-rank
/// contexts live on their home shards; everything MiniMPI itself owns
/// (communicators, gate/hook pointers) is immutable during a run or updated
/// only at quiescent points / by per-rank message.
class MiniMPI {
 public:
  MiniMPI(sim::Engine& eng, net::Fabric& fabric, MpiConfig cfg = {});

  int nranks() const noexcept { return static_cast<int>(ranks_.size()); }
  /// The service engine (shard 0) — NOT where rank code runs; use
  /// RankCtx::engine() for per-rank work.
  sim::Engine& engine() noexcept { return eng_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  const MpiConfig& config() const noexcept { return cfg_; }

  RankCtx& rank(int r) { return *ranks_.at(r); }
  const Comm& world() const { return *comms_.front(); }
  /// Registers a communicator over the given world ranks. Quiescent points
  /// only (setup / collectively ordered): the registry is read lock-free
  /// from every shard.
  const Comm& create_comm(std::vector<int> members);
  /// Splits `parent` by color: ranks with equal color (indexed by comm rank)
  /// end up in one communicator, ordered by parent comm rank.
  std::vector<const Comm*> split(const Comm& parent,
                                 const std::vector<int>& colors);
  const Comm* find_comm(std::uint64_t id) const;
  /// All user-created communicators (heuristic input for group formation).
  const std::vector<std::unique_ptr<Comm>>& comms() const { return comms_; }

  void set_gate(CommGate* gate);
  CommGate* gate() const noexcept { return gate_; }
  /// Installs `hooks` on every rank. Quiescent points only — for a mid-run
  /// swap, message each rank's shard via set_rank_hooks.
  void set_hooks(MpiHooks* hooks) {
    for (auto& h : hook_of_) h = hooks;
  }
  MpiHooks* hooks() const noexcept { return hook_of_[0]; }
  /// Per-rank hook slot; access only from rank r's shard (or quiescent).
  void set_rank_hooks(int r, MpiHooks* hooks) { hook_of_[r] = hooks; }
  MpiHooks* rank_hooks(int r) const { return hook_of_[r]; }

  // --- statistics ---
  using Stats = MpiStats;
  /// Merged job-wide statistics. Aggregate read: call at quiescent points
  /// (end of run, or from a test driving a single engine).
  Stats stats() const;

  // --- message records for consistency analysis ---
  /// Merged job-wide transmit/arrival records, ordered by (transmit time,
  /// id) — canonical at any shard count. Aggregate read: quiescent only.
  std::vector<MessageRecord> message_records() const;

 private:
  friend class RankCtx;

  sim::Engine& eng_;
  net::Fabric& fabric_;
  MpiConfig cfg_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  std::vector<std::unique_ptr<Comm>> comms_;
  CommGate* gate_ = nullptr;
  std::vector<MpiHooks*> hook_of_;
  std::uint64_t comm_counter_ = 0;
};

}  // namespace gbc::mpi
