#include "mpi/minimpi.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace gbc::mpi {

namespace {
/// Wire size of control packets (headers, RTS/CTS/FIN).
constexpr Bytes kCtrlBytes = 64;
}  // namespace

// ---------------------------------------------------------------------------
// MiniMPI
// ---------------------------------------------------------------------------

MiniMPI::MiniMPI(sim::Engine& eng, net::Fabric& fabric, MpiConfig cfg)
    : eng_(eng), fabric_(fabric), cfg_(cfg) {
  const int n = fabric.size();
  ranks_.reserve(n);
  hook_of_.assign(n, nullptr);
  std::vector<int> world_members;
  world_members.reserve(n);
  for (int r = 0; r < n; ++r) {
    ranks_.push_back(std::make_unique<RankCtx>(*this, r));
    world_members.push_back(r);
    // The receiver callback fires on rank r's shard (the fabric terminates
    // flights at the destination's home shard), so it may touch RankCtx
    // state directly.
    fabric_.set_receiver(
        r, [ctx = ranks_.back().get()](net::Packet p) {
          ctx->on_packet(std::move(p));
        });
  }
  comms_.push_back(std::make_unique<Comm>(comm_counter_++, world_members));
}

const Comm& MiniMPI::create_comm(std::vector<int> members) {
  comms_.push_back(
      std::make_unique<Comm>(comm_counter_++, std::move(members)));
  return *comms_.back();
}

std::vector<const Comm*> MiniMPI::split(const Comm& parent,
                                        const std::vector<int>& colors) {
  assert(static_cast<int>(colors.size()) == parent.size());
  std::map<int, std::vector<int>> by_color;
  for (int cr = 0; cr < parent.size(); ++cr) {
    by_color[colors[cr]].push_back(parent.world_rank(cr));
  }
  std::vector<const Comm*> result;
  result.reserve(by_color.size());
  for (auto& [color, members] : by_color) {
    (void)color;
    result.push_back(&create_comm(std::move(members)));
  }
  return result;
}

const Comm* MiniMPI::find_comm(std::uint64_t id) const {
  for (const auto& c : comms_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

void MiniMPI::set_gate(CommGate* gate) {
  CommGate* old = gate_;
  gate_ = gate;
  // Dropping or swapping a gate can unblock parked pumps.
  if (old) {
    for (int r = 0; r < nranks(); ++r) old->changed(r).notify_all();
  }
}

MiniMPI::Stats MiniMPI::stats() const {
  Stats total;
  for (const auto& rc : ranks_) {
    const MpiStats& s = rc->stats_;
    total.sends += s.sends;
    total.recvs += s.recvs;
    total.message_buffered_bytes += s.message_buffered_bytes;
    total.request_buffered_bytes += s.request_buffered_bytes;
    total.messages_buffered += s.messages_buffered;
    total.requests_buffered += s.requests_buffered;
    total.peak_message_buffer =
        std::max(total.peak_message_buffer, s.peak_message_buffer);
  }
  return total;
}

std::vector<MessageRecord> MiniMPI::message_records() const {
  struct Item {
    std::uint64_t id;
    MessageRecord rec;
  };
  std::vector<Item> items;
  for (const auto& rc : ranks_) {
    for (const auto& [id, rec] : rc->records_) {
      MessageRecord m = rec;
      const auto& arrivals = ranks_[m.dst]->arrivals_;
      auto it = arrivals.find(id);
      if (it != arrivals.end()) m.arrival_time = it->second;
      items.push_back(Item{id, m});
    }
  }
  // (transmit time, id) is a total order independent of the shard layout:
  // ids embed the sender rank and per-sender issue order.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.rec.transmit_time != b.rec.transmit_time
               ? a.rec.transmit_time < b.rec.transmit_time
               : a.id < b.id;
  });
  std::vector<MessageRecord> out;
  out.reserve(items.size());
  for (auto& it : items) out.push_back(it.rec);
  return out;
}

// ---------------------------------------------------------------------------
// RankCtx: construction and helpers
// ---------------------------------------------------------------------------

RankCtx::RankCtx(MiniMPI& mpi, int world_rank)
    : mpi_(mpi),
      rank_(world_rank),
      eng_(mpi.fabric().bus().engine_of(world_rank)),
      exec_(std::make_unique<sim::Pausable>(eng_)),
      any_complete_(eng_) {}

int RankCtx::nranks() const noexcept { return mpi_.nranks(); }

MpiHooks* RankCtx::hooks() const noexcept { return mpi_.hook_of_[rank_]; }

void RankCtx::record_transmit(std::uint64_t id, int dst, Bytes b) {
  if (!mpi_.cfg_.record_messages) return;
  records_.emplace_back(id, MessageRecord{rank_, dst, b, eng_.now(), -1});
}

void RankCtx::record_arrival(std::uint64_t id) {
  if (!mpi_.cfg_.record_messages) return;
  arrivals_[id] = eng_.now();
}

Request RankCtx::make_request(bool is_recv) {
  // One arena allocation covers control block + ReqState + its condition
  // variable; the storage recycles at message rate.
  auto req = std::allocate_shared<ReqState>(
      sim::ArenaAlloc<ReqState>(req_arena_), engine());
  req->is_recv = is_recv;
  return req;
}

void RankCtx::complete(const Request& req) {
  req->done = true;
  // Deliveries run in a top-level event (the settle sweep or a self-send in
  // the application's own frame), so the waiter can resume inline — no
  // schedule_now hop between a message landing and its recv returning.
  req->cv.notify_all_inline();
  any_complete_.notify_all();
  exec_->mark_progress();
}

RecvInfo RankCtx::fill_info(const Envelope& env) const {
  RecvInfo info;
  const Comm* c = mpi_.find_comm(env.comm_id);
  info.source = c ? c->comm_rank(env.src_world) : env.src_world;
  info.tag = env.tag;
  info.bytes = env.bytes;
  info.data = env.data;
  return info;
}

Tag RankCtx::begin_collective(const Comm& c) {
  const std::uint64_t seq = coll_seq_[c.id()]++;
  return kCollectiveTagBase + static_cast<Tag>(seq << 16);
}

// ---------------------------------------------------------------------------
// RankCtx: outbound pipeline
// ---------------------------------------------------------------------------

net::Packet RankCtx::to_packet(const OutItem& item) const {
  net::Packet p;
  p.id = item.env.id;
  // The envelope crosses shards by value inside the packet body; the
  // payload shared_ptr has an atomic refcount, so the copy is shard-safe.
  p.body = net::WireBody::make<Envelope>(item.env);
  switch (item.kind) {
    case OutItem::Kind::kEager:
      p.src = item.env.src_world;
      p.dst = item.env.dst_world;
      p.bytes = item.env.bytes + kCtrlBytes;
      p.kind = net::PacketKind::kEager;
      break;
    case OutItem::Kind::kRts:
      p.src = item.env.src_world;
      p.dst = item.env.dst_world;
      p.bytes = kCtrlBytes;
      p.kind = net::PacketKind::kRts;
      break;
    case OutItem::Kind::kCts:
      p.src = item.env.dst_world;  // receiver -> sender
      p.dst = item.env.src_world;
      p.bytes = kCtrlBytes;
      p.kind = net::PacketKind::kCts;
      break;
    case OutItem::Kind::kRdma:
      p.src = item.env.src_world;
      p.dst = item.env.dst_world;
      p.bytes = item.env.bytes;
      p.kind = net::PacketKind::kRdmaData;
      break;
    case OutItem::Kind::kFin:
      p.src = item.env.dst_world;  // receiver -> sender
      p.dst = item.env.src_world;
      p.bytes = kCtrlBytes;
      p.kind = net::PacketKind::kFin;
      break;
  }
  return p;
}

void RankCtx::account_buffered(OutItem& item) {
  if (item.counted) return;
  item.counted = true;
  MpiStats& st = stats_;
  if (item.kind == OutItem::Kind::kEager) {
    // Message buffering: payload already copied, held unsent.
    msg_buffer_cur_ += item.env.bytes;
    st.message_buffered_bytes += item.env.bytes;
    ++st.messages_buffered;
    st.peak_message_buffer = std::max(st.peak_message_buffer, msg_buffer_cur_);
  } else if (item.kind == OutItem::Kind::kRts ||
             item.kind == OutItem::Kind::kCts) {
    // Request buffering: the transfer stays incomplete, no copy held.
    st.request_buffered_bytes += item.env.bytes;
    ++st.requests_buffered;
  }
}

void RankCtx::push_out(int dst, OutItem item) {
  assert(dst != rank_);
  auto& ob = outbound_[dst];
  CommGate* gate = mpi_.gate_;
  const bool deferred = item.gated && gate && !gate->allowed(rank_, dst);
  // Fast path: lane idle, gate open, link up, and no sender-side tax to
  // pay — transmit right here instead of parking the item and spinning up
  // a pump frame. The pump would run exactly this with no suspension.
  if (!ob.pump_running && ob.q.empty() && !deferred &&
      mpi_.fabric_.mirror_connected(rank_, dst)) {
    const bool payload = item.kind == OutItem::Kind::kEager ||
                         item.kind == OutItem::Kind::kRdma;
    if (hooks() == nullptr || !payload) {
      if (payload) record_transmit(item.env.id, dst, item.env.bytes);
      mpi_.fabric_.transmit(to_packet(item));
      return;
    }
  }
  if (deferred) {
    account_buffered(item);  // parked immediately: the pair is deferred
  }
  ob.q.push_back(std::move(item));
  if (!ob.pump_running) engine().spawn(pump(dst));
}

sim::Task<void> RankCtx::pump(int dst) {
  auto& ob = outbound_[dst];
  ob.pump_running = true;
  auto& fab = mpi_.fabric_;
  while (!ob.q.empty()) {
    OutItem& head = ob.q.front();

    // 1. Checkpoint deferral gate (message / request buffering).
    CommGate* gate = mpi_.gate_;
    if (head.gated && gate && !gate->allowed(rank_, dst)) {
      // Everything queued behind a deferred head is deferred too.
      for (OutItem& queued : ob.q) {
        if (queued.gated) account_buffered(queued);
      }
      co_await gate->changed(rank_).wait();
      continue;
    }

    // 2. Connection (re)establishment, driven off this rank's local mirror;
    // the actual state machine runs on the service LP and blocks while the
    // peer is frozen.
    if (!fab.mirror_connected(rank_, dst)) {
      co_await fab.ensure_connected_from(rank_, dst);
      continue;  // the gate may have closed while we were connecting
    }

    // 3. Sender-side taxes: logging hook and forced staging copies.
    if (!head.taxed) {
      head.taxed = true;
      sim::Time tax = 0;
      MpiHooks* hk = hooks();
      const bool payload = head.kind == OutItem::Kind::kEager ||
                           head.kind == OutItem::Kind::kRdma;
      if (hk && payload) {
        tax += hk->send_tax(rank_, dst, head.env.bytes);
        if (head.kind == OutItem::Kind::kRdma && hk->disable_zero_copy()) {
          const double bps =
              mpi_.cfg_.mem_copy_mbps * static_cast<double>(storage::kMiB);
          tax += static_cast<sim::Time>(static_cast<double>(head.env.bytes) /
                                        bps *
                                        static_cast<double>(sim::kSecond));
        }
      }
      if (tax > 0) {
        co_await engine().delay(tax);
        continue;  // re-check gate and connection after the delay
      }
    }

    // 4. Transmit.
    OutItem item = std::move(ob.q.front());
    ob.q.pop_front();
    if (item.counted && item.kind == OutItem::Kind::kEager) {
      msg_buffer_cur_ -= item.env.bytes;
    }
    if (item.kind == OutItem::Kind::kEager ||
        item.kind == OutItem::Kind::kRdma) {
      record_transmit(item.env.id, dst, item.env.bytes);
    }
    fab.transmit(to_packet(item));
  }
  ob.pump_running = false;
}

std::vector<int> RankCtx::pending_destinations() const {
  std::vector<int> dsts;
  for (const auto& [dst, ob] : outbound_) {
    if (!ob.q.empty()) dsts.push_back(dst);
  }
  return dsts;
}

sim::Task<void> RankCtx::flush_channel_to(int peer) {
  // Sender-side in-flight counters are rank-local: no service round-trip.
  return mpi_.fabric_.drain_outbound(rank_, peer);
}

// ---------------------------------------------------------------------------
// RankCtx: point-to-point
// ---------------------------------------------------------------------------

sim::Task<void> RankCtx::send(const Comm& c, int dst, Tag tag, Bytes bytes,
                              Payload data) {
  co_await exec_->freeze_point();
  ++stats_.sends;
  const int dst_world = c.world_rank(dst);
  Envelope env{c.id(), rank_, dst_world, tag, bytes, std::move(data),
               next_id()};
  if (dst_world == rank_) {
    deliver_eager(env);  // self-send: local copy
    co_return;
  }
  if (bytes <= mpi_.cfg_.eager_threshold) {
    // Eager: the payload is copied into a library buffer, so the blocking
    // send completes locally; the pump transmits (or defers) it.
    push_out(dst_world,
             OutItem{OutItem::Kind::kEager, std::move(env), true});
    exec_->mark_progress();
    co_return;
  }
  // Rendezvous: request stays open until the FIN returns.
  auto req = make_request(/*is_recv=*/false);
  pending_send_[env.id] = req;
  push_out(dst_world, OutItem{OutItem::Kind::kRts, std::move(env), true});
  co_await wait(req);
}

Request RankCtx::isend(const Comm& c, int dst, Tag tag, Bytes bytes,
                       Payload data) {
  ++stats_.sends;
  const int dst_world = c.world_rank(dst);
  Envelope env{c.id(), rank_, dst_world, tag, bytes, std::move(data),
               next_id()};
  auto req = make_request(/*is_recv=*/false);
  if (dst_world == rank_) {
    deliver_eager(env);
    req->done = true;
    return req;
  }
  if (bytes <= mpi_.cfg_.eager_threshold) {
    push_out(dst_world,
             OutItem{OutItem::Kind::kEager, std::move(env), true});
    req->done = true;  // buffered: locally complete
    return req;
  }
  pending_send_[env.id] = req;
  push_out(dst_world, OutItem{OutItem::Kind::kRts, std::move(env), true});
  return req;
}

sim::Task<RecvInfo> RankCtx::recv(const Comm& c, int src, Tag tag) {
  // wait(req) inlined: saves a nested task frame on the hot path.
  Request req = irecv(c, src, tag);
  co_await exec_->freeze_point();
  while (!req->done) co_await req->cv.wait();
  co_await exec_->freeze_point();
  exec_->mark_progress();
  co_return req->info;
}

Request RankCtx::irecv(const Comm& c, int src, Tag tag) {
  ++stats_.recvs;
  auto req = make_request(/*is_recv=*/true);
  req->comm_id = c.id();
  req->match_src = src == kAnySource ? kAnySource : c.world_rank(src);
  req->match_tag = tag;
  // First look at already-arrived unexpected messages, in arrival order.
  if (auto um = matcher_.take_unexpected(req->comm_id, req->match_src,
                                         req->match_tag)) {
    if (um->rndv) {
      start_rndv_receive(um->env, req);
    } else {
      req->info = fill_info(um->env);
      req->done = true;
    }
    return req;
  }
  matcher_.post(req);
  return req;
}

sim::Task<void> RankCtx::wait(Request req) {
  co_await exec_->freeze_point();
  while (!req->done) co_await req->cv.wait();
  // A request can complete while this process is frozen for a snapshot
  // (in-flight data drained into library buffers); the application itself
  // must not run until the thaw.
  co_await exec_->freeze_point();
  exec_->mark_progress();
}

sim::Task<void> RankCtx::wait_all(std::vector<Request> reqs) {
  for (auto& r : reqs) co_await wait(r);
}

sim::Task<std::size_t> RankCtx::wait_any(std::vector<Request> reqs) {
  co_await exec_->freeze_point();
  assert(!reqs.empty());
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i]->done) {
        co_await exec_->freeze_point();
        exec_->mark_progress();
        co_return i;
      }
    }
    co_await any_complete_.wait();
  }
}

bool RankCtx::iprobe(const Comm& c, int src, Tag tag) {
  exec_->mark_progress();  // a library entry: passive requests get serviced
  const int match_src = src == kAnySource ? kAnySource : c.world_rank(src);
  return matcher_.probe(c.id(), match_src, tag);
}

// ---------------------------------------------------------------------------
// RankCtx: delivery path
// ---------------------------------------------------------------------------

void RankCtx::deliver_eager(const Envelope& env) {
  if (MpiHooks* hk = hooks()) {
    hk->on_deliver(env.src_world, rank_, env.bytes);
  }
  record_arrival(env.id);
  if (Request req = matcher_.match_posted(env)) {
    req->info = fill_info(env);
    complete(req);
    return;
  }
  matcher_.push_unexpected(env, /*rndv=*/false);
}

void RankCtx::start_rndv_receive(const Envelope& env, const Request& req) {
  rndv_recv_[env.id] = req;
  push_out(env.src_world, OutItem{OutItem::Kind::kCts, env, true});
}

void RankCtx::deliver_rts(const Envelope& env) {
  if (Request req = matcher_.match_posted(env)) {
    start_rndv_receive(env, req);
    return;
  }
  matcher_.push_unexpected(env, /*rndv=*/true);
}

void RankCtx::on_packet(net::Packet p) {
  if (p.kind == net::PacketKind::kControl) {
    assert(control_handler_ && "control packet with no handler installed");
    if (control_handler_) control_handler_(std::move(p));
    return;
  }
  assert(!p.body.empty() && "data-plane packet without an envelope");
  const Envelope& env = p.body.get<Envelope>();
  switch (p.kind) {
    case net::PacketKind::kEager:
      deliver_eager(env);
      break;
    case net::PacketKind::kRts:
      deliver_rts(env);
      break;
    case net::PacketKind::kCts: {
      // We are the original sender: stream the data.
      push_out(env.dst_world, OutItem{OutItem::Kind::kRdma, env, true});
      break;
    }
    case net::PacketKind::kRdmaData: {
      auto it = rndv_recv_.find(env.id);
      assert(it != rndv_recv_.end() && "RDMA data with no receive in progress");
      Request req = it->second;
      rndv_recv_.erase(it);
      if (MpiHooks* hk = hooks()) {
        hk->on_deliver(env.src_world, rank_, env.bytes);
      }
      record_arrival(env.id);
      req->info = fill_info(env);
      complete(req);
      push_out(env.src_world, OutItem{OutItem::Kind::kFin, env, true});
      break;
    }
    case net::PacketKind::kFin: {
      auto it = pending_send_.find(env.id);
      assert(it != pending_send_.end() && "FIN with no pending send");
      Request req = it->second;
      pending_send_.erase(it);
      complete(req);
      break;
    }
    case net::PacketKind::kControl:
      break;  // handled above
  }
}

// ---------------------------------------------------------------------------
// RankCtx: checkpoint control surface
// ---------------------------------------------------------------------------

void RankCtx::freeze() {
  exec_->pause();
  // The endpoint lock lives on the service LP; one control hop away.
  mpi_.fabric_.request_lock(rank_);
}

void RankCtx::thaw() {
  mpi_.fabric_.request_unlock(rank_);
  exec_->resume();
}

}  // namespace gbc::mpi
