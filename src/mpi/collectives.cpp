#include <cassert>

#include "mpi/minimpi.hpp"

// Collective operations implemented over the point-to-point layer with the
// textbook algorithms MPI implementations use at these scales: dissemination
// barrier, binomial broadcast/reduce, ring allgather, pairwise all-to-all.
// Implementing them on p2p (rather than as magic timed events) matters here:
// a checkpoint freeze of one member visibly stalls its partners exactly as
// the paper's micro-benchmarks rely on.
namespace gbc::mpi {

namespace {
constexpr Bytes kBarrierBytes = 4;

std::vector<double> combine(Op op, std::vector<double> a,
                            const std::vector<double>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  assert(a.size() == b.size() && "reduce contributions must be same length");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = apply_op(op, a[i], b[i]);
  return a;
}

Bytes vec_bytes(const std::vector<double>& v) {
  return static_cast<Bytes>(v.size() * sizeof(double));
}
}  // namespace

sim::Task<void> RankCtx::barrier(const Comm& c) {
  co_await exec_->freeze_point();
  const int p = c.size();
  if (p <= 1) co_return;
  const int r = c.comm_rank(rank_);
  assert(r >= 0 && "barrier on a comm this rank is not part of");
  const Tag base = begin_collective(c);
  int round = 0;
  for (int step = 1; step < p; step <<= 1, ++round) {
    const int to = (r + step) % p;
    const int from = (r - step + p) % p;
    Request rq = irecv(c, from, base + round);
    co_await send(c, to, base + round, kBarrierBytes);
    co_await wait(rq);
  }
}

sim::Task<Payload> RankCtx::bcast(const Comm& c, int root, Bytes bytes,
                                  Payload data) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  if (p <= 1) co_return data;
  const Tag t = begin_collective(c);
  const int vr = (r - root + p) % p;

  int mask = 1;
  if (vr == 0) {
    while (mask < p) mask <<= 1;
  } else {
    while (!(vr & mask)) mask <<= 1;
    // Receive from the parent in the binomial tree.
    const int parent_vr = vr - mask;
    RecvInfo info = co_await recv(c, (parent_vr + root) % p, t);
    data = info.data;
    bytes = info.bytes;
  }
  // Forward to children at smaller bit positions.
  std::vector<Request> sends;
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vr + m < p) {
      sends.push_back(isend(c, (vr + m + root) % p, t, bytes, data));
    }
  }
  co_await wait_all(std::move(sends));
  co_return data;
}

sim::Task<void> RankCtx::ring_bcast(const Comm& c, int root, Bytes bytes) {
  co_await exec_->freeze_point();
  const int p = c.size();
  if (p <= 1) co_return;
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  const Tag t = begin_collective(c);
  const int vr = (r - root + p) % p;  // position along the ring
  const int next = (r + 1) % p;
  if (vr != 0) {
    co_await recv(c, (r - 1 + p) % p, t);
  }
  if (vr != p - 1) {
    // Forward without waiting: the isend completes in the background, so
    // this rank proceeds even if its successor is frozen or deferred.
    (void)isend(c, next, t, bytes);
  }
}

sim::Task<std::vector<double>> RankCtx::reduce(const Comm& c, int root, Op op,
                                               std::vector<double> contrib) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  if (p <= 1) co_return contrib;
  const Tag t = begin_collective(c);
  const int vr = (r - root + p) % p;
  const Bytes bytes = vec_bytes(contrib);

  std::vector<double> acc = std::move(contrib);
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vr & mask) == 0) {
      const int child_vr = vr | mask;
      if (child_vr < p) {
        RecvInfo info = co_await recv(c, (child_vr + root) % p, t);
        acc = combine(op, std::move(acc),
                      info.data ? *info.data : std::vector<double>{});
      }
    } else {
      const int parent_vr = vr - mask;
      co_await send(c, (parent_vr + root) % p, t, bytes,
                    make_payload(std::move(acc)));
      co_return std::vector<double>{};  // only the root holds the result
    }
  }
  co_return acc;
}

sim::Task<std::vector<double>> RankCtx::allreduce(const Comm& c, Op op,
                                                  std::vector<double> contrib) {
  const Bytes bytes = vec_bytes(contrib);
  std::vector<double> reduced = co_await reduce(c, 0, op, std::move(contrib));
  // Hoisted out of the bcast call: GCC 12 destroys mixed-arm conditional
  // temporaries inside co_await expressions too early.
  Payload root_data;
  if (c.comm_rank(rank_) == 0) root_data = make_payload(std::move(reduced));
  Payload result = co_await bcast(c, 0, bytes, std::move(root_data));
  if (!result) co_return std::vector<double>{};
  co_return *result;
}

sim::Task<std::vector<double>> RankCtx::allgather(const Comm& c,
                                                  Bytes block_bytes,
                                                  std::vector<double> block) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  std::vector<std::vector<double>> parts(p);
  parts[r] = std::move(block);
  if (p > 1) {
    // Ring: at step s, pass along the block that arrived at step s-1.
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    const Tag base = begin_collective(c);
    int send_idx = r;
    for (int step = 0; step < p - 1; ++step) {
      Request rq = irecv(c, left, base + step);
      Payload outgoing;  // hoisted: see GCC 12 note in allreduce
      if (!parts[send_idx].empty()) outgoing = make_payload(parts[send_idx]);
      co_await send(c, right, base + step, block_bytes, std::move(outgoing));
      co_await wait(rq);
      const int recv_idx = (r - step - 1 + p) % p;
      if (rq->info.data) parts[recv_idx] = *rq->info.data;
      send_idx = recv_idx;
    }
  }
  std::vector<double> result;
  for (const auto& part : parts) {
    result.insert(result.end(), part.begin(), part.end());
  }
  co_return result;
}

sim::Task<std::vector<double>> RankCtx::gather(const Comm& c, int root,
                                               Bytes block_bytes,
                                               std::vector<double> block) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  const Tag t = begin_collective(c);
  if (r != root) {
    Payload outgoing;  // hoisted: see GCC 12 note in allreduce
    if (!block.empty()) outgoing = make_payload(std::move(block));
    co_await send(c, root, t, block_bytes, std::move(outgoing));
    co_return std::vector<double>{};
  }
  std::vector<std::vector<double>> parts(p);
  parts[root] = std::move(block);
  std::vector<Request> reqs;
  for (int src = 0; src < p; ++src) {
    if (src != root) reqs.push_back(irecv(c, src, t));
  }
  co_await wait_all(reqs);
  std::size_t qi = 0;
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    const Request& rq = reqs[qi++];
    // irecv was posted per specific source, so info.source == src.
    if (rq->info.data) parts[src] = *rq->info.data;
  }
  std::vector<double> result;
  for (const auto& part : parts) {
    result.insert(result.end(), part.begin(), part.end());
  }
  co_return result;
}

sim::Task<std::vector<double>> RankCtx::scatter(const Comm& c, int root,
                                                Bytes block_bytes,
                                                std::vector<double> all) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  const Tag t = begin_collective(c);
  if (r == root) {
    const std::size_t stride = all.empty() ? 0 : all.size() / p;
    std::vector<Request> sends;
    for (int dst = 0; dst < p; ++dst) {
      if (dst == root) continue;
      Payload chunk;
      if (stride > 0) {
        chunk = make_payload(std::vector<double>(
            all.begin() + dst * stride, all.begin() + (dst + 1) * stride));
      }
      sends.push_back(isend(c, dst, t, block_bytes, std::move(chunk)));
    }
    co_await wait_all(std::move(sends));
    if (stride == 0) co_return std::vector<double>{};
    co_return std::vector<double>(all.begin() + root * stride,
                                  all.begin() + (root + 1) * stride);
  }
  RecvInfo info = co_await recv(c, root, t);
  co_return info.data ? *info.data : std::vector<double>{};
}

namespace {
// Driver for non-blocking collectives: runs the blocking algorithm in a
// background coroutine and completes the handed-out request at the end.
sim::Task<void> drive_collective(sim::Task<void> body, Request req,
                                 RankCtx* self) {
  co_await std::move(body);
  self->finish_request(req);
}

sim::Task<void> discard_payload(sim::Task<Payload> body) {
  (void)co_await std::move(body);
}

sim::Task<void> discard_vector(sim::Task<std::vector<double>> body) {
  (void)co_await std::move(body);
}
}  // namespace

Request RankCtx::ibarrier(const Comm& c) {
  auto req = make_request(/*is_recv=*/false);
  engine().spawn(drive_collective(barrier(c), req, this));
  return req;
}

Request RankCtx::ibcast(const Comm& c, int root, Bytes bytes) {
  auto req = make_request(/*is_recv=*/false);
  engine().spawn(drive_collective(discard_payload(bcast(c, root, bytes, nullptr)),
                                  req, this));
  return req;
}

Request RankCtx::iallgather(const Comm& c, Bytes block_bytes) {
  auto req = make_request(/*is_recv=*/false);
  std::vector<double> empty;
  engine().spawn(drive_collective(
      discard_vector(allgather(c, block_bytes, std::move(empty))), req, this));
  return req;
}

sim::Task<RecvInfo> RankCtx::sendrecv(const Comm& c, int dst, Tag send_tag,
                                      Bytes send_bytes, Payload send_data,
                                      int src, Tag recv_tag) {
  co_await exec_->freeze_point();
  Request rq = irecv(c, src, recv_tag);
  co_await send(c, dst, send_tag, send_bytes, std::move(send_data));
  co_await wait(rq);
  co_return rq->info;
}

sim::Task<std::vector<double>> RankCtx::scan(const Comm& c, Op op,
                                             std::vector<double> contrib) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  if (p <= 1) co_return contrib;
  const Tag t = begin_collective(c);
  const Bytes bytes = vec_bytes(contrib);
  // Hillis-Steele inclusive scan: log2(p) rounds of distance-doubling;
  // partial results flow upward (rank r sends to r+dist, hears from r-dist).
  std::vector<double> acc = std::move(contrib);
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    Request in;
    if (r - dist >= 0) in = irecv(c, r - dist, t + round);
    if (r + dist < p) {
      Payload out = make_payload(acc);
      co_await send(c, r + dist, t + round, bytes, std::move(out));
    }
    if (in) {
      co_await wait(in);
      acc = combine(op, std::move(acc),
                    in->info.data ? *in->info.data : std::vector<double>{});
    }
  }
  co_return acc;
}

sim::Task<std::vector<double>> RankCtx::reduce_scatter_block(
    const Comm& c, Op op, std::vector<double> contrib) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  if (p <= 1) co_return contrib;
  assert(contrib.size() % static_cast<std::size_t>(p) == 0 &&
         "contribution must split into p equal blocks");
  // Reduce at root 0, then scatter the blocks — simple and correct for all
  // sizes; a ring reduce-scatter would halve the traffic but the timing
  // difference is irrelevant at these message sizes.
  const std::size_t stride = contrib.size() / static_cast<std::size_t>(p);
  const Bytes block_bytes = static_cast<Bytes>(stride * sizeof(double));
  std::vector<double> reduced = co_await reduce(c, 0, op, std::move(contrib));
  co_return co_await scatter(c, 0, block_bytes, std::move(reduced));
}

sim::Task<void> RankCtx::alltoall(const Comm& c, Bytes block_bytes) {
  co_await exec_->freeze_point();
  const int p = c.size();
  const int r = c.comm_rank(rank_);
  assert(r >= 0);
  if (p <= 1) co_return;
  const Tag base = begin_collective(c);
  for (int step = 1; step < p; ++step) {
    const int dst = (r + step) % p;
    const int src = (r - step + p) % p;
    Request rq = irecv(c, src, base + step);
    co_await send(c, dst, base + step, block_bytes);
    co_await wait(rq);
  }
}

}  // namespace gbc::mpi
