#include "harness/sweep.hpp"

#include <algorithm>
#include <cstdlib>

#include "harness/thread_budget.hpp"

namespace gbc::harness {

int default_sweep_threads() {
  if (const char* env = std::getenv("GBC_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int threads)
    : threads_(threads > 0 ? threads : default_sweep_threads()) {
  workers_.reserve(threads_ > 1 ? threads_ - 1 : 0);
  // The submitting thread is worker number threads_; it claims indices too,
  // so a pool of width T spawns only T-1 threads.
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

SweepRunner& SweepRunner::shared() {
  static SweepRunner runner;
  return runner;
}

namespace {
// True while this thread is executing a swept job (on any runner). A job
// that submits a sweep (directly or via a pool-backed helper such as
// measure_effective_delay) must not block on the pool it may itself be
// occupying, so nested submissions run inline instead.
thread_local bool t_in_sweep_job = false;

class InSweepJobScope {
 public:
  InSweepJobScope() noexcept : prev_(t_in_sweep_job) { t_in_sweep_job = true; }
  ~InSweepJobScope() { t_in_sweep_job = prev_; }
  InSweepJobScope(const InSweepJobScope&) = delete;
  InSweepJobScope& operator=(const InSweepJobScope&) = delete;

 private:
  bool prev_;
};
}  // namespace

void SweepRunner::worker_loop() {
  std::unique_lock<std::mutex> lk(m_);
  std::uint64_t seen = 0;
  for (;;) {
    // batch_fn_ != nullptr keeps a late-waking worker (stale `seen`) from
    // touching a batch that already drained and was torn down.
    work_cv_.wait(lk, [&] {
      return shutdown_ || (generation_ != seen && batch_fn_ != nullptr);
    });
    if (shutdown_) return;
    seen = generation_;
    // The thread-budget grant caps how many workers may pile onto this
    // batch (the submitter is one of batch_width_); surplus workers go
    // straight back to sleep until the next batch.
    if (workers_in_batch_ >= batch_width_ - 1) continue;
    const auto* fn = batch_fn_;
    const std::size_t n = batch_n_;
    // Joining the batch under the lock pins its state: run_indexed cannot
    // return (and the next batch cannot be submitted) until this worker
    // parks again, so the claim below never races a batch handoff.
    ++workers_in_batch_;
    lk.unlock();
    {
      InSweepJobScope scope;
      for (;;) {
        const std::size_t i = batch_next_.fetch_add(1);
        if (i >= n) break;
        (*fn)(i);
        std::lock_guard<std::mutex> g(m_);
        ++batch_done_;
      }
    }
    lk.lock();
    if (--workers_in_batch_ == 0 && batch_done_ == batch_n_) {
      done_cv_.notify_all();
    }
  }
}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Inline when the pool adds nothing, and always when called from inside a
  // swept job: blocking on submit_m_ from a pool thread (or from a job the
  // submitter is running) would deadlock, since the outer batch cannot
  // drain while this job waits.
  if (threads_ <= 1 || n == 1 || t_in_sweep_job) {
    InSweepJobScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One batch in flight at a time; concurrent submitters queue up here.
  std::lock_guard<std::mutex> submit_lk(submit_m_);
  // Lease the batch width from the shared budget so a sweep running next to
  // sharded engines (or another pool) cannot oversubscribe the host. A
  // grant of 1 still drains correctly: no worker joins and the submitter
  // claims every index itself.
  const int grant = ThreadBudget::shared().acquire(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n)));
  {
    std::lock_guard<std::mutex> lk(m_);
    batch_fn_ = &fn;
    batch_n_ = n;
    batch_next_.store(0);
    batch_done_ = 0;
    batch_width_ = grant;
    ++generation_;
  }
  if (grant > 1) work_cv_.notify_all();
  // The submitter works the batch alongside the pool.
  {
    InSweepJobScope scope;
    for (;;) {
      const std::size_t i = batch_next_.fetch_add(1);
      if (i >= n) break;
      fn(i);
      std::lock_guard<std::mutex> g(m_);
      ++batch_done_;
    }
  }
  // Wait for the batch to drain AND for every worker that joined it to park
  // again: a worker between its last claim and re-locking still reads this
  // batch's fn/n/batch_next_, so the batch state must outlive it.
  std::unique_lock<std::mutex> lk(m_);
  done_cv_.wait(lk, [&] {
    return batch_done_ == batch_n_ && workers_in_batch_ == 0;
  });
  batch_fn_ = nullptr;
  lk.unlock();
  ThreadBudget::shared().release(grant);
}

std::vector<RunResult> run_experiments(SweepRunner& runner,
                                       const std::vector<ExperimentPoint>& pts,
                                       SweepStats* stats) {
  SweepStats local;
  auto results = runner.map<RunResult>(
      pts.size(),
      [&pts](std::size_t i) {
        const ExperimentPoint& p = pts[i];
        return run_experiment(p.preset, p.factory, p.ckpt_cfg, p.requests,
                              p.hooks);
      },
      &local);
  for (std::size_t i = 0; i < results.size(); ++i) {
    local.points[i].events_processed = results[i].events_processed;
  }
  if (stats) *stats = std::move(local);
  return results;
}

std::vector<RunResult> run_experiments(const std::vector<ExperimentPoint>& pts,
                                       SweepStats* stats) {
  return run_experiments(SweepRunner::shared(), pts, stats);
}

DelayMeasurement to_delay_measurement(const RunResult& with_ckpt,
                                      double base_seconds) {
  DelayMeasurement m;
  m.base_seconds = base_seconds;
  m.with_ckpt_seconds = with_ckpt.completion_seconds();
  if (!with_ckpt.checkpoints.empty()) {
    m.checkpoint = with_ckpt.checkpoints.front();
  }
  return m;
}

std::vector<DelayMeasurement> sweep_effective_delay_with_base(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const std::vector<DelayPoint>& points, double base_seconds,
    SweepStats* stats) {
  std::vector<ExperimentPoint> pts;
  pts.reserve(points.size());
  for (const auto& dp : points) {
    ExperimentPoint p;
    p.preset = preset;
    p.factory = make;
    p.ckpt_cfg = dp.ckpt_cfg;
    p.requests.push_back(CkptRequest{dp.issuance, dp.protocol});
    pts.push_back(std::move(p));
  }
  auto runs = run_experiments(pts, stats);
  std::vector<DelayMeasurement> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(to_delay_measurement(r, base_seconds));
  return out;
}

}  // namespace gbc::harness
