#pragma once

#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "storage/storage.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

/// Everything needed to instantiate one simulated cluster.
struct ClusterPreset {
  int nranks = 32;
  /// DES shards for the run (sim::ShardedEngine). The full protocol stack
  /// stays one logical process pinned to shard 0; shards 1..S-1 host
  /// per-rank wire-flight relay LPs (contiguous rank blocks), so sharded
  /// SimCluster runs are event-for-event identical to serial ones (see
  /// net::ShardRouter and DESIGN.md sec. 12). Must be in [1, nranks]. The
  /// LP-disciplined scale model (harness/scale_model.hpp) additionally
  /// partitions rank compute across shards. The topology knob lives in
  /// net.topology.
  int shards = 1;
  /// Worker threads driving the shards, clamped to [1, shards]; 1 runs all
  /// shards inline (identical results at any thread count).
  int threads = 1;
  storage::StorageConfig storage;
  /// Node-local staging tier (disabled by default: single-tier PFS model).
  storage::TierConfig tier;
  net::NetConfig net;
  mpi::MpiConfig mpi;
};

/// The paper's testbed: 32 compute nodes (one MPI process each, dual Xeon
/// 3.6 GHz, MT25208 HCAs) plus 4 PVFS2 storage nodes reached over IPoIB with
/// ~140 MB/s aggregate throughput (Figure 1).
inline ClusterPreset icpp07_cluster() {
  ClusterPreset p;
  p.nranks = 32;
  // Defaults of StorageConfig / NetConfig are calibrated to this testbed.
  return p;
}

}  // namespace gbc::harness
