#pragma once

#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "storage/storage.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

/// Everything needed to instantiate one simulated cluster.
struct ClusterPreset {
  int nranks = 32;
  /// DES shards for the run (sim::ShardedEngine). Each MPI rank is a
  /// logical process owned by shard rank*S/nranks (its matcher, send pump
  /// and NIC state run there); shard 0 additionally hosts the service LP
  /// (storage, connection manager, checkpoint coordinator). All cross-LP
  /// interaction flows over the sim::LpBus with canonical inbox ordering,
  /// so sharded SimCluster runs are event-for-event identical to serial
  /// ones (DESIGN.md §13). Must be in [1, nranks]. The topology knob lives
  /// in net.topology.
  int shards = 1;
  /// Worker threads driving the shards, clamped to [1, shards]; 1 runs all
  /// shards inline (identical results at any thread count).
  int threads = 1;
  storage::StorageConfig storage;
  /// Node-local staging tier (disabled by default: single-tier PFS model).
  storage::TierConfig tier;
  net::NetConfig net;
  mpi::MpiConfig mpi;
};

/// The paper's testbed: 32 compute nodes (one MPI process each, dual Xeon
/// 3.6 GHz, MT25208 HCAs) plus 4 PVFS2 storage nodes reached over IPoIB with
/// ~140 MB/s aggregate throughput (Figure 1).
inline ClusterPreset icpp07_cluster() {
  ClusterPreset p;
  p.nranks = 32;
  // Defaults of StorageConfig / NetConfig are calibrated to this testbed.
  return p;
}

}  // namespace gbc::harness
