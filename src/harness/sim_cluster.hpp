#pragma once

#include <optional>

#include "ckpt/checkpoint.hpp"
#include "harness/preset.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "storage/storage.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

/// Wiring knobs that are not part of the cluster shape itself.
struct SimClusterOptions {
  /// Structured protocol/staging trace (enable it before the run).
  sim::Trace* trace = nullptr;
  /// MPI delivery hooks (traffic observers).
  mpi::MpiHooks* hooks = nullptr;
  /// Instantiate the staging tier when `preset.tier.enabled`. Recovery's
  /// restart phase sets this false: a restarted job reloads images but its
  /// fresh local tiers start empty and play no further role.
  bool attach_tier = true;
};

/// The composition root: one simulated cluster, fully wired.
///
/// Owns the engine, fabric (with its connection manager), shared PFS,
/// optional node-local staging tier, MiniMPI and the C/R service, and
/// performs all the cross-layer plumbing (tier replica transport over the
/// fabric, trace fan-out, gate installation) in exactly one place. Every
/// driver — experiments, recovery replays, MTBF loops, tools, tests —
/// builds its stack through this class, so layer wiring changes happen
/// here and nowhere else.
///
/// Construction schedules no engine events; two clusters built from the
/// same preset are bit-identical starting states.
class SimCluster {
 public:
  explicit SimCluster(const ClusterPreset& preset,
                      const ckpt::CkptConfig& ckpt_cfg = {},
                      const SimClusterOptions& opts = {});
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  const ClusterPreset& preset() const noexcept { return preset_; }
  int nranks() const noexcept { return preset_.nranks; }

  sim::Engine& engine() noexcept { return eng_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  net::ConnectionManager& connections() noexcept {
    return fabric_.connections();
  }
  storage::StorageSystem& shared_fs() noexcept { return fs_; }
  mpi::MiniMPI& mpi() noexcept { return mpi_; }
  ckpt::CheckpointService& checkpoints() noexcept { return ckpt_; }
  /// Null when the preset has no tier (or attach_tier was false).
  storage::TieredStore* tier() noexcept { return tier_ ? &*tier_ : nullptr; }

  /// Spawns `per_rank(rank_ctx)` for every rank (the usual launch pattern).
  template <typename F>
  void spawn_ranks(F&& per_rank) {
    for (int r = 0; r < preset_.nranks; ++r) {
      eng_.spawn(per_rank(mpi_.rank(r)));
    }
  }

 private:
  ClusterPreset preset_;
  sim::Engine eng_;
  net::Fabric fabric_;
  storage::StorageSystem fs_;
  mpi::MiniMPI mpi_;
  ckpt::CheckpointService ckpt_;
  std::optional<storage::TieredStore> tier_;
};

}  // namespace gbc::harness
