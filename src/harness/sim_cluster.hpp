#pragma once

#include <optional>

#include <memory>

#include "ckpt/checkpoint.hpp"
#include "harness/preset.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/lp_bus.hpp"
#include "sim/shard_engine.hpp"
#include "sim/trace.hpp"
#include "storage/storage.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

/// Wiring knobs that are not part of the cluster shape itself.
struct SimClusterOptions {
  /// Structured protocol/staging trace (enable it before the run).
  sim::Trace* trace = nullptr;
  /// MPI delivery hooks (traffic observers).
  mpi::MpiHooks* hooks = nullptr;
  /// Instantiate the staging tier when `preset.tier.enabled`. Recovery's
  /// restart phase sets this false: a restarted job reloads images but its
  /// fresh local tiers start empty and play no further role.
  bool attach_tier = true;
};

/// The composition root: one simulated cluster, fully wired.
///
/// Owns the engine, fabric (with its connection manager), shared PFS,
/// optional node-local staging tier, MiniMPI and the C/R service, and
/// performs all the cross-layer plumbing (tier replica transport over the
/// fabric, trace fan-out, gate installation) in exactly one place. Every
/// driver — experiments, recovery replays, MTBF loops, tools, tests —
/// builds its stack through this class, so layer wiring changes happen
/// here and nowhere else.
///
/// ## LP layout (DESIGN.md §13)
///
/// The cluster is partitioned into logical processes connected by a
/// sim::LpBus: each MPI rank is one LP owned by shard rank*S/n (its
/// matcher, send pump, NIC horizon, connection mirrors and protocol-visible
/// counters all live there), and the *service LP* — connection manager,
/// shared storage, staging tier, checkpoint coordinator — is pinned to
/// shard 0. Every cross-LP interaction flows over the bus with latency
/// >= Fabric::floor_hop(), the uniform conservative lookahead, and arrivals
/// are delivered through per-LP inboxes in canonical (origin, sequence)
/// order — so runs are event-for-event identical at any shard and thread
/// count. Drive a cluster with run()/run_until()/abort(); running shard 0's
/// engine directly is only correct in the single-shard case.
///
/// Construction schedules no engine events; two clusters built from the
/// same preset are bit-identical starting states.
class SimCluster {
 public:
  explicit SimCluster(const ClusterPreset& preset,
                      const ckpt::CkptConfig& ckpt_cfg = {},
                      const SimClusterOptions& opts = {});
  ~SimCluster();
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  const ClusterPreset& preset() const noexcept { return preset_; }
  int nranks() const noexcept { return preset_.nranks; }

  /// Shard 0: the *service* engine (storage, connection manager, checkpoint
  /// coordinator). Rank code runs on each rank's home engine — use
  /// mpi().rank(r).engine() or spawn_ranks().
  sim::Engine& engine() noexcept { return eng_; }
  sim::ShardedEngine& sharded() noexcept { return sharded_; }
  sim::LpBus& bus() noexcept { return bus_; }

  /// Runs the cluster to completion (all shards and mailboxes drained).
  void run() { sharded_.run(); }
  /// Runs everything at or before t, then advances every shard clock to t.
  void run_until(sim::Time t) { sharded_.run_until(t); }
  /// Aborts every shard (failure injection teardown).
  void abort() {
    sharded_.abort_all();
    bus_.clear();
  }
  net::Fabric& fabric() noexcept { return fabric_; }
  net::ConnectionManager& connections() noexcept {
    return fabric_.connections();
  }
  storage::StorageSystem& shared_fs() noexcept { return fs_; }
  mpi::MiniMPI& mpi() noexcept { return mpi_; }
  ckpt::CheckpointService& checkpoints() noexcept { return ckpt_; }
  /// Null when the preset has no tier (or attach_tier was false).
  storage::TieredStore* tier() noexcept { return tier_ ? &*tier_ : nullptr; }

  /// Spawns `per_rank(rank_ctx)` for every rank on the rank's home engine
  /// (the usual launch pattern), and registers each for liveness tracking:
  /// the checkpoint service's periodic driver stops once every rank main
  /// has finished.
  template <typename F>
  void spawn_ranks(F&& per_rank) {
    for (int r = 0; r < preset_.nranks; ++r) {
      ckpt_.note_rank_started();
      mpi::RankCtx& rc = mpi_.rank(r);
      rc.engine().spawn(rank_main(per_rank(rc), r));
    }
  }

 private:
  static sim::ShardedEngine::Options engine_options(const ClusterPreset& p);
  static sim::Time bus_floor(const ClusterPreset& p);
  /// Wraps one rank's main: on return, reports liveness to the service LP.
  sim::Task<void> rank_main(sim::Task<void> body, int rank);

  ClusterPreset preset_;
  sim::ShardedEngine sharded_;
  sim::Engine& eng_;  // = sharded_.shard(0), the service LP's engine
  sim::LpBus bus_;
  net::Fabric fabric_;
  storage::StorageSystem fs_;
  mpi::MiniMPI mpi_;
  ckpt::CheckpointService ckpt_;
  std::optional<storage::TieredStore> tier_;
};

}  // namespace gbc::harness
