#pragma once

#include <optional>

#include <memory>

#include "ckpt/checkpoint.hpp"
#include "harness/preset.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/shard_engine.hpp"
#include "sim/trace.hpp"
#include "storage/storage.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

/// Wiring knobs that are not part of the cluster shape itself.
struct SimClusterOptions {
  /// Structured protocol/staging trace (enable it before the run).
  sim::Trace* trace = nullptr;
  /// MPI delivery hooks (traffic observers).
  mpi::MpiHooks* hooks = nullptr;
  /// Instantiate the staging tier when `preset.tier.enabled`. Recovery's
  /// restart phase sets this false: a restarted job reloads images but its
  /// fresh local tiers start empty and play no further role.
  bool attach_tier = true;
};

/// The composition root: one simulated cluster, fully wired.
///
/// Owns the engine, fabric (with its connection manager), shared PFS,
/// optional node-local staging tier, MiniMPI and the C/R service, and
/// performs all the cross-layer plumbing (tier replica transport over the
/// fabric, trace fan-out, gate installation) in exactly one place. Every
/// driver — experiments, recovery replays, MTBF loops, tools, tests —
/// builds its stack through this class, so layer wiring changes happen
/// here and nowhere else.
///
/// The stack runs on shard 0 of a sim::ShardedEngine. With `preset.shards
/// == 1` that is exactly the serial engine. With more shards, the fabric's
/// wire flights are relayed through per-rank LPs on the shard owning the
/// destination rank (contiguous blocks, net::ShardRouter), re-entering
/// shard 0 under sequence numbers reserved at send time — so sharded runs
/// are event-for-event identical to serial ones at any shard and thread
/// count. Drive a cluster with run()/run_until()/abort(); running shard 0's
/// engine directly is only correct in the single-shard case.
///
/// Construction schedules no engine events; two clusters built from the
/// same preset are bit-identical starting states.
class SimCluster {
 public:
  explicit SimCluster(const ClusterPreset& preset,
                      const ckpt::CkptConfig& ckpt_cfg = {},
                      const SimClusterOptions& opts = {});
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  const ClusterPreset& preset() const noexcept { return preset_; }
  int nranks() const noexcept { return preset_.nranks; }

  /// Shard 0: the engine the whole protocol stack lives on.
  sim::Engine& engine() noexcept { return eng_; }
  sim::ShardedEngine& sharded() noexcept { return sharded_; }

  /// Runs the cluster to completion (all shards and mailboxes drained).
  void run() { sharded_.run(); }
  /// Runs everything at or before t, then advances every shard clock to t.
  void run_until(sim::Time t) { sharded_.run_until(t); }
  /// Aborts every shard (failure injection teardown).
  void abort() { sharded_.abort_all(); }
  net::Fabric& fabric() noexcept { return fabric_; }
  net::ConnectionManager& connections() noexcept {
    return fabric_.connections();
  }
  storage::StorageSystem& shared_fs() noexcept { return fs_; }
  mpi::MiniMPI& mpi() noexcept { return mpi_; }
  ckpt::CheckpointService& checkpoints() noexcept { return ckpt_; }
  /// Null when the preset has no tier (or attach_tier was false).
  storage::TieredStore* tier() noexcept { return tier_ ? &*tier_ : nullptr; }

  /// Spawns `per_rank(rank_ctx)` for every rank (the usual launch pattern).
  template <typename F>
  void spawn_ranks(F&& per_rank) {
    for (int r = 0; r < preset_.nranks; ++r) {
      eng_.spawn(per_rank(mpi_.rank(r)));
    }
  }

 private:
  static sim::ShardedEngine::Options engine_options(const ClusterPreset& p);

  ClusterPreset preset_;
  sim::ShardedEngine sharded_;
  sim::Engine& eng_;  // = sharded_.shard(0)
  net::Fabric fabric_;
  storage::StorageSystem fs_;
  mpi::MiniMPI mpi_;
  ckpt::CheckpointService ckpt_;
  std::optional<storage::TieredStore> tier_;
  std::unique_ptr<net::ShardRouter> router_;
};

}  // namespace gbc::harness
