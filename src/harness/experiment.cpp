#include "harness/experiment.hpp"

#include <algorithm>

#include "harness/sim_cluster.hpp"
#include "harness/sweep.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

namespace {

sim::Task<void> rank_program(workloads::Workload* wl, mpi::RankCtx* rank,
                             workloads::WorkloadState from) {
  co_await wl->run_rank(*rank, from);
}

}  // namespace

RunResult run_experiment(const ClusterPreset& preset,
                         const WorkloadFactory& make,
                         const ckpt::CkptConfig& ckpt_cfg,
                         const std::vector<CkptRequest>& requests,
                         mpi::MpiHooks* hooks, sim::Trace* trace) {
  SimCluster cluster(preset, ckpt_cfg, {.trace = trace, .hooks = hooks});

  std::unique_ptr<workloads::Workload> wl = make(preset.nranks);
  wl->setup(cluster.mpi());
  wl->attach(cluster.checkpoints());

  for (const auto& req : requests) {
    cluster.checkpoints().request_at(req.at, req.protocol);
  }

  // Completion stamps are per-rank slots (each written from its own shard);
  // the max is folded after the run, at quiescence.
  std::vector<sim::Time> done_at(preset.nranks, 0);
  cluster.spawn_ranks([&](mpi::RankCtx& rank) {
    return [](workloads::Workload* w, mpi::RankCtx* rk,
              sim::Time* done) -> sim::Task<void> {
      co_await rank_program(w, rk, {});
      *done = rk->engine().now();
    }(wl.get(), &rank, &done_at[rank.world_rank()]);
  });
  cluster.run();

  RunResult res;
  res.completion = 0;
  for (sim::Time t : done_at) res.completion = std::max(res.completion, t);
  res.checkpoints = cluster.checkpoints().history();
  res.mpi_stats = cluster.mpi().stats();
  res.storage_peak_concurrency = cluster.shared_fs().peak_concurrency();
  res.connection_setups = cluster.connections().total_setups();
  res.connection_teardowns = cluster.connections().total_teardowns();
  for (int r = 0; r < preset.nranks; ++r) {
    res.final_iterations.push_back(wl->state(r).iteration);
    res.final_hashes.push_back(wl->state(r).hash);
  }
  if (auto* tier = cluster.tier()) {
    res.tier_images_drained = tier->images_drained();
    res.tier_write_throughs = tier->write_throughs();
    res.tier_replicas = tier->replicas_made();
    res.tier_images_encoded = tier->images_encoded();
  }
  res.events_processed = cluster.sharded().total_events();
  return res;
}

DelayMeasurement measure_effective_delay(const ClusterPreset& preset,
                                         const WorkloadFactory& make,
                                         const ckpt::CkptConfig& ckpt_cfg,
                                         sim::Time issuance,
                                         ckpt::Protocol protocol) {
  // The base and checkpointed runs are independent deterministic
  // simulations; run the pair through the sweep pool.
  std::vector<ExperimentPoint> pts(2);
  pts[0].preset = preset;
  pts[0].factory = make;
  pts[0].ckpt_cfg = ckpt_cfg;
  pts[1].preset = preset;
  pts[1].factory = make;
  pts[1].ckpt_cfg = ckpt_cfg;
  pts[1].requests.push_back(CkptRequest{issuance, protocol});
  auto runs = run_experiments(pts);
  return to_delay_measurement(runs[1], runs[0].completion_seconds());
}

DelayMeasurement measure_effective_delay_with_base(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const ckpt::CkptConfig& ckpt_cfg, sim::Time issuance,
    ckpt::Protocol protocol, double base_seconds) {
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{issuance, protocol});
  RunResult with = run_experiment(preset, make, ckpt_cfg, reqs);
  DelayMeasurement m;
  m.base_seconds = base_seconds;
  m.with_ckpt_seconds = with.completion_seconds();
  if (!with.checkpoints.empty()) m.checkpoint = with.checkpoints.front();
  return m;
}

}  // namespace gbc::harness
