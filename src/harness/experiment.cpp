#include "harness/experiment.hpp"

#include <optional>

#include "harness/sweep.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

namespace {

sim::Task<void> rank_program(workloads::Workload* wl, mpi::RankCtx* rank,
                             workloads::WorkloadState from) {
  co_await wl->run_rank(*rank, from);
}

}  // namespace

RunResult run_experiment(const ClusterPreset& preset,
                         const WorkloadFactory& make,
                         const ckpt::CkptConfig& ckpt_cfg,
                         const std::vector<CkptRequest>& requests,
                         mpi::MpiHooks* hooks, sim::Trace* trace) {
  sim::Engine eng;
  net::Fabric fabric(eng, preset.net, preset.nranks);
  storage::StorageSystem fs(eng, preset.storage);
  mpi::MiniMPI mpi(eng, fabric, preset.mpi);
  ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);
  std::optional<storage::TieredStore> tier;
  if (preset.tier.enabled) {
    tier.emplace(eng, fs, preset.tier, preset.nranks);
    tier->set_replica_transport(
        [&fabric](int src, int dst, storage::Bytes b) {
          return fabric.bulk_transfer(src, dst, b);
        });
    tier->set_trace(trace);
    ckpt.set_tier(&*tier);
  }
  if (trace) ckpt.set_trace(trace);
  if (hooks) mpi.set_hooks(hooks);

  std::unique_ptr<workloads::Workload> wl = make(preset.nranks);
  wl->setup(mpi);
  wl->attach(ckpt);

  for (const auto& req : requests) ckpt.request_at(req.at, req.protocol);

  sim::Time completion = 0;
  for (int r = 0; r < preset.nranks; ++r) {
    eng.spawn([](workloads::Workload* w, mpi::RankCtx* rk,
                 sim::Time* done) -> sim::Task<void> {
      co_await rank_program(w, rk, {});
      if (rk->engine().now() > *done) *done = rk->engine().now();
    }(wl.get(), &mpi.rank(r), &completion));
  }
  eng.run();

  RunResult res;
  res.completion = completion;
  res.checkpoints = ckpt.history();
  res.mpi_stats = mpi.stats();
  res.storage_peak_concurrency = fs.peak_concurrency();
  res.connection_setups = fabric.connections().total_setups();
  res.connection_teardowns = fabric.connections().total_teardowns();
  for (int r = 0; r < preset.nranks; ++r) {
    res.final_iterations.push_back(wl->state(r).iteration);
    res.final_hashes.push_back(wl->state(r).hash);
  }
  if (tier) {
    res.tier_images_drained = tier->images_drained();
    res.tier_write_throughs = tier->write_throughs();
    res.tier_replicas = tier->replicas_made();
  }
  res.events_processed = eng.events_processed();
  return res;
}

DelayMeasurement measure_effective_delay(const ClusterPreset& preset,
                                         const WorkloadFactory& make,
                                         const ckpt::CkptConfig& ckpt_cfg,
                                         sim::Time issuance,
                                         ckpt::Protocol protocol) {
  // The base and checkpointed runs are independent deterministic
  // simulations; run the pair through the sweep pool.
  std::vector<ExperimentPoint> pts(2);
  pts[0].preset = preset;
  pts[0].factory = make;
  pts[0].ckpt_cfg = ckpt_cfg;
  pts[1].preset = preset;
  pts[1].factory = make;
  pts[1].ckpt_cfg = ckpt_cfg;
  pts[1].requests.push_back(CkptRequest{issuance, protocol});
  auto runs = run_experiments(pts);
  return to_delay_measurement(runs[1], runs[0].completion_seconds());
}

DelayMeasurement measure_effective_delay_with_base(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const ckpt::CkptConfig& ckpt_cfg, sim::Time issuance,
    ckpt::Protocol protocol, double base_seconds) {
  std::vector<CkptRequest> reqs;
  reqs.push_back(CkptRequest{issuance, protocol});
  RunResult with = run_experiment(preset, make, ckpt_cfg, reqs);
  DelayMeasurement m;
  m.base_seconds = base_seconds;
  m.with_ckpt_seconds = with.completion_seconds();
  if (!with.checkpoints.empty()) m.checkpoint = with.checkpoints.front();
  return m;
}

}  // namespace gbc::harness
