#include "harness/thread_budget.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <thread>

namespace gbc::harness {

namespace {

int env_capacity() {
  if (const char* env = std::getenv("GBC_THREAD_BUDGET")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadBudget::ThreadBudget() : capacity_(env_capacity()) {}

ThreadBudget& ThreadBudget::shared() {
  static ThreadBudget budget;
  return budget;
}

int ThreadBudget::acquire(int want) {
  if (want < 1) want = 1;
  std::lock_guard<std::mutex> lk(m_);
  const int free = std::max(0, capacity_ - 1 - leased_);
  const int extra = std::min(want - 1, free);
  leased_ += extra;
  peak_ = std::max(peak_, leased_);
  return 1 + extra;
}

void ThreadBudget::release(int granted) {
  if (granted <= 1) return;
  std::lock_guard<std::mutex> lk(m_);
  leased_ -= granted - 1;
  assert(leased_ >= 0 && "release() without a matching acquire()");
}

int ThreadBudget::capacity() const {
  std::lock_guard<std::mutex> lk(m_);
  return capacity_;
}

int ThreadBudget::leased() const {
  std::lock_guard<std::mutex> lk(m_);
  return leased_;
}

int ThreadBudget::peak_leased() const {
  std::lock_guard<std::mutex> lk(m_);
  return peak_;
}

void ThreadBudget::set_capacity_for_test(int cap) {
  std::lock_guard<std::mutex> lk(m_);
  capacity_ = cap >= 1 ? cap : env_capacity();
  peak_ = leased_;
}

}  // namespace gbc::harness
