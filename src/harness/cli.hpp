#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gbc::harness {

/// Minimal typed command-line flag parser for the gbcsim tool and example
/// binaries: `--name value` or `--name=value`; `--bool-flag` toggles true.
/// Unknown flags are errors; `--help` is always available.
class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_double(const std::string& name, double default_value,
                  std::string help);
  void add_int(const std::string& name, int default_value, std::string help);
  void add_bool(const std::string& name, bool default_value,
                std::string help);

  /// Opts in to positional arguments. By default any token that is not a
  /// declared `--flag` is a parse error, so typos like `-tier` or a stray
  /// value cannot be silently ignored.
  void allow_positional() { allow_positional_ = true; }

  /// Parses argv; returns false (and fills error()) on bad input. A `--help`
  /// request returns false with empty error().
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  int get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional arguments (only populated after allow_positional()).
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }
  bool help_requested() const { return help_requested_; }
  std::string usage() const;

 private:
  enum class Type { kString, kDouble, kInt, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual value
    std::string help;
  };
  const Flag* find(const std::string& name, Type t) const;

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
  bool allow_positional_ = false;
};

}  // namespace gbc::harness
