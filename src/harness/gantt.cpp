#include "harness/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace gbc::harness {

std::string render_gantt(const ckpt::GlobalCheckpoint& gc, sim::Time horizon,
                         int columns) {
  std::ostringstream os;
  os << protocol_name(gc.protocol) << ": request t=" << std::fixed
     << std::setprecision(1) << sim::to_seconds(gc.requested_at)
     << "s, complete t=" << sim::to_seconds(gc.completed_at) << "s\n";
  for (std::size_t r = 0; r < gc.snapshots.size(); ++r) {
    std::string bar(static_cast<std::size_t>(columns), '.');
    const auto& s = gc.snapshots[r];
    for (int c = 0; c < columns; ++c) {
      const sim::Time t = horizon * c / columns;
      if (s.freeze_begin >= 0 && t >= s.freeze_begin && t < s.resume_at) {
        bar[static_cast<std::size_t>(c)] = '#';
      }
    }
    os << "  rank " << (r < 10 ? " " : "") << r << " |" << bar << "|\n";
  }
  return os.str();
}

std::string render_gantt_comparison(
    const std::vector<std::pair<std::string, ckpt::GlobalCheckpoint>>& runs,
    int columns) {
  sim::Time horizon = 0;
  for (const auto& [title, gc] : runs) {
    (void)title;
    horizon = std::max(horizon, gc.completed_at);
  }
  horizon += horizon / 8 + 1;
  std::ostringstream os;
  for (const auto& [title, gc] : runs) {
    os << title << "\n" << render_gantt(gc, horizon, columns) << "\n";
  }
  return os.str();
}

}  // namespace gbc::harness
