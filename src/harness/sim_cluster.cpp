#include "harness/sim_cluster.hpp"

#include <stdexcept>

namespace gbc::harness {

SimCluster::SimCluster(const ClusterPreset& preset,
                       const ckpt::CkptConfig& ckpt_cfg,
                       const SimClusterOptions& opts)
    : preset_(preset),
      fabric_(eng_, preset_.net, preset_.nranks),
      fs_(eng_, preset_.storage),
      mpi_(eng_, fabric_, preset_.mpi),
      ckpt_(mpi_, fs_, ckpt_cfg) {
  if (preset_.shards > 1) {
    // The full stack is one logical process (shared connection manager,
    // PFS queues and MPI matching); sharding it would not be deterministic.
    // Scale runs that want shards go through harness/scale_model.hpp.
    throw std::invalid_argument(
        "SimCluster: the full protocol stack cannot be sharded "
        "(preset.shards > 1); use the scale model for sharded runs");
  }
  if (preset_.tier.enabled && opts.attach_tier) {
    tier_.emplace(eng_, fs_, preset_.tier, preset_.nranks);
    tier_->set_replica_transport(
        [this](int src, int dst, storage::Bytes b) {
          return fabric_.bulk_transfer(src, dst, b);
        });
    tier_->set_trace(opts.trace);
    ckpt_.set_tier(&*tier_);
  }
  if (opts.trace) ckpt_.set_trace(opts.trace);
  if (opts.hooks) mpi_.set_hooks(opts.hooks);
}

}  // namespace gbc::harness
