#include "harness/sim_cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gbc::harness {

namespace {

/// Wire-flight relay for the full stack: packets to rank r are carried by a
/// relay LP on the shard owning r's contiguous block, touching down halfway
/// through the propagation delay and re-entering shard 0 at arrival under
/// the sequence number the fabric reserved at send time.
class BlockRelayRouter final : public net::ShardRouter {
 public:
  BlockRelayRouter(sim::ShardedEngine& se, int nranks)
      : se_(se), nranks_(nranks) {}

  void relay(int src, int dst, sim::Time depart, sim::Time arrival,
             std::uint64_t seq, sim::InlineFn fn) override {
    (void)src;
    const int s = static_cast<int>(static_cast<std::int64_t>(dst) *
                                   se_.shards() / nranks_);
    if (s == 0) {
      // The destination's relay block is the stack shard itself; a direct
      // reserved schedule is the same event the serial path produces.
      se_.shard(0).schedule_at_reserved(arrival, seq, std::move(fn));
      return;
    }
    const sim::Time mid = depart + (arrival - depart) / 2;
    se_.post(0, s, mid,
             [this, s, arrival, seq, fn = std::move(fn)]() mutable {
               se_.post_reserved(s, 0, arrival, seq, std::move(fn));
             });
  }

 private:
  sim::ShardedEngine& se_;
  int nranks_;
};

}  // namespace

sim::ShardedEngine::Options SimCluster::engine_options(
    const ClusterPreset& p) {
  if (p.shards < 1 || p.shards > p.nranks) {
    throw std::invalid_argument(
        "SimCluster: preset.shards must be in [1, nranks]");
  }
  sim::ShardedEngine::Options o;
  o.shards = p.shards;
  o.threads = p.threads;
  if (p.shards == 1) return o;
  // Star-shaped lookahead matrix around the stack shard. A relay hop out of
  // shard 0 lands no sooner than the NIC overhead plus half the minimum
  // propagation delay after it was posted; the return leg covers the other
  // (rounded-up) half. Relay shards never talk to each other.
  const sim::Time min_lat =
      p.net.wire_latency * std::max(1, p.net.topology.min_hops());
  const sim::Time out = p.net.per_message_overhead + min_lat / 2;
  const sim::Time back = min_lat - min_lat / 2;
  if (out <= 0 || back <= 0) {
    throw std::invalid_argument(
        "SimCluster: sharded runs need per_message_overhead + wire_latency "
        "large enough for a positive relay lookahead");
  }
  const int S = p.shards;
  o.lookahead_matrix.assign(static_cast<std::size_t>(S) * S,
                            sim::ShardedEngine::kNoLink);
  for (int s = 1; s < S; ++s) {
    o.lookahead_matrix[static_cast<std::size_t>(0) * S + s] = out;
    o.lookahead_matrix[static_cast<std::size_t>(s) * S + 0] = back;
  }
  return o;
}

SimCluster::SimCluster(const ClusterPreset& preset,
                       const ckpt::CkptConfig& ckpt_cfg,
                       const SimClusterOptions& opts)
    : preset_(preset),
      sharded_(engine_options(preset)),
      eng_(sharded_.shard(0)),
      fabric_(eng_, preset_.net, preset_.nranks),
      fs_(eng_, preset_.storage),
      mpi_(eng_, fabric_, preset_.mpi),
      ckpt_(mpi_, fs_, ckpt_cfg) {
  if (preset_.shards > 1) {
    router_ =
        std::make_unique<BlockRelayRouter>(sharded_, preset_.nranks);
    fabric_.set_shard_router(router_.get());
  }
  if (preset_.tier.enabled && opts.attach_tier) {
    tier_.emplace(eng_, fs_, preset_.tier, preset_.nranks);
    tier_->set_replica_transport(
        [this](int src, int dst, storage::Bytes b) {
          return fabric_.bulk_transfer(src, dst, b);
        });
    tier_->set_trace(opts.trace);
    ckpt_.set_tier(&*tier_);
  }
  if (opts.trace) ckpt_.set_trace(opts.trace);
  if (opts.hooks) mpi_.set_hooks(opts.hooks);
}

}  // namespace gbc::harness
