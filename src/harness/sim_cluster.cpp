#include "harness/sim_cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gbc::harness {

sim::Time SimCluster::bus_floor(const ClusterPreset& p) {
  // = Fabric::floor_hop(): NIC overhead + minimum propagation delay, the
  // cheapest cross-LP interaction the model ever posts.
  return p.net.per_message_overhead +
         p.net.wire_latency * std::max(1, p.net.topology.min_hops());
}

sim::ShardedEngine::Options SimCluster::engine_options(
    const ClusterPreset& p) {
  if (p.shards < 1 || p.shards > p.nranks) {
    throw std::invalid_argument(
        "SimCluster: preset.shards must be in [1, nranks]");
  }
  sim::ShardedEngine::Options o;
  o.shards = p.shards;
  o.threads = p.threads;
  if (p.shards == 1) return o;
  // Uniform conservative horizon: every cross-LP message (wire flight,
  // control hop, RPC leg) respects the bus floor, whichever shards its
  // endpoints live on.
  o.lookahead = bus_floor(p);
  if (o.lookahead <= 0) {
    throw std::invalid_argument(
        "SimCluster: sharded runs need per_message_overhead + wire_latency "
        "large enough for a positive lookahead floor");
  }
  return o;
}

SimCluster::SimCluster(const ClusterPreset& preset,
                       const ckpt::CkptConfig& ckpt_cfg,
                       const SimClusterOptions& opts)
    : preset_(preset),
      sharded_(engine_options(preset)),
      eng_(sharded_.shard(0)),
      bus_(sharded_, preset_.nranks, bus_floor(preset)),
      fabric_(eng_, preset_.net, preset_.nranks, &bus_),
      fs_(eng_, preset_.storage),
      mpi_(eng_, fabric_, preset_.mpi),
      ckpt_(mpi_, fs_, ckpt_cfg) {
  if (preset_.tier.enabled && opts.attach_tier) {
    tier_.emplace(eng_, fs_, preset_.tier, preset_.nranks, &bus_);
    tier_->set_replica_transport(
        [this](int src, int dst, storage::Bytes b) {
          return fabric_.bulk_transfer(src, dst, b);
        });
    tier_->set_trace(opts.trace);
    ckpt_.set_tier(&*tier_);
  }
  if (opts.trace) ckpt_.set_trace(opts.trace);
  if (opts.hooks) mpi_.set_hooks(opts.hooks);
}

SimCluster::~SimCluster() {
  // Drop whatever is still queued (aborted or partially-driven runs) while
  // every member is alive: queued-callback destructors recycle pooled
  // resources (wire flights) into the fabric's return stacks, which
  // ~Fabric then sweeps home.
  sharded_.abort_all();
  bus_.clear();
}

sim::Task<void> SimCluster::rank_main(sim::Task<void> body, int rank) {
  co_await std::move(body);
  ckpt::CheckpointService* svc = &ckpt_;
  bus_.send(rank, bus_.svc_lp(), [svc] { svc->note_rank_finished(); });
}

}  // namespace gbc::harness
