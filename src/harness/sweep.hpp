#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"

namespace gbc::harness {

/// Per-point execution record: host wall time plus the number of simulated
/// events the point's Engine dispatched (when the job reports it).
struct SweepPointStats {
  double wall_seconds = 0;
  std::uint64_t events_processed = 0;

  double events_per_second() const {
    return wall_seconds > 0
               ? static_cast<double>(events_processed) / wall_seconds
               : 0.0;
  }
};

struct SweepStats {
  int threads = 1;             ///< workers the sweep actually used
  double wall_seconds = 0;     ///< whole-sweep wall time
  std::vector<SweepPointStats> points;

  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& p : points) n += p.events_processed;
    return n;
  }
  double events_per_second() const {
    return wall_seconds > 0
               ? static_cast<double>(total_events()) / wall_seconds
               : 0.0;
  }
};

/// Sweep width: GBC_SWEEP_THREADS when set (>= 1; 1 = serial, exactly
/// today's single-threaded behavior), otherwise the hardware concurrency.
int default_sweep_threads();

/// Fixed-size thread pool for embarrassingly-parallel simulation sweeps.
///
/// Every job must be self-contained: it constructs its own Engine (and the
/// Fabric/StorageSystem/MiniMPI/workload hanging off it) and touches no
/// mutable state shared with any other point — the engine-isolation
/// invariant. Each simulation stays single-threaded and deterministic; the
/// pool only decides which core it runs on, so results are bit-identical to
/// a serial sweep and land in submission order regardless of which point
/// finishes first.
class SweepRunner {
 public:
  /// threads == 0 picks default_sweep_threads(). With 1 thread no workers
  /// are spawned and jobs run inline on the calling thread.
  explicit SweepRunner(int threads = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int threads() const noexcept { return threads_; }

  /// Runs job(0..n-1) across the pool and returns the results in index
  /// order. The first job exception (lowest index) is rethrown after the
  /// whole batch has drained.
  template <typename T>
  std::vector<T> map(std::size_t n,
                     const std::function<T(std::size_t)>& job,
                     SweepStats* stats = nullptr) {
    std::vector<std::optional<T>> slots(n);
    std::vector<std::exception_ptr> errors(n);
    SweepStats local;
    local.threads = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads_),
                              n ? n : 1));
    local.points.resize(n);
    const auto sweep_start = std::chrono::steady_clock::now();
    run_indexed(n, [&](std::size_t i) {
      const auto point_start = std::chrono::steady_clock::now();
      try {
        slots[i].emplace(job(i));
      } catch (...) {
        errors[i] = std::current_exception();
      }
      local.points[i].wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        point_start)
              .count();
    });
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(*slots[i]));
    if (stats) {
      stats->threads = local.threads;
      stats->wall_seconds = local.wall_seconds;
      stats->points = std::move(local.points);
    }
    return out;
  }

  /// The process-wide pool used by the sweep helpers below. Sized once from
  /// GBC_SWEEP_THREADS / hardware concurrency at first use.
  static SweepRunner& shared();

 private:
  /// Executes fn(i) for every i in [0, n), threads_-wide. fn must not throw.
  /// Thread-safe: concurrent callers serialize on submit_m_ (one batch in
  /// flight at a time), and a call made from inside a swept job runs inline
  /// on the calling thread instead of deadlocking on its own pool.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);
  void worker_loop();

  int threads_;
  std::vector<std::thread> workers_;
  /// Held for the whole of a pooled run_indexed call.
  std::mutex submit_m_;
  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  // Current batch. Valid while batch_fn_ != nullptr; must not be reset or
  // replaced until workers_in_batch_ drops back to 0, because a worker that
  // joined the batch keeps reading fn/n/batch_next_ until it parks.
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::atomic<std::size_t> batch_next_{0};
  std::size_t batch_done_ = 0;
  /// Workers currently between picking up the batch and parking again.
  int workers_in_batch_ = 0;
  /// Width granted to the current batch by harness::ThreadBudget (submitter
  /// included): at most batch_width_ - 1 workers may join it. A batch whose
  /// grant degraded to 1 drains entirely on the submitting thread.
  int batch_width_ = 0;
};

/// One fully-specified run_experiment() invocation, for sweeping. `hooks`
/// is invoked from the point's worker thread — a hooks instance must never
/// be shared between points of the same sweep.
struct ExperimentPoint {
  ClusterPreset preset;
  WorkloadFactory factory;
  ckpt::CkptConfig ckpt_cfg;
  std::vector<CkptRequest> requests;
  mpi::MpiHooks* hooks = nullptr;
};

/// Runs every point through `runner`; results in submission order,
/// bit-identical to calling run_experiment() on each point serially.
std::vector<RunResult> run_experiments(SweepRunner& runner,
                                       const std::vector<ExperimentPoint>& pts,
                                       SweepStats* stats = nullptr);

/// Same, on the shared (GBC_SWEEP_THREADS-wide) pool.
std::vector<RunResult> run_experiments(const std::vector<ExperimentPoint>& pts,
                                       SweepStats* stats = nullptr);

/// Folds a checkpointed run and an already-known base completion time into
/// the DelayMeasurement shape measure_effective_delay() produces.
DelayMeasurement to_delay_measurement(const RunResult& with_ckpt,
                                      double base_seconds);

/// One (config, issuance, protocol) cell of an effective-delay sweep.
struct DelayPoint {
  ckpt::CkptConfig ckpt_cfg;
  sim::Time issuance = 0;
  ckpt::Protocol protocol = ckpt::Protocol::kGroupBased;
};

/// Sweeps measure_effective_delay_with_base() over `points` in parallel:
/// every cell is an independent checkpointed run against the shared
/// `base_seconds`.
std::vector<DelayMeasurement> sweep_effective_delay_with_base(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const std::vector<DelayPoint>& points, double base_seconds,
    SweepStats* stats = nullptr);

}  // namespace gbc::harness
