#pragma once

#include <mutex>

namespace gbc::harness {

/// Process-wide arbiter for host worker threads, shared by everything that
/// parallelizes: SweepRunner batches (one thread per sweep point) and
/// sim::ShardedEngine windows (one thread per shard). Each caller asks for
/// the width it could use and is granted what the machine has left, so a
/// sweep of sharded runs never oversubscribes the host with
/// GBC_SWEEP_THREADS x shards threads — late arrivals degrade toward
/// running inline (grant == 1) instead.
///
/// The calling thread is never counted against the budget: a grant of W
/// means "your own thread plus W - 1 helpers". Capacity comes from
/// GBC_THREAD_BUDGET when set (>= 1), else std::thread::hardware_concurrency.
class ThreadBudget {
 public:
  static ThreadBudget& shared();

  /// Requests up to `want` threads of width; returns the grant in
  /// [1, max(1, want)]. The grant leases (grant - 1) helper slots, which the
  /// caller MUST return via release(grant) when the parallel section ends.
  int acquire(int want);
  void release(int granted);

  int capacity() const;
  int leased() const;
  /// High-water mark of leased helper slots; lets tests assert the sweep x
  /// shards composition never exceeded the budget.
  int peak_leased() const;

  /// Test hook: overrides capacity (cap >= 1) or re-derives it from the
  /// environment (cap == 0). Resets the peak.
  void set_capacity_for_test(int cap);

 private:
  ThreadBudget();

  mutable std::mutex m_;
  int capacity_ = 1;
  int leased_ = 0;
  int peak_ = 0;
};

}  // namespace gbc::harness
