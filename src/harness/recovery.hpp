#pragma once

#include "harness/experiment.hpp"

namespace gbc::harness {

/// Outcome of a failure + restart experiment.
struct RecoveryResult {
  bool used_checkpoint = false;  ///< false: no completed ckpt, restarted cold
  sim::Time failure_at = 0;
  double restart_read_seconds = 0;   ///< reloading images from storage
  double rerun_seconds = 0;          ///< re-execution after restart
  double total_seconds = 0;          ///< failure_at + restart + rerun
  std::uint64_t rollback_iteration = 0;
  std::vector<std::uint64_t> final_iterations;
  std::vector<std::uint64_t> final_hashes;

  // --- staging-tier restore provenance (all zero without a tier) ---
  /// Newer checkpoints that had to be passed over because the failed node's
  /// image was neither replicated nor drained to the PFS yet.
  int checkpoints_skipped = 0;
  int ranks_restored_local = 0;    ///< read back from the node-local tier
  int ranks_restored_replica = 0;  ///< fetched from the partner's replica
  int ranks_restored_pfs = 0;      ///< read from the shared PFS
};

/// Runs the workload with the given checkpoint requests, injects a fatal
/// failure at `failure_at` (the whole job dies — the paper's model, where a
/// node crash forces a global rollback), restores from the most recent
/// *recoverable* global checkpoint, and re-executes to completion.
///
/// Restore semantics (DESIGN.md substitution): instead of reloading exact
/// BLCR process images, every rank rolls back to the highest iteration
/// committed by *all* snapshots ("coordinated rollback"), whose hash-chain
/// value is in the snapshot's resume blob. Restart still pays the real
/// costs: every rank reads its image back from wherever it durably lives,
/// then rebuilds connections lazily.
///
/// Without a staging tier every image is on the shared PFS and the latest
/// completed checkpoint is always recoverable. With `preset.tier` enabled
/// the crash also destroys `failed_rank`'s node-local storage, so a
/// checkpoint is recoverable only if the failed rank's image reached the
/// partner replica or the PFS drain finished; otherwise recovery falls back
/// to an older fully-durable checkpoint (possibly none — cold restart).
/// Healthy ranks restore from their surviving local images at local-tier
/// bandwidth (DESIGN.md §10).
RecoveryResult run_with_failure(const ClusterPreset& preset,
                                const WorkloadFactory& make,
                                const ckpt::CkptConfig& ckpt_cfg,
                                const std::vector<CkptRequest>& requests,
                                sim::Time failure_at, int failed_rank = 0);

/// Single-node failure with the *job pause* recovery style (Wang et al.,
/// IPDPS'07 — discussed in the paper's related work): healthy processes are
/// paused in place and roll back from memory; only `failed_rank` reloads its
/// image (onto a spare node) — from the partner replica or the PFS when a
/// staging tier is active, from the shared storage otherwise. Much cheaper
/// than a full-job restart, which re-reads every image through the same
/// bottleneck. With job_pause=false this degrades to the full restart for
/// comparison.
RecoveryResult run_with_single_failure(const ClusterPreset& preset,
                                       const WorkloadFactory& make,
                                       const ckpt::CkptConfig& ckpt_cfg,
                                       const std::vector<CkptRequest>& requests,
                                       sim::Time failure_at, int failed_rank,
                                       bool job_pause);

}  // namespace gbc::harness
