#pragma once

#include "harness/experiment.hpp"

namespace gbc::harness {

/// One injected node failure. `at` is measured on the clock of the attempt
/// it interrupts: the first fault fires at `at` into the original run, the
/// second fires at `at` into the restarted run, and so on.
struct FaultEvent {
  sim::Time at = 0;
  int rank = 0;  ///< node that dies (its local-tier images die with it)
  /// Further nodes that die at the same instant (correlated failure, e.g. a
  /// shared PSU or switch): they join the dead set before recovery is
  /// chosen, so one event can erase up to m chunks of a parity group.
  std::vector<int> also_ranks;

  FaultEvent() = default;
  FaultEvent(sim::Time at_, int rank_, std::vector<int> also = {})
      : at(at_), rank(rank_), also_ranks(std::move(also)) {}
};

/// How each failure is recovered from.
enum class RecoveryStyle : std::uint8_t {
  /// The whole job dies (the paper's model): every rank reloads its image
  /// from wherever it durably lives and re-executes.
  kFullRestart,
  /// Job pause (Wang et al., IPDPS'07): healthy ranks pause in place and
  /// roll back from memory; only the failed rank reloads its image.
  kJobPause,
};

/// A replayable schedule of failures for one run.
struct FaultPlan {
  std::vector<FaultEvent> faults;  ///< in firing order, one per attempt
  RecoveryStyle style = RecoveryStyle::kFullRestart;
};

/// Outcome of a failure + restart experiment.
struct RecoveryResult {
  bool used_checkpoint = false;  ///< false: no completed ckpt, restarted cold
  int failures = 0;              ///< faults injected (FaultPlan size)
  sim::Time failure_at = 0;      ///< first fault's time
  double restart_read_seconds = 0;   ///< image reloads of the final restart
  double rerun_seconds = 0;          ///< re-execution after the last restart
  double total_seconds = 0;          ///< Σ fault times + restart + rerun
  std::uint64_t rollback_iteration = 0;  ///< of the last recovery
  std::vector<std::uint64_t> final_iterations;
  std::vector<std::uint64_t> final_hashes;

  // --- staging-tier restore provenance (all zero without a tier) ---
  /// Newer checkpoints that had to be passed over because the failed node's
  /// image was neither replicated nor drained to the PFS yet.
  int checkpoints_skipped = 0;
  int ranks_restored_local = 0;    ///< read back from the node-local tier
  int ranks_restored_replica = 0;  ///< fetched from the partner's replica
  int ranks_restored_erasure = 0;  ///< decoded from the erasure stripe
  int ranks_restored_pfs = 0;      ///< read from the shared PFS
};

/// The FaultPlan replay loop: runs the workload with the given checkpoint
/// requests, fires plan.faults[k] into attempt k (attempt 0 is the original
/// run; each later attempt is a restart), after each fault restores from
/// the most recent *recoverable* global checkpoint per plan.style, and
/// finally re-executes to completion. The set of dead nodes accumulates
/// across faults: once a node died, its local-tier images stay lost for
/// every later recovery, and restarted attempts take no new checkpoints —
/// so a second failure can force recovery onto an older (or no) checkpoint.
///
/// With one fault this is exactly the classic single-failure experiment;
/// run_with_failure / run_with_single_failure are thin wrappers over it.
RecoveryResult run_with_faults(const ClusterPreset& preset,
                               const WorkloadFactory& make,
                               const ckpt::CkptConfig& ckpt_cfg,
                               const std::vector<CkptRequest>& requests,
                               const FaultPlan& plan);

/// Runs the workload with the given checkpoint requests, injects a fatal
/// failure at `failure_at` (the whole job dies — the paper's model, where a
/// node crash forces a global rollback), restores from the most recent
/// *recoverable* global checkpoint, and re-executes to completion.
///
/// Restore semantics (DESIGN.md substitution): instead of reloading exact
/// BLCR process images, every rank rolls back to the highest iteration
/// committed by *all* snapshots ("coordinated rollback"), whose hash-chain
/// value is in the snapshot's resume blob. Restart still pays the real
/// costs: every rank reads its image back from wherever it durably lives,
/// then rebuilds connections lazily.
///
/// Without a staging tier every image is on the shared PFS and the latest
/// completed checkpoint is always recoverable. With `preset.tier` enabled
/// the crash also destroys `failed_rank`'s node-local storage, so a
/// checkpoint is recoverable only if the failed rank's image reached the
/// partner replica or the PFS drain finished; otherwise recovery falls back
/// to an older fully-durable checkpoint (possibly none — cold restart).
/// Healthy ranks restore from their surviving local images at local-tier
/// bandwidth (DESIGN.md §10).
RecoveryResult run_with_failure(const ClusterPreset& preset,
                                const WorkloadFactory& make,
                                const ckpt::CkptConfig& ckpt_cfg,
                                const std::vector<CkptRequest>& requests,
                                sim::Time failure_at, int failed_rank = 0);

/// Single-node failure with the *job pause* recovery style (Wang et al.,
/// IPDPS'07 — discussed in the paper's related work): healthy processes are
/// paused in place and roll back from memory; only `failed_rank` reloads its
/// image (onto a spare node) — from the partner replica or the PFS when a
/// staging tier is active, from the shared storage otherwise. Much cheaper
/// than a full-job restart, which re-reads every image through the same
/// bottleneck. With job_pause=false this degrades to the full restart for
/// comparison.
RecoveryResult run_with_single_failure(const ClusterPreset& preset,
                                       const WorkloadFactory& make,
                                       const ckpt::CkptConfig& ckpt_cfg,
                                       const std::vector<CkptRequest>& requests,
                                       sim::Time failure_at, int failed_rank,
                                       bool job_pause);

}  // namespace gbc::harness
