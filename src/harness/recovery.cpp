#include "harness/recovery.hpp"

#include <algorithm>

#include "ckpt/store.hpp"
#include "sim/join.hpp"

namespace gbc::harness {

namespace {

sim::Task<void> restart_rank(storage::StorageSystem* fs,
                             workloads::Workload* wl, mpi::RankCtx* rank,
                             storage::Bytes image,
                             workloads::WorkloadState from, sim::Time* done,
                             double* read_seconds) {
  // Restart: reload the process image from the central storage (all ranks
  // contend, same bottleneck as writing), then resume the application.
  const sim::Time t0 = rank->engine().now();
  co_await fs->read(image);
  const double rs = sim::to_seconds(rank->engine().now() - t0);
  if (rs > *read_seconds) *read_seconds = rs;
  co_await wl->run_rank(*rank, from);
  if (rank->engine().now() > *done) *done = rank->engine().now();
}

}  // namespace

RecoveryResult run_with_single_failure(const ClusterPreset& preset,
                                       const WorkloadFactory& make,
                                       const ckpt::CkptConfig& ckpt_cfg,
                                       const std::vector<CkptRequest>& requests,
                                       sim::Time failure_at, int failed_rank,
                                       bool job_pause) {
  if (!job_pause) {
    return run_with_failure(preset, make, ckpt_cfg, requests, failure_at);
  }
  // Phase 1 identical to run_with_failure; phase 2 reloads only the failed
  // rank's image — the healthy ranks roll back from their resident memory.
  RecoveryResult out =
      run_with_failure(preset, make, ckpt_cfg, requests, failure_at);
  // Re-run phase 2 with the cheap reload to get the job-pause timing; the
  // rollback point and final state are the ones computed above.
  if (!out.used_checkpoint) return out;
  // Recompute phase 2 directly.
  std::vector<workloads::WorkloadState> resume(preset.nranks);
  std::vector<storage::Bytes> images(preset.nranks, 0);
  {
    // Reconstruct the snapshot info by re-running phase 1 deterministically.
    sim::Engine eng;
    net::Fabric fabric(eng, preset.net, preset.nranks);
    storage::StorageSystem fs(eng, preset.storage);
    mpi::MiniMPI mpi(eng, fabric, preset.mpi);
    ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);
    auto wl = make(preset.nranks);
    wl->setup(mpi);
    wl->attach(ckpt);
    for (const auto& req : requests) ckpt.request_at(req.at, req.protocol);
    for (int r = 0; r < preset.nranks; ++r) {
      eng.spawn(wl->run_rank(mpi.rank(r)));
    }
    eng.run_until(failure_at);
    const ckpt::GlobalCheckpoint* last = nullptr;
    for (const auto& gc : ckpt.history()) {
      if (gc.completed_at >= 0 && gc.completed_at <= failure_at) last = &gc;
    }
    if (last) {
      std::uint64_t common = UINT64_MAX;
      for (int r = 0; r < preset.nranks; ++r) {
        common = std::min(common, workloads::Workload::committed_iterations(
                                      last->snapshots[r].app_state));
      }
      for (int r = 0; r < preset.nranks; ++r) {
        resume[r] = workloads::Workload::state_for_iteration(
            last->snapshots[r].app_state, common);
      }
      // Job pause: only the failed rank reads its image back.
      images[failed_rank] = last->snapshots[failed_rank].image_bytes;
    }
    eng.abort_all();
  }
  {
    sim::Engine eng;
    net::Fabric fabric(eng, preset.net, preset.nranks);
    storage::StorageSystem fs(eng, preset.storage);
    mpi::MiniMPI mpi(eng, fabric, preset.mpi);
    ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);
    auto wl = make(preset.nranks);
    wl->setup(mpi);
    wl->attach(ckpt);
    sim::Time done = 0;
    double read_seconds = 0;
    for (int r = 0; r < preset.nranks; ++r) {
      eng.spawn(restart_rank(&fs, wl.get(), &mpi.rank(r), images[r],
                             resume[r], &done, &read_seconds));
    }
    eng.run();
    out.restart_read_seconds = read_seconds;
    out.rerun_seconds = sim::to_seconds(done);
    out.total_seconds = sim::to_seconds(failure_at) + out.rerun_seconds;
    out.final_iterations.clear();
    out.final_hashes.clear();
    for (int r = 0; r < preset.nranks; ++r) {
      out.final_iterations.push_back(wl->state(r).iteration);
      out.final_hashes.push_back(wl->state(r).hash);
    }
  }
  return out;
}

RecoveryResult run_with_failure(const ClusterPreset& preset,
                                const WorkloadFactory& make,
                                const ckpt::CkptConfig& ckpt_cfg,
                                const std::vector<CkptRequest>& requests,
                                sim::Time failure_at) {
  RecoveryResult out;
  out.failure_at = failure_at;

  // ---- Phase 1: run until the failure, remember completed checkpoints.
  std::vector<ckpt::GlobalCheckpoint> completed;
  {
    sim::Engine eng;
    net::Fabric fabric(eng, preset.net, preset.nranks);
    storage::StorageSystem fs(eng, preset.storage);
    mpi::MiniMPI mpi(eng, fabric, preset.mpi);
    ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);
    auto wl = make(preset.nranks);
    wl->setup(mpi);
    wl->attach(ckpt);
    for (const auto& req : requests) ckpt.request_at(req.at, req.protocol);
    for (int r = 0; r < preset.nranks; ++r) {
      eng.spawn(wl->run_rank(mpi.rank(r)));
    }
    eng.run_until(failure_at);
    for (const auto& gc : ckpt.history()) {
      if (gc.completed_at >= 0 && gc.completed_at <= failure_at) {
        completed.push_back(gc);
      }
    }
    eng.abort_all();  // the failure: unwind every process
  }

  // ---- Determine the rollback point. The store models the checkpoint
  // directory on the PFS: under incremental checkpointing a restore has to
  // read the whole chain back to the last full image, not just the newest
  // increment.
  std::vector<workloads::WorkloadState> resume(preset.nranks);
  std::vector<storage::Bytes> images(preset.nranks, 0);
  if (!completed.empty()) {
    ckpt::CheckpointStore store(/*retention=*/2);
    for (std::size_t i = 0; i < completed.size(); ++i) {
      store.commit(completed[i], ckpt_cfg.incremental && i > 0);
    }
    const auto* set = store.latest();
    const ckpt::GlobalCheckpoint& gc = completed.back();
    out.used_checkpoint = true;
    std::uint64_t common = UINT64_MAX;
    for (int r = 0; r < preset.nranks; ++r) {
      common = std::min(common, workloads::Workload::committed_iterations(
                                    gc.snapshots[r].app_state));
    }
    out.rollback_iteration = common;
    for (int r = 0; r < preset.nranks; ++r) {
      resume[r] = workloads::Workload::state_for_iteration(
          gc.snapshots[r].app_state, common);
      images[r] = set ? store.restore_bytes(*set, r)
                      : gc.snapshots[r].image_bytes;
    }
  }

  // ---- Phase 2: fresh cluster, reload images, re-execute to completion.
  {
    sim::Engine eng;
    net::Fabric fabric(eng, preset.net, preset.nranks);
    storage::StorageSystem fs(eng, preset.storage);
    mpi::MiniMPI mpi(eng, fabric, preset.mpi);
    ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);  // no new checkpoints
    auto wl = make(preset.nranks);
    wl->setup(mpi);
    wl->attach(ckpt);
    sim::Time done = 0;
    double read_seconds = 0;
    for (int r = 0; r < preset.nranks; ++r) {
      eng.spawn(restart_rank(&fs, wl.get(), &mpi.rank(r), images[r],
                             resume[r], &done, &read_seconds));
    }
    eng.run();
    out.restart_read_seconds = read_seconds;
    out.rerun_seconds = sim::to_seconds(done);
    out.total_seconds = sim::to_seconds(failure_at) + out.rerun_seconds;
    for (int r = 0; r < preset.nranks; ++r) {
      out.final_iterations.push_back(wl->state(r).iteration);
      out.final_hashes.push_back(wl->state(r).hash);
    }
  }
  return out;
}

}  // namespace gbc::harness
