#include "harness/recovery.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "ckpt/store.hpp"
#include "sim/join.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

namespace {

using storage::TieredStore;

/// Where one rank's image is read from during restart.
struct RestoreSource {
  enum Kind : std::uint8_t {
    kNone,     ///< nothing to read (job-pause healthy rank rollback)
    kLocal,    ///< surviving node-local tier copy
    kReplica,  ///< partner's replica: partner disk read + fabric transfer
    kPfs,      ///< shared parallel file system (contended)
  };
  Kind kind = Kind::kPfs;
  storage::Bytes bytes = 0;
  int from_node = -1;  ///< replica source node (kReplica only)
};

/// Everything recovery needs to know about the run up to the failure.
struct Phase1 {
  std::vector<ckpt::GlobalCheckpoint> completed;
  std::deque<TieredStore::ImageInfo> images;  ///< tier ledger at failure time
};

Phase1 run_phase1(const ClusterPreset& preset, const WorkloadFactory& make,
                  const ckpt::CkptConfig& ckpt_cfg,
                  const std::vector<CkptRequest>& requests,
                  sim::Time failure_at) {
  Phase1 out;
  sim::Engine eng;
  net::Fabric fabric(eng, preset.net, preset.nranks);
  storage::StorageSystem fs(eng, preset.storage);
  mpi::MiniMPI mpi(eng, fabric, preset.mpi);
  ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);
  std::optional<TieredStore> tier;
  if (preset.tier.enabled) {
    tier.emplace(eng, fs, preset.tier, preset.nranks);
    tier->set_replica_transport(
        [&fabric](int src, int dst, storage::Bytes b) {
          return fabric.bulk_transfer(src, dst, b);
        });
    ckpt.set_tier(&*tier);
  }
  auto wl = make(preset.nranks);
  wl->setup(mpi);
  wl->attach(ckpt);
  for (const auto& req : requests) ckpt.request_at(req.at, req.protocol);
  for (int r = 0; r < preset.nranks; ++r) {
    eng.spawn(wl->run_rank(mpi.rank(r)));
  }
  eng.run_until(failure_at);
  for (const auto& gc : ckpt.history()) {
    if (gc.completed_at >= 0 && gc.completed_at <= failure_at) {
      out.completed.push_back(gc);
    }
  }
  if (tier) out.images = tier->images();
  eng.abort_all();  // the failure: unwind every process
  return out;
}

const TieredStore::ImageInfo* find_image(const Phase1& p1, std::uint64_t id) {
  return id >= 1 && id <= p1.images.size() ? &p1.images[id - 1] : nullptr;
}

/// Restore source for one rank of checkpoint `gc` after `failed_rank`'s
/// node (and its local tier) died. Returns nullopt if the image is gone.
std::optional<RestoreSource> source_for_rank(const Phase1& p1,
                                             const ckpt::GlobalCheckpoint& gc,
                                             int rank, int failed_rank) {
  const auto& snap = gc.snapshots[rank];
  const TieredStore::ImageInfo* img = find_image(p1, snap.image_id);
  if (!img) {
    // Direct PFS write (no tier involved): always durable.
    return RestoreSource{RestoreSource::kPfs, snap.image_bytes, -1};
  }
  const bool node_lost = rank == failed_rank;
  if (!node_lost && TieredStore::local_available(*img)) {
    return RestoreSource{RestoreSource::kLocal, img->bytes, -1};
  }
  if (TieredStore::replica_available(*img, failed_rank)) {
    return RestoreSource{RestoreSource::kReplica, img->bytes, img->partner};
  }
  if (TieredStore::pfs_durable(*img)) {
    return RestoreSource{RestoreSource::kPfs, img->bytes, -1};
  }
  return std::nullopt;
}

void count_source(const RestoreSource& src, RecoveryResult* out) {
  switch (src.kind) {
    case RestoreSource::kLocal: ++out->ranks_restored_local; break;
    case RestoreSource::kReplica: ++out->ranks_restored_replica; break;
    case RestoreSource::kPfs: ++out->ranks_restored_pfs; break;
    case RestoreSource::kNone: break;
  }
}

/// Rolls every rank of `gc` back to the common committed iteration.
std::uint64_t common_rollback(const ClusterPreset& preset,
                              const ckpt::GlobalCheckpoint& gc,
                              std::vector<workloads::WorkloadState>* resume) {
  std::uint64_t common = UINT64_MAX;
  for (int r = 0; r < preset.nranks; ++r) {
    common = std::min(common, workloads::Workload::committed_iterations(
                                  gc.snapshots[r].app_state));
  }
  for (int r = 0; r < preset.nranks; ++r) {
    (*resume)[r] = workloads::Workload::state_for_iteration(
        gc.snapshots[r].app_state, common);
  }
  return common;
}

struct RestartCtx {
  storage::StorageSystem* fs;
  net::Fabric* fabric;
  const storage::TierConfig* tier;
  workloads::Workload* wl;
  sim::Time* done;
  double* read_seconds;
};

sim::Task<void> restart_rank(RestartCtx* ctx, mpi::RankCtx* rank,
                             RestoreSource src,
                             workloads::WorkloadState from) {
  // Restart: reload the process image from wherever it durably lives, then
  // resume the application. PFS reads contend through the shared storage;
  // local-tier reads run at the node's dedicated bandwidth; replica reads
  // add the partner's disk plus a real fabric transfer.
  const sim::Time t0 = rank->engine().now();
  switch (src.kind) {
    case RestoreSource::kPfs:
      co_await ctx->fs->read(src.bytes);
      break;
    case RestoreSource::kLocal:
      co_await rank->engine().delay(
          storage::transfer_time(src.bytes, ctx->tier->local_read_mbps));
      break;
    case RestoreSource::kReplica:
      co_await rank->engine().delay(
          storage::transfer_time(src.bytes, ctx->tier->local_read_mbps));
      co_await ctx->fabric->bulk_transfer(src.from_node, rank->world_rank(),
                                          src.bytes);
      break;
    case RestoreSource::kNone:
      break;
  }
  const double rs = sim::to_seconds(rank->engine().now() - t0);
  if (rs > *ctx->read_seconds) *ctx->read_seconds = rs;
  co_await ctx->wl->run_rank(*rank, from);
  if (rank->engine().now() > *ctx->done) *ctx->done = rank->engine().now();
}

/// Phase 2: fresh cluster, reload images per plan, re-execute to completion.
void run_restart(const ClusterPreset& preset, const WorkloadFactory& make,
                 const ckpt::CkptConfig& ckpt_cfg,
                 const std::vector<RestoreSource>& plan,
                 const std::vector<workloads::WorkloadState>& resume,
                 RecoveryResult* out) {
  sim::Engine eng;
  net::Fabric fabric(eng, preset.net, preset.nranks);
  storage::StorageSystem fs(eng, preset.storage);
  mpi::MiniMPI mpi(eng, fabric, preset.mpi);
  ckpt::CheckpointService ckpt(mpi, fs, ckpt_cfg);  // no new checkpoints
  auto wl = make(preset.nranks);
  wl->setup(mpi);
  wl->attach(ckpt);
  sim::Time done = 0;
  double read_seconds = 0;
  RestartCtx ctx{&fs, &fabric, &preset.tier, wl.get(), &done, &read_seconds};
  for (int r = 0; r < preset.nranks; ++r) {
    eng.spawn(restart_rank(&ctx, &mpi.rank(r), plan[r], resume[r]));
  }
  eng.run();
  out->restart_read_seconds = read_seconds;
  out->rerun_seconds = sim::to_seconds(done);
  out->total_seconds = sim::to_seconds(out->failure_at) + out->rerun_seconds;
  out->final_iterations.clear();
  out->final_hashes.clear();
  for (int r = 0; r < preset.nranks; ++r) {
    out->final_iterations.push_back(wl->state(r).iteration);
    out->final_hashes.push_back(wl->state(r).hash);
  }
}

}  // namespace

RecoveryResult run_with_failure(const ClusterPreset& preset,
                                const WorkloadFactory& make,
                                const ckpt::CkptConfig& ckpt_cfg,
                                const std::vector<CkptRequest>& requests,
                                sim::Time failure_at, int failed_rank) {
  RecoveryResult out;
  out.failure_at = failure_at;

  // ---- Phase 1: run until the failure, remember completed checkpoints
  // and where the staging tier left every image.
  Phase1 p1 = run_phase1(preset, make, ckpt_cfg, requests, failure_at);

  // ---- Determine the rollback point. The store models the checkpoint
  // directory on the PFS: under incremental checkpointing a restore has to
  // read the whole chain back to the last full image, not just the newest
  // increment.
  std::vector<workloads::WorkloadState> resume(preset.nranks);
  std::vector<RestoreSource> plan(
      preset.nranks, RestoreSource{RestoreSource::kPfs, 0, -1});
  if (!p1.completed.empty()) {
    ckpt::CheckpointStore store(/*retention=*/2);
    for (std::size_t i = 0; i < p1.completed.size(); ++i) {
      store.commit(p1.completed[i], ckpt_cfg.incremental && i > 0);
    }
    if (!preset.tier.enabled) {
      // Single-tier model: every image is on the PFS, the latest completed
      // checkpoint is always recoverable.
      const auto* set = store.latest();
      const ckpt::GlobalCheckpoint& gc = p1.completed.back();
      out.used_checkpoint = true;
      out.rollback_iteration = common_rollback(preset, gc, &resume);
      for (int r = 0; r < preset.nranks; ++r) {
        plan[r].bytes = set ? store.restore_bytes(*set, r)
                            : gc.snapshots[r].image_bytes;
        ++out.ranks_restored_pfs;
      }
    } else {
      // Tiered model: the failed node's local images died with it. Walk
      // checkpoints newest-first until one is restorable for every rank.
      for (int i = static_cast<int>(p1.completed.size()) - 1; i >= 0; --i) {
        const ckpt::GlobalCheckpoint& gc = p1.completed[i];
        std::vector<RestoreSource> candidate(preset.nranks);
        bool ok = true;
        for (int r = 0; r < preset.nranks && ok; ++r) {
          auto src = source_for_rank(p1, gc, r, failed_rank);
          if (!src) {
            ok = false;
          } else {
            candidate[r] = *src;
          }
        }
        if (!ok) {
          ++out.checkpoints_skipped;
          continue;
        }
        out.used_checkpoint = true;
        out.rollback_iteration = common_rollback(preset, gc, &resume);
        plan = std::move(candidate);
        for (int r = 0; r < preset.nranks; ++r) count_source(plan[r], &out);
        break;
      }
    }
  }

  // ---- Phase 2: fresh cluster, reload images, re-execute to completion.
  run_restart(preset, make, ckpt_cfg, plan, resume, &out);
  return out;
}

RecoveryResult run_with_single_failure(const ClusterPreset& preset,
                                       const WorkloadFactory& make,
                                       const ckpt::CkptConfig& ckpt_cfg,
                                       const std::vector<CkptRequest>& requests,
                                       sim::Time failure_at, int failed_rank,
                                       bool job_pause) {
  if (!job_pause) {
    return run_with_failure(preset, make, ckpt_cfg, requests, failure_at,
                            failed_rank);
  }
  Phase1 p1 = run_phase1(preset, make, ckpt_cfg, requests, failure_at);
  // With no completed checkpoint there is nothing to pause around: the job
  // degrades to the full (cold) restart.
  if (p1.completed.empty()) {
    return run_with_failure(preset, make, ckpt_cfg, requests, failure_at,
                            failed_rank);
  }

  RecoveryResult out;
  out.failure_at = failure_at;
  // Job pause only reloads the failed rank's image; the healthy ranks roll
  // back from their resident memory. Pick the newest checkpoint whose
  // failed-rank image survives (replica or drained PFS copy under the tier
  // model; the PFS copy always exists without one).
  std::vector<workloads::WorkloadState> resume(preset.nranks);
  std::vector<RestoreSource> plan(
      preset.nranks, RestoreSource{RestoreSource::kPfs, 0, -1});
  for (int i = static_cast<int>(p1.completed.size()) - 1; i >= 0; --i) {
    const ckpt::GlobalCheckpoint& gc = p1.completed[i];
    std::optional<RestoreSource> src;
    if (!preset.tier.enabled) {
      src = RestoreSource{RestoreSource::kPfs,
                          gc.snapshots[failed_rank].image_bytes, -1};
    } else {
      src = source_for_rank(p1, gc, failed_rank, failed_rank);
    }
    if (!src) {
      ++out.checkpoints_skipped;
      continue;
    }
    out.used_checkpoint = true;
    out.rollback_iteration = common_rollback(preset, gc, &resume);
    plan[failed_rank] = *src;
    count_source(*src, &out);
    break;
  }
  if (!out.used_checkpoint) {
    return run_with_failure(preset, make, ckpt_cfg, requests, failure_at,
                            failed_rank);
  }
  run_restart(preset, make, ckpt_cfg, plan, resume, &out);
  return out;
}

}  // namespace gbc::harness
