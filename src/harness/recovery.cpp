#include "harness/recovery.hpp"

#include <algorithm>
#include <optional>

#include "ckpt/store.hpp"
#include "harness/sim_cluster.hpp"
#include "sim/join.hpp"
#include "storage/erasure.hpp"
#include "storage/tiers.hpp"

namespace gbc::harness {

namespace {

using storage::TieredStore;
using storage::TierLedger;

/// Where one rank's image is read from during restart.
struct RestoreSource {
  enum Kind : std::uint8_t {
    kNone,     ///< nothing to read (fresh start of the original attempt)
    kLocal,    ///< surviving node-local tier copy
    kReplica,  ///< partner's replica: partner disk read + fabric transfer
    kErasure,  ///< degraded read: fetch k chunks, invert, reconstruct
    kPfs,      ///< shared parallel file system (contended)
  };
  Kind kind = Kind::kPfs;
  storage::Bytes bytes = 0;
  int from_node = -1;  ///< replica source node (kReplica only)

  // --- kErasure only ---
  std::vector<int> from_nodes;    ///< the k chunk holders to fetch from
  storage::Bytes chunk_bytes = 0;
  int data_erasures = 0;  ///< data chunks lost (0 = systematic pass-through)

  RestoreSource() = default;
  RestoreSource(Kind kind_, storage::Bytes bytes_, int from)
      : kind(kind_), bytes(bytes_), from_node(from) {}
};

/// Builds the degraded-read plan for an erasure-coded image: pick k
/// surviving chunks (data chunks first — every parity chunk drafted in is
/// one more row of the inverted system and one more reconstruction pass).
/// nullopt when fewer than k chunks survive the dead set.
std::optional<RestoreSource> erasure_source(
    const TieredStore::ImageInfo& img, const std::vector<char>& failed) {
  const storage::ErasureChunks& ec = img.ec;
  if (!ec.active()) return std::nullopt;
  std::vector<int> data, parity;
  for (std::size_t c = 0; c < ec.nodes.size(); ++c) {
    if (ec.done_at[c] < 0 || TieredStore::node_failed(ec.nodes[c], failed)) {
      continue;
    }
    (static_cast<int>(c) < ec.k ? data : parity).push_back(static_cast<int>(c));
  }
  if (static_cast<int>(data.size() + parity.size()) < ec.k) {
    return std::nullopt;
  }
  RestoreSource src;
  src.kind = RestoreSource::kErasure;
  src.bytes = img.bytes;
  src.chunk_bytes = ec.chunk_bytes;
  for (int c : data) {
    if (static_cast<int>(src.from_nodes.size()) < ec.k) {
      src.from_nodes.push_back(ec.nodes[static_cast<std::size_t>(c)]);
    }
  }
  src.data_erasures = ec.k - static_cast<int>(src.from_nodes.size());
  for (int c : parity) {
    if (static_cast<int>(src.from_nodes.size()) < ec.k) {
      src.from_nodes.push_back(ec.nodes[static_cast<std::size_t>(c)]);
    }
  }
  return src;
}

/// Restore source for one rank of checkpoint `gc` given the set of nodes
/// that have died so far. Returns nullopt if the image is gone.
std::optional<RestoreSource> source_for_rank(const TierLedger& ledger,
                                             const ckpt::GlobalCheckpoint& gc,
                                             int rank,
                                             const std::vector<char>& failed) {
  const auto& snap = gc.snapshots[rank];
  const TieredStore::ImageInfo* img = ledger.find(snap.image_id);
  if (!img) {
    // Direct PFS write (no tier involved): always durable.
    return RestoreSource{RestoreSource::kPfs, snap.image_bytes, -1};
  }
  const bool node_lost = failed[rank];
  if (!node_lost && TieredStore::local_available(*img)) {
    return RestoreSource{RestoreSource::kLocal, img->bytes, -1};
  }
  if (TieredStore::replica_available(*img, failed)) {
    return RestoreSource{RestoreSource::kReplica, img->bytes, img->partner};
  }
  // Erasure decode beats the PFS in the tier walk: k chunk fetches over the
  // fabric plus the decode compute still undercut a contended PFS read.
  if (auto ec = erasure_source(*img, failed)) return ec;
  if (TieredStore::pfs_durable(*img)) {
    return RestoreSource{RestoreSource::kPfs, img->bytes, -1};
  }
  return std::nullopt;
}

/// Rolls every rank of `gc` back to the common committed iteration.
std::uint64_t common_rollback(const ClusterPreset& preset,
                              const ckpt::GlobalCheckpoint& gc,
                              std::vector<workloads::WorkloadState>* resume) {
  std::uint64_t common = UINT64_MAX;
  for (int r = 0; r < preset.nranks; ++r) {
    common = std::min(common, workloads::Workload::committed_iterations(
                                  gc.snapshots[r].app_state));
  }
  for (int r = 0; r < preset.nranks; ++r) {
    (*resume)[r] = workloads::Workload::state_for_iteration(
        gc.snapshots[r].app_state, common);
  }
  return common;
}

/// One recovery decision: how the next attempt starts.
struct Selection {
  std::vector<RestoreSource> plan;
  std::vector<workloads::WorkloadState> resume;
  bool used_checkpoint = false;
  std::uint64_t rollback_iteration = 0;
  int checkpoints_skipped = 0;
  int restored_local = 0;
  int restored_replica = 0;
  int restored_erasure = 0;
  int restored_pfs = 0;
};

void count_source(const RestoreSource& src, Selection* sel) {
  switch (src.kind) {
    case RestoreSource::kLocal: ++sel->restored_local; break;
    case RestoreSource::kReplica: ++sel->restored_replica; break;
    case RestoreSource::kErasure: ++sel->restored_erasure; break;
    case RestoreSource::kPfs: ++sel->restored_pfs; break;
    case RestoreSource::kNone: break;
  }
}

/// Full-restart recovery: every rank reloads. Walks the completed
/// checkpoints newest-first until one is restorable for every rank; with no
/// usable checkpoint the job restarts cold (empty images, fresh state).
Selection select_full_restart(
    const ClusterPreset& preset, const ckpt::CkptConfig& ckpt_cfg,
    const std::vector<ckpt::GlobalCheckpoint>& completed,
    const TierLedger& ledger, const std::vector<char>& failed) {
  Selection sel;
  sel.resume.assign(preset.nranks, {});
  sel.plan.assign(preset.nranks, RestoreSource{RestoreSource::kPfs, 0, -1});
  if (completed.empty()) return sel;

  // The store models the checkpoint directory on the PFS: under incremental
  // checkpointing a restore has to read the whole chain back to the last
  // full image, not just the newest increment.
  ckpt::CheckpointStore store(/*retention=*/2);
  for (std::size_t i = 0; i < completed.size(); ++i) {
    store.commit(completed[i], ckpt_cfg.incremental && i > 0);
  }
  if (!preset.tier.enabled) {
    // Single-tier model: every image is on the PFS, the latest completed
    // checkpoint is always recoverable.
    const auto* set = store.latest();
    const ckpt::GlobalCheckpoint& gc = completed.back();
    sel.used_checkpoint = true;
    sel.rollback_iteration = common_rollback(preset, gc, &sel.resume);
    for (int r = 0; r < preset.nranks; ++r) {
      sel.plan[r].bytes = set ? store.restore_bytes(*set, r)
                              : gc.snapshots[r].image_bytes;
      ++sel.restored_pfs;
    }
    return sel;
  }
  // Tiered model: the dead nodes' local images died with them. Walk
  // checkpoints newest-first until one is restorable for every rank.
  for (int i = static_cast<int>(completed.size()) - 1; i >= 0; --i) {
    const ckpt::GlobalCheckpoint& gc = completed[i];
    std::vector<RestoreSource> candidate(preset.nranks);
    bool ok = true;
    for (int r = 0; r < preset.nranks && ok; ++r) {
      auto src = source_for_rank(ledger, gc, r, failed);
      if (!src) {
        ok = false;
      } else {
        candidate[r] = *src;
      }
    }
    if (!ok) {
      ++sel.checkpoints_skipped;
      continue;
    }
    sel.used_checkpoint = true;
    sel.rollback_iteration = common_rollback(preset, gc, &sel.resume);
    sel.plan = std::move(candidate);
    for (int r = 0; r < preset.nranks; ++r) count_source(sel.plan[r], &sel);
    break;
  }
  return sel;
}

/// Job-pause recovery: only the failed rank's image is reloaded; healthy
/// ranks roll back from their resident memory. Picks the newest checkpoint
/// whose failed-rank image survives. used_checkpoint stays false when none
/// does — the caller then degrades to the full restart.
Selection select_job_pause(const ClusterPreset& preset,
                           const std::vector<ckpt::GlobalCheckpoint>& completed,
                           const TierLedger& ledger,
                           const std::vector<char>& failed, int failed_rank) {
  Selection sel;
  sel.resume.assign(preset.nranks, {});
  sel.plan.assign(preset.nranks, RestoreSource{RestoreSource::kPfs, 0, -1});
  for (int i = static_cast<int>(completed.size()) - 1; i >= 0; --i) {
    const ckpt::GlobalCheckpoint& gc = completed[i];
    std::optional<RestoreSource> src;
    if (!preset.tier.enabled) {
      src = RestoreSource{RestoreSource::kPfs,
                          gc.snapshots[failed_rank].image_bytes, -1};
    } else {
      src = source_for_rank(ledger, gc, failed_rank, failed);
    }
    if (!src) {
      ++sel.checkpoints_skipped;
      continue;
    }
    sel.used_checkpoint = true;
    sel.rollback_iteration = common_rollback(preset, gc, &sel.resume);
    sel.plan[failed_rank] = *src;
    count_source(*src, &sel);
    break;
  }
  return sel;
}

struct RestartCtx {
  sim::LpBus* bus;
  storage::StorageSystem* fs;
  net::Fabric* fabric;
  const storage::TierConfig* tier;
  workloads::Workload* wl;
};

/// One chunk fetch of a degraded read, bussed to the *holder's* LP: the
/// staging lanes are partitioned per source node (fabric.hpp StagingLane),
/// so the transfer serializes on the holder's shard against that node's
/// replica/erasure traffic — same arbitration point at any shard count.
sim::Task<void> fetch_chunk(sim::LpBus* bus, net::Fabric* fab, int from,
                            int world, storage::Bytes bytes) {
  co_await bus->call(world, from, [fab, from, world, bytes] {
    return fab->bulk_transfer(from, world, bytes);
  });
}

sim::Task<void> restart_rank(RestartCtx* ctx, mpi::RankCtx* rank,
                             RestoreSource src, workloads::WorkloadState from,
                             sim::Time* done, double* read_seconds) {
  // Restart: reload the process image from wherever it durably lives, then
  // resume the application. PFS reads contend through the shared storage;
  // local-tier reads run at the node's dedicated bandwidth; replica reads
  // add the partner's disk plus a real fabric transfer. kNone (a fresh
  // first attempt) skips the reload entirely.
  //
  // Runs on the rank's home engine. The PFS queue is service-LP state and
  // each staging lane belongs to its holder node's LP, so those legs go
  // through the bus as RPCs to their owners; `done` and `read_seconds` are
  // this rank's private slots, folded by the caller after the run.
  const int world = rank->world_rank();
  sim::LpBus& bus = *ctx->bus;
  const sim::Time t0 = rank->engine().now();
  switch (src.kind) {
    case RestoreSource::kPfs: {
      storage::StorageSystem* fs = ctx->fs;
      const storage::Bytes b = src.bytes;
      co_await bus.call(world, bus.svc_lp(), [fs, b] { return fs->read(b); });
      break;
    }
    case RestoreSource::kLocal:
      co_await rank->engine().delay(
          storage::transfer_time(src.bytes, ctx->tier->local_read_mbps));
      break;
    case RestoreSource::kReplica: {
      co_await rank->engine().delay(
          storage::transfer_time(src.bytes, ctx->tier->local_read_mbps));
      // The partner's staging lane is the partner's shard state: route the
      // transfer to the holder, not the service LP.
      co_await fetch_chunk(&bus, ctx->fabric, src.from_node, world,
                           src.bytes);
      break;
    }
    case RestoreSource::kErasure: {
      // Degraded read: pull the k chunks from their holders in parallel
      // (distinct source nodes, so their staging lanes genuinely overlap),
      // then pay the matrix-inversion + reconstruction compute.
      sim::JoinSet fetch(rank->engine());
      for (int from : src.from_nodes) {
        fetch.launch(
            fetch_chunk(&bus, ctx->fabric, from, world, src.chunk_bytes));
      }
      co_await fetch.join();
      co_await rank->engine().delay(storage::ErasureTier::decode_time(
          ctx->tier->erasure, src.bytes, src.data_erasures));
      break;
    }
    case RestoreSource::kNone:
      break;
  }
  *read_seconds = sim::to_seconds(rank->engine().now() - t0);
  co_await ctx->wl->run_rank(*rank, from);
  *done = rank->engine().now();
}

/// What the replay loop learns from one attempt.
struct AttemptResult {
  std::vector<ckpt::GlobalCheckpoint> completed;  ///< up to the cutoff
  TierLedger ledger;               ///< tier state at the cutoff
  double read_seconds = 0;         ///< slowest rank's image reload
  sim::Time done = 0;              ///< completion time (uncut attempts)
  std::vector<std::uint64_t> final_iterations;
  std::vector<std::uint64_t> final_hashes;
};

/// Runs one attempt: wire a fresh cluster, start every rank per the restore
/// plan, run until `cutoff` (or to completion when cutoff < 0 — no fault
/// interrupts this attempt). A cut-off attempt is aborted afterwards: the
/// failure unwinds every process.
AttemptResult run_attempt(const ClusterPreset& preset,
                          const WorkloadFactory& make,
                          const ckpt::CkptConfig& ckpt_cfg,
                          const std::vector<CkptRequest>& requests,
                          const std::vector<RestoreSource>& plan,
                          const std::vector<workloads::WorkloadState>& resume,
                          bool attach_tier, sim::Time cutoff) {
  AttemptResult out;
  SimCluster cluster(preset, ckpt_cfg, {.attach_tier = attach_tier});
  auto wl = make(preset.nranks);
  wl->setup(cluster.mpi());
  wl->attach(cluster.checkpoints());
  for (const auto& req : requests) {
    cluster.checkpoints().request_at(req.at, req.protocol);
  }
  std::vector<sim::Time> done_at(preset.nranks, 0);
  std::vector<double> read_at(preset.nranks, 0);
  RestartCtx ctx{&cluster.bus(), &cluster.shared_fs(), &cluster.fabric(),
                 &preset.tier, wl.get()};
  cluster.spawn_ranks([&](mpi::RankCtx& rank) {
    const int r = rank.world_rank();
    return restart_rank(&ctx, &rank, plan[r], resume[r], &done_at[r],
                        &read_at[r]);
  });
  if (cutoff >= 0) {
    cluster.run_until(cutoff);
  } else {
    cluster.run();
  }
  for (const auto& gc : cluster.checkpoints().history()) {
    if (gc.completed_at >= 0 && (cutoff < 0 || gc.completed_at <= cutoff)) {
      out.completed.push_back(gc);
    }
  }
  if (auto* tier = cluster.tier()) out.ledger = tier->ledger();
  out.read_seconds = *std::max_element(read_at.begin(), read_at.end());
  out.done = *std::max_element(done_at.begin(), done_at.end());
  for (int r = 0; r < preset.nranks; ++r) {
    out.final_iterations.push_back(wl->state(r).iteration);
    out.final_hashes.push_back(wl->state(r).hash);
  }
  if (cutoff >= 0) cluster.abort();
  return out;
}

}  // namespace

RecoveryResult run_with_faults(const ClusterPreset& preset,
                               const WorkloadFactory& make,
                               const ckpt::CkptConfig& ckpt_cfg,
                               const std::vector<CkptRequest>& requests,
                               const FaultPlan& plan) {
  RecoveryResult out;
  out.failures = static_cast<int>(plan.faults.size());
  if (!plan.faults.empty()) out.failure_at = plan.faults.front().at;

  std::vector<char> failed(preset.nranks, 0);
  const std::vector<CkptRequest> no_requests;
  // Attempt 0 starts fresh: nothing to reload, default workload state, and
  // it is the only attempt that takes checkpoints.
  std::vector<RestoreSource> restore(
      preset.nranks, RestoreSource{RestoreSource::kNone, 0, -1});
  std::vector<workloads::WorkloadState> resume(preset.nranks);
  // The original run's recovery inputs, reused by every later fault.
  std::vector<ckpt::GlobalCheckpoint> completed;
  TierLedger ledger;
  double elapsed_seconds = 0;

  for (std::size_t k = 0;; ++k) {
    const bool first = k == 0;
    const FaultEvent* fault =
        k < plan.faults.size() ? &plan.faults[k] : nullptr;
    AttemptResult attempt =
        run_attempt(preset, make, ckpt_cfg, first ? requests : no_requests,
                    restore, resume, /*attach_tier=*/first,
                    fault ? fault->at : sim::Time{-1});

    if (!fault) {
      // Final attempt: ran to completion.
      out.restart_read_seconds = attempt.read_seconds;
      out.rerun_seconds = sim::to_seconds(attempt.done);
      out.total_seconds = elapsed_seconds + out.rerun_seconds;
      out.final_iterations = std::move(attempt.final_iterations);
      out.final_hashes = std::move(attempt.final_hashes);
      return out;
    }

    if (first) {
      completed = std::move(attempt.completed);
      ledger = std::move(attempt.ledger);
    }
    elapsed_seconds += sim::to_seconds(fault->at);
    failed[fault->rank] = 1;
    for (int r : fault->also_ranks) {
      if (r >= 0 && r < preset.nranks) failed[r] = 1;
    }

    Selection sel;
    if (plan.style == RecoveryStyle::kJobPause) {
      sel = select_job_pause(preset, completed, ledger, failed, fault->rank);
      if (!sel.used_checkpoint) {
        // Nothing to pause around (no checkpoint whose failed-rank image
        // survives): degrade to the full restart, dropping the pause
        // bookkeeping — exactly the classic fallback.
        sel = select_full_restart(preset, ckpt_cfg, completed, ledger, failed);
      }
    } else {
      sel = select_full_restart(preset, ckpt_cfg, completed, ledger, failed);
    }
    restore = std::move(sel.plan);
    resume = std::move(sel.resume);
    out.used_checkpoint = out.used_checkpoint || sel.used_checkpoint;
    out.rollback_iteration = sel.rollback_iteration;
    out.checkpoints_skipped += sel.checkpoints_skipped;
    out.ranks_restored_local += sel.restored_local;
    out.ranks_restored_replica += sel.restored_replica;
    out.ranks_restored_erasure += sel.restored_erasure;
    out.ranks_restored_pfs += sel.restored_pfs;
  }
}

RecoveryResult run_with_failure(const ClusterPreset& preset,
                                const WorkloadFactory& make,
                                const ckpt::CkptConfig& ckpt_cfg,
                                const std::vector<CkptRequest>& requests,
                                sim::Time failure_at, int failed_rank) {
  FaultPlan plan;
  plan.faults.push_back(FaultEvent{failure_at, failed_rank});
  return run_with_faults(preset, make, ckpt_cfg, requests, plan);
}

RecoveryResult run_with_single_failure(const ClusterPreset& preset,
                                       const WorkloadFactory& make,
                                       const ckpt::CkptConfig& ckpt_cfg,
                                       const std::vector<CkptRequest>& requests,
                                       sim::Time failure_at, int failed_rank,
                                       bool job_pause) {
  FaultPlan plan;
  plan.faults.push_back(FaultEvent{failure_at, failed_rank});
  plan.style =
      job_pause ? RecoveryStyle::kJobPause : RecoveryStyle::kFullRestart;
  return run_with_faults(preset, make, ckpt_cfg, requests, plan);
}

}  // namespace gbc::harness
