#include "harness/interval.hpp"

#include <algorithm>
#include <cmath>

#include "harness/sim_cluster.hpp"
#include "sim/random.hpp"

namespace gbc::harness {

double young_interval_seconds(double ckpt_cost_seconds, double mtbf_seconds) {
  return std::sqrt(2.0 * ckpt_cost_seconds * mtbf_seconds);
}

namespace {

sim::Task<void> tracked_rank(workloads::Workload* wl, mpi::RankCtx* rank,
                             sim::LpBus* bus, storage::StorageSystem* fs,
                             storage::Bytes image, workloads::WorkloadState from,
                             sim::Time* done_at) {
  if (image > 0) {
    // Restart image reload: the PFS is service-LP state, so the read runs
    // there via an RPC over the bus (same discipline as recovery.cpp).
    co_await bus->call(rank->world_rank(), bus->svc_lp(),
                       [fs, image] { return fs->read(image); });
  }
  co_await wl->run_rank(*rank, from);
  *done_at = rank->engine().now();
}

}  // namespace

MtbfRunResult run_with_poisson_failures(const ClusterPreset& preset,
                                        const WorkloadFactory& make,
                                        const ckpt::CkptConfig& ckpt_cfg,
                                        ckpt::Protocol protocol,
                                        sim::Time ckpt_interval,
                                        const FailureModel& failures,
                                        int max_failures) {
  MtbfRunResult out;
  sim::Rng rng(failures.seed);

  // State carried across attempts.
  std::vector<workloads::WorkloadState> resume(preset.nranks);
  std::vector<storage::Bytes> images(preset.nranks, 0);

  while (true) {
    // The MTBF loop never attaches a tier: each attempt is a fresh job whose
    // restart images live on the PFS.
    SimCluster cluster(preset, ckpt_cfg, {.attach_tier = false});
    ckpt::CheckpointService& svc = cluster.checkpoints();
    auto wl = make(preset.nranks);
    wl->setup(cluster.mpi());
    wl->attach(svc);
    svc.request_every(ckpt_interval, ckpt_interval, protocol);

    // Per-rank completion slots (each written from its own shard).
    std::vector<sim::Time> done_slots(preset.nranks, -1);
    cluster.spawn_ranks([&](mpi::RankCtx& rank) {
      const int r = rank.world_rank();
      return tracked_rank(wl.get(), &rank, &cluster.bus(),
                          &cluster.shared_fs(), images[r], resume[r],
                          &done_slots[r]);
    });

    const sim::Time fail_at = out.failures < max_failures
                                  ? sim::from_seconds(
                                        rng.exponential(failures.mtbf_seconds))
                                  : sim::Time{1} << 60;
    cluster.run_until(fail_at);

    out.events_processed += cluster.sharded().total_events();

    sim::Time done_at = 0;
    for (sim::Time t : done_slots) {
      done_at = t < 0 ? t : std::max(done_at, t);
      if (done_at < 0) break;
    }
    if (done_at >= 0 && done_at <= fail_at) {
      // Completed before the failure.
      for (const auto& gc : svc.history()) {
        if (gc.completed_at >= 0 && gc.completed_at <= done_at) {
          ++out.checkpoints_completed;
        }
      }
      out.total_seconds += sim::to_seconds(done_at);
      for (int r = 0; r < preset.nranks; ++r) {
        out.final_iterations.push_back(wl->state(r).iteration);
        out.final_hashes.push_back(wl->state(r).hash);
      }
      return out;
    }

    // Failure: account this attempt's wall time, roll back to the last
    // completed checkpoint (if any).
    ++out.failures;
    out.total_seconds += sim::to_seconds(fail_at);
    const ckpt::GlobalCheckpoint* last = nullptr;
    for (const auto& gc : svc.history()) {
      if (gc.completed_at >= 0 && gc.completed_at <= fail_at) {
        last = &gc;
        ++out.checkpoints_completed;
      }
    }
    std::uint64_t common = resume[0].iteration;
    if (last) {
      common = UINT64_MAX;
      for (int r = 0; r < preset.nranks; ++r) {
        common = std::min(common, workloads::Workload::committed_iterations(
                                      last->snapshots[r].app_state));
      }
      for (int r = 0; r < preset.nranks; ++r) {
        resume[r] = workloads::Workload::state_for_iteration(
            last->snapshots[r].app_state, common);
        images[r] = last->snapshots[r].image_bytes;
      }
    }
    // else: no checkpoint completed during this attempt — the previous
    // checkpoint (already carried in resume/images) is still on stable
    // storage and remains the rollback point.
    // Work recomputed: everything past the rollback point was lost. Use the
    // minimum committed iteration across ranks as the progress marker.
    std::uint64_t reached = UINT64_MAX;
    for (int r = 0; r < preset.nranks; ++r) {
      reached = std::min(reached, wl->state(r).iteration);
    }
    if (reached != UINT64_MAX && reached > common) {
      out.lost_work_iterations += reached - common;
    }
    cluster.abort();
  }
}

}  // namespace gbc::harness
