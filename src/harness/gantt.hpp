#pragma once

#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace gbc::harness {

/// Renders a global checkpoint's per-rank freeze windows as an ASCII Gantt
/// chart ('#' = frozen for the snapshot, '.' = available to compute). Used
/// by bench/fig2_schedule_trace and `gbcsim trace`.
std::string render_gantt(const ckpt::GlobalCheckpoint& gc, sim::Time horizon,
                         int columns = 64);

/// Renders several checkpoints stacked with titles.
std::string render_gantt_comparison(
    const std::vector<std::pair<std::string, ckpt::GlobalCheckpoint>>& runs,
    int columns = 64);

}  // namespace gbc::harness
