#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace gbc::harness {

/// Fixed-width console table + optional CSV dump, for the benchmark
/// binaries that regenerate the paper's figures as rows/series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << "| " << std::setw(static_cast<int>(width[c])) << std::left
           << (c < cells.size() ? cells[c] : "") << " ";
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << "|" << std::string(width[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& row : rows_) line(row);
  }

  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    auto csv_line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) f << ",";
        f << cells[c];
      }
      f << "\n";
    };
    csv_line(headers_);
    for (const auto& row : rows_) csv_line(row);
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gbc::harness
