#include "harness/cli.hpp"

#include <cassert>
#include <cstdlib>
#include <sstream>

namespace gbc::harness {

void FlagSet::add_string(const std::string& name, std::string default_value,
                         std::string help) {
  flags_[name] = Flag{Type::kString, std::move(default_value),
                      std::move(help)};
}

void FlagSet::add_double(const std::string& name, double default_value,
                         std::string help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Type::kDouble, os.str(), std::move(help)};
}

void FlagSet::add_int(const std::string& name, int default_value,
                      std::string help) {
  flags_[name] = Flag{Type::kInt, std::to_string(default_value),
                      std::move(help)};
}

void FlagSet::add_bool(const std::string& name, bool default_value,
                       std::string help) {
  flags_[name] = Flag{Type::kBool, default_value ? "true" : "false",
                      std::move(help)};
}

bool FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (allow_positional_) {
        positional_.push_back(std::move(arg));
        continue;
      }
      if (!arg.empty() && arg[0] == '-') {
        // Single-dash spelling of a flag: near-miss, not a positional.
        error_ = "unknown flag " + arg + " (flags are spelled --name)";
      } else {
        error_ = "unexpected argument '" + arg + "'";
      }
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + name + " needs a value";
        return false;
      }
    }
    // Validate typed values.
    char* end = nullptr;
    switch (flag.type) {
      case Type::kDouble:
        std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          error_ = "flag --" + name + " expects a number, got '" + value + "'";
          return false;
        }
        break;
      case Type::kInt:
        std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          error_ =
              "flag --" + name + " expects an integer, got '" + value + "'";
          return false;
        }
        break;
      case Type::kBool:
        if (value != "true" && value != "false" && value != "1" &&
            value != "0") {
          error_ = "flag --" + name + " expects true/false";
          return false;
        }
        break;
      case Type::kString:
        break;
    }
    flag.value = value;
  }
  return true;
}

const FlagSet::Flag* FlagSet::find(const std::string& name, Type t) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && "flag not declared");
  assert(it->second.type == t && "flag type mismatch");
  return it == flags_.end() || it->second.type != t ? nullptr : &it->second;
}

std::string FlagSet::get_string(const std::string& name) const {
  const Flag* f = find(name, Type::kString);
  return f ? f->value : "";
}

double FlagSet::get_double(const std::string& name) const {
  const Flag* f = find(name, Type::kDouble);
  return f ? std::atof(f->value.c_str()) : 0.0;
}

int FlagSet::get_int(const std::string& name) const {
  const Flag* f = find(name, Type::kInt);
  return f ? std::atoi(f->value.c_str()) : 0;
}

bool FlagSet::get_bool(const std::string& name) const {
  const Flag* f = find(name, Type::kBool);
  return f && (f->value == "true" || f->value == "1");
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kString: os << " <string>"; break;
      case Type::kDouble: os << " <number>"; break;
      case Type::kInt: os << " <int>"; break;
      case Type::kBool: os << ""; break;
    }
    os << "  " << flag.help << " (default: " << flag.value << ")\n";
  }
  return os.str();
}

}  // namespace gbc::harness
