#pragma once

#include "harness/experiment.hpp"

namespace gbc::harness {

/// Young's classic approximation for the optimal checkpoint interval:
/// sqrt(2 * C * M) for checkpoint cost C and mean time between failures M.
/// With group-based checkpointing C is the *effective* delay, which is what
/// makes more frequent checkpoints affordable.
double young_interval_seconds(double ckpt_cost_seconds, double mtbf_seconds);

/// Exponential (Poisson-process) failure model.
struct FailureModel {
  double mtbf_seconds = 3600.0;
  std::uint64_t seed = 1;
};

struct MtbfRunResult {
  double total_seconds = 0;        ///< wall time to solution incl. failures
  int failures = 0;
  int checkpoints_completed = 0;   ///< across all attempts
  std::uint64_t lost_work_iterations = 0;  ///< rolled-back progress
  std::vector<std::uint64_t> final_hashes;
  std::vector<std::uint64_t> final_iterations;
  std::uint64_t events_processed = 0;  ///< engine events across all attempts
};

/// Runs the workload to completion under random failures: periodic
/// checkpoints every `ckpt_interval`; when a failure strikes, the whole job
/// rolls back to the last completed global checkpoint (reading the images
/// back from shared storage), and execution resumes. Deterministic for a
/// given FailureModel::seed.
MtbfRunResult run_with_poisson_failures(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const ckpt::CkptConfig& ckpt_cfg, ckpt::Protocol protocol,
    sim::Time ckpt_interval, const FailureModel& failures,
    int max_failures = 200);

}  // namespace gbc::harness
