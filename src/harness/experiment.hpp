#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "harness/preset.hpp"
#include "workloads/workload.hpp"

namespace gbc::harness {

/// Builds the workload for a job of the given size. Factories are invoked
/// once per simulated run (base run, checkpointed run, recovery phases), so
/// they must produce identically-configured instances each time.
using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>(int nranks)>;

struct CkptRequest {
  sim::Time at;
  ckpt::Protocol protocol = ckpt::Protocol::kGroupBased;
};

struct RunResult {
  sim::Time completion = -1;  ///< when the last rank finished
  std::vector<ckpt::GlobalCheckpoint> checkpoints;
  mpi::MiniMPI::Stats mpi_stats;
  int storage_peak_concurrency = 0;
  std::int64_t connection_setups = 0;
  std::int64_t connection_teardowns = 0;
  std::vector<std::uint64_t> final_iterations;
  std::vector<std::uint64_t> final_hashes;
  std::uint64_t events_processed = 0;  ///< engine events this run dispatched

  // --- staging-tier stats (zero when preset.tier is disabled) ---
  std::int64_t tier_images_drained = 0;
  std::int64_t tier_write_throughs = 0;  ///< capacity fallbacks to the PFS
  std::int64_t tier_replicas = 0;
  std::int64_t tier_images_encoded = 0;  ///< erasure stripes placed

  double completion_seconds() const { return sim::to_seconds(completion); }
};

/// Runs one deterministic simulation of `make(n)` on the preset cluster,
/// optionally taking checkpoints at the requested times. When `trace` is
/// given, checkpoint/staging protocol events are recorded into it (enable
/// it first; see sim/trace_chrome.hpp for the chrome://tracing export).
RunResult run_experiment(const ClusterPreset& preset,
                         const WorkloadFactory& make,
                         const ckpt::CkptConfig& ckpt_cfg,
                         const std::vector<CkptRequest>& requests = {},
                         mpi::MpiHooks* hooks = nullptr,
                         sim::Trace* trace = nullptr);

/// Effective Checkpoint Delay (paper Sec. 5): the increase in application
/// running time caused by taking one checkpoint, measured exactly as
/// defined — the same deterministic run with and without the checkpoint.
struct DelayMeasurement {
  double base_seconds = 0;
  double with_ckpt_seconds = 0;
  ckpt::GlobalCheckpoint checkpoint;

  double effective_delay_seconds() const {
    return with_ckpt_seconds - base_seconds;
  }
  double individual_seconds() const {
    return sim::to_seconds(checkpoint.max_individual_time());
  }
  double total_seconds() const {
    return sim::to_seconds(checkpoint.total_checkpoint_time());
  }
};

DelayMeasurement measure_effective_delay(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const ckpt::CkptConfig& ckpt_cfg, sim::Time issuance,
    ckpt::Protocol protocol = ckpt::Protocol::kGroupBased);

/// Same, reusing an already-measured base completion time (saves the extra
/// base run when sweeping many parameters over one workload).
DelayMeasurement measure_effective_delay_with_base(
    const ClusterPreset& preset, const WorkloadFactory& make,
    const ckpt::CkptConfig& ckpt_cfg, sim::Time issuance,
    ckpt::Protocol protocol, double base_seconds);

}  // namespace gbc::harness
