#pragma once

#include <cstdint>

#include "net/fabric.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace gbc::harness {

/// Configuration of one scale-model run (see run_scale_model below).
/// Defaults sketch a 1k-rank BT/SP-like iterative code on a DDR fabric
/// writing to a small PVFS2 array — the paper's workload shape, two orders
/// of magnitude past its node count.
struct ScaleConfig {
  int nranks = 1024;
  /// DES shards (sim::ShardedEngine). Any value >= 1 produces byte-identical
  /// results; > 1 partitions ranks into contiguous blocks.
  int shards = 1;
  /// Worker threads for the sharded engine; 0 leases from ThreadBudget.
  int threads = 0;
  /// Fabric timing + topology. net.topology selects flat vs fat-tree; on a
  /// fat-tree, switch ports contend individually and latency is per-hop.
  net::NetConfig net;

  int pfs_servers = 4;
  double pfs_server_mbps = 35.0;  ///< per-server ingest (paper: ~140/4 MB/s)

  /// Application: ring exchange inside groups of `comm_group` consecutive
  /// ranks, `iterations` compute+communicate steps per rank.
  int comm_group = 16;
  int iterations = 40;
  sim::Time compute_per_iter = sim::from_milliseconds(100);
  double compute_jitter_cv = 0.05;  ///< lognormal, mean-preserving
  std::int64_t msg_bytes = 64 * 1024;

  /// Checkpoint: per-rank image size, written in chunks with a window of 1
  /// outstanding chunk per rank (server acks pace the stream).
  double footprint_mib = 180.0;
  double chunk_mib = 8.0;
  /// Ranks per checkpoint group, frozen group-after-group (the paper's
  /// group-based coordination); 0 = every rank in one group.
  int ckpt_group = 0;
  /// Checkpoint issuance time; < 0 runs the base (checkpoint-free) job.
  sim::Time issuance = -1;

  std::uint64_t seed = 42;
  sim::Trace* trace = nullptr;  ///< receives shard/<id>/window spans
};

struct ScaleResult {
  double completion_seconds = 0;      ///< slowest rank's finish time
  double individual_max_seconds = 0;  ///< largest per-member freeze span
  double total_ckpt_seconds = 0;      ///< issuance -> last group done (0 base)
  std::uint64_t events = 0;
  std::uint64_t windows = 0;      ///< rounds that actually merged cross traffic
  std::uint64_t rounds = 0;       ///< horizon computations (>= windows)
  std::uint64_t cross_events = 0; ///< messages that crossed a shard boundary
  double window_balance = 1.0;  ///< max/mean per-shard events (1.0 = even)
  int shards = 1;
  int threads_used = 1;
  /// Digest of per-rank end state (finish time, freeze span, messages
  /// received), folded in rank order. Identical across shard and thread
  /// counts — the determinism tests' primary witness.
  std::uint64_t state_hash = 0;
};

/// Runs the LP-disciplined scale model: every rank, switch, PFS server and
/// the checkpoint controller is a logical process owning its state
/// privately, all interaction flows through timestamped messages with
/// latency >= the fabric's minimum, and same-time deliveries are re-sorted
/// into a canonical (sender, sequence) order before processing. Those three
/// properties make the run independent of shard count and thread count —
/// `shards` only changes how the event set is partitioned, never the
/// results — which is what lets one simulation scale past the full
/// protocol stack's single-engine ceiling (see DESIGN.md section 12).
ScaleResult run_scale_model(const ScaleConfig& cfg);

}  // namespace gbc::harness
