#include "harness/scale_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "harness/thread_budget.hpp"
#include "net/topology.hpp"
#include "sim/lp_bus.hpp"
#include "sim/random.hpp"
#include "sim/shard_engine.hpp"
#include "storage/storage.hpp"

namespace gbc::harness {

namespace {

using sim::Time;

enum class MK : std::uint8_t {
  kApp,        // ring payload, final destination a rank
  kChunk,      // checkpoint chunk, final destination a server
  kAck,        // server -> rank chunk ack (control path)
  kFreeze,     // controller -> member (control path)
  kMemberDone, // member -> controller, a = freeze span
  kRankDone,   // rank -> controller, a = finish time
};

/// One hop's worth of message. `origin`/`oseq` identify the immediate
/// sender LP and its send sequence — the canonical key same-time deliveries
/// are sorted by, which is what makes processing order independent of how
/// arrival events interleave across shards. `src`/`dst` are the end-to-end
/// endpoints (LP ids) the switches route by.
struct Msg {
  MK kind = MK::kApp;
  int origin = -1;
  std::uint64_t oseq = 0;
  int src = -1;
  int dst = -1;
  std::int64_t bytes = 0;
  std::int64_t a = 0;
};

struct RankLp {
  sim::Rng rng{0};
  int iter = 0;  // next iteration to compute
  int recvd = 0; // ring messages received so far
  bool computing = false;
  bool frozen = false;
  bool freeze_pending = false;
  bool done = false;
  int deferred_tag = -1;  // ring send held back by a freeze
  int chunks_left = 0;
  Time nic_busy = 0;
  Time freeze_start = 0;
  Time freeze_span = 0;
  Time finish_t = 0;
};

struct SwitchLp {
  std::vector<Time> port_busy;
};

struct ServerLp {
  Time busy = 0;
};

struct ControllerLp {
  int group_lo = 0;
  int group_hi = 0;
  int pending = 0;
  Time last_done = 0;
  Time max_span = 0;
  Time max_finish = 0;
  int ranks_done = 0;
};

struct Inbox {
  std::vector<Msg> buf;
  Time drain_at = -1;
};

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

class ScaleModel {
 public:
  ScaleModel(const ScaleConfig& cfg, int threads)
      : cfg_(cfg),
        flat_(cfg.net.topology.flat()),
        tree_(cfg.net.topology, cfg.nranks),
        N_(cfg.nranks),
        L_(flat_ ? 0 : tree_.nleaf()),
        P_(flat_ ? 0 : tree_.nspine()),
        V_(std::max(1, cfg.pfs_servers)),
        S_(cfg.shards) {
    if (N_ < 1) throw std::invalid_argument("scale model: nranks must be >= 1");
    if (S_ < 1) throw std::invalid_argument("scale model: shards must be >= 1");
    if (S_ > N_) S_ = N_;

    build_lps();

    sim::ShardedEngine::Options eopts;
    eopts.shards = S_;
    eopts.lookahead = cfg_.net.wire_latency;  // fallback: fabric min per hop
    if (S_ > 1) eopts.lookahead_matrix = build_lookahead_matrix();
    eopts.threads = threads;
    eopts.trace = cfg_.trace;
    eng_ = std::make_unique<sim::ShardedEngine>(eopts);
  }

  ScaleResult run();

 private:
  // --- LP id layout: ranks, then leaves, spines, servers, controller ---
  int lp_rank(int r) const { return r; }
  int lp_leaf(int l) const { return N_ + l; }
  int lp_spine(int j) const { return N_ + L_ + j; }
  int lp_server(int v) const { return N_ + L_ + P_ + v; }
  int lp_controller() const { return N_ + L_ + P_ + V_; }
  int nlp() const { return N_ + L_ + P_ + V_ + 1; }
  bool is_rank(int lp) const { return lp < N_; }
  bool is_server(int lp) const {
    return lp >= N_ + L_ + P_ && lp < N_ + L_ + P_ + V_;
  }

  void build_lps() {
    // Ranks are split into contiguous blocks and leaves follow their first
    // rank; all shared infrastructure — spines, PFS servers, the controller
    // — sits on shard 0. That placement keeps the lookahead matrix a sparse
    // star (rank shards only ever exchange with shard 0 unless a comm group
    // or leaf straddles a block boundary), so compute/ring phases run with
    // zero cross-shard traffic and fuse into merge-free rounds. The mapping
    // is a pure function of the config — never of runtime conditions — a
    // requirement for resumable identical runs.
    shard_of_.resize(nlp());
    for (int r = 0; r < N_; ++r) {
      // The same contiguous-block rule the full protocol stack uses
      // (sim::lp_owner_shard): one ownership convention everywhere.
      shard_of_[lp_rank(r)] = sim::lp_owner_shard(r, N_, S_);
    }
    for (int l = 0; l < L_; ++l) {
      shard_of_[lp_leaf(l)] = shard_of_[lp_rank(std::min(
          N_ - 1, l * tree_.radix()))];  // shard of its first rank
    }
    for (int j = 0; j < P_; ++j) shard_of_[lp_spine(j)] = 0;
    for (int v = 0; v < V_; ++v) shard_of_[lp_server(v)] = 0;
    shard_of_[lp_controller()] = 0;

    seq_.assign(nlp(), 0);
    inbox_.resize(nlp());
    ranks_.resize(N_);
    for (int r = 0; r < N_; ++r) {
      ranks_[r].rng = sim::Rng(cfg_.seed).fork(static_cast<std::uint64_t>(r));
    }
    leaves_.resize(L_);
    for (auto& l : leaves_) l.port_busy.assign(tree_.radix() + P_, 0);
    spines_.resize(P_);
    for (auto& s : spines_) s.port_busy.assign(L_ + V_, 0);
    servers_.resize(V_);

    const double fp_bytes = cfg_.footprint_mib * storage::kMiB;
    const double ch_bytes = std::max(1.0, cfg_.chunk_mib * storage::kMiB);
    nchunks_ = std::max(1, static_cast<int>(std::ceil(fp_bytes / ch_bytes)));
    chunk_bytes_ = static_cast<std::int64_t>(ch_bytes);
  }

  /// Per-shard-pair minimum latency, derived by enumerating the model's
  /// actual flows rather than assuming any message may hop between any two
  /// shards. The flow set is closed: ring payloads travel r -> ring_next(r)
  /// through that flow's fixed switch path, chunks travel r -> server r % V_
  /// through the server's attach spine, acks retrace server -> rank at
  /// control latency, and the controller exchanges control messages with
  /// every rank. For each hop (a, b) of each flow the edge
  /// L[shard(a)][shard(b)] is min-folded with that hop's floor latency;
  /// pairs no flow touches stay kNoLink. With infrastructure on shard 0 and
  /// comm groups that fit inside a rank block, the result is a sparse star:
  /// compute/ring phases post nothing cross-shard and their rounds fuse,
  /// while checkpoint traffic bounds windows by the (much larger)
  /// injection-cost entries instead of a single wire_latency.
  std::vector<Time> build_lookahead_matrix() const {
    std::vector<Time> L(static_cast<std::size_t>(S_) * S_,
                        sim::ShardedEngine::kNoLink);
    auto edge = [&](int a_lp, int b_lp, Time floor) {
      const int sa = shard_of_[a_lp];
      const int sb = shard_of_[b_lp];
      if (sa == sb) return;
      Time& e = L[static_cast<std::size_t>(sa) * S_ + sb];
      e = std::min(e, floor);
    };
    const Time wire = cfg_.net.wire_latency;
    const Time ctrl = ctrl_latency();
    auto inject = [&](std::int64_t bytes) {  // NIC: overhead + serialize
      return cfg_.net.per_message_overhead +
             xfer_time(bytes, cfg_.net.link_bandwidth_mbps) + wire;
    };
    auto hop = [&](std::int64_t bytes) {  // switch port: serialize only
      return xfer_time(bytes, cfg_.net.link_bandwidth_mbps) + wire;
    };
    for (int r = 0; r < N_; ++r) {
      // Control channel and chunk acks (depart >= now, so ctrl is a floor).
      edge(lp_controller(), lp_rank(r), ctrl);
      edge(lp_rank(r), lp_controller(), ctrl);
      edge(lp_server(r % V_), lp_rank(r), ctrl);
      // Checkpoint chunks: r -> server r % V_ via the server's attach spine.
      const int v = r % V_;
      if (flat_) {
        edge(lp_rank(r), lp_server(v), inject(chunk_bytes_));
      } else {
        const int l = tree_.leaf_of(r);
        const int j = v % P_;
        edge(lp_rank(r), lp_leaf(l), inject(chunk_bytes_));
        edge(lp_leaf(l), lp_spine(j), hop(chunk_bytes_));
        edge(lp_spine(j), lp_server(v), hop(chunk_bytes_));
      }
      // Ring payload: r -> ring_next(r) (singleton groups have no ring).
      if (group_size(r) > 1) {
        const int d = ring_next(r);
        if (flat_) {
          edge(lp_rank(r), lp_rank(d), inject(cfg_.msg_bytes));
        } else {
          const int sl = tree_.leaf_of(r);
          const int dl = tree_.leaf_of(d);
          edge(lp_rank(r), lp_leaf(sl), inject(cfg_.msg_bytes));
          if (sl == dl) {
            edge(lp_leaf(sl), lp_rank(d), hop(cfg_.msg_bytes));
          } else {
            const int j = tree_.spine_for(lp_rank(r), lp_rank(d));
            edge(lp_leaf(sl), lp_spine(j), hop(cfg_.msg_bytes));
            edge(lp_spine(j), lp_leaf(dl), hop(cfg_.msg_bytes));
            edge(lp_leaf(dl), lp_rank(d), hop(cfg_.msg_bytes));
          }
        }
      }
    }
    return L;
  }

  sim::Engine& eng_of(int lp) { return eng_->shard(shard_of_[lp]); }

  Time ctrl_latency() const {
    return 2 * cfg_.net.wire_latency + cfg_.net.per_message_overhead;
  }

  static Time xfer_time(std::int64_t bytes, double mbps) {
    return static_cast<Time>(static_cast<double>(bytes) /
                             (mbps * static_cast<double>(storage::kMiB)) *
                             static_cast<double>(sim::kSecond));
  }

  // --- messaging spine: send -> deliver -> (sorted) drain -> handle ---

  /// Schedules delivery of `m` to `dst_lp` at absolute time `t`. Must be
  /// called from an event of `src_lp`'s shard (or before the run starts),
  /// with t at least the shard pair's lookahead ahead when the shards
  /// differ — which every path here guarantees, because the matrix entries
  /// are min-folds of exactly these hops' floor latencies (see
  /// build_lookahead_matrix).
  void send(int src_lp, int dst_lp, Time t, Msg m) {
    m.origin = src_lp;
    m.oseq = seq_[src_lp]++;
    const int ss = shard_of_[src_lp];
    const int ds = shard_of_[dst_lp];
    auto fn = [this, dst_lp, m] { deliver(dst_lp, m); };
    if (ss == ds) {
      eng_->shard(ss).schedule_at(t, std::move(fn));
    } else {
      eng_->post(ss, ds, t, std::move(fn));
    }
  }

  /// Arrival event: buffer, and let the first arrival at this (lp, t)
  /// schedule the drain. Latency is strictly positive, so every arrival at
  /// t is already queued when the first one executes; the drain (scheduled
  /// now, hence sequenced after them all) therefore sees the complete set.
  void deliver(int lp, Msg m) {
    Inbox& ib = inbox_[lp];
    ib.buf.push_back(m);
    sim::Engine& e = eng_of(lp);
    if (ib.drain_at != e.now()) {
      ib.drain_at = e.now();
      e.schedule_now([this, lp] { drain(lp); });
    }
  }

  void drain(int lp) {
    Inbox& ib = inbox_[lp];
    std::vector<Msg> msgs = std::move(ib.buf);
    ib.buf.clear();
    ib.drain_at = -1;
    // Canonical processing order: by immediate sender, then its send
    // sequence. (origin, oseq) pairs are unique, so this is a total order
    // and the arrival interleaving (which varies with shard count) is
    // irrelevant.
    std::sort(msgs.begin(), msgs.end(), [](const Msg& a, const Msg& b) {
      return a.origin != b.origin ? a.origin < b.origin : a.oseq < b.oseq;
    });
    for (Msg& m : msgs) handle(lp, m);
  }

  void handle(int lp, const Msg& m) {
    if (is_rank(lp)) {
      switch (m.kind) {
        case MK::kApp:
          on_ring_recv(lp);
          return;
        case MK::kAck:
          on_ack(lp);
          return;
        case MK::kFreeze:
          on_freeze(lp);
          return;
        default:
          assert(false && "unexpected message at a rank");
          return;
      }
    }
    if (lp == lp_controller()) {
      on_controller(m);
      return;
    }
    if (is_server(lp)) {
      on_server(lp - (N_ + L_ + P_), m);
      return;
    }
    if (lp >= N_ + L_) {
      forward_spine(lp - (N_ + L_), m);
    } else {
      forward_leaf(lp - N_, m);
    }
  }

  // --- data path ---

  /// Injects a data message at the source rank's NIC (LogGP-style serial
  /// injection), handing it to the first hop: the destination itself on a
  /// crossbar, the source's leaf switch on a fat-tree.
  void send_data(int src_rank, int dst_lp, std::int64_t bytes, MK kind,
                 std::int64_t a) {
    RankLp& rk = ranks_[src_rank];
    sim::Engine& e = eng_of(lp_rank(src_rank));
    const Time start = std::max(rk.nic_busy, e.now());
    const Time done = start + cfg_.net.per_message_overhead +
                      xfer_time(bytes, cfg_.net.link_bandwidth_mbps);
    rk.nic_busy = done;
    Msg m;
    m.kind = kind;
    m.src = lp_rank(src_rank);
    m.dst = dst_lp;
    m.bytes = bytes;
    m.a = a;
    const int next =
        flat_ ? dst_lp : lp_leaf(tree_.leaf_of(src_rank));
    send(lp_rank(src_rank), next, done + cfg_.net.wire_latency, m);
  }

  /// Per-port store-and-forward: depart = max(port free, now) + serialize.
  /// Monotonic per port, so a port never reorders — the FIFO property the
  /// ring workload's in-order delivery relies on.
  Time occupy_port(std::vector<Time>& busy, int port, Time t,
                   std::int64_t bytes) {
    Time& b = busy[static_cast<std::size_t>(port)];
    const Time depart =
        std::max(b, t) + xfer_time(bytes, cfg_.net.link_bandwidth_mbps);
    b = depart;
    return depart;
  }

  void forward_leaf(int l, Msg m) {
    sim::Engine& e = eng_of(lp_leaf(l));
    SwitchLp& sw = leaves_[l];
    int port;
    int next;
    if (is_rank(m.dst) && tree_.leaf_of(m.dst) == l) {
      port = m.dst % tree_.radix();  // down to the destination rank
      next = m.dst;
    } else {
      // Up: ECMP spine for rank-to-rank flows, the attach spine for chunks.
      const int spine = is_server(m.dst)
                            ? (m.dst - (N_ + L_ + P_)) % P_
                            : tree_.spine_for(m.src, m.dst);
      port = tree_.radix() + spine;
      next = lp_spine(spine);
    }
    const Time depart = occupy_port(sw.port_busy, port, e.now(), m.bytes);
    send(lp_leaf(l), next, depart + cfg_.net.wire_latency, m);
  }

  void forward_spine(int j, Msg m) {
    sim::Engine& e = eng_of(lp_spine(j));
    SwitchLp& sw = spines_[j];
    int port;
    int next;
    if (is_server(m.dst)) {
      port = L_ + (m.dst - (N_ + L_ + P_));
      next = m.dst;
    } else {
      const int dl = tree_.leaf_of(m.dst);
      port = dl;
      next = lp_leaf(dl);
    }
    const Time depart = occupy_port(sw.port_busy, port, e.now(), m.bytes);
    send(lp_spine(j), next, depart + cfg_.net.wire_latency, m);
  }

  void on_server(int v, const Msg& m) {
    assert(m.kind == MK::kChunk);
    ServerLp& sv = servers_[v];
    sim::Engine& e = eng_of(lp_server(v));
    const Time depart =
        std::max(sv.busy, e.now()) + xfer_time(m.bytes, cfg_.pfs_server_mbps);
    sv.busy = depart;
    Msg ack;
    ack.kind = MK::kAck;
    ack.src = lp_server(v);
    ack.dst = m.src;
    send(lp_server(v), m.src, depart + ctrl_latency(), ack);
  }

  // --- application: ring exchange in comm groups ---

  int group_lo(int r) const { return (r / cfg_.comm_group) * cfg_.comm_group; }
  int group_size(int r) const {
    return std::min(group_lo(r) + cfg_.comm_group, N_) - group_lo(r);
  }
  int ring_next(int r) const {
    const int lo = group_lo(r);
    return lo + (r - lo + 1) % group_size(r);
  }

  void try_start(int r) {
    RankLp& rk = ranks_[r];
    if (rk.frozen || rk.computing || rk.done) return;
    if (rk.iter >= cfg_.iterations) {
      rk.done = true;
      rk.finish_t = eng_of(lp_rank(r)).now();
      Msg m;
      m.kind = MK::kRankDone;
      m.src = lp_rank(r);
      m.dst = lp_controller();
      m.a = rk.finish_t;
      send(lp_rank(r), lp_controller(),
           rk.finish_t + ctrl_latency(), m);
      return;
    }
    // Iteration k needs the k'th ring message from the predecessor (loose
    // BSP coupling); a singleton group has no ring and never waits.
    if (group_size(r) > 1 && rk.recvd < rk.iter) return;
    begin_compute(r, rk.iter);
  }

  void begin_compute(int r, int k) {
    RankLp& rk = ranks_[r];
    rk.computing = true;
    const double jit = cfg_.compute_jitter_cv > 0
                           ? rk.rng.lognormal_mean_cv(1.0, cfg_.compute_jitter_cv)
                           : 1.0;
    const Time dur = std::max<Time>(
        1, static_cast<Time>(static_cast<double>(cfg_.compute_per_iter) * jit));
    sim::Engine& e = eng_of(lp_rank(r));
    e.schedule_at(e.now() + dur, [this, r, k] { on_compute_done(r, k); });
  }

  void on_compute_done(int r, int k) {
    RankLp& rk = ranks_[r];
    rk.computing = false;
    if (rk.freeze_pending) {
      // Freeze takes effect at the iteration boundary; the ring send for
      // this iteration is deferred until the rank thaws (the paper's frozen
      // ranks suspend communication, not computation results).
      rk.deferred_tag = k;
      start_freeze(r);
      return;
    }
    if (group_size(r) > 1) send_data(r, lp_rank(ring_next(r)), cfg_.msg_bytes,
                                     MK::kApp, k);
    rk.iter = k + 1;
    try_start(r);
  }

  void on_ring_recv(int r) {
    ++ranks_[r].recvd;
    try_start(r);
  }

  // --- checkpoint: freeze -> teardown -> chunked write -> rebuild ---

  int npeers(int r) const {
    const int g = group_size(r);
    return g >= 3 ? 2 : g - 1;
  }

  void on_freeze(int r) {
    RankLp& rk = ranks_[r];
    assert(!rk.frozen && "double freeze");
    if (rk.computing) {
      rk.freeze_pending = true;
    } else {
      start_freeze(r);  // idle or finished: effective immediately
    }
  }

  void start_freeze(int r) {
    RankLp& rk = ranks_[r];
    sim::Engine& e = eng_of(lp_rank(r));
    rk.frozen = true;
    rk.freeze_start = e.now();
    rk.chunks_left = nchunks_;
    const Time teardown = cfg_.net.teardown_cost * npeers(r);
    e.schedule_at(e.now() + std::max<Time>(1, teardown),
                  [this, r] { send_next_chunk(r); });
  }

  void send_next_chunk(int r) {
    send_data(r, lp_server(r % V_), chunk_bytes_, MK::kChunk, 0);
  }

  void on_ack(int r) {
    RankLp& rk = ranks_[r];
    if (--rk.chunks_left > 0) {
      send_next_chunk(r);
      return;
    }
    sim::Engine& e = eng_of(lp_rank(r));
    const Time rebuild =
        (cfg_.net.oob_exchange + cfg_.net.qp_transition) * npeers(r);
    e.schedule_at(e.now() + std::max<Time>(1, rebuild),
                  [this, r] { on_rebuilt(r); });
  }

  void on_rebuilt(int r) {
    RankLp& rk = ranks_[r];
    sim::Engine& e = eng_of(lp_rank(r));
    rk.frozen = false;
    rk.freeze_pending = false;
    rk.freeze_span = e.now() - rk.freeze_start;
    Msg m;
    m.kind = MK::kMemberDone;
    m.src = lp_rank(r);
    m.dst = lp_controller();
    m.a = rk.freeze_span;
    send(lp_rank(r), lp_controller(), e.now() + ctrl_latency(), m);
    if (rk.deferred_tag >= 0) {
      const int k = rk.deferred_tag;
      rk.deferred_tag = -1;
      if (group_size(r) > 1) {
        send_data(r, lp_rank(ring_next(r)), cfg_.msg_bytes, MK::kApp, k);
      }
      rk.iter = k + 1;
    }
    try_start(r);
  }

  // --- controller ---

  void start_group(int lo) {
    const int gsz = cfg_.ckpt_group <= 0 ? N_ : cfg_.ckpt_group;
    ctrl_.group_lo = lo;
    ctrl_.group_hi = std::min(lo + gsz, N_);
    ctrl_.pending = ctrl_.group_hi - lo;
    sim::Engine& e = eng_of(lp_controller());
    for (int r = lo; r < ctrl_.group_hi; ++r) {
      Msg m;
      m.kind = MK::kFreeze;
      m.src = lp_controller();
      m.dst = lp_rank(r);
      send(lp_controller(), lp_rank(r), e.now() + ctrl_latency(), m);
    }
  }

  void on_controller(const Msg& m) {
    if (m.kind == MK::kRankDone) {
      ++ctrl_.ranks_done;
      ctrl_.max_finish = std::max(ctrl_.max_finish, static_cast<Time>(m.a));
      return;
    }
    assert(m.kind == MK::kMemberDone);
    ctrl_.max_span = std::max(ctrl_.max_span, static_cast<Time>(m.a));
    if (--ctrl_.pending == 0) {
      ctrl_.last_done = eng_of(lp_controller()).now();
      if (ctrl_.group_hi < N_) start_group(ctrl_.group_hi);
    }
  }

  std::uint64_t state_hash() const {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (const RankLp& rk : ranks_) {
      h = mix64(h, static_cast<std::uint64_t>(rk.finish_t));
      h = mix64(h, static_cast<std::uint64_t>(rk.freeze_span));
      h = mix64(h, static_cast<std::uint64_t>(rk.recvd));
    }
    return h;
  }

  ScaleConfig cfg_;
  bool flat_;
  net::FatTree tree_;
  int N_, L_, P_, V_, S_;
  int nchunks_ = 1;
  std::int64_t chunk_bytes_ = 1;

  std::unique_ptr<sim::ShardedEngine> eng_;
  std::vector<int> shard_of_;
  std::vector<std::uint64_t> seq_;
  std::vector<Inbox> inbox_;
  std::vector<RankLp> ranks_;
  std::vector<SwitchLp> leaves_;
  std::vector<SwitchLp> spines_;
  std::vector<ServerLp> servers_;
  ControllerLp ctrl_;
};

ScaleResult ScaleModel::run() {
  for (int r = 0; r < N_; ++r) {
    eng_of(lp_rank(r)).schedule_at(0, [this, r] { try_start(r); });
  }
  if (cfg_.issuance >= 0) {
    eng_of(lp_controller())
        .schedule_at(cfg_.issuance, [this] { start_group(0); });
  }

  eng_->run();

  assert(ctrl_.ranks_done == N_ && "a rank never finished (model deadlock)");
  ScaleResult res;
  res.completion_seconds = sim::to_seconds(ctrl_.max_finish);
  res.individual_max_seconds = sim::to_seconds(ctrl_.max_span);
  if (cfg_.issuance >= 0) {
    res.total_ckpt_seconds = sim::to_seconds(ctrl_.last_done - cfg_.issuance);
  }
  res.events = eng_->total_events();
  res.windows = eng_->windows();
  res.rounds = eng_->rounds();
  res.cross_events = eng_->cross_events();
  res.window_balance = eng_->window_balance();
  res.shards = eng_->shards();
  res.threads_used = eng_->threads();
  res.state_hash = state_hash();
  return res;
}

}  // namespace

ScaleResult run_scale_model(const ScaleConfig& cfg) {
  int threads = cfg.threads;
  int granted = 0;
  if (threads <= 0) {
    granted = ThreadBudget::shared().acquire(std::max(1, cfg.shards));
    threads = granted;
  }
  try {
    ScaleModel model(cfg, threads);
    ScaleResult res = model.run();
    if (granted > 0) ThreadBudget::shared().release(granted);
    return res;
  } catch (...) {
    if (granted > 0) ThreadBudget::shared().release(granted);
    throw;
  }
}

}  // namespace gbc::harness
