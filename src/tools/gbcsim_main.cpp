// gbcsim — command-line driver for the group-based checkpointing simulator.
//
//   gbcsim run      one full-stack run, CSV row out (shardable, --shards)
//   gbcsim delay    measure the Effective Checkpoint Delay of one checkpoint
//   gbcsim sweep    delay vs. checkpoint group size (Fig. 3/5/7 style row)
//   gbcsim trace    ASCII Gantt of a checkpoint schedule (Fig. 2 style)
//   gbcsim recover  inject a failure and restart from the last checkpoint
//   gbcsim mtbf     time-to-solution under Poisson failures
//   gbcsim storage  the storage-bottleneck curve (Fig. 1 style)
//   gbcsim scale    sharded scale model: paper-style run at 1k-16k ranks
//
// Every run is deterministic. `gbcsim <command> --help` lists the flags.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "harness/cli.hpp"
#include "harness/scale_model.hpp"
#include "harness/thread_budget.hpp"
#include "net/topology.hpp"
#include "sim/trace_chrome.hpp"
#include "harness/experiment.hpp"
#include "harness/sim_cluster.hpp"
#include "harness/gantt.hpp"
#include "harness/interval.hpp"
#include "harness/recovery.hpp"
#include "harness/table.hpp"
#include "workloads/hpl.hpp"
#include "workloads/microbench.hpp"
#include "workloads/motifminer.hpp"
#include "workloads/stencil.hpp"

namespace {

using namespace gbc;

void add_common_flags(harness::FlagSet& flags) {
  flags.add_string("workload", "microbench",
                   "microbench | barrier | hpl | motifminer | stencil");
  flags.add_int("ranks", 32, "number of MPI processes");
  flags.add_int("comm-group", 8, "communication group size (microbench)");
  flags.add_double("footprint-mib", 180.0, "per-process image size (microbench)");
  flags.add_int("group-size", 8, "checkpoint group size (0 = all at once)");
  flags.add_bool("dynamic", false, "dynamic group formation from traffic");
  flags.add_bool("incremental", false, "incremental (dirty-page) snapshots");
  flags.add_bool("no-helper", false, "disable the async-progress helper");
  flags.add_string("protocol", "group",
                   "group | blocking | chandy-lamport | uncoordinated");
  flags.add_int("stripe", 0, "storage stripe_count (0 = pooled model)");
  flags.add_bool("tier", false, "enable the node-local staging tier");
  flags.add_double("local-write-mbps", 400.0,
                   "local tier write bandwidth per node (MB/s)");
  flags.add_double("tier-capacity-mib", 0.0,
                   "local tier capacity per node (MiB, 0 = unbounded)");
  flags.add_double("drain-mbps", 50.0,
                   "background drain rate to the PFS (MB/s, 0 = never drain)");
  flags.add_bool("replicate", false, "copy each image to a partner node");
  flags.add_string("tier-erasure", "",
                   "erasure-code staged images as k,m data/parity chunks "
                   "scattered across a parity group (e.g. 4,2; implies "
                   "--tier; m=1 uses the XOR codec)");
}

// Parses/validates --tier-erasure k,m into the preset (empty = disabled).
// Prints an error + usage and returns false on a bad spec; callers exit 2.
bool apply_erasure_flag(const harness::FlagSet& flags,
                        harness::ClusterPreset* p) {
  const std::string spec = flags.get_string("tier-erasure");
  if (spec.empty()) return true;
  int k = 0, m = 0;
  char extra = 0;
  if (std::sscanf(spec.c_str(), "%d,%d%c", &k, &m, &extra) != 2) {
    std::fprintf(stderr, "--tier-erasure expects k,m (e.g. 4,2)\n%s",
                 flags.usage().c_str());
    return false;
  }
  std::string err;
  if (k < 1) {
    err = "--tier-erasure: k must be >= 1";
  } else if (m < 0) {
    err = "--tier-erasure: m must be >= 0";
  } else if (k + m > p->nranks) {
    err = "--tier-erasure: k+m must be <= --ranks";
  } else if (k + m > p->nranks - 1) {
    err = "--tier-erasure: the k+m chunks need k+m distinct nodes besides "
          "the writer (k+m <= ranks-1)";
  }
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n%s", err.c_str(), flags.usage().c_str());
    return false;
  }
  p->tier.enabled = true;  // the stripe lives on top of the staging tier
  p->tier.erasure.enabled = true;
  p->tier.erasure.k = k;
  p->tier.erasure.m = m;
  p->tier.erasure.codec =
      m == 1 ? storage::ErasureCodec::kXor : storage::ErasureCodec::kRs;
  return true;
}

// Shared --shards/--threads flag group (run, scale). The two commands must
// accept and validate the pair identically.
void add_shard_flags(harness::FlagSet& flags) {
  flags.add_int("shards", 1,
                "DES shards advancing in conservative-lookahead windows");
  flags.add_int("threads", 0,
                "worker threads for the shards (0 = lease from the shared "
                "thread budget)");
}

// Validates the --shards/--threads combination against the rank count.
// Returns false after printing a usage message; callers exit 2.
bool validate_shard_flags(const harness::FlagSet& flags, int ranks) {
  const int shards = flags.get_int("shards");
  const int threads = flags.get_int("threads");
  if (ranks < 1) {
    std::fprintf(stderr, "--ranks must be >= 1\n%s", flags.usage().c_str());
    return false;
  }
  if (shards < 1 || shards > ranks) {
    std::fprintf(stderr, "--shards must be in [1, --ranks]\n%s",
                 flags.usage().c_str());
    return false;
  }
  // Workers beyond the shard count are clamped by the engine itself
  // (ShardedEngine::Options::threads is [1, shards]), so any non-negative
  // value is acceptable here — --shards 3 --threads 4 runs 3 workers.
  if (threads < 0) {
    std::fprintf(stderr,
                 "--threads must be >= 0 (0 = lease from the shared "
                 "thread budget)\n%s",
                 flags.usage().c_str());
    return false;
  }
  return true;
}

ckpt::Protocol parse_protocol(const std::string& s) {
  if (s == "blocking") return ckpt::Protocol::kBlockingCoordinated;
  if (s == "chandy-lamport") return ckpt::Protocol::kChandyLamport;
  if (s == "uncoordinated") return ckpt::Protocol::kUncoordinatedLogging;
  return ckpt::Protocol::kGroupBased;
}

harness::ClusterPreset make_cluster(const harness::FlagSet& flags) {
  harness::ClusterPreset p = harness::icpp07_cluster();
  p.nranks = flags.get_int("ranks");
  p.storage.stripe_count = flags.get_int("stripe");
  p.tier.enabled = flags.get_bool("tier");
  p.tier.local_write_mbps = flags.get_double("local-write-mbps");
  p.tier.local_capacity_mib = flags.get_double("tier-capacity-mib");
  p.tier.drain_mbps = flags.get_double("drain-mbps");
  p.tier.replicate = flags.get_bool("replicate");
  return p;
}

ckpt::CkptConfig make_ckpt_config(const harness::FlagSet& flags) {
  ckpt::CkptConfig cc;
  cc.group_size = flags.get_int("group-size");
  cc.dynamic_formation = flags.get_bool("dynamic");
  cc.incremental = flags.get_bool("incremental");
  cc.async_progress = !flags.get_bool("no-helper");
  return cc;
}

harness::WorkloadFactory make_workload(const harness::FlagSet& flags,
                                       int nranks) {
  const std::string name = flags.get_string("workload");
  if (name == "hpl") {
    workloads::HplConfig cfg;
    if (nranks != cfg.grid_p * cfg.grid_q) {
      cfg.grid_p = nranks > 4 ? nranks / 4 : nranks;
      cfg.grid_q = nranks / cfg.grid_p;
    }
    return [cfg](int n) { return std::make_unique<workloads::HplSim>(n, cfg); };
  }
  if (name == "motifminer") {
    workloads::MotifMinerConfig cfg;
    return [cfg](int n) {
      return std::make_unique<workloads::MotifMinerSim>(n, cfg);
    };
  }
  if (name == "stencil") {
    workloads::StencilConfig cfg;
    if (nranks != cfg.px * cfg.py) {
      cfg.px = nranks > 4 ? nranks / 4 : nranks;
      cfg.py = nranks / cfg.px;
    }
    return [cfg](int n) {
      return std::make_unique<workloads::StencilSim>(n, cfg);
    };
  }
  if (name == "barrier") {
    workloads::BarrierBenchConfig cfg;
    cfg.comm_group_size = flags.get_int("comm-group");
    cfg.footprint_mib = flags.get_double("footprint-mib");
    cfg.iterations = 1800;
    return [cfg](int n) {
      return std::make_unique<workloads::BarrierBench>(n, cfg);
    };
  }
  workloads::CommGroupBenchConfig cfg;
  cfg.comm_group_size = flags.get_int("comm-group");
  cfg.footprint_mib = flags.get_double("footprint-mib");
  cfg.iterations = 1200;
  return [cfg](int n) {
    return std::make_unique<workloads::CommGroupBench>(n, cfg);
  };
}

// One full-stack run (base + checkpointed), printed and appended as a CSV
// row. The command accepts --shards/--threads: the protocol stack runs on
// shard 0 with wire flights relayed through the other shards, and every
// reported column is byte-identical to the serial run at any shard/thread
// count — which tests/determinism_check.cmake MODE=shards asserts.
int cmd_run(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim run");
  add_common_flags(flags);
  add_shard_flags(flags);
  flags.add_double("issuance", 30.0, "checkpoint request time (seconds)");
  flags.add_int("iterations", 0,
                "iteration override (microbench/barrier, 0 = default)");
  flags.add_string("csv", "run",
                   "CSV basename, written under $GBC_BENCH_OUT (or "
                   "bench_results/)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  if (!validate_shard_flags(flags, flags.get_int("ranks"))) return 2;

  harness::ClusterPreset preset = make_cluster(flags);
  if (!apply_erasure_flag(flags, &preset)) return 2;
  preset.shards = flags.get_int("shards");
  const int want = flags.get_int("threads");
  const int leased =
      want == 0 ? harness::ThreadBudget::shared().acquire(preset.shards) : 0;
  preset.threads = want == 0 ? leased : want;

  harness::WorkloadFactory factory;
  const int iters = flags.get_int("iterations");
  const std::string wname = flags.get_string("workload");
  if (iters > 0 && wname == "barrier") {
    workloads::BarrierBenchConfig cfg;
    cfg.comm_group_size = flags.get_int("comm-group");
    cfg.footprint_mib = flags.get_double("footprint-mib");
    cfg.iterations = static_cast<std::uint64_t>(iters);
    factory = [cfg](int n) {
      return std::make_unique<workloads::BarrierBench>(n, cfg);
    };
  } else if (iters > 0 && wname == "microbench") {
    workloads::CommGroupBenchConfig cfg;
    cfg.comm_group_size = flags.get_int("comm-group");
    cfg.footprint_mib = flags.get_double("footprint-mib");
    cfg.iterations = static_cast<std::uint64_t>(iters);
    factory = [cfg](int n) {
      return std::make_unique<workloads::CommGroupBench>(n, cfg);
    };
  } else {
    factory = make_workload(flags, preset.nranks);
  }

  const auto cc = make_ckpt_config(flags);
  const auto protocol = parse_protocol(flags.get_string("protocol"));
  auto base = harness::run_experiment(preset, factory, cc);
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(harness::CkptRequest{
      sim::from_seconds(flags.get_double("issuance")), protocol});
  auto ck = harness::run_experiment(preset, factory, cc, reqs);
  if (leased > 0) harness::ThreadBudget::shared().release(leased);

  // Order-sensitive digest of the final per-rank states: any event-order
  // divergence between serial and sharded runs lands here.
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a
  for (std::uint64_t h : ck.final_hashes) {
    digest ^= h;
    digest *= 1099511628211ull;
  }

  const double delay = ck.completion_seconds() - base.completion_seconds();
  double individual = 0.0;
  double total = 0.0;
  if (!ck.checkpoints.empty()) {
    const auto& gc = ck.checkpoints.front();
    individual = sim::to_seconds(gc.max_individual_time());
    total = sim::to_seconds(gc.total_checkpoint_time());
  }

  std::printf("base run                   : %9.3f s\n",
              base.completion_seconds());
  std::printf("with checkpoint            : %9.3f s\n",
              ck.completion_seconds());
  std::printf("Effective Checkpoint Delay : %9.3f s\n", delay);
  std::printf("Individual Checkpoint Time : %9.3f s\n", individual);
  std::printf("Total Checkpoint Time      : %9.3f s\n", total);
  std::printf("state digest               : %016llx\n",
              static_cast<unsigned long long>(digest));

  const char* env = std::getenv("GBC_BENCH_OUT");
  const std::string dir = env && *env ? env : "bench_results";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + flags.get_string("csv") + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "workload,ranks,comm_group,ckpt_group,protocol,base_s,"
               "with_ckpt_s,effective_delay_s,individual_s,total_s,"
               "state_digest\n");
  std::fprintf(f, "%s,%d,%d,%d,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%016llx\n",
               wname.c_str(), preset.nranks, flags.get_int("comm-group"),
               cc.group_size, flags.get_string("protocol").c_str(),
               base.completion_seconds(), ck.completion_seconds(), delay,
               individual, total, static_cast<unsigned long long>(digest));
  std::fclose(f);
  return 0;
}

int cmd_delay(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim delay");
  add_common_flags(flags);
  flags.add_double("issuance", 30.0, "checkpoint request time (seconds)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  auto cluster = make_cluster(flags);
  if (!apply_erasure_flag(flags, &cluster)) return 2;
  auto factory = make_workload(flags, cluster.nranks);
  auto m = harness::measure_effective_delay(
      cluster, factory, make_ckpt_config(flags),
      sim::from_seconds(flags.get_double("issuance")),
      parse_protocol(flags.get_string("protocol")));
  std::printf("base run                   : %9.2f s\n", m.base_seconds);
  std::printf("with checkpoint            : %9.2f s\n", m.with_ckpt_seconds);
  std::printf("Effective Checkpoint Delay : %9.2f s\n",
              m.effective_delay_seconds());
  std::printf("Individual Checkpoint Time : %9.2f s\n",
              m.individual_seconds());
  std::printf("Total Checkpoint Time      : %9.2f s\n", m.total_seconds());
  std::printf("storage fraction of downtime: %8.1f %%\n",
              m.checkpoint.storage_fraction() * 100.0);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim sweep");
  add_common_flags(flags);
  flags.add_double("issuance", 30.0, "checkpoint request time (seconds)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  auto cluster = make_cluster(flags);
  if (!apply_erasure_flag(flags, &cluster)) return 2;
  auto factory = make_workload(flags, cluster.nranks);
  auto cc = make_ckpt_config(flags);
  const double base =
      harness::run_experiment(cluster, factory, cc).completion_seconds();
  harness::Table t({"ckpt_group", "effective_delay_s", "individual_s",
                    "total_s"});
  for (int size = 0; size <= cluster.nranks; size = size == 0 ? 1 : size * 2) {
    if (size > cluster.nranks / 2 && size != 0) break;
    ckpt::CkptConfig c2 = cc;
    c2.group_size = size;
    auto m = harness::measure_effective_delay_with_base(
        cluster, factory, c2, sim::from_seconds(flags.get_double("issuance")),
        ckpt::Protocol::kGroupBased, base);
    t.add_row({size == 0 ? "All" : std::to_string(size),
               harness::Table::num(m.effective_delay_seconds()),
               harness::Table::num(m.individual_seconds()),
               harness::Table::num(m.total_seconds())});
    std::fflush(stdout);
  }
  t.print();
  return 0;
}

int cmd_trace(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim trace");
  add_common_flags(flags);
  flags.add_double("issuance", 5.0, "checkpoint request time (seconds)");
  flags.add_string("trace-out", "",
                   "write a chrome://tracing JSON file of the schedule");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  auto cluster = make_cluster(flags);
  if (cluster.nranks > 16) cluster.nranks = 16;  // keep the chart readable
  if (!apply_erasure_flag(flags, &cluster)) return 2;
  auto factory = make_workload(flags, cluster.nranks);
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(
      harness::CkptRequest{sim::from_seconds(flags.get_double("issuance")),
                           parse_protocol(flags.get_string("protocol"))});
  const std::string trace_out = flags.get_string("trace-out");
  sim::Trace trace;
  trace.enable(!trace_out.empty());
  auto res = harness::run_experiment(cluster, factory, make_ckpt_config(flags),
                                     reqs, nullptr, &trace);
  if (res.checkpoints.empty()) {
    std::fprintf(stderr, "no checkpoint completed\n");
    return 1;
  }
  if (!trace_out.empty()) {
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    const std::string json = sim::trace_to_chrome_json(trace);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu events)\n", trace_out.c_str(),
                 trace.events().size());
  }
  std::vector<std::pair<std::string, ckpt::GlobalCheckpoint>> runs;
  runs.emplace_back("checkpoint schedule", res.checkpoints.front());
  std::fputs(harness::render_gantt_comparison(runs).c_str(), stdout);
  return 0;
}

int cmd_recover(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim recover");
  add_common_flags(flags);
  flags.add_double("ckpt-at", 20.0, "checkpoint request time (seconds)");
  flags.add_double("fail-at", 60.0, "failure injection time (seconds)");
  flags.add_int("failed-rank", 0, "rank whose node dies (staging tier)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  auto cluster = make_cluster(flags);
  if (!apply_erasure_flag(flags, &cluster)) return 2;
  auto factory = make_workload(flags, cluster.nranks);
  auto cc = make_ckpt_config(flags);
  auto clean = harness::run_experiment(cluster, factory, cc);
  std::vector<harness::CkptRequest> reqs;
  reqs.push_back(
      harness::CkptRequest{sim::from_seconds(flags.get_double("ckpt-at")),
                           parse_protocol(flags.get_string("protocol"))});
  auto rec = harness::run_with_failure(
      cluster, factory, cc, reqs,
      sim::from_seconds(flags.get_double("fail-at")),
      flags.get_int("failed-rank"));
  std::printf("clean completion      : %8.1f s\n", clean.completion_seconds());
  std::printf("failure at            : %8.1f s\n",
              sim::to_seconds(rec.failure_at));
  std::printf("restored from ckpt    : %s (rollback to iteration %llu)\n",
              rec.used_checkpoint ? "yes" : "no (cold restart)",
              static_cast<unsigned long long>(rec.rollback_iteration));
  if (cluster.tier.enabled) {
    std::printf("ckpts skipped (tier)  : %8d\n", rec.checkpoints_skipped);
    std::printf("restored loc/rep/ec/pfs: %3d /%4d /%4d /%4d\n",
                rec.ranks_restored_local, rec.ranks_restored_replica,
                rec.ranks_restored_erasure, rec.ranks_restored_pfs);
  }
  std::printf("restart image reads   : %8.1f s\n", rec.restart_read_seconds);
  std::printf("time to solution      : %8.1f s\n", rec.total_seconds);
  const bool ok = rec.final_hashes == clean.final_hashes;
  std::printf("result matches clean  : %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}

int cmd_mtbf(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim mtbf");
  add_common_flags(flags);
  flags.add_double("interval", 60.0, "checkpoint interval (seconds)");
  flags.add_double("mtbf", 300.0, "mean time between failures (seconds)");
  flags.add_int("seed", 1, "failure-sequence seed");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  auto cluster = make_cluster(flags);
  if (!apply_erasure_flag(flags, &cluster)) return 2;
  auto factory = make_workload(flags, cluster.nranks);
  harness::FailureModel fm;
  fm.mtbf_seconds = flags.get_double("mtbf");
  fm.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  auto res = harness::run_with_poisson_failures(
      cluster, factory, make_ckpt_config(flags),
      parse_protocol(flags.get_string("protocol")),
      sim::from_seconds(flags.get_double("interval")), fm);
  std::printf("time to solution   : %10.1f s\n", res.total_seconds);
  std::printf("failures           : %10d\n", res.failures);
  std::printf("ckpts completed    : %10d\n", res.checkpoints_completed);
  std::printf("lost work          : %10llu iterations\n",
              static_cast<unsigned long long>(res.lost_work_iterations));
  std::printf("Young-optimal gap  : %10.1f s (for C=10s)\n",
              harness::young_interval_seconds(10.0, fm.mtbf_seconds));
  return 0;
}

int cmd_storage(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim storage");
  flags.add_int("max-clients", 32, "sweep 1..max concurrent writers");
  flags.add_int("stripe", 0, "stripe_count (0 = pooled)");
  flags.add_double("file-mib", 256.0, "file size per client");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  harness::Table t({"clients", "per_client_MBps", "aggregate_MBps"});
  for (int clients = 1; clients <= flags.get_int("max-clients");
       clients *= 2) {
    harness::ClusterPreset preset;
    preset.nranks = clients;
    preset.storage.stripe_count = flags.get_int("stripe");
    harness::SimCluster cluster(preset);
    sim::Engine& eng = cluster.engine();
    storage::StorageSystem& fs = cluster.shared_fs();
    const storage::Bytes file = storage::mib(flags.get_double("file-mib"));
    sim::Time slowest = 0;
    for (int c = 0; c < clients; ++c) {
      eng.spawn([](storage::StorageSystem& s, storage::Bytes b,
                   sim::Engine& e, sim::Time& out) -> sim::Task<void> {
        co_await s.write(b);
        if (e.now() > out) out = e.now();
      }(fs, file, eng, slowest));
    }
    eng.run();
    const double secs = sim::to_seconds(slowest);
    const double total_mb = static_cast<double>(file) * clients /
                            static_cast<double>(storage::kMiB);
    t.add_row({std::to_string(clients),
               harness::Table::num(total_mb / clients / secs),
               harness::Table::num(total_mb / secs)});
  }
  t.print();
  return 0;
}

int cmd_scale(int argc, const char* const* argv) {
  harness::FlagSet flags("gbcsim scale");
  flags.add_int("ranks", 1024, "number of simulated MPI processes");
  add_shard_flags(flags);
  flags.add_string("topology", "fat-tree:32:2",
                   "flat | fat-tree:<radix>:<oversub>");
  flags.add_int("comm-group", 16, "ring communication group size");
  flags.add_int("group-size", 0, "checkpoint group size (0 = all at once)");
  flags.add_double("footprint-mib", 16.0, "per-process image size (MiB)");
  flags.add_double("chunk-mib", 8.0, "checkpoint write chunk size (MiB)");
  flags.add_int("iterations", 40, "compute iterations per rank");
  flags.add_double("compute-ms", 100.0, "compute time per iteration (ms)");
  flags.add_double("msg-kib", 64.0, "ring message size (KiB)");
  flags.add_int("pfs-servers", 0, "PFS server count (0 = max(4, ranks/64))");
  flags.add_double("issuance", 1.0, "checkpoint request time (seconds)");
  flags.add_int("seed", 42, "compute-jitter seed");
  flags.add_string("trace-out", "",
                   "chrome://tracing JSON with per-shard window spans");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return flags.help_requested() ? 0 : 2;
  }
  const auto topo = net::parse_topology(flags.get_string("topology"));
  if (!topo) {
    std::fprintf(stderr, "invalid --topology '%s'\n%s",
                 flags.get_string("topology").c_str(), flags.usage().c_str());
    return 2;
  }
  if (!validate_shard_flags(flags, flags.get_int("ranks"))) return 2;

  harness::ScaleConfig cfg;
  cfg.nranks = flags.get_int("ranks");
  cfg.shards = flags.get_int("shards");
  cfg.threads = flags.get_int("threads");
  cfg.net.topology = *topo;
  cfg.comm_group = std::max(1, flags.get_int("comm-group"));
  cfg.ckpt_group = flags.get_int("group-size");
  cfg.footprint_mib = flags.get_double("footprint-mib");
  cfg.chunk_mib = flags.get_double("chunk-mib");
  cfg.iterations = flags.get_int("iterations");
  cfg.compute_per_iter = sim::from_milliseconds(flags.get_double("compute-ms"));
  cfg.msg_bytes = static_cast<std::int64_t>(flags.get_double("msg-kib") * 1024);
  cfg.pfs_servers = flags.get_int("pfs-servers") > 0
                        ? flags.get_int("pfs-servers")
                        : std::max(4, cfg.nranks / 64);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const std::string trace_out = flags.get_string("trace-out");
  sim::Trace trace;
  trace.enable(!trace_out.empty());

  cfg.issuance = -1;  // base run: no checkpoint
  const auto t0 = std::chrono::steady_clock::now();
  auto base = harness::run_scale_model(cfg);

  cfg.issuance = sim::from_seconds(flags.get_double("issuance"));
  cfg.trace = &trace;
  auto ck = harness::run_scale_model(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!trace_out.empty()) {
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    const std::string json = sim::trace_to_chrome_json(trace);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu events)\n", trace_out.c_str(),
                 trace.events().size());
  }

  std::printf("ranks %d, topology %s, %d shard(s) on %d thread(s)\n",
              cfg.nranks, net::topology_to_string(*topo).c_str(), ck.shards,
              ck.threads_used);
  std::printf("base run                   : %9.2f s\n",
              base.completion_seconds);
  std::printf("with checkpoint            : %9.2f s\n", ck.completion_seconds);
  std::printf("Effective Checkpoint Delay : %9.2f s\n",
              ck.completion_seconds - base.completion_seconds);
  std::printf("Individual Checkpoint Time : %9.2f s\n",
              ck.individual_max_seconds);
  std::printf("Total Checkpoint Time      : %9.2f s\n", ck.total_ckpt_seconds);
  std::printf("events                     : %llu (+%llu base)\n",
              static_cast<unsigned long long>(ck.events),
              static_cast<unsigned long long>(base.events));
  std::printf("windows                    : %llu (balance %.3f)\n",
              static_cast<unsigned long long>(ck.windows), ck.window_balance);
  std::printf("host events/s              : %.3g\n",
              wall > 0 ? static_cast<double>(ck.events + base.events) / wall
                       : 0.0);
  return 0;
}

void print_toplevel_usage() {
  std::puts(
      "gbcsim — group-based coordinated checkpointing simulator\n"
      "\n"
      "commands:\n"
      "  run       one full-stack run, CSV row out (shardable: --shards)\n"
      "  delay     measure the Effective Checkpoint Delay of one checkpoint\n"
      "  sweep     delay vs. checkpoint group size\n"
      "  trace     ASCII Gantt chart of a checkpoint schedule\n"
      "  recover   inject a failure and restart from the last checkpoint\n"
      "  mtbf      time-to-solution under Poisson failures\n"
      "  storage   storage-bottleneck curve (per-client bandwidth)\n"
      "  scale     sharded scale model (1k-16k ranks, --shards/--topology)\n"
      "\n"
      "scaling flags (run, scale):\n"
      "  --shards N              partition the DES into N conservative shards\n"
      "  --threads N             worker threads (0 = lease from the budget)\n"
      "  --topology SPEC         (scale) flat | fat-tree:<radix>:<oversub>\n"
      "\n"
      "staging-tier flags (delay/sweep/trace/recover/mtbf):\n"
      "  --tier                  enable the node-local staging tier\n"
      "  --local-write-mbps N    local tier write bandwidth per node (MB/s)\n"
      "  --tier-capacity-mib N   local tier capacity per node (0 = unbounded)\n"
      "  --drain-mbps N          background drain rate to the PFS (0 = never)\n"
      "  --replicate             copy each image to a partner node\n"
      "  --tier-erasure K,M      erasure-code images into K data + M parity\n"
      "                          chunks scattered over K+M nodes (implies\n"
      "                          --tier; M=1 uses the XOR codec)\n"
      "\n"
      "tracing / recovery flags:\n"
      "  --trace-out FILE        (trace) chrome://tracing JSON of the schedule\n"
      "  --failed-rank R         (recover) rank whose node dies\n"
      "\n"
      "run `gbcsim <command> --help` for the full flag list of a command;\n"
      "unknown flags or stray arguments exit with status 2");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_toplevel_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const int rest_argc = argc - 2;
  const char* const* rest_argv = argv + 2;
  if (cmd == "run") return cmd_run(rest_argc, rest_argv);
  if (cmd == "delay") return cmd_delay(rest_argc, rest_argv);
  if (cmd == "sweep") return cmd_sweep(rest_argc, rest_argv);
  if (cmd == "trace") return cmd_trace(rest_argc, rest_argv);
  if (cmd == "recover") return cmd_recover(rest_argc, rest_argv);
  if (cmd == "mtbf") return cmd_mtbf(rest_argc, rest_argv);
  if (cmd == "storage") return cmd_storage(rest_argc, rest_argv);
  if (cmd == "scale") return cmd_scale(rest_argc, rest_argv);
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_toplevel_usage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  print_toplevel_usage();
  return 2;
}
