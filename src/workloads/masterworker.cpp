#include "workloads/masterworker.hpp"

namespace gbc::workloads {

MasterWorkerSim::MasterWorkerSim(int nranks, MasterWorkerConfig cfg)
    : Workload(nranks), cfg_(cfg) {
  for (int r = 0; r < nranks; ++r) {
    set_footprint(r, storage::mib(cfg_.footprint_mib));
  }
}

sim::Time MasterWorkerSim::chunk(int rank, std::uint64_t round) const {
  sim::Rng rng = sim::Rng(cfg_.seed)
                     .fork(static_cast<std::uint64_t>(rank) * 999983ULL + round);
  return sim::from_seconds(
      rng.lognormal_mean_cv(cfg_.mean_chunk_seconds, cfg_.imbalance_cv));
}

sim::Task<void> MasterWorkerSim::run_rank(mpi::RankCtx& r,
                                          WorkloadState from) {
  const int me = r.world_rank();
  set_state(me, from);
  const mpi::Comm& wc = r.mpi().world();
  const int workers = r.nranks() - 1;
  if (workers <= 0) co_return;

  if (me == 0) {
    // Master: per round, serve every worker's request in arrival order.
    for (std::uint64_t round = from.iteration; round < cfg_.rounds; ++round) {
      const mpi::Tag tag = static_cast<mpi::Tag>(round);
      for (int served = 0; served < workers; ++served) {
        auto req = co_await r.recv(wc, mpi::kAnySource, tag);
        co_await r.send(wc, req.source, tag, cfg_.reply_bytes);
      }
      commit_iteration(0, round);
    }
  } else {
    for (std::uint64_t round = from.iteration; round < cfg_.rounds; ++round) {
      const mpi::Tag tag = static_cast<mpi::Tag>(round);
      co_await r.send(wc, 0, tag, cfg_.request_bytes);
      (void)co_await r.recv(wc, 0, tag);
      co_await r.compute(chunk(me, round));
      commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | round);
    }
  }
}

}  // namespace gbc::workloads
