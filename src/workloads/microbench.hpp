#pragma once

#include "sim/time.hpp"
#include "workloads/workload.hpp"

namespace gbc::workloads {

/// The paper's Figure 3 micro-benchmark: "MPI processes communicate only
/// within a communication group using blocking MPI calls continuously,
/// effectively synchronizing themselves in groups."
///
/// Each iteration a rank computes for `compute_per_iter` and then exchanges
/// a blocking (rendezvous-sized) message around a ring inside its
/// communication group. comm_group_size == 1 is the embarrassingly-parallel
/// case. The memory footprint is constant (`footprint_mib`, 180 MB in the
/// paper).
struct CommGroupBenchConfig {
  int comm_group_size = 8;
  sim::Time compute_per_iter = 100 * sim::kMillisecond;
  storage::Bytes message_bytes = 64 * storage::kKiB;
  std::uint64_t iterations = 600;
  double footprint_mib = 180.0;
};

class CommGroupBench : public Workload {
 public:
  CommGroupBench(int nranks, CommGroupBenchConfig cfg);
  sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) override;
  using Workload::run_rank;

  const CommGroupBenchConfig& config() const { return cfg_; }

 private:
  CommGroupBenchConfig cfg_;
};

/// The paper's Figure 4 micro-benchmark: communication groups of
/// `comm_group_size` plus a *global* MPI_Barrier every `barrier_period` of
/// computation ("enforce a global synchronization using MPI_Barrier every
/// minute"). The effective checkpoint delay depends strongly on how close
/// the checkpoint request lands to the next barrier.
struct BarrierBenchConfig {
  int comm_group_size = 8;
  sim::Time compute_per_iter = 100 * sim::kMillisecond;
  sim::Time barrier_period = 60 * sim::kSecond;
  storage::Bytes message_bytes = 64 * storage::kKiB;
  std::uint64_t iterations = 1800;
  double footprint_mib = 180.0;
};

class BarrierBench : public Workload {
 public:
  BarrierBench(int nranks, BarrierBenchConfig cfg);
  sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) override;
  using Workload::run_rank;

  const BarrierBenchConfig& config() const { return cfg_; }

 private:
  BarrierBenchConfig cfg_;
  std::uint64_t iters_per_barrier_;
};

}  // namespace gbc::workloads
