#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/minimpi.hpp"
#include "sim/task.hpp"
#include "storage/storage.hpp"

namespace gbc::workloads {

using Bytes = storage::Bytes;

/// Resume token of one rank: enough to restart the workload mid-run from a
/// checkpoint. `hash` is a deterministic chained digest of the work done so
/// far — replaying from a snapshot must reproduce the exact same final hash
/// as an uninterrupted run, which is how the recovery tests verify that a
/// restart lost and duplicated nothing.
struct WorkloadState {
  std::uint64_t iteration = 0;
  std::uint64_t hash = 0;
};

/// Packs/unpacks a WorkloadState into the opaque app_state blob that the
/// checkpoint service stores per snapshot.
std::vector<std::uint64_t> pack_state(const WorkloadState& s);
WorkloadState unpack_state(const std::vector<std::uint64_t>& packed);

/// Deterministic hash chaining (splitmix-style mixing).
std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v);

/// Base class for simulated applications. One instance per job; run_rank()
/// is spawned once per rank. Implementations must:
///  - update state(r) exactly when an iteration's effects are durable,
///  - keep footprint(r) current (the C/R service samples it at snapshots),
///  - support starting from any state previously captured.
class Workload {
 public:
  explicit Workload(int nranks)
      : states_(nranks),
        footprints_(nranks, storage::mib(64)),
        hash_history_(nranks),
        start_iteration_(nranks, 0),
        start_hash_(nranks, 0) {}
  virtual ~Workload() = default;

  /// One-time collective setup (communicator creation); call before
  /// spawning any rank program.
  virtual void setup(mpi::MiniMPI& /*mpi*/) {}

  virtual sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) = 0;

  /// Convenience: run from the beginning.
  sim::Task<void> run_rank(mpi::RankCtx& r) { return run_rank(r, {}); }

  int nranks() const { return static_cast<int>(states_.size()); }
  const WorkloadState& state(int r) const { return states_[r]; }
  Bytes footprint(int r) const { return footprints_[r]; }

  /// Serialized resume state: the committed-iteration count plus the hash
  /// chain after every commit since this run began. Keeping the window (not
  /// just the head) lets recovery roll *all* ranks back to one common
  /// iteration — the simulation-level stand-in for BLCR's exact process
  /// image restore (see DESIGN.md), and it makes restarts byte-exact
  /// verifiable: replaying from the rollback point reproduces the same
  /// final hash as an uninterrupted run.
  std::vector<std::uint64_t> resume_blob(int r) const;

  /// Number of committed iterations recorded in a blob.
  static std::uint64_t committed_iterations(
      const std::vector<std::uint64_t>& blob);
  /// State as of `iteration` commits (must be recorded in the blob).
  static WorkloadState state_for_iteration(
      const std::vector<std::uint64_t>& blob, std::uint64_t iteration);

  /// Wires this workload into a checkpoint service (footprint + capture).
  template <typename Service>
  void attach(Service& svc) {
    svc.set_footprint_provider([this](int r) { return footprint(r); });
    svc.set_state_capture([this](int r) { return resume_blob(r); });
  }

 protected:
  void commit_iteration(int r, std::uint64_t iter_value) {
    states_[r].hash = mix_hash(states_[r].hash, iter_value);
    ++states_[r].iteration;
    hash_history_[r].push_back(states_[r].hash);
  }
  /// Initializes a rank's run (fresh or resumed). The hash history restarts
  /// at the resume point; earlier history lives in the previous incarnation.
  void set_state(int r, WorkloadState s) {
    states_[r] = s;
    start_iteration_[r] = s.iteration;
    start_hash_[r] = s.hash;
    hash_history_[r].clear();
  }
  void set_footprint(int r, Bytes b) { footprints_[r] = b; }

 private:
  std::vector<WorkloadState> states_;
  std::vector<Bytes> footprints_;
  // hash_history_[r][i] = hash after (start_iteration_[r] + i + 1) commits.
  std::vector<std::vector<std::uint64_t>> hash_history_;
  std::vector<std::uint64_t> start_iteration_;
  std::vector<std::uint64_t> start_hash_;
};

}  // namespace gbc::workloads
