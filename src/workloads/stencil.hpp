#pragma once

#include "workloads/workload.hpp"

namespace gbc::workloads {

/// 2D Jacobi-style stencil with halo exchange: ranks form a PX x PY grid,
/// each owns an interior block and trades one-cell-deep halos with its
/// four neighbours every iteration (non-periodic boundaries). The archetypal
/// "processes only communicate with a limited number of peers" application
/// the paper cites (Vetter & Mueller, IPDPS'02) as the reason group-based
/// checkpointing applies broadly.
struct StencilConfig {
  int px = 8;                ///< grid columns of ranks
  int py = 4;                ///< grid rows of ranks
  std::int64_t nx = 16384;   ///< global cells per dimension
  std::int64_t ny = 16384;
  std::uint64_t iterations = 300;
  double cell_flops = 6.0;         ///< per-cell update cost
  double proc_gflops = 4.0;
  double footprint_mib_per_rank = 220.0;
};

class StencilSim : public Workload {
 public:
  StencilSim(int nranks, StencilConfig cfg);

  sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) override;
  using Workload::run_rank;

  const StencilConfig& config() const { return cfg_; }
  double estimated_runtime_seconds() const;
  /// World ranks of the up/down/left/right neighbours (-1 at boundaries).
  std::vector<int> neighbours(int rank) const;

 private:
  StencilConfig cfg_;
};

}  // namespace gbc::workloads
