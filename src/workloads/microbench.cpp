#include "workloads/microbench.hpp"

#include <algorithm>

namespace gbc::workloads {

// ---------------------------------------------------------------------------
// CommGroupBench
// ---------------------------------------------------------------------------

CommGroupBench::CommGroupBench(int nranks, CommGroupBenchConfig cfg)
    : Workload(nranks), cfg_(cfg) {
  for (int r = 0; r < nranks; ++r) {
    set_footprint(r, storage::mib(cfg_.footprint_mib));
  }
}

sim::Task<void> CommGroupBench::run_rank(mpi::RankCtx& r, WorkloadState from) {
  set_state(r.world_rank(), from);
  const mpi::Comm& wc = r.mpi().world();
  const int me = r.world_rank();
  const int s = cfg_.comm_group_size;
  const int group_base = (me / s) * s;
  // The tail group is smaller when nranks % s != 0; its ring wraps within
  // the ranks that actually exist.
  const int gs = std::min(s, wc.size() - group_base);
  const int idx = me - group_base;
  const int right = group_base + (idx + 1) % gs;
  const int left = group_base + (idx - 1 + gs) % gs;

  for (std::uint64_t it = from.iteration; it < cfg_.iterations; ++it) {
    co_await r.compute(cfg_.compute_per_iter);
    if (gs > 1) {
      // Blocking ring exchange inside the communication group: the group
      // stays tightly synchronized, other groups are independent.
      mpi::Request rq = r.irecv(wc, left, static_cast<mpi::Tag>(it));
      co_await r.send(wc, right, static_cast<mpi::Tag>(it),
                      cfg_.message_bytes);
      co_await r.wait(rq);
    }
    commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
  }
}

// ---------------------------------------------------------------------------
// BarrierBench
// ---------------------------------------------------------------------------

BarrierBench::BarrierBench(int nranks, BarrierBenchConfig cfg)
    : Workload(nranks), cfg_(cfg) {
  iters_per_barrier_ = static_cast<std::uint64_t>(
      cfg_.barrier_period / cfg_.compute_per_iter);
  if (iters_per_barrier_ == 0) iters_per_barrier_ = 1;
  for (int r = 0; r < nranks; ++r) {
    set_footprint(r, storage::mib(cfg_.footprint_mib));
  }
}

sim::Task<void> BarrierBench::run_rank(mpi::RankCtx& r, WorkloadState from) {
  set_state(r.world_rank(), from);
  const mpi::Comm& wc = r.mpi().world();
  const int me = r.world_rank();
  const int s = cfg_.comm_group_size;
  const int group_base = (me / s) * s;
  const int gs = std::min(s, wc.size() - group_base);
  const int idx = me - group_base;
  const int right = group_base + (idx + 1) % gs;
  const int left = group_base + (idx - 1 + gs) % gs;

  for (std::uint64_t it = from.iteration; it < cfg_.iterations; ++it) {
    co_await r.compute(cfg_.compute_per_iter);
    if (gs > 1) {
      mpi::Request rq = r.irecv(wc, left, static_cast<mpi::Tag>(it));
      co_await r.send(wc, right, static_cast<mpi::Tag>(it),
                      cfg_.message_bytes);
      co_await r.wait(rq);
    }
    // "A global synchronization using MPI_Barrier every minute": groups that
    // finish their checkpoints early cannot cross this line (Fig. 4).
    if ((it + 1) % iters_per_barrier_ == 0) co_await r.barrier(wc);
    commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
  }
}

}  // namespace gbc::workloads
