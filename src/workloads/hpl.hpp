#pragma once

#include "workloads/workload.hpp"

namespace gbc::workloads {

/// High Performance Linpack, simulated (paper Sec. 6.2). Right-looking LU
/// over a P×Q process grid with rank = row*Q + col: each iteration the
/// owning process column factorizes an NB-wide panel, the panel travels
/// along each process *row* (binomial bcast inside the row communicator —
/// "processes mostly communicate in the same row or column"; with the 8×4
/// grid the dominant communication group size is effectively four), a
/// smaller pivot/U exchange runs down the columns, and everyone applies the
/// trailing-matrix DGEMM update whose flop count shrinks as the
/// factorization advances. The simulated memory footprint grows over the
/// run (buffers and touched pages), which is why the regular-checkpoint
/// delay differs across Figure 5's issuance points.
struct HplConfig {
  int grid_p = 8;             ///< process rows
  int grid_q = 4;             ///< process columns
  std::int64_t n = 44000;     ///< matrix order
  int nb = 220;               ///< block size (sized so look-ahead slack sits
                              ///< between the 1-rank and 4-rank snapshot windows)
  double proc_gflops = 4.0;   ///< per-process sustained DGEMM rate
  double base_footprint_mib = 60.0;
  /// Fraction of the matrix share resident at start; ramps to 1.0.
  double initial_touch = 0.7;
  /// Look-ahead depth: pivot/U data received from the neighbouring process
  /// row is consumed only `lookahead` iterations later (HPL's update
  /// pipelining). This is the slack that lets other rows keep computing
  /// while one row's checkpoint group is frozen.
  int lookahead = 1;
};

class HplSim : public Workload {
 public:
  HplSim(int nranks, HplConfig cfg);

  void setup(mpi::MiniMPI& mpi) override;
  sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) override;
  using Workload::run_rank;

  const HplConfig& config() const { return cfg_; }
  std::uint64_t total_iterations() const { return iterations_; }
  /// Estimated failure-free makespan (for placing checkpoints in benches).
  double estimated_runtime_seconds() const;

 private:
  Bytes footprint_at(std::uint64_t iter) const;

  HplConfig cfg_;
  std::uint64_t iterations_;
  std::vector<const mpi::Comm*> row_comms_;  // indexed by grid row
  std::vector<const mpi::Comm*> col_comms_;  // indexed by grid column
};

}  // namespace gbc::workloads
