#pragma once

#include "sim/random.hpp"
#include "workloads/workload.hpp"

namespace gbc::workloads {

/// MotifMiner, simulated (paper Sec. 6.3): a parallel structural-motif
/// mining toolkit. "The algorithm follows an iterative pattern, and
/// MPI_Allgather is used to exchange data after each iteration" — global
/// communication only, but "each process still has a relatively large chunk
/// of computation before they synchronize", which is why group-based
/// checkpointing still helps: groups finishing their snapshots early resume
/// their compute chunk while later groups write.
///
/// Compute chunks are deterministic lognormal draws (per rank×iteration, so
/// restarts replay identical durations); the candidate-set exchanged via
/// allgather grows then shrinks over the mining run, as does the footprint.
struct MotifMinerConfig {
  std::uint64_t iterations = 14;
  /// "MotifMiner is very computation intensive ... each process still has a
  /// relatively large chunk of computation before they synchronize" (6.3).
  double mean_compute_seconds = 12.0;
  double imbalance_cv = 0.25;   ///< lognormal cv across ranks/iterations
  double base_footprint_mib = 150.0;
  double peak_candidates_mib = 100.0;  ///< per-rank candidate set at peak
  std::uint64_t seed = 0x5eedULL;
};

class MotifMinerSim : public Workload {
 public:
  MotifMinerSim(int nranks, MotifMinerConfig cfg);

  sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) override;
  using Workload::run_rank;

  const MotifMinerConfig& config() const { return cfg_; }
  double estimated_runtime_seconds() const;

 private:
  /// Candidate-set size profile over the run (triangular: grow then prune).
  Bytes candidates_at(std::uint64_t iter) const;
  sim::Time compute_chunk(int rank, std::uint64_t iter) const;

  MotifMinerConfig cfg_;
};

}  // namespace gbc::workloads
