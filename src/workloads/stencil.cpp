#include "workloads/stencil.hpp"

#include <cassert>

namespace gbc::workloads {

StencilSim::StencilSim(int nranks, StencilConfig cfg)
    : Workload(nranks), cfg_(cfg) {
  assert(cfg_.px * cfg_.py == nranks && "grid must cover all ranks");
  for (int r = 0; r < nranks; ++r) {
    set_footprint(r, storage::mib(cfg_.footprint_mib_per_rank));
  }
}

std::vector<int> StencilSim::neighbours(int rank) const {
  const int x = rank % cfg_.px;
  const int y = rank / cfg_.px;
  std::vector<int> out(4, -1);
  if (y > 0) out[0] = rank - cfg_.px;            // up
  if (y + 1 < cfg_.py) out[1] = rank + cfg_.px;  // down
  if (x > 0) out[2] = rank - 1;                  // left
  if (x + 1 < cfg_.px) out[3] = rank + 1;        // right
  return out;
}

double StencilSim::estimated_runtime_seconds() const {
  const double cells_per_rank =
      static_cast<double>(cfg_.nx) * static_cast<double>(cfg_.ny) /
      (cfg_.px * cfg_.py);
  const double per_iter =
      cells_per_rank * cfg_.cell_flops / (cfg_.proc_gflops * 1e9);
  return per_iter * static_cast<double>(cfg_.iterations) * 1.05;
}

sim::Task<void> StencilSim::run_rank(mpi::RankCtx& r, WorkloadState from) {
  const int me = r.world_rank();
  set_state(me, from);
  const mpi::Comm& wc = r.mpi().world();
  const auto nbrs = neighbours(me);

  const std::int64_t local_nx = cfg_.nx / cfg_.px;
  const std::int64_t local_ny = cfg_.ny / cfg_.py;
  const Bytes halo_x = static_cast<Bytes>(local_nx) * 8;  // top/bottom rows
  const Bytes halo_y = static_cast<Bytes>(local_ny) * 8;  // left/right cols
  const double per_iter_flops = static_cast<double>(local_nx) *
                                static_cast<double>(local_ny) *
                                cfg_.cell_flops;
  const sim::Time compute_time =
      sim::from_seconds(per_iter_flops / (cfg_.proc_gflops * 1e9));

  for (std::uint64_t it = from.iteration; it < cfg_.iterations; ++it) {
    // Post all halo receives, send all halos, then wait — the standard
    // deadlock-free exchange.
    std::vector<mpi::Request> reqs;
    const mpi::Tag tag = static_cast<mpi::Tag>(it);
    for (int d = 0; d < 4; ++d) {
      if (nbrs[d] >= 0) reqs.push_back(r.irecv(wc, nbrs[d], tag));
    }
    for (int d = 0; d < 4; ++d) {
      if (nbrs[d] < 0) continue;
      const Bytes bytes = d < 2 ? halo_x : halo_y;
      reqs.push_back(r.isend(wc, nbrs[d], tag, bytes));
    }
    co_await r.wait_all(std::move(reqs));
    co_await r.compute(compute_time);
    commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
  }
}

}  // namespace gbc::workloads
