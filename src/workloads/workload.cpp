#include "workloads/workload.hpp"

namespace gbc::workloads {

std::vector<std::uint64_t> pack_state(const WorkloadState& s) {
  return {s.iteration, s.hash};
}

// Blob layout: [start_iteration, start_hash, n, hash_1 .. hash_n] where
// hash_i is the chain value after (start_iteration + i) commits.
std::vector<std::uint64_t> Workload::resume_blob(int r) const {
  const auto& hist = hash_history_[r];
  std::vector<std::uint64_t> blob;
  blob.reserve(3 + hist.size());
  blob.push_back(start_iteration_[r]);
  blob.push_back(start_hash_[r]);
  blob.push_back(static_cast<std::uint64_t>(hist.size()));
  blob.insert(blob.end(), hist.begin(), hist.end());
  return blob;
}

std::uint64_t Workload::committed_iterations(
    const std::vector<std::uint64_t>& blob) {
  return blob.size() >= 3 ? blob[0] + blob[2] : 0;
}

WorkloadState Workload::state_for_iteration(
    const std::vector<std::uint64_t>& blob, std::uint64_t iteration) {
  WorkloadState s;
  s.iteration = iteration;
  if (blob.size() < 3 || iteration < blob[0]) {
    // Before this incarnation's window; only iteration 0 is recoverable.
    s.hash = 0;
    return s;
  }
  if (iteration == blob[0]) {
    s.hash = blob[1];
    return s;
  }
  const std::uint64_t idx = iteration - blob[0];  // 1-based into history
  s.hash = blob[2 + idx];
  return s;
}

WorkloadState unpack_state(const std::vector<std::uint64_t>& packed) {
  WorkloadState s;
  if (packed.size() >= 1) s.iteration = packed[0];
  if (packed.size() >= 2) s.hash = packed[1];
  return s;
}

std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace gbc::workloads
