#include "workloads/motifminer.hpp"

#include <cmath>

namespace gbc::workloads {

MotifMinerSim::MotifMinerSim(int nranks, MotifMinerConfig cfg)
    : Workload(nranks), cfg_(cfg) {
  for (int r = 0; r < nranks; ++r) {
    set_footprint(r, storage::mib(cfg_.base_footprint_mib) + candidates_at(0));
  }
}

Bytes MotifMinerSim::candidates_at(std::uint64_t iter) const {
  if (cfg_.iterations == 0) return 0;
  const double x = static_cast<double>(iter) /
                   static_cast<double>(cfg_.iterations);  // 0..1
  // Candidate generation dominates early, pruning wins late.
  const double tri = x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x);
  return storage::mib(cfg_.peak_candidates_mib * (0.15 + 0.85 * tri));
}

sim::Time MotifMinerSim::compute_chunk(int rank, std::uint64_t iter) const {
  sim::Rng rng =
      sim::Rng(cfg_.seed)
          .fork(static_cast<std::uint64_t>(rank) * 1000003ULL + iter);
  const double secs =
      rng.lognormal_mean_cv(cfg_.mean_compute_seconds, cfg_.imbalance_cv);
  return sim::from_seconds(secs);
}

double MotifMinerSim::estimated_runtime_seconds() const {
  return static_cast<double>(cfg_.iterations) * cfg_.mean_compute_seconds *
         1.15;  // imbalance + allgather overhead
}

sim::Task<void> MotifMinerSim::run_rank(mpi::RankCtx& r, WorkloadState from) {
  const int me = r.world_rank();
  set_state(me, from);
  set_footprint(me,
                storage::mib(cfg_.base_footprint_mib) +
                    candidates_at(from.iteration));
  const mpi::Comm& wc = r.mpi().world();
  std::vector<double> no_payload;  // timing-only exchange

  for (std::uint64_t it = from.iteration; it < cfg_.iterations; ++it) {
    // A large chunk of independent mining work...
    co_await r.compute(compute_chunk(me, it));
    // ...then a global candidate exchange after each iteration.
    const Bytes block = candidates_at(it) / std::max(1, r.nranks());
    (void)co_await r.allgather(wc, block, no_payload);
    commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | it);
    set_footprint(me, storage::mib(cfg_.base_footprint_mib) +
                          candidates_at(it + 1));
  }
}

}  // namespace gbc::workloads
