#pragma once

#include "sim/random.hpp"
#include "workloads/workload.hpp"

namespace gbc::workloads {

/// Master/worker task farm: rank 0 serves work descriptors to the other
/// ranks, receiving requests with MPI_ANY_SOURCE and answering in arrival
/// order. Workers compute deterministic (rank × round)-keyed chunks.
/// This exercises the wildcard-matching and deferral paths the grid
/// workloads never touch: during a group-based checkpoint, requests from
/// not-yet-checkpointed workers to a checkpointed master (and vice versa)
/// must defer without deadlocking the ANY_SOURCE service loop.
///
/// Assignment is static per round (worker w always computes item (round, w)),
/// so runs are deterministic and resumable: rolling everyone back to a
/// common round replays identically.
struct MasterWorkerConfig {
  std::uint64_t rounds = 60;
  double mean_chunk_seconds = 0.4;
  double imbalance_cv = 0.3;
  storage::Bytes request_bytes = 256;
  storage::Bytes reply_bytes = 64 * storage::kKiB;
  double footprint_mib = 128.0;
  std::uint64_t seed = 0xFEEDULL;
};

class MasterWorkerSim : public Workload {
 public:
  MasterWorkerSim(int nranks, MasterWorkerConfig cfg);

  using Workload::run_rank;
  sim::Task<void> run_rank(mpi::RankCtx& r, WorkloadState from) override;

  const MasterWorkerConfig& config() const { return cfg_; }
  double estimated_runtime_seconds() const {
    return static_cast<double>(cfg_.rounds) * cfg_.mean_chunk_seconds * 1.2;
  }

 private:
  sim::Time chunk(int rank, std::uint64_t round) const;

  MasterWorkerConfig cfg_;
};

}  // namespace gbc::workloads
