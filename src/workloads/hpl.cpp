#include "workloads/hpl.hpp"

#include <cassert>
#include <deque>
#include <cmath>

namespace gbc::workloads {

HplSim::HplSim(int nranks, HplConfig cfg) : Workload(nranks), cfg_(cfg) {
  assert(cfg_.grid_p * cfg_.grid_q == nranks && "grid must cover all ranks");
  iterations_ =
      static_cast<std::uint64_t>((cfg_.n + cfg_.nb - 1) / cfg_.nb);
  for (int r = 0; r < nranks; ++r) set_footprint(r, footprint_at(0));
}

void HplSim::setup(mpi::MiniMPI& mpi) {
  row_comms_.clear();
  col_comms_.clear();
  for (int row = 0; row < cfg_.grid_p; ++row) {
    std::vector<int> members;
    for (int col = 0; col < cfg_.grid_q; ++col) {
      members.push_back(row * cfg_.grid_q + col);
    }
    row_comms_.push_back(&mpi.create_comm(std::move(members)));
  }
  for (int col = 0; col < cfg_.grid_q; ++col) {
    std::vector<int> members;
    for (int row = 0; row < cfg_.grid_p; ++row) {
      members.push_back(row * cfg_.grid_q + col);
    }
    col_comms_.push_back(&mpi.create_comm(std::move(members)));
  }
}

Bytes HplSim::footprint_at(std::uint64_t iter) const {
  const double share =
      static_cast<double>(cfg_.n) * static_cast<double>(cfg_.n) * 8.0 /
      (cfg_.grid_p * cfg_.grid_q);
  const double progress =
      iterations_ == 0 ? 1.0
                       : static_cast<double>(iter) /
                             static_cast<double>(iterations_);
  const double touched =
      cfg_.initial_touch + (1.0 - cfg_.initial_touch) * progress;
  return storage::mib(cfg_.base_footprint_mib) +
         static_cast<Bytes>(share * touched);
}

double HplSim::estimated_runtime_seconds() const {
  // 2/3 n^3 flops spread over the grid at proc_gflops each, plus ~3% comm.
  const double n = static_cast<double>(cfg_.n);
  const double agg = cfg_.grid_p * cfg_.grid_q * cfg_.proc_gflops * 1e9;
  return (2.0 / 3.0) * n * n * n / agg * 1.03;
}

sim::Task<void> HplSim::run_rank(mpi::RankCtx& r, WorkloadState from) {
  const int me = r.world_rank();
  set_state(me, from);
  set_footprint(me, footprint_at(from.iteration));
  const int my_row = me / cfg_.grid_q;
  const int my_col = me % cfg_.grid_q;
  const mpi::Comm& row_comm = *row_comms_[my_row];
  const mpi::Comm& col_comm = *col_comms_[my_col];
  const double flops_per_sec = cfg_.proc_gflops * 1e9;
  // Column pipeline: pivot/U data flows strictly *down* the process column
  // (modelling HPL's increasing-ring broadcast as seen from the top of the
  // ring) and is consumed `lookahead` iterations later. Non-cyclic: row 0
  // is the source, the bottom row forwards nowhere — so the dependency
  // chain aligns with the rank-ordered checkpoint schedule instead of
  // wrapping around it.
  const int down_row = my_row + 1;                    // grid_p means "none"
  const int up_row = my_row - 1;                      // -1 means "none"
  std::deque<mpi::Request> u_in_flight;
  constexpr mpi::Tag kColPipeTagBase = 1 << 20;

  for (std::uint64_t k = from.iteration; k < iterations_; ++k) {
    const double n_rem =
        static_cast<double>(cfg_.n) - static_cast<double>(k) * cfg_.nb;
    if (n_rem <= 0) break;
    const int owner_col = static_cast<int>(k % cfg_.grid_q);

    // Panel factorization by the owning process column (row-distributed).
    if (my_col == owner_col) {
      const double panel_flops =
          2.0 * n_rem * cfg_.nb * cfg_.nb / cfg_.grid_p;
      co_await r.compute(
          sim::from_seconds(panel_flops / flops_per_sec));
    }

    // Panel broadcast along the process row (dominant communication).
    const Bytes panel_bytes = static_cast<Bytes>(
        static_cast<double>(cfg_.nb) * (n_rem / cfg_.grid_p) * 8.0);
    (void)co_await r.bcast(row_comm, owner_col, panel_bytes, nullptr);

    // Pivot rows / U factor down the process column (much lighter than the
    // panel: only pivot indices and the U triangle travel). The data moves
    // through a pipelined neighbour exchange and, thanks to HPL's
    // look-ahead, is consumed only `lookahead` iterations later — the slack
    // that lets rows run ahead of a frozen checkpoint group.
    const Bytes u_bytes = static_cast<Bytes>(
        static_cast<double>(cfg_.nb) * (n_rem / cfg_.grid_q) * 0.5);
    const mpi::Tag pipe_tag = kColPipeTagBase + static_cast<mpi::Tag>(k);
    if (down_row < cfg_.grid_p) {
      (void)r.isend(col_comm, down_row, pipe_tag, u_bytes);
    }
    if (up_row >= 0) {
      u_in_flight.push_back(r.irecv(col_comm, up_row, pipe_tag));
    }
    while (u_in_flight.size() > static_cast<std::size_t>(cfg_.lookahead)) {
      co_await r.wait(u_in_flight.front());
      u_in_flight.pop_front();
    }

    // Trailing matrix update (DGEMM), evenly spread over the grid.
    const double update_flops =
        2.0 * n_rem * n_rem * cfg_.nb / (cfg_.grid_p * cfg_.grid_q);
    co_await r.compute(sim::from_seconds(update_flops / flops_per_sec));

    commit_iteration(me, (static_cast<std::uint64_t>(me) << 32) | k);
    set_footprint(me, footprint_at(k + 1));
  }
  // Drain the column pipeline before finishing.
  while (!u_in_flight.empty()) {
    co_await r.wait(u_in_flight.front());
    u_in_flight.pop_front();
  }
}

}  // namespace gbc::workloads
