#include "storage/tiers.hpp"

#include <algorithm>
#include <utility>

namespace gbc::storage {

TieredStore::TieredStore(sim::Engine& eng, StorageSystem& pfs, TierConfig cfg,
                         int nnodes)
    : eng_(eng), pfs_(pfs), cfg_(cfg), idle_cv_(eng) {
  for (int i = 0; i < nnodes; ++i) nodes_.emplace_back(eng_);
  if (cfg_.enabled && cfg_.erasure.enabled) {
    erasure_ = std::make_unique<ErasureTier>(eng_, cfg_.erasure, nnodes,
                                             cfg_.replica_offset);
  }
}

void TieredStore::trace_event(int node, const char* category,
                              std::string detail) {
  if (trace_) trace_->add(eng_.now(), node, category, std::move(detail));
}

bool TieredStore::make_room(int node, Bytes need) {
  const Bytes cap = capacity();
  if (cap <= 0) return true;  // unbounded
  if (need > cap) return false;
  NodeState& st = nodes_[node];
  if (st.used + need <= cap) return true;
  // Evict oldest fully-drained images first; undrained images are pinned
  // (dropping them would lose the only copy before it reached the PFS).
  for (auto& img : images_) {
    if (st.used + need <= cap) break;
    if (img.node != node || !local_available(img) || !pfs_durable(img)) {
      continue;
    }
    img.evicted = true;
    st.used -= img.bytes;
    ++images_evicted_;
    trace_event(node, "tier-evict", "img=" + std::to_string(img.id));
  }
  return st.used + need <= cap;
}

sim::Task<std::uint64_t> TieredStore::snapshot(int node, Bytes bytes) {
  images_.push_back(ImageInfo{});
  ImageInfo& img = images_.back();
  img.id = images_.size();
  img.node = node;
  img.bytes = bytes;

  NodeState& st = nodes_[node];
  if (!make_room(node, bytes)) {
    // Local tier full of not-yet-durable images: fall through to the shared
    // PFS, paying the storage bottleneck this subsystem exists to avoid.
    ++write_throughs_;
    trace_event(node, "pfs-write", "begin img=" + std::to_string(img.id));
    co_await pfs_.write(bytes);
    img.written_at = eng_.now();
    img.drained_at = eng_.now();  // already on the PFS
    trace_event(node, "pfs-write", "end img=" + std::to_string(img.id));
    co_return img.id;
  }

  // Local write: dedicated per-node bandwidth, serialized on this node's
  // disk, no cross-node contention.
  img.local = true;
  st.used += bytes;
  const sim::Time start = std::max(eng_.now(), st.disk_busy_until);
  const sim::Time done = start + transfer_time(bytes, cfg_.local_write_mbps);
  st.disk_busy_until = done;
  trace_event(node, "local-write", "begin img=" + std::to_string(img.id));
  co_await eng_.delay_until(done);
  img.written_at = eng_.now();
  trace_event(node, "local-write", "end img=" + std::to_string(img.id));

  // Hand the image to the background drain before replicating, so the PFS
  // copy makes progress while the partner copy is in flight.
  if (cfg_.drain_mbps > 0) {
    st.drain_queue.push_back(img.id);
    if (!st.drain_running) {
      st.drain_running = true;
      eng_.spawn(drain_service(node));
    }
  }

  if (cfg_.replicate && nnodes() > 1) co_await replicate_image(img.id);
  // Erasure protection runs after replication so the stripe scatter and the
  // partner copy never interleave on the home node's staging lane in a
  // schedule-dependent order. The write-through PFS path above skips this:
  // those images are already durable against any node loss.
  if (erasure_) {
    co_await erasure_->protect(node, bytes, img.id, &img.ec, transport_,
                               cfg_.replica_fallback_mbps);
  }
  co_return img.id;
}

sim::Task<void> TieredStore::replicate_image(std::uint64_t id) {
  ImageInfo& img = images_[id - 1];
  img.partner = (img.node + cfg_.replica_offset) % nnodes();
  trace_event(img.node, "replicate",
              "begin img=" + std::to_string(id) + " to=" +
                  std::to_string(img.partner));
  if (transport_) {
    co_await transport_(img.node, img.partner, img.bytes);
  } else {
    co_await eng_.delay(transfer_time(img.bytes, cfg_.replica_fallback_mbps));
  }
  img.replicated_at = eng_.now();
  ++replicas_made_;
  trace_event(img.node, "replicate", "end img=" + std::to_string(id));
}

sim::Task<void> TieredStore::read_local(int node, Bytes bytes) {
  NodeState& st = nodes_[node];
  const sim::Time start = std::max(eng_.now(), st.disk_busy_until);
  const sim::Time done = start + transfer_time(bytes, cfg_.local_read_mbps);
  st.disk_busy_until = done;
  co_await eng_.delay_until(done);
}

sim::Task<void> TieredStore::drain_service(int node) {
  NodeState& st = nodes_[node];
  while (!st.drain_queue.empty()) {
    while (st.paused) co_await st.cv.wait();
    const std::uint64_t id = st.drain_queue.front();
    st.drain_queue.pop_front();
    st.draining = id;
    ImageInfo& img = images_[id - 1];
    trace_event(node, "drain", "begin img=" + std::to_string(id));
    Bytes remaining = img.bytes;
    const Bytes chunk = chunk_bytes();
    while (remaining > 0) {
      while (st.paused) co_await st.cv.wait();
      const Bytes piece = std::min(chunk, remaining);
      // Each chunk is a real PFS write, so the drain contends with
      // foreground flows; pacing tops the rate out at drain_mbps.
      const sim::Time t0 = eng_.now();
      co_await pfs_.write(piece);
      const sim::Time target = transfer_time(piece, cfg_.drain_mbps);
      const sim::Time elapsed = eng_.now() - t0;
      if (elapsed < target) co_await eng_.delay(target - elapsed);
      remaining -= piece;
    }
    img.drained_at = eng_.now();
    st.draining = 0;
    ++images_drained_;
    trace_event(node, "drain", "end img=" + std::to_string(id));
    idle_cv_.notify_all();
  }
  st.drain_running = false;
  idle_cv_.notify_all();
}

void TieredStore::pause_drain(int node) { nodes_[node].paused = true; }

void TieredStore::resume_drain(int node) {
  NodeState& st = nodes_[node];
  st.paused = false;
  st.cv.notify_all();
}

int TieredStore::drain_tasks_running() const {
  int n = 0;
  for (const auto& st : nodes_) {
    if (st.drain_running) ++n;
  }
  return n;
}

int TieredStore::drain_backlog() const {
  int n = 0;
  for (const auto& st : nodes_) {
    n += static_cast<int>(st.drain_queue.size());
    if (st.draining != 0) ++n;  // the image currently in flight
  }
  return n;
}

sim::Task<void> TieredStore::quiesce() {
  for (;;) {
    bool busy = false;
    for (const auto& st : nodes_) {
      if (st.drain_running || !st.drain_queue.empty()) busy = true;
    }
    if (!busy) co_return;
    co_await idle_cv_.wait();
  }
}

}  // namespace gbc::storage
