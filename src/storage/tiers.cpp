#include "storage/tiers.hpp"

#include <algorithm>
#include <utility>

namespace gbc::storage {

TieredStore::TieredStore(sim::Engine& eng, StorageSystem& pfs, TierConfig cfg,
                         int nnodes, sim::LpBus* bus)
    : eng_(eng), pfs_(pfs), cfg_(cfg), bus_(bus), idle_cv_(eng) {
  // Each node's condition variable lives on the node's home engine so that
  // pause/resume wakeups stay shard-local.
  for (int i = 0; i < nnodes; ++i) nodes_.emplace_back(engine_of(i));
  if (cfg_.enabled && cfg_.erasure.enabled) {
    erasure_ = std::make_unique<ErasureTier>(eng_, cfg_.erasure, nnodes,
                                             cfg_.replica_offset);
  }
}

void TieredStore::trace_event(int node, const char* category,
                              std::string detail) {
  if (trace_) trace_->add(engine_of(node).now(), node, category,
                          std::move(detail));
}

sim::Task<void> TieredStore::pfs_write_from(int node, Bytes bytes) {
  if (bus_ == nullptr) {
    co_await pfs_.write(bytes);
    co_return;
  }
  // The PFS is the one shared resource left in the partitioned store: every
  // write is an RPC to the service LP, so the arbitration order the
  // StorageSystem sees is the bus's canonical delivery order — identical at
  // any shard count.
  StorageSystem* pfs = &pfs_;
  co_await bus_->call(node, bus_->svc_lp(),
                      [pfs, bytes] { return pfs->write(bytes); });
}

bool TieredStore::make_room(int node, Bytes need) {
  const Bytes cap = capacity();
  if (cap <= 0) return true;  // unbounded
  if (need > cap) return false;
  NodeState& st = nodes_[node];
  if (st.used + need <= cap) return true;
  // Evict oldest fully-drained images first; undrained images are pinned
  // (dropping them would lose the only copy before it reached the PFS).
  for (auto& img : st.images) {
    if (st.used + need <= cap) break;
    if (!local_available(img) || !pfs_durable(img)) continue;
    img.evicted = true;
    st.used -= img.bytes;
    ++st.images_evicted;
    trace_event(node, "tier-evict", "img=" + std::to_string(img.id));
  }
  return st.used + need <= cap;
}

sim::Task<std::uint64_t> TieredStore::snapshot(int node, Bytes bytes) {
  sim::Engine& eng = engine_of(node);
  NodeState& st = nodes_[node];
  st.images.push_back(ImageInfo{});
  ImageInfo& img = st.images.back();
  img.id = (static_cast<std::uint64_t>(node) + 1) << kIdNodeShift |
           ++st.next_seq;
  img.node = node;
  img.bytes = bytes;

  if (!make_room(node, bytes)) {
    // Local tier full of not-yet-durable images: fall through to the shared
    // PFS, paying the storage bottleneck this subsystem exists to avoid.
    ++st.write_throughs;
    trace_event(node, "pfs-write", "begin img=" + std::to_string(img.id));
    co_await pfs_write_from(node, bytes);
    img.written_at = eng.now();
    img.drained_at = eng.now();  // already on the PFS
    trace_event(node, "pfs-write", "end img=" + std::to_string(img.id));
    co_return img.id;
  }

  // Local write: dedicated per-node bandwidth, serialized on this node's
  // disk, no cross-node contention.
  img.local = true;
  st.used += bytes;
  const sim::Time start = std::max(eng.now(), st.disk_busy_until);
  const sim::Time done = start + transfer_time(bytes, cfg_.local_write_mbps);
  st.disk_busy_until = done;
  trace_event(node, "local-write", "begin img=" + std::to_string(img.id));
  co_await eng.delay_until(done);
  img.written_at = eng.now();
  trace_event(node, "local-write", "end img=" + std::to_string(img.id));

  // Hand the image to the background drain before replicating, so the PFS
  // copy makes progress while the partner copy is in flight.
  if (cfg_.drain_mbps > 0) {
    st.drain_queue.push_back(img.id);
    if (!st.drain_running) {
      st.drain_running = true;
      eng.spawn(drain_service(node));
    }
  }

  if (cfg_.replicate && nnodes() > 1) co_await replicate_image(img.id);
  // Erasure protection runs after replication so the stripe scatter and the
  // partner copy never interleave on the home node's staging lane in a
  // schedule-dependent order. The write-through PFS path above skips this:
  // those images are already durable against any node loss.
  if (erasure_) {
    co_await erasure_->protect(eng, node, bytes, img.id, &img.ec, transport_,
                               cfg_.replica_fallback_mbps);
  }
  co_return img.id;
}

sim::Task<void> TieredStore::replicate_image(std::uint64_t id) {
  ImageInfo& img = *find_mut(id);
  sim::Engine& eng = engine_of(img.node);
  img.partner = (img.node + cfg_.replica_offset) % nnodes();
  trace_event(img.node, "replicate",
              "begin img=" + std::to_string(id) + " to=" +
                  std::to_string(img.partner));
  if (transport_) {
    co_await transport_(img.node, img.partner, img.bytes);
  } else {
    co_await eng.delay(transfer_time(img.bytes, cfg_.replica_fallback_mbps));
  }
  img.replicated_at = eng.now();
  ++nodes_[img.node].replicas_made;
  trace_event(img.node, "replicate", "end img=" + std::to_string(id));
}

sim::Task<void> TieredStore::read_local(int node, Bytes bytes) {
  sim::Engine& eng = engine_of(node);
  NodeState& st = nodes_[node];
  const sim::Time start = std::max(eng.now(), st.disk_busy_until);
  const sim::Time done = start + transfer_time(bytes, cfg_.local_read_mbps);
  st.disk_busy_until = done;
  co_await eng.delay_until(done);
}

sim::Task<void> TieredStore::drain_service(int node) {
  sim::Engine& eng = engine_of(node);
  NodeState& st = nodes_[node];
  while (!st.drain_queue.empty()) {
    while (st.paused) co_await st.cv.wait();
    const std::uint64_t id = st.drain_queue.front();
    st.drain_queue.pop_front();
    st.draining = id;
    ImageInfo& img = st.images[seq_of_id(id) - 1];
    trace_event(node, "drain", "begin img=" + std::to_string(id));
    Bytes remaining = img.bytes;
    const Bytes chunk = chunk_bytes();
    while (remaining > 0) {
      while (st.paused) co_await st.cv.wait();
      const Bytes piece = std::min(chunk, remaining);
      // Each chunk is a real PFS write, so the drain contends with
      // foreground flows; pacing tops the rate out at drain_mbps.
      const sim::Time t0 = eng.now();
      co_await pfs_write_from(node, piece);
      const sim::Time target = transfer_time(piece, cfg_.drain_mbps);
      const sim::Time elapsed = eng.now() - t0;
      if (elapsed < target) co_await eng.delay(target - elapsed);
      remaining -= piece;
    }
    img.drained_at = eng.now();
    st.draining = 0;
    ++st.images_drained;
    trace_event(node, "drain", "end img=" + std::to_string(id));
    if (bus_ == nullptr) idle_cv_.notify_all();
  }
  st.drain_running = false;
  if (bus_ == nullptr) idle_cv_.notify_all();
}

void TieredStore::pause_drain(int node) { nodes_[node].paused = true; }

void TieredStore::resume_drain(int node) {
  NodeState& st = nodes_[node];
  st.paused = false;
  st.cv.notify_all();
}

int TieredStore::drain_tasks_running() const {
  int n = 0;
  for (const auto& st : nodes_) {
    if (st.drain_running) ++n;
  }
  return n;
}

int TieredStore::drain_backlog() const {
  int n = 0;
  for (const auto& st : nodes_) {
    n += static_cast<int>(st.drain_queue.size());
    if (st.draining != 0) ++n;  // the image currently in flight
  }
  return n;
}

sim::Task<void> TieredStore::quiesce() {
  // Bus-less (single-engine) callers only: sharded runs reach drain
  // completion by running the cluster to quiescence instead.
  for (;;) {
    bool busy = false;
    for (const auto& st : nodes_) {
      if (st.drain_running || !st.drain_queue.empty()) busy = true;
    }
    if (!busy) co_return;
    co_await idle_cv_.wait();
  }
}

}  // namespace gbc::storage
