#pragma once

// GF(256) arithmetic and a systematic Reed-Solomon codec for the diskless
// erasure tier (storage/erasure.hpp; DESIGN.md §14). The simulator charges
// *modelled* encode/decode time to the simulation clock, but the codec here
// is a real one — tests round-trip actual bytes through it, and the
// matrix-inversion path is exactly what the decode cost model prices.
//
// Layout: a (k+m) x k generator whose top k rows are the identity (data
// chunks pass through untouched) and whose bottom m rows are a Cauchy
// matrix C[i][j] = 1 / (x_i ^ y_j) with x_i = k + i, y_j = j. Every square
// submatrix of a Cauchy matrix is invertible, so any k of the k+m rows of
// [I; C] form an invertible system: any m chunk losses are recoverable.

#include <array>
#include <cstdint>
#include <vector>

#include "storage/storage.hpp"

namespace gbc::storage::gf256 {

/// Exp/log tables for GF(2^8) with the AES/ISA-L polynomial 0x11d,
/// generator 2. exp is doubled so mul can skip the mod-255 reduction.
struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint16_t, 256> log{};  // log[0] unused (log of 0 undefined)

  constexpr Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      exp[static_cast<std::size_t>(i) + 255] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    exp[510] = exp[255];
    exp[511] = exp[256];
  }
};

inline constexpr Tables kTables{};

inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kTables.exp[kTables.log[a] + kTables.log[b]];
}

inline std::uint8_t inv(std::uint8_t a) {
  // a^-1 = g^(255 - log a); precondition a != 0.
  return kTables.exp[255 - kTables.log[a]];
}

inline std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  return a == 0 ? 0 : mul(a, inv(b));
}

/// In-place Gauss-Jordan inversion of an n x n row-major matrix over
/// GF(256). Returns false (matrix contents unspecified) when singular.
inline bool invert_matrix(std::vector<std::uint8_t>& a, int n) {
  std::vector<std::uint8_t> inv_m(static_cast<std::size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) inv_m[static_cast<std::size_t>(i) * n + i] = 1;
  auto row = [n](std::vector<std::uint8_t>& mat, int r) {
    return mat.data() + static_cast<std::size_t>(r) * n;
  };
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (row(a, r)[col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;  // singular
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(row(a, pivot)[c], row(a, col)[c]);
        std::swap(row(inv_m, pivot)[c], row(inv_m, col)[c]);
      }
    }
    const std::uint8_t piv_inv = inv(row(a, col)[col]);
    for (int c = 0; c < n; ++c) {
      row(a, col)[c] = mul(row(a, col)[c], piv_inv);
      row(inv_m, col)[c] = mul(row(inv_m, col)[c], piv_inv);
    }
    for (int r = 0; r < n; ++r) {
      const std::uint8_t f = row(a, r)[col];
      if (r == col || f == 0) continue;
      for (int c = 0; c < n; ++c) {
        row(a, r)[c] ^= mul(f, row(a, col)[c]);
        row(inv_m, r)[c] ^= mul(f, row(inv_m, col)[c]);
      }
    }
  }
  a = std::move(inv_m);
  return true;
}

/// Systematic (k+m) x k generator: identity on top, Cauchy parity rows
/// below. m == 0 is allowed (identity only, no redundancy).
struct Codec {
  int k = 0;
  int m = 0;
  std::vector<std::uint8_t> rows;  // (k+m) x k row-major

  const std::uint8_t* row(int r) const {
    return rows.data() + static_cast<std::size_t>(r) * k;
  }
};

/// Builds the Cauchy-based codec. Requires 1 <= k, 0 <= m, k + m <= 256
/// (x_i = k+i and y_j = j must stay distinct GF(256) elements).
inline Codec make_codec(int k, int m) {
  Codec c;
  c.k = k;
  c.m = m;
  c.rows.assign(static_cast<std::size_t>(k + m) * k, 0);
  for (int i = 0; i < k; ++i) {
    c.rows[static_cast<std::size_t>(i) * k + i] = 1;
  }
  for (int i = 0; i < m; ++i) {
    std::uint8_t* row = c.rows.data() + static_cast<std::size_t>(k + i) * k;
    for (int j = 0; j < k; ++j) {
      row[j] = inv(static_cast<std::uint8_t>((k + i) ^ j));
    }
  }
  return c;
}

using Chunk = std::vector<std::uint8_t>;

/// Splits `data` into k equal chunks, zero-padding the tail.
inline std::vector<Chunk> split(const Chunk& data, int k) {
  const std::size_t chunk =
      data.empty() ? 0 : (data.size() + static_cast<std::size_t>(k) - 1) / k;
  std::vector<Chunk> out(static_cast<std::size_t>(k), Chunk(chunk, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i / chunk][i % chunk] = data[i];
  }
  return out;
}

/// Inverse of split() for a known original size.
inline Chunk join(const std::vector<Chunk>& chunks, std::size_t size) {
  Chunk out(size, 0);
  if (chunks.empty() || chunks[0].empty()) return out;
  const std::size_t chunk = chunks[0].size();
  for (std::size_t i = 0; i < size; ++i) out[i] = chunks[i / chunk][i % chunk];
  return out;
}

/// Encodes k data chunks into the full k+m chunk stripe (data chunks are
/// copied through; parity chunks are the Cauchy combinations).
inline std::vector<Chunk> encode(const Codec& c,
                                 const std::vector<Chunk>& data) {
  std::vector<Chunk> stripe(data.begin(), data.end());
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (int p = 0; p < c.m; ++p) {
    Chunk parity(len, 0);
    const std::uint8_t* row = c.row(c.k + p);
    for (int j = 0; j < c.k; ++j) {
      const std::uint8_t f = row[j];
      if (f == 0) continue;
      const Chunk& d = data[static_cast<std::size_t>(j)];
      for (std::size_t b = 0; b < len; ++b) parity[b] ^= mul(f, d[b]);
    }
    stripe.push_back(std::move(parity));
  }
  return stripe;
}

/// Recovers the k data chunks from any >= k surviving stripe chunks.
/// `stripe[i]` empty means chunk i was erased. Returns false when fewer
/// than k chunks survive or the selected submatrix is singular (impossible
/// for make_codec() matrices, reachable with a hand-built degenerate one).
inline bool decode(const Codec& c, const std::vector<Chunk>& stripe,
                   std::vector<Chunk>* data_out) {
  std::vector<int> have;
  for (int i = 0; i < c.k + c.m && static_cast<int>(have.size()) < c.k; ++i) {
    if (!stripe[static_cast<std::size_t>(i)].empty()) have.push_back(i);
  }
  if (static_cast<int>(have.size()) < c.k) return false;
  std::vector<std::uint8_t> sub(static_cast<std::size_t>(c.k) * c.k);
  for (int r = 0; r < c.k; ++r) {
    const std::uint8_t* row = c.row(have[static_cast<std::size_t>(r)]);
    std::copy(row, row + c.k, sub.begin() + static_cast<std::size_t>(r) * c.k);
  }
  if (!invert_matrix(sub, c.k)) return false;
  const std::size_t len = stripe[static_cast<std::size_t>(have[0])].size();
  data_out->assign(static_cast<std::size_t>(c.k), Chunk(len, 0));
  for (int d = 0; d < c.k; ++d) {
    Chunk& out = (*data_out)[static_cast<std::size_t>(d)];
    const std::uint8_t* row = sub.data() + static_cast<std::size_t>(d) * c.k;
    for (int r = 0; r < c.k; ++r) {
      const std::uint8_t f = row[r];
      if (f == 0) continue;
      const Chunk& s = stripe[static_cast<std::size_t>(have[r])];
      for (std::size_t b = 0; b < len; ++b) out[b] ^= mul(f, s[b]);
    }
  }
  return true;
}

}  // namespace gbc::storage::gf256
