#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::storage {

using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Converts a megabyte count to Bytes (binary megabytes, as used for
/// checkpoint image sizes throughout the paper's evaluation).
constexpr Bytes mib(double m) { return static_cast<Bytes>(m * kMiB); }

/// Parameters of the shared parallel file system (PVFS2 over IPoIB in the
/// paper's testbed). Calibrated so the model reproduces Figure 1: a single
/// client is limited by its own NIC/IPoIB stack, the servers saturate around
/// `aggregate_cap_mbps`, and aggregate throughput droops mildly once many
/// more clients than servers contend.
struct StorageConfig {
  int num_servers = 4;
  double per_client_cap_mbps = 108.0;  ///< one client's max write bandwidth
  double aggregate_cap_mbps = 140.0;   ///< server-side saturation throughput
  double congestion_alpha = 0.002;     ///< droop per client beyond the knee
  int congestion_knee = 4;             ///< clients before congestion starts
  double read_factor = 1.15;           ///< restore reads are a bit faster

  /// Per-file striping model. 0 (default) uses the pooled fair-share model;
  /// 1..num_servers stripes each file over that many servers (assigned
  /// round-robin), with per-server capacities and max-min fair (progressive
  /// filling) rate allocation — hotspots form when stripe_count <
  /// num_servers, as on a real PVFS2 deployment.
  int stripe_count = 0;

  /// Aggregate deliverable throughput (MB/s) with n concurrent clients.
  double aggregate_mbps(int n) const {
    if (n <= 0) return 0.0;
    double ramp = std::min(n * per_client_cap_mbps, aggregate_cap_mbps);
    double extra = n > congestion_knee ? n - congestion_knee : 0;
    return ramp / (1.0 + congestion_alpha * extra);
  }

  /// Fair share (MB/s) each of n concurrent clients obtains.
  double per_client_mbps(int n) const {
    return n <= 0 ? 0.0 : aggregate_mbps(n) / n;
  }
};

/// Central storage system with processor-sharing bandwidth allocation:
/// all in-flight transfers progress simultaneously at the current fair-share
/// rate, and rates are recomputed exactly at every arrival and departure.
/// This is the "storage bottleneck" of the paper: with N writers each gets
/// ~aggregate/N, so a full-job checkpoint takes ~N*S/aggregate.
class StorageSystem {
 public:
  StorageSystem(sim::Engine& eng, StorageConfig cfg);
  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  /// Writes `size` bytes (a checkpoint image); completes when fully stored.
  sim::Task<void> write(Bytes size) { return transfer(size, /*read=*/false); }
  /// Reads `size` bytes (a restart image).
  sim::Task<void> read(Bytes size) { return transfer(size, /*read=*/true); }

  const StorageConfig& config() const noexcept { return cfg_; }
  int active_flows() const noexcept { return static_cast<int>(flows_.size()); }
  int peak_concurrency() const noexcept { return peak_concurrency_; }
  std::int64_t completed_flows() const noexcept { return completed_flows_; }
  Bytes bytes_transferred() const noexcept { return bytes_transferred_; }
  /// Simulated time during which at least one flow was active.
  sim::Time busy_time() const noexcept;

  /// Current fair-share rate in bytes per second (0 if idle).
  double per_flow_rate_bps() const;

 private:
  struct Flow {
    double remaining;  // bytes left to move
    bool read;
    bool done = false;
    double rate_bps = 0;       // current allocation
    std::vector<int> servers;  // stripe targets (striped model only)
    sim::Condition cv;
    explicit Flow(sim::Engine& e, double bytes, bool rd)
        : remaining(bytes), read(rd), cv(e) {}
  };

  sim::Task<void> transfer(Bytes size, bool read);
  /// Applies progress since last_update_ to every flow at the current rate.
  void advance();
  /// Recomputes per-flow rates (pooled fair share, or max-min waterfilling
  /// over the stripe topology) and (re)schedules the next completion event.
  void reschedule();
  void recompute_rates();
  void on_completion_event(std::uint64_t generation);
  bool striped() const {
    return cfg_.stripe_count > 0 && cfg_.stripe_count < cfg_.num_servers;
  }

  sim::Engine& eng_;
  StorageConfig cfg_;
  std::list<std::shared_ptr<Flow>> flows_;
  int next_stripe_offset_ = 0;
  sim::Time last_update_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  int peak_concurrency_ = 0;
  std::int64_t completed_flows_ = 0;
  Bytes bytes_transferred_ = 0;
  sim::Time busy_accum_ = 0;
  sim::Time busy_since_ = 0;
};

}  // namespace gbc::storage
