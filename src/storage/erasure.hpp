#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "storage/storage.hpp"

namespace gbc::storage {

/// Which code protects the scattered chunks.
enum class ErasureCodec : std::uint8_t {
  /// GF(256) Reed-Solomon with a systematic Cauchy generator (gf256.hpp):
  /// survives any m concurrent chunk losses.
  kRs,
  /// Single XOR parity — the cheap path, only valid for m == 1.
  kXor,
};

const char* erasure_codec_name(ErasureCodec c);

/// Diskless erasure-coded memory tier (ReStore-style), layered on the
/// node-local staging tier: each checkpoint image is split into k data
/// chunks, encoded into m parity chunks, and the k+m chunk stripe is
/// scattered across a parity group of distinct remote nodes. Recovery then
/// needs no PFS read at all and survives m concurrent node losses.
/// Disabled by default: every existing experiment is bit-identical.
struct ErasureConfig {
  bool enabled = false;
  int k = 4;  ///< data chunks per image
  int m = 2;  ///< parity chunks (erasures survivable)
  ErasureCodec codec = ErasureCodec::kRs;
  /// Node spacing when walking the ring to pick the parity group; > 1
  /// spreads a group across racks/failure domains in stride steps.
  int group_stride = 1;

  // --- cost model (DESIGN.md §14) ---
  /// GF(256) multiply-accumulate throughput of one node's encoder (MB/s of
  /// parity produced per full-image pass); each parity chunk costs one
  /// pass, so RS encode time = image_bytes * m / encode_mbps.
  double encode_mbps = 2400.0;
  /// Plain-XOR throughput for the m=1 path (one pass over the image).
  double xor_mbps = 4000.0;
  /// Reconstruction throughput of a degraded read: each rebuilt byte is a
  /// k-term GF dot product, so decode time =
  /// chunk_bytes * data_erasures * k / decode_mbps.
  double decode_mbps = 1600.0;
  /// Cost of one GF op in the k x k Gauss-Jordan inversion that precedes
  /// reconstruction (~k^3 ops, nanoseconds each — priced, not rounded away).
  double invert_ns_per_gf_op = 4.0;

  /// Memory overhead of the stripe relative to the plain image.
  double overhead() const {
    return k > 0 ? static_cast<double>(k + m) / static_cast<double>(k) : 0.0;
  }
};

/// Per-image chunk ledger record: where each of the k+m chunks went and
/// when it landed. Lives inside TieredStore::ImageInfo so a detached
/// TierLedger can answer "still decodable given this dead-node set" after
/// the failed run is torn down.
struct ErasureChunks {
  int k = 0;  ///< 0 = image not erasure-coded
  int m = 0;
  Bytes chunk_bytes = 0;
  std::vector<int> nodes;          ///< holder of chunk i (size k+m)
  std::vector<sim::Time> done_at;  ///< chunk i landed, -1 in flight
  sim::Time encoded_at = -1;       ///< whole stripe placed

  bool active() const noexcept { return k > 0; }
};

/// The encode/placement half of the erasure tier. Owned by TieredStore and
/// driven entirely on the service LP's engine: chunk scatters ride the same
/// fabric bulk lanes as partner replication, so sharded runs stay
/// event-for-event identical to serial ones (DESIGN.md §14).
class ErasureTier {
 public:
  /// Same shape as TieredStore::Transport (fabric bulk_transfer).
  using Transport = std::function<sim::Task<void>(int src, int dst,
                                                  Bytes bytes)>;

  /// Throws std::invalid_argument on an unusable config (validate()).
  /// `eng` is unused since the partitioning (every operation takes the
  /// caller's engine); kept so existing construction sites stay valid.
  ErasureTier(sim::Engine& eng, ErasureConfig cfg, int nnodes,
              int replica_offset);

  /// Config sanity: k >= 1, m >= 0, stride >= 1, k+m <= 256 (GF(256)
  /// symbol limit), XOR only for m == 1, and k+m <= nnodes-1 so a parity
  /// group never needs the home node. Throws std::invalid_argument.
  static void validate(const ErasureConfig& cfg, int nnodes);

  const ErasureConfig& config() const noexcept { return cfg_; }
  int nnodes() const noexcept { return nnodes_; }

  /// The k+m chunk holders for images written on `node`, in chunk order:
  /// a stride walk of the ring that never lands on the home node, and
  /// avoids the would-be replica partner (node + replica_offset) whenever
  /// enough other nodes exist — losing the partner pair must not cost both
  /// the replica and a chunk.
  std::vector<int> parity_group(int node) const;

  Bytes chunk_bytes(Bytes image) const {
    return (image + cfg_.k - 1) / cfg_.k;
  }

  sim::Time encode_time(Bytes image) const {
    return encode_time(cfg_, image);
  }
  static sim::Time encode_time(const ErasureConfig& cfg, Bytes image);
  /// Degraded-read compute cost: Gauss-Jordan inversion of the k x k
  /// submatrix plus reconstruction of `data_erasures` missing data chunks.
  /// Zero when every data chunk survived (pass-through systematic read).
  static sim::Time decode_time(const ErasureConfig& cfg, Bytes image,
                               int data_erasures);

  void set_trace(sim::Trace* trace) { trace_ = trace; }

  /// Encodes `image` bytes on `node` (GF or XOR compute time on the
  /// simulation clock), then scatters the k+m chunks to the parity group in
  /// parallel over `transport` (falling back to `fallback_mbps` transfers
  /// when none is installed), recording per-chunk placement/completion into
  /// `out`. Resolves when the whole stripe is placed. `eng` is the home
  /// node's engine — in a partitioned TieredStore each node protects its
  /// own images on its home shard, so all bookkeeping lands in that node's
  /// stat slot.
  sim::Task<void> protect(sim::Engine& eng, int node, Bytes image,
                          std::uint64_t image_id, ErasureChunks* out,
                          const Transport& transport, double fallback_mbps);

  // --- stats (per-node slots, summed at quiescence) ---
  std::int64_t images_encoded() const noexcept {
    std::int64_t n = 0;
    for (const auto& s : stats_) n += s.images_encoded;
    return n;
  }
  std::int64_t chunks_placed() const noexcept {
    std::int64_t n = 0;
    for (const auto& s : stats_) n += s.chunks_placed;
    return n;
  }
  Bytes chunk_bytes_sent() const noexcept {
    Bytes n = 0;
    for (const auto& s : stats_) n += s.chunk_bytes_sent;
    return n;
  }

 private:
  /// Written only from the owning node's engine; aligned so two nodes'
  /// counters never share a cache line across shard threads.
  struct alignas(64) NodeStats {
    std::int64_t images_encoded = 0;
    std::int64_t chunks_placed = 0;
    Bytes chunk_bytes_sent = 0;
  };

  sim::Task<void> place_chunk(sim::Engine& eng, int node, int dst,
                              Bytes bytes, std::uint64_t image_id, int chunk,
                              ErasureChunks* out, const Transport& transport,
                              double fallback_mbps);

  ErasureConfig cfg_;
  int nnodes_;
  int replica_offset_;
  sim::Trace* trace_ = nullptr;
  std::vector<NodeStats> stats_;
};

}  // namespace gbc::storage
