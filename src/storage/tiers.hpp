#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "storage/erasure.hpp"
#include "storage/storage.hpp"

namespace gbc::storage {

class TierLedger;

/// Multi-level checkpoint staging knobs (FTI-style storage hierarchy in
/// front of the shared PFS). Disabled by default so every existing
/// experiment is bit-identical to the single-tier model.
struct TierConfig {
  bool enabled = false;

  /// Node-local tier (SSD/ramdisk): dedicated per-node bandwidth, no
  /// cross-node contention. Foreground snapshot writes land here.
  double local_write_mbps = 400.0;
  double local_read_mbps = 600.0;
  /// Per-node capacity (MiB). 0 = unbounded. Only images that finished
  /// draining to the PFS may be evicted to make room; when even eviction
  /// cannot free enough space, the write falls through to the PFS directly
  /// (paying the full shared-storage contention).
  double local_capacity_mib = 0.0;

  /// Background drain rate per node (MB/s) at which local images trickle to
  /// the shared PFS while computation continues. The actual rate is
  /// min(drain_mbps, this node's fair share of the PFS) since drain traffic
  /// moves through the real StorageSystem. 0 disables draining entirely
  /// (images stay local-only).
  double drain_mbps = 50.0;
  /// Drain granularity: each chunk is one PFS write, so foreground PFS
  /// traffic and the drain contend at chunk boundaries.
  double drain_chunk_mib = 16.0;

  /// Partner replication: each image is also copied to a buddy node over
  /// the fabric, so a single node loss cannot destroy the only copy.
  bool replicate = false;
  int replica_offset = 1;  ///< partner = (node + offset) % nnodes
  /// Fallback replica bandwidth (MB/s) used only when no fabric transport
  /// is installed (standalone storage tests).
  double replica_fallback_mbps = 1250.0;

  /// Diskless erasure coding: each image is additionally split into k data
  /// + m parity chunks scattered across a parity group of remote nodes
  /// (storage/erasure.hpp). Off by default.
  ErasureConfig erasure;
};

/// Duration of moving `bytes` at `mbps` (binary MB/s), in simulated time.
inline sim::Time transfer_time(Bytes bytes, double mbps) {
  if (mbps <= 0) return 0;
  return static_cast<sim::Time>(static_cast<double>(bytes) /
                                (mbps * static_cast<double>(kMiB)) *
                                static_cast<double>(sim::kSecond));
}

/// Node-local checkpoint tier in front of the shared StorageSystem, with a
/// background drain service per node and optional partner replication.
///
/// Every snapshot becomes a ledger entry (ImageInfo) recording where the
/// image lives and when each durability level was reached:
///   written_at     local copy complete (survives a job abort, not the node)
///   replicated_at  partner copy complete (survives losing the home node)
///   drained_at     PFS copy complete (survives anything)
/// Recovery reads this ledger to decide which checkpoint is restorable
/// after a node loss (harness/recovery.cpp; DESIGN.md §10).
class TieredStore {
 public:
  /// Copies `bytes` from node `src` to node `dst` over the interconnect.
  using Transport = std::function<sim::Task<void>(int src, int dst,
                                                  Bytes bytes)>;

  struct ImageInfo {
    std::uint64_t id = 0;  ///< ledger id, 1-based; 0 means "no image"
    int node = -1;
    Bytes bytes = 0;
    bool local = false;    ///< written to the local tier (vs PFS write-through)
    bool evicted = false;  ///< local copy dropped to make room
    int partner = -1;      ///< replica node, -1 when not replicated
    sim::Time written_at = -1;     ///< local (or write-through) completion
    sim::Time replicated_at = -1;  ///< partner copy completion, -1 pending
    sim::Time drained_at = -1;     ///< PFS durability instant, -1 pending
    ErasureChunks ec;              ///< chunk placement, inactive when k == 0
  };

  TieredStore(sim::Engine& eng, StorageSystem& pfs, TierConfig cfg,
              int nnodes);
  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  bool enabled() const noexcept { return cfg_.enabled; }
  const TierConfig& config() const noexcept { return cfg_; }
  int nnodes() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Replica copies go through this (the harness installs the fabric's
  /// bulk_transfer). Without one, replica_fallback_mbps is charged.
  void set_replica_transport(Transport t) { transport_ = std::move(t); }
  void set_trace(sim::Trace* trace) {
    trace_ = trace;
    if (erasure_) erasure_->set_trace(trace);
  }
  /// Non-null iff the erasure knob set is enabled (and the tier is).
  ErasureTier* erasure() const noexcept { return erasure_.get(); }

  /// Foreground snapshot write from `node`: local-tier write (plus partner
  /// replication when enabled), falling through to a direct PFS write when
  /// the local tier cannot make room. Resolves when the image is durable at
  /// checkpoint-completion level (local [+replica], or PFS for
  /// write-through); the drain to the PFS continues in the background.
  /// Returns the ledger id.
  sim::Task<std::uint64_t> snapshot(int node, Bytes bytes);

  /// Local restore read on `node` (dedicated bandwidth, serialized on the
  /// node's disk like writes).
  sim::Task<void> read_local(int node, Bytes bytes);

  /// Pauses / resumes node's background drain (between chunks).
  void pause_drain(int node);
  void resume_drain(int node);
  bool drain_paused(int node) const { return nodes_[node].paused; }

  /// Waits until every enqueued image has fully drained to the PFS (no-op
  /// when draining is disabled).
  sim::Task<void> quiesce();

  // --- ledger / durability queries (recovery) ---
  const std::deque<ImageInfo>& images() const noexcept { return images_; }
  /// Ledger ids are 1-based; nullptr for 0 / out-of-range.
  static const ImageInfo* find_in(const std::deque<ImageInfo>& images,
                                  std::uint64_t id) {
    return id >= 1 && id <= images.size() ? &images[id - 1] : nullptr;
  }
  const ImageInfo* find(std::uint64_t id) const {
    return find_in(images_, id);
  }
  /// Detached copy of the ledger that outlives the store (recovery keeps
  /// one after the failed simulation is torn down).
  TierLedger ledger() const;
  static bool local_available(const ImageInfo& img) {
    return img.local && !img.evicted;
  }
  static bool pfs_durable(const ImageInfo& img) { return img.drained_at >= 0; }
  /// Shared aliveness predicate for every remote-durability check below:
  /// nodes outside the set (or unset, -1) count as alive.
  static bool node_failed(int node, const std::vector<char>& failed_nodes) {
    return node >= 0 && node < static_cast<int>(failed_nodes.size()) &&
           failed_nodes[node];
  }
  /// Replica survives a set of dead nodes (multi-failure recovery) only if
  /// the partner node is not in the set.
  static bool replica_available(const ImageInfo& img,
                                const std::vector<char>& failed_nodes) {
    return img.replicated_at >= 0 && !node_failed(img.partner, failed_nodes);
  }
  static bool replica_available(const ImageInfo& img, int failed_node) {
    std::vector<char> failed(
        failed_node >= 0 ? static_cast<std::size_t>(failed_node) + 1 : 0, 0);
    if (failed_node >= 0) failed[static_cast<std::size_t>(failed_node)] = 1;
    return replica_available(img, failed);
  }
  /// The erasure stripe is decodable when at least k placed chunks sit on
  /// nodes outside the dead set (same predicate as replica_available).
  static bool erasure_decodable(const ImageInfo& img,
                                const std::vector<char>& failed_nodes) {
    if (!img.ec.active()) return false;
    int alive = 0;
    for (std::size_t c = 0; c < img.ec.nodes.size(); ++c) {
      if (img.ec.done_at[c] >= 0 &&
          !node_failed(img.ec.nodes[c], failed_nodes)) {
        ++alive;
      }
    }
    return alive >= img.ec.k;
  }

  // --- stats ---
  Bytes local_used(int node) const { return nodes_[node].used; }
  std::int64_t write_throughs() const noexcept { return write_throughs_; }
  std::int64_t images_drained() const noexcept { return images_drained_; }
  std::int64_t images_evicted() const noexcept { return images_evicted_; }
  std::int64_t replicas_made() const noexcept { return replicas_made_; }
  std::int64_t images_encoded() const noexcept {
    return erasure_ ? erasure_->images_encoded() : 0;
  }
  std::int64_t ec_chunks_placed() const noexcept {
    return erasure_ ? erasure_->chunks_placed() : 0;
  }
  /// Images still waiting for (or in) the drain across all nodes.
  int drain_backlog() const;
  /// Drain service coroutines currently alive (they are detached engine
  /// processes; periodic checkpoint drivers must not count them as
  /// application activity).
  int drain_tasks_running() const;

 private:
  struct NodeState {
    explicit NodeState(sim::Engine& eng) : cv(eng) {}
    Bytes used = 0;               // resident (non-evicted) local image bytes
    sim::Time disk_busy_until = 0;
    std::deque<std::uint64_t> drain_queue;
    std::uint64_t draining = 0;  // image currently being drained, 0 if none
    bool drain_running = false;
    bool paused = false;
    sim::Condition cv;  // pause/resume wakeups
  };

  sim::Task<void> drain_service(int node);
  sim::Task<void> replicate_image(std::uint64_t id);
  /// Frees drained images until `need` more bytes fit; false if impossible.
  bool make_room(int node, Bytes need);
  Bytes capacity() const {
    return cfg_.local_capacity_mib > 0 ? mib(cfg_.local_capacity_mib) : 0;
  }
  Bytes chunk_bytes() const {
    const Bytes c = mib(cfg_.drain_chunk_mib);
    return c > 0 ? c : kMiB;
  }
  void trace_event(int node, const char* category, std::string detail);

  sim::Engine& eng_;
  StorageSystem& pfs_;
  TierConfig cfg_;
  Transport transport_;
  std::unique_ptr<ErasureTier> erasure_;
  sim::Trace* trace_ = nullptr;
  std::deque<NodeState> nodes_;  // deque: Condition is immovable
  std::deque<ImageInfo> images_;  // deque: stable refs across coroutine waits
  sim::Condition idle_cv_;
  std::int64_t write_throughs_ = 0;
  std::int64_t images_drained_ = 0;
  std::int64_t images_evicted_ = 0;
  std::int64_t replicas_made_ = 0;
};

/// Value-type snapshot of a TieredStore's durability ledger. Recovery holds
/// one across simulations: the failed run's store (and engine) are gone by
/// the time restore sources are chosen, and under multiple failures the
/// same ledger is re-queried with a growing set of dead nodes.
class TierLedger {
 public:
  TierLedger() = default;
  explicit TierLedger(std::deque<TieredStore::ImageInfo> images)
      : images_(std::move(images)) {}

  bool empty() const noexcept { return images_.empty(); }
  std::size_t size() const noexcept { return images_.size(); }
  const std::deque<TieredStore::ImageInfo>& images() const noexcept {
    return images_;
  }
  /// Ledger ids are 1-based; nullptr for 0 / out-of-range.
  const TieredStore::ImageInfo* find(std::uint64_t id) const {
    return TieredStore::find_in(images_, id);
  }

 private:
  std::deque<TieredStore::ImageInfo> images_;
};

inline TierLedger TieredStore::ledger() const { return TierLedger(images_); }

}  // namespace gbc::storage
