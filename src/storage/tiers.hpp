#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/lp_bus.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "storage/erasure.hpp"
#include "storage/storage.hpp"

namespace gbc::storage {

class TierLedger;

/// Multi-level checkpoint staging knobs (FTI-style storage hierarchy in
/// front of the shared PFS). Disabled by default so every existing
/// experiment is bit-identical to the single-tier model.
struct TierConfig {
  bool enabled = false;

  /// Node-local tier (SSD/ramdisk): dedicated per-node bandwidth, no
  /// cross-node contention. Foreground snapshot writes land here.
  double local_write_mbps = 400.0;
  double local_read_mbps = 600.0;
  /// Per-node capacity (MiB). 0 = unbounded. Only images that finished
  /// draining to the PFS may be evicted to make room; when even eviction
  /// cannot free enough space, the write falls through to the PFS directly
  /// (paying the full shared-storage contention).
  double local_capacity_mib = 0.0;

  /// Background drain rate per node (MB/s) at which local images trickle to
  /// the shared PFS while computation continues. The actual rate is
  /// min(drain_mbps, this node's fair share of the PFS) since drain traffic
  /// moves through the real StorageSystem. 0 disables draining entirely
  /// (images stay local-only).
  double drain_mbps = 50.0;
  /// Drain granularity: each chunk is one PFS write, so foreground PFS
  /// traffic and the drain contend at chunk boundaries.
  double drain_chunk_mib = 16.0;

  /// Partner replication: each image is also copied to a buddy node over
  /// the fabric, so a single node loss cannot destroy the only copy.
  bool replicate = false;
  int replica_offset = 1;  ///< partner = (node + offset) % nnodes
  /// Fallback replica bandwidth (MB/s) used only when no fabric transport
  /// is installed (standalone storage tests).
  double replica_fallback_mbps = 1250.0;

  /// Diskless erasure coding: each image is additionally split into k data
  /// + m parity chunks scattered across a parity group of remote nodes
  /// (storage/erasure.hpp). Off by default.
  ErasureConfig erasure;
};

/// Duration of moving `bytes` at `mbps` (binary MB/s), in simulated time.
inline sim::Time transfer_time(Bytes bytes, double mbps) {
  if (mbps <= 0) return 0;
  return static_cast<sim::Time>(static_cast<double>(bytes) /
                                (mbps * static_cast<double>(kMiB)) *
                                static_cast<double>(sim::kSecond));
}

/// Node-local checkpoint tier in front of the shared StorageSystem, with a
/// background drain service per node and optional partner replication.
///
/// Every snapshot becomes a ledger entry (ImageInfo) recording where the
/// image lives and when each durability level was reached:
///   written_at     local copy complete (survives a job abort, not the node)
///   replicated_at  partner copy complete (survives losing the home node)
///   drained_at     PFS copy complete (survives anything)
/// Recovery reads this ledger to decide which checkpoint is restorable
/// after a node loss (harness/recovery.cpp; DESIGN.md §10).
///
/// The store is *partitioned by node* (DESIGN.md §15): each node owns its
/// ledger shard, staging-disk schedule, drain queue, and stat slots, and —
/// when an LpBus is attached — all of a node's tier work (foreground write,
/// drain pacing, replica/erasure scatter) runs on that node's home shard
/// engine. Only the shared PFS stays central: every PFS leg is routed to the
/// service LP by message, so PFS arbitration order is canonical at any shard
/// count. Without a bus (standalone storage tests) everything runs on the
/// single constructor engine, same as before the partitioning.
class TieredStore {
 public:
  /// Copies `bytes` from node `src` to node `dst` over the interconnect.
  using Transport = std::function<sim::Task<void>(int src, int dst,
                                                  Bytes bytes)>;

  struct ImageInfo {
    std::uint64_t id = 0;  ///< node-encoded ledger id; 0 means "no image"
    int node = -1;
    Bytes bytes = 0;
    bool local = false;    ///< written to the local tier (vs PFS write-through)
    bool evicted = false;  ///< local copy dropped to make room
    int partner = -1;      ///< replica node, -1 when not replicated
    sim::Time written_at = -1;     ///< local (or write-through) completion
    sim::Time replicated_at = -1;  ///< partner copy completion, -1 pending
    sim::Time drained_at = -1;     ///< PFS durability instant, -1 pending
    ErasureChunks ec;              ///< chunk placement, inactive when k == 0
  };

  /// With a bus, node i's partition lives on LP i's home shard (node ids and
  /// rank LP ids coincide in the harness) and PFS legs become RPCs to the
  /// service LP. `eng` is then only the fallback engine for bus-less use.
  TieredStore(sim::Engine& eng, StorageSystem& pfs, TierConfig cfg,
              int nnodes, sim::LpBus* bus = nullptr);
  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  bool enabled() const noexcept { return cfg_.enabled; }
  const TierConfig& config() const noexcept { return cfg_; }
  int nnodes() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Replica copies go through this (the harness installs the fabric's
  /// bulk_transfer). Without one, replica_fallback_mbps is charged.
  void set_replica_transport(Transport t) { transport_ = std::move(t); }
  void set_trace(sim::Trace* trace) {
    trace_ = trace;
    if (erasure_) erasure_->set_trace(trace);
  }
  /// Non-null iff the erasure knob set is enabled (and the tier is).
  ErasureTier* erasure() const noexcept { return erasure_.get(); }

  /// Foreground snapshot write from `node`: local-tier write (plus partner
  /// replication when enabled), falling through to a direct PFS write when
  /// the local tier cannot make room. Resolves when the image is durable at
  /// checkpoint-completion level (local [+replica], or PFS for
  /// write-through); the drain to the PFS continues in the background.
  /// Returns the ledger id. Must be called on `node`'s engine (rank LP).
  sim::Task<std::uint64_t> snapshot(int node, Bytes bytes);

  /// Local restore read on `node` (dedicated bandwidth, serialized on the
  /// node's disk like writes). Must be called on `node`'s engine.
  sim::Task<void> read_local(int node, Bytes bytes);

  /// Pauses / resumes node's background drain (between chunks). Pure state
  /// flips on node-owned slots: callers route them to the node's shard.
  void pause_drain(int node);
  void resume_drain(int node);
  bool drain_paused(int node) const { return nodes_[node].paused; }

  /// Waits until every enqueued image has fully drained to the PFS (no-op
  /// when draining is disabled). Single-engine (bus-less) use only.
  sim::Task<void> quiesce();

  // --- ledger / durability queries (recovery) ---
  /// Ledger ids encode (node, per-node sequence): the partitioned shards
  /// stay independently appendable on their home engines while ids remain
  /// globally resolvable. 0 stays "no image".
  static constexpr int kIdNodeShift = 40;
  static int node_of_id(std::uint64_t id) noexcept {
    return static_cast<int>(id >> kIdNodeShift) - 1;
  }
  static std::uint64_t seq_of_id(std::uint64_t id) noexcept {
    return id & ((std::uint64_t{1} << kIdNodeShift) - 1);
  }
  /// Resolves an id against the owning node's partition; nullptr for 0 /
  /// unknown. Safe from any engine once that image's writer has synced with
  /// the reader (recovery reads after the run; cycle code reads its own).
  const ImageInfo* find(std::uint64_t id) const {
    const int node = node_of_id(id);
    if (node < 0 || node >= nnodes()) return nullptr;
    const std::uint64_t seq = seq_of_id(id);
    const auto& part = nodes_[node].images;
    return seq >= 1 && seq <= part.size() ? &part[seq - 1] : nullptr;
  }
  /// Detached copy of the ledger that outlives the store (recovery keeps
  /// one after the failed simulation is torn down). Gathers the per-node
  /// partitions in node order; only call when the run is quiescent.
  TierLedger ledger() const;
  static bool local_available(const ImageInfo& img) {
    return img.local && !img.evicted;
  }
  static bool pfs_durable(const ImageInfo& img) { return img.drained_at >= 0; }
  /// Shared aliveness predicate for every remote-durability check below:
  /// nodes outside the set (or unset, -1) count as alive.
  static bool node_failed(int node, const std::vector<char>& failed_nodes) {
    return node >= 0 && node < static_cast<int>(failed_nodes.size()) &&
           failed_nodes[node];
  }
  /// Replica survives a set of dead nodes (multi-failure recovery) only if
  /// the partner node is not in the set.
  static bool replica_available(const ImageInfo& img,
                                const std::vector<char>& failed_nodes) {
    return img.replicated_at >= 0 && !node_failed(img.partner, failed_nodes);
  }
  static bool replica_available(const ImageInfo& img, int failed_node) {
    std::vector<char> failed(
        failed_node >= 0 ? static_cast<std::size_t>(failed_node) + 1 : 0, 0);
    if (failed_node >= 0) failed[static_cast<std::size_t>(failed_node)] = 1;
    return replica_available(img, failed);
  }
  /// The erasure stripe is decodable when at least k placed chunks sit on
  /// nodes outside the dead set (same predicate as replica_available).
  static bool erasure_decodable(const ImageInfo& img,
                                const std::vector<char>& failed_nodes) {
    if (!img.ec.active()) return false;
    int alive = 0;
    for (std::size_t c = 0; c < img.ec.nodes.size(); ++c) {
      if (img.ec.done_at[c] >= 0 &&
          !node_failed(img.ec.nodes[c], failed_nodes)) {
        ++alive;
      }
    }
    return alive >= img.ec.k;
  }

  // --- stats (per-node slots, summed at quiescence) ---
  Bytes local_used(int node) const { return nodes_[node].used; }
  std::int64_t write_throughs() const noexcept {
    return sum_nodes(&NodeState::write_throughs);
  }
  std::int64_t images_drained() const noexcept {
    return sum_nodes(&NodeState::images_drained);
  }
  std::int64_t images_evicted() const noexcept {
    return sum_nodes(&NodeState::images_evicted);
  }
  std::int64_t replicas_made() const noexcept {
    return sum_nodes(&NodeState::replicas_made);
  }
  std::int64_t images_encoded() const noexcept {
    return erasure_ ? erasure_->images_encoded() : 0;
  }
  std::int64_t ec_chunks_placed() const noexcept {
    return erasure_ ? erasure_->chunks_placed() : 0;
  }
  /// Images still waiting for (or in) the drain across all nodes.
  int drain_backlog() const;
  /// Drain service coroutines currently alive (they are detached engine
  /// processes; periodic checkpoint drivers must not count them as
  /// application activity).
  int drain_tasks_running() const;

 private:
  /// One node's partition of the store: ledger shard, staging-disk
  /// schedule, drain queue, and stat slots, all owned by the node's home
  /// shard engine when a bus is attached. Cache-line aligned so two nodes'
  /// hot counters never share a line across shard threads.
  struct alignas(64) NodeState {
    explicit NodeState(sim::Engine& eng) : cv(eng) {}
    Bytes used = 0;               // resident (non-evicted) local image bytes
    sim::Time disk_busy_until = 0;
    std::deque<std::uint64_t> drain_queue;
    std::uint64_t draining = 0;  // image currently being drained, 0 if none
    bool drain_running = false;
    bool paused = false;
    sim::Condition cv;  // pause/resume wakeups (on the node's engine)
    std::deque<ImageInfo> images;  // ledger shard; stable refs across waits
    std::uint64_t next_seq = 0;    // per-node id sequence (1-based)
    std::int64_t write_throughs = 0;
    std::int64_t images_drained = 0;
    std::int64_t images_evicted = 0;
    std::int64_t replicas_made = 0;
  };

  sim::Engine& engine_of(int node) const {
    return bus_ != nullptr ? bus_->engine_of(node) : eng_;
  }
  /// The one shared resource: PFS writes are arbitrated on the service LP,
  /// so their interleaving is canonical at any shard count.
  sim::Task<void> pfs_write_from(int node, Bytes bytes);
  ImageInfo* find_mut(std::uint64_t id) {
    return const_cast<ImageInfo*>(find(id));
  }
  std::int64_t sum_nodes(std::int64_t NodeState::* slot) const {
    std::int64_t n = 0;
    for (const auto& st : nodes_) n += st.*slot;
    return n;
  }

  sim::Task<void> drain_service(int node);
  sim::Task<void> replicate_image(std::uint64_t id);
  /// Frees drained images until `need` more bytes fit; false if impossible.
  bool make_room(int node, Bytes need);
  Bytes capacity() const {
    return cfg_.local_capacity_mib > 0 ? mib(cfg_.local_capacity_mib) : 0;
  }
  Bytes chunk_bytes() const {
    const Bytes c = mib(cfg_.drain_chunk_mib);
    return c > 0 ? c : kMiB;
  }
  void trace_event(int node, const char* category, std::string detail);

  sim::Engine& eng_;   // fallback engine when no bus is attached
  StorageSystem& pfs_;
  TierConfig cfg_;
  sim::LpBus* bus_ = nullptr;
  Transport transport_;
  std::unique_ptr<ErasureTier> erasure_;
  sim::Trace* trace_ = nullptr;
  std::deque<NodeState> nodes_;  // deque: Condition is immovable
  sim::Condition idle_cv_;       // quiesce() wakeups; bus-less mode only
};

/// Value-type snapshot of a TieredStore's durability ledger. Recovery holds
/// one across simulations: the failed run's store (and engine) are gone by
/// the time restore sources are chosen, and under multiple failures the
/// same ledger is re-queried with a growing set of dead nodes. The images
/// sit flat in (node, per-node sequence) order — the gather of the per-node
/// partitions — and lookups resolve node-encoded ids by scan.
class TierLedger {
 public:
  TierLedger() = default;
  explicit TierLedger(std::deque<TieredStore::ImageInfo> images)
      : images_(std::move(images)) {}

  bool empty() const noexcept { return images_.empty(); }
  std::size_t size() const noexcept { return images_.size(); }
  const std::deque<TieredStore::ImageInfo>& images() const noexcept {
    return images_;
  }
  const TieredStore::ImageInfo* find(std::uint64_t id) const {
    if (id == 0) return nullptr;
    for (const auto& img : images_) {
      if (img.id == id) return &img;
    }
    return nullptr;
  }

 private:
  std::deque<TieredStore::ImageInfo> images_;
};

inline TierLedger TieredStore::ledger() const {
  std::deque<ImageInfo> flat;
  for (const auto& st : nodes_) {
    flat.insert(flat.end(), st.images.begin(), st.images.end());
  }
  return TierLedger(std::move(flat));
}

}  // namespace gbc::storage
