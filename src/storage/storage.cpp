#include "storage/storage.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gbc::storage {

namespace {
// Bandwidths are quoted in "MB/s" like the paper; internally one MB is one
// MiB so checkpoint-image sizes and rates use the same unit.
constexpr double kBytesPerMb = static_cast<double>(kMiB);
}  // namespace

StorageSystem::StorageSystem(sim::Engine& eng, StorageConfig cfg)
    : eng_(eng), cfg_(cfg) {}

sim::Time StorageSystem::busy_time() const noexcept {
  return busy_accum_ + (flows_.empty() ? 0 : eng_.now() - busy_since_);
}

double StorageSystem::per_flow_rate_bps() const {
  const int n = active_flows();
  return cfg_.per_client_mbps(n) * kBytesPerMb;
}

void StorageSystem::recompute_rates() {
  const int n = active_flows();
  if (n == 0) return;
  if (!striped()) {
    // Pooled model: symmetric fair share of the aggregate.
    const double share = cfg_.per_client_mbps(n) * kBytesPerMb;
    for (auto& f : flows_) {
      f->rate_bps = share * (f->read ? cfg_.read_factor : 1.0);
    }
    return;
  }
  // Striped model: max-min fair allocation (progressive filling) subject to
  // per-server capacities and the per-client cap. A flow spreads its rate
  // evenly over its stripe servers.
  const double total = cfg_.aggregate_mbps(n) * kBytesPerMb;
  const double server_cap = total / cfg_.num_servers;
  std::vector<double> server_load(cfg_.num_servers, 0.0);
  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& f : flows_) {
    f->rate_bps = 0;
    unfrozen.push_back(f.get());
  }
  constexpr double kEps = 1e-6;
  while (!unfrozen.empty()) {
    std::vector<double> slope(cfg_.num_servers, 0.0);
    for (Flow* f : unfrozen) {
      for (int s : f->servers) {
        slope[s] += 1.0 / static_cast<double>(f->servers.size());
      }
    }
    double step = std::numeric_limits<double>::infinity();
    for (int s = 0; s < cfg_.num_servers; ++s) {
      if (slope[s] > 0) {
        step = std::min(step, (server_cap - server_load[s]) / slope[s]);
      }
    }
    for (Flow* f : unfrozen) {
      const double cap =
          cfg_.per_client_cap_mbps * kBytesPerMb *
          (f->read ? cfg_.read_factor : 1.0);
      step = std::min(step, cap - f->rate_bps);
    }
    if (!std::isfinite(step) || step < 0) break;
    for (Flow* f : unfrozen) {
      f->rate_bps += step;
      for (int s : f->servers) {
        server_load[s] += step / static_cast<double>(f->servers.size());
      }
    }
    // Freeze flows at their client cap or touching a saturated server.
    std::vector<Flow*> still;
    for (Flow* f : unfrozen) {
      const double cap =
          cfg_.per_client_cap_mbps * kBytesPerMb *
          (f->read ? cfg_.read_factor : 1.0);
      bool frozen = f->rate_bps >= cap - kEps;
      for (int s : f->servers) {
        if (server_load[s] >= server_cap - kEps) frozen = true;
      }
      if (!frozen) still.push_back(f);
    }
    if (still.size() == unfrozen.size()) break;  // numerical safety
    unfrozen.swap(still);
  }
}

void StorageSystem::advance() {
  const sim::Time now = eng_.now();
  const sim::Time dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0 || flows_.empty()) return;
  const double seconds = sim::to_seconds(dt);
  for (auto& f : flows_) f->remaining -= f->rate_bps * seconds;
}

void StorageSystem::reschedule() {
  ++generation_;
  if (flows_.empty()) return;
  recompute_rates();
  double earliest_s = -1.0;
  for (const auto& f : flows_) {
    const double left = std::max(f->remaining, 0.0);
    const double secs = f->rate_bps > 0 ? left / f->rate_bps : 0.0;
    if (earliest_s < 0 || secs < earliest_s) earliest_s = secs;
  }
  const auto dt = static_cast<sim::Time>(
      std::ceil(earliest_s * static_cast<double>(sim::kSecond)));
  const std::uint64_t gen = generation_;
  eng_.schedule_after(std::max<sim::Time>(dt, 0),
                      [this, gen] { on_completion_event(gen); });
}

void StorageSystem::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a set change
  advance();
  bool removed = false;
  for (auto it = flows_.begin(); it != flows_.end();) {
    auto& f = **it;
    if (f.remaining <= 0.5) {
      f.done = true;
      f.cv.notify_all();
      ++completed_flows_;
      it = flows_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (removed && flows_.empty()) busy_accum_ += eng_.now() - busy_since_;
  reschedule();
}

sim::Task<void> StorageSystem::transfer(Bytes size, bool read) {
  if (size <= 0) co_return;
  bytes_transferred_ += size;
  advance();
  auto flow = std::make_shared<Flow>(eng_, static_cast<double>(size), read);
  if (striped()) {
    for (int k = 0; k < cfg_.stripe_count; ++k) {
      flow->servers.push_back((next_stripe_offset_ + k) % cfg_.num_servers);
    }
    next_stripe_offset_ = (next_stripe_offset_ + 1) % cfg_.num_servers;
  }
  if (flows_.empty()) busy_since_ = eng_.now();
  flows_.push_back(flow);
  peak_concurrency_ = std::max(peak_concurrency_, active_flows());
  reschedule();
  while (!flow->done) co_await flow->cv.wait();
}

}  // namespace gbc::storage
