#include "storage/erasure.hpp"

#include <stdexcept>
#include <string>

#include "sim/join.hpp"
#include "storage/tiers.hpp"

namespace gbc::storage {

const char* erasure_codec_name(ErasureCodec c) {
  return c == ErasureCodec::kXor ? "xor" : "rs";
}

void ErasureTier::validate(const ErasureConfig& cfg, int nnodes) {
  if (cfg.k < 1) throw std::invalid_argument("erasure: k must be >= 1");
  if (cfg.m < 0) throw std::invalid_argument("erasure: m must be >= 0");
  if (cfg.group_stride < 1) {
    throw std::invalid_argument("erasure: group_stride must be >= 1");
  }
  if (cfg.k + cfg.m > 256) {
    throw std::invalid_argument(
        "erasure: k+m must be <= 256 (GF(256) symbol limit)");
  }
  if (cfg.codec == ErasureCodec::kXor && cfg.m != 1) {
    throw std::invalid_argument("erasure: the xor codec requires m == 1");
  }
  if (cfg.k + cfg.m > nnodes - 1) {
    throw std::invalid_argument(
        "erasure: k+m chunks need k+m distinct nodes besides the home node "
        "(k+m <= nnodes-1); got k+m=" +
        std::to_string(cfg.k + cfg.m) + " with " + std::to_string(nnodes) +
        " nodes");
  }
}

ErasureTier::ErasureTier(sim::Engine& eng, ErasureConfig cfg, int nnodes,
                         int replica_offset)
    : cfg_(cfg), nnodes_(nnodes), replica_offset_(replica_offset) {
  (void)eng;
  validate(cfg_, nnodes_);
  stats_.resize(static_cast<std::size_t>(nnodes_));
}

std::vector<int> ErasureTier::parity_group(int node) const {
  const int n = nnodes_;
  const int want = cfg_.k + cfg_.m;
  const int partner = (node + replica_offset_) % n;
  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(want));
  std::vector<char> taken(static_cast<std::size_t>(n), 0);
  taken[static_cast<std::size_t>(node)] = 1;  // never the home node
  // Two passes over the candidate walk: first skipping the replica
  // partner, then (only if the cluster is too small to afford that)
  // admitting it. The walk itself is the stride ring followed by a linear
  // sweep, so non-coprime strides still cover every node.
  for (int pass = 0; pass < 2 && static_cast<int>(group.size()) < want;
       ++pass) {
    auto consider = [&](int cand) {
      if (static_cast<int>(group.size()) >= want) return;
      if (taken[static_cast<std::size_t>(cand)]) return;
      if (pass == 0 && cand == partner && n - 2 >= want) return;
      taken[static_cast<std::size_t>(cand)] = 1;
      group.push_back(cand);
    };
    for (int s = 1; s < n; ++s) consider((node + s * cfg_.group_stride) % n);
    for (int s = 1; s < n; ++s) consider((node + s) % n);
  }
  return group;
}

sim::Time ErasureTier::encode_time(const ErasureConfig& cfg, Bytes image) {
  if (cfg.codec == ErasureCodec::kXor) {
    return transfer_time(image, cfg.xor_mbps);
  }
  return transfer_time(image * cfg.m, cfg.encode_mbps);
}

sim::Time ErasureTier::decode_time(const ErasureConfig& cfg, Bytes image,
                                   int data_erasures) {
  if (data_erasures <= 0) return 0;
  const Bytes chunk = (image + cfg.k - 1) / cfg.k;
  const Bytes rebuilt = chunk * data_erasures * cfg.k;
  if (cfg.codec == ErasureCodec::kXor) {
    return transfer_time(rebuilt, cfg.xor_mbps);
  }
  const double k3 = static_cast<double>(cfg.k) * cfg.k * cfg.k;
  const auto invert = static_cast<sim::Time>(k3 * cfg.invert_ns_per_gf_op *
                                             (sim::kMicrosecond / 1000.0));
  return invert + transfer_time(rebuilt, cfg.decode_mbps);
}

sim::Task<void> ErasureTier::place_chunk(sim::Engine& eng, int node, int dst,
                                         Bytes bytes, std::uint64_t image_id,
                                         int chunk, ErasureChunks* out,
                                         const Transport& transport,
                                         double fallback_mbps) {
  if (transport) {
    co_await transport(node, dst, bytes);
  } else {
    co_await eng.delay(transfer_time(bytes, fallback_mbps));
  }
  out->done_at[static_cast<std::size_t>(chunk)] = eng.now();
  NodeStats& st = stats_[static_cast<std::size_t>(node)];
  ++st.chunks_placed;
  st.chunk_bytes_sent += bytes;
  if (trace_) {
    trace_->add(eng.now(), node, "ec-chunk",
                "img=" + std::to_string(image_id) + " c=" +
                    std::to_string(chunk) + " to=" + std::to_string(dst));
  }
}

sim::Task<void> ErasureTier::protect(sim::Engine& eng, int node, Bytes image,
                                     std::uint64_t image_id,
                                     ErasureChunks* out,
                                     const Transport& transport,
                                     double fallback_mbps) {
  out->k = cfg_.k;
  out->m = cfg_.m;
  out->chunk_bytes = chunk_bytes(image);
  out->nodes = parity_group(node);
  out->done_at.assign(out->nodes.size(), -1);
  if (trace_) {
    trace_->add(eng.now(), node, "ec-encode",
                "begin img=" + std::to_string(image_id) + " " +
                    erasure_codec_name(cfg_.codec) + "(" +
                    std::to_string(cfg_.k) + "," + std::to_string(cfg_.m) +
                    ")");
  }
  // The frozen rank computes the parity chunks...
  co_await eng.delay(encode_time(image));
  // ...then the stripe fans out to the parity group concurrently; the home
  // node's single staging lane serializes the actual wire occupancy.
  sim::JoinSet scatter(eng);
  for (std::size_t c = 0; c < out->nodes.size(); ++c) {
    scatter.launch(place_chunk(eng, node, out->nodes[c], out->chunk_bytes,
                               image_id, static_cast<int>(c), out, transport,
                               fallback_mbps));
  }
  co_await scatter.join();
  out->encoded_at = eng.now();
  ++stats_[static_cast<std::size_t>(node)].images_encoded;
  if (trace_) {
    trace_->add(eng.now(), node, "ec-encode",
                "end img=" + std::to_string(image_id));
  }
}

}  // namespace gbc::storage
