#pragma once

// Internal glue between the protocol registry and the per-protocol
// translation units. Not installed into any public include path on purpose:
// everything outside src/ckpt goes through protocol_runner().

#include <memory>

#include "ckpt/protocol.hpp"

namespace gbc::ckpt::detail {

std::unique_ptr<ProtocolRunner> make_blocking_runner();
std::unique_ptr<ProtocolRunner> make_group_runner();
std::unique_ptr<ProtocolRunner> make_chandy_lamport_runner();
std::unique_ptr<ProtocolRunner> make_uncoordinated_runner();

/// The phase-structured group schedule shared by the blocking and
/// group-based protocols (defined in protocol_group.cpp): global fan-out,
/// then each group of gc.plan runs quiesce → drain/teardown → snapshot →
/// resume → rebuild in turn, advancing the recovery line group by group.
/// The blocking protocol is the degenerate single-group instance.
sim::Task<void> run_group_schedule(CycleContext& ctx);

}  // namespace gbc::ckpt::detail
