#pragma once

#include "mpi/minimpi.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {

/// Pessimistic sender-based message logging, the price of uncoordinated
/// checkpointing (paper Sec. 1/2.1/4.3): every payload is copied into a log
/// before it may be sent, and zero-copy rendezvous must be disabled because
/// the library has to see the data. Both costs land on the failure-free
/// critical path — that is the overhead the paper's design avoids.
class SenderLogger : public mpi::MpiHooks {
 public:
  /// log_bandwidth_mbps: rate at which payloads can be copied into the log
  /// (memory copy, possibly with a spill to local buffers).
  explicit SenderLogger(double log_bandwidth_mbps = 1200.0)
      : log_mbps_(log_bandwidth_mbps) {}

  sim::Time send_tax(int /*src*/, int /*dst*/, storage::Bytes b) override {
    logged_bytes_ += b;
    ++logged_messages_;
    const double bps = log_mbps_ * static_cast<double>(storage::kMiB);
    return static_cast<sim::Time>(static_cast<double>(b) / bps *
                                  static_cast<double>(sim::kSecond));
  }

  bool disable_zero_copy() const override { return true; }

  storage::Bytes logged_bytes() const noexcept { return logged_bytes_; }
  std::int64_t logged_messages() const noexcept { return logged_messages_; }

 private:
  double log_mbps_;
  storage::Bytes logged_bytes_ = 0;
  std::int64_t logged_messages_ = 0;
};

}  // namespace gbc::ckpt
