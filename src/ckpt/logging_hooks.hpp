#pragma once

#include <cstdint>
#include <vector>

#include "mpi/minimpi.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {

/// Pessimistic sender-based message logging, the price of uncoordinated
/// checkpointing (paper Sec. 1/2.1/4.3): every payload is copied into a log
/// before it may be sent, and zero-copy rendezvous must be disabled because
/// the library has to see the data. Both costs land on the failure-free
/// critical path — that is the overhead the paper's design avoids.
///
/// send_tax runs on the *sender's* shard, so volumes accumulate into
/// per-sender slots; logged_bytes()/logged_messages() are aggregate reads
/// for quiescent points (end of run).
class SenderLogger : public mpi::MpiHooks {
 public:
  /// log_bandwidth_mbps: rate at which payloads can be copied into the log
  /// (memory copy, possibly with a spill to local buffers).
  explicit SenderLogger(int nranks, double log_bandwidth_mbps = 1200.0)
      : log_mbps_(log_bandwidth_mbps), slot_(nranks) {}

  sim::Time send_tax(int src, int /*dst*/, storage::Bytes b) override {
    Slot& s = slot_[src];
    s.bytes += b;
    ++s.messages;
    const double bps = log_mbps_ * static_cast<double>(storage::kMiB);
    return static_cast<sim::Time>(static_cast<double>(b) / bps *
                                  static_cast<double>(sim::kSecond));
  }

  bool disable_zero_copy() const override { return true; }

  storage::Bytes logged_bytes() const noexcept {
    storage::Bytes t = 0;
    for (const Slot& s : slot_) t += s.bytes;
    return t;
  }
  std::int64_t logged_messages() const noexcept {
    std::int64_t t = 0;
    for (const Slot& s : slot_) t += s.messages;
    return t;
  }

 private:
  struct alignas(64) Slot {
    storage::Bytes bytes = 0;
    std::int64_t messages = 0;
  };
  double log_mbps_;
  std::vector<Slot> slot_;
};

}  // namespace gbc::ckpt
