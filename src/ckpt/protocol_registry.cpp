#include <cassert>

#include "ckpt/checkpoint.hpp"
#include "ckpt/protocol_internal.hpp"

namespace gbc::ckpt {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kQuiesce: return "quiesce";
    case Phase::kDrain: return "drain";
    case Phase::kTeardown: return "teardown";
    case Phase::kSnapshot: return "snapshot";
    case Phase::kRebuild: return "rebuild";
    case Phase::kResume: return "resume";
  }
  return "?";
}

const ProtocolRunner& protocol_runner(Protocol p) {
  // Index-keyed table in Protocol declaration order. Built on first use from
  // the per-TU factories: an explicit registry, because self-registration
  // via static initializers is silently dropped when the archive member is
  // otherwise unreferenced.
  static const std::unique_ptr<ProtocolRunner> runners[] = {
      detail::make_blocking_runner(),
      detail::make_group_runner(),
      detail::make_chandy_lamport_runner(),
      detail::make_uncoordinated_runner(),
  };
  const auto i = static_cast<std::size_t>(p);
  assert(i < std::size(runners) && "unknown Protocol");
  return *runners[i];
}

const char* protocol_name(Protocol p) { return protocol_runner(p).name(); }

}  // namespace gbc::ckpt
