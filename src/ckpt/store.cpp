#include "ckpt/store.hpp"

#include <algorithm>

namespace gbc::ckpt {

const CheckpointStore::CheckpointSet& CheckpointStore::commit(
    const GlobalCheckpoint& gc, bool incremental) {
  CheckpointSet set;
  set.id = next_id_++;
  set.label = "ckpt-" + std::to_string(set.id);
  set.taken_at = gc.completed_at;
  int prev_live = -1;
  if (incremental) {
    for (int i = static_cast<int>(sets_.size()) - 1; i >= 0; --i) {
      if (!sets_[i].garbage_collected) {
        prev_live = i;
        break;
      }
    }
  }
  for (const auto& snap : gc.snapshots) {
    ImageRef ref;
    ref.rank = snap.rank;
    ref.bytes = snap.image_bytes;
    ref.incremental = incremental && prev_live >= 0;
    ref.chains_to = ref.incremental ? prev_live : -1;
    set.images.push_back(ref);
    set.app_state.push_back(snap.app_state);
  }
  sets_.push_back(std::move(set));
  collect_garbage();
  return sets_.back();
}

const CheckpointStore::CheckpointSet* CheckpointStore::latest(
    sim::Time t) const {
  const CheckpointSet* best = nullptr;
  for (const auto& s : sets_) {
    if (s.garbage_collected || s.taken_at < 0 || s.taken_at > t) continue;
    if (!best || s.taken_at > best->taken_at) best = &s;
  }
  return best;
}

const CheckpointStore::CheckpointSet* CheckpointStore::latest() const {
  for (auto it = sets_.rbegin(); it != sets_.rend(); ++it) {
    if (!it->garbage_collected) return &*it;
  }
  return nullptr;
}

Bytes CheckpointStore::restore_bytes(const CheckpointSet& set,
                                     int rank) const {
  Bytes total = 0;
  const CheckpointSet* cur = &set;
  for (;;) {
    const ImageRef& ref = cur->images.at(static_cast<std::size_t>(rank));
    total += ref.bytes;
    if (ref.chains_to < 0) break;
    cur = &sets_.at(static_cast<std::size_t>(ref.chains_to));
  }
  return total;
}

Bytes CheckpointStore::resident_bytes() const {
  Bytes total = 0;
  for (const auto& s : sets_) {
    if (s.garbage_collected) continue;
    for (const auto& img : s.images) total += img.bytes;
  }
  return total;
}

int CheckpointStore::live_sets() const {
  int n = 0;
  for (const auto& s : sets_) {
    if (!s.garbage_collected) ++n;
  }
  return n;
}

bool CheckpointStore::pinned(int index) const {
  // A set is pinned while any live set's incremental chain passes through it.
  for (int i = index + 1; i < static_cast<int>(sets_.size()); ++i) {
    const auto& s = sets_[i];
    if (s.garbage_collected) continue;
    for (const auto& img : s.images) {
      int at = img.chains_to;
      while (at >= 0) {
        if (at == index) return true;
        const auto& link =
            sets_[static_cast<std::size_t>(at)].images[static_cast<std::size_t>(
                img.rank)];
        at = link.chains_to;
      }
    }
  }
  return false;
}

void CheckpointStore::collect_garbage() {
  // Keep the newest `retention_` live sets; older ones go unless a newer
  // incremental chain still needs them.
  int keep = retention_;
  for (int i = static_cast<int>(sets_.size()) - 1; i >= 0; --i) {
    auto& s = sets_[static_cast<std::size_t>(i)];
    if (s.garbage_collected) continue;
    if (keep > 0) {
      --keep;
      continue;
    }
    if (!pinned(i)) s.garbage_collected = true;
  }
}

}  // namespace gbc::ckpt
