#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ckpt/group_formation.hpp"
#include "mpi/minimpi.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::storage {
class TieredStore;
}

namespace gbc::ckpt {

using Bytes = storage::Bytes;

/// Which checkpointing protocol drives a cycle.
enum class Protocol : std::uint8_t {
  /// All processes snapshot at once (Gao et al. ICPP'06; the paper's
  /// "regular coordinated checkpointing" baseline).
  kBlockingCoordinated,
  /// The paper's contribution: groups snapshot one after another, other
  /// groups keep computing, cross-line traffic is deferred via
  /// message/request buffering.
  kGroupBased,
  /// Non-blocking Chandy-Lamport: everyone snapshots on marker receipt and
  /// logs channel messages — no global schedule, so the storage bottleneck
  /// remains, plus logging volume (paper Sec. 2.1 / 7).
  kChandyLamport,
  /// Uncoordinated: each rank snapshots independently; consistency would
  /// come from (always-on) sender-based message logging.
  kUncoordinatedLogging,
};

const char* protocol_name(Protocol p);

/// Tunables of the C/R framework.
struct CkptConfig {
  /// Static checkpoint group size (0 = one group with every rank).
  int group_size = 0;
  /// Use dynamic group formation from the observed traffic matrix; falls
  /// back to static blocks when the app communicates globally.
  bool dynamic_formation = false;
  /// Asynchronous progress (paper Sec. 4.4): a helper thread bounds how long
  /// a computing process takes to service passive coordination requests.
  bool async_progress = true;
  sim::Time helper_interval = 100 * sim::kMillisecond;
  /// Rebuild a group's connections right after its snapshot (vs. lazily on
  /// next use).
  bool eager_rebuild = true;
  /// Per-rank stagger for uncoordinated checkpointing.
  sim::Time uncoordinated_stagger = 500 * sim::kMillisecond;
  /// Cost of one control-plane message (coordination RPC).
  sim::Time control_latency = 5 * sim::kMicrosecond;

  // --- Incremental checkpointing (paper Sec. 7/8 future work; TICK-style
  // kernel-level dirty-page tracking). The first snapshot of a rank is
  // always full; later ones write only the pages dirtied since the previous
  // snapshot, modelled as floor + rate * elapsed (capped at the footprint).
  bool incremental = false;
  double dirty_floor = 0.15;            ///< fraction dirtied immediately
  double dirty_rate_per_second = 0.02;  ///< extra fraction per second

  // --- Multi-level staging (storage::TieredStore; DESIGN.md §10). When a
  // tier is attached and use_tier is set, snapshots land on the node-local
  // tier (and optionally a partner replica) instead of the shared PFS; the
  // background drain makes them PFS-durable later.
  bool use_tier = true;
  /// Pause the node's background drain while its foreground snapshot writes
  /// to the local disk (the two compete for the same device).
  bool pause_drain_during_snapshot = true;
};

/// Where a rank's snapshot image lived when its checkpoint completed.
enum class ImagePlacement : std::uint8_t {
  kPfs,              ///< written straight to the shared PFS (no tier)
  kLocal,            ///< node-local tier only (lost with the node)
  kLocalReplicated,  ///< node-local tier + partner replica
  kLocalErasure,     ///< node-local tier + erasure stripe across parity group
};

/// One rank's snapshot (what BLCR would write).
struct RankSnapshot {
  int rank = -1;
  Bytes image_bytes = 0;
  std::vector<std::uint64_t> app_state;  ///< workload resume blob
  sim::Time taken_at = -1;          ///< logical snapshot instant
  sim::Time freeze_begin = -1;
  sim::Time resume_at = -1;         ///< thawed (downtime = resume - freeze)
  sim::Time storage_time = 0;       ///< portion spent writing the image

  // --- staging (set only when a TieredStore handled the write) ---
  std::uint64_t image_id = 0;  ///< TieredStore ledger id (0 = direct PFS)
  ImagePlacement placement = ImagePlacement::kPfs;
  int replica_node = -1;  ///< partner holding the replica, -1 if none
};

/// Result of one global checkpoint cycle.
struct GlobalCheckpoint {
  Protocol protocol{};
  GroupPlan plan;
  sim::Time requested_at = -1;
  sim::Time completed_at = -1;
  std::vector<RankSnapshot> snapshots;  // indexed by rank
  Bytes logged_bytes = 0;               // channel/message logging volume

  sim::Time total_checkpoint_time() const {
    return completed_at - requested_at;
  }
  /// Downtime observed by one process (paper: Individual Checkpoint Time).
  sim::Time individual_time(int rank) const {
    const auto& s = snapshots[rank];
    return s.resume_at - s.freeze_begin;
  }
  sim::Time max_individual_time() const;
  double mean_individual_time() const;
  /// Fraction of mean downtime spent on storage (paper reports >95%).
  double storage_fraction() const;
};

/// The C/R framework: a global coordinator plus the per-rank control surface
/// (freeze/thaw, deferral gate, connection churn, BLCR-style image writes).
/// The protocols themselves live behind the ProtocolRunner registry
/// (protocol.hpp); checkpoint() looks the requested one up and hands it a
/// CycleContext scoped to the cycle.
class CheckpointService {
 public:
  CheckpointService(mpi::MiniMPI& mpi, storage::StorageSystem& fs,
                    CkptConfig cfg = {});
  ~CheckpointService();

  CkptConfig& config() noexcept { return cfg_; }

  /// How big rank r's process image is right now (bytes). Workloads update
  /// this as their memory footprint evolves.
  void set_footprint_provider(std::function<Bytes(int)> f) {
    footprint_ = std::move(f);
  }
  /// Opaque workload state captured in each snapshot (resume token).
  void set_state_capture(std::function<std::vector<std::uint64_t>(int)> f) {
    capture_ = std::move(f);
  }

  /// Runs one full checkpoint cycle; resolves when the global checkpoint is
  /// complete. If a cycle is already active, waits for it to finish first
  /// (requests serialize, they are never dropped).
  sim::Task<GlobalCheckpoint> checkpoint(Protocol protocol);

  /// Fire-and-forget request at an absolute time (records into history()).
  void request_at(sim::Time t, Protocol protocol);

  /// Periodic checkpointing: one request every `interval`, starting at
  /// `first`, for the rest of the run.
  void request_every(sim::Time first, sim::Time interval, Protocol protocol);

  const std::vector<GlobalCheckpoint>& history() const { return history_; }
  bool cycle_active() const noexcept { return cycle_active_; }

  /// The plan the next group-based cycle would use (for tests/benches).
  GroupPlan plan_groups() const;

  /// Optional structured trace of protocol events (cycle/group/freeze/
  /// snapshot/resume), for debugging and schedule visualisation.
  void set_trace(sim::Trace* trace) { trace_ = trace; }

  /// Attaches a node-local staging tier: snapshot writes go to it instead
  /// of the shared PFS (when cfg_.use_tier; see DESIGN.md §10).
  void set_tier(storage::TieredStore* tier) { tier_ = tier; }
  storage::TieredStore* tier() const noexcept { return tier_; }

  /// Rank-process liveness, reported by the harness: rank mains run on
  /// other shards' engines, so the service engine's live_processes() no
  /// longer sees them. started is called at setup (quiescent); finished
  /// arrives by bus message when a rank's main returns. -1 = harness not
  /// tracking (direct-construction tests); the periodic driver then falls
  /// back to the live_processes() heuristic.
  void note_rank_started() {
    live_ranks_ = (live_ranks_ < 0 ? 0 : live_ranks_) + 1;
  }
  void note_rank_finished() { --live_ranks_; }
  bool tracking_ranks() const noexcept { return live_ranks_ >= 0; }
  int live_ranks() const noexcept { return live_ranks_; }

  /// Test hook (coordinator federation): arms a one-shot failure of the
  /// group coordinator anchored at `rank` — its next dispatch aborts before
  /// any member is touched (the coordinator's node "died" right after the
  /// fan-out reached it) and the root LP runs that group itself. Arm at
  /// quiescence, before the cycle.
  void fail_coordinator_once(int rank) { abandon_coordinator_ = rank; }

 private:
  /// The consistency rule, evaluated on the *sender's* shard: each shard
  /// owns a mirror (ShardView) of the recovery-line state, anchored at its
  /// first rank LP and updated only by service→shard bus messages. allowed()
  /// and changed() touch nothing but the caller's own view, so the gate is
  /// queried from every shard without shared mutable state; the one-hop lag
  /// of a view update is harmless because the deferral hazard window opens
  /// at thaw, milliseconds after the line flips (DESIGN.md §13).
  class DeferralGate : public mpi::CommGate {
   public:
    explicit DeferralGate(CheckpointService& svc);
    bool allowed(int a, int b) const override;
    sim::Condition& changed(int src) override;
    /// Service-side: broadcast a fresh copy of (defer_active_, done_) to
    /// every shard's view, waking that shard's blocked senders on arrival.
    void notify();

   private:
    struct ShardView {
      std::vector<char> done;
      bool defer = false;
      std::unique_ptr<sim::Condition> cv;  // on the view's shard engine
    };
    CheckpointService& svc_;
    std::vector<ShardView> views_;
  };

  /// The per-cycle façade protocol runners act through (protocol.hpp).
  friend class CycleContext;

  /// Routes the image write to `rank`'s own LP (the partitioned storage
  /// server for its node) from the anchor LP `self_lp` (-1 = service LP).
  sim::Task<void> snapshot_rank(int rank, GlobalCheckpoint& gc, int self_lp);
  /// The write itself: runs on `rank`'s home engine — footprint/capture
  /// callbacks read rank-owned workload slots, the tier write lands in the
  /// node's partition, and only the shared-PFS legs leave the shard.
  sim::Task<void> write_snapshot(int rank, GlobalCheckpoint& gc);
  Bytes footprint(int rank) const {
    return footprint_ ? footprint_(rank) : storage::mib(64);
  }
  /// Bytes actually written for this snapshot (full or incremental), given
  /// the writing engine's current time.
  Bytes image_bytes_for(int rank, sim::Time now) const;

  sim::Engine& eng_;
  mpi::MiniMPI& mpi_;
  storage::StorageSystem& fs_;
  storage::TieredStore* tier_ = nullptr;
  CkptConfig cfg_;
  std::function<Bytes(int)> footprint_;
  std::function<std::vector<std::uint64_t>(int)> capture_;
  std::unique_ptr<DeferralGate> gate_;
  std::vector<int> group_of_;   // valid during a cycle
  std::vector<char> done_;      // per-rank: group snapshot complete
  bool cycle_active_ = false;
  bool defer_active_ = false;   // gate enforces the done/not-done rule
  sim::Condition cycle_done_;
  int live_ranks_ = -1;  // -1: harness not reporting rank liveness
  int abandon_coordinator_ = -1;  // one-shot test hook, see above
  sim::Trace* trace_ = nullptr;
  std::vector<sim::Time> last_snapshot_at_;  // -1: no snapshot yet
  std::vector<GlobalCheckpoint> history_;
};

}  // namespace gbc::ckpt
