// Blocking coordinated checkpointing (Gao et al. ICPP'06; the paper's
// "regular" baseline): every rank freezes, drains and snapshots in one
// global group — the degenerate single-group instance of the shared group
// schedule, with no cross-line deferral to enforce.
#include "ckpt/checkpoint.hpp"
#include "ckpt/protocol_internal.hpp"

namespace gbc::ckpt {

namespace {

class BlockingRunner final : public ProtocolRunner {
 public:
  const char* name() const override { return "blocking-coordinated"; }

  sim::Task<void> run(CycleContext& ctx) const override {
    GlobalCheckpoint& gc = ctx.cycle();
    gc.plan = static_plan(ctx.nranks(), 0);
    ctx.assign_groups(gc.plan);
    ctx.set_defer_active(false);  // one group: no line to defer across
    co_await detail::run_group_schedule(ctx);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<ProtocolRunner> make_blocking_runner() {
  return std::make_unique<BlockingRunner>();
}
}  // namespace detail

}  // namespace gbc::ckpt
