// Group-based coordinated checkpointing (the paper's contribution): the
// plan's groups snapshot one after another while the other groups keep
// computing; cross-line traffic is deferred by the service's gate. Also
// hosts the shared phase-structured group schedule, which the blocking
// protocol reuses with a single all-ranks group.
#include <algorithm>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/protocol_internal.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/join.hpp"

namespace gbc::ckpt {

namespace {

/// One group's cycle: quiesce → drain/teardown → snapshot → resume →
/// rebuild. Resume precedes rebuild on purpose — members start computing
/// again while their connections are re-established lazily or eagerly.
/// Runs on `ctx`'s anchor: normally a forked context on the group
/// coordinator's home shard, or the root context when the root recovers an
/// abandoned group.
sim::Task<void> checkpoint_group(CycleContext& ctx,
                                 const std::vector<int>& group) {
  auto in_group = [&group](int r) {
    return std::find(group.begin(), group.end(), r) != group.end();
  };

  // Intra-group coordination fan-out, then freeze (the BLCR signal stops
  // each member wherever it is).
  ctx.phase_begin(Phase::kQuiesce);
  co_await ctx.engine().delay(
      ctx.fanout_latency(static_cast<int>(group.size())));
  {
    // All freeze RPCs leave at the same instant, so every member pauses
    // simultaneously one bus hop out (simultaneous group quiesce).
    sim::JoinSet freezes(ctx.engine());
    for (int m : group) freezes.launch(ctx.freeze(m));
    co_await freezes.join();
  }
  ctx.phase_end(Phase::kQuiesce);

  // Pre-checkpoint coordination: flush in-transit messages and tear down
  // every connection touching a member, each pair handled exactly once.
  // ConnectionManager::disconnect fuses both phases (the QP drains, then
  // tears down, under one state transition), so the spans share one extent.
  ctx.phase_begin(Phase::kDrain);
  ctx.phase_begin(Phase::kTeardown);
  std::vector<std::pair<int, int>> torn_down;
  {
    sim::JoinSet teardown(ctx.engine());
    for (int m : group) {
      for (int peer : co_await ctx.connected_peers(m)) {
        if (in_group(peer) && peer < m) continue;  // counted from the other end
        torn_down.emplace_back(m, peer);
        teardown.launch(ctx.teardown_one(m, peer, !in_group(peer)));
      }
    }
    co_await teardown.join();
  }
  ctx.phase_end(Phase::kTeardown);
  ctx.phase_end(Phase::kDrain);

  // The members' state is now quiescent and flushed: this instant is their
  // position on the recovery line. From here on, traffic between them and
  // any group on the other side of the line must be deferred (paper
  // Sec. 3.2) — flipping the flag any later would let a not-yet-
  // checkpointed rank slip a message into a snapshotted one during the
  // write/rebuild window (a lost-in-transit message on restart). One
  // message to the root LP (the line's owner) flips the whole group and
  // rebroadcasts the gate.
  co_await ctx.mark_group_on_recovery_line(group);

  // Local checkpointing: members write their images concurrently; with a
  // small group each gets a large share of the storage bandwidth.
  ctx.phase_begin(Phase::kSnapshot);
  {
    sim::JoinSet writes(ctx.engine());
    for (int m : group) writes.launch(ctx.snapshot_rank(m));
    co_await writes.join();
  }
  ctx.phase_end(Phase::kSnapshot);

  // Post-checkpoint coordination: resume members, then (optionally) rebuild
  // the torn-down connections eagerly.
  ctx.phase_begin(Phase::kResume);
  for (int m : group) ctx.thaw(m);
  ctx.phase_end(Phase::kResume);
  if (ctx.config().eager_rebuild) {
    ctx.phase_begin(Phase::kRebuild);
    sim::JoinSet rebuild(ctx.engine());
    for (const auto& [m, peer] : torn_down) {
      rebuild.launch(ctx.rebuild_one(m, peer, !in_group(peer)));
    }
    co_await rebuild.join();
    ctx.phase_end(Phase::kRebuild);
  }
}

/// Dispatches one group's cycle to its coordinator LP — the home LP of the
/// group's lowest rank, an anchor that is invariant under re-sharding — and
/// awaits completion. Returns false if the coordinator abandoned the
/// dispatch (its node died after the fan-out reached it; test hook): the
/// root then recovers the group by running its phase machine itself.
sim::Task<bool> run_group_at_coordinator(CycleContext& ctx,
                                         const std::vector<int>& group) {
  sim::LpBus& bus = ctx.mpi().fabric().bus();
  const int coord = *std::min_element(group.begin(), group.end());
  bool completed = false;
  CycleContext* parent = &ctx;
  const std::vector<int>* g = &group;
  bool* done = &completed;
  co_await bus.call(ctx.self_lp(), coord,
                    [parent, g, done, coord]() -> sim::Task<void> {
                      CycleContext cctx = parent->fork_for(coord);
                      if (cctx.take_coordinator_failure(coord)) co_return;
                      co_await checkpoint_group(cctx, *g);
                      *done = true;
                    });
  co_return completed;
}

class GroupRunner final : public ProtocolRunner {
 public:
  const char* name() const override { return "group-based"; }

  sim::Task<void> run(CycleContext& ctx) const override {
    GlobalCheckpoint& gc = ctx.cycle();
    gc.plan = co_await ctx.gather_plan();
    ctx.assign_groups(gc.plan);
    ctx.set_defer_active(gc.plan.size() > 1);
    co_await detail::run_group_schedule(ctx);
  }
};

}  // namespace

namespace detail {

sim::Task<void> run_group_schedule(CycleContext& ctx) {
  // The root LP is deliberately thin here: it fans the request out, then
  // only *sequences* the groups — each group's phase machine runs on its
  // coordinator's home shard — and commits the schedule's end state.
  ctx.phase_begin(Phase::kQuiesce);
  co_await ctx.engine().delay(ctx.fanout_latency(ctx.nranks()));
  ctx.phase_end(Phase::kQuiesce);
  for (const auto& group : ctx.cycle().plan.groups) {
    // checkpoint_group flips the recovery line at the snapshot instant —
    // not at thaw — so no message can slip between a group's snapshot and
    // its resume.
    if (!co_await run_group_at_coordinator(ctx, group)) {
      // The coordinator's node died before touching any member: the group
      // is untouched, so the root runs its whole cycle monolithically.
      co_await checkpoint_group(ctx, group);
    }
    ctx.notify_gate();  // deferred pairs on the new line may proceed
  }
  ctx.set_defer_active(false);
  ctx.notify_gate();
}

std::unique_ptr<ProtocolRunner> make_group_runner() {
  return std::make_unique<GroupRunner>();
}

}  // namespace detail

}  // namespace gbc::ckpt
