#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/group_formation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::sim {
class Engine;
}
namespace gbc::mpi {
class MiniMPI;
}
namespace gbc::storage {
class StorageSystem;
}

namespace gbc::ckpt {

class CheckpointService;
struct CkptConfig;
struct GlobalCheckpoint;
enum class Protocol : std::uint8_t;

/// The named coordination phases every checkpoint protocol is built from
/// (DESIGN.md §11). A protocol runs them per group, per rank, or globally —
/// but the vocabulary is shared, so traces, docs and tests speak one
/// language across protocols.
enum class Phase : std::uint8_t {
  kQuiesce,   ///< fan-out + freeze: members stop wherever they are
  kDrain,     ///< flush in-transit messages on the members' connections
  kTeardown,  ///< release IB connections (QPs cannot survive a restart)
  kSnapshot,  ///< write the process images
  kRebuild,   ///< re-establish the torn-down connections
  kResume,    ///< thaw the members
};

const char* phase_name(Phase p);

/// Per-cycle façade handed to a ProtocolRunner: everything a protocol may
/// do during one global checkpoint, and nothing else. Wraps the service's
/// internals (deferral gate, trace, tier-aware snapshot writes) so protocol
/// TUs cannot reach into CheckpointService state directly.
///
/// A context is anchored at an LP (`self_lp`): the service LP by default,
/// or — via fork_for() — a per-group checkpoint coordinator LP, which runs
/// the group phase machine on its own home shard (DESIGN.md §15). Every
/// control-plane primitive below uses self_lp as its bus source, and the
/// ones that touch root-owned state (connection manager, recovery line,
/// shared PFS) route there by message when anchored away from the root.
class CycleContext {
 public:
  CycleContext(CheckpointService& svc, GlobalCheckpoint& gc)
      : svc_(svc), gc_(gc) {}

  /// A copy of this context anchored at `self_lp` (a group coordinator).
  /// The fork shares the cycle and service; only the anchor differs.
  CycleContext fork_for(int self_lp) const {
    CycleContext c(svc_, gc_);
    c.self_lp_ = self_lp;
    return c;
  }
  /// The LP this context runs on (resolves the root anchor to the bus's
  /// service LP id).
  int self_lp() const noexcept;
  bool at_root() const noexcept { return self_lp_ < 0; }

  /// The anchor's engine: the service engine at root, the coordinator's
  /// home shard engine in a fork.
  sim::Engine& engine() noexcept;
  mpi::MiniMPI& mpi() noexcept;
  storage::StorageSystem& shared_fs() noexcept;
  const CkptConfig& config() const noexcept;
  GlobalCheckpoint& cycle() noexcept { return gc_; }
  int nranks() const noexcept;

  /// The group plan a group-based cycle would use (static or dynamic).
  /// Quiescent aggregate read — for tests/benches; cycles use gather_plan().
  GroupPlan plan_groups() const;

  /// In-cycle plan formation: gathers each rank's traffic row from its own
  /// shard by RPC (the rows are rank-owned under the sharding discipline),
  /// then runs the planner service-side.
  sim::Task<GroupPlan> gather_plan();

  // --- consistency rule (drives the service's DeferralGate) ---
  /// Installs the plan's rank→group map and clears the recovery-line state.
  void assign_groups(const GroupPlan& plan);
  /// Enables/disables traffic deferral across the recovery line.
  /// Root-anchored contexts only (the flag is root-owned).
  void set_defer_active(bool on);
  /// Flips `rank` onto the new side of the recovery line (traced).
  /// Root-anchored contexts only; coordinators use the group form below.
  void mark_on_recovery_line(int rank);
  /// Wakes senders blocked on the gate after the line moved. Root only.
  void notify_gate();
  /// Coordinator form: flips a whole group onto the new side of the line
  /// and wakes the gate, as ONE message to the root LP (which owns the
  /// line and the gate fan-out). Works from any anchor.
  sim::Task<void> mark_group_on_recovery_line(const std::vector<int>& group);

  // --- per-rank BLCR-style control (all traced) ---
  /// Freezes `rank` by RPC to its shard; resolves once the pause landed
  /// (freeze_begin is stamped with the pause instant, one bus hop after the
  /// request). Launch a JoinSet of these to freeze a group simultaneously.
  sim::Task<void> freeze(int rank);
  /// Thaws `rank` with a one-way message; resume_at is the arrival instant.
  void thaw(int rank);
  /// Writes one rank's image (tier-aware) and stamps its RankSnapshot.
  sim::Task<void> snapshot_rank(int rank);

  // --- connection churn with passive-peer service points ---
  /// Rank m's currently-connected peers. The connection manager is
  /// root-owned: a forked context fetches the list by RPC.
  sim::Task<std::vector<int>> connected_peers(int m);
  sim::Task<void> teardown_one(int m, int peer, bool peer_passive);
  sim::Task<void> rebuild_one(int m, int peer, bool peer_passive);

  /// Test hook: true exactly once for the group coordinator `coord` after
  /// CheckpointService::fail_coordinator_once(coord) armed it — the
  /// coordinator then abandons its dispatch (its node "died" right after
  /// the fan-out reached it) and the root LP recovers the group.
  bool take_coordinator_failure(int coord);

  /// Latency of a binomial-tree control fan-out over `width` endpoints.
  sim::Time fanout_latency(int width) const;

  // --- named-phase trace spans (chrome://tracing 'B'/'E' pairs) ---
  void phase_begin(Phase p, int actor = -1);
  void phase_end(Phase p, int actor = -1);

 private:
  CheckpointService& svc_;
  GlobalCheckpoint& gc_;
  int self_lp_ = -1;  ///< -1 = the root (service) LP
};

/// One checkpoint protocol: runs a full cycle phase by phase. Implementations
/// live one-per-TU (protocol_blocking.cpp, protocol_group.cpp,
/// protocol_chandy_lamport.cpp, protocol_uncoordinated.cpp) and are looked up
/// through protocol_runner(). Runners are stateless: all per-cycle state
/// lives in the CycleContext and the GlobalCheckpoint it wraps.
class ProtocolRunner {
 public:
  virtual ~ProtocolRunner() = default;
  virtual const char* name() const = 0;
  /// Executes one cycle: must set gc.plan and fill every RankSnapshot's
  /// freeze/snapshot/resume timestamps before returning.
  virtual sim::Task<void> run(CycleContext& ctx) const = 0;
};

/// Registry keyed by Protocol (explicit table, no static-initializer
/// tricks — safe inside a static library).
const ProtocolRunner& protocol_runner(Protocol p);

}  // namespace gbc::ckpt
