#include "ckpt/group_formation.hpp"

#include <algorithm>
#include <numeric>

namespace gbc::ckpt {

GroupPlan static_plan(int nranks, int group_size) {
  GroupPlan plan;
  if (group_size <= 0 || group_size >= nranks) {
    std::vector<int> all(nranks);
    std::iota(all.begin(), all.end(), 0);
    plan.groups.push_back(std::move(all));
    return plan;
  }
  for (int start = 0; start < nranks; start += group_size) {
    std::vector<int> g;
    for (int r = start; r < std::min(start + group_size, nranks); ++r) {
      g.push_back(r);
    }
    plan.groups.push_back(std::move(g));
  }
  return plan;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

GroupPlan dynamic_plan(const std::vector<std::int64_t>& traffic, int nranks,
                       int max_group_size, double edge_threshold) {
  if (max_group_size <= 0) max_group_size = nranks;
  std::int64_t heaviest = 0;
  for (int a = 0; a < nranks; ++a) {
    for (int b = a + 1; b < nranks; ++b) {
      heaviest = std::max(heaviest, traffic[static_cast<std::size_t>(a) * nranks + b]);
    }
  }
  if (heaviest == 0) {
    // No traffic observed yet: nothing to learn, use the static layout.
    GroupPlan plan = static_plan(nranks, max_group_size);
    return plan;
  }
  const auto cutoff = static_cast<std::int64_t>(
      edge_threshold * static_cast<double>(heaviest));

  // Transitive closure over "frequent" edges.
  UnionFind uf(nranks);
  for (int a = 0; a < nranks; ++a) {
    for (int b = a + 1; b < nranks; ++b) {
      if (traffic[static_cast<std::size_t>(a) * nranks + b] > cutoff) {
        uf.unite(a, b);
      }
    }
  }
  std::vector<std::vector<int>> components;
  {
    std::vector<int> comp_index(nranks, -1);
    for (int r = 0; r < nranks; ++r) {
      int root = uf.find(r);
      if (comp_index[root] < 0) {
        comp_index[root] = static_cast<int>(components.size());
        components.emplace_back();
      }
      components[comp_index[root]].push_back(r);
    }
  }

  // Globally-communicating application: fall back to static formation.
  std::size_t largest = 0;
  for (const auto& c : components) largest = std::max(largest, c.size());
  if (largest > static_cast<std::size_t>(nranks) / 2) {
    return static_plan(nranks, max_group_size);
  }

  // Pack components into checkpoint groups: split oversized closures; pack
  // isolated ranks (singleton components) together up to max_group_size.
  // Distinct multi-rank closures are never merged — they do not communicate,
  // so co-scheduling them would only double each one's storage contention.
  GroupPlan plan;
  plan.used_dynamic = true;
  std::vector<std::vector<int>> pieces;
  std::vector<int> singletons;
  for (auto& comp : components) {
    if (comp.size() == 1) {
      singletons.push_back(comp.front());
      continue;
    }
    for (std::size_t at = 0; at < comp.size();
         at += static_cast<std::size_t>(max_group_size)) {
      std::vector<int> piece(
          comp.begin() + at,
          comp.begin() + std::min(comp.size(),
                                  at + static_cast<std::size_t>(max_group_size)));
      pieces.push_back(std::move(piece));
    }
  }
  std::sort(singletons.begin(), singletons.end());
  for (std::size_t at = 0; at < singletons.size();
       at += static_cast<std::size_t>(max_group_size)) {
    pieces.emplace_back(
        singletons.begin() + at,
        singletons.begin() + std::min(singletons.size(),
                                      at + static_cast<std::size_t>(
                                               max_group_size)));
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  plan.groups = std::move(pieces);
  return plan;
}

}  // namespace gbc::ckpt
