#pragma once

#include <cstdint>
#include <vector>

#include "storage/storage.hpp"

namespace gbc::ckpt {

/// A checkpoint schedule: groups of world ranks that snapshot together,
/// taken in vector order (paper Sec. 3.2 / 4.1).
struct GroupPlan {
  std::vector<std::vector<int>> groups;
  bool used_dynamic = false;  ///< dynamic formation succeeded (no fallback)

  int group_of(int rank) const {
    for (int g = 0; g < static_cast<int>(groups.size()); ++g) {
      for (int m : groups[g]) {
        if (m == rank) return g;
      }
    }
    return -1;
  }
  int size() const { return static_cast<int>(groups.size()); }
};

/// Static formation: contiguous blocks of `group_size` ranks in world-rank
/// order ("based on a user-defined group size and the global rank").
/// group_size <= 0 or >= nranks yields one all-ranks group (the regular
/// blocking coordinated checkpoint).
GroupPlan static_plan(int nranks, int group_size);

/// Dynamic formation (paper Sec. 4.1): finds the transitive closure of
/// frequently-communicating processes over the observed traffic matrix
/// (bytes, indexed [a*n+b]). Edges carrying at least `edge_threshold` of the
/// heaviest edge's bytes are "frequent". If the largest closure spans more
/// than half the job, the application is considered globally-communicating
/// and the planner falls back to static_plan (limiting analysis cost).
/// Closures larger than `max_group_size` are split; singletons are packed
/// together up to the max size.
GroupPlan dynamic_plan(const std::vector<std::int64_t>& traffic_bytes,
                       int nranks, int max_group_size,
                       double edge_threshold = 0.05);

}  // namespace gbc::ckpt
