#include "ckpt/consistency.hpp"

#include <sstream>

namespace gbc::ckpt {

namespace {
/// Cap on formatted violation details: the report stays bounded even when a
/// deliberately-inconsistent protocol produces violations at message rate.
constexpr std::size_t kMaxDetails = 32;
}  // namespace

ConsistencyReport check_recovery_line(
    const std::vector<mpi::MessageRecord>& records,
    const GlobalCheckpoint& gc) {
  ConsistencyReport report;
  for (const auto& m : records) {
    if (m.arrival_time < 0) continue;  // never delivered (run ended first)
    const auto& src_snap = gc.snapshots[m.src];
    const auto& dst_snap = gc.snapshots[m.dst];
    if (src_snap.taken_at < 0 || dst_snap.taken_at < 0) continue;
    ++report.checked;
    const bool sent_after_line = m.transmit_time >= src_snap.taken_at;
    const bool recv_after_line = m.arrival_time >= dst_snap.taken_at;
    if (sent_after_line != recv_after_line) {
      ++report.violations;
      if (report.details.size() < kMaxDetails) {
        std::ostringstream os;
        os << (sent_after_line ? "orphan" : "lost-in-transit") << ": " << m.src
           << "->" << m.dst << " bytes=" << m.bytes
           << " tx=" << m.transmit_time << " (line " << src_snap.taken_at
           << ") rx=" << m.arrival_time << " (line " << dst_snap.taken_at
           << ")";
        report.details.push_back(os.str());
      }
    }
  }
  return report;
}

}  // namespace gbc::ckpt
