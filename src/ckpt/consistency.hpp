#pragma once

#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "mpi/types.hpp"

namespace gbc::ckpt {

/// Result of validating a recovery line against the observed message trace.
struct ConsistencyReport {
  int checked = 0;
  int violations = 0;
  std::vector<std::string> details;  // one line per violation (capped)
  bool consistent() const { return violations == 0; }
};

/// Validates the fundamental invariant of coordinated checkpointing without
/// message logging: for every message, "left the sender's library after the
/// sender's snapshot" must equal "entered the receiver's library after the
/// receiver's snapshot". A mismatch is an orphan (received before the line,
/// sent after) or a lost in-transit message (sent before, received after) —
/// either would make restart from this checkpoint incorrect.
/// Requires MpiConfig::record_messages = true during the run.
ConsistencyReport check_recovery_line(
    const std::vector<mpi::MessageRecord>& records,
    const GlobalCheckpoint& gc);

}  // namespace gbc::ckpt
