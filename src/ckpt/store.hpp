#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace gbc::ckpt {

/// Catalog of checkpoint sets kept on the central storage, the way a real
/// C/R deployment manages its checkpoint directory: every completed global
/// checkpoint becomes a named set of per-rank image files plus a descriptor;
/// old sets are garbage-collected once newer ones are safely complete
/// (keeping `retention` sets). Incremental snapshots chain back to their
/// predecessors, so a set's *restore cost* includes every increment back to
/// the last full image — and those chains pin their ancestors against GC.
class CheckpointStore {
 public:
  struct ImageRef {
    int rank = -1;
    Bytes bytes = 0;
    bool incremental = false;
    /// Index (in the store) of the set holding the previous link of this
    /// rank's chain; -1 for a full image.
    int chains_to = -1;
  };

  struct CheckpointSet {
    std::uint64_t id = 0;
    std::string label;
    sim::Time taken_at = -1;
    std::vector<ImageRef> images;       // indexed by rank
    std::vector<std::vector<std::uint64_t>> app_state;  // resume blobs
    bool garbage_collected = false;
  };

  explicit CheckpointStore(int retention = 2) : retention_(retention) {}

  /// Registers a completed global checkpoint as a new set. `incremental`
  /// snapshots chain to the previous live set.
  const CheckpointSet& commit(const GlobalCheckpoint& gc, bool incremental);

  /// Most recent set completed at or before `t`, if any survives.
  const CheckpointSet* latest(sim::Time t) const;
  const CheckpointSet* latest() const;

  /// Bytes that must be read back to restore rank `r` from `set` —
  /// the image itself plus its chain of increments back to the full image.
  Bytes restore_bytes(const CheckpointSet& set, int rank) const;

  /// Bytes currently occupying the storage system (live sets only).
  Bytes resident_bytes() const;
  int live_sets() const;
  const std::deque<CheckpointSet>& sets() const { return sets_; }

 private:
  void collect_garbage();
  bool pinned(int index) const;

  int retention_;
  std::uint64_t next_id_ = 1;
  std::deque<CheckpointSet> sets_;
};

}  // namespace gbc::ckpt
