// Non-blocking Chandy-Lamport with channel logging: every rank snapshots on
// marker receipt and messages arriving at already-snapshotted ranks are
// logged as channel state. Nothing schedules the ranks' storage access, so
// they all hit the PFS at (nearly) the same time — the storage bottleneck
// the group-based protocol exists to avoid (paper Sec. 2.1 / 7).
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/protocol_internal.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/join.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {

namespace {

/// Counts channel-logging volume during a Chandy-Lamport cycle: messages
/// arriving at a rank that has already recorded its snapshot belong to the
/// channel state and must be written down.
class ChannelLogger : public mpi::MpiHooks {
 public:
  explicit ChannelLogger(const std::vector<char>& snapshotted)
      : snapshotted_(snapshotted) {}
  void on_deliver(int /*src*/, int dst, Bytes b) override {
    if (snapshotted_[dst]) logged_ += b;
  }
  Bytes logged() const noexcept { return logged_; }

 private:
  const std::vector<char>& snapshotted_;
  Bytes logged_ = 0;
};

class ChandyLamportRunner final : public ProtocolRunner {
 public:
  const char* name() const override { return "chandy-lamport"; }

  sim::Task<void> run(CycleContext& ctx) const override {
    GlobalCheckpoint& gc = ctx.cycle();
    const int n = ctx.nranks();
    gc.plan = static_plan(n, 0);
    // Marker propagation: every rank learns of the checkpoint within a
    // marker-latency fan-out, then runs its own phases independently.
    std::vector<char> snapshotted(n, 0);
    ChannelLogger logger(snapshotted);
    mpi::MpiHooks* prev_hooks = ctx.mpi().hooks();
    ctx.mpi().set_hooks(&logger);

    struct ClCtx {
      CycleContext* ctx;
      std::vector<char>* snapshotted;
    } c{&ctx, &snapshotted};

    auto cl_rank = [](ClCtx* c, int m) -> sim::Task<void> {
      CycleContext& ctx = *c->ctx;
      ctx.phase_begin(Phase::kQuiesce, m);
      co_await ctx.engine().delay(ctx.fanout_latency(ctx.nranks()));
      ctx.freeze(m);
      ctx.phase_end(Phase::kQuiesce, m);
      // IB still requires tearing down this process's connections
      // (Sec. 2.2), with no global schedule to amortize it.
      ctx.phase_begin(Phase::kDrain, m);
      ctx.phase_begin(Phase::kTeardown, m);
      {
        sim::JoinSet teardown(ctx.engine());
        for (int peer : ctx.mpi().fabric().connections().connected_peers(m)) {
          teardown.launch(ctx.teardown_one(m, peer, /*peer_passive=*/false));
        }
        co_await teardown.join();
      }
      ctx.phase_end(Phase::kTeardown, m);
      ctx.phase_end(Phase::kDrain, m);
      (*c->snapshotted)[m] = 1;
      ctx.phase_begin(Phase::kSnapshot, m);
      co_await ctx.snapshot_rank(m);
      ctx.phase_end(Phase::kSnapshot, m);
      ctx.phase_begin(Phase::kResume, m);
      ctx.thaw(m);
      ctx.phase_end(Phase::kResume, m);
    };

    sim::JoinSet all(ctx.engine());
    for (int m = 0; m < n; ++m) all.launch(cl_rank(&c, m));
    co_await all.join();

    gc.logged_bytes = logger.logged();
    ctx.mpi().set_hooks(prev_hooks);
    // The channel log is part of the checkpoint and must reach stable
    // storage.
    if (gc.logged_bytes > 0) co_await ctx.shared_fs().write(gc.logged_bytes);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<ProtocolRunner> make_chandy_lamport_runner() {
  return std::make_unique<ChandyLamportRunner>();
}
}  // namespace detail

}  // namespace gbc::ckpt
