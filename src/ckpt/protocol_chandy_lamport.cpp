// Non-blocking Chandy-Lamport with channel logging: every rank snapshots on
// marker receipt and messages arriving at already-snapshotted ranks are
// logged as channel state. Nothing schedules the ranks' storage access, so
// they all hit the PFS at (nearly) the same time — the storage bottleneck
// the group-based protocol exists to avoid (paper Sec. 2.1 / 7).
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/protocol_internal.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/join.hpp"
#include "sim/lp_bus.hpp"
#include "storage/storage.hpp"

namespace gbc::ckpt {

namespace {

/// Counts channel-logging volume during a Chandy-Lamport cycle: messages
/// arriving at a rank that has already recorded its snapshot belong to the
/// channel state and must be written down.
///
/// on_deliver runs on the *receiver's* shard, so the state is kept in
/// per-rank slots: slot `dst` is only ever touched from dst's shard (the
/// snapshotted flag is flipped by a service→rank bus message). The totals
/// are read service-side after the uninstall RPCs complete, whose replies
/// provide the happens-before edges.
class ChannelLogger : public mpi::MpiHooks {
 public:
  explicit ChannelLogger(int n) : slot_(n) {}

  void on_deliver(int /*src*/, int dst, Bytes b) override {
    Slot& s = slot_[dst];
    if (s.snapshotted) s.logged += b;
  }

  /// Call on `dst`'s shard (via the bus).
  void mark_snapshotted(int dst) { slot_[dst].snapshotted = true; }

  /// Quiescent aggregate read (after uninstall).
  Bytes total_logged() const {
    Bytes t = 0;
    for (const Slot& s : slot_) t += s.logged;
    return t;
  }

 private:
  struct alignas(64) Slot {
    bool snapshotted = false;
    Bytes logged = 0;
  };
  std::vector<Slot> slot_;
};

class ChandyLamportRunner final : public ProtocolRunner {
 public:
  const char* name() const override { return "chandy-lamport"; }

  sim::Task<void> run(CycleContext& ctx) const override {
    GlobalCheckpoint& gc = ctx.cycle();
    const int n = ctx.nranks();
    gc.plan = static_plan(n, 0);
    mpi::MiniMPI* mpi = &ctx.mpi();
    sim::LpBus& bus = mpi->fabric().bus();
    ChannelLogger logger(n);
    ChannelLogger* lg = &logger;
    // Hook slots are rank-owned: swap the logger in (and later out) on each
    // rank's own shard, remembering what was installed before.
    std::vector<mpi::MpiHooks*> prev(n, nullptr);
    mpi::MpiHooks** prevp = prev.data();
    {
      sim::JoinSet install(ctx.engine());
      for (int m = 0; m < n; ++m) {
        install.launch(
            bus.call(bus.svc_lp(), m, [mpi, lg, prevp, m]() -> sim::Task<void> {
              prevp[m] = mpi->rank_hooks(m);
              mpi->set_rank_hooks(m, lg);
              co_return;
            }));
      }
      co_await install.join();
    }

    struct ClCtx {
      CycleContext* ctx;
      sim::LpBus* bus;
      ChannelLogger* lg;
    } c{&ctx, &bus, lg};

    auto cl_rank = [](ClCtx* c, int m) -> sim::Task<void> {
      CycleContext& ctx = *c->ctx;
      ctx.phase_begin(Phase::kQuiesce, m);
      co_await ctx.engine().delay(ctx.fanout_latency(ctx.nranks()));
      co_await ctx.freeze(m);
      ctx.phase_end(Phase::kQuiesce, m);
      // IB still requires tearing down this process's connections
      // (Sec. 2.2), with no global schedule to amortize it.
      ctx.phase_begin(Phase::kDrain, m);
      ctx.phase_begin(Phase::kTeardown, m);
      {
        sim::JoinSet teardown(ctx.engine());
        for (int peer : ctx.mpi().fabric().connections().connected_peers(m)) {
          teardown.launch(ctx.teardown_one(m, peer, /*peer_passive=*/false));
        }
        co_await teardown.join();
      }
      ctx.phase_end(Phase::kTeardown, m);
      ctx.phase_end(Phase::kDrain, m);
      // Flip the channel-state flag on m's own shard; from this arrival on,
      // anything delivered to m belongs to the logged channel state.
      ChannelLogger* lg = c->lg;
      c->bus->send(c->bus->svc_lp(), m, [lg, m] { lg->mark_snapshotted(m); });
      ctx.phase_begin(Phase::kSnapshot, m);
      co_await ctx.snapshot_rank(m);
      ctx.phase_end(Phase::kSnapshot, m);
      ctx.phase_begin(Phase::kResume, m);
      ctx.thaw(m);
      ctx.phase_end(Phase::kResume, m);
    };

    sim::JoinSet all(ctx.engine());
    for (int m = 0; m < n; ++m) all.launch(cl_rank(&c, m));
    co_await all.join();

    {
      sim::JoinSet uninstall(ctx.engine());
      for (int m = 0; m < n; ++m) {
        uninstall.launch(
            bus.call(bus.svc_lp(), m, [mpi, prevp, m]() -> sim::Task<void> {
              mpi->set_rank_hooks(m, prevp[m]);
              co_return;
            }));
      }
      co_await uninstall.join();
    }
    gc.logged_bytes = logger.total_logged();
    // The channel log is part of the checkpoint and must reach stable
    // storage.
    if (gc.logged_bytes > 0) co_await ctx.shared_fs().write(gc.logged_bytes);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<ProtocolRunner> make_chandy_lamport_runner() {
  return std::make_unique<ChandyLamportRunner>();
}
}  // namespace detail

}  // namespace gbc::ckpt
