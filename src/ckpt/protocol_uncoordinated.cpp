// Uncoordinated checkpointing: each rank snapshots independently on its own
// stagger; consistency would come from the (always-on) sender-based message
// log, not from coordination — so there is no recovery line to manage.
#include "ckpt/checkpoint.hpp"
#include "ckpt/protocol_internal.hpp"
#include "mpi/minimpi.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/join.hpp"

namespace gbc::ckpt {

namespace {

class UncoordinatedRunner final : public ProtocolRunner {
 public:
  const char* name() const override { return "uncoordinated+logging"; }

  sim::Task<void> run(CycleContext& ctx) const override {
    GlobalCheckpoint& gc = ctx.cycle();
    const int n = ctx.nranks();
    gc.plan = static_plan(n, 1);

    auto uc_rank = [](CycleContext* ctxp, int m) -> sim::Task<void> {
      CycleContext& ctx = *ctxp;
      // Each process picks its own time; consistency comes from the
      // always-on sender-based message log, not from coordination.
      co_await ctx.engine().delay(m * ctx.config().uncoordinated_stagger);
      ctx.phase_begin(Phase::kQuiesce, m);
      co_await ctx.freeze(m);
      ctx.phase_end(Phase::kQuiesce, m);
      ctx.phase_begin(Phase::kDrain, m);
      ctx.phase_begin(Phase::kTeardown, m);
      {
        sim::JoinSet teardown(ctx.engine());
        for (int peer : ctx.mpi().fabric().connections().connected_peers(m)) {
          teardown.launch(ctx.teardown_one(m, peer, /*peer_passive=*/true));
        }
        co_await teardown.join();
      }
      ctx.phase_end(Phase::kTeardown, m);
      ctx.phase_end(Phase::kDrain, m);
      ctx.phase_begin(Phase::kSnapshot, m);
      co_await ctx.snapshot_rank(m);
      ctx.phase_end(Phase::kSnapshot, m);
      ctx.phase_begin(Phase::kResume, m);
      ctx.thaw(m);
      ctx.phase_end(Phase::kResume, m);
    };

    sim::JoinSet all(ctx.engine());
    for (int m = 0; m < n; ++m) all.launch(uc_rank(&ctx, m));
    co_await all.join();
  }
};

}  // namespace

namespace detail {
std::unique_ptr<ProtocolRunner> make_uncoordinated_runner() {
  return std::make_unique<UncoordinatedRunner>();
}
}  // namespace detail

}  // namespace gbc::ckpt
