#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cassert>

#include "ckpt/protocol.hpp"
#include "storage/tiers.hpp"

namespace gbc::ckpt {

namespace {
int ilog2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}
}  // namespace

sim::Time GlobalCheckpoint::max_individual_time() const {
  sim::Time m = 0;
  for (const auto& s : snapshots) m = std::max(m, s.resume_at - s.freeze_begin);
  return m;
}

double GlobalCheckpoint::mean_individual_time() const {
  if (snapshots.empty()) return 0;
  double sum = 0;
  for (const auto& s : snapshots) {
    sum += static_cast<double>(s.resume_at - s.freeze_begin);
  }
  return sum / static_cast<double>(snapshots.size());
}

double GlobalCheckpoint::storage_fraction() const {
  double down = 0, st = 0;
  for (const auto& s : snapshots) {
    down += static_cast<double>(s.resume_at - s.freeze_begin);
    st += static_cast<double>(s.storage_time);
  }
  return down > 0 ? st / down : 0;
}

// ---------------------------------------------------------------------------
// DeferralGate
// ---------------------------------------------------------------------------

CheckpointService::DeferralGate::DeferralGate(CheckpointService& svc)
    : svc_(svc) {
  sim::LpBus& bus = svc.mpi_.fabric().bus();
  const int n = svc.mpi_.nranks();
  views_.resize(bus.shards());
  for (int s = 0; s < static_cast<int>(views_.size()); ++s) {
    views_[s].done.assign(n, 0);
    const int anchor = std::min(bus.first_lp_of_shard(s), n - 1);
    views_[s].cv = std::make_unique<sim::Condition>(bus.engine_of(anchor));
  }
}

bool CheckpointService::DeferralGate::allowed(int a, int b) const {
  // The consistency rule (DESIGN.md): traffic may flow only between ranks
  // whose groups are on the same side of the recovery line. Evaluated
  // against the sender's shard view — the sender's shard is the caller.
  const ShardView& v = views_[svc_.mpi_.fabric().bus().shard_of(a)];
  if (!v.defer) return true;
  return v.done[a] == v.done[b];
}

sim::Condition& CheckpointService::DeferralGate::changed(int src) {
  return *views_[svc_.mpi_.fabric().bus().shard_of(src)].cv;
}

void CheckpointService::DeferralGate::notify() {
  sim::LpBus& bus = svc_.mpi_.fabric().bus();
  const bool defer = svc_.defer_active_;
  for (int s = 0; s < static_cast<int>(views_.size()); ++s) {
    const int anchor = std::min(bus.first_lp_of_shard(s), bus.nranks() - 1);
    // Every shard — including the service's own — receives the update one
    // bus hop out, so gate openings land at the same instant at any shard
    // count.
    bus.send(bus.svc_lp(), anchor,
             [this, s, defer, done = svc_.done_]() mutable {
               views_[s].done = std::move(done);
               views_[s].defer = defer;
               views_[s].cv->notify_all();
             });
  }
}

// ---------------------------------------------------------------------------
// CheckpointService
// ---------------------------------------------------------------------------

CheckpointService::CheckpointService(mpi::MiniMPI& mpi,
                                     storage::StorageSystem& fs,
                                     CkptConfig cfg)
    : eng_(mpi.engine()), mpi_(mpi), fs_(fs), cfg_(cfg), cycle_done_(eng_) {
  gate_ = std::make_unique<DeferralGate>(*this);
  done_.assign(mpi_.nranks(), 0);
  last_snapshot_at_.assign(mpi_.nranks(), -1);
  mpi_.set_gate(gate_.get());
}

CheckpointService::~CheckpointService() { mpi_.set_gate(nullptr); }

GroupPlan CheckpointService::plan_groups() const {
  const int n = mpi_.nranks();
  if (cfg_.dynamic_formation) {
    const int max_size = cfg_.group_size > 0 ? cfg_.group_size : n;
    return dynamic_plan(mpi_.fabric().traffic_matrix(), n, max_size);
  }
  return static_plan(n, cfg_.group_size);
}

namespace {
sim::Task<void> request_wrapper(CheckpointService* svc, Protocol p) {
  (void)co_await svc->checkpoint(p);
}
}  // namespace

void CheckpointService::request_at(sim::Time t, Protocol protocol) {
  eng_.schedule_at(t, [this, protocol] {
    eng_.spawn(request_wrapper(this, protocol));
  });
}

namespace {
sim::Task<void> periodic_driver(CheckpointService* svc, sim::Engine* eng,
                                sim::Time interval, Protocol p) {
  // Fixed *gap*, not fixed rate: the next request is issued one interval
  // after the previous cycle completes. A fixed rate shorter than the cycle
  // time would otherwise pile up requests and starve the application.
  for (;;) {
    // Stop once the application is done. When the harness reports rank
    // liveness, use it: rank mains run on their home shards' engines, so
    // this engine's live_processes() no longer sees them. Otherwise (direct
    // tests driving one engine) fall back to the process-count heuristic:
    // stop once only this driver remains. Background drain services are
    // detached processes too, but they are storage activity, not
    // application progress — counting them would keep the driver (and thus
    // the drain) alive forever once drains lag the checkpoint interval.
    if (svc->tracking_ranks()) {
      if (svc->live_ranks() <= 0) co_return;
    } else {
      const int background =
          svc->tier() ? svc->tier()->drain_tasks_running() : 0;
      if (eng->live_processes() <= 1 + background) co_return;
    }
    (void)co_await svc->checkpoint(p);
    co_await eng->delay(interval);
  }
}
}  // namespace

void CheckpointService::request_every(sim::Time first, sim::Time interval,
                                      Protocol protocol) {
  eng_.schedule_at(first, [this, interval, protocol] {
    if (tracking_ranks() ? live_ranks_ <= 0 : eng_.live_processes() <= 0) {
      return;
    }
    eng_.spawn(periodic_driver(this, &eng_, interval, protocol));
  });
}

Bytes CheckpointService::image_bytes_for(int rank, sim::Time now) const {
  const Bytes full = footprint(rank);
  if (!cfg_.incremental || last_snapshot_at_[rank] < 0) return full;
  const double elapsed = sim::to_seconds(now - last_snapshot_at_[rank]);
  const double dirty =
      cfg_.dirty_floor + cfg_.dirty_rate_per_second * elapsed;
  if (dirty >= 1.0) return full;
  return static_cast<Bytes>(static_cast<double>(full) * dirty);
}

sim::Task<GlobalCheckpoint> CheckpointService::checkpoint(Protocol protocol) {
  // Requests serialize: a second request issued mid-cycle waits its turn.
  while (cycle_active_) co_await cycle_done_.wait();
  cycle_active_ = true;
  if (trace_) {
    trace_->add(eng_.now(), -1, "cycle", std::string("begin ") +
                                             protocol_name(protocol));
  }
  const int n = mpi_.nranks();
  GlobalCheckpoint gc;
  gc.protocol = protocol;
  gc.requested_at = eng_.now();
  gc.snapshots.resize(n);
  for (int r = 0; r < n; ++r) gc.snapshots[r].rank = r;

  CycleContext ctx(*this, gc);
  co_await protocol_runner(protocol).run(ctx);

  // Thaws are one-way bus sends: the last rank only resumes one bus floor
  // after the runner returns. The cycle is complete when every rank has.
  sim::Time resumed = eng_.now();
  for (const auto& s : gc.snapshots) resumed = std::max(resumed, s.resume_at);
  if (resumed > eng_.now()) co_await eng_.delay_until(resumed);

  gc.completed_at = eng_.now();
  if (trace_) trace_->add(eng_.now(), -1, "cycle", "complete");
  history_.push_back(gc);
  cycle_active_ = false;
  cycle_done_.notify_all();
  co_return history_.back();
}

sim::Task<void> CheckpointService::snapshot_rank(int rank,
                                                 GlobalCheckpoint& gc,
                                                 int self_lp) {
  // The image write runs on the rank's own LP — the partitioned storage
  // server for its node — so the snapshot machinery (footprint/capture
  // reads, tier partition append, drain pause) touches only shard-local
  // state. The caller (root or a group coordinator) just awaits the RPC.
  sim::LpBus& bus = mpi_.fabric().bus();
  CheckpointService* self = this;
  GlobalCheckpoint* gcp = &gc;
  const int src = self_lp < 0 ? bus.svc_lp() : self_lp;
  co_await bus.call(src, rank, [self, rank, gcp] {
    return self->write_snapshot(rank, *gcp);
  });
}

sim::Task<void> CheckpointService::write_snapshot(int rank,
                                                  GlobalCheckpoint& gc) {
  sim::Engine& eng = mpi_.fabric().bus().engine_of(rank);
  auto& snap = gc.snapshots[rank];
  snap.image_bytes = image_bytes_for(rank, eng.now());
  if (capture_) snap.app_state = capture_(rank);
  snap.taken_at = eng.now();
  last_snapshot_at_[rank] = eng.now();
  const sim::Time t0 = eng.now();
  if (tier_ && tier_->enabled() && cfg_.use_tier) {
    // Multi-level staging: the frozen rank writes to its node-local tier
    // (plus the partner replica when enabled); the drain to the PFS runs on
    // in the background after the rank thaws.
    const bool pause = cfg_.pause_drain_during_snapshot;
    if (pause) tier_->pause_drain(rank);
    snap.image_id = co_await tier_->snapshot(rank, snap.image_bytes);
    if (pause) tier_->resume_drain(rank);
    const auto* img = tier_->find(snap.image_id);
    if (img && img->local) {
      // Erasure wins the label: the stripe survives strictly more failure
      // patterns than the single partner copy.
      snap.placement = img->ec.encoded_at >= 0 ? ImagePlacement::kLocalErasure
                       : img->partner >= 0     ? ImagePlacement::kLocalReplicated
                                               : ImagePlacement::kLocal;
      snap.replica_node = img->partner;
    } else {
      snap.placement = ImagePlacement::kPfs;  // capacity write-through
    }
  } else {
    // No staging tier: the image goes straight to the shared PFS, which is
    // root-owned — route the write there so PFS arbitration stays on one LP.
    sim::LpBus& bus = mpi_.fabric().bus();
    storage::StorageSystem* fs = &fs_;
    const Bytes bytes = snap.image_bytes;
    co_await bus.call(rank, bus.svc_lp(),
                      [fs, bytes] { return fs->write(bytes); });
  }
  snap.storage_time = eng.now() - t0;
}

// ---------------------------------------------------------------------------
// CycleContext — the service-side half of the ProtocolRunner seam. Defined
// here (not in a protocol TU) because it is the one class allowed to touch
// CheckpointService internals.
// ---------------------------------------------------------------------------

int CycleContext::self_lp() const noexcept {
  return self_lp_ < 0 ? svc_.mpi_.fabric().bus().svc_lp() : self_lp_;
}

sim::Engine& CycleContext::engine() noexcept {
  return self_lp_ < 0 ? svc_.eng_
                      : svc_.mpi_.fabric().bus().engine_of(self_lp_);
}
mpi::MiniMPI& CycleContext::mpi() noexcept { return svc_.mpi_; }
storage::StorageSystem& CycleContext::shared_fs() noexcept { return svc_.fs_; }
const CkptConfig& CycleContext::config() const noexcept { return svc_.cfg_; }
int CycleContext::nranks() const noexcept { return svc_.mpi_.nranks(); }

GroupPlan CycleContext::plan_groups() const { return svc_.plan_groups(); }

sim::Task<GroupPlan> CycleContext::gather_plan() {
  const CkptConfig& cfg = svc_.cfg_;
  const int n = svc_.mpi_.nranks();
  if (!cfg.dynamic_formation) co_return static_plan(n, cfg.group_size);
  // Traffic rows are rank-owned under the sharding discipline: fetch each
  // rank's row by RPC on its shard, then symmetrize service-side.
  sim::LpBus& bus = svc_.mpi_.fabric().bus();
  net::Fabric* fab = &svc_.mpi_.fabric();
  std::vector<std::int64_t> m(static_cast<std::size_t>(n) * n, 0);
  for (int src = 0; src < n; ++src) {
    std::int64_t* row = m.data() + static_cast<std::size_t>(src) * n;
    co_await bus.call(bus.svc_lp(), src,
                      [fab, src, row]() -> sim::Task<void> {
                        const auto r = fab->copy_traffic_row(src);
                        std::copy(r.begin(), r.end(), row);
                        co_return;
                      });
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const std::int64_t sum = m[static_cast<std::size_t>(a) * n + b] +
                               m[static_cast<std::size_t>(b) * n + a];
      m[static_cast<std::size_t>(a) * n + b] = sum;
      m[static_cast<std::size_t>(b) * n + a] = sum;
    }
  }
  const int max_size = cfg.group_size > 0 ? cfg.group_size : n;
  co_return dynamic_plan(m, n, max_size);
}

void CycleContext::assign_groups(const GroupPlan& plan) {
  const int n = svc_.mpi_.nranks();
  svc_.group_of_.assign(n, 0);
  for (int g = 0; g < plan.size(); ++g) {
    for (int m : plan.groups[g]) svc_.group_of_[m] = g;
  }
  svc_.done_.assign(n, 0);
}

void CycleContext::set_defer_active(bool on) {
  svc_.defer_active_ = on;
  // Propagate to the shard views right away: defer=true with an all-zero
  // done vector is vacuously permissive, so flipping early is safe, while
  // flipping late could let a sender slip past the first group's line.
  svc_.gate_->notify();
}

void CycleContext::mark_on_recovery_line(int rank) {
  assert(at_root());  // the line is root-owned state
  svc_.done_[rank] = 1;
  if (svc_.trace_) {
    svc_.trace_->add(svc_.eng_.now(), rank, "snapshot", "recovery line");
  }
}

void CycleContext::notify_gate() {
  assert(at_root());  // the gate fan-out sends from the service LP
  svc_.gate_->notify();
}

sim::Task<void> CycleContext::mark_group_on_recovery_line(
    const std::vector<int>& group) {
  // One coordinator→root message moves the whole group across the line and
  // triggers the gate broadcast from the LP that owns both. Merging the
  // marks with the notify keeps the line flip atomic in bus order: no
  // sender can observe half a group on the new side.
  sim::LpBus& bus = svc_.mpi_.fabric().bus();
  CheckpointService* svc = &svc_;
  const std::vector<int>* g = &group;
  co_await bus.call(self_lp(), bus.svc_lp(), [svc, g]() -> sim::Task<void> {
    for (int m : *g) {
      svc->done_[m] = 1;
      if (svc->trace_) {
        svc->trace_->add(svc->eng_.now(), m, "snapshot", "recovery line");
      }
    }
    svc->gate_->notify();
    co_return;
  });
}

sim::Task<void> CycleContext::freeze(int rank) {
  sim::LpBus& bus = svc_.mpi_.fabric().bus();
  mpi::MiniMPI* mpi = &svc_.mpi_;
  // The pause lands on the rank's shard one bus hop out; the RPC reply only
  // tells us it happened. Stamp the instant the rank actually stopped.
  const sim::Time pause_at = engine().now() + bus.floor();
  co_await bus.call(self_lp(), rank, [mpi, rank]() -> sim::Task<void> {
    mpi->rank(rank).freeze();
    co_return;
  });
  gc_.snapshots[rank].freeze_begin = pause_at;
  if (svc_.trace_) svc_.trace_->add(pause_at, rank, "freeze", "");
}

void CycleContext::thaw(int rank) {
  sim::LpBus& bus = svc_.mpi_.fabric().bus();
  mpi::MiniMPI* mpi = &svc_.mpi_;
  bus.send(self_lp(), rank, [mpi, rank] { mpi->rank(rank).thaw(); });
  const sim::Time resume_at = engine().now() + bus.floor();
  gc_.snapshots[rank].resume_at = resume_at;
  if (svc_.trace_) {
    // The resume lands one bus floor out; emit the trace event *at* that
    // instant so the trace stays append-ordered in time.
    sim::Trace* tr = svc_.trace_;
    engine().schedule_at(resume_at, [tr, resume_at, rank] {
      tr->add(resume_at, rank, "resume", "");
    });
  }
}

sim::Task<void> CycleContext::snapshot_rank(int rank) {
  return svc_.snapshot_rank(rank, gc_, self_lp_);
}

namespace {
/// Waits (by RPC on the peer's shard) for the peer's progress engine to
/// service a passive coordination request (Sec. 4.2/4.4).
sim::Task<void> await_peer_service(CheckpointService& svc, mpi::MiniMPI& mpi,
                                   int peer, int self_lp) {
  sim::LpBus& bus = mpi.fabric().bus();
  mpi::MiniMPI* m = &mpi;
  const bool ap = svc.config().async_progress;
  const sim::Time hi = svc.config().helper_interval;
  co_await bus.call(self_lp, peer, [m, peer, ap, hi] {
    return m->rank(peer).exec().await_service_point(ap, hi);
  });
}
}  // namespace

sim::Task<std::vector<int>> CycleContext::connected_peers(int m) {
  net::Fabric* fab = &svc_.mpi_.fabric();
  if (at_root()) co_return fab->connections().connected_peers(m);
  // The connection manager lives on the root LP; a coordinator asks for the
  // peer list by message.
  sim::LpBus& bus = fab->bus();
  std::vector<int> peers;
  std::vector<int>* out = &peers;
  co_await bus.call(self_lp_, bus.svc_lp(), [fab, m, out]() -> sim::Task<void> {
    *out = fab->connections().connected_peers(m);
    co_return;
  });
  co_return peers;
}

bool CycleContext::take_coordinator_failure(int coord) {
  if (svc_.abandon_coordinator_ != coord) return false;
  svc_.abandon_coordinator_ = -1;
  return true;
}

sim::Task<void> CycleContext::teardown_one(int m, int peer,
                                           bool peer_passive) {
  // A peer outside the checkpointing set participates passively: the request
  // first waits until the peer's progress engine services it (Sec. 4.2/4.4).
  if (peer_passive) {
    co_await await_peer_service(svc_, svc_.mpi_, peer, self_lp());
  }
  co_await engine().delay(svc_.cfg_.control_latency);  // disconnect RPC
  net::Fabric* fab = &svc_.mpi_.fabric();
  if (at_root()) {
    co_await fab->connections().disconnect(m, peer);
  } else {
    sim::LpBus& bus = fab->bus();
    co_await bus.call(self_lp_, bus.svc_lp(), [fab, m, peer] {
      return fab->connections().disconnect(m, peer);
    });
  }
}

sim::Task<void> CycleContext::rebuild_one(int m, int peer, bool peer_passive) {
  if (peer_passive) {
    co_await await_peer_service(svc_, svc_.mpi_, peer, self_lp());
  }
  co_await engine().delay(svc_.cfg_.control_latency);  // reconnect RPC
  net::Fabric* fab = &svc_.mpi_.fabric();
  if (at_root()) {
    co_await fab->connections().ensure_connected(m, peer);
  } else {
    sim::LpBus& bus = fab->bus();
    co_await bus.call(self_lp_, bus.svc_lp(), [fab, m, peer] {
      return fab->connections().ensure_connected(m, peer);
    });
  }
}

sim::Time CycleContext::fanout_latency(int width) const {
  return svc_.cfg_.control_latency * (ilog2(width) + 1);
}

void CycleContext::phase_begin(Phase p, int actor) {
  if (svc_.trace_) {
    svc_.trace_->add(engine().now(), actor,
                     std::string("phase/") + phase_name(p), "begin");
  }
}

void CycleContext::phase_end(Phase p, int actor) {
  if (svc_.trace_) {
    svc_.trace_->add(engine().now(), actor,
                     std::string("phase/") + phase_name(p), "end");
  }
}

}  // namespace gbc::ckpt
