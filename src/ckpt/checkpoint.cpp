#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "sim/join.hpp"
#include "storage/tiers.hpp"

namespace gbc::ckpt {

namespace {
int ilog2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}
}  // namespace

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kBlockingCoordinated: return "blocking-coordinated";
    case Protocol::kGroupBased: return "group-based";
    case Protocol::kChandyLamport: return "chandy-lamport";
    case Protocol::kUncoordinatedLogging: return "uncoordinated+logging";
  }
  return "?";
}

sim::Time GlobalCheckpoint::max_individual_time() const {
  sim::Time m = 0;
  for (const auto& s : snapshots) m = std::max(m, s.resume_at - s.freeze_begin);
  return m;
}

double GlobalCheckpoint::mean_individual_time() const {
  if (snapshots.empty()) return 0;
  double sum = 0;
  for (const auto& s : snapshots) {
    sum += static_cast<double>(s.resume_at - s.freeze_begin);
  }
  return sum / static_cast<double>(snapshots.size());
}

double GlobalCheckpoint::storage_fraction() const {
  double down = 0, st = 0;
  for (const auto& s : snapshots) {
    down += static_cast<double>(s.resume_at - s.freeze_begin);
    st += static_cast<double>(s.storage_time);
  }
  return down > 0 ? st / down : 0;
}

// ---------------------------------------------------------------------------
// DeferralGate
// ---------------------------------------------------------------------------

bool CheckpointService::DeferralGate::allowed(int a, int b) const {
  if (!svc_.defer_active_) return true;
  // The consistency rule (DESIGN.md): traffic may flow only between ranks
  // whose groups are on the same side of the recovery line.
  return svc_.done_[a] == svc_.done_[b];
}

// ---------------------------------------------------------------------------
// CheckpointService
// ---------------------------------------------------------------------------

CheckpointService::CheckpointService(mpi::MiniMPI& mpi,
                                     storage::StorageSystem& fs,
                                     CkptConfig cfg)
    : eng_(mpi.engine()), mpi_(mpi), fs_(fs), cfg_(cfg), cycle_done_(eng_) {
  gate_ = std::make_unique<DeferralGate>(*this);
  done_.assign(mpi_.nranks(), 0);
  last_snapshot_at_.assign(mpi_.nranks(), -1);
  mpi_.set_gate(gate_.get());
}

CheckpointService::~CheckpointService() { mpi_.set_gate(nullptr); }

GroupPlan CheckpointService::plan_groups() const {
  const int n = mpi_.nranks();
  if (cfg_.dynamic_formation) {
    const int max_size = cfg_.group_size > 0 ? cfg_.group_size : n;
    return dynamic_plan(mpi_.fabric().traffic_matrix(), n, max_size);
  }
  return static_plan(n, cfg_.group_size);
}

namespace {
sim::Task<void> request_wrapper(CheckpointService* svc, Protocol p) {
  (void)co_await svc->checkpoint(p);
}
}  // namespace

void CheckpointService::request_at(sim::Time t, Protocol protocol) {
  eng_.schedule_at(t, [this, protocol] {
    eng_.spawn(request_wrapper(this, protocol));
  });
}

namespace {
sim::Task<void> periodic_driver(CheckpointService* svc, sim::Engine* eng,
                                sim::Time interval, Protocol p) {
  // Fixed *gap*, not fixed rate: the next request is issued one interval
  // after the previous cycle completes. A fixed rate shorter than the cycle
  // time would otherwise pile up requests and starve the application.
  for (;;) {
    // Stop once only this driver remains alive (the application is done).
    // Background drain services are detached processes too, but they are
    // storage activity, not application progress — counting them would keep
    // the driver (and thus the drain) alive forever once drains lag the
    // checkpoint interval.
    const int background =
        svc->tier() ? svc->tier()->drain_tasks_running() : 0;
    if (eng->live_processes() <= 1 + background) co_return;
    (void)co_await svc->checkpoint(p);
    co_await eng->delay(interval);
  }
}
}  // namespace

void CheckpointService::request_every(sim::Time first, sim::Time interval,
                                      Protocol protocol) {
  eng_.schedule_at(first, [this, interval, protocol] {
    if (eng_.live_processes() <= 0) return;
    eng_.spawn(periodic_driver(this, &eng_, interval, protocol));
  });
}

Bytes CheckpointService::image_bytes_for(int rank) const {
  const Bytes full = footprint(rank);
  if (!cfg_.incremental || last_snapshot_at_[rank] < 0) return full;
  const double elapsed =
      sim::to_seconds(eng_.now() - last_snapshot_at_[rank]);
  const double dirty =
      cfg_.dirty_floor + cfg_.dirty_rate_per_second * elapsed;
  if (dirty >= 1.0) return full;
  return static_cast<Bytes>(static_cast<double>(full) * dirty);
}

sim::Task<GlobalCheckpoint> CheckpointService::checkpoint(Protocol protocol) {
  // Requests serialize: a second request issued mid-cycle waits its turn.
  while (cycle_active_) co_await cycle_done_.wait();
  cycle_active_ = true;
  if (trace_) {
    trace_->add(eng_.now(), -1, "cycle", std::string("begin ") +
                                             protocol_name(protocol));
  }
  const int n = mpi_.nranks();
  GlobalCheckpoint gc;
  gc.protocol = protocol;
  gc.requested_at = eng_.now();
  gc.snapshots.resize(n);
  for (int r = 0; r < n; ++r) gc.snapshots[r].rank = r;

  switch (protocol) {
    case Protocol::kBlockingCoordinated:
    case Protocol::kGroupBased: {
      gc.plan = protocol == Protocol::kGroupBased ? plan_groups()
                                                  : static_plan(n, 0);
      group_of_.assign(n, 0);
      for (int g = 0; g < gc.plan.size(); ++g) {
        for (int m : gc.plan.groups[g]) group_of_[m] = g;
      }
      done_.assign(n, 0);
      defer_active_ = protocol == Protocol::kGroupBased && gc.plan.size() > 1;
      // Initial synchronization: coordinator fans the request out.
      co_await eng_.delay(cfg_.control_latency * (ilog2(n) + 1));
      for (const auto& group : gc.plan.groups) {
        // checkpoint_group flips done_[] at the snapshot instant (the
        // recovery line) — not at thaw — so no message can slip between a
        // group's snapshot and its resume.
        co_await checkpoint_group(group, gc);
        gate_->notify();  // deferred pairs on the new line may proceed
      }
      defer_active_ = false;
      gate_->notify();
      break;
    }
    case Protocol::kChandyLamport:
      gc.plan = static_plan(n, 0);
      co_await run_chandy_lamport(gc);
      break;
    case Protocol::kUncoordinatedLogging:
      gc.plan = static_plan(n, 1);
      co_await run_uncoordinated(gc);
      break;
  }

  gc.completed_at = eng_.now();
  if (trace_) trace_->add(eng_.now(), -1, "cycle", "complete");
  history_.push_back(gc);
  cycle_active_ = false;
  cycle_done_.notify_all();
  co_return history_.back();
}

namespace {

/// Tears down one connection of a checkpointing process. A peer outside the
/// group participates passively: the request first waits until the peer's
/// progress engine services it (paper Sec. 4.2/4.4).
sim::Task<void> teardown_one(mpi::MiniMPI* mpi, const CkptConfig* cfg, int m,
                             int peer, bool peer_passive) {
  if (peer_passive) {
    co_await mpi->rank(peer).exec().await_service_point(cfg->async_progress,
                                                        cfg->helper_interval);
  }
  co_await mpi->engine().delay(cfg->control_latency);  // disconnect RPC
  co_await mpi->fabric().connections().disconnect(m, peer);
}

sim::Task<void> rebuild_one(mpi::MiniMPI* mpi, const CkptConfig* cfg, int m,
                            int peer, bool peer_passive) {
  if (peer_passive) {
    co_await mpi->rank(peer).exec().await_service_point(cfg->async_progress,
                                                        cfg->helper_interval);
  }
  co_await mpi->engine().delay(cfg->control_latency);  // reconnect RPC
  co_await mpi->fabric().connections().ensure_connected(m, peer);
}

}  // namespace

sim::Task<void> CheckpointService::snapshot_rank(int rank,
                                                 GlobalCheckpoint& gc) {
  auto& snap = gc.snapshots[rank];
  snap.image_bytes = image_bytes_for(rank);
  if (capture_) snap.app_state = capture_(rank);
  snap.taken_at = eng_.now();
  last_snapshot_at_[rank] = eng_.now();
  const sim::Time t0 = eng_.now();
  if (tier_ && tier_->enabled() && cfg_.use_tier) {
    // Multi-level staging: the frozen rank writes to its node-local tier
    // (plus the partner replica when enabled); the drain to the PFS runs on
    // in the background after the rank thaws.
    const bool pause = cfg_.pause_drain_during_snapshot;
    if (pause) tier_->pause_drain(rank);
    snap.image_id = co_await tier_->snapshot(rank, snap.image_bytes);
    if (pause) tier_->resume_drain(rank);
    const auto* img = tier_->find(snap.image_id);
    if (img && img->local) {
      snap.placement = img->partner >= 0 ? ImagePlacement::kLocalReplicated
                                         : ImagePlacement::kLocal;
      snap.replica_node = img->partner;
    } else {
      snap.placement = ImagePlacement::kPfs;  // capacity write-through
    }
  } else {
    co_await fs_.write(snap.image_bytes);
  }
  snap.storage_time = eng_.now() - t0;
}

sim::Task<void> CheckpointService::checkpoint_group(
    const std::vector<int>& group, GlobalCheckpoint& gc) {
  auto in_group = [&group](int r) {
    return std::find(group.begin(), group.end(), r) != group.end();
  };

  // Intra-group coordination fan-out.
  co_await eng_.delay(cfg_.control_latency *
                      (ilog2(static_cast<int>(group.size())) + 1));

  // Freeze (the BLCR signal stops each member wherever it is).
  for (int m : group) {
    mpi_.rank(m).freeze();
    gc.snapshots[m].freeze_begin = eng_.now();
    if (trace_) trace_->add(eng_.now(), m, "freeze", "");
  }

  // Pre-checkpoint coordination: flush in-transit messages and tear down
  // every connection touching a member, each pair handled exactly once.
  std::vector<std::pair<int, int>> torn_down;
  {
    sim::JoinSet teardown(eng_);
    for (int m : group) {
      for (int peer : mpi_.fabric().connections().connected_peers(m)) {
        if (in_group(peer) && peer < m) continue;  // counted from the other end
        torn_down.emplace_back(m, peer);
        teardown.launch(teardown_one(&mpi_, &cfg_, m, peer, !in_group(peer)));
      }
    }
    co_await teardown.join();
  }

  // The members' state is now quiescent and flushed: this instant is their
  // position on the recovery line. From here on, traffic between them and
  // any group on the other side of the line must be deferred (paper
  // Sec. 3.2) — flipping the flag any later would let a not-yet-
  // checkpointed rank slip a message into a snapshotted one during the
  // write/rebuild window (a lost-in-transit message on restart).
  for (int m : group) {
    done_[m] = 1;
    if (trace_) trace_->add(eng_.now(), m, "snapshot", "recovery line");
  }
  gate_->notify();

  // Local checkpointing: members write their images concurrently; with a
  // small group each gets a large share of the storage bandwidth.
  {
    sim::JoinSet writes(eng_);
    for (int m : group) writes.launch(snapshot_rank(m, gc));
    co_await writes.join();
  }

  // Post-checkpoint coordination: resume members, then (optionally) rebuild
  // the torn-down connections eagerly.
  for (int m : group) {
    mpi_.rank(m).thaw();
    gc.snapshots[m].resume_at = eng_.now();
    if (trace_) trace_->add(eng_.now(), m, "resume", "");
  }
  if (cfg_.eager_rebuild) {
    sim::JoinSet rebuild(eng_);
    for (const auto& [m, peer] : torn_down) {
      rebuild.launch(rebuild_one(&mpi_, &cfg_, m, peer, !in_group(peer)));
    }
    co_await rebuild.join();
  }
}

// ---------------------------------------------------------------------------
// Baseline: non-blocking Chandy-Lamport with channel logging
// ---------------------------------------------------------------------------

namespace {

/// Counts channel-logging volume during a Chandy-Lamport cycle: messages
/// arriving at a rank that has already recorded its snapshot belong to the
/// channel state and must be written down.
class ChannelLogger : public mpi::MpiHooks {
 public:
  explicit ChannelLogger(const std::vector<char>& snapshotted)
      : snapshotted_(snapshotted) {}
  void on_deliver(int /*src*/, int dst, Bytes b) override {
    if (snapshotted_[dst]) logged_ += b;
  }
  Bytes logged() const noexcept { return logged_; }

 private:
  const std::vector<char>& snapshotted_;
  Bytes logged_ = 0;
};

}  // namespace

sim::Task<void> CheckpointService::run_chandy_lamport(GlobalCheckpoint& gc) {
  const int n = mpi_.nranks();
  // Marker propagation: every rank learns of the checkpoint within a
  // marker-latency fan-out; nothing schedules their storage access, so all
  // of them snapshot at (nearly) the same time — the storage bottleneck.
  std::vector<char> snapshotted(n, 0);
  ChannelLogger logger(snapshotted);
  mpi::MpiHooks* prev_hooks = mpi_.hooks();
  mpi_.set_hooks(&logger);

  struct ClCtx {
    CheckpointService* svc;
    GlobalCheckpoint* gc;
    std::vector<char>* snapshotted;
  } ctx{this, &gc, &snapshotted};

  auto cl_rank = [](ClCtx* c, int m) -> sim::Task<void> {
    auto& svc = *c->svc;
    co_await svc.eng_.delay(svc.cfg_.control_latency * (ilog2(svc.mpi_.nranks()) + 1));
    svc.mpi_.rank(m).freeze();
    c->gc->snapshots[m].freeze_begin = svc.eng_.now();
    // IB still requires tearing down this process's connections (Sec. 2.2),
    // with no global schedule to amortize it.
    {
      sim::JoinSet teardown(svc.eng_);
      for (int peer : svc.mpi_.fabric().connections().connected_peers(m)) {
        teardown.launch(
            teardown_one(&svc.mpi_, &svc.cfg_, m, peer, /*passive=*/false));
      }
      co_await teardown.join();
    }
    (*c->snapshotted)[m] = 1;
    co_await svc.snapshot_rank(m, *c->gc);
    svc.mpi_.rank(m).thaw();
    c->gc->snapshots[m].resume_at = svc.eng_.now();
  };

  sim::JoinSet all(eng_);
  for (int m = 0; m < n; ++m) all.launch(cl_rank(&ctx, m));
  co_await all.join();

  gc.logged_bytes = logger.logged();
  mpi_.set_hooks(prev_hooks);
  // The channel log is part of the checkpoint and must reach stable storage.
  if (gc.logged_bytes > 0) co_await fs_.write(gc.logged_bytes);
}

// ---------------------------------------------------------------------------
// Baseline: uncoordinated checkpointing (independent snapshots)
// ---------------------------------------------------------------------------

sim::Task<void> CheckpointService::run_uncoordinated(GlobalCheckpoint& gc) {
  const int n = mpi_.nranks();
  struct UcCtx {
    CheckpointService* svc;
    GlobalCheckpoint* gc;
  } ctx{this, &gc};

  auto uc_rank = [](UcCtx* c, int m) -> sim::Task<void> {
    auto& svc = *c->svc;
    // Each process picks its own time; consistency comes from the always-on
    // sender-based message log, not from coordination.
    co_await svc.eng_.delay(m * svc.cfg_.uncoordinated_stagger);
    svc.mpi_.rank(m).freeze();
    c->gc->snapshots[m].freeze_begin = svc.eng_.now();
    {
      sim::JoinSet teardown(svc.eng_);
      for (int peer : svc.mpi_.fabric().connections().connected_peers(m)) {
        teardown.launch(
            teardown_one(&svc.mpi_, &svc.cfg_, m, peer, /*passive=*/true));
      }
      co_await teardown.join();
    }
    co_await svc.snapshot_rank(m, *c->gc);
    svc.mpi_.rank(m).thaw();
    c->gc->snapshots[m].resume_at = svc.eng_.now();
  };

  sim::JoinSet all(eng_);
  for (int m = 0; m < n; ++m) all.launch(uc_rank(&ctx, m));
  co_await all.join();
}

}  // namespace gbc::ckpt
