#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gbc::net {

namespace {

bool parse_int(std::string_view s, int& out) {
  if (s.empty()) return false;
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > 214748363) return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  char buf[32];
  if (s.size() >= sizeof buf) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return false;
  out = v;
  return true;
}

}  // namespace

std::optional<TopologySpec> parse_topology(std::string_view s) {
  TopologySpec spec;
  if (s == "flat") return spec;
  constexpr std::string_view kPrefix = "fat-tree:";
  if (s.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  std::string_view rest = s.substr(kPrefix.size());
  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  spec.kind = TopologySpec::Kind::kFatTree;
  if (!parse_int(rest.substr(0, colon), spec.radix)) return std::nullopt;
  if (!parse_double(rest.substr(colon + 1), spec.oversub)) return std::nullopt;
  if (spec.radix < 2 || spec.oversub < 1.0) return std::nullopt;
  return spec;
}

std::string topology_to_string(const TopologySpec& spec) {
  if (spec.flat()) return "flat";
  char buf[64];
  std::snprintf(buf, sizeof buf, "fat-tree:%d:%g", spec.radix, spec.oversub);
  return buf;
}

FatTree::FatTree(const TopologySpec& spec, int nranks)
    : spec_(spec), nranks_(nranks) {
  nleaf_ = (nranks + spec.radix - 1) / spec.radix;
  nleaf_ = std::max(nleaf_, 1);
  // Uplinks per leaf: radix downlinks shared oversub:1.
  nspine_ = std::max(
      1, static_cast<int>(std::lround(spec.radix / spec.oversub)));
}

int FatTree::spine_for(int src, int dst) const noexcept {
  // SplitMix64-style finalizer over the flow id; any fixed mix works, it
  // just has to spread consecutive pairs across spines.
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                     << 32) |
                    static_cast<std::uint32_t>(dst);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(nspine_));
}

}  // namespace gbc::net
