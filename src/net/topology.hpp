#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gbc::net {

/// Interconnect shape. The seed model (`kFlat`) is a full crossbar: every
/// pair one wire_latency apart, contention only at the sender NIC. The
/// fat-tree adds the structure that matters past ~1k ranks: ranks hang off
/// leaf switches of a given radix, leaves connect to a spine tier whose
/// width is radix / oversubscription, and both switch tiers contend per
/// port. Parsed from the CLI as `flat` or `fat-tree:<radix>:<oversub>`.
struct TopologySpec {
  enum class Kind : std::uint8_t { kFlat, kFatTree };

  Kind kind = Kind::kFlat;
  int radix = 16;        ///< ranks per leaf switch (fat-tree only)
  double oversub = 1.0;  ///< leaf uplink oversubscription factor (>= 1)

  bool flat() const noexcept { return kind == Kind::kFlat; }
  /// Minimum switch hops between two distinct ranks: 0 on a crossbar,
  /// 2 on a fat-tree (rank -> leaf -> rank, same leaf).
  int min_hops() const noexcept { return flat() ? 0 : 2; }
};

/// Parses `flat` or `fat-tree:<radix>:<oversub>` (e.g. `fat-tree:32:2`).
/// Returns nullopt on malformed input, unknown kind, radix < 2 or
/// oversub < 1.
std::optional<TopologySpec> parse_topology(std::string_view s);

/// Inverse of parse_topology, for --help text and bench metadata.
std::string topology_to_string(const TopologySpec& spec);

/// Concrete two-tier fat-tree instantiated for a rank count: leaf membership,
/// deterministic ECMP spine selection and hop counts. Pure arithmetic — the
/// contention state (per-port busy times) lives with whoever models the
/// queues (net::Fabric for the full stack, harness/scale_model for the
/// sharded scale runs), because the two track time differently.
class FatTree {
 public:
  FatTree(const TopologySpec& spec, int nranks);

  int nranks() const noexcept { return nranks_; }
  int radix() const noexcept { return spec_.radix; }
  int nleaf() const noexcept { return nleaf_; }
  int nspine() const noexcept { return nspine_; }

  int leaf_of(int rank) const noexcept { return rank / spec_.radix; }
  bool same_leaf(int a, int b) const noexcept {
    return leaf_of(a) == leaf_of(b);
  }

  /// Switch hops between two ranks: 2 within a leaf, 4 across leaves.
  int hops(int a, int b) const noexcept { return same_leaf(a, b) ? 2 : 4; }

  /// ECMP: the spine a given (src, dst) flow crosses. A deterministic hash
  /// of the pair — stable across runs, shard counts and thread counts — so
  /// routing never becomes a hidden source of nondeterminism.
  int spine_for(int src, int dst) const noexcept;

 private:
  TopologySpec spec_;
  int nranks_;
  int nleaf_;
  int nspine_;
};

}  // namespace gbc::net
