#include "net/fabric.hpp"

#include <algorithm>

namespace gbc::net {

// ---------------------------------------------------------------------------
// ConnectionManager
// ---------------------------------------------------------------------------

ConnectionManager::ConnectionManager(sim::Engine& eng, Fabric& fabric, int n,
                                     NetConfig cfg)
    : eng_(eng),
      fab_(fabric),
      cfg_(cfg),
      n_(n),
      locked_(n, false),
      unlock_cv_(eng) {}

ConnectionManager::Conn& ConnectionManager::conn(int a, int b) {
  return conns_.try_emplace(key(a, b), eng_).first->second;
}

const ConnectionManager::Conn* ConnectionManager::find(int a, int b) const {
  auto it = conns_.find(key(a, b));
  return it == conns_.end() ? nullptr : &it->second;
}

ConnState ConnectionManager::state(int a, int b) const {
  const Conn* c = find(a, b);
  return c ? c->state : ConnState::kDisconnected;
}

void ConnectionManager::set_state(Conn& c, int a, int b, ConnState s) {
  c.state = s;
  c.cv.notify_all();
  // Mirror the transition to both endpoints' shards: the rank-side send
  // pumps gate on their local mirror, never on this object.
  sim::LpBus& bus = fab_.bus();
  Fabric* f = &fab_;
  bus.send(bus.svc_lp(), a, [f, a, b, s] { f->mirror_state(a, b, s); });
  bus.send(bus.svc_lp(), b, [f, b, a, s] { f->mirror_state(b, a, s); });
}

sim::Task<void> ConnectionManager::ensure_connected(int a, int b) {
  assert(a != b);
  for (;;) {
    // Establishment requires both endpoints available (not frozen).
    while (locked_[a] || locked_[b]) co_await unlock_cv_.wait();
    Conn& c = conn(a, b);
    switch (c.state) {
      case ConnState::kConnected:
        co_return;
      case ConnState::kConnecting:
      case ConnState::kDraining:
        co_await c.cv.wait();
        continue;  // re-evaluate from scratch (locks may have changed)
      case ConnState::kDisconnected: {
        set_state(c, a, b, ConnState::kConnecting);
        // Out-of-band parameter exchange + QP transitions on both sides.
        co_await eng_.delay(cfg_.oob_exchange + cfg_.qp_transition);
        Conn& c2 = conn(a, b);  // iterator-stable (std::map), but be explicit
        set_state(c2, a, b, ConnState::kConnected);
        ++setups_;
        co_return;
      }
    }
  }
}

sim::Task<void> ConnectionManager::drain(int a, int b) {
  // In-flight counts are sender-owned: ask each endpoint, on its own shard,
  // to report back once its outbound lane toward the peer is empty.
  sim::LpBus& bus = fab_.bus();
  Fabric* f = &fab_;
  co_await bus.call(bus.svc_lp(), a,
                    [f, a, b] { return f->drain_outbound(a, b); });
  co_await bus.call(bus.svc_lp(), b,
                    [f, a, b] { return f->drain_outbound(b, a); });
}

sim::Task<void> ConnectionManager::disconnect(int a, int b) {
  for (;;) {
    Conn& c = conn(a, b);
    switch (c.state) {
      case ConnState::kDisconnected:
        co_return;
      case ConnState::kConnecting:
      case ConnState::kDraining:
        co_await c.cv.wait();
        continue;
      case ConnState::kConnected: {
        set_state(c, a, b, ConnState::kDraining);
        co_await drain(a, b);
        co_await eng_.delay(cfg_.teardown_cost);
        Conn& c2 = conn(a, b);
        set_state(c2, a, b, ConnState::kDisconnected);
        ++teardowns_;
        co_return;
      }
    }
  }
}

void ConnectionManager::lock_endpoint(int ep) { locked_[ep] = true; }

void ConnectionManager::unlock_endpoint(int ep) {
  locked_[ep] = false;
  unlock_cv_.notify_all();
}

std::vector<int> ConnectionManager::connected_peers(int ep) const {
  std::vector<int> peers;
  for (const auto& [k, c] : conns_) {
    if (c.state != ConnState::kConnected) continue;
    if (k.first == ep) peers.push_back(k.second);
    if (k.second == ep) peers.push_back(k.first);
  }
  std::sort(peers.begin(), peers.end());
  return peers;
}

int ConnectionManager::established_count() const {
  int n = 0;
  for (const auto& [k, c] : conns_) {
    (void)k;
    if (c.state == ConnState::kConnected) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(sim::Engine& eng, NetConfig cfg, int n_endpoints,
               sim::LpBus* bus)
    : eng_(eng),
      cfg_(cfg),
      n_(n_endpoints),
      receivers_(n_endpoints),
      staging_(static_cast<std::size_t>(n_endpoints)),
      traffic_(static_cast<std::size_t>(n_endpoints) * n_endpoints, 0),
      msgcount_(static_cast<std::size_t>(n_endpoints) * n_endpoints, 0) {
  if (!cfg_.topology.flat()) tree_.emplace(cfg_.topology, n_endpoints);
  if (bus == nullptr) {
    own_bus_ = std::make_unique<sim::LpBus>(eng_, n_, floor_hop());
    bus_ = own_bus_.get();
  } else {
    bus_ = bus;
  }
  rank_net_.reserve(n_);
  for (int r = 0; r < n_; ++r) {
    rank_net_.push_back(std::make_unique<RankNet>(bus_->engine_of(r)));
  }
  const int shards = bus_->shards();
  flight_pool_.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    flight_pool_.push_back(std::make_unique<sim::Pool<FlightRec>>(256));
  }
  return_stack_ = std::make_unique<ReturnStack[]>(shards);
  conn_mgr_ =
      std::make_unique<ConnectionManager>(eng, *this, n_endpoints, cfg);
}

Fabric::~Fabric() {
  // The cluster aborts the engines and clears the bus before members are
  // destroyed, so every in-flight record has been pushed onto its return
  // stack by now. Sweep them home so the pools' liveness assert holds.
  if (own_bus_) own_bus_->clear();
  for (int s = 0; s < bus_->shards(); ++s) reclaim(s);
}

sim::Time Fabric::latency(int src, int dst) const {
  if (!tree_ || src == dst) return cfg_.wire_latency;
  return cfg_.wire_latency * tree_->hops(src, dst);
}

void Fabric::transmit(Packet p) { enqueue(std::move(p), /*data_plane=*/true); }

void Fabric::transmit_control(Packet p) {
  enqueue(std::move(p), /*data_plane=*/false);
}

void Fabric::enqueue(Packet p, bool data_plane) {
  assert(p.src >= 0 && p.src < n_ && p.dst >= 0 && p.dst < n_);
  const int src = p.src;
  const int dst = p.dst;
  RankNet& rn = *rank_net_[src];
  sim::Engine& src_eng = bus_->engine_of(src);
  ++rn.packets;
  rn.bytes += p.bytes;
  if (data_plane) {
    // Sender-row ownership: only src's shard writes row src.
    traffic_[static_cast<std::size_t>(src) * n_ + dst] += p.bytes;
    ++msgcount_[static_cast<std::size_t>(src) * n_ + dst];
  }
  // Serialize on the sender NIC.
  const double bps =
      cfg_.link_bandwidth_mbps * static_cast<double>(storage::kMiB);
  const auto xfer = static_cast<sim::Time>(
      static_cast<double>(p.bytes) / bps * static_cast<double>(sim::kSecond));
  const sim::Time start = std::max(src_eng.now(), rn.nic_busy);
  const sim::Time done = start + cfg_.per_message_overhead + xfer;
  rn.nic_busy = done;
  const sim::Time arrival = done + latency(src, dst);
  ++rn.out[dst];
  const int home = bus_->shard_of(src);
  FlightRec* rec = acquire_rec(home);
  rec->pkt = std::move(p);
  rec->oseq = bus_->next_oseq(src);
  rec->fab = this;
  rec->home_shard = home;
  // arrival >= now + per_message_overhead + min_latency = now + floor, so
  // this respects the lookahead floor at any shard layout.
  if (bus_->shard_of(dst) == home) {
    // Same-shard fast path: the delivery goes straight into the
    // destination's settle bucket at the arrival time — no FlightArrive
    // wrapper event, and the record never leaves its home pool's shard.
    bus_->inbox_push_at(dst, src, rec->oseq, arrival, FlightDeliver{rec});
  } else {
    bus_->post_raw(src, dst, arrival, FlightArrive{rec});
  }
  // Sender-side completion: the packet leaves the in-flight lane at its
  // arrival instant (drain watches these counters). It rides the sender's
  // settle pre-lane — push order is the sender's own execution order, and
  // only sender-owned state is touched — so the decrement lands at the same
  // canonical point (before the sorted deliveries at the arrival sweep) in
  // serial and sharded runs alike, without paying for an origin sequence.
  bus_->settle_at(src, arrival, [this, src, dst] {
    RankNet& s = *rank_net_[src];
    if (--s.out[dst] == 0) s.out_cv.notify_all();
  });
}

void Fabric::FlightArrive::operator()() {
  FlightRec* r = std::exchange(rec, nullptr);
  // Runs on the destination's shard at the arrival time: enter the inbox so
  // same-instant arrivals deliver in canonical (origin, oseq) order.
  r->fab->bus_->inbox_push(r->pkt.dst, r->pkt.src, r->oseq, FlightDeliver{r});
}

void Fabric::FlightDeliver::operator()() {
  FlightRec* r = std::exchange(rec, nullptr);
  Fabric* f = r->fab;
  Packet p = std::move(r->pkt);
  f->recycle_local(r, f->bus_->shard_of(p.dst));
  f->deliver(std::move(p));
}

Fabric::FlightRec* Fabric::acquire_rec(int shard) {
  reclaim(shard);
  return flight_pool_[shard]->acquire();
}

void Fabric::recycle_local(FlightRec* rec, int caller_shard) {
  if (caller_shard == rec->home_shard) {
    flight_pool_[rec->home_shard]->release(rec);
  } else {
    return_stack_[rec->home_shard].push(rec);
  }
}

void Fabric::recycle_remote(FlightRec* rec) {
  return_stack_[rec->home_shard].push(rec);
}

void Fabric::reclaim(int shard) {
  FlightRec* r = return_stack_[shard].take_all();
  while (r != nullptr) {
    FlightRec* next = r->free_next;
    flight_pool_[shard]->release(r);
    r = next;
  }
}

void Fabric::deliver(Packet p) {
  auto& rx = receivers_[p.dst];
  assert(rx && "no receiver registered");
  rx(std::move(p));
}

sim::Task<void> Fabric::ensure_connected_from(int src, int dst) {
  RankNet& rn = *rank_net_[src];
  RankNet::Link& link = rn.links[dst];
  while (link.mirror != ConnState::kConnected) {
    if (link.mirror == ConnState::kDisconnected && !link.requested) {
      link.requested = true;
      bus_->send(src, bus_->svc_lp(), [this, src, dst] {
        eng_.spawn(conn_mgr_->ensure_connected(src, dst));
      });
    }
    co_await rn.conn_cv.wait();
  }
}

void Fabric::mirror_state(int ep, int peer, ConnState s) {
  RankNet& rn = *rank_net_[ep];
  RankNet::Link& link = rn.links[peer];
  link.mirror = s;
  link.requested = false;
  rn.conn_cv.notify_all();
}

sim::Task<void> Fabric::drain_outbound(int src, int dst) {
  RankNet& rn = *rank_net_[src];
  while (outbound_in_flight(src, dst) != 0) co_await rn.out_cv.wait();
}

std::int64_t Fabric::outbound_in_flight(int src, int dst) const {
  const std::int64_t* n = rank_net_[src]->out.find(dst);
  return n == nullptr ? 0 : *n;
}

void Fabric::request_lock(int ep) {
  bus_->send(ep, bus_->svc_lp(),
             [this, ep] { conn_mgr_->lock_endpoint(ep); });
}

void Fabric::request_unlock(int ep) {
  bus_->send(ep, bus_->svc_lp(),
             [this, ep] { conn_mgr_->unlock_endpoint(ep); });
}

sim::Task<void> Fabric::bulk_transfer(int src, int dst, Bytes bytes) {
  assert(src >= 0 && src < n_ && dst >= 0 && dst < n_ && src != dst);
  // Runs on src's home engine: callers (replica copies, erasure scatters,
  // restore staging) are routed to the source node's LP, so the lane state
  // below is only ever touched from src's shard.
  sim::Engine& eng = bus_->engine_of(src);
  StagingLane& lane = staging_[static_cast<std::size_t>(src)];
  ++lane.packets;
  lane.bytes += bytes;
  const double bps =
      cfg_.link_bandwidth_mbps * static_cast<double>(storage::kMiB);
  const auto xfer = static_cast<sim::Time>(
      static_cast<double>(bytes) / bps * static_cast<double>(sim::kSecond));
  const sim::Time start = std::max(eng.now(), lane.busy_until);
  const sim::Time done = start + cfg_.per_message_overhead + xfer;
  lane.busy_until = done;
  co_await eng.delay_until(done + latency(src, dst));
}

std::int64_t Fabric::packets_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& lane : staging_) total += lane.packets;
  for (const auto& rn : rank_net_) total += rn->packets;
  return total;
}

Bytes Fabric::bytes_sent() const noexcept {
  Bytes total = 0;
  for (const auto& lane : staging_) total += lane.bytes;
  for (const auto& rn : rank_net_) total += rn->bytes;
  return total;
}

std::uint64_t Fabric::flight_recs_reused() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : flight_pool_) total += p->reused();
  return total;
}

std::size_t Fabric::flight_recs_outstanding() const noexcept {
  std::size_t total = 0;
  for (const auto& p : flight_pool_) total += p->outstanding();
  return total;
}

Bytes Fabric::bytes_between(int a, int b) const {
  return traffic_[static_cast<std::size_t>(a) * n_ + b] +
         traffic_[static_cast<std::size_t>(b) * n_ + a];
}

std::int64_t Fabric::messages_between(int a, int b) const {
  return msgcount_[static_cast<std::size_t>(a) * n_ + b] +
         msgcount_[static_cast<std::size_t>(b) * n_ + a];
}

std::vector<std::int64_t> Fabric::traffic_matrix() const {
  std::vector<std::int64_t> m(static_cast<std::size_t>(n_) * n_, 0);
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      const std::int64_t sum = bytes_between(a, b);
      m[static_cast<std::size_t>(a) * n_ + b] = sum;
      m[static_cast<std::size_t>(b) * n_ + a] = sum;
    }
  }
  return m;
}

std::vector<std::int64_t> Fabric::copy_traffic_row(int src) const {
  const auto base = traffic_.begin() + static_cast<std::size_t>(src) * n_;
  return std::vector<std::int64_t>(base, base + n_);
}

}  // namespace gbc::net
