#include "net/fabric.hpp"

#include <algorithm>

namespace gbc::net {

// ---------------------------------------------------------------------------
// ConnectionManager
// ---------------------------------------------------------------------------

ConnectionManager::ConnectionManager(sim::Engine& eng, Fabric& fabric, int n,
                                     NetConfig cfg)
    : eng_(eng), cfg_(cfg), n_(n), locked_(n, false), unlock_cv_(eng) {
  (void)fabric;
}

ConnectionManager::Conn& ConnectionManager::conn(int a, int b) {
  return conns_.try_emplace(key(a, b), eng_).first->second;
}

const ConnectionManager::Conn* ConnectionManager::find(int a, int b) const {
  auto it = conns_.find(key(a, b));
  return it == conns_.end() ? nullptr : &it->second;
}

ConnState ConnectionManager::state(int a, int b) const {
  const Conn* c = find(a, b);
  return c ? c->state : ConnState::kDisconnected;
}

sim::Task<void> ConnectionManager::ensure_connected(int a, int b) {
  assert(a != b);
  for (;;) {
    // Establishment requires both endpoints available (not frozen).
    while (locked_[a] || locked_[b]) co_await unlock_cv_.wait();
    Conn& c = conn(a, b);
    switch (c.state) {
      case ConnState::kConnected:
        co_return;
      case ConnState::kConnecting:
      case ConnState::kDraining:
        co_await c.cv.wait();
        continue;  // re-evaluate from scratch (locks may have changed)
      case ConnState::kDisconnected: {
        c.state = ConnState::kConnecting;
        // Out-of-band parameter exchange + QP transitions on both sides.
        co_await eng_.delay(cfg_.oob_exchange + cfg_.qp_transition);
        Conn& c2 = conn(a, b);  // iterator-stable (std::map), but be explicit
        c2.state = ConnState::kConnected;
        ++setups_;
        c2.cv.notify_all();
        co_return;
      }
    }
  }
}

sim::Task<void> ConnectionManager::drain(int a, int b) {
  Conn& c = conn(a, b);
  while (c.in_flight > 0) co_await c.cv.wait();
}

sim::Task<void> ConnectionManager::disconnect(int a, int b) {
  Conn& c = conn(a, b);
  for (;;) {
    switch (c.state) {
      case ConnState::kDisconnected:
        co_return;
      case ConnState::kConnecting:
      case ConnState::kDraining:
        co_await c.cv.wait();
        continue;
      case ConnState::kConnected: {
        c.state = ConnState::kDraining;
        while (c.in_flight > 0) co_await c.cv.wait();
        co_await eng_.delay(cfg_.teardown_cost);
        c.state = ConnState::kDisconnected;
        ++teardowns_;
        c.cv.notify_all();
        co_return;
      }
    }
  }
}

void ConnectionManager::lock_endpoint(int ep) { locked_[ep] = true; }

void ConnectionManager::unlock_endpoint(int ep) {
  locked_[ep] = false;
  unlock_cv_.notify_all();
}

std::vector<int> ConnectionManager::connected_peers(int ep) const {
  std::vector<int> peers;
  for (const auto& [k, c] : conns_) {
    if (c.state != ConnState::kConnected) continue;
    if (k.first == ep) peers.push_back(k.second);
    if (k.second == ep) peers.push_back(k.first);
  }
  std::sort(peers.begin(), peers.end());
  return peers;
}

int ConnectionManager::established_count() const {
  int n = 0;
  for (const auto& [k, c] : conns_) {
    (void)k;
    if (c.state == ConnState::kConnected) ++n;
  }
  return n;
}

void ConnectionManager::on_transmit_start(int a, int b) {
  ++conn(a, b).in_flight;
}

void ConnectionManager::on_delivered(int a, int b) {
  Conn& c = conn(a, b);
  assert(c.in_flight > 0);
  if (--c.in_flight == 0) c.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(sim::Engine& eng, NetConfig cfg, int n_endpoints)
    : eng_(eng),
      cfg_(cfg),
      n_(n_endpoints),
      receivers_(n_endpoints),
      nic_busy_until_(n_endpoints, 0),
      traffic_(static_cast<std::size_t>(n_endpoints) * n_endpoints, 0),
      msgcount_(static_cast<std::size_t>(n_endpoints) * n_endpoints, 0) {
  if (!cfg_.topology.flat()) tree_.emplace(cfg_.topology, n_endpoints);
  conn_mgr_ = std::make_unique<ConnectionManager>(eng, *this, n_endpoints, cfg);
}

sim::Time Fabric::latency(int src, int dst) const {
  if (!tree_ || src == dst) return cfg_.wire_latency;
  return cfg_.wire_latency * tree_->hops(src, dst);
}

void Fabric::transmit(Packet p) {
  assert(conn_mgr_->connected(p.src, p.dst) &&
         "data-plane transmit on unestablished connection");
  conn_mgr_->on_transmit_start(p.src, p.dst);
  enqueue(std::move(p), /*data_plane=*/true);
}

void Fabric::transmit_control(Packet p) {
  enqueue(std::move(p), /*data_plane=*/false);
}

sim::Task<void> Fabric::bulk_transfer(int src, int dst, Bytes bytes) {
  assert(src >= 0 && src < n_ && dst >= 0 && dst < n_ && src != dst);
  ++packets_;
  bytes_ += bytes;
  const double bps =
      cfg_.link_bandwidth_mbps * static_cast<double>(storage::kMiB);
  const auto xfer = static_cast<sim::Time>(
      static_cast<double>(bytes) / bps * static_cast<double>(sim::kSecond));
  const sim::Time start = std::max(eng_.now(), nic_busy_until_[src]);
  const sim::Time done = start + cfg_.per_message_overhead + xfer;
  nic_busy_until_[src] = done;
  co_await eng_.delay_until(done + latency(src, dst));
}

void Fabric::enqueue(Packet p, bool data_plane) {
  assert(p.src >= 0 && p.src < n_ && p.dst >= 0 && p.dst < n_);
  ++packets_;
  bytes_ += p.bytes;
  if (data_plane) {
    const auto idx = static_cast<std::size_t>(p.src) * n_ + p.dst;
    const auto rdx = static_cast<std::size_t>(p.dst) * n_ + p.src;
    traffic_[idx] += p.bytes;
    traffic_[rdx] += p.bytes;
    ++msgcount_[idx];
    ++msgcount_[rdx];
  }
  // Serialize on the sender NIC.
  const double bps = cfg_.link_bandwidth_mbps * static_cast<double>(storage::kMiB);
  const auto xfer = static_cast<sim::Time>(
      static_cast<double>(p.bytes) / bps * static_cast<double>(sim::kSecond));
  const sim::Time start = std::max(eng_.now(), nic_busy_until_[p.src]);
  const sim::Time done = start + cfg_.per_message_overhead + xfer;
  nic_busy_until_[p.src] = done;
  const sim::Time arrival = done + latency(p.src, p.dst);
  const int src = p.src;
  const int dst = p.dst;
  sim::InlineFn fn = [this, p = std::move(p), data_plane]() mutable {
    deliver(std::move(p), data_plane);
  };
  if (router_ != nullptr) {
    // Reserving here (not at injection) pins the delivery's place in the
    // home engine's FIFO order at the exact point a serial schedule_at
    // would have consumed it.
    router_->relay(src, dst, done, arrival, eng_.reserve_seq(),
                   std::move(fn));
  } else {
    eng_.schedule_at(arrival, std::move(fn));
  }
}

void Fabric::deliver(Packet p, bool data_plane) {
  const int src = p.src, dst = p.dst;
  auto& rx = receivers_[dst];
  assert(rx && "no receiver registered");
  rx(std::move(p));
  if (data_plane) conn_mgr_->on_delivered(src, dst);
}

Bytes Fabric::bytes_between(int a, int b) const {
  return traffic_[static_cast<std::size_t>(a) * n_ + b];
}

std::int64_t Fabric::messages_between(int a, int b) const {
  return msgcount_[static_cast<std::size_t>(a) * n_ + b];
}

}  // namespace gbc::net
